// djstar/core/work_stealing.hpp
// Strategy 3 (paper §V-C): work-stealing.
//
// Each worker owns a deque holding only *executable* nodes (dependencies
// met). The owner pushes/pops at the bottom (LIFO, cache-warm), thieves
// steal from the top (FIFO, oldest node — most likely to fan out new
// work). At cycle start, the main thread seeds the deques with the
// source nodes, grouped by graph section (Deck A/B/C/D, Master) so nodes
// touching the same audio data land on the same thread.
//
// Schedule fuzzing: chaos::maybe_perturb() sites cover the push-vs-park
// race (kNodeReady after the push, kBeforeWait between the epoch read
// and the idle wait); the deque's own owner/thief windows are perturbed
// inside ChaseLevDeque. See core/chaos.hpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "djstar/core/chase_lev_deque.hpp"
#include "djstar/core/executor.hpp"
#include "djstar/core/team.hpp"
#include "djstar/support/time.hpp"

namespace djstar::core {

/// How the main thread distributes source nodes at cycle start.
enum class SeedMode {
  kBySection,   ///< paper default: same section -> same thread
  kRoundRobin,  ///< ablation: ignore sections
};

/// Work-stealing specific options.
struct WorkStealingOptions {
  SeedMode seed = SeedMode::kBySection;
  /// Failed full steal rounds before a worker parks on the idle cv.
  std::uint32_t steal_rounds_before_park = 16;
};

/// Per-thread deques with stealing; see header comment.
class WorkStealingExecutor final : public Executor {
 public:
  explicit WorkStealingExecutor(CompiledGraph& graph, ExecOptions opts = {},
                                WorkStealingOptions ws = {});

  /// Hosted variant: run on `shared_team` (external-submission mode)
  /// instead of owning a worker pool. The serve layer uses this to
  /// multiplex many session graphs over one team; opts.threads must
  /// equal shared_team.threads(). The team must outlive the executor.
  WorkStealingExecutor(CompiledGraph& graph, Team& shared_team,
                       ExecOptions opts = {}, WorkStealingOptions ws = {});

  void run_cycle() override;
  std::string_view name() const noexcept override { return "ws"; }
  unsigned threads() const noexcept override { return opts_.threads; }
  const Team* team() const noexcept override {
    return shared_ != nullptr ? shared_ : team_.get();
  }

 private:
  void worker_body(unsigned w);
  void seed_inboxes();
  void on_unit_ready(unsigned w, UnitId u);
  // `stolen_from` reports the victim worker when the unit came from a
  // steal (attribution wants the span stamped); -1 for own-deque pops
  // and orphan adoptions (the original owner is quarantined/unknown).
  bool try_get_unit(unsigned w, UnitId& out, std::int32_t& stolen_from);
  void heal_rescue(unsigned victim);

  struct alignas(64) PerWorker {
    std::unique_ptr<ChaseLevDeque> deque;
    // Seeded by the main thread before the cycle's generation bump
    // (which publishes it with release/acquire), drained by the worker.
    std::vector<UnitId> inbox;
  };

  CompiledGraph& graph_;
  ExecOptions opts_;
  WorkStealingOptions ws_;
  std::vector<PerWorker> per_worker_;

  alignas(64) std::atomic<std::size_t> executed_{0};
  // Idle parking: workers that fail repeated steal rounds sleep here and
  // are woken when new work is pushed (paper: WS only sleeps when solely
  // blocked nodes remain).
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::uint32_t> idle_epoch_{0};
  std::atomic<std::uint32_t> idlers_{0};

  support::Clock::time_point cycle_start_{};
  // Static-plan replay decision for the cycle (published by the team's
  // generation bump; replay skips seeding, deques, and parking).
  bool use_plan_ = false;
  // Self-healing (DESIGN.md §12): decided per cycle like use_plan_. The
  // orphan buffer receives a quarantined worker's drained deque plus the
  // republish scan's findings; survivors poll it between their own pop
  // and the steal round. Claims make duplicates harmless.
  bool heal_armed_ = false;
  std::mutex orphan_mutex_;
  std::vector<UnitId> orphan_;
  std::unique_ptr<Team> team_;   // owned pool (classic mode)
  Team* shared_ = nullptr;       // borrowed pool (hosted mode)
  Team::WorkerFn body_;          // submitted per cycle in hosted mode
  Team::RescueFn rescue_fn_;     // submitted alongside body_ when hosted
};

}  // namespace djstar::core
