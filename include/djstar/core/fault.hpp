// djstar/core/fault.hpp
// Node-level fault injection — the second half of the chaos harness.
//
// core/chaos perturbs *scheduling* (where threads pause inside the
// executors' race windows); this header perturbs the *nodes themselves*:
// a FaultPlan armed on a CompiledGraph makes individual node executions
// run slow (latency spike), throw, stall as if the worker were stuck on
// a page fault or priority inversion, or emit NaN audio. The engine's
// CycleSupervisor (engine/supervisor.hpp) is the consumer: it must keep
// every cycle deadline-bounded and every output buffer valid no matter
// which of these faults fire.
//
// Determinism: whether a fault fires for node `n` in cycle `c` is a pure
// function of (plan.seed, c, n) — independent of thread interleaving —
// so a fault schedule is exactly replayable and supervisor transition
// logs can be compared across runs (tested). Latency/stall *durations*
// are equally deterministic; only their wall-clock consequences depend
// on the machine.
//
// Off by default: an unarmed graph pays one branch per node execution.
// Arm programmatically via CompiledGraph::arm_faults(), or for any
// binary via the DJSTAR_FAULTS environment variable (parsed by
// FaultPlan::from_env; see README "Fault injection").
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "djstar/core/graph.hpp"

namespace djstar::core::chaos {

/// What a fault injection does to one node execution.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kLatencySpike,  ///< node runs, then busy-spins extra microseconds
  kThrow,         ///< node throws InjectedFault instead of running
  kNanOutput,     ///< node runs, then the graph's poison hook corrupts audio
  kStall,         ///< node runs, then the worker sleeps (stuck worker)
  // Worker faults (DESIGN.md §12): these target the *thread* that picked
  // the node up, not the node. With a healing team (HealMode != kOff,
  // parallel strategy) they fire pre-execution at unit granule — the
  // worker wedges with no heartbeat / dies, and the medic quarantines it
  // and republishes the unit. Without a medic CompiledGraph::execute()
  // degrades them so no configuration can hang: kStallForever becomes a
  // bounded kStall of stall_us, kWorkerAbort a no-op (the node still
  // runs; there is no thread-level recovery to exercise).
  kStallForever,  ///< worker wedges until quarantined (bounded stall unhealed)
  kWorkerAbort,   ///< worker thread dies mid-cycle (no-op unhealed)
};

const char* to_string(FaultKind k) noexcept;

/// The resolved decision for one (cycle, node) pair.
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  double duration_us = 0.0;  ///< spike/stall length (kLatencySpike, kStall)
};

/// Seeded description of which faults to inject and how often. Rates are
/// per node execution, in 1/1000 (a 67-node graph at throw=1 therefore
/// sees roughly one injected exception every ~15 cycles).
struct FaultPlan {
  std::uint64_t seed = 1;

  std::uint32_t latency_permille = 0;  ///< rate of latency spikes
  std::uint32_t throw_permille = 0;    ///< rate of thrown exceptions
  std::uint32_t nan_permille = 0;      ///< rate of NaN output poisoning
  std::uint32_t stall_permille = 0;    ///< rate of stuck-worker stalls
  std::uint32_t stall_forever_permille = 0;  ///< rate of wedged workers
  std::uint32_t abort_permille = 0;          ///< rate of dying workers

  double latency_min_us = 50.0;   ///< spike duration drawn uniformly
  double latency_max_us = 400.0;  ///< from [min, max]
  double stall_us = 3000.0;       ///< stall length (default > one deadline)

  /// Restrict injection to these nodes; empty = every node is eligible.
  std::vector<NodeId> targets;

  /// True when any rate is non-zero.
  bool any() const noexcept {
    return latency_permille + throw_permille + nan_permille + stall_permille +
               stall_forever_permille + abort_permille >
           0;
  }

  /// True when a worker-fault rate is non-zero (gates the heal paths'
  /// pre-execution check in CompiledGraph::take_worker_fault).
  bool any_worker() const noexcept {
    return stall_forever_permille + abort_permille > 0;
  }

  /// Parse a comma-separated "key=value" spec, e.g.
  ///   "seed=42,throw=5,latency=20,latency_us=100..600,stall=1,stall_us=4000"
  /// Keys: seed, latency, throw, nan, stall, stall_forever, abort (rates
  /// in permille), latency_us (single value or "lo..hi"), stall_us.
  /// Unknown keys or malformed values yield nullopt. Rates are clamped
  /// to 1000.
  static std::optional<FaultPlan> parse(std::string_view spec);

  /// Parse the DJSTAR_FAULTS environment variable (nullopt when unset
  /// or malformed — malformed specs are reported on stderr, not fatal).
  static std::optional<FaultPlan> from_env(const char* var = "DJSTAR_FAULTS");
};

/// Decide the fault for node `node` in cycle `cycle` under `plan`.
/// Pure function of (plan, cycle, node); does not check plan.targets
/// (CompiledGraph pre-resolves eligibility).
FaultAction decide(const FaultPlan& plan, std::uint64_t cycle,
                   NodeId node) noexcept;

/// The exception injected by FaultKind::kThrow. Executors never see it:
/// CompiledGraph::execute() catches it (like any other node exception),
/// records the fault, and fails the cycle.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(NodeId node)
      : std::runtime_error("injected fault at node " + std::to_string(node)),
        node_(node) {}
  NodeId node() const noexcept { return node_; }

 private:
  NodeId node_;
};

}  // namespace djstar::core::chaos
