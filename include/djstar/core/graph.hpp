// djstar/core/graph.hpp
// The audio task graph (paper §IV): nodes are audio computations, edges
// are data dependencies. DJ Star keeps the nodes in a simple queue sorted
// by dependency depth ("column by column, left to right" in Fig. 3);
// TaskGraph::levelized_order() reproduces exactly that queue.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace djstar::core {

/// Index of a node within its TaskGraph.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// The work a node performs each audio processing cycle. Captured state
/// (audio buffers, effect instances) is owned by the graph's creator.
/// Must be allocation-free and lock-free to be real-time safe.
using WorkFn = std::function<void()>;

/// Mutable graph under construction. Compile to a CompiledGraph to run.
class TaskGraph {
 public:
  /// Add a node. `section` groups nodes for the work-stealing seed
  /// heuristic (paper §V-C: "Deck A/B/C/D or Master"). Returns its id.
  NodeId add_node(std::string name, WorkFn work, std::string section = {});

  /// Declare that `from` must complete before `to` starts.
  /// Duplicate edges are ignored. Both ids must exist; self-edges are
  /// rejected (assert).
  void add_edge(NodeId from, NodeId to);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  std::string_view name(NodeId n) const noexcept { return nodes_[n].name; }
  std::string_view section(NodeId n) const noexcept {
    return nodes_[n].section;
  }
  const WorkFn& work(NodeId n) const noexcept { return nodes_[n].work; }
  std::span<const NodeId> successors(NodeId n) const noexcept {
    return nodes_[n].successors;
  }
  std::span<const NodeId> predecessors(NodeId n) const noexcept {
    return nodes_[n].predecessors;
  }
  std::size_t in_degree(NodeId n) const noexcept {
    return nodes_[n].predecessors.size();
  }
  std::size_t out_degree(NodeId n) const noexcept {
    return nodes_[n].successors.size();
  }

  /// True when the graph has no directed cycle.
  bool is_acyclic() const;

  /// Kahn topological order (by node insertion order among ready nodes).
  /// Empty when the graph is cyclic.
  std::vector<NodeId> topological_order() const;

  /// Dependency depth of each node: 0 for sources, otherwise
  /// 1 + max(depth of predecessors). Longest-path layering.
  /// Asserts the graph is acyclic.
  std::vector<std::uint32_t> depths() const;

  /// The paper's node queue: nodes sorted by depth, ties broken by
  /// insertion order — "nodes in the same column do not carry
  /// dependencies to other nodes in the same column" (§IV).
  std::vector<NodeId> levelized_order() const;

  /// Ids of all nodes with no predecessors.
  std::vector<NodeId> source_nodes() const;

 private:
  struct Node {
    std::string name;
    std::string section;
    WorkFn work;
    std::vector<NodeId> successors;
    std::vector<NodeId> predecessors;
  };
  std::vector<Node> nodes_;
  std::size_t edge_count_ = 0;
};

}  // namespace djstar::core
