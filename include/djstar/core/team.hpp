// djstar/core/team.hpp
// Persistent worker team shared by the parallel executors.
//
// Workers are created once (CP.41) and parked between cycles. run_cycle()
// publishes a new generation, lets every worker run the strategy body,
// and returns when all have finished. The calling thread participates as
// worker 0 so `threads == n` means n computing threads, matching the
// paper's "thread count" axis in Table I.
//
// Two ownership modes:
//  - owned body: the classic executor shape — one WorkerFn bound at
//    construction, run with run_cycle().
//  - external submission: a team constructed without a body accepts a
//    different WorkerFn per cycle via run_cycle(fn). This is what lets
//    the serve layer multiplex many independent graphs (one hosted
//    executor each) over a single shared worker pool: the generation
//    bump's release/acquire pair publishes the submitted body to the
//    workers, so no extra synchronization is needed.
//
// Schedule fuzzing: each worker passes a chaos::maybe_perturb() site
// (kCycleStart) between observing the new generation and entering the
// strategy body, staggering worker start order under the stress suite.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "djstar/core/executor.hpp"

namespace djstar::core {

/// How parked workers wait for the next cycle.
enum class StartMode {
  kSpin,     ///< spin+yield on the generation counter (lowest latency)
  kCondvar,  ///< sleep on a condition variable (no idle CPU burn)
};

/// Fixed team of joining threads executing one callback per cycle.
class Team {
 public:
  /// The per-cycle body; `worker` in [0, threads).
  using WorkerFn = std::function<void(unsigned worker)>;

  /// Spawns `threads - 1` OS threads (thread 0 is the caller).
  Team(unsigned threads, StartMode mode, SpinPolicy spin, WorkerFn fn);

  /// External-submission team: no owned body; every cycle's body is
  /// passed to run_cycle(fn). Used by serve::EngineHost to share one
  /// worker pool between many hosted executors.
  Team(unsigned threads, StartMode mode, SpinPolicy spin);

  /// Requests stop and joins all workers.
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Run one cycle: all workers (incl. the caller) execute the body once;
  /// returns when every worker is done. Requires the owned-body mode.
  void run_cycle();

  /// Run one cycle with an externally submitted body. `fn` must stay
  /// alive until this call returns (it does: the call blocks until every
  /// worker has finished). Callable in either mode; the owned body, if
  /// any, is restored afterwards.
  void run_cycle(const WorkerFn& fn);

  unsigned threads() const noexcept { return threads_; }

  /// Exceptions that escaped a worker body and were swallowed by the
  /// team's last-resort net. Always zero in a correct build — strategy
  /// bodies route node work through CompiledGraph::execute(), which is
  /// noexcept — but the net keeps a bug from killing a worker thread
  /// (std::terminate) and deadlocking every later cycle.
  std::uint64_t body_errors() const noexcept {
    return body_errors_.load(std::memory_order_relaxed);
  }

 private:
  void thread_main(unsigned id);
  void wait_for_generation(std::uint64_t seen);
  void run_body(unsigned id) noexcept;
  void dispatch_cycle();

  unsigned threads_;
  StartMode mode_;
  SpinPolicy spin_;
  WorkerFn fn_;
  // Body for the cycle in flight: &fn_ (owned mode) or the caller's
  // submitted body. Written by the dispatching thread before the
  // generation bump (release) and read by workers after their acquire
  // load of the generation, so no separate atomic is needed.
  const WorkerFn* active_ = nullptr;

  alignas(64) std::atomic<std::uint64_t> generation_{0};
  alignas(64) std::atomic<unsigned> done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> body_errors_{0};

  std::mutex start_mutex_;
  std::condition_variable start_cv_;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;

  std::vector<std::thread> workers_;
};

}  // namespace djstar::core
