// djstar/core/team.hpp
// Persistent worker team shared by the parallel executors.
//
// Workers are created once (CP.41) and parked between cycles. run_cycle()
// publishes a new generation, lets every worker run the strategy body,
// and returns when all have finished. The calling thread participates as
// worker 0 so `threads == n` means n computing threads, matching the
// paper's "thread count" axis in Table I.
//
// Two ownership modes:
//  - owned body: the classic executor shape — one WorkerFn bound at
//    construction, run with run_cycle().
//  - external submission: a team constructed without a body accepts a
//    different WorkerFn per cycle via run_cycle(fn). This is what lets
//    the serve layer multiplex many independent graphs (one hosted
//    executor each) over a single shared worker pool: the generation
//    bump's release/acquire pair publishes the submitted body to the
//    workers, so no extra synchronization is needed.
//
// Schedule fuzzing: each worker passes a chaos::maybe_perturb() site
// (kCycleStart) between observing the new generation and entering the
// strategy body, staggering worker start order under the stress suite.
//
// Self-healing (DESIGN.md §12): a team built with a TeamHealConfig whose
// mode is not kOff runs a medic thread that scans the HealthBoard while
// a cycle is in flight. A worker whose heartbeat goes silent past the
// budget is quarantined: the strategy's rescue hook republishes its
// unfinished units to the survivors, and the medic credits the dead
// worker's barrier slot so dispatch_cycle() still returns. The credit is
// arbitrated by a CAS on the worker's state (kActive -> kFinished by the
// worker itself vs kActive/kAborted -> kQuarantined by the medic), so a
// slot is counted exactly once even when a quarantine races a late
// finish. A falsely-quarantined worker is safe: the heal paths run every
// unit through a claim CAS (exactly-once regardless), and the worker
// retires itself at its next cycle boundary. In kRespawn mode the team
// joins retired threads and spawns replacements between cycles, seeding
// them with the current generation so they rejoin cleanly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "djstar/core/executor.hpp"
#include "djstar/core/health.hpp"

namespace djstar::core {

/// How parked workers wait for the next cycle.
enum class StartMode {
  kSpin,     ///< spin+yield on the generation counter (lowest latency)
  kCondvar,  ///< sleep on a condition variable (no idle CPU burn)
};

/// Fixed team of joining threads executing one callback per cycle.
class Team {
 public:
  /// The per-cycle body; `worker` in [0, threads).
  using WorkerFn = std::function<void(unsigned worker)>;
  /// Rescue hook: called from the medic thread, mid-cycle, after worker
  /// `victim` was quarantined. The strategy republishes the victim's
  /// unfinished units to the survivors and kicks any parked workers.
  using RescueFn = std::function<void(unsigned victim)>;

  /// Spawns `threads - 1` OS threads (thread 0 is the caller).
  Team(unsigned threads, StartMode mode, SpinPolicy spin, WorkerFn fn,
       TeamHealConfig heal = {});

  /// External-submission team: no owned body; every cycle's body is
  /// passed to run_cycle(fn). Used by serve::EngineHost to share one
  /// worker pool between many hosted executors.
  Team(unsigned threads, StartMode mode, SpinPolicy spin,
       TeamHealConfig heal = {});

  /// Requests stop and joins all workers.
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Run one cycle: all workers (incl. the caller) execute the body once;
  /// returns when every worker is done. Requires the owned-body mode.
  void run_cycle();

  /// Run one cycle with an externally submitted body. `fn` must stay
  /// alive until this call returns (it does: the call blocks until every
  /// worker has finished). Callable in either mode; the owned body, if
  /// any, is restored afterwards.
  void run_cycle(const WorkerFn& fn);

  /// Hosted variant with a per-cycle rescue hook (serve: the hook belongs
  /// to the session's executor, which changes every cycle).
  void run_cycle(const WorkerFn& fn, const RescueFn& rescue);

  /// Owned-body teams install their rescue hook once, after construction
  /// and before the first healing cycle.
  void set_rescue(RescueFn rescue);

  unsigned threads() const noexcept { return threads_; }

  /// OS thread id (gettid) of worker `w`; 0 when that worker has not
  /// started yet (or on platforms without gettid). Worker 0 is the
  /// caller of run_cycle(): its tid is recorded at construction, which
  /// normally is the same thread. A respawned replacement overwrites
  /// its slot when it starts. Used by engine/profiler to attach
  /// perf_event counters to the team.
  std::int32_t worker_tid(unsigned w) const noexcept;

  // ---- self-healing ----

  /// True when a medic is running (mode != kOff and threads > 1; a
  /// one-thread team is just the caller, which cannot be quarantined).
  bool healing() const noexcept {
    return heal_.enabled() && threads_ > 1;
  }
  const TeamHealConfig& heal_config() const noexcept { return heal_; }
  HealthBoard& health() noexcept { return health_; }
  const HealthBoard& health() const noexcept { return health_; }

  /// Workers currently not quarantined (== threads() while healthy).
  unsigned live_threads() const noexcept {
    return healing() ? threads_ - health_.dead() : threads_;
  }
  /// Cumulative healing counters. Callable between cycles.
  HealStats heal_stats() const noexcept;

  /// Exceptions that escaped a worker body and were swallowed by the
  /// team's last-resort net. Always zero in a correct build — strategy
  /// bodies route node work through CompiledGraph::execute(), which is
  /// noexcept — but the net keeps a bug from killing a worker thread
  /// (std::terminate) and deadlocking every later cycle.
  std::uint64_t body_errors() const noexcept {
    return body_errors_.load(std::memory_order_relaxed);
  }

 private:
  void thread_main(unsigned id, std::uint64_t seen);
  void wait_for_generation(std::uint64_t seen);
  void run_body(unsigned id) noexcept;
  void dispatch_cycle();
  void spawn_workers();
  // Medic machinery (healing teams only).
  void medic_main();
  void medic_scan(std::vector<std::uint64_t>& last_beats,
                  std::vector<double>& last_progress_us,
                  std::uint64_t& seen_generation);
  void quarantine(unsigned w);
  void credit_done();
  void heal_maintenance();
  void await_retirements();

  unsigned threads_;
  StartMode mode_;
  SpinPolicy spin_;
  WorkerFn fn_;
  // Body for the cycle in flight: &fn_ (owned mode) or the caller's
  // submitted body. Written by the dispatching thread before the
  // generation bump (release) and read by workers after their acquire
  // load of the generation, so no separate atomic is needed.
  const WorkerFn* active_ = nullptr;

  alignas(64) std::atomic<std::uint64_t> generation_{0};
  alignas(64) std::atomic<unsigned> done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> body_errors_{0};

  std::mutex start_mutex_;
  std::condition_variable start_cv_;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;

  std::vector<std::thread> workers_;
  // OS thread id per worker slot (see worker_tid()). unique_ptr array
  // because atomics are not movable.
  std::unique_ptr<std::atomic<std::int32_t>[]> tids_;

  // ---- self-healing state ----
  TeamHealConfig heal_{};
  HealthBoard health_;
  // Rescue hook for the cycle in flight. The owned hook is stable; the
  // hosted hook is published for the duration of one run_cycle(fn,
  // rescue) call (the medic only dereferences it while in_cycle_).
  RescueFn rescue_owned_;
  std::atomic<const RescueFn*> rescue_{nullptr};
  // True between the generation bump and the barrier return; the medic
  // only quarantines mid-cycle (between cycles a silent worker is just
  // parked).
  std::atomic<bool> in_cycle_{false};
  // Cycle arm time (steady_clock ns) for heartbeat-budget arithmetic.
  std::atomic<std::int64_t> cycle_armed_ns_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> respawns_{0};
  std::thread medic_;
  std::mutex medic_mutex_;
  std::condition_variable medic_cv_;
  bool medic_stop_ = false;  // guarded by medic_mutex_
};

}  // namespace djstar::core
