// djstar/core/health.hpp
// Worker-level self-healing: heartbeat board, quarantine states, and the
// strict DJSTAR_HEAL configuration (DESIGN.md §12).
//
// core/fault injects faults into *nodes*; this layer handles faults in
// the *workers themselves* — a thread wedged in a blocking syscall
// (FaultKind::kStallForever) or killed outright (kWorkerAbort) would
// otherwise hold the Team barrier forever and stall every cycle. The
// pieces:
//
//  - HealthBoard: one cache-line slot per worker holding a wait-free
//    heartbeat counter (relaxed increment from each strategy's inner
//    loop), a lifecycle state (kActive -> kFinished | kAborted ->
//    kQuarantined), and an "exited" flag the Team uses to join retired
//    threads at a cycle boundary.
//  - The Team's medic thread (team.cpp) scans the board mid-cycle; a
//    worker whose heartbeat stops longer than the budget is quarantined:
//    its unfinished work is republished to the survivors (per-strategy
//    rescue hooks, deduplicated by the graph's unit claims) and its
//    barrier slot is credited so the cycle completes on N-1 workers.
//  - With HealMode::kRespawn the Team joins the dead thread and spawns a
//    replacement at the next cycle boundary; kQuarantine leaves the team
//    permanently one worker down (still correct — the round-robin
//    strategies adopt the dead lane every cycle).
//
// Exactly-once under quarantine relies on CompiledGraph's unit claims
// (compiled_graph.hpp): every heal-path execution is gated by a CAS on
// the unit's claim flag, so a unit that reaches two workers (a false
// positive quarantine, a duplicate republish) still runs once.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>

#include "djstar/core/fault.hpp"

namespace djstar::core {

/// What the Team does about a worker that stopped making progress.
enum class HealMode : std::uint8_t {
  kOff = 0,     ///< no medic; a wedged worker stalls the team (pre-PR behavior)
  kQuarantine,  ///< quarantine + redistribute; run on N-1 workers forever
  kRespawn,     ///< quarantine + redistribute + respawn at a cycle boundary
};

const char* to_string(HealMode m) noexcept;

/// Parse "off" | "quarantine" | "respawn" (exact match). Throws
/// std::invalid_argument on anything else, quoting the input — same
/// strictness contract as core/thread_count.
HealMode parse_heal_mode(std::string_view text);

/// Resolve the heal mode: DJSTAR_HEAL (if set) overrides `fallback`.
/// Unset returns `fallback`; empty or garbage values throw.
HealMode heal_mode_from_env(HealMode fallback = HealMode::kOff,
                            const char* env_var = "DJSTAR_HEAL");

/// Team self-healing configuration (ExecOptions::heal / EngineConfig /
/// serve::HostConfig carry one of these down to the Team).
struct TeamHealConfig {
  HealMode mode = HealMode::kOff;
  /// Quarantine a worker whose heartbeat has been silent this long while
  /// a cycle is in flight. Generous vs the 2.9 ms deadline by default:
  /// a healthy-but-slow worker keeps beating, so only a genuinely wedged
  /// or dead thread goes silent.
  double heartbeat_budget_us = 2000.0;
  /// Medic scan period.
  double check_interval_us = 100.0;

  bool enabled() const noexcept { return mode != HealMode::kOff; }
};

/// Lifecycle of one worker slot within a cycle.
///
///   kActive ---> kFinished            (worker: normal end of body)
///   kActive ---> kAborted             (worker: kWorkerAbort fault)
///   kActive/kAborted -> kQuarantined  (medic only)
///   kFinished -> kActive              (team maintenance, next cycle)
///   kQuarantined -> kActive           (team maintenance, respawn)
///
/// The kActive->kFinished vs kActive->kQuarantined CAS race is the
/// done-credit arbitration: whichever side wins the transition owns the
/// worker's barrier credit, so it is counted exactly once.
enum class WorkerState : std::uint32_t {
  kActive = 0,
  kFinished,
  kAborted,
  kQuarantined,
};

const char* to_string(WorkerState s) noexcept;

/// Cumulative healing counters (Team::heal_stats()).
struct HealStats {
  std::uint64_t quarantines = 0;    ///< workers quarantined by the medic
  std::uint64_t respawns = 0;       ///< replacement threads spawned
  std::uint64_t rescues = 0;        ///< units republished from dead workers
  std::uint64_t worker_faults = 0;  ///< kStallForever/kWorkerAbort fired
  unsigned live = 0;                ///< workers currently not quarantined
  unsigned threads = 0;             ///< configured team width
};

/// Per-worker heartbeat and lifecycle slots. All operations are wait-free
/// (single atomic op); slots are cache-line separated so the per-unit
/// heartbeat from N workers never false-shares.
class HealthBoard {
 public:
  HealthBoard() = default;

  /// Size the board. Not thread-safe; call before workers start.
  void configure(unsigned width);
  unsigned width() const noexcept { return width_; }

  /// Heartbeat from worker `w`'s inner loop. Wait-free, relaxed.
  void beat(unsigned w) noexcept {
    slots_[w].beats.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t beats(unsigned w) const noexcept {
    return slots_[w].beats.load(std::memory_order_relaxed);
  }

  WorkerState state(unsigned w) const noexcept {
    return static_cast<WorkerState>(
        slots_[w].state.load(std::memory_order_acquire));
  }
  void set_state(unsigned w, WorkerState s) noexcept {
    slots_[w].state.store(static_cast<std::uint32_t>(s),
                          std::memory_order_release);
  }
  /// CAS `from` -> `to`; the arbitration primitive for done credits.
  bool try_transition(unsigned w, WorkerState from, WorkerState to) noexcept {
    auto expected = static_cast<std::uint32_t>(from);
    return slots_[w].state.compare_exchange_strong(
        expected, static_cast<std::uint32_t>(to), std::memory_order_acq_rel);
  }

  /// Set by a retiring worker thread as its very last act; the Team joins
  /// the thread (and respawns, in kRespawn mode) only after seeing it.
  void mark_exited(unsigned w) noexcept {
    slots_[w].exited.store(true, std::memory_order_release);
  }
  bool exited(unsigned w) const noexcept {
    return slots_[w].exited.load(std::memory_order_acquire);
  }
  void clear_exited(unsigned w) noexcept {
    slots_[w].exited.store(false, std::memory_order_relaxed);
  }

  /// Number of currently quarantined workers (maintained by the medic /
  /// team maintenance, read by the strategies' adoption scans).
  unsigned dead() const noexcept {
    return dead_.load(std::memory_order_acquire);
  }
  void add_dead(int delta) noexcept {
    dead_.fetch_add(static_cast<unsigned>(delta), std::memory_order_acq_rel);
  }

  /// Bumped on every quarantine; lets parked workers cheaply detect that
  /// an adoption scan is worth running.
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  void bump_epoch() noexcept {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Units republished from quarantined workers (rescue hooks).
  void note_rescued(std::uint64_t n) noexcept {
    rescued_units_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t rescued_units() const noexcept {
    return rescued_units_.load(std::memory_order_relaxed);
  }
  /// Worker faults that actually fired on a bound thread.
  std::uint64_t worker_faults() const noexcept {
    return worker_faults_.load(std::memory_order_relaxed);
  }

  // ---- thread-local worker binding ----
  //
  // CompiledGraph hands worker faults (kStallForever / kWorkerAbort) to
  // the executor layer via these statics: the Team binds each worker
  // thread to its board slot, and on_worker_fault() applied to the
  // calling thread either wedges it (stall-forever: no heartbeats until
  // the medic quarantines it or the team stops) or marks it aborted.
  // Afterwards abandoned() is true and the strategy body must return
  // without crediting the barrier.

  /// Bind the calling thread to slot `w`. `stop` is the team's stop flag
  /// (lets a wedged thread exit at shutdown so it stays joinable).
  static void bind(HealthBoard* board, unsigned w,
                   const std::atomic<bool>* stop) noexcept;
  static void unbind() noexcept;

  /// True after on_worker_fault() retired the calling thread's cycle.
  static bool abandoned() noexcept;
  static void clear_abandoned() noexcept;

  /// Apply worker fault `k` to the calling thread. No-op for unbound
  /// threads and for worker 0 (the caller thread cannot be replaced; its
  /// faults are consumed and ignored — documented in DESIGN.md §12).
  static void on_worker_fault(chaos::FaultKind k) noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> beats{0};
    std::atomic<std::uint32_t> state{0};  // WorkerState
    std::atomic<bool> exited{false};
  };

  std::unique_ptr<Slot[]> slots_;
  unsigned width_ = 0;
  std::atomic<unsigned> dead_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> rescued_units_{0};
  std::atomic<std::uint64_t> worker_faults_{0};
};

}  // namespace djstar::core
