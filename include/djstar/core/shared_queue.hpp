// djstar/core/shared_queue.hpp
// Strategy 4 — the improvement the paper sketches but does not build
// (§V-B): "Instead of putting the executor thread to sleep because its
// node is currently blocked, it could look for other available nodes and
// compute them. As available nodes do not have to wait for their
// assigned executor thread but [can] be executed by one thread that has
// just finished its work, this strategy potentially has the earliest
// start times for node computations. At the same time, this aspect
// raises the queue management overhead."
//
// This executor implements exactly that trade-off in its plainest form:
// one shared, mutex-protected queue of *ready* nodes. Every thread pulls
// whatever is executable; nobody ever waits for a specific node. The
// price is a lock acquisition per pop and per push — the "queue
// management overhead" the paper warns about, measurable against the
// lock-free work-stealing deques in bench/ablation_strategies.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "djstar/core/executor.hpp"
#include "djstar/core/team.hpp"
#include "djstar/support/time.hpp"

namespace djstar::core {

/// Shared ready-queue scheduling (a centralized-queue greedy scheduler).
class SharedQueueExecutor final : public Executor {
 public:
  explicit SharedQueueExecutor(CompiledGraph& graph, ExecOptions opts = {});

  void run_cycle() override;
  std::string_view name() const noexcept override { return "shared"; }
  unsigned threads() const noexcept override { return opts_.threads; }
  const Team* team() const noexcept override { return team_.get(); }

 private:
  void worker_body(unsigned w);
  void heal_body(unsigned w);
  void heal_rescue();

  CompiledGraph& graph_;
  ExecOptions opts_;
  // Self-healing (DESIGN.md §12): decided per cycle like use_plan_ and
  // published by the team's generation bump.
  bool heal_armed_ = false;

  // The shared ready queue (CP.50: data and its mutex live together).
  // Preallocated ring so pushes on the audio path never allocate.
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<UnitId> ring_;
  std::size_t head_ = 0, tail_ = 0;  // guarded by mutex_
  std::size_t executed_ = 0;          // guarded by mutex_

  support::Clock::time_point cycle_start_{};
  // Static-plan replay decision for the cycle (published by the team's
  // generation bump; replay bypasses the shared queue entirely).
  bool use_plan_ = false;
  std::unique_ptr<Team> team_;
};

}  // namespace djstar::core
