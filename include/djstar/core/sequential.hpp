// djstar/core/sequential.hpp
// The baseline: DJ Star's original single-threaded execution of the
// dependency-sorted node queue (paper §IV, last paragraph).
#pragma once

#include "djstar/core/executor.hpp"
#include "djstar/support/time.hpp"

namespace djstar::core {

/// Executes the levelized queue front to back on the calling thread.
class SequentialExecutor final : public Executor {
 public:
  explicit SequentialExecutor(CompiledGraph& graph, ExecOptions opts = {});

  void run_cycle() override;
  std::string_view name() const noexcept override { return "sequential"; }
  unsigned threads() const noexcept override { return 1; }

 private:
  CompiledGraph& graph_;
  ExecOptions opts_;
};

}  // namespace djstar::core
