// djstar/core/graph_opt.hpp
// Cost-model-driven graph compilation pipeline, run between TaskGraph and
// CompiledGraph (DESIGN.md §11).
//
// The paper's central finding is that fine-grained audio nodes make
// *scheduling overhead*, not raw compute, the speedup limiter: many DJ
// Star nodes run in well under a microsecond while every dynamic
// dispatch costs a dependency check plus a ready-queue operation
// (support/cost_table.hpp: ~1.2 us). This pass attacks that overhead at
// compile time, in two stages:
//
//  1. FUSION — a legality-checked pass that collapses linear chains,
//     single-use fan-in clusters, and batches of independent sinks of
//     cheap nodes into fused *units*. A
//     unit is the executors' new scheduling granule: one dependency
//     counter, one queue entry, members executed back to back in
//     topological order. Fusion never crosses the cost budget that would
//     serialize the critical path, and it preserves:
//       - precedence (units are convex: no path leaves and re-enters),
//       - exactly-once semantics (each member still executes once),
//       - fault-injection identity (faults keep targeting ORIGINAL node
//         ids — CompiledGraph::execute() is still per-node),
//       - per-node observability (executors emit one kRun span per
//         member, nested inside a kFused envelope span).
//
//  2. STATIC SCHEDULE — for graphs whose measured variance is low, a
//     critical-path-first (longest-path-first, He et al.'s "Longer Is
//     Shorter" shaping) list schedule over the fused units, cached as a
//     per-worker replay list. Executors replay it with near-zero queue
//     traffic: each worker walks its own list, spin-checks the unit's
//     dependency counter, runs it, resolves successors. The plan carries
//     an atomic validity flag so the engine can invalidate it between
//     cycles (EWMA drift, supervisor level change) and executors fall
//     back to their dynamic path on the very next cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "djstar/core/graph.hpp"
#include "djstar/support/cost_table.hpp"

namespace djstar::core {

class CompiledGraph;

namespace graph_opt {

/// Pipeline stage selection (DJSTAR_GRAPH_OPT=off|fuse|fuse+static).
enum class Mode {
  kOff,         ///< compile the graph as-is (one unit per node)
  kFuse,        ///< run the fusion pass
  kFuseStatic,  ///< fusion + cached static schedule replay
};

std::string_view to_string(Mode m) noexcept;
std::optional<Mode> parse_mode(std::string_view name) noexcept;

/// Hardened DJSTAR_GRAPH_OPT parsing: unset returns nullopt, a value
/// that is empty after trimming or not in {off, fuse, fuse+static}
/// throws std::invalid_argument (a misspelled mode must not silently
/// disable the optimizer).
std::optional<Mode> mode_from_env();

// ---- cost model -------------------------------------------------------------

/// Per-node execution-cost estimates in microseconds.
///
/// Seeded once from offline measurements (bench/node_profile's per-node
/// means, or DjStarGraph::reference_durations() for the paper graph) and
/// refined online through observe(): an EWMA of subsequent measurements
/// (executor span timings, re-measurement sweeps). The model also tracks
/// an EWMA of the absolute deviation per node, which is what the static
/// schedule pass consults — a plan is only worth caching when the
/// measured variance is low.
///
/// Thread safety: none. Mutate from the controlling thread between
/// cycles, like every other compile-time structure.
class CostModel {
 public:
  /// `n` nodes, all starting at `default_cost_us`.
  explicit CostModel(std::size_t n, double default_cost_us = 1.0);

  /// Replace every estimate (deviations reset to zero). `costs.size()`
  /// must equal node_count().
  void seed(std::span<const double> costs);

  /// Fold one measurement of node `n` into the EWMA estimate.
  void observe(NodeId n, double us) noexcept;

  /// Fold one whole-cycle graph time into the cycle-level EWMA (drives
  /// the engine's drift detection; see drift_ratio()).
  void observe_cycle(double graph_us) noexcept;

  std::size_t node_count() const noexcept { return cost_.size(); }
  double cost(NodeId n) const noexcept { return cost_[n]; }
  std::span<const double> costs() const noexcept { return cost_; }
  /// EWMA of |measurement - estimate| for node `n` (0 until observed).
  double deviation(NodeId n) const noexcept { return dev_[n]; }
  std::uint64_t observations() const noexcept { return observations_; }

  /// Largest per-node coefficient of variation (deviation / cost) over
  /// nodes whose cost is non-negligible. The static-schedule pass caches
  /// a plan only when this is at most its variance gate.
  double max_cv() const noexcept;

  /// Cycle-level EWMA of graph time (0 until observe_cycle() was called).
  double cycle_ewma_us() const noexcept { return cycle_ewma_us_; }
  /// Ratio of the current cycle EWMA to `baseline_us` (1.0 when either
  /// is zero) — the engine's staleness test for cached static plans.
  double drift_ratio(double baseline_us) const noexcept;

  /// EWMA smoothing factor (weight of the newest sample).
  double alpha() const noexcept { return alpha_; }
  void set_alpha(double a) noexcept { alpha_ = a; }

 private:
  std::vector<double> cost_;
  std::vector<double> dev_;
  double alpha_ = 0.1;
  double cycle_ewma_us_ = 0.0;
  std::uint64_t observations_ = 0;
};

// ---- fusion pass ------------------------------------------------------------

/// Fusion pass tuning.
struct FusionOptions {
  /// Dispatch overhead a dynamic executor pays per scheduled unit
  /// (dependency check + one ready-queue operation, from the calibrated
  /// cost table). Fusing k nodes into one unit saves (k-1) times this.
  double dispatch_overhead_us = support::costs::kPerNodeDispatchUs;
  /// A node is "cheap" (fusion candidate) when its estimated cost is
  /// below fuse_threshold x dispatch_overhead_us — i.e. when dispatching
  /// it costs at least 1/fuse_threshold of running it.
  double fuse_threshold = 4.0;
  /// Never grow a unit beyond this summed cost: over-fusing serializes
  /// the critical path (the flip side of He et al.'s path shaping).
  double max_unit_cost_us = 40.0;
  /// Hard cap on members per unit.
  std::uint32_t max_unit_size = 8;
  /// Allow fusing nodes from different graph sections. Off by default so
  /// work-stealing's by-section seeding keeps its locality meaning.
  bool fuse_across_sections = false;
};

/// A partition of the graph's nodes into fused units. `units[u]` lists
/// the member nodes of unit `u` in intra-unit execution order (original
/// topological order); `unit_of[n]` is the inverse map. The identity
/// plan has one singleton unit per node, in node-id order.
struct Plan {
  std::vector<std::vector<NodeId>> units;
  std::vector<std::uint32_t> unit_of;

  std::size_t unit_count() const noexcept { return units.size(); }
  std::size_t node_count() const noexcept { return unit_of.size(); }
  /// Number of multi-node units.
  std::size_t fused_unit_count() const noexcept;

  static Plan identity(std::size_t n);

  /// Full legality re-check against `g` (used by the property tests and
  /// asserted by CompiledGraph in debug builds):
  ///  - units partition [0, node_count) exactly;
  ///  - every intra-unit edge respects the member order;
  ///  - units are convex: contracting them leaves the graph acyclic
  ///    (no path leaves a unit and re-enters it).
  bool validate(const TaskGraph& g) const;
};

/// Compute a legal fusion plan for `g` under `costs`.
///
/// Three cluster shapes are fused, all provably convex in a DAG:
///  - linear chains a->b where a has out-degree 1 and b in-degree 1;
///  - fan-in clusters: a join node plus cheap predecessors whose ONLY
///    successor is the join;
///  - sink batches: independent sinks (out-degree 0) with identical
///    predecessor sets — including edge-free utility nodes, whose
///    predecessor set is empty.
/// Only cheap nodes (see FusionOptions) are fused, chains stop at the
/// cost/size budget, and with fuse_across_sections=false members must
/// share a section. The result always passes Plan::validate().
Plan plan_fusion(const TaskGraph& g, const CostModel& costs,
                 const FusionOptions& opt = {});

// ---- cached static schedule -------------------------------------------------

/// A cached critical-path-first schedule over a compiled graph's units:
/// per-worker replay lists, ordered by scheduled start time. Executors
/// given a plan via ExecOptions replay it when valid() and fall back to
/// their dynamic scheduling when not. The flag is the only field ever
/// touched concurrently (engine writes between cycles, executors read at
/// cycle start).
class StaticPlan {
 public:
  StaticPlan(unsigned threads,
             std::vector<std::vector<std::uint32_t>> assignment,
             double predicted_makespan_us)
      : threads_(threads),
        assignment_(std::move(assignment)),
        predicted_makespan_us_(predicted_makespan_us) {}

  // Movable so build_static_plan() can return by value (the atomic flag
  // needs a manual transfer); not copyable.
  StaticPlan(StaticPlan&& o) noexcept
      : threads_(o.threads_),
        assignment_(std::move(o.assignment_)),
        predicted_makespan_us_(o.predicted_makespan_us_),
        valid_(o.valid_.load(std::memory_order_relaxed)) {}
  StaticPlan& operator=(StaticPlan&&) = delete;

  /// Swap in a freshly built schedule and revalidate. Call only between
  /// cycles — executors hold a pointer to this object and read it while
  /// a cycle is in flight.
  void replace(StaticPlan&& fresh) noexcept {
    threads_ = fresh.threads_;
    assignment_ = std::move(fresh.assignment_);
    predicted_makespan_us_ = fresh.predicted_makespan_us_;
    valid_.store(true, std::memory_order_release);
  }

  unsigned threads() const noexcept { return threads_; }
  /// Unit ids worker `w` replays, in start order.
  std::span<const std::uint32_t> worker_units(unsigned w) const noexcept {
    return assignment_[w];
  }
  double predicted_makespan_us() const noexcept {
    return predicted_makespan_us_;
  }

  bool valid() const noexcept {
    return valid_.load(std::memory_order_acquire);
  }
  /// Engine-side staleness lever; call only between cycles.
  void invalidate() noexcept {
    valid_.store(false, std::memory_order_release);
  }
  void revalidate() noexcept {
    valid_.store(true, std::memory_order_release);
  }

 private:
  unsigned threads_;
  std::vector<std::vector<std::uint32_t>> assignment_;
  double predicted_makespan_us_;
  std::atomic<bool> valid_{true};
};

/// Build a static plan for `threads` workers over `cg`'s units with
/// longest-path-first list scheduling (HLF / He et al.): ready units are
/// started in decreasing upward-rank order on the earliest-free worker.
/// Unit costs are the sums of `costs` over members. The per-worker
/// order is the simulated start order, which makes lock-step replay
/// deadlock-free (every unit's predecessors appear strictly earlier in
/// the simulated schedule).
StaticPlan build_static_plan(const CompiledGraph& cg, const CostModel& costs,
                             unsigned threads);

}  // namespace graph_opt
}  // namespace djstar::core
