// djstar/core/sleep.hpp
// Strategy 2 (paper §V-B): thread-sleeping.
//
// Same round-robin node assignment as busy-waiting, but a thread whose
// next node has unmet dependencies registers itself as the node's
// executor and goes to sleep; the predecessor that resolves the last
// dependency wakes it. Saves CPU cycles at the cost of sleep/wake
// latency — the paper's histograms show no graph execution below 0.4 ms
// with this strategy.
//
// Schedule fuzzing: chaos::maybe_perturb() sites sit inside the two
// halves of the waiter protocol — between registration and the re-check
// (kBeforeWait, the lost-wakeup window) and between resolving the last
// dependency and the notify (kBeforeNotify); see core/chaos.hpp.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "djstar/core/executor.hpp"
#include "djstar/core/team.hpp"
#include "djstar/support/time.hpp"

namespace djstar::core {

/// Round-robin assignment + waiter registration + successor signalling.
class SleepExecutor final : public Executor {
 public:
  explicit SleepExecutor(CompiledGraph& graph, ExecOptions opts = {});

  void run_cycle() override;
  std::string_view name() const noexcept override { return "sleep"; }
  unsigned threads() const noexcept override { return opts_.threads; }
  const Team* team() const noexcept override { return team_.get(); }

 private:
  void worker_body(unsigned w);
  void heal_body(unsigned w);

  /// One park slot per worker: a worker only ever sleeps on its own slot,
  /// and only one node at a time can have it registered as waiter
  /// (CP.50: the mutex lives with the condition it guards).
  struct alignas(64) Slot {
    std::mutex m;
    std::condition_variable cv;
  };

  CompiledGraph& graph_;
  ExecOptions opts_;
  std::vector<std::unique_ptr<Slot>> slots_;
  support::Clock::time_point cycle_start_{};
  // Static-plan replay decision for the cycle (published by the team's
  // generation bump). Replay spin-waits instead of parking: the plan
  // already minimizes dependency stalls, so waits are too short to be
  // worth a sleep/wake round trip.
  bool use_plan_ = false;
  std::unique_ptr<Team> team_;
};

}  // namespace djstar::core
