// djstar/core/busy_wait.hpp
// Strategy 1 (paper §V-A): busy-waiting.
//
// Nodes are assigned to threads round-robin straight from the
// dependency-sorted queue. When a thread reaches a node whose
// dependencies are not yet met it spins (actively waits) until they are.
// The paper's key result: with cycles this short (hundreds of µs) and
// dependency stalls even shorter, spinning beats sleeping — 327 µs per
// graph on 4 threads, 99 % efficiency vs. the optimal schedule.
//
// Schedule fuzzing: the dependency check is a chaos::maybe_perturb()
// site (kDependencyCheck) so the stress suite can reorder the
// check-vs-resolve race; see core/chaos.hpp.
#pragma once

#include <memory>

#include "djstar/core/executor.hpp"
#include "djstar/core/team.hpp"
#include "djstar/support/time.hpp"

namespace djstar::core {

/// Round-robin assignment + spin on unmet dependencies.
class BusyWaitExecutor final : public Executor {
 public:
  explicit BusyWaitExecutor(CompiledGraph& graph, ExecOptions opts = {});

  void run_cycle() override;
  std::string_view name() const noexcept override { return "busy"; }
  unsigned threads() const noexcept override { return opts_.threads; }
  const Team* team() const noexcept override { return team_.get(); }

 private:
  void worker_body(unsigned w);
  void heal_body(unsigned w);

  CompiledGraph& graph_;
  ExecOptions opts_;
  support::Clock::time_point cycle_start_{};
  // Replay the cached static plan this cycle? Decided in run_cycle();
  // the team's generation bump (release/acquire) publishes it to the
  // workers along with the rest of the cycle state.
  bool use_plan_ = false;
  std::unique_ptr<Team> team_;  // constructed last: workers use members above
};

}  // namespace djstar::core
