// djstar/core/thread_count.hpp
// Hardened thread-count configuration.
//
// Every layer that sizes a worker pool (AudioEngine, serve::EngineHost,
// benches) resolves its thread count through here instead of trusting a
// raw integer or getenv() string. The rules:
//
//   - DJSTAR_THREADS, when set, overrides the configured count (it is an
//     explicit runtime request).
//   - "0" (env or config) means "auto": std::thread::hardware_concurrency,
//     clamped to at least 1.
//   - Negative, non-numeric, empty, or trailing-garbage values throw
//     std::invalid_argument with a message naming the offending text —
//     never a silent misconfiguration.
//   - Values above kMaxThreads are clamped to kMaxThreads (a thousand
//     spinning workers is a resource bug, not a scheduling request).
#pragma once

#include <string_view>

namespace djstar::core {

/// Upper clamp for any resolved thread count.
inline constexpr unsigned kMaxThreads = 512;

/// Parse a thread-count string ("4", "0" = auto). Returns the parsed
/// value (0 meaning auto, large values clamped to kMaxThreads). Throws
/// std::invalid_argument on empty, non-numeric, negative, or
/// trailing-garbage input; the message quotes the input.
unsigned parse_thread_count(std::string_view text);

/// Resolve the effective worker count: DJSTAR_THREADS (if set) overrides
/// `requested`; 0 resolves to hardware concurrency; the result is
/// clamped to [1, kMaxThreads]. Throws std::invalid_argument when the
/// environment value fails to parse.
unsigned resolve_thread_count(unsigned requested = 0,
                              const char* env_var = "DJSTAR_THREADS");

}  // namespace djstar::core
