// djstar/core/factory.hpp
// Strategy enumeration and executor factory used by the engine, the
// benches, and the tests to sweep over all scheduling strategies.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "djstar/core/executor.hpp"
#include "djstar/core/work_stealing.hpp"

namespace djstar::core {

/// The paper's three parallelization strategies, the sequential
/// baseline, and the shared-ready-queue variant the paper sketches as
/// the improvement over thread-sleeping (§V-B, see shared_queue.hpp).
enum class Strategy {
  kSequential,
  kBusyWait,
  kSleep,
  kWorkStealing,
  kSharedQueue,
};

/// Canonical short name ("sequential", "busy", "sleep", "ws").
std::string_view to_string(Strategy s) noexcept;

/// Parse a short name; nullopt for unknown strings.
std::optional<Strategy> parse_strategy(std::string_view name) noexcept;

/// All strategies in paper order (BUSY, SLEEP, WS) with the baseline
/// first and the extension variant last.
inline constexpr Strategy kAllStrategies[] = {
    Strategy::kSequential, Strategy::kBusyWait, Strategy::kSleep,
    Strategy::kWorkStealing, Strategy::kSharedQueue};

/// The three parallel strategies of Table I.
inline constexpr Strategy kParallelStrategies[] = {
    Strategy::kBusyWait, Strategy::kSleep, Strategy::kWorkStealing};

/// Construct an executor for `s` bound to `graph`.
std::unique_ptr<Executor> make_executor(Strategy s, CompiledGraph& graph,
                                        ExecOptions opts = {},
                                        WorkStealingOptions ws = {});

}  // namespace djstar::core
