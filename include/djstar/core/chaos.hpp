// djstar/core/chaos.hpp
// Schedule-fuzzing hook for the concurrency-correctness harness.
//
// The executors' synchronization protocols (busy-wait dependency
// counters, the sleep strategy's waiter registration, the Chase-Lev
// deque's owner/thief races) only fail in narrow interleaving windows
// that quiet wall-clock timing almost never hits. The stress suite
// widens those windows deliberately: executors and the deque call
// maybe_perturb() at every synchronization-sensitive point, and when
// chaos is enabled the calling thread is randomly delayed there
// (hardware pauses, yields, or a microsecond-scale sleep).
//
// Off by default: maybe_perturb() is a single relaxed atomic load and a
// predicted-not-taken branch, so the hooks stay compiled into release
// builds with negligible cost. Tests enable chaos via ScopedChaos.
//
// Determinism: every thread draws from its own Xoshiro256 stream,
// seeded from (global seed, per-thread index). Thread indices are
// assigned on first use and stable for the life of the thread, so a
// given (seed, thread index) always produces the same decision
// sequence. re-enable() reseeds all streams (epoch bump).
//
// Thread safety: enable()/disable()/reset_counters() must not race with
// an executing cycle (call them from the controlling thread between
// runs, like TraceRecorder::arm). maybe_perturb() is safe from any
// thread at any time.
#pragma once

#include <cstddef>
#include <cstdint>

namespace djstar::core::chaos {

/// Synchronization-sensitive program points that can be perturbed.
enum class Site : std::uint8_t {
  kDependencyCheck,  ///< executor about to test a node's pending counter
  kBeforeWait,       ///< between waiter registration / epoch read and the
                     ///< blocking wait (the classic lost-wakeup window)
  kBeforeNotify,     ///< between resolving the last dependency and the wake
  kDequePush,        ///< Chase-Lev push, between index reads and publish
  kDequePop,         ///< Chase-Lev pop, inside the owner/thief race window
  kDequeSteal,       ///< Chase-Lev steal, between top read and the CAS
  kNodeReady,        ///< work-stealing: node pushed, idle wake pending
  kCycleStart,       ///< worker observed the new generation, body not begun
};
inline constexpr std::size_t kSiteCount = 8;

const char* to_string(Site s) noexcept;

/// Arm the hook. `intensity_permille` is the probability (in 1/1000) that
/// a visited site injects a delay; the rest of the draw picks the delay
/// kind (pause burst / yield / micro-sleep). Reseeds every thread stream.
void enable(std::uint64_t seed, std::uint32_t intensity_permille = 200);

/// Disarm the hook; maybe_perturb() returns to its one-load fast path.
void disable() noexcept;

bool enabled() noexcept;

/// Perturbation point; no-op (one relaxed load) when disabled.
void maybe_perturb(Site s) noexcept;

/// Total delays injected since the last enable()/reset_counters().
std::uint64_t perturbations() noexcept;

/// Times `s` was visited while enabled (hit != necessarily delayed).
/// Lets tests prove the hooks are actually wired into a code path.
std::uint64_t site_hits(Site s) noexcept;

void reset_counters() noexcept;

/// RAII arming for tests: enables in the constructor, restores the
/// disabled state (and clears counters) in the destructor.
class ScopedChaos {
 public:
  explicit ScopedChaos(std::uint64_t seed,
                       std::uint32_t intensity_permille = 200) {
    enable(seed, intensity_permille);
  }
  ~ScopedChaos() {
    disable();
    reset_counters();
  }
  ScopedChaos(const ScopedChaos&) = delete;
  ScopedChaos& operator=(const ScopedChaos&) = delete;
};

}  // namespace djstar::core::chaos
