// djstar/core/compiled_graph.hpp
// Immutable, executor-ready form of a TaskGraph: flat arrays (CSR
// adjacency), the levelized node queue, and the per-cycle atomic
// dependency counters that every scheduling strategy shares.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "djstar/core/graph.hpp"

namespace djstar::core {

/// How the executor-facing node queue is ordered. Both options are
/// dependency-safe for round-robin assignment (every predecessor appears
/// earlier); DJ Star uses the levelized order (paper §IV), and the
/// difference is measured in bench/ablation_queue_order.
enum class QueueOrder {
  kLevelized,    ///< sorted by dependency depth (the paper's queue)
  kTopological,  ///< plain Kahn order (insertion-order tie-breaking)
};

/// Compiled task graph. Construction validates acyclicity and snapshots
/// structure; begin_cycle() resets the dependency counters so executors
/// can run the graph repeatedly without touching the structure.
///
/// Thread safety: all const accessors are safe concurrently; the atomic
/// cycle state (`pending`, `waiter`) is operated on by the executors
/// under the protocol described in each executor's header.
class CompiledGraph {
 public:
  /// Compiles `g`. Asserts that the graph is acyclic and every node has
  /// a work function.
  explicit CompiledGraph(const TaskGraph& g,
                         QueueOrder order = QueueOrder::kLevelized);

  CompiledGraph(const CompiledGraph&) = delete;
  CompiledGraph& operator=(const CompiledGraph&) = delete;

  std::size_t node_count() const noexcept { return names_.size(); }

  const std::string& name(NodeId n) const noexcept { return names_[n]; }
  const std::string& section(NodeId n) const noexcept { return sections_[n]; }
  const WorkFn& work(NodeId n) const noexcept { return works_[n]; }

  std::span<const NodeId> successors(NodeId n) const noexcept {
    return {succ_list_.data() + succ_off_[n], succ_off_[n + 1] - succ_off_[n]};
  }
  std::uint32_t in_degree(NodeId n) const noexcept { return indeg_[n]; }
  std::uint32_t depth(NodeId n) const noexcept { return depth_[n]; }
  std::uint32_t max_depth() const noexcept { return max_depth_; }

  /// The dependency-sorted FIFO queue the paper's strategies consume.
  std::span<const NodeId> order() const noexcept { return order_; }

  /// Source nodes grouped as they appear in order() (all depth-0 first).
  std::span<const NodeId> sources() const noexcept {
    return {order_.data(), source_count_};
  }

  /// Distinct section labels in first-appearance order.
  std::span<const std::string> section_labels() const noexcept {
    return section_labels_;
  }
  /// Index of node `n`'s section within section_labels().
  std::uint32_t section_index(NodeId n) const noexcept {
    return section_idx_[n];
  }

  // ---- per-cycle state shared by all executors ----

  /// Reset dependency counters and waiter slots for a new cycle.
  /// Must not run concurrently with an executing cycle.
  void begin_cycle() noexcept;

  /// Remaining unfinished predecessors of `n` this cycle.
  std::atomic<std::int32_t>& pending(NodeId n) noexcept {
    return cycle_[n].pending;
  }
  /// Worker registered to be woken when `n` becomes ready (-1 = none).
  /// Used by the thread-sleeping strategy only.
  std::atomic<std::int32_t>& waiter(NodeId n) noexcept {
    return cycle_[n].waiter;
  }

 private:
  struct alignas(64) CycleState {  // one cache line per node: the pending
    std::atomic<std::int32_t> pending{0};  // counters are the hot shared data
    std::atomic<std::int32_t> waiter{-1};
  };

  std::vector<std::string> names_;
  std::vector<std::string> sections_;
  std::vector<WorkFn> works_;
  std::vector<std::uint32_t> indeg_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::size_t> succ_off_;
  std::vector<NodeId> succ_list_;
  std::vector<NodeId> order_;
  std::size_t source_count_ = 0;
  std::uint32_t max_depth_ = 0;
  std::vector<std::string> section_labels_;
  std::vector<std::uint32_t> section_idx_;
  std::unique_ptr<CycleState[]> cycle_;
};

}  // namespace djstar::core
