// djstar/core/compiled_graph.hpp
// Immutable, executor-ready form of a TaskGraph: flat arrays (CSR
// adjacency), the levelized node queue, and the per-cycle atomic
// dependency counters that every scheduling strategy shares.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "djstar/core/fault.hpp"
#include "djstar/core/graph.hpp"
#include "djstar/core/graph_opt.hpp"
#include "djstar/support/journal.hpp"

namespace djstar::core {

/// Index of a fused scheduling unit within its CompiledGraph. With no
/// fusion plan every unit is a singleton and UnitId == NodeId.
using UnitId = std::uint32_t;

/// How the executor-facing node queue is ordered. Both options are
/// dependency-safe for round-robin assignment (every predecessor appears
/// earlier); DJ Star uses the levelized order (paper §IV), and the
/// difference is measured in bench/ablation_queue_order.
enum class QueueOrder {
  kLevelized,    ///< sorted by dependency depth (the paper's queue)
  kTopological,  ///< plain Kahn order (insertion-order tie-breaking)
};

/// Compiled task graph. Construction validates acyclicity and snapshots
/// structure; begin_cycle() resets the dependency counters so executors
/// can run the graph repeatedly without touching the structure.
///
/// Thread safety: all const accessors are safe concurrently; the atomic
/// cycle state (`pending`, `waiter`) is operated on by the executors
/// under the protocol described in each executor's header.
class CompiledGraph {
 public:
  /// Compiles `g`. Asserts that the graph is acyclic and every node has
  /// a work function. Units are the identity partition (one per node).
  explicit CompiledGraph(const TaskGraph& g,
                         QueueOrder order = QueueOrder::kLevelized);

  /// Compiles `g` under a fusion `plan` (graph_opt::plan_fusion).
  /// Asserts Plan::validate(g). Node-level structure and execution are
  /// unchanged — the plan only adds the coarser unit granule that the
  /// executors schedule by.
  CompiledGraph(const TaskGraph& g, const graph_opt::Plan& plan,
                QueueOrder order = QueueOrder::kLevelized);

  CompiledGraph(const CompiledGraph&) = delete;
  CompiledGraph& operator=(const CompiledGraph&) = delete;

  std::size_t node_count() const noexcept { return names_.size(); }

  const std::string& name(NodeId n) const noexcept { return names_[n]; }
  const std::string& section(NodeId n) const noexcept { return sections_[n]; }
  const WorkFn& work(NodeId n) const noexcept { return works_[n]; }

  std::span<const NodeId> successors(NodeId n) const noexcept {
    return {succ_list_.data() + succ_off_[n], succ_off_[n + 1] - succ_off_[n]};
  }
  std::uint32_t in_degree(NodeId n) const noexcept { return indeg_[n]; }
  std::uint32_t depth(NodeId n) const noexcept { return depth_[n]; }
  std::uint32_t max_depth() const noexcept { return max_depth_; }

  /// The dependency-sorted FIFO queue the paper's strategies consume.
  std::span<const NodeId> order() const noexcept { return order_; }

  /// Source nodes grouped as they appear in order() (all depth-0 first).
  std::span<const NodeId> sources() const noexcept {
    return {order_.data(), source_count_};
  }

  /// Distinct section labels in first-appearance order.
  std::span<const std::string> section_labels() const noexcept {
    return section_labels_;
  }
  /// Index of node `n`'s section within section_labels().
  std::uint32_t section_index(NodeId n) const noexcept {
    return section_idx_[n];
  }

  // ---- node execution (fault-tolerant path) ----

  /// Execute node `n` for this cycle: honours the skip mask (runs the
  /// bypass form instead, if any), the cancel flag (drains without
  /// running work), and the armed fault plan; catches anything the work
  /// function throws and records it as a cycle fault. Every executor
  /// routes node execution through here, which is what makes all of
  /// them exception-safe — no exception ever crosses executor
  /// synchronization code, dependency counters keep resolving, waiters
  /// keep waking, and the executor stays reusable.
  void execute(NodeId n) noexcept;

  // ---- fault injection ----

  /// Arm `plan`; faults fire deterministically per (seed, cycle, node).
  /// Must not be called concurrently with an executing cycle.
  void arm_faults(const chaos::FaultPlan& plan);
  void disarm_faults() noexcept { faults_armed_ = false; }
  bool faults_armed() const noexcept { return faults_armed_; }

  /// True when the armed plan can produce worker faults (kStallForever /
  /// kWorkerAbort). Gates the heal paths' per-unit pre-execution check.
  bool worker_faults_armed() const noexcept {
    return faults_armed_ && worker_faults_possible_;
  }

  /// Resolve-and-consume the worker fault for unit `u` this cycle: scans
  /// the unit's members, and for the first member whose decision is a
  /// worker kind wins a per-node one-shot CAS so exactly one caller per
  /// cycle receives the kind (everyone else gets kNone — re-decisions
  /// after a quarantine republish see the consumed flag). Counts into
  /// faults_injected() and journals like any node fault. Called by the
  /// healing executors before running a claimed unit; execute() consults
  /// the same one-shot flag, so a kind consumed here never fires again
  /// inside the unit body.
  chaos::FaultKind take_worker_fault(UnitId u) noexcept;

  /// Hook invoked when a kNanOutput fault fires on node `n` (the graph
  /// owner decides what "corrupted audio" means). Called from worker
  /// threads; must be thread-safe. May be null.
  void set_poison_hook(std::function<void(NodeId)> hook) {
    poison_ = std::move(hook);
  }

  /// Structured event journal to receive a kFaultInjected event (a=node,
  /// b=FaultKind) for every fault that fires. Push is lock-free, so this
  /// is safe from worker threads mid-cycle. May be null; the journal must
  /// outlive the graph or be detached first. Set only between cycles.
  void set_journal(support::EventJournal* journal) noexcept {
    journal_ = journal;
  }

  // ---- degradation: skip masks & bypass forms ----

  /// Mask/unmask node `n`. Masked nodes run their bypass form (or
  /// nothing) instead of their work. Call only between cycles; the
  /// executors' cycle-start synchronization publishes the change.
  void set_node_masked(NodeId n, bool masked) noexcept {
    masked_[n] = masked ? 1 : 0;
  }
  bool node_masked(NodeId n) const noexcept { return masked_[n] != 0; }

  /// Cheap replacement work for a masked node (e.g. copy-through for a
  /// bypassed effect). Call only between cycles.
  void set_bypass(NodeId n, WorkFn fn) { bypass_[n] = std::move(fn); }

  // ---- cancellation & cycle outcome ----

  /// Request the in-flight cycle to drain: remaining nodes skip their
  /// work but still resolve dependencies, so every executor finishes
  /// promptly without deadlocking. Safe from any thread (this is the
  /// watchdog's lever).
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
    abort_cycle_.store(true, std::memory_order_release);
  }
  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True when this cycle saw a node fault or a cancel request. Stable
  /// once the cycle has completed; reset by begin_cycle().
  bool cycle_failed() const noexcept {
    return abort_cycle_.load(std::memory_order_acquire);
  }
  /// Node whose exception failed the cycle (-1: none / cancel only).
  std::int32_t fault_node() const noexcept {
    return fault_node_.load(std::memory_order_acquire);
  }
  /// what() of the recorded fault (empty when fault_node() is -1). Read
  /// only between cycles.
  const char* fault_message() const noexcept { return fault_what_; }

  /// Monotonic cycle counter (drives deterministic fault decisions).
  std::uint64_t cycle_index() const noexcept { return cycle_index_; }
  /// Nodes whose real work did not run this cycle (masked or drained).
  std::uint64_t skipped_this_cycle() const noexcept {
    return skipped_.load(std::memory_order_relaxed);
  }
  /// Masked nodes whose bypass form ran this cycle (subset of skipped).
  std::uint64_t bypassed_this_cycle() const noexcept {
    return bypassed_.load(std::memory_order_relaxed);
  }
  /// Faults injected since construction (all kinds, cumulative).
  std::uint64_t faults_injected() const noexcept {
    return faults_injected_.load(std::memory_order_relaxed);
  }

  // ---- per-cycle state shared by all executors ----

  /// Reset dependency counters, waiter slots, and the fault/cancel
  /// state for a new cycle. Must not run concurrently with an
  /// executing cycle.
  void begin_cycle() noexcept;

  /// Remaining unfinished predecessors of `n` this cycle.
  std::atomic<std::int32_t>& pending(NodeId n) noexcept {
    return cycle_[n].pending;
  }
  /// Worker registered to be woken when `n` becomes ready (-1 = none).
  /// Used by the thread-sleeping strategy only.
  std::atomic<std::int32_t>& waiter(NodeId n) noexcept {
    return cycle_[n].waiter;
  }

  // ---- fused units (graph_opt) ----
  //
  // The executors' scheduling granule. Without a fusion plan this layer
  // is the identity: unit u == node u, unit edges == node edges, and the
  // unit queue equals order(). Unit-level cycle state mirrors the
  // node-level protocol (same reset in begin_cycle, same resolution
  // discipline in every executor).

  std::size_t unit_count() const noexcept { return unit_mem_off_.size() - 1; }
  /// True when any unit has more than one member.
  bool fused() const noexcept { return fused_; }

  /// Member nodes of unit `u`, in intra-unit execution order.
  std::span<const NodeId> unit_members(UnitId u) const noexcept {
    return {unit_mem_list_.data() + unit_mem_off_[u],
            unit_mem_off_[u + 1] - unit_mem_off_[u]};
  }
  /// Unit that node `n` belongs to.
  UnitId unit_of(NodeId n) const noexcept { return unit_of_[n]; }

  std::span<const UnitId> unit_successors(UnitId u) const noexcept {
    return {unit_succ_list_.data() + unit_succ_off_[u],
            unit_succ_off_[u + 1] - unit_succ_off_[u]};
  }
  std::uint32_t unit_in_degree(UnitId u) const noexcept {
    return unit_indeg_[u];
  }
  std::uint32_t unit_depth(UnitId u) const noexcept { return unit_depth_[u]; }
  /// Section of the unit's first member (fusion does not cross sections
  /// unless explicitly told to).
  std::uint32_t unit_section_index(UnitId u) const noexcept {
    return section_idx_[unit_mem_list_[unit_mem_off_[u]]];
  }

  /// The unit-level dependency-sorted queue (== order() when unfused).
  std::span<const UnitId> unit_order() const noexcept { return unit_order_; }
  /// Source units grouped at the front of unit_order().
  std::span<const UnitId> unit_sources() const noexcept {
    return {unit_order_.data(), unit_source_count_};
  }

  /// Remaining unfinished predecessor units of `u` this cycle.
  std::atomic<std::int32_t>& unit_pending(UnitId u) noexcept {
    return unit_cycle_[u].pending;
  }
  /// Worker registered to be woken when unit `u` becomes ready (-1 =
  /// none). Thread-sleeping strategy only.
  std::atomic<std::int32_t>& unit_waiter(UnitId u) noexcept {
    return unit_cycle_[u].waiter;
  }

  // ---- unit claims (self-healing executors, DESIGN.md §12) ----
  //
  // The healing strategy paths gate every unit execution behind a CAS on
  // the unit's claim flag (0 free -> 1 running -> 2 done). A unit that
  // reaches two workers — a quarantined worker's lane adopted by several
  // survivors, a duplicate republish into the shared ring or the orphan
  // buffer — still runs exactly once: the claim loser just moves on, and
  // only the winner resolves successors. units_done() is the heal paths'
  // cycle-completion condition (it also advances on drained cycles, so
  // cancellation still terminates every worker).

  /// Claim unit `u` for execution. One winner per cycle.
  bool unit_try_claim(UnitId u) noexcept {
    std::uint8_t expected = 0;
    return unit_cycle_[u].claim.compare_exchange_strong(
        expected, 1, std::memory_order_acq_rel);
  }
  /// Return a claim without running (the claimer took a worker fault).
  void unit_release_claim(UnitId u) noexcept {
    unit_cycle_[u].claim.store(0, std::memory_order_release);
  }
  /// Mark a claimed unit executed and count it toward units_done().
  void unit_mark_done(UnitId u) noexcept {
    unit_cycle_[u].claim.store(2, std::memory_order_release);
    units_done_.fetch_add(1, std::memory_order_acq_rel);
  }
  bool unit_done(UnitId u) noexcept {
    return unit_cycle_[u].claim.load(std::memory_order_acquire) == 2;
  }
  bool unit_claimed(UnitId u) noexcept {
    return unit_cycle_[u].claim.load(std::memory_order_acquire) != 0;
  }
  /// Units marked done this cycle (heal paths only; 0 on normal paths).
  std::size_t units_done() const noexcept {
    return units_done_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) CycleState {  // one cache line per node: the pending
    std::atomic<std::int32_t> pending{0};  // counters are the hot shared data
    std::atomic<std::int32_t> waiter{-1};
    // Node entries: one-shot consumption flag for worker-fault decisions
    // (take_worker_fault vs execute). Unit entries: the claim flag.
    std::atomic<std::uint8_t> wfault{0};
    std::atomic<std::uint8_t> claim{0};
  };

  std::vector<std::string> names_;
  std::vector<std::string> sections_;
  std::vector<WorkFn> works_;
  std::vector<std::uint32_t> indeg_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::size_t> succ_off_;
  std::vector<NodeId> succ_list_;
  std::vector<NodeId> order_;
  std::size_t source_count_ = 0;
  std::uint32_t max_depth_ = 0;
  std::vector<std::string> section_labels_;
  std::vector<std::uint32_t> section_idx_;
  std::unique_ptr<CycleState[]> cycle_;

  // Fused-unit structure (identity partition when no plan was given).
  std::vector<std::size_t> unit_mem_off_;
  std::vector<NodeId> unit_mem_list_;
  std::vector<UnitId> unit_of_;
  std::vector<std::size_t> unit_succ_off_;
  std::vector<UnitId> unit_succ_list_;
  std::vector<std::uint32_t> unit_indeg_;
  std::vector<std::uint32_t> unit_depth_;
  std::vector<UnitId> unit_order_;
  std::size_t unit_source_count_ = 0;
  bool fused_ = false;
  std::unique_ptr<CycleState[]> unit_cycle_;

  void build_units(const TaskGraph& g, const graph_opt::Plan& plan,
                   QueueOrder order_mode);
  void record_fault(NodeId n, const char* what) noexcept;

  // Degradation / fault state. masked_/bypass_/fault_eligible_ and the
  // plan are mutated only between cycles (published by the executors'
  // cycle-start synchronization); the atomics below are the only fields
  // workers write during a cycle.
  std::vector<std::uint8_t> masked_;
  std::vector<WorkFn> bypass_;
  std::function<void(NodeId)> poison_;
  support::EventJournal* journal_ = nullptr;
  chaos::FaultPlan fault_plan_;
  std::vector<std::uint8_t> fault_eligible_;
  bool faults_armed_ = false;
  bool worker_faults_possible_ = false;
  std::atomic<std::size_t> units_done_{0};
  std::uint64_t cycle_index_ = 0;
  std::atomic<bool> abort_cycle_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int32_t> fault_node_{-1};
  char fault_what_[128] = {};  // written once per cycle by the CAS winner
  std::atomic<std::uint64_t> skipped_{0};
  std::atomic<std::uint64_t> bypassed_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
};

}  // namespace djstar::core
