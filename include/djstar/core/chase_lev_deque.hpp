// djstar/core/chase_lev_deque.hpp
// Chase-Lev work-stealing deque (dynamic circular array).
//
// Owner thread pushes/pops at the *bottom* (LIFO — the paper's cache
// argument in §V-C); thief threads steal from the *top* (FIFO — "a
// stolen node is the one with the longest waiting time"). Memory
// ordering follows Lê, Pop, Cohen, Nardelli: "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP 2013).
//
// This is the one deliberately lock-free structure in the library
// (Core Guidelines CP.100 exception): it is the subject of the paper's
// third strategy.
//
// Schedule fuzzing: push/pop/steal each contain a chaos::maybe_perturb()
// site placed inside their narrowest race window (pop: after the bottom
// decrement, before the fence; steal: between reading the item and the
// CAS on top), so the stress suite's torture test actually exercises the
// owner-vs-thief last-element race instead of waiting for lucky timing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace djstar::core {

/// Work-stealing deque of 64-bit items. `kEmpty` is reserved.
class ChaseLevDeque {
 public:
  using Item = std::int64_t;
  static constexpr Item kEmpty = -1;
  static constexpr Item kAbort = -2;  ///< steal lost a race; retry allowed

  /// `capacity_hint` is rounded up to a power of two (minimum 64). The
  /// deque grows automatically on overflow (owner side only).
  explicit ChaseLevDeque(std::size_t capacity_hint = 64);
  ~ChaseLevDeque();

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: push an item at the bottom. May allocate (grow) when
  /// full — for the audio graph the capacity is pre-sized so this never
  /// happens on the real-time path.
  void push(Item x);

  /// Owner only: pop the most recently pushed item (LIFO).
  /// Returns kEmpty when the deque is empty.
  Item pop();

  /// Any thief thread: steal the oldest item (FIFO). Returns kEmpty when
  /// empty or kAbort when a concurrent pop/steal won the race.
  Item steal();

  /// Approximate size (exact when quiescent).
  std::size_t size_approx() const noexcept;

  /// Owner only, while no thieves are active: drop all content.
  void clear() noexcept;

 private:
  struct Array {
    explicit Array(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          data(std::make_unique<std::atomic<Item>[]>(cap)) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<Item>[]> data;

    Item get(std::int64_t i) const noexcept {
      return data[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, Item x) noexcept {
      data[static_cast<std::size_t>(i) & mask].store(
          x, std::memory_order_relaxed);
    }
  };

  Array* grow(Array* a, std::int64_t bottom, std::int64_t top);

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Array*> array_;
  // Retired arrays parked until destruction so racing thieves never read
  // freed memory (the standard Chase-Lev reclamation shortcut).
  std::vector<std::unique_ptr<Array>> graveyard_;
};

}  // namespace djstar::core
