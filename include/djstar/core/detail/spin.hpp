// djstar/core/detail/spin.hpp
// CPU pause primitive and the escalating spin-wait loop shared by the
// busy-waiting and work-stealing strategies.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "djstar/core/executor.hpp"

namespace djstar::core::detail {

/// One architectural pause/yield hint inside a spin loop.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Escalating waiter: `pause_iterations` hardware pauses, then
/// std::this_thread::yield(), then (defensively) a 1 us sleep after
/// `yields_before_sleep` yields. Reset after the awaited condition holds.
class SpinWaiter {
 public:
  explicit SpinWaiter(const SpinPolicy& p) noexcept : policy_(p) {}

  /// One wait step; call in a loop around the condition re-check.
  /// Returns the number of spins performed so far (for stats).
  void step() noexcept {
    if (count_ < policy_.pause_iterations) {
      cpu_pause();
    } else if (count_ < policy_.pause_iterations + policy_.yields_before_sleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(1));
    }
    ++count_;
  }

  std::uint64_t spins() const noexcept { return count_; }
  void reset() noexcept { count_ = 0; }

 private:
  SpinPolicy policy_;
  std::uint64_t count_ = 0;
};

}  // namespace djstar::core::detail
