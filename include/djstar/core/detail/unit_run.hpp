// djstar/core/detail/unit_run.hpp
// Fused-unit execution and static-plan replay, shared by the scheduling
// strategies (DESIGN.md §11).
//
// Units are the executors' scheduling granule. run_unit() executes a
// unit's members back to back through CompiledGraph::execute(), so the
// per-node fault/skip/bypass/cancel semantics are untouched by fusion;
// observability is also preserved: every member still gets its own kRun
// span, with a kFused envelope around multi-node units.
//
// replay_static() is the cached-schedule fast path: the worker walks its
// precomputed unit list in scheduled start order, spin-waits each unit's
// dependency counter, runs it, and resolves unit successors. No queue,
// no parking, no stealing. Deadlock-free because the plan orders every
// worker's list by simulated start time and the simulation never starts
// a unit before all its predecessors finished (graph_opt.hpp).
#pragma once

#include "djstar/core/chaos.hpp"
#include "djstar/core/compiled_graph.hpp"
#include "djstar/core/detail/spin.hpp"
#include "djstar/core/executor.hpp"
#include "djstar/support/time.hpp"

namespace djstar::core::detail {

/// Execute every member of unit `u` on worker `w`. With tracing, emits
/// one kRun span per member (plus the kFused envelope when the unit has
/// more than one member); always counts members, not units, into
/// stats.nodes_executed.
template <class Emit>
inline void run_unit(CompiledGraph& g, UnitId u, unsigned w,
                     ExecutorStats& stats, bool tracing,
                     support::Clock::time_point cycle_start,
                     const Emit& emit) {
  const auto members = g.unit_members(u);
  if (!tracing) {
    for (NodeId n : members) g.execute(n);
    stats.nodes_executed.fetch_add(members.size(),
                                   std::memory_order_relaxed);
    return;
  }
  const double unit_begin = support::elapsed_us(cycle_start, support::now());
  double begin = unit_begin;
  for (NodeId n : members) {
    g.execute(n);
    const double end = support::elapsed_us(cycle_start, support::now());
    emit({begin, end, w, static_cast<std::int32_t>(n),
          support::SpanKind::kRun});
    begin = end;
  }
  stats.nodes_executed.fetch_add(members.size(), std::memory_order_relaxed);
  if (members.size() > 1) {
    emit({unit_begin, begin, w, static_cast<std::int32_t>(members.front()),
          support::SpanKind::kFused});
  }
}

/// Replay worker `w`'s list of a cached static plan. `wait_kind` is the
/// span kind recorded for time spent waiting on a dependency (each
/// strategy keeps its own color in the Fig.-11 traces).
template <class Emit>
inline void replay_static(CompiledGraph& g, const graph_opt::StaticPlan& plan,
                          unsigned w, ExecutorStats& stats,
                          const SpinPolicy& spin, bool tracing,
                          support::Clock::time_point cycle_start,
                          const Emit& emit, support::SpanKind wait_kind) {
  for (UnitId u : plan.worker_units(w)) {
    auto& pending = g.unit_pending(u);

    double wait_begin = 0.0;
    if (tracing) wait_begin = support::elapsed_us(cycle_start, support::now());

    chaos::maybe_perturb(chaos::Site::kDependencyCheck);
    if (pending.load(std::memory_order_acquire) != 0) {
      SpinWaiter waiter(spin);
      while (pending.load(std::memory_order_acquire) != 0) {
        waiter.step();
      }
      stats.busy_wait_spins.fetch_add(waiter.spins(),
                                      std::memory_order_relaxed);
    }

    if (tracing) {
      const double run_begin =
          support::elapsed_us(cycle_start, support::now());
      if (run_begin - wait_begin > 0.5) {
        emit({wait_begin, run_begin, w,
              static_cast<std::int32_t>(g.unit_members(u).front()),
              wait_kind});
      }
    }

    run_unit(g, u, w, stats, tracing, cycle_start, emit);

    for (UnitId s : g.unit_successors(u)) {
      g.unit_pending(s).fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

/// Shared cycle-start decision: replay only a plan that is present,
/// still valid, and built for this executor's width — and only while
/// self-healing is off: a static schedule assigns units to a fixed
/// healthy team, which quarantine invalidates mid-cycle (DESIGN.md §12).
inline bool plan_active(const ExecOptions& opts) noexcept {
  return opts.heal.mode == HealMode::kOff && opts.static_plan != nullptr &&
         opts.static_plan->valid() &&
         opts.static_plan->threads() == opts.threads;
}

}  // namespace djstar::core::detail
