// djstar/core/detail/heal_run.hpp
// Claim-gated unit execution and quarantine-rescue helpers shared by the
// self-healing strategy paths (DESIGN.md §12).
//
// The healing executors never run a unit directly: every execution goes
// through heal_claim_run(), which (1) wins the unit's claim CAS — the
// exactly-once arbiter when a quarantined worker's lane is adopted by
// several survivors or a republish duplicates an entry — (2) consumes
// any worker fault decided for the unit, wedging or retiring the calling
// thread instead of running, and (3) marks the unit done so the heal
// paths' completion condition (units_done() == unit_count()) advances.
//
// heal_republish_scan() is the medic-side rescue primitive: everything
// ready, unclaimed, and unfinished is handed to the strategy's publish
// callback. It deliberately over-approximates the victim's lost work —
// duplicates are free under claims, while a missed unit would hang the
// cycle.
#pragma once

#include "djstar/core/detail/unit_run.hpp"
#include "djstar/core/health.hpp"

namespace djstar::core::detail {

/// Run unit `u` on worker `w` through the claim gate. Returns true when
/// this worker ran the unit (the caller must then resolve successors);
/// false when the claim was lost or a worker fault fired. After a false
/// return the caller must check HealthBoard::abandoned() — a wedged or
/// aborted worker has to unwind out of its strategy body without
/// touching the barrier.
template <class Emit>
inline bool heal_claim_run(CompiledGraph& g, HealthBoard& hb, unsigned w,
                           UnitId u, ExecutorStats& stats, bool tracing,
                           support::Clock::time_point cycle_start,
                           const Emit& emit) {
  if (!g.unit_try_claim(u)) return false;
  if (g.worker_faults_armed()) {
    const chaos::FaultKind wf = g.take_worker_fault(u);
    if (wf != chaos::FaultKind::kNone && w != 0) {
      // Release the claim first so the rescue scan (or an adopter) can
      // pick the unit up, then suffer the fault: kStallForever wedges
      // until the medic quarantines us, kWorkerAbort retires us now.
      g.unit_release_claim(u);
      HealthBoard::on_worker_fault(wf);
      return false;
    }
    // Worker 0 is the caller thread and cannot be replaced: its worker
    // faults are consumed and ignored (take_worker_fault already counted
    // and journaled the injection).
  }
  hb.beat(w);
  run_unit(g, u, w, stats, tracing, cycle_start, emit);
  g.unit_mark_done(u);
  return true;
}

/// Republish every ready, unclaimed, unfinished unit via `publish`.
/// Called from the medic thread after a quarantine; the strategy decides
/// where the units go (orphan buffer, shared ring, or nothing for the
/// index-donation strategies, whose adopt scans find them in place).
/// Returns the number republished.
template <class Publish>
inline std::size_t heal_republish_scan(CompiledGraph& g,
                                       const Publish& publish) {
  std::size_t n = 0;
  for (UnitId u : g.unit_order()) {
    if (g.unit_claimed(u)) continue;
    if (g.unit_pending(u).load(std::memory_order_acquire) != 0) continue;
    publish(u);
    ++n;
  }
  return n;
}

/// Heal-aware round-robin body shared by the busy-waiting and sleeping
/// strategies: the same k = w, w+T, ... lane assignment, but every unit
/// runs through the claim gate, dependency waits are bounded (so a dead
/// resolver cannot park a survivor forever), quarantined workers' lanes
/// are adopted by the survivors, and after its own lane each worker
/// helps until the whole graph is done — the barrier must never wait on
/// a unit only a dead worker knew about.
///
///   wait_ready(u)  block until unit_pending(u) == 0, beating and
///                  periodically returning control; returns false once
///                  the calling worker was wedged/aborted mid-wait.
///   resolve(u)     decrement successors (strategy-specific waking).
///   help_pause()   brief strategy-specific idle step in the help phase.
template <class Emit, class WaitReady, class Resolve, class HelpPause>
inline void heal_round_robin_body(CompiledGraph& g, HealthBoard& hb,
                                  unsigned w, unsigned T,
                                  ExecutorStats& stats, bool tracing,
                                  support::Clock::time_point cycle_start,
                                  const Emit& emit,
                                  const WaitReady& wait_ready,
                                  const Resolve& resolve,
                                  const HelpPause& help_pause) {
  const auto order = g.unit_order();
  const std::size_t total = g.unit_count();

  // Adopt dead workers' lanes: claim any ready unit whose round-robin
  // owner was quarantined (queue-index donation). Several survivors may
  // scan at once; claims keep it exactly-once.
  const auto adopt_scan = [&] {
    if (hb.dead() == 0) return;
    for (unsigned q = 1; q < T; ++q) {
      const WorkerState st = hb.state(q);
      if (st != WorkerState::kQuarantined && st != WorkerState::kAborted) {
        continue;
      }
      for (std::size_t k = q; k < order.size(); k += T) {
        const UnitId u = order[k];
        if (g.unit_claimed(u)) continue;
        if (g.unit_pending(u).load(std::memory_order_acquire) != 0) continue;
        if (heal_claim_run(g, hb, w, u, stats, tracing, cycle_start, emit)) {
          resolve(u);
        }
        if (HealthBoard::abandoned()) return;
      }
    }
  };

  for (std::size_t k = w; k < order.size(); k += T) {
    const UnitId u = order[k];
    while (g.unit_pending(u).load(std::memory_order_acquire) != 0) {
      if (!wait_ready(u)) return;  // wedged/aborted while waiting
      adopt_scan();
      if (HealthBoard::abandoned()) return;
    }
    if (heal_claim_run(g, hb, w, u, stats, tracing, cycle_start, emit)) {
      resolve(u);
    }
    if (HealthBoard::abandoned()) return;
  }

  // Help phase: adopt until every unit in the graph is done.
  while (g.units_done() < total) {
    adopt_scan();
    if (HealthBoard::abandoned()) return;
    hb.beat(w);
    help_pause();
  }
}

}  // namespace djstar::core::detail
