// djstar/core/executor.hpp
// Common interface and options for the scheduling strategies (paper §V).
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "djstar/core/compiled_graph.hpp"
#include "djstar/core/health.hpp"
#include "djstar/support/flight.hpp"
#include "djstar/support/trace.hpp"

namespace djstar::core {

class Team;  // team.hpp (includes this header)

/// How a thread waits for an unmet dependency or an empty queue.
struct SpinPolicy {
  /// Hardware pauses between re-checks before escalating to yield.
  std::uint32_t pause_iterations = 64;
  /// After this many yields, sleep 1 us (defensive against priority
  /// inversion on oversubscribed machines; effectively never reached on
  /// the paper's setup).
  std::uint32_t yields_before_sleep = 4096;
};

/// Per-run counters, aggregated over all workers since construction or the
/// last stats_reset(). Loads are relaxed: values are for reporting only.
struct ExecutorStats {
  std::atomic<std::uint64_t> nodes_executed{0};
  std::atomic<std::uint64_t> busy_wait_spins{0};  ///< dependency re-checks
  std::atomic<std::uint64_t> sleeps{0};           ///< cv waits entered
  std::atomic<std::uint64_t> wakeups{0};          ///< cv notifies sent
  std::atomic<std::uint64_t> steals{0};           ///< successful thefts
  std::atomic<std::uint64_t> steal_failures{0};   ///< empty/contended probes

  /// Plain-value copy for checkpointing (the stress harness diffs two
  /// snapshots around a batch of cycles and checks executor invariants:
  /// nodes_executed advances by cycles * node_count, steals never exceed
  /// executed nodes, ...). Only exact while no cycle is in flight.
  struct Snapshot {
    std::uint64_t nodes_executed = 0;
    std::uint64_t busy_wait_spins = 0;
    std::uint64_t sleeps = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_failures = 0;
  };

  Snapshot snapshot() const noexcept {
    return {nodes_executed.load(std::memory_order_relaxed),
            busy_wait_spins.load(std::memory_order_relaxed),
            sleeps.load(std::memory_order_relaxed),
            wakeups.load(std::memory_order_relaxed),
            steals.load(std::memory_order_relaxed),
            steal_failures.load(std::memory_order_relaxed)};
  }

  void reset() noexcept {
    nodes_executed = 0;
    busy_wait_spins = 0;
    sleeps = 0;
    wakeups = 0;
    steals = 0;
    steal_failures = 0;
  }
};

/// Executor construction options.
struct ExecOptions {
  /// Worker count, including the calling thread (thread 0). The paper
  /// fixes this to 4 ("increasing the thread count above four does not
  /// accelerate the computations any further", §VI).
  unsigned threads = 4;
  SpinPolicy spin{};
  /// Optional schedule tracing (arm the recorder with `threads` lanes to
  /// capture Fig.-11-style realizations). May be nullptr.
  support::TraceRecorder* trace = nullptr;
  /// Optional always-on flight recorder (configure with `threads` lanes).
  /// Unlike `trace` it overwrites instead of filling up, so it can stay
  /// enabled for the life of the engine. May be nullptr.
  support::FlightRecorder* flight = nullptr;
  /// Optional cached static schedule (graph_opt::build_static_plan) over
  /// the bound graph's units. When non-null, valid() and built for the
  /// same thread count, the parallel executors replay it instead of
  /// scheduling dynamically; the decision is re-made at every cycle
  /// start, so invalidating the plan between cycles falls back to the
  /// dynamic path on the next cycle. Must outlive the executor. The
  /// sequential strategy ignores it. May be nullptr.
  const graph_opt::StaticPlan* static_plan = nullptr;
  /// Worker self-healing (DESIGN.md §12). With mode != kOff the parallel
  /// executors build their Team with a medic, run every unit through the
  /// claim-gated heal path, and install a rescue hook that republishes a
  /// quarantined worker's units. Forces dynamic scheduling: a cached
  /// static plan assumes a fixed healthy team, so plan replay is skipped
  /// while healing is armed (detail::plan_active).
  TeamHealConfig heal{};
};

/// A scheduling strategy bound to one compiled graph. run_cycle()
/// executes every node exactly once, respecting all dependencies, and
/// returns when the full graph has completed. Workers persist across
/// cycles (created once in the constructor — CP.41).
///
/// Thread safety: run_cycle() must be called from one thread at a time
/// (the audio callback). The destructor joins all workers.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Execute one audio processing cycle of the bound graph.
  virtual void run_cycle() = 0;

  /// Strategy name ("sequential", "busy", "sleep", "ws").
  virtual std::string_view name() const noexcept = 0;

  /// Worker count (including the calling thread).
  virtual unsigned threads() const noexcept = 0;

  const ExecutorStats& stats() const noexcept { return stats_; }
  void stats_reset() noexcept { stats_.reset(); }

  /// The worker team this executor runs on (owned or shared), or nullptr
  /// for teamless strategies (sequential). The engine reads healing
  /// counters through this.
  virtual const Team* team() const noexcept { return nullptr; }

 protected:
  ExecutorStats stats_;
};

}  // namespace djstar::core
