// djstar/core/graphviz.hpp
// DOT (Graphviz) export of task graphs and schedules for documentation
// and debugging. Render with: dot -Tsvg graph.dot -o graph.svg
#pragma once

#include <string>

#include "djstar/core/graph.hpp"

namespace djstar::core {

/// Options for the DOT rendering.
struct DotOptions {
  bool cluster_sections = true;  ///< group nodes into per-section clusters
  bool rank_by_depth = true;     ///< same-depth nodes on the same rank
  const char* graph_name = "taskgraph";
};

/// Serialize `g` as a DOT digraph.
std::string to_dot(const TaskGraph& g, const DotOptions& opts = {});

}  // namespace djstar::core
