// djstar/core/access_check.hpp
// Static data-hazard validation for task graphs.
//
// The whole correctness argument of the parallel engine rests on one
// invariant: whenever two nodes touch the same buffer and at least one
// writes it, a dependency path must order them. The determinism tests
// check this dynamically (bit-identical audio across schedules); this
// checker proves it structurally: nodes declare their read/write sets
// (buffer addresses), and the checker reports every pair of accesses
// that no path orders — i.e. every potential data race a schedule could
// expose.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "djstar/core/graph.hpp"

namespace djstar::core {

/// Declared memory accesses of one node. Regions are identified by an
/// opaque key — typically the address of the AudioBuffer.
struct AccessDecl {
  std::vector<const void*> reads;
  std::vector<const void*> writes;
};

/// One detected hazard.
struct Hazard {
  NodeId a = 0;
  NodeId b = 0;
  const void* region = nullptr;
  /// "write-write" or "read-write".
  std::string kind;
};

/// Tracks per-node access declarations for a graph under construction.
class AccessRegistry {
 public:
  /// Declare accesses for `node`. May be called multiple times
  /// (accumulates).
  void declare(NodeId node, const AccessDecl& decl);

  /// Convenience single-region helpers.
  void declare_read(NodeId node, const void* region);
  void declare_write(NodeId node, const void* region);

  /// Check all declarations against the graph's dependency structure.
  /// Returns every unordered conflicting pair. Empty result == the graph
  /// is schedule-independent (race-free under any legal executor).
  std::vector<Hazard> check(const TaskGraph& g) const;

  std::size_t declared_nodes() const noexcept { return decls_.size(); }

 private:
  struct NodeDecl {
    NodeId node;
    AccessDecl decl;
  };
  std::vector<NodeDecl> decls_;
};

/// Reachability oracle: can_reach(a, b) == a path a -> b exists.
/// Built once (O(V*E/64) via bitset closure), queried in O(1).
class Reachability {
 public:
  explicit Reachability(const TaskGraph& g);
  bool can_reach(NodeId from, NodeId to) const noexcept;
  /// True when some path orders the pair either way.
  bool ordered(NodeId a, NodeId b) const noexcept {
    return can_reach(a, b) || can_reach(b, a);
  }

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> closure_;  // n x words bit matrix
};

}  // namespace djstar::core
