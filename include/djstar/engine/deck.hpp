// djstar/engine/deck.hpp
// One playback deck: track + timecode control + preprocessing.
//
// The deck implements the two APC phases that run *outside* the task
// graph (paper §VI: T(APC) = T(TP) + T(GP) + T(Graph) + T(VC)):
//  * TP — render the virtual turntable's timecode signal and decode it
//    back into pitch/position (what the real app does with the sound
//    card's input channels);
//  * GP — pull track audio at the decoded pitch and time-stretch it
//    (keylock) into the buffer the deck's sample players consume.
#pragma once

#include <array>
#include <cstdint>

#include "djstar/audio/buffer.hpp"
#include "djstar/audio/track.hpp"
#include "djstar/stretch/wsola.hpp"
#include "djstar/timecode/timecode.hpp"

namespace djstar::engine {

class Deck {
 public:
  /// `index` 0..3 (deck A..D). The track spec seeds deterministic
  /// program material (DESIGN.md: synthetic-track substitution).
  Deck(unsigned index, const audio::TrackSpec& spec);

  unsigned index() const noexcept { return index_; }

  /// Platter pitch set by the (virtual) DJ. 1.0 = normal speed.
  void set_pitch(double pitch) noexcept;
  double pitch() const noexcept { return pitch_; }

  /// Keylock: true = time-stretch (tempo change without pitch change),
  /// false = plain varispeed.
  void set_keylock(bool on) noexcept { keylock_ = on; }
  bool keylock() const noexcept { return keylock_; }

  /// Supervisor override (degradation rung kNoStretch): while set,
  /// preprocess() uses cheap varispeed even when keylock is on. Kept
  /// separate from set_keylock() so recovery restores the DJ's actual
  /// preference instead of whatever the ladder left behind.
  void set_stretch_degraded(bool on) noexcept { stretch_degraded_ = on; }
  bool stretch_degraded() const noexcept { return stretch_degraded_; }

  /// TP phase: render one block of timecode at the current platter
  /// pitch and run the decoder over it.
  void process_timecode() noexcept;

  /// GP phase: fill input() with the next block of (stretched) audio at
  /// the *decoded* pitch. Call after process_timecode().
  void preprocess();

  /// The buffer the deck's four sample players read. Stable address.
  const audio::AudioBuffer& input() const noexcept { return input_; }

  /// Pitch as recovered by the timecode decoder.
  double decoded_pitch() const noexcept {
    return tc_decoder_.state().pitch;
  }
  const timecode::TransportState& transport() const noexcept {
    return tc_decoder_.state();
  }

  audio::Track& track() noexcept { return track_; }

 private:
  unsigned index_;
  audio::Track track_;
  timecode::TimecodeGenerator tc_gen_;
  timecode::TimecodeDecoder tc_decoder_;
  std::array<stretch::Wsola, 2> wsola_;  // per stereo channel
  double pitch_ = 1.0;
  bool keylock_ = true;
  bool stretch_degraded_ = false;

  audio::AudioBuffer tc_buf_{2, audio::kBlockSize};
  audio::AudioBuffer raw_{2, audio::kBlockSize};
  audio::AudioBuffer input_{2, audio::kBlockSize};
  std::array<float, audio::kBlockSize> chan_tmp_{};
};

}  // namespace djstar::engine
