// djstar/engine/deadline.hpp
// Cycle accounting against the real-time constraint (paper §III-A/§VI):
// one audio packet of 128 samples at 44.1 kHz every 2.9 ms, of which the
// task graph may use at most 2.1 ms after TP/GP/VC overheads.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "djstar/audio/buffer.hpp"
#include "djstar/support/stats.hpp"

namespace djstar::engine {

/// Phase timings of one audio processing cycle, in microseconds.
/// T(APC) = T(TP) + T(GP) + T(Graph) + T(VC)   (paper §VI).
struct CycleBreakdown {
  double tp_us = 0;     ///< timecode processing
  double gp_us = 0;     ///< graph preprocessing (time stretch, buffers)
  double graph_us = 0;  ///< task graph execution
  double vc_us = 0;     ///< various calculations (tempo, accounting)

  double total_us() const noexcept {
    return tp_us + gp_us + graph_us + vc_us;
  }
};

/// Collects cycle breakdowns, counts missed deadlines, and optionally
/// retains per-cycle samples for histogram benches. When the engine runs
/// supervised, each cycle is also attributed to the degradation level it
/// ran at (level 0 = full quality), so "how long did we spend degraded,
/// and how did those cycles perform" falls straight out of the monitor.
class DeadlineMonitor {
 public:
  /// Maximum degradation levels tracked (DegradationLevel fits with room).
  static constexpr unsigned kMaxLevels = 8;

  /// `reserve` pre-sizes the sample vectors so add() never allocates on
  /// the audio path until that many cycles have been recorded.
  explicit DeadlineMonitor(double deadline_us = audio::kDeadlineUs,
                           bool keep_samples = true,
                           std::size_t reserve = 4096)
      : deadline_us_(deadline_us),
        keep_samples_(keep_samples),
        reserve_(reserve) {
    if (keep_samples_) {
      graph_samples_.reserve(reserve_);
      total_samples_.reserve(reserve_);
    }
  }

  /// Record a cycle at degradation level 0 (the unsupervised path).
  void add(const CycleBreakdown& c) { add(c, 0); }
  /// Record a cycle attributed to `level` (clamped to kMaxLevels - 1).
  void add(const CycleBreakdown& c, unsigned level);
  void reset();

  std::size_t cycles() const noexcept { return cycles_; }
  std::size_t misses() const noexcept { return misses_; }
  double miss_rate() const noexcept {
    return cycles_ ? static_cast<double>(misses_) / static_cast<double>(cycles_)
                   : 0.0;
  }
  double deadline_us() const noexcept { return deadline_us_; }

  const support::OnlineStats& tp() const noexcept { return tp_; }
  const support::OnlineStats& gp() const noexcept { return gp_; }
  const support::OnlineStats& graph() const noexcept { return graph_; }
  const support::OnlineStats& vc() const noexcept { return vc_; }
  const support::OnlineStats& total() const noexcept { return total_; }

  /// p99 of per-cycle APC totals. Cached: recomputed only when cycles
  /// have been added since the last call, so repeated callers (the
  /// supervisor, the headroom advisor) don't re-sort the samples. Falls
  /// back to max() when samples are not retained.
  double p99() const;
  /// Worst APC total seen (O(1), always available).
  double max_us() const noexcept { return total_.max(); }

  // ---- per-degradation-level accounting ----
  std::size_t level_cycles(unsigned level) const noexcept {
    return level < kMaxLevels ? level_cycles_[level] : 0;
  }
  std::size_t level_misses(unsigned level) const noexcept {
    return level < kMaxLevels ? level_misses_[level] : 0;
  }
  /// APC totals of cycles run at `level` (count 0 when never visited).
  const support::OnlineStats& level_total(unsigned level) const noexcept {
    return level_total_[level < kMaxLevels ? level : kMaxLevels - 1];
  }

  /// Per-cycle task-graph times (empty when keep_samples is off).
  const std::vector<double>& graph_samples() const noexcept {
    return graph_samples_;
  }
  /// Per-cycle APC totals (empty when keep_samples is off).
  const std::vector<double>& total_samples() const noexcept {
    return total_samples_;
  }

 private:
  double deadline_us_;
  bool keep_samples_;
  std::size_t reserve_;
  std::size_t cycles_ = 0;
  std::size_t misses_ = 0;
  support::OnlineStats tp_, gp_, graph_, vc_, total_;
  std::vector<double> graph_samples_;
  std::vector<double> total_samples_;
  std::array<std::size_t, kMaxLevels> level_cycles_{};
  std::array<std::size_t, kMaxLevels> level_misses_{};
  std::array<support::OnlineStats, kMaxLevels> level_total_{};
  mutable double p99_cache_ = 0.0;
  mutable std::size_t p99_cache_cycles_ = 0;
};

}  // namespace djstar::engine
