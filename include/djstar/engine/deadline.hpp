// djstar/engine/deadline.hpp
// Cycle accounting against the real-time constraint (paper §III-A/§VI):
// one audio packet of 128 samples at 44.1 kHz every 2.9 ms, of which the
// task graph may use at most 2.1 ms after TP/GP/VC overheads.
#pragma once

#include <cstddef>
#include <vector>

#include "djstar/audio/buffer.hpp"
#include "djstar/support/stats.hpp"

namespace djstar::engine {

/// Phase timings of one audio processing cycle, in microseconds.
/// T(APC) = T(TP) + T(GP) + T(Graph) + T(VC)   (paper §VI).
struct CycleBreakdown {
  double tp_us = 0;     ///< timecode processing
  double gp_us = 0;     ///< graph preprocessing (time stretch, buffers)
  double graph_us = 0;  ///< task graph execution
  double vc_us = 0;     ///< various calculations (tempo, accounting)

  double total_us() const noexcept {
    return tp_us + gp_us + graph_us + vc_us;
  }
};

/// Collects cycle breakdowns, counts missed deadlines, and optionally
/// retains per-cycle samples for histogram benches.
class DeadlineMonitor {
 public:
  explicit DeadlineMonitor(double deadline_us = audio::kDeadlineUs,
                           bool keep_samples = true)
      : deadline_us_(deadline_us), keep_samples_(keep_samples) {}

  void add(const CycleBreakdown& c);
  void reset();

  std::size_t cycles() const noexcept { return cycles_; }
  std::size_t misses() const noexcept { return misses_; }
  double miss_rate() const noexcept {
    return cycles_ ? static_cast<double>(misses_) / static_cast<double>(cycles_)
                   : 0.0;
  }
  double deadline_us() const noexcept { return deadline_us_; }

  const support::OnlineStats& tp() const noexcept { return tp_; }
  const support::OnlineStats& gp() const noexcept { return gp_; }
  const support::OnlineStats& graph() const noexcept { return graph_; }
  const support::OnlineStats& vc() const noexcept { return vc_; }
  const support::OnlineStats& total() const noexcept { return total_; }

  /// Per-cycle task-graph times (empty when keep_samples is off).
  const std::vector<double>& graph_samples() const noexcept {
    return graph_samples_;
  }
  /// Per-cycle APC totals (empty when keep_samples is off).
  const std::vector<double>& total_samples() const noexcept {
    return total_samples_;
  }

 private:
  double deadline_us_;
  bool keep_samples_;
  std::size_t cycles_ = 0;
  std::size_t misses_ = 0;
  support::OnlineStats tp_, gp_, graph_, vc_, total_;
  std::vector<double> graph_samples_;
  std::vector<double> total_samples_;
};

}  // namespace djstar::engine
