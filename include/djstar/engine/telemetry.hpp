// djstar/engine/telemetry.hpp
// Per-engine telemetry bundle (DESIGN.md §10): a metrics registry, a
// structured event journal, and an always-on flight recorder, wired into
// the APC driver so every cycle is accounted with zero locks and zero
// allocation on the audio path.
//
// Division of labour: AudioEngine owns the cycle loop and calls
// on_cycle() between cycles with what just happened; EngineTelemetry
// owns the sinks and the *policy* of what to export — counter deltas,
// histograms, journal records, and the automatic flight-recorder dump
// when a cycle misses its deadline, the degradation ladder moves, or
// the watchdog fires.
//
// Counter contract: the cycle/miss counters are incremented under the
// exact same condition as DeadlineMonitor::add (miss == total_us() >
// deadline), so a Prometheus scrape and monitor().misses() can be
// compared for equality, not just correlation.
#pragma once

#include <cstdint>
#include <string>

#include "djstar/core/health.hpp"
#include "djstar/engine/deadline.hpp"
#include "djstar/engine/supervisor.hpp"
#include "djstar/support/flight.hpp"
#include "djstar/support/journal.hpp"
#include "djstar/support/metrics.hpp"
#include "djstar/support/trace.hpp"

namespace djstar::engine {

/// Telemetry construction knobs.
struct TelemetryConfig {
  /// Flight-recorder ring capacity per worker lane (spans).
  std::size_t flight_spans_per_thread = 2048;
  /// Event-journal ring capacity (events).
  std::size_t journal_capacity = 4096;
  /// When non-empty, incidents (deadline miss, ladder movement, watchdog
  /// cancel) automatically dump the flight recorder here as a
  /// Chrome/Perfetto trace (the file is overwritten per dump).
  std::string flight_dump_path;
  /// Cycles of history per automatic dump.
  std::uint64_t flight_dump_cycles = 32;
  /// Minimum cycles between automatic dumps (a sustained incident storm
  /// produces one trace per window, not one per cycle).
  std::uint64_t flight_dump_cooldown = 256;
};

/// What triggered an automatic flight dump (journal payload `a`).
enum class FlightDumpTrigger : std::uint8_t {
  kDeadlineMiss = 0,
  kLevelChange,
  kWatchdogFire,
  kWorkerQuarantine,
  kSloPage,
};

class EngineTelemetry {
 public:
  /// `deadline_us` doubles as the flight-recorder timeline period;
  /// `threads` sizes the flight lanes (lane per worker).
  EngineTelemetry(const TelemetryConfig& cfg, double deadline_us,
                  unsigned threads);

  EngineTelemetry(const EngineTelemetry&) = delete;
  EngineTelemetry& operator=(const EngineTelemetry&) = delete;

  support::MetricsRegistry& registry() noexcept { return registry_; }
  const support::MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  support::EventJournal& journal() noexcept { return journal_; }
  support::FlightRecorder& flight() noexcept { return flight_; }
  const support::FlightRecorder& flight() const noexcept { return flight_; }

  const TelemetryConfig& config() const noexcept { return cfg_; }

  /// Account the cycle that just finished. Called by AudioEngine between
  /// cycles, right after DeadlineMonitor::add. `sup` is the supervisor's
  /// current stats (null unsupervised); `faults_injected` is the graph's
  /// cumulative fault count; `trace` is the engine's TraceRecorder for
  /// drop accounting (may be null). Cumulative sources are delta-synced
  /// into monotone counters, so exports always agree with the sources.
  void on_cycle(const CycleBreakdown& c, unsigned level,
                const SupervisorStats* sup, std::uint64_t faults_injected,
                const support::TraceRecorder* trace);

  /// Resize the flight lanes after a thread-count change. Discards
  /// retained spans; call between cycles only.
  void on_threads_changed(unsigned threads);

  /// Account the team's self-healing state (DESIGN.md §12). Called by
  /// AudioEngine between cycles when healing is armed. Delta-syncs the
  /// cumulative quarantine/respawn/rescue counters, tracks the live
  /// worker count as a gauge, and — every quarantine being an incident —
  /// dumps the flight recorder automatically.
  void on_heal(const core::HealStats& hs);

  /// A page-level SLO alert is an incident: dump the flight recorder.
  /// Pages bypass the dump cooldown — the tracker's multi-window
  /// hysteresis already rate-limits them, and the miss that sealed the
  /// paging window may have consumed the cooldown in this very cycle.
  /// Called by AudioEngine on the transition into the page state.
  void on_slo_page(std::uint64_t cycle) {
    maybe_dump_flight(FlightDumpTrigger::kSloPage, cycle, /*force=*/true);
  }

  std::uint64_t flight_dumps() const noexcept { return flight_dump_count_; }

  /// Prometheus text exposition of the current metric values.
  std::string prometheus() const { return registry_.prometheus(); }
  /// JSON object of the current metric values.
  std::string json() const { return registry_.json(); }

 private:
  void maybe_dump_flight(FlightDumpTrigger trigger, std::uint64_t cycle,
                         bool force = false);

  TelemetryConfig cfg_;
  double deadline_us_;

  support::MetricsRegistry registry_;
  support::EventJournal journal_;
  support::FlightRecorder flight_;

  // Handles resolved once at construction; hot-path use is inc/record.
  support::Counter cycles_;
  support::Counter misses_;
  support::Counter faults_;
  support::Counter degrades_;
  support::Counter recoveries_;
  support::Counter watchdog_cancels_;
  support::Counter trace_dropped_;
  support::Counter journal_dropped_;
  support::Counter flight_dumps_total_;
  support::Counter quarantines_;
  support::Counter respawns_;
  support::Counter rescued_units_;
  support::Gauge live_workers_;
  support::Gauge level_gauge_;
  support::Gauge uptime_;  ///< djstar_uptime_seconds (refreshed per cycle)
  support::HistogramMetric apc_us_;
  support::HistogramMetric graph_us_;

  // Last-seen cumulative values for delta sync.
  std::uint64_t seen_faults_ = 0;
  std::uint64_t seen_degrades_ = 0;
  std::uint64_t seen_recoveries_ = 0;
  std::uint64_t seen_wd_cancels_ = 0;
  std::uint64_t seen_trace_dropped_ = 0;
  std::uint64_t seen_journal_dropped_ = 0;
  std::uint64_t seen_quarantines_ = 0;
  std::uint64_t seen_respawns_ = 0;
  std::uint64_t seen_rescued_ = 0;

  std::uint64_t cycle_count_ = 0;
  unsigned last_level_ = 0;
  std::uint64_t last_dump_cycle_ = 0;
  bool dumped_once_ = false;
  std::uint64_t flight_dump_count_ = 0;
};

}  // namespace djstar::engine
