// djstar/engine/recorder.hpp
// Session recorder: captures the RECORD node's output (the limited,
// clipped record bus of paper Fig. 3) cycle by cycle and exports WAV.
#pragma once

#include <string>
#include <vector>

#include "djstar/audio/buffer.hpp"

namespace djstar::engine {

/// Accumulates stereo blocks; capture() is allocation-amortized (vector
/// growth) — recording is an offline-ish feature in DJ Star too, fed
/// from its own buffer to keep the audio path clean.
class Recorder {
 public:
  /// Reserve space for `expected_seconds` up front to avoid mid-session
  /// reallocation.
  explicit Recorder(double expected_seconds = 60.0,
                    double sample_rate = audio::kSampleRate);

  void start() noexcept { recording_ = true; }
  void stop() noexcept { recording_ = false; }
  bool recording() const noexcept { return recording_; }

  /// Append one block when recording; no-op otherwise.
  void capture(const audio::AudioBuffer& block);

  std::size_t frames() const noexcept { return frames_; }
  double seconds() const noexcept {
    return static_cast<double>(frames_) / sample_rate_;
  }

  /// Copy out the recorded audio.
  audio::AudioBuffer to_buffer() const;

  /// Write the recording as WAV. Returns false on I/O failure or when
  /// nothing has been recorded.
  bool save_wav(const std::string& path) const;

  void clear() noexcept;

 private:
  double sample_rate_;
  bool recording_ = false;
  std::size_t frames_ = 0;
  std::vector<float> left_, right_;
};

}  // namespace djstar::engine
