// djstar/engine/supervisor.hpp
// The cycle watchdog and graceful-degradation ladder.
//
// The paper's constraint is absolute: one audio packet every 2.9 ms, no
// exceptions (§III-A). DeadlineMonitor *counts* violations; this class
// *enforces* the constraint. Each supervised cycle is deadlined by a
// watchdog thread (a stuck cycle is cancelled via
// CompiledGraph::request_cancel, which every executor honours by
// draining), its output is validated (fault state + NaN scan), and on
// trouble the supervisor walks a degradation ladder that sheds load one
// rung at a time:
//
//   kFull               everything runs
//   kBypassFx           deck effects run in bypass, GUI sinks skipped
//   kNoStretch          decks use varispeed instead of WSOLA keylock
//   kSequentialFallback graph runs on a pre-built sequential executor
//                       (no thread coordination to go wrong)
//   kSafeMode           graph skipped; faded repeats of the last good
//                       packet keep the sound card fed
//
// Stepping down is fast (one fault, or `overrun_trip` consecutive
// overruns); stepping up requires `recover_cycles` consecutive clean
// cycles with comfortable margin (hysteresis), so a borderline system
// settles at the highest level it can sustain instead of oscillating.
//
// Audio never hard-cuts: when a cycle's output is unusable the
// supervisor emits the last good packet, decayed toward silence, and
// every splice between real and fallback audio is ramped over a few
// samples to avoid clicks.
//
// Division of labour: the supervisor owns *policy* (ladder state,
// output validation, the safe buffer); AudioEngine owns *actuation*
// (node masks, deck flags, executor choice) and applies the
// supervisor's level at the start of the next cycle — so all actuation
// happens between cycles, where the graph allows mutation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "djstar/audio/buffer.hpp"
#include "djstar/core/compiled_graph.hpp"
#include "djstar/engine/deadline.hpp"
#include "djstar/support/journal.hpp"

namespace djstar::engine {

/// Rungs of the degradation ladder, mildest first.
enum class DegradationLevel : std::uint8_t {
  kFull = 0,
  kBypassFx,
  kNoStretch,
  kSequentialFallback,
  kSafeMode,
};
inline constexpr unsigned kDegradationLevelCount = 5;

const char* to_string(DegradationLevel level) noexcept;

/// How one supervised cycle went.
enum class CycleOutcome : std::uint8_t {
  kClean,      ///< on time, valid audio
  kOverrun,    ///< valid audio, but past the deadline
  kFault,      ///< a node threw; cycle drained
  kCancelled,  ///< watchdog (or caller) cancelled the cycle
  kNanOutput,  ///< output packet contained non-finite samples
  kSafeMode,   ///< no graph ran; fallback packet emitted
};

const char* to_string(CycleOutcome outcome) noexcept;

/// Supervision policy knobs.
struct SupervisorConfig {
  double deadline_us = audio::kDeadlineUs;
  /// Wall-clock budget before the watchdog cancels the graph phase.
  /// Deliberately above the deadline: a mild overrun should finish and
  /// count as kOverrun, not be cut off mid-cycle.
  double cancel_budget_us = 2.0 * audio::kDeadlineUs;
  unsigned overrun_trip = 3;     ///< consecutive overruns per rung down
  unsigned fault_trip = 1;       ///< faulted cycles per rung down
  unsigned recover_cycles = 256; ///< clean cycles per rung up
  double recover_margin = 0.75;  ///< "clean" = total < margin * deadline
  float fallback_decay = 0.7f;   ///< gain multiplier per repeated packet
  std::size_t splice_ramp_frames = 16;  ///< crossfade at splice points
  bool use_watchdog = true;      ///< spawn the watchdog thread
};

/// One ladder movement, for reproducibility checks and post-mortems.
struct LevelTransition {
  std::uint64_t cycle = 0;  ///< supervised-cycle count at the transition
  DegradationLevel from = DegradationLevel::kFull;
  DegradationLevel to = DegradationLevel::kFull;
  CycleOutcome reason = CycleOutcome::kClean;
};

/// Counters over the supervisor's lifetime.
struct SupervisorStats {
  std::uint64_t cycles = 0;
  std::uint64_t clean_cycles = 0;
  std::uint64_t overruns = 0;
  std::uint64_t faults = 0;
  std::uint64_t cancels = 0;
  std::uint64_t nan_patches = 0;
  std::uint64_t fallback_emissions = 0;
  std::uint64_t recoveries = 0;        ///< rungs climbed back up
  std::uint64_t watchdog_cancels = 0;  ///< cancels issued by the watchdog
  std::uint64_t worker_quarantines = 0;  ///< team workers quarantined
  std::uint64_t worker_respawns = 0;     ///< replacement workers rejoined
};

class CycleSupervisor {
 public:
  CycleSupervisor(core::CompiledGraph& graph, SupervisorConfig cfg = {});
  ~CycleSupervisor();

  CycleSupervisor(const CycleSupervisor&) = delete;
  CycleSupervisor& operator=(const CycleSupervisor&) = delete;

  DegradationLevel level() const noexcept { return level_; }
  const SupervisorConfig& config() const noexcept { return cfg_; }
  SupervisorStats stats() const noexcept;
  const std::vector<LevelTransition>& transitions() const noexcept {
    return transitions_;
  }

  /// Arm the watchdog for the imminent graph phase / disarm after it.
  /// With use_watchdog off both are no-ops.
  void watchdog_arm();
  void watchdog_disarm() noexcept;

  /// Judge the cycle that just finished: read the graph's fault/cancel
  /// state, scan `out` for non-finite samples, fill safe_output() (the
  /// real packet, spliced, or a faded repeat of the last good one), and
  /// advance the ladder. Call between cycles, watchdog disarmed.
  CycleOutcome supervise_cycle(const CycleBreakdown& c,
                               const audio::AudioBuffer& out);

  /// Account a kSafeMode cycle (no graph ran): emits a faded repeat and
  /// lets hysteresis climb back toward kSequentialFallback.
  void supervise_safe_mode_cycle(const CycleBreakdown& c);

  /// Recovery-rung accounting for the self-healing team (DESIGN.md §12):
  /// the engine reports quarantines/respawns it observed on the
  /// executor's team so supervised runs carry them in stats() and the
  /// journal. Running degraded on N-1 workers is NOT a ladder step — the
  /// graph still computes at full quality, just on fewer threads — so
  /// these only count and journal. Call between cycles.
  void note_worker_quarantine(std::uint64_t n, std::uint64_t cycle);
  void note_worker_respawn(std::uint64_t n, std::uint64_t cycle);

  /// Externally driven shed: step the ladder down one rung immediately
  /// (no-op at the floor), resetting the streak counters. Used by the
  /// serve layer's overload handler, which degrades whole sessions when
  /// the fleet — not this one graph — is behind. Returns true when a
  /// transition happened.
  bool force_degrade();

  /// The validated packet for the sound card. Always finite, always
  /// click-free at splices, even when the cycle it came from was not.
  const audio::AudioBuffer& safe_output() const noexcept { return safe_out_; }

  /// Structured event journal to receive ladder movements (kDegrade /
  /// kRecover, a=from, b=to) and watchdog cancellations
  /// (kWatchdogCancel). Push is lock-free, so the watchdog thread may
  /// publish directly. May be null; set between cycles only, and the
  /// journal must outlive the supervisor or be detached first.
  void set_journal(support::EventJournal* journal) noexcept {
    journal_ = journal;
  }

  /// Called by AudioEngine::set_strategy() after swapping executors.
  /// Ladder state, streaks, and the fallback buffers survive a rebuild
  /// by design; this hook only exists to document that contract (and to
  /// catch a future supervisor that *does* cache executor state).
  void on_executor_rebuilt() noexcept {}

 private:
  void step_down(CycleOutcome reason);
  void step_up();
  void note_clean(double total_us);
  void emit_real(const audio::AudioBuffer& out);
  void emit_fallback();
  void splice_ramp();
  void save_tail();
  void watchdog_main();

  core::CompiledGraph& graph_;
  SupervisorConfig cfg_;

  DegradationLevel level_ = DegradationLevel::kFull;
  unsigned overrun_streak_ = 0;
  unsigned fault_streak_ = 0;
  unsigned clean_streak_ = 0;
  SupervisorStats stats_;
  std::vector<LevelTransition> transitions_;
  support::EventJournal* journal_ = nullptr;

  // Fallback audio state. last_tail_ holds the final sample of the
  // previously emitted packet per channel; splices ramp from it.
  audio::AudioBuffer safe_out_{2, audio::kBlockSize};
  audio::AudioBuffer last_good_{2, audio::kBlockSize};
  float last_tail_[2] = {0.0f, 0.0f};
  float fallback_gain_ = 1.0f;
  bool last_was_fallback_ = false;

  // Watchdog thread. `gen_` disambiguates cycles: a timeout only
  // cancels when the generation it armed for is still the armed one,
  // so a late wakeup can never cancel the following cycle.
  std::mutex wd_mutex_;
  std::condition_variable wd_cv_;
  bool wd_armed_ = false;
  bool wd_stop_ = false;
  std::uint64_t wd_gen_ = 0;
  std::chrono::steady_clock::time_point wd_deadline_{};
  std::atomic<std::uint64_t> watchdog_cancels_{0};
  std::thread wd_thread_;
};

}  // namespace djstar::engine
