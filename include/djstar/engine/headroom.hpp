// djstar/engine/headroom.hpp
// Latency advisor. Paper §III-A: "the audio buffer size is configurable
// ... low latency is a key factor [so DJs pick] rather small buffer
// sizes. At the same time timing constraints are tightened." §VI: "The
// goal is to execute as many audio packets as possible considerably
// before the deadline, so headroom is created."
//
// Given the observed APC-time distribution, this advisor estimates the
// miss probability at each candidate buffer size (the deadline scales
// linearly with the buffer) and recommends the smallest size whose
// predicted miss rate stays under a target.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "djstar/audio/buffer.hpp"
#include "djstar/engine/deadline.hpp"

namespace djstar::engine {

/// Prediction for one candidate buffer size.
struct HeadroomEntry {
  std::size_t buffer_frames = 0;
  double deadline_us = 0;        ///< buffer/SR
  double latency_ms = 0;         ///< one buffer of output latency
  double predicted_miss_rate = 0;  ///< fraction of observed APCs that
                                   ///< would have missed this deadline
  double headroom_us = 0;        ///< deadline - observed p99
};

/// Full advisory report.
struct HeadroomReport {
  std::vector<HeadroomEntry> entries;
  /// Smallest buffer meeting the target miss rate (0 when none does).
  std::size_t recommended_frames = 0;
};

/// Analysis parameters.
struct HeadroomConfig {
  /// Candidate buffer sizes (frames).
  std::vector<std::size_t> candidates{64, 128, 256, 512, 1024};
  /// Acceptable predicted miss rate (misses per cycle).
  double target_miss_rate = 5e-4;  // ~5 per 10k, the paper's observation
  /// Portion of the APC cost that does NOT scale with the buffer size:
  /// scheduling dispatch, dependency management, per-cycle control work.
  /// The remaining (1 - fixed) part is per-frame DSP. This is what makes
  /// small buffers disproportionately expensive — the paper's "smaller
  /// buffer ... has to be filled at a higher frequency".
  double fixed_fraction = 0.25;
  double sample_rate = audio::kSampleRate;
};

/// Analyze a set of observed APC times (microseconds, measured at ONE
/// buffer size whose frames are `measured_frames`). APC cost at another
/// size f is modelled affinely:
///   cost(f) = t * (fixed_fraction + (1 - fixed_fraction) * f / measured)
/// while the deadline scales exactly linearly with f.
HeadroomReport advise_headroom(std::span<const double> apc_times_us,
                               std::size_t measured_frames,
                               const HeadroomConfig& cfg = {});

/// Convenience overload pulling the samples from a DeadlineMonitor
/// (requires keep_samples).
HeadroomReport advise_headroom(const DeadlineMonitor& monitor,
                               std::size_t measured_frames = audio::kBlockSize,
                               const HeadroomConfig& cfg = {});

}  // namespace djstar::engine
