// djstar/engine/library.hpp
// Track library and preprocessing pipeline (paper Fig. 2: "Audio Data
// Collection" + "Track Preprocessing" in the Audio Data subsystem).
// Tracks are analyzed once — beatgrid, musical key, loudness, waveform
// overview — and the results drive beat-matching, key-matching, and
// auto-gain at performance time.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "djstar/analysis/beat.hpp"
#include "djstar/analysis/key.hpp"
#include "djstar/analysis/loudness.hpp"
#include "djstar/analysis/waveform.hpp"
#include "djstar/audio/track.hpp"

namespace djstar::engine {

/// Everything the preprocessing pipeline knows about one track.
struct TrackAnalysis {
  analysis::BeatgridResult beatgrid;
  analysis::KeyEstimate key;
  analysis::LoudnessResult loudness;
  analysis::WaveformOverview overview;
};

/// Run the full preprocessing pipeline on a track's audio.
TrackAnalysis analyze_track(const audio::Track& track);

/// One library entry.
struct LibraryEntry {
  std::uint32_t id = 0;
  std::string title;
  audio::TrackSpec spec;
  std::shared_ptr<audio::Track> track;  ///< loaded audio
  TrackAnalysis analysis;
};

/// The track collection. Generation + analysis happen at add() time
/// (DJ Star analyzes on import, never on the audio thread).
class Library {
 public:
  /// Generate, analyze and store a synthetic track. Returns its id.
  std::uint32_t add_generated(std::string title, const audio::TrackSpec& spec);

  /// Load a WAV file as a track (stereo or mono; mono is duplicated).
  /// Returns nullopt when the file cannot be read.
  std::optional<std::uint32_t> add_from_wav(std::string title,
                                            const std::string& path);

  std::size_t size() const noexcept { return entries_.size(); }
  const LibraryEntry* find(std::uint32_t id) const noexcept;
  const std::vector<LibraryEntry>& entries() const noexcept {
    return entries_;
  }

  /// Entries sorted by |bpm - target| — the "what can I mix into this?"
  /// query.
  std::vector<const LibraryEntry*> by_tempo(double target_bpm) const;

  /// Entries whose Camelot code is compatible with `key` (same hour or
  /// +/-1, same letter; or same hour, other letter) — harmonic mixing.
  std::vector<const LibraryEntry*> harmonic_matches(
      const analysis::KeyEstimate& key) const;

 private:
  std::uint32_t insert(std::string title, const audio::TrackSpec& spec,
                       std::shared_ptr<audio::Track> track);
  std::vector<LibraryEntry> entries_;
  std::uint32_t next_id_ = 1;
};

}  // namespace djstar::engine
