// djstar/engine/profiler.hpp
// Always-on cycle profiler (DESIGN.md §14): realized-critical-path
// attribution, ranked deadline-miss blame, and optional per-worker
// hardware counters, driven between cycles by AudioEngine (and, per
// hosted session, by serve::EngineHost).
//
// Division of labour: support/attrib owns the path reconstruction and
// blame math over raw spans; this layer adapts a concrete graph into
// the analyzer's predecessor shape, feeds it each cycle's flight spans,
// keeps EWMA critical-path state for graph_opt drift invalidation,
// publishes djstar_attrib_* metrics, emits kBlameReport/kBlame journal
// events on every miss, and renders the JSON served by the net layer's
// /debug/attribution and /debug/profile endpoints.
//
// Hardware counters (ProfMode::kAttribHw): one perf_event_open fd per
// (worker tid, event) for cycles / instructions / cache-misses /
// context-switches. The syscall is unavailable in many environments
// (CI containers, perf_event_paranoid, non-Linux) — open() then leaves
// the sampler unavailable and every later call is a cheap no-op, so
// attribution itself never depends on perf_event working.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "djstar/support/attrib.hpp"
#include "djstar/support/journal.hpp"
#include "djstar/support/metrics.hpp"
#include "djstar/support/trace.hpp"

namespace djstar::engine {

/// What the profiler records. kAttrib is designed to stay always-on
/// (bench/obs_overhead gates it under 2% of APC time); kAttribHw adds
/// per-worker perf_event counters when the kernel allows them.
enum class ProfMode : std::uint8_t {
  kOff = 0,
  kAttrib,    ///< critical-path + blame attribution
  kAttribHw,  ///< attribution + hardware counters
};

std::string_view to_string(ProfMode m) noexcept;
/// "off" | "attrib" | "attrib+hw" -> mode; nullopt on anything else.
std::optional<ProfMode> parse_prof_mode(std::string_view name) noexcept;
/// Hardened DJSTAR_PROF parsing, matching DJSTAR_THREADS style: unset
/// returns nullopt, whitespace is trimmed, anything else that is not a
/// valid mode (including an empty value) throws std::invalid_argument.
std::optional<ProfMode> prof_mode_from_env();

/// Profiler construction knobs (EngineConfig::profiler).
struct ProfilerConfig {
  ProfMode mode = ProfMode::kOff;
  /// Ranked entries per blame report (nodes and workers each).
  std::size_t top_k = 5;
  /// EWMA weight for per-node / per-worker / critical-path baselines.
  double baseline_alpha = 0.1;
  /// Invalidate graph_opt's static plan when the realized-critical-path
  /// EWMA drifts beyond this factor (either direction) from its value
  /// at plan build. The plan was scheduled around a predicted critical
  /// path; when the realized one moves this far the schedule's
  /// longest-chain-first ordering is stale even if total cycle time has
  /// not drifted yet.
  double cp_drift_ratio = 1.5;
};

/// One worker's hardware-counter deltas for one cycle.
struct HwCounters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t context_switches = 0;
};

/// Per-worker perf_event sampling with graceful degradation: when the
/// syscall is unavailable, available() is false and sample() costs one
/// branch. Single-threaded use from the cycle driver.
class HwSampler {
 public:
  HwSampler() = default;
  ~HwSampler();
  HwSampler(const HwSampler&) = delete;
  HwSampler& operator=(const HwSampler&) = delete;

  /// Open counter fds for each worker tid (tid 0 entries are skipped).
  /// Returns true when at least one worker's counters armed. Safe to
  /// call when perf_event_open is unavailable: returns false.
  bool open(std::span<const std::int32_t> tids);
  void close() noexcept;

  bool available() const noexcept { return available_; }
  std::size_t workers() const noexcept { return fds_.size(); }

  /// Read per-worker counter deltas since the previous sample() into
  /// `out` (resized to workers()). Returns false (out zeroed) when
  /// unavailable.
  bool sample(std::vector<HwCounters>& out);

  /// Cumulative counters per worker since open().
  const std::vector<HwCounters>& totals() const noexcept { return totals_; }

  /// gettid() of the calling thread (0 on platforms without it) — for
  /// single-threaded executors with no core::Team to ask.
  static std::int32_t self_tid() noexcept;

 private:
  struct WorkerFds {
    std::array<int, 4> fd = {-1, -1, -1, -1};
  };
  std::vector<WorkerFds> fds_;
  std::vector<HwCounters> last_;
  std::vector<HwCounters> totals_;
  bool available_ = false;
};

/// Per-node hardware cost, attributed through the span timeline: each
/// cycle's per-worker counter delta is distributed over that worker's
/// kRun spans proportionally to their duration.
struct NodeHw {
  double cycles = 0;
  double instructions = 0;
  double cache_misses = 0;
  double context_switches = 0;
  std::uint64_t samples = 0;
};

/// The per-graph attribution driver. One instance per AudioEngine (and
/// one per hosted serve::Session). All calls run between cycles on the
/// owner's cycle-driving thread.
class CycleProfiler {
 public:
  /// `preds[n]` = graph predecessors of node n (adapt a TaskGraph via
  /// preds_from_successors). `registry`/`journal` may be null; metric
  /// names are fixed, so several profilers sharing one registry share
  /// the same djstar_attrib_* series (register-or-fetch semantics).
  CycleProfiler(const ProfilerConfig& cfg,
                std::vector<std::vector<std::int32_t>> preds,
                double deadline_us, support::MetricsRegistry* registry,
                support::EventJournal* journal);

  /// Borrow a sampler (owned by the engine; null detaches). Sampled
  /// once per on_cycle; deltas are distributed over the cycle's spans.
  void set_hw(HwSampler* hw) noexcept { hw_ = hw; }
  HwSampler* hw() const noexcept { return hw_; }

  /// Attribute one finished cycle. `missed` must use the owner's own
  /// deadline predicate (identical to DeadlineMonitor) so blame reports
  /// and miss counters agree exactly.
  const support::attrib::CycleAttribution& on_cycle(
      std::span<const support::TraceSpan> spans, bool missed,
      std::uint64_t cycle);

  const ProfilerConfig& config() const noexcept { return cfg_; }
  const support::attrib::CycleAttribution& attribution() const noexcept {
    return analyzer_.result();
  }
  const support::attrib::BlameReport& last_blame() const noexcept {
    return tracker_.last();
  }
  std::uint64_t blame_reports() const noexcept { return tracker_.reports(); }
  std::uint64_t cycles_profiled() const noexcept { return cycles_profiled_; }

  /// EWMA of the realized critical-path length (us); 0 before the first
  /// cycle.
  double cp_ewma_us() const noexcept { return cp_ewma_us_; }
  /// cp_ewma_us() / baseline, mirroring CostModel::drift_ratio; 1.0
  /// when either side is unestablished.
  double drift_ratio(double baseline_us) const noexcept;

  const std::vector<NodeHw>& node_hw() const noexcept { return node_hw_; }
  const std::vector<HwCounters>& last_hw() const noexcept { return hw_delta_; }

  /// {"attribution":{...},"blame":{...}} for /debug/attribution.
  void append_attribution_json(std::string& out) const;
  std::string attribution_json() const;
  /// Mode, hw availability, per-worker counters, per-node EWMA + hw
  /// table for /debug/profile.
  void append_profile_json(std::string& out) const;
  std::string profile_json() const;

 private:
  ProfilerConfig cfg_;
  double deadline_us_;
  support::attrib::CriticalPathAnalyzer analyzer_;
  support::attrib::BlameTracker tracker_;
  support::EventJournal* journal_;
  HwSampler* hw_ = nullptr;

  double cp_ewma_us_ = 0;
  std::uint64_t cycles_profiled_ = 0;

  std::vector<HwCounters> hw_delta_;
  std::vector<NodeHw> node_hw_;
  std::vector<double> worker_run_us_;  // scratch for hw distribution

  bool have_metrics_ = false;
  support::Counter m_cycles_;
  support::Counter m_reports_;
  support::Counter m_cp_drifts_;
  support::Gauge g_cp_last_us_;
  support::HistogramMetric h_cp_run_us_;
  support::HistogramMetric h_cp_wait_us_;

 public:
  /// Metric hook for the owner's drift invalidation (counts
  /// djstar_attrib_cp_drifts_total and journals kCpDrift).
  void note_cp_drift(double ratio, std::uint64_t cycle);
};

/// Invert a successor adjacency into the analyzer's predecessor shape.
std::vector<std::vector<std::int32_t>> preds_from_successors(
    std::size_t node_count,
    const std::vector<std::vector<std::int32_t>>& succs);

}  // namespace djstar::engine
