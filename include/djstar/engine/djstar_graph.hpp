// djstar/engine/djstar_graph.hpp
// The canonical 67-node DJ Star task graph (paper Fig. 3 / §IV).
//
// Topology (sections in parentheses; -> are dependency edges):
//
//   per deck X in {A,B,C,D}  (section deckX):
//     SP_X1..SP_X4   sample players          (sources)
//     UTIL_X1..X4    control utilities        (sources, no audio)
//     FX_X1          effect 1, sums SP_X1..4
//     FX_X2..FX_X4   chained effects
//     CH_X           channel strip (filter, EQ, fader)  <- FX_X4
//     METER_X        channel meter                      <- CH_X
//   master section (section master):
//     SAMPLER        audio sampler (source)
//     MIXER          <- CH_A..CH_D, SAMPLER
//     MASTER         master bus                          <- MIXER
//     CUE            pre-mixer cue sum                   <- CH_A..CH_D
//     MONITOR        mono booth monitor                  <- CUE
//     RECORD         record buffer (comp+limit+clip)     <- MASTER
//     AUDIO_OUT      sound card output (limit+clip)      <- MASTER
//     HEADPHONE      cue/master blend                    <- CUE, MASTER
//     MASTER_METER                                        <- MASTER
//     ANALYZER       spectrum tap                         <- MIXER
//     BEATGRID       master tempo accounting              <- MIXER
//
// Totals: 67 nodes, of which 33 are sources (16 SP + 16 UTIL + SAMPLER) —
// matching the paper's simulated max concurrency of 33 — and the longest
// path runs SP -> FX*4 -> CH -> MIXER -> MASTER -> AUDIO_OUT.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "djstar/core/access_check.hpp"
#include "djstar/core/graph.hpp"
#include "djstar/engine/nodes.hpp"

namespace djstar::engine {

/// Role of a node in the canonical graph (drives the reference-duration
/// table and the benches' reporting).
enum class NodeKind {
  kSamplePlayer,
  kUtility,
  kDeckEffectA,   ///< deck A effects are the heavier "active deck" chain
  kDeckEffect,    ///< decks B/C/D
  kChannel,
  kDeckMeter,
  kSampler,
  kMixer,
  kMasterBus,
  kCue,
  kMonitor,
  kRecord,
  kAudioOut,
  kHeadphone,
  kMasterMeter,
  kAnalyzer,
  kBeatgrid,
};

/// Paper-scale mean duration (microseconds) for a node kind, calibrated
/// so that total work ~= 1.08 ms and the critical path ~= 0.29 ms
/// (Table I sequential row / §IV simulation; see EXPERIMENTS.md).
double reference_duration_us(NodeKind kind) noexcept;

/// How a node may be shed under load (the supervisor's kBypassFx rung).
enum class DegradeTier : std::uint8_t {
  kEssential,  ///< must run every cycle (audio path, mixer, out)
  kFxBypass,   ///< deck effect: run its bypass form (audio flows, no DSP)
  kSinkSkip,   ///< GUI/accounting sink: safe to skip entirely
};

/// The built graph plus everything it references. Move-only; node
/// processors live behind stable unique_ptr addresses because the work
/// lambdas capture raw pointers to them.
class DjStarGraph {
 public:
  /// Builds the 67-node graph. `deck_inputs[i]` is the preprocessed
  /// input buffer of deck i (from Deck::input()); pass nullptr to use an
  /// internal silent buffer (handy for scheduling-only experiments).
  explicit DjStarGraph(std::array<const audio::AudioBuffer*, 4> deck_inputs =
                           {nullptr, nullptr, nullptr, nullptr});

  DjStarGraph(DjStarGraph&&) = default;

  const core::TaskGraph& graph() const noexcept { return graph_; }
  core::TaskGraph& graph() noexcept { return graph_; }

  /// Node kind per node id.
  NodeKind kind(core::NodeId n) const noexcept { return kinds_[n]; }

  /// Degradation tier per node id (what the supervisor may shed).
  DegradeTier degrade_tier(core::NodeId n) const noexcept {
    return tiers_[n];
  }

  /// Replacement work for a kFxBypass node: routes audio through without
  /// the effect DSP. Returns an empty function for other tiers.
  core::WorkFn bypass_work(core::NodeId n) const;

  /// Corrupt the final output packet with NaNs (fault injection's
  /// kNanOutput lands here, after the cycle, so filter state in the
  /// graph is never contaminated — see engine/supervisor.hpp).
  void poison_output() noexcept;

  /// Paper-scale mean durations aligned with node ids.
  std::vector<double> reference_durations() const;

  /// The final output buffer (what goes to the sound card).
  const audio::AudioBuffer& output() const noexcept {
    return audio_out_->output();
  }

  // ---- named access for examples / parameter automation ----
  EffectNode& effect(unsigned deck, unsigned fx) noexcept {
    return *effects_[deck * 4 + fx];
  }
  ChannelNode& channel(unsigned deck) noexcept { return *channels_[deck]; }
  MixerNode& mixer() noexcept { return *mixer_; }
  MasterBusNode& master() noexcept { return *master_; }
  SamplerNode& sampler() noexcept { return *sampler_; }
  const MeterNode& deck_meter(unsigned deck) const noexcept {
    return *deck_meters_[deck];
  }
  const RecordNode& record() const noexcept { return *record_; }
  const CueNode& cue() const noexcept { return *cue_; }
  const MonitorNode& monitor() const noexcept { return *monitor_; }
  HeadphoneNode& headphone() noexcept { return *headphone_; }
  CueNode& cue_control() noexcept { return *cue_; }
  const MeterNode& master_meter() const noexcept { return *master_meter_; }
  const AnalyzerNode& analyzer() const noexcept { return *analyzer_; }

  core::NodeId audio_out_node() const noexcept { return audio_out_id_; }

  /// Declared buffer accesses of every node, for static race checking
  /// (core::AccessRegistry::check must return no hazards — tested).
  const core::AccessRegistry& accesses() const noexcept { return registry_; }

 private:
  void declare_accesses(
      const std::array<const audio::AudioBuffer*, 4>& deck_inputs);

  core::TaskGraph graph_;
  std::vector<NodeKind> kinds_;
  std::vector<DegradeTier> tiers_;
  std::vector<EffectNode*> node_effect_;  // id -> effect, null elsewhere
  core::AccessRegistry registry_;

  // Fallback silent inputs when a deck pointer is null.
  std::array<std::unique_ptr<audio::AudioBuffer>, 4> silent_;

  std::vector<std::unique_ptr<SamplePlayerNode>> players_;  // 16
  std::vector<std::unique_ptr<UtilityNode>> utils_;         // 16
  std::vector<std::unique_ptr<EffectNode>> effects_;        // 16
  std::array<std::unique_ptr<ChannelNode>, 4> channels_;
  std::array<std::unique_ptr<MeterNode>, 4> deck_meters_;
  std::unique_ptr<SamplerNode> sampler_;
  std::unique_ptr<MixerNode> mixer_;
  std::unique_ptr<MasterBusNode> master_;
  std::unique_ptr<CueNode> cue_;
  std::unique_ptr<MonitorNode> monitor_;
  std::unique_ptr<RecordNode> record_;
  std::unique_ptr<AudioOutNode> audio_out_;
  std::unique_ptr<HeadphoneNode> headphone_;
  std::unique_ptr<MeterNode> master_meter_;
  std::unique_ptr<AnalyzerNode> analyzer_;
  std::unique_ptr<UtilityNode> beatgrid_;

  core::NodeId audio_out_id_ = core::kInvalidNode;
};

/// Structure-plus-reference-durations for scheduling simulation without
/// any DSP (what the paper fed to RESCON).
struct ReferenceGraph {
  DjStarGraph graph;  ///< no-op inputs
  std::vector<double> durations_us;
};
ReferenceGraph make_reference_graph();

}  // namespace djstar::engine
