// djstar/engine/nodes.hpp
// The audio computations behind the 67 task-graph nodes (paper Fig. 3).
//
// Every node processor owns its output buffer and reads only from its
// declared inputs, so nodes without a dependency edge never touch the
// same memory — the property that makes all schedules produce
// bit-identical audio (tested in tests/engine/test_determinism.cpp).
// All process() methods are allocation-free.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "djstar/audio/buffer.hpp"
#include "djstar/dsp/basics.hpp"
#include "djstar/dsp/delay.hpp"
#include "djstar/dsp/dynamics.hpp"
#include "djstar/dsp/filters.hpp"
#include "djstar/dsp/reverb.hpp"
#include "djstar/fft/fft.hpp"

namespace djstar::engine {

using audio::AudioBuffer;

/// A sample player ("SPx Fltr" in Fig. 3): plays one frequency slot of
/// the deck's preprocessed input through its own state-variable filter.
/// The four players of a deck split the spectrum into stems.
class SamplePlayerNode {
 public:
  /// `slot` 0..3 selects the frequency band (low / low-mid / high-mid /
  /// high). `input` is the deck's preprocessed buffer, owned by the Deck.
  SamplePlayerNode(const AudioBuffer* input, unsigned slot);

  void process() noexcept;
  const AudioBuffer& output() const noexcept { return out_; }
  AudioBuffer& output() noexcept { return out_; }
  unsigned slot() const noexcept { return slot_; }

  /// Per-player level (the DJ's sample pads).
  void set_level(float level) noexcept { level_ = level; }

 private:
  const AudioBuffer* input_;
  unsigned slot_;
  float level_ = 1.0f;
  std::array<dsp::StateVariableFilter, 2> filters_;
  AudioBuffer out_{2, audio::kBlockSize};
};

/// Which effect algorithm an EffectNode runs.
enum class EffectKind {
  kEcho,
  kFlanger,
  kChorus,
  kPhaser,
  kReverb,
  kCompressor,
  kGate,
  kBitcrusher,
  kWaveshaper,
  kSoftClip,
  kSpectral,   ///< FFT brickwall (the expensive one)
};

const char* to_string(EffectKind k) noexcept;

/// One deck effect ("FXn" in Fig. 3). The first effect of a deck chain
/// additionally sums the four sample players into the deck bus.
class EffectNode {
 public:
  /// Chain-head constructor: sums `players` (exactly 4) then processes.
  EffectNode(EffectKind kind,
             std::array<const AudioBuffer*, 4> players);
  /// Chain-link constructor: processes `input` into its own buffer.
  EffectNode(EffectKind kind, const AudioBuffer* input);

  void process() noexcept;

  /// The degraded form: routes audio through (chain-head sum or
  /// copy-through) without running the effect algorithm. Used by the
  /// supervisor's kBypassFx rung so downstream nodes keep receiving
  /// fresh audio while the DSP cost disappears.
  void process_bypass() noexcept;

  const AudioBuffer& output() const noexcept { return out_; }
  EffectKind kind() const noexcept { return kind_; }

  /// Bypass toggle (a DJ punching effects in and out).
  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  /// Effect-specific macro control in [0,1] (maps to the most musical
  /// parameter of each algorithm).
  void set_amount(float amount) noexcept;

 private:
  void run_effect() noexcept;

  EffectKind kind_;
  std::array<const AudioBuffer*, 4> players_{};  // head node only
  const AudioBuffer* input_ = nullptr;           // link node only
  bool enabled_ = true;
  float amount_ = 0.5f;
  AudioBuffer out_{2, audio::kBlockSize};

  // One engine per algorithm; only the active one is touched.
  dsp::Echo echo_;
  dsp::Flanger flanger_;
  dsp::Chorus chorus_;
  dsp::Phaser phaser_;
  dsp::Reverb reverb_;
  dsp::Compressor comp_;
  dsp::Gate gate_;
  dsp::Bitcrusher crusher_;
  dsp::Waveshaper shaper_;
  dsp::SoftClip clip_;
  std::array<fft::SpectralFilter, 2> spectral_{fft::SpectralFilter{256},
                                               fft::SpectralFilter{256}};
};

/// Channel strip ("ChannelX: Filter, EQ"): DJ filter, 3-band EQ, fader.
class ChannelNode {
 public:
  explicit ChannelNode(const AudioBuffer* input);

  void process() noexcept;
  const AudioBuffer& output() const noexcept { return out_; }

  void set_filter_morph(float morph) noexcept { filter_.set_morph(morph); }
  void set_eq(float low_db, float mid_db, float high_db) noexcept {
    eq_.set_gains(low_db, mid_db, high_db);
  }
  void set_fader(float level) noexcept { fader_.set_gain(level); }

 private:
  const AudioBuffer* input_;
  dsp::DjFilter filter_;
  dsp::ThreeBandEq eq_;
  dsp::Gain fader_;
  AudioBuffer out_{2, audio::kBlockSize};
};

/// The audio sampler deck in the master section (one-shot jingles):
/// a source node that renders its own loop.
class SamplerNode {
 public:
  SamplerNode();
  void process() noexcept;
  const AudioBuffer& output() const noexcept { return out_; }
  void set_level(float level) noexcept { level_ = level; }
  void trigger() noexcept { pos_ = 0; active_ = true; }

 private:
  std::vector<float> loop_;  // mono one-shot, rendered once
  std::size_t pos_ = 0;
  bool active_ = true;
  float level_ = 0.5f;
  AudioBuffer out_{2, audio::kBlockSize};
};

/// Mixer: crossfader + channel sum + sampler bus (Fig. 3 center).
class MixerNode {
 public:
  MixerNode(std::array<const AudioBuffer*, 4> channels,
            const AudioBuffer* sampler);

  void process() noexcept;
  const AudioBuffer& output() const noexcept { return out_; }

  /// Crossfader position 0 (decks A+C) .. 1 (decks B+D).
  void set_crossfader(float pos) noexcept { xfade_ = pos; }
  void set_channel_level(unsigned ch, float level) noexcept {
    levels_[ch] = level;
  }

 private:
  std::array<const AudioBuffer*, 4> channels_;
  const AudioBuffer* sampler_;
  std::array<float, 4> levels_{1.0f, 1.0f, 1.0f, 1.0f};
  float xfade_ = 0.5f;
  AudioBuffer out_{2, audio::kBlockSize};
};

/// Master buffer: master EQ + gain ("MasterBuffer Mono" in Fig. 3 — the
/// mono tag refers to the mono-sum metering tap it feeds).
class MasterBusNode {
 public:
  explicit MasterBusNode(const AudioBuffer* input);
  void process() noexcept;
  const AudioBuffer& output() const noexcept { return out_; }
  void set_gain_db(float db) noexcept { gain_.set_gain_db(db); }

 private:
  const AudioBuffer* input_;
  dsp::BiquadStereo low_shelf_, high_shelf_;
  dsp::Gain gain_;
  AudioBuffer out_{2, audio::kBlockSize};
};

/// Cue buffer: pre-fader sum of the cue-enabled channels.
class CueNode {
 public:
  explicit CueNode(std::array<const AudioBuffer*, 4> pre_fader);
  void process() noexcept;
  const AudioBuffer& output() const noexcept { return out_; }
  void set_cue(unsigned ch, bool on) noexcept { cue_[ch] = on; }

 private:
  std::array<const AudioBuffer*, 4> inputs_;
  std::array<bool, 4> cue_{true, false, false, false};
  AudioBuffer out_{2, audio::kBlockSize};
};

/// Monitor buffer: mono fold-down of the cue bus for the booth monitor.
class MonitorNode {
 public:
  explicit MonitorNode(const AudioBuffer* cue);
  void process() noexcept;
  const AudioBuffer& output() const noexcept { return out_; }

 private:
  const AudioBuffer* cue_;
  AudioBuffer out_{2, audio::kBlockSize};
};

/// Record buffer: compressor + limiter + clip, feeding the recorder.
class RecordNode {
 public:
  explicit RecordNode(const AudioBuffer* master);
  void process() noexcept;
  const AudioBuffer& output() const noexcept { return out_; }

 private:
  const AudioBuffer* master_;
  dsp::Compressor comp_;
  dsp::Limiter limiter_;
  dsp::HardClip clip_{1.0f};
  AudioBuffer out_{2, audio::kBlockSize};
};

/// Audio out: final limiter + clip; its buffer is what goes to the
/// sound card.
class AudioOutNode {
 public:
  explicit AudioOutNode(const AudioBuffer* master);
  void process() noexcept;
  const AudioBuffer& output() const noexcept { return out_; }
  /// Mutable access for fault injection (NaN poisoning of the final
  /// packet); production code never writes through this.
  AudioBuffer& output() noexcept { return out_; }

 private:
  const AudioBuffer* master_;
  dsp::Limiter limiter_;
  dsp::HardClip clip_{0.999f};
  AudioBuffer out_{2, audio::kBlockSize};
};

/// Headphone out: blends cue and master for the DJ's headphones.
class HeadphoneNode {
 public:
  HeadphoneNode(const AudioBuffer* cue, const AudioBuffer* master);
  void process() noexcept;
  const AudioBuffer& output() const noexcept { return out_; }
  void set_blend(float cue_to_master) noexcept { blend_ = cue_to_master; }

 private:
  const AudioBuffer* cue_;
  const AudioBuffer* master_;
  float blend_ = 0.3f;
  AudioBuffer out_{2, audio::kBlockSize};
};

/// Meter node: peak/RMS of its input; GUI-facing, does not alter audio.
class MeterNode {
 public:
  explicit MeterNode(const AudioBuffer* input) : input_(input) {}
  void process() noexcept { meter_.process(*input_); }
  float peak() const noexcept { return meter_.peak(); }
  float rms() const noexcept { return meter_.rms(); }

 private:
  const AudioBuffer* input_;
  dsp::LevelMeter meter_;
};

/// Spectrum analyzer tap (drives the waveform/spectrum GUI widget).
class AnalyzerNode {
 public:
  explicit AnalyzerNode(const AudioBuffer* input);
  void process() noexcept;
  /// Magnitudes of the most recent 64-bin analysis.
  std::span<const float> magnitudes() const noexcept { return mags_; }

 private:
  const AudioBuffer* input_;
  fft::RealFft fft_{128};
  std::vector<std::complex<float>> spectrum_;
  std::vector<float> mono_;
  std::vector<float> mags_;
};

/// Dependency-free utility node ("nodes with no dependencies that do not
/// modify the audio packets", paper §IV): smooths one control parameter.
class UtilityNode {
 public:
  explicit UtilityNode(std::uint32_t id) noexcept : id_(id) {}
  void process() noexcept;
  float value() const noexcept { return value_; }

 private:
  std::uint32_t id_;
  float value_ = 0.0f;
  float phase_ = 0.0f;
};

}  // namespace djstar::engine
