// djstar/engine/engine.hpp
// The Audio Engine facade (paper Fig. 2): four decks, the 67-node task
// graph, a pluggable scheduling strategy, and the APC driver that times
// every phase against the 2.9 ms deadline.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include <atomic>

#include "djstar/core/compiled_graph.hpp"
#include "djstar/core/factory.hpp"
#include "djstar/engine/deadline.hpp"
#include "djstar/engine/deck.hpp"
#include "djstar/engine/djstar_graph.hpp"
#include "djstar/engine/profiler.hpp"
#include "djstar/engine/supervisor.hpp"
#include "djstar/engine/telemetry.hpp"
#include "djstar/support/slo.hpp"
#include "djstar/support/tsdb.hpp"

namespace djstar::engine {

/// Engine construction parameters.
struct EngineConfig {
  core::Strategy strategy = core::Strategy::kBusyWait;
  unsigned threads = 4;
  bool keylock = true;
  /// Seeds for the four decks' synthetic tracks.
  std::array<std::uint64_t, 4> track_seeds = {1, 2, 3, 4};
  double deadline_us = audio::kDeadlineUs;
  /// Retain per-cycle samples in the monitor (hist benches need them).
  bool keep_samples = true;
  core::ExecOptions exec{};  ///< threads field is overwritten
  core::WorkStealingOptions ws{};

  /// Graph compilation pipeline stage (core/graph_opt, DESIGN.md §11).
  /// Overridden by DJSTAR_GRAPH_OPT=off|fuse|fuse+static when set.
  core::graph_opt::Mode graph_opt = core::graph_opt::Mode::kOff;
  /// Fusion pass tuning (used when graph_opt != kOff).
  core::graph_opt::FusionOptions fusion{};
  /// Invalidate the cached static plan when the cycle-level graph-time
  /// EWMA drifts beyond this factor from its value at plan build (in
  /// either direction).
  double plan_drift_ratio = 1.5;
  /// Variance gate: a freshly built static plan starts invalid when the
  /// cost model's max coefficient of variation exceeds this.
  double plan_max_cv = 0.25;

  /// Worker self-healing (DESIGN.md §12). Overridden by
  /// DJSTAR_HEAL=off|quarantine|respawn when set. With mode != kOff the
  /// parallel executors run their team with heartbeats and a medic, the
  /// engine polls quarantine/respawn counters into the supervisor and
  /// telemetry after every cycle, and static-plan replay is disabled
  /// (the cached schedule assumes a fixed healthy team).
  core::TeamHealConfig heal{};

  /// Cycle attribution profiler (engine/profiler, DESIGN.md §14). Mode
  /// overridden by DJSTAR_PROF=off|attrib|attrib+hw when set. mode !=
  /// kOff implies telemetry (the flight recorder is the span source).
  ProfilerConfig profiler{};

  /// SLO engine (support/slo + support/tsdb, DESIGN.md §15). enabled/
  /// spec overridden by DJSTAR_SLO=off|on[,<miss_ratio>[,<p99_us>]] when
  /// set. enabled implies telemetry (gauges, journal events, and the
  /// page-triggered flight dump all need its sinks).
  support::SloConfig slo{};
};

/// DJ Star's audio engine. Single-threaded control interface: construct,
/// tweak parameters, call run_cycle() per audio packet.
class AudioEngine {
 public:
  explicit AudioEngine(EngineConfig cfg = {});

  /// Execute one full audio processing cycle and return its phase
  /// timings (also recorded into monitor()).
  CycleBreakdown run_cycle();

  /// Convenience: run `n` cycles back to back.
  void run_cycles(std::size_t n);

  /// The packet handed to the sound card after the last cycle.
  const audio::AudioBuffer& output() const noexcept {
    return graph_nodes_.output();
  }

  // ---- fault tolerance (engine/supervisor.hpp) ----

  /// Attach a CycleSupervisor and pre-build the sequential fallback
  /// executor. Afterwards use run_cycle_supervised() + safe_output().
  void enable_supervision(const SupervisorConfig& scfg = {});
  bool supervised() const noexcept { return supervisor_ != nullptr; }
  CycleSupervisor& supervisor() noexcept { return *supervisor_; }
  const CycleSupervisor& supervisor() const noexcept { return *supervisor_; }

  /// Supervised cycle: applies the ladder's current level (masks, deck
  /// flags, executor choice), runs the phases under the watchdog, then
  /// validates the output. The packet for the sound card is
  /// safe_output(), which is valid even when this cycle faulted.
  CycleBreakdown run_cycle_supervised();

  /// The validated output packet (falls back to output() unsupervised).
  const audio::AudioBuffer& safe_output() const noexcept {
    return supervisor_ ? supervisor_->safe_output() : graph_nodes_.output();
  }

  // ---- telemetry (engine/telemetry.hpp) ----

  /// Attach the telemetry bundle: metrics registry, event journal, and
  /// always-on flight recorder (wired into the workers — rebuilds the
  /// executor). The constructor calls this automatically when
  /// DJSTAR_FLIGHT=<dump-path> is set.
  void enable_telemetry(const TelemetryConfig& tcfg = {});
  bool telemetry_enabled() const noexcept { return telemetry_ != nullptr; }
  EngineTelemetry& telemetry() noexcept { return *telemetry_; }
  const EngineTelemetry& telemetry() const noexcept { return *telemetry_; }

  // ---- cycle attribution (engine/profiler.hpp, DESIGN.md §14) ----

  /// Attach the attribution profiler: per-cycle realized-critical-path
  /// analysis, ranked blame reports on misses, and (attrib+hw mode)
  /// per-worker perf_event counters. Enables telemetry when absent (the
  /// flight recorder is the span source). The constructor calls this
  /// automatically when DJSTAR_PROF names a mode other than off.
  void enable_profiler(const ProfilerConfig& pcfg);
  bool profiler_enabled() const noexcept { return profiler_ != nullptr; }
  CycleProfiler& profiler() noexcept { return *profiler_; }
  const CycleProfiler& profiler() const noexcept { return *profiler_; }

  // ---- SLO engine (support/slo.hpp, DESIGN.md §15) ----

  /// Attach the SLO engine: a per-engine time-series store fed every
  /// cycle (miss predicate byte-identical to DeadlineMonitor's) and a
  /// burn-rate tracker evaluated once per sealed window. The store's
  /// clock is virtual — cycles × deadline_us — so the alert state
  /// machine is deterministic. Page-level alerts force one supervisor
  /// ladder step (when supervised) and trigger a flight incident dump.
  /// Enables telemetry when absent. The constructor calls this
  /// automatically when DJSTAR_SLO=on[,...] is set.
  void enable_slo(const support::SloConfig& scfg);
  bool slo_enabled() const noexcept { return slo_ != nullptr; }
  const support::SloTracker& slo() const noexcept { return *slo_; }
  support::TimeSeriesStore* slo_store() noexcept { return slo_tsdb_.get(); }

  /// Arm/disarm node fault injection on the compiled graph. (The
  /// constructor also arms automatically from DJSTAR_FAULTS.)
  void arm_faults(const core::chaos::FaultPlan& plan) {
    compiled_->arm_faults(plan);
  }
  void disarm_faults() noexcept { compiled_->disarm_faults(); }

  Deck& deck(unsigned i) noexcept { return *decks_[i]; }
  DjStarGraph& graph_nodes() noexcept { return graph_nodes_; }
  core::CompiledGraph& compiled() noexcept { return *compiled_; }
  core::Executor& executor() noexcept { return *executor_; }
  const DeadlineMonitor& monitor() const noexcept { return monitor_; }
  DeadlineMonitor& monitor() noexcept { return monitor_; }

  core::Strategy strategy() const noexcept { return cfg_.strategy; }
  unsigned threads() const noexcept { return cfg_.threads; }

  /// Swap the scheduling strategy / thread count. Destroys and rebuilds
  /// the executor (joins old workers). Not callable mid-cycle. Monitor
  /// history, supervisor ladder state, and any degradation applied to
  /// the graph all survive the swap (tested) — callers who want fresh
  /// accounting must reset the monitor explicitly.
  void set_strategy(core::Strategy s, unsigned threads);

  /// Measure mean per-node execution times over `cycles` sequential
  /// graph runs (the paper's "average vertex computation time using 10k
  /// APC executions"). Returns microseconds per node id.
  std::vector<double> measure_node_durations(std::size_t cycles);

  /// Current master tempo estimate (VC phase output).
  double master_tempo_bpm() const noexcept { return master_tempo_bpm_; }

  // ---- graph optimization (core/graph_opt, DESIGN.md §11) ----

  core::graph_opt::Mode graph_opt_mode() const noexcept {
    return cfg_.graph_opt;
  }
  /// Per-node cost model: seeded from the graph's reference durations at
  /// construction, refined online via observe_spans() / observe().
  core::graph_opt::CostModel& cost_model() noexcept { return *cost_model_; }
  const core::graph_opt::CostModel& cost_model() const noexcept {
    return *cost_model_;
  }
  /// Cached static schedule (nullptr unless mode is fuse+static).
  const core::graph_opt::StaticPlan* static_plan() const noexcept {
    return static_plan_.get();
  }

  /// EWMA refinement hook: fold every kRun span of `trace` into the
  /// per-node cost estimates. Returns the number of spans folded.
  std::size_t observe_spans(const support::TraceRecorder& trace);

  /// Rebuild the cached static plan from the current cost model (and
  /// re-create the executor so workers pick it up). No-op unless mode is
  /// fuse+static. Called automatically when the plan was invalidated by
  /// drift and the engine is between cycles.
  void rebuild_static_plan();

 private:
  void track_graph_time(double graph_us);
  void poll_heal();
  void profile_cycle(const CycleBreakdown& c);
  core::ExecOptions exec_options() const noexcept;
  void rebuild_executor();
  void apply_degradation(DegradationLevel target);
  void phase_tp(CycleBreakdown& c);
  void phase_gp(CycleBreakdown& c);
  void phase_vc(CycleBreakdown& c);
  void apply_pending_poison() noexcept;
  void finish_cycle_telemetry(const CycleBreakdown& c, unsigned level);
  void slo_cycle(const CycleBreakdown& c, bool good);

  EngineConfig cfg_;
  std::array<std::unique_ptr<Deck>, 4> decks_;
  DjStarGraph graph_nodes_;
  // Declared before the graph and executors so workers and the graph's
  // journal pointer never outlive their sinks.
  std::unique_ptr<EngineTelemetry> telemetry_;
  // DJSTAR_TRACE support: armed at construction, dumped after the first
  // cycle, then disarmed (record() becomes a no-op).
  std::unique_ptr<support::TraceRecorder> env_trace_;
  std::string env_trace_path_;
  bool env_trace_pending_ = false;
  std::unique_ptr<core::graph_opt::CostModel> cost_model_;
  std::unique_ptr<core::CompiledGraph> compiled_;
  // Owned by the engine, pointed at by the executors via ExecOptions;
  // mutated (invalidate/replace) only between cycles.
  std::unique_ptr<core::graph_opt::StaticPlan> static_plan_;
  // Cycle-EWMA graph time captured when the current plan was built;
  // 0 until the first post-build cycle establishes it.
  double plan_baseline_us_ = 0.0;
  std::unique_ptr<core::Executor> executor_;
  DeadlineMonitor monitor_;
  double master_tempo_bpm_ = 0.0;
  double beat_phase_ = 0.0;

  // Fault tolerance. The ladder level actually applied to the graph
  // (masks, deck flags) — follows supervisor().level() with a one-cycle
  // lag because actuation happens between cycles.
  std::unique_ptr<CycleSupervisor> supervisor_;
  std::unique_ptr<core::Executor> fallback_exec_;
  DegradationLevel applied_level_ = DegradationLevel::kFull;
  // Set by the graph's poison hook (worker threads); consumed after the
  // executor returns so injected NaNs land in the finished output packet
  // instead of contaminating filter state mid-graph.
  std::atomic<bool> poison_pending_{false};

  // Self-healing poll state (DESIGN.md §12): last-seen cumulative team
  // counters, diffed after every cycle into supervisor/telemetry, plus
  // the live worker count from the previous poll (0 = not yet seen) for
  // static-plan invalidation on team-size changes.
  std::uint64_t seen_heal_quarantines_ = 0;
  std::uint64_t seen_heal_respawns_ = 0;
  unsigned seen_heal_live_ = 0;
  std::uint64_t heal_cycle_ = 0;

  // Cycle attribution (DESIGN.md §14). Declared after telemetry_ so the
  // profiler (which borrows telemetry's registry/journal) is destroyed
  // first. cp_baseline_us_ mirrors plan_baseline_us_: the realized
  // critical-path EWMA captured when the current static plan was built,
  // reset whenever the plan changes.
  std::unique_ptr<CycleProfiler> profiler_;
  std::unique_ptr<HwSampler> hw_sampler_;
  bool hw_armed_ = false;
  std::vector<support::TraceSpan> prof_spans_;  // per-cycle scratch
  double cp_baseline_us_ = 0.0;

  // SLO engine (DESIGN.md §15). The tracker owns series inside the
  // store, so it is declared after (destroyed before) the store.
  std::unique_ptr<support::TimeSeriesStore> slo_tsdb_;
  std::unique_ptr<support::SloTracker> slo_;
  support::Gauge g_slo_budget_;
  support::Gauge g_slo_state_;
  support::Gauge g_slo_burn_fast_;
  support::Gauge g_slo_burn_slow_;
  std::uint64_t slo_cycles_seen_ = 0;  // drives the virtual tsdb clock
};

}  // namespace djstar::engine
