// djstar/timecode/timecode.hpp
// Synthetic vinyl-timecode substrate (DESIGN.md §2).
//
// DJ Star interprets control signals from timecode vinyl/CDs: a stereo
// carrier whose frequency tracks platter speed, whose stereo phase
// relation encodes direction, and whose amplitude modulation encodes the
// absolute position. Decoding this consumed 16 % of the paper's APC
// runtime. We implement a compatible scheme:
//
//  * carrier: sine at kCarrierHz * pitch on the left channel, quadrature
//    (90 degrees ahead when playing forward) on the right channel;
//  * position: one bit per carrier cycle, amplitude 1.0 = '1' and
//    kZeroAmp = '0', framed as [kSyncBits sync pattern | 20-bit position
//    | 4-bit XOR checksum] repeating.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "djstar/audio/buffer.hpp"

namespace djstar::timecode {

inline constexpr double kCarrierHz = 2000.0;
inline constexpr float kZeroAmp = 0.55f;
inline constexpr unsigned kPositionBits = 20;
inline constexpr unsigned kChecksumBits = 4;
inline constexpr std::uint32_t kSyncPattern = 0b11110010;
inline constexpr unsigned kSyncBits = 8;
inline constexpr unsigned kFrameBits =
    kSyncBits + kPositionBits + kChecksumBits;

/// 4-bit XOR checksum over the 20 position bits (nibble-folded).
std::uint32_t position_checksum(std::uint32_t position) noexcept;

/// Generates the stereo timecode signal for a virtual turntable.
class TimecodeGenerator {
 public:
  explicit TimecodeGenerator(double sample_rate = audio::kSampleRate) noexcept;

  /// Platter speed: 1.0 = normal forward, negative = reverse.
  void set_pitch(double pitch) noexcept { pitch_ = pitch; }
  double pitch() const noexcept { return pitch_; }

  /// Position counter (frames, advances with frame numbering).
  std::uint32_t frame_counter() const noexcept { return frame_counter_; }
  void seek(std::uint32_t frame) noexcept;

  /// Render the next block of timecode into a stereo buffer.
  void render(audio::AudioBuffer& out) noexcept;

 private:
  std::uint64_t current_frame_word() const noexcept;
  double sr_;
  double pitch_ = 1.0;
  double phase_ = 0.0;        // carrier phase [0,1)
  unsigned bit_index_ = 0;    // bit position within the frame word
  std::uint32_t frame_counter_ = 0;
};

/// What the decoder knows about the platter.
struct TransportState {
  double pitch = 0.0;          ///< estimated speed (signed; <0 = reverse)
  bool locked = false;         ///< true once a full frame has validated
  std::uint32_t position = 0;  ///< last validated absolute frame counter
  std::uint64_t frames_decoded = 0;
  std::uint64_t checksum_errors = 0;
};

/// Streaming decoder. Pitch/direction come from per-sample quadrature
/// demodulation (theta = atan2(L, R); the wrapped phase increment is the
/// instantaneous carrier frequency, signed by platter direction — the
/// same approach real timecode decoders use). Bits are sliced per
/// carrier cycle from the amplitude envelope; frames are validated by a
/// sync+checksum state machine requiring two chained frames to lock.
class TimecodeDecoder {
 public:
  explicit TimecodeDecoder(double sample_rate = audio::kSampleRate) noexcept;

  /// Consume one stereo block. Allocation-free.
  void process(const audio::AudioBuffer& in) noexcept;

  const TransportState& state() const noexcept { return state_; }
  void reset() noexcept;

 private:
  void on_cycle_complete(double period_samples, float peak_amp,
                         bool forward) noexcept;
  void push_bit(bool bit) noexcept;

  double sr_;
  double prev_theta_ = 0.0;
  bool have_theta_ = false;
  TransportState state_{};
  float prev_l_ = 0.0f;
  double samples_since_crossing_ = 0.0;
  float cycle_peak_ = 0.0f;
  float right_at_crossing_ = 0.0f;
  double pitch_smooth_ = 0.0;
  std::uint64_t bit_shift_ = 0;  // most recent bits, LSB = newest
  unsigned bits_seen_ = 0;
  // Frame-sync state machine: scanning until two chained valid frames
  // (positions p, p+1 exactly one frame apart) are seen, then locked to
  // 32-bit boundaries. Random noise essentially never chains, so there
  // are no false locks; in the locked state a failed boundary check is a
  // real checksum error and drops back to scanning.
  bool synced_ = false;
  bool have_candidate_ = false;
  std::uint32_t candidate_position_ = 0;
  unsigned bits_since_candidate_ = 0;
  unsigned boundary_countdown_ = 0;
};

}  // namespace djstar::timecode
