// djstar/sim/sampler.hpp
// Per-iteration node-duration sampling.
//
// The paper stresses that "the execution time of a task graph iteration
// heavily depends on the audio data" and its Fig. 9 histograms show two
// peaks per strategy. We model that as a two-regime mixture: each cycle
// is globally "light" or "heavy" (e.g. transient-rich audio engaging the
// compressors and stretch search), plus per-node lognormal-ish jitter
// and a rare heavy-tail spike (the source of the ~5/10k deadline misses).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "djstar/support/rng.hpp"

namespace djstar::sim {

/// Duration-distribution parameters.
struct SamplerConfig {
  /// Probability that a cycle lands in the heavy regime.
  double heavy_probability = 0.35;
  /// Heavy-to-light regime ratio.
  double heavy_factor = 1.45;
  /// Per-node multiplicative jitter: duration *= exp(sigma*N(0,1) -
  /// sigma^2/2) (mean-preserving lognormal).
  double jitter_sigma = 0.10;
  /// Probability that a single node spikes (page fault, SMI, preemption).
  double spike_probability = 3e-5;
  /// Spike multiplier.
  double spike_factor = 40.0;
  /// When true (default), the light/heavy regime factors are rescaled so
  /// the expected duration equals the supplied mean — the means are what
  /// the paper measured, so the mixture must reproduce them.
  bool preserve_mean = true;
  std::uint64_t seed = 42;
};

/// Draws per-cycle duration vectors around given mean durations.
class DurationSampler {
 public:
  DurationSampler(std::span<const double> mean_us, SamplerConfig cfg = {});

  /// Sample one cycle's durations into `out` (resized to node count).
  /// The same sampler instance yields a deterministic sequence.
  void sample(std::vector<double>& out);

  /// True when the last sampled cycle was in the heavy regime.
  bool last_was_heavy() const noexcept { return last_heavy_; }

  std::span<const double> means() const noexcept { return mean_us_; }

 private:
  std::vector<double> mean_us_;
  SamplerConfig cfg_;
  support::Xoshiro256 rng_;
  bool last_heavy_ = false;
};

}  // namespace djstar::sim
