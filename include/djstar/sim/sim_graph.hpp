// djstar/sim/sim_graph.hpp
// Structure + node durations for scheduling simulation — the input the
// paper fed to RESCON (§IV: "we measured the average vertex computation
// time using 10k APC executions" and simulated schedules from it).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "djstar/core/compiled_graph.hpp"

namespace djstar::sim {

using core::NodeId;

/// A task graph with per-node durations in microseconds. Plain data —
/// cheap to copy, durations freely replaceable between simulations.
struct SimGraph {
  std::vector<std::vector<NodeId>> successors;
  std::vector<std::vector<NodeId>> predecessors;
  std::vector<double> duration_us;
  std::vector<std::uint32_t> section;  ///< section index per node
  std::vector<NodeId> order;           ///< dependency-sorted queue

  std::size_t node_count() const noexcept { return duration_us.size(); }

  /// Snapshot the structure of a compiled graph and attach durations
  /// (one per node, in node-id order).
  static SimGraph from_compiled(const core::CompiledGraph& g,
                                std::span<const double> durations);

  /// Snapshot the *unit* graph of a compiled graph (graph_opt fusion):
  /// one sim node per fused unit, duration = sum of the members'
  /// durations (`durations` is still per original node), section = the
  /// unit's section, order = the unit queue. With an identity plan this
  /// equals from_compiled().
  static SimGraph from_compiled_units(const core::CompiledGraph& g,
                                      std::span<const double> durations);

  /// Validate: durations non-negative, order is a permutation respecting
  /// dependencies. Asserts on violation.
  void validate() const;
};

/// Length of the longest duration-weighted path (lower bound on any
/// schedule's makespan; the paper's 295 us on infinite processors).
double critical_path_us(const SimGraph& g);

/// Sum of all node durations (the sequential execution time).
double total_work_us(const SimGraph& g);

}  // namespace djstar::sim
