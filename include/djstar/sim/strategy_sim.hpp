// djstar/sim/strategy_sim.hpp
// Virtual-time models of the three scheduling strategies.
//
// The paper replayed its BUSY strategy inside RESCON to separate
// algorithmic schedule quality from thread-management overhead (§VI,
// Fig. 12: 327 us simulated vs 452 us measured). We extend the same idea
// to all three strategies with an explicit overhead model, which also
// lets the reproduction run "on" a virtual 4-core machine regardless of
// the host's core count (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "djstar/sim/schedulers.hpp"
#include "djstar/sim/sim_graph.hpp"

namespace djstar::sim {

/// Per-operation costs in microseconds. Defaults are calibrated from the
/// bench/micro_primitives measurements on commodity x86 (see
/// EXPERIMENTS.md); all are overridable.
struct OverheadModel {
  /// Picking the next node from the queue + checking its dependencies
  /// ("the small space between node executions", paper Fig. 11).
  double dep_check_us = 0.75;
  /// Busy-wait re-check granularity: a spinning thread notices
  /// dependency resolution within this quantum.
  double spin_quantum_us = 0.10;
  /// Latency from notify to the sleeping thread running again
  /// (futex wake + scheduler dispatch).
  double wake_latency_us = 12.0;
  /// Cost paid by the signalling thread per wakeup it sends.
  double signal_cost_us = 1.0;
  /// Cost of registering as waiter + parking on the condition variable.
  double sleep_entry_us = 2.5;
  /// One steal probe of a victim deque.
  double steal_probe_us = 1.0;
  /// One owner push or pop on the local deque.
  double deque_op_us = 0.45;
  /// Master's per-source-node seeding cost at cycle start (WS only).
  double seed_cost_us = 0.45;
  /// Cache-coherence contention: every per-node cost above is scaled by
  /// (1 + contention_per_thread * (threads - 1)). The paper's measured
  /// BUSY at 4 threads (452 us) sits 38% above its RESCON replay
  /// (327 us); this factor models that thread-count-dependent gap.
  double contention_per_thread = 2.2;
  /// Per-cycle team dispatch cost each worker pays before its first node
  /// (generation hand-off, cache warm-up). Applies when threads > 1.
  double dispatch_us = 14.0;

  /// dep_check_us after contention scaling.
  double scaled_check(std::uint32_t threads) const {
    return dep_check_us *
           (1.0 + contention_per_thread * static_cast<double>(threads - 1));
  }
};

/// Which strategy a virtual-time simulation models.
enum class SimStrategy { kBusy, kSleep, kWorkStealing };

/// Simulate one graph iteration under `strategy` on `threads` virtual
/// cores with the given per-node durations and overheads. Deterministic.
ScheduleResult simulate_strategy(const SimGraph& g, SimStrategy strategy,
                                 std::uint32_t threads,
                                 const OverheadModel& ov = {});

/// Convenience wrappers (used by the benches).
ScheduleResult simulate_busy(const SimGraph& g, std::uint32_t threads,
                             const OverheadModel& ov = {});
ScheduleResult simulate_sleep(const SimGraph& g, std::uint32_t threads,
                              const OverheadModel& ov = {});
ScheduleResult simulate_work_stealing(const SimGraph& g,
                                      std::uint32_t threads,
                                      const OverheadModel& ov = {});

}  // namespace djstar::sim
