// djstar/sim/strategy_sim.hpp
// Virtual-time models of the three scheduling strategies.
//
// The paper replayed its BUSY strategy inside RESCON to separate
// algorithmic schedule quality from thread-management overhead (§VI,
// Fig. 12: 327 us simulated vs 452 us measured). We extend the same idea
// to all three strategies with an explicit overhead model, which also
// lets the reproduction run "on" a virtual 4-core machine regardless of
// the host's core count (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "djstar/sim/schedulers.hpp"
#include "djstar/sim/sim_graph.hpp"
#include "djstar/support/cost_table.hpp"

namespace djstar::sim {

/// Per-operation costs in microseconds. Defaults come from the single
/// calibrated table in support/cost_table.hpp (bench/micro_primitives
/// measurements on commodity x86, exported as results/cost_table.csv);
/// all are overridable.
struct OverheadModel {
  /// Picking the next node from the queue + checking its dependencies
  /// ("the small space between node executions", paper Fig. 11).
  double dep_check_us = support::costs::kDepCheckUs;
  /// Busy-wait re-check granularity: a spinning thread notices
  /// dependency resolution within this quantum.
  double spin_quantum_us = support::costs::kSpinQuantumUs;
  /// Latency from notify to the sleeping thread running again
  /// (futex wake + scheduler dispatch).
  double wake_latency_us = support::costs::kWakeLatencyUs;
  /// Cost paid by the signalling thread per wakeup it sends.
  double signal_cost_us = support::costs::kSignalCostUs;
  /// Cost of registering as waiter + parking on the condition variable.
  double sleep_entry_us = support::costs::kSleepEntryUs;
  /// One steal probe of a victim deque.
  double steal_probe_us = support::costs::kStealProbeUs;
  /// One owner push or pop on the local deque.
  double deque_op_us = support::costs::kDequeOpUs;
  /// Master's per-source-node seeding cost at cycle start (WS only).
  double seed_cost_us = support::costs::kSeedCostUs;
  /// Cache-coherence contention: every per-node cost above is scaled by
  /// (1 + contention_per_thread * (threads - 1)). The paper's measured
  /// BUSY at 4 threads (452 us) sits 38% above its RESCON replay
  /// (327 us); this factor models that thread-count-dependent gap.
  double contention_per_thread = support::costs::kContentionPerThread;
  /// Per-cycle team dispatch cost each worker pays before its first node
  /// (generation hand-off, cache warm-up). Applies when threads > 1.
  double dispatch_us = support::costs::kDispatchUs;

  /// dep_check_us after contention scaling.
  double scaled_check(std::uint32_t threads) const {
    return dep_check_us *
           (1.0 + contention_per_thread * static_cast<double>(threads - 1));
  }
};

/// Which strategy a virtual-time simulation models.
enum class SimStrategy { kBusy, kSleep, kWorkStealing };

/// Simulate one graph iteration under `strategy` on `threads` virtual
/// cores with the given per-node durations and overheads. Deterministic.
ScheduleResult simulate_strategy(const SimGraph& g, SimStrategy strategy,
                                 std::uint32_t threads,
                                 const OverheadModel& ov = {});

/// Convenience wrappers (used by the benches).
ScheduleResult simulate_busy(const SimGraph& g, std::uint32_t threads,
                             const OverheadModel& ov = {});
ScheduleResult simulate_sleep(const SimGraph& g, std::uint32_t threads,
                              const OverheadModel& ov = {});
ScheduleResult simulate_work_stealing(const SimGraph& g,
                                      std::uint32_t threads,
                                      const OverheadModel& ov = {});

/// Simulate static-plan replay (graph_opt fuse+static): a critical-path-
/// first list schedule is computed once (mirroring
/// core::graph_opt::build_static_plan), then each virtual worker walks
/// its per-worker list in start order paying one dependency check per
/// unit — no ready-queue traffic at all. Feed it the unit graph
/// (SimGraph::from_compiled_units) to model a fused replay.
ScheduleResult simulate_static(const SimGraph& g, std::uint32_t threads,
                               const OverheadModel& ov = {});

}  // namespace djstar::sim
