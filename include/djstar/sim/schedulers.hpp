// djstar/sim/schedulers.hpp
// RESCON-substitute schedule analyses (paper §IV):
//  * earliest-start scheduling with unlimited processors — reveals the
//    critical path and the maximum concurrency (Fig. 4's "33 processors");
//  * resource-constrained list scheduling on P processors — the
//    "optimal schedule" baseline (324 us on four cores).
#pragma once

#include <cstdint>
#include <vector>

#include "djstar/sim/sim_graph.hpp"
#include "djstar/support/trace.hpp"

namespace djstar::sim {

/// One scheduled node.
struct ScheduleEntry {
  NodeId node = 0;
  std::uint32_t proc = 0;
  double start_us = 0;
  double finish_us = 0;
};

/// A waiting interval on one processor (busy-wait or sleep), kept so the
/// Gantt renderings can show the paper's gray/white boxes (Fig. 11).
struct WaitEntry {
  std::uint32_t proc = 0;
  double begin_us = 0;
  double end_us = 0;
  bool sleeping = false;  ///< false = busy-wait/steal, true = parked
};

/// A complete simulated schedule.
struct ScheduleResult {
  std::vector<ScheduleEntry> entries;
  std::vector<WaitEntry> waits;
  double makespan_us = 0;
  std::uint32_t processors_used = 0;

  /// Concurrency profile: active processor count sampled at every
  /// start/finish event (piecewise constant between times[i] and
  /// times[i+1]).
  std::vector<double> profile_times_us;
  std::vector<int> profile_active;

  /// Maximum simultaneous activity (the paper's "33 processors").
  int peak_concurrency() const noexcept;

  /// Convert to trace spans for Gantt rendering (proc -> thread lane).
  std::vector<support::TraceSpan> to_spans() const;
};

/// Earliest-start schedule, unlimited processors: every node starts the
/// moment its last predecessor finishes.
ScheduleResult earliest_start_schedule(const SimGraph& g);

/// Priority rule for the resource-constrained list scheduler.
enum class PriorityRule {
  kQueueOrder,    ///< position in g.order (the paper's queue)
  kCriticalPath,  ///< longest duration-weighted path to an exit (HLF)
};

/// List scheduling on `processors` machines. This is the classic Graham
/// list schedule: <= 2x optimal, and for this graph within ~10% of the
/// infinite-processor bound, matching the paper's 324 vs 295 us.
ScheduleResult list_schedule(const SimGraph& g, std::uint32_t processors,
                             PriorityRule rule = PriorityRule::kQueueOrder);

/// Longest duration-weighted path from each node to any exit (the HLF
/// priority; includes the node's own duration).
std::vector<double> upward_rank(const SimGraph& g);

}  // namespace djstar::sim
