// djstar/fft/fft.hpp
// Iterative radix-2 FFT with precomputed twiddles, a real-signal wrapper,
// window functions, and FFT-based spectral processing.
//
// The paper notes that the audio effects "heavily rely on core algorithms
// such as Fourier transformation" (§III-B); this module is that substrate.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace djstar::fft {

/// Radix-2 decimation-in-time FFT plan for a fixed power-of-two size.
/// Twiddles and the bit-reversal permutation are precomputed so that
/// forward()/inverse() are allocation-free.
class Fft {
 public:
  /// `size` must be a power of two >= 2.
  explicit Fft(std::size_t size);

  std::size_t size() const noexcept { return n_; }

  /// In-place forward transform. data.size() == size().
  void forward(std::span<std::complex<float>> data) const noexcept;

  /// In-place inverse transform (includes the 1/N normalization).
  void inverse(std::span<std::complex<float>> data) const noexcept;

 private:
  void transform(std::span<std::complex<float>> data,
                 bool inverse) const noexcept;
  std::size_t n_;
  std::vector<std::size_t> rev_;
  std::vector<std::complex<float>> twiddle_;      // forward
  std::vector<std::complex<float>> twiddle_inv_;  // inverse
};

/// Real-input convenience wrapper: forward packs N real samples into N/2+1
/// bins; inverse returns to N real samples. Internally uses a complex FFT
/// of length N (simple, robust; fine at our sizes).
class RealFft {
 public:
  explicit RealFft(std::size_t size);

  std::size_t size() const noexcept { return fft_.size(); }
  std::size_t bins() const noexcept { return fft_.size() / 2 + 1; }

  /// `input.size() == size()`, `spectrum.size() == bins()`.
  void forward(std::span<const float> input,
               std::span<std::complex<float>> spectrum) noexcept;
  void inverse(std::span<const std::complex<float>> spectrum,
               std::span<float> output) noexcept;

 private:
  Fft fft_;
  std::vector<std::complex<float>> work_;
};

/// Window functions (periodic variants, suitable for overlap-add).
enum class WindowType { kRect, kHann, kHamming, kBlackman };

/// Fill `out` with the chosen window.
void make_window(WindowType type, std::span<float> out) noexcept;

/// FFT-domain brickwall filter with overlap-add reconstruction — a
/// representative "expensive spectral effect" for the deck FX chains.
class SpectralFilter {
 public:
  /// `fft_size` power of two; hop = fft_size/2 (50% overlap, Hann).
  explicit SpectralFilter(std::size_t fft_size = 256);

  /// Passband in Hz; bins outside [lo, hi] are zeroed.
  void set_band(double lo_hz, double hi_hz, double sample_rate) noexcept;

  void reset() noexcept;

  /// Stream one mono block through the filter (in place). Latency is one
  /// hop. Allocation-free after construction.
  void process(std::span<float> io) noexcept;

 private:
  void process_frame() noexcept;

  RealFft fft_;
  std::size_t hop_;
  std::vector<float> window_;
  std::vector<float> in_fifo_, out_fifo_;
  std::size_t fifo_fill_ = 0;
  std::vector<std::complex<float>> spectrum_;
  std::vector<float> frame_;
  std::size_t lo_bin_ = 0, hi_bin_ = 0;
};

}  // namespace djstar::fft
