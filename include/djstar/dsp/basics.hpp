// djstar/dsp/basics.hpp
// Small building blocks: gain/pan, crossfader law, parameter smoothing,
// envelope follower, level meter, bitcrusher, waveshaper.
#pragma once

#include <atomic>
#include <cstddef>

#include "djstar/audio/buffer.hpp"

namespace djstar::dsp {

/// One-pole parameter smoother to avoid zipper noise when the DJ turns a
/// knob mid-buffer. next() is allocation-free.
class SmoothedValue {
 public:
  explicit SmoothedValue(float initial = 0.0f, float time_ms = 20.0f,
                         double sample_rate = audio::kSampleRate) noexcept;
  void set_target(float v) noexcept { target_ = v; }
  void snap(float v) noexcept { target_ = current_ = v; }
  float next() noexcept {
    current_ += coef_ * (target_ - current_);
    return current_;
  }
  float current() const noexcept { return current_; }
  float target() const noexcept { return target_; }

 private:
  float current_, target_, coef_;
};

/// Stereo gain with smoothing.
class Gain {
 public:
  explicit Gain(float gain = 1.0f) noexcept : g_(gain) {}
  void set_gain(float g) noexcept { g_.set_target(g); }
  void set_gain_db(float db) noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  SmoothedValue g_;
};

/// Equal-power stereo panner. `pan` in [-1, 1].
class Pan {
 public:
  void set_pan(float pan) noexcept { pan_.set_target(pan); }
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  SmoothedValue pan_{0.0f};
};

/// DJ crossfader gain law. `position` in [0,1]: 0 = full A, 1 = full B.
/// Returns the pair of channel gains using a constant-power curve.
struct CrossfadeGains {
  float a, b;
};
CrossfadeGains crossfader_law(float position) noexcept;

/// Peak + RMS follower for metering; also used as a graph utility node.
class LevelMeter {
 public:
  void process(const audio::AudioBuffer& buf) noexcept;
  void reset() noexcept { peak_ = rms_ = 0.0f; }
  float peak() const noexcept { return peak_; }
  float rms() const noexcept { return rms_; }

 private:
  float peak_ = 0.0f, rms_ = 0.0f;
};

/// Attack/release envelope follower producing one value per buffer.
class EnvelopeFollower {
 public:
  void set(float attack_ms, float release_ms,
           double sample_rate = audio::kSampleRate) noexcept;
  /// Consume a buffer; returns the post-buffer envelope value.
  float process(const audio::AudioBuffer& buf) noexcept;
  float value() const noexcept { return env_; }
  void reset() noexcept { env_ = 0.0f; }

 private:
  float attack_coef_ = 0.99f, release_coef_ = 0.999f;
  float env_ = 0.0f;
};

/// Sample-rate / bit-depth reducer (lo-fi effect).
class Bitcrusher {
 public:
  /// `bits` in [1, 16]; `downsample` >= 1 holds each output value that
  /// many input samples.
  void set(int bits, int downsample) noexcept;
  void reset() noexcept {
    held_[0] = held_[1] = 0.0f;
    count_ = 0;
  }
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  float step_ = 1.0f / 4096.0f;
  int downsample_ = 1;
  int count_ = 0;
  float held_[2] = {};
};

/// Polynomial waveshaper: x -> a1*x + a2*x^2 + a3*x^3 with dry/wet mix.
class Waveshaper {
 public:
  void set(float a1, float a2, float a3, float mix) noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  float a1_ = 1.0f, a2_ = 0.0f, a3_ = 0.0f, mix_ = 1.0f;
};

}  // namespace djstar::dsp
