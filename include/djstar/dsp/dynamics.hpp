// djstar/dsp/dynamics.hpp
// Dynamics processors: compressor, limiter, gate, clippers. The master
// section of the DJ Star graph runs "Limiter, Clip" on the record buffer
// and audio output (paper Fig. 3).
//
// These are the intentionally *data-dependent* processors: their gain
// computers only do real work when the signal crosses the threshold,
// which is one source of the two-peak runtime distributions in Fig. 9.
#pragma once

#include <cstddef>

#include "djstar/audio/buffer.hpp"

namespace djstar::dsp {

/// Feed-forward RMS compressor with program-dependent attack/release.
class Compressor {
 public:
  /// `threshold_db` <= 0, `ratio` >= 1, times in ms.
  void set(float threshold_db, float ratio, float attack_ms, float release_ms,
           float makeup_db = 0.0f,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept { env_ = 0.0f; gain_ = 1.0f; }
  void process(audio::AudioBuffer& buf) noexcept;

  /// Gain currently applied (for metering / tests).
  float current_gain() const noexcept { return gain_; }

 private:
  float threshold_ = 0.5f;  // linear
  float ratio_inv_ = 0.25f;
  float attack_coef_ = 0.99f, release_coef_ = 0.999f;
  float makeup_ = 1.0f;
  float env_ = 0.0f;
  float gain_ = 1.0f;
};

/// Lookahead-free hard-knee peak limiter. Guarantees |out| <= ceiling
/// by combining envelope-driven gain reduction with a final hard clamp.
class Limiter {
 public:
  void set(float ceiling_db, float release_ms,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept { gain_ = 1.0f; }
  void process(audio::AudioBuffer& buf) noexcept;

  float ceiling() const noexcept { return ceiling_; }

 private:
  float ceiling_ = 1.0f;
  float release_coef_ = 0.9995f;
  float gain_ = 1.0f;
};

/// Noise gate with hysteresis (open/close thresholds) and hold time.
class Gate {
 public:
  void set(float open_db, float close_db, float hold_ms, float release_ms,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

  bool is_open() const noexcept { return open_; }

 private:
  float open_thresh_ = 0.05f, close_thresh_ = 0.02f;
  std::size_t hold_samples_ = 4410;
  float release_coef_ = 0.999f;
  bool open_ = false;
  std::size_t hold_count_ = 0;
  float gain_ = 0.0f;
  float env_ = 0.0f;
};

/// Hard clipper at +/- ceiling.
class HardClip {
 public:
  explicit HardClip(float ceiling = 1.0f) noexcept : ceiling_(ceiling) {}
  void set_ceiling(float c) noexcept { ceiling_ = c; }
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  float ceiling_;
};

/// Smooth tanh-style soft clipper with input drive.
class SoftClip {
 public:
  void set(float drive_db) noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  float drive_ = 1.0f;
};

}  // namespace djstar::dsp
