// djstar/dsp/osc.hpp
// Band-limited oscillators (polyBLEP) and noise sources. Used by the
// synthetic track generator, the timecode carrier, and the test suite.
#pragma once

#include <cstdint>

#include "djstar/audio/buffer.hpp"
#include "djstar/support/rng.hpp"

namespace djstar::dsp {

enum class OscShape { kSine, kSaw, kSquare, kTriangle };

/// PolyBLEP oscillator — saw/square edges are smoothed by a two-sample
/// polynomial band-limited step to suppress aliasing.
class Oscillator {
 public:
  void set(OscShape shape, double freq_hz,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset(double phase = 0.0) noexcept {
    phase_ = phase;
    // Start the triangle integrator at its value for phase 0 (-1) so the
    // leaky integration carries no start-up DC offset.
    tri_state_ = -1.0;
  }

  float next() noexcept;
  /// Render `n` samples into `out` (added? no: overwritten).
  void render(std::span<float> out) noexcept {
    for (auto& s : out) s = next();
  }

  double phase() const noexcept { return phase_; }

 private:
  float poly_blep(double t) const noexcept;
  OscShape shape_ = OscShape::kSine;
  double phase_ = 0.0;
  double inc_ = 440.0 / audio::kSampleRate;
  double tri_state_ = -1.0;
};

/// White noise source (deterministic, seeded).
class Noise {
 public:
  explicit Noise(std::uint64_t seed = 7) noexcept : rng_(seed) {}
  float next() noexcept { return rng_.bipolar(); }
  void render(std::span<float> out) noexcept {
    for (auto& s : out) s = next();
  }

 private:
  support::Xoshiro256 rng_;
};

/// Pink-ish noise via the Voss-McCartney inspired 3-pole filter of white.
class PinkNoise {
 public:
  explicit PinkNoise(std::uint64_t seed = 11) noexcept : white_(seed) {}
  float next() noexcept;

 private:
  Noise white_;
  float b0_ = 0, b1_ = 0, b2_ = 0;
};

}  // namespace djstar::dsp
