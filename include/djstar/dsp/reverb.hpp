// djstar/dsp/reverb.hpp
// Schroeder/Freeverb-style reverberator: parallel comb bank into a serial
// allpass chain per channel.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "djstar/audio/buffer.hpp"

namespace djstar::dsp {

/// Stereo Schroeder reverb. Allocation happens in the constructor only.
class Reverb {
 public:
  Reverb();

  /// `room` in [0,1] scales comb feedback; `damp` in [0,1] darkens tails;
  /// `mix` dry/wet in [0,1].
  void set(float room, float damp, float mix) noexcept;
  void reset() noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  struct Comb {
    std::vector<float> buf;
    std::size_t pos = 0;
    float filter_state = 0.0f;
    float process(float x, float feedback, float damp) noexcept;
  };
  struct Allpass {
    std::vector<float> buf;
    std::size_t pos = 0;
    float process(float x) noexcept;
  };
  static constexpr std::size_t kCombs = 8;
  static constexpr std::size_t kAllpasses = 4;

  std::array<std::array<Comb, kCombs>, 2> combs_;
  std::array<std::array<Allpass, kAllpasses>, 2> allpasses_;
  float room_ = 0.5f, damp_ = 0.5f, mix_ = 0.3f;
};

}  // namespace djstar::dsp
