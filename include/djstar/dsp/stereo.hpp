// djstar/dsp/stereo.hpp
// Stereo-field tools and input-conditioning utilities: mid/side widener,
// DC blocker, and a transient shaper — the remaining utility processors
// of a production channel strip.
#pragma once

#include "djstar/audio/buffer.hpp"
#include "djstar/dsp/basics.hpp"

namespace djstar::dsp {

/// Mid/side stereo widener. `width` 0 = mono, 1 = unchanged, up to 2 =
/// exaggerated sides. Mono content (the bass) is preserved exactly.
class StereoWidener {
 public:
  void set_width(float width) noexcept;
  void process(audio::AudioBuffer& buf) noexcept;
  float width() const noexcept { return width_; }

 private:
  float width_ = 1.0f;
};

/// One-pole DC blocker (highpass at a few Hz). Removes the offsets that
/// asymmetric waveshapers introduce before they eat limiter headroom.
class DcBlocker {
 public:
  explicit DcBlocker(double cutoff_hz = 5.0,
                     double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  float coef_ = 0.999f;
  float x1_[2] = {0, 0};
  float y1_[2] = {0, 0};
};

/// Transient shaper: separates attack from sustain with a two-speed
/// envelope pair and scales them independently. attack/sustain in
/// [-1, 1]: positive = boost, negative = soften.
class TransientShaper {
 public:
  void set(float attack, float sustain,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  float attack_gain_ = 0.0f, sustain_gain_ = 0.0f;
  float fast_coef_ = 0.99f, slow_coef_ = 0.999f;
  float fast_env_ = 0.0f, slow_env_ = 0.0f;
};

}  // namespace djstar::dsp
