// djstar/dsp/delay.hpp
// Delay-line based effects: echo, flanger, chorus, phaser — the bread and
// butter of the deck effect units ("FX1..FX4" in paper Fig. 3).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "djstar/audio/buffer.hpp"

namespace djstar::dsp {

/// Fractional-read circular delay line (one channel). Allocates only in
/// the constructor / set_max_delay.
class DelayLine {
 public:
  DelayLine() = default;
  explicit DelayLine(std::size_t max_delay_samples) { set_max_delay(max_delay_samples); }

  void set_max_delay(std::size_t samples);
  std::size_t max_delay() const noexcept { return buf_.empty() ? 0 : buf_.size() - 1; }

  void reset() noexcept;

  /// Write one input sample.
  void push(float x) noexcept {
    buf_[w_] = x;
    w_ = (w_ + 1) % buf_.size();
  }

  /// Read `delay` samples back (integer). delay <= max_delay().
  float read(std::size_t delay) const noexcept {
    const std::size_t idx = (w_ + buf_.size() - 1 - delay) % buf_.size();
    return buf_[idx];
  }

  /// Linear-interpolated fractional read. 0 <= delay <= max_delay()-1.
  float read_frac(double delay) const noexcept;

 private:
  std::vector<float> buf_;
  std::size_t w_ = 0;
};

/// Tempo-synced stereo echo with feedback and damping.
class Echo {
 public:
  Echo();

  /// `delay_seconds` up to 2 s; `feedback` in [0, 0.95]; `mix` in [0, 1].
  void set(double delay_seconds, float feedback, float mix,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  std::array<DelayLine, 2> lines_;
  std::array<float, 2> damp_state_{};
  std::size_t delay_samples_ = 4410;
  float feedback_ = 0.4f, mix_ = 0.3f;
};

/// Classic flanger: short modulated delay mixed with the dry signal.
class Flanger {
 public:
  Flanger();

  /// `rate_hz` LFO speed; `depth` in [0,1]; `feedback` in [-0.9, 0.9].
  void set(double rate_hz, float depth, float feedback, float mix,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  std::array<DelayLine, 2> lines_;
  double phase_ = 0.0, phase_inc_ = 0.0;
  float depth_ = 0.7f, feedback_ = 0.3f, mix_ = 0.5f;
  std::array<float, 2> fb_state_{};
  double sr_ = audio::kSampleRate;
};

/// Chorus: three modulated delay taps per channel, no feedback.
class Chorus {
 public:
  Chorus();
  void set(double rate_hz, float depth, float mix,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  std::array<DelayLine, 2> lines_;
  std::array<double, 3> phases_{0.0, 0.33, 0.67};
  double phase_inc_ = 0.0;
  float depth_ = 0.5f, mix_ = 0.5f;
  double sr_ = audio::kSampleRate;
};

/// Phaser: cascade of modulated first-order allpass sections.
class Phaser {
 public:
  static constexpr std::size_t kStages = 6;

  void set(double rate_hz, float depth, float feedback, float mix,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  struct ChannelState {
    std::array<float, kStages> z{};
    float fb = 0.0f;
  };
  std::array<ChannelState, 2> ch_{};
  double phase_ = 0.0, phase_inc_ = 0.0;
  float depth_ = 0.8f, feedback_ = 0.5f, mix_ = 0.5f;
  double sr_ = audio::kSampleRate;
};

}  // namespace djstar::dsp
