// djstar/dsp/filters.hpp
// IIR filters: RBJ biquads, a state-variable filter, and the 3-band
// channel EQ used by DJ Star's channel strips ("ChannelX: Filter, EQ").
//
// All process() methods are allocation-free and operate in place.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "djstar/audio/buffer.hpp"

namespace djstar::dsp {

/// Biquad filter response types (Robert Bristow-Johnson's cookbook).
enum class BiquadType {
  kLowpass,
  kHighpass,
  kBandpass,
  kNotch,
  kPeak,
  kLowShelf,
  kHighShelf,
  kAllpass,
};

/// Transposed direct-form-II biquad. One instance filters one channel;
/// use BiquadStereo for linked stereo operation.
class Biquad {
 public:
  /// Configure coefficients. `freq` in Hz, `q` > 0, `gain_db` used by
  /// peak/shelf types. Stable for freq in (0, sr/2).
  void set(BiquadType type, double freq, double q, double gain_db,
           double sample_rate = audio::kSampleRate) noexcept;

  /// Set raw coefficients (b normalized by a0 already divided out).
  void set_coefficients(double b0, double b1, double b2, double a1,
                        double a2) noexcept;

  void reset() noexcept { z1_ = z2_ = 0.0; }

  float process_sample(float x) noexcept {
    const double y = b0_ * x + z1_;
    z1_ = b1_ * x - a1_ * y + z2_;
    z2_ = b2_ * x - a2_ * y;
    return static_cast<float>(y);
  }

  void process(std::span<float> io) noexcept {
    for (auto& s : io) s = process_sample(s);
  }

  /// Magnitude response at `freq` Hz (analysis helper; used by tests).
  double magnitude_at(double freq,
                      double sample_rate = audio::kSampleRate) const noexcept;

  double b0() const noexcept { return b0_; }
  double b1() const noexcept { return b1_; }
  double b2() const noexcept { return b2_; }
  double a1() const noexcept { return a1_; }
  double a2() const noexcept { return a2_; }

 private:
  double b0_ = 1, b1_ = 0, b2_ = 0, a1_ = 0, a2_ = 0;
  double z1_ = 0, z2_ = 0;
};

/// Two independent biquads sharing one coefficient set — a stereo filter.
class BiquadStereo {
 public:
  void set(BiquadType type, double freq, double q, double gain_db,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept;
  /// Filter both channels of a stereo buffer in place.
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  Biquad l_, r_;
};

/// Topology-preserving-transform state-variable filter (Simper/Zavalishin
/// formulation): simultaneously produces low/band/high outputs and is
/// unconditionally stable for any cutoff below Nyquist — important for
/// the DJ filter, whose knob sweeps the cutoff across the whole band.
class StateVariableFilter {
 public:
  void set(double freq, double q,
           double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept { ic1_ = ic2_ = 0.0; }

  struct Outputs {
    float low, band, high;
  };
  Outputs process_sample(float x) noexcept;

  /// Morphing filter: `morph` in [-1, 1]; -1 = lowpass fully closed,
  /// 0 = bypass-ish (unfiltered), +1 = highpass fully open. This is the
  /// ubiquitous one-knob DJ filter.
  float process_morph(float x, float morph) noexcept;

 private:
  double k_ = 1.0;                    // damping = 1/Q
  double a1_ = 0.5, a2_ = 0.25, a3_ = 0.1;
  double ic1_ = 0.0, ic2_ = 0.0;      // integrator states
};

/// DJ-style one-knob filter on a stereo buffer.
class DjFilter {
 public:
  /// `morph` in [-1, 1] (see StateVariableFilter::process_morph);
  /// internally slews to avoid zipper noise.
  void set_morph(float morph) noexcept { target_morph_ = morph; }
  void set_resonance(double q) noexcept { q_ = q; }
  void reset() noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  StateVariableFilter l_, r_;
  float morph_ = 0.0f, target_morph_ = 0.0f;
  double q_ = 0.8;
};

/// Classic 3-band DJ mixer EQ with full-kill lows/mids/highs.
///
/// The band split uses 4th-order Linkwitz-Riley crossovers (two cascaded
/// Butterworth biquads per branch): LR4 low + LR4 high sum to an allpass
/// (flat magnitude) and each branch rolls off at 24 dB/oct, so a killed
/// band is actually gone — the defining feature of a DJ kill EQ.
class ThreeBandEq {
 public:
  ThreeBandEq() noexcept;

  /// Band gains in dB; -inf (use <= -60) kills the band.
  void set_gains(float low_db, float mid_db, float high_db) noexcept;
  void set_crossovers(double low_hz, double high_hz,
                      double sample_rate = audio::kSampleRate) noexcept;
  void reset() noexcept;
  void process(audio::AudioBuffer& buf) noexcept;

 private:
  void update() noexcept;
  // Per channel: LR4 = 2x Butterworth biquads per branch, two crossovers.
  struct ChannelState {
    Biquad lo_lp1, lo_lp2;  // low branch of the low crossover
    Biquad lo_hp1, lo_hp2;  // high branch of the low crossover
    Biquad hi_lp1, hi_lp2;  // low branch of the high crossover (mid)
    Biquad hi_hp1, hi_hp2;  // high branch of the high crossover (high)
  };
  std::array<ChannelState, 2> ch_{};
  double low_hz_ = 250.0, high_hz_ = 2500.0, sr_ = audio::kSampleRate;
  float g_low_ = 1.0f, g_mid_ = 1.0f, g_high_ = 1.0f;
};

}  // namespace djstar::dsp
