// djstar/net/frame.hpp
// The djstar wire protocol: length-prefixed binary frames (DESIGN.md
// §13).
//
// Frame layout (all integers little-endian):
//
//   offset 0   u8   protocol version (kProtocolVersion)
//   offset 1   u8   frame type (FrameType)
//   offset 2   u16  reserved, must be zero
//   offset 4   u32  payload length  (<= kMaxPayload)
//   offset 8   ...  payload
//
// Five frame types carry the whole protocol; payloads are fixed-layout
// structs with explicit little-endian encoding, so the bytes are stable
// across compilers and host endianness:
//
//   OPEN_SESSION   c->s: OpenSessionRequest (a SyntheticSpec on the
//                        wire — the serializable session description)
//                  s->c: OpenSessionReply (id + admission verdict),
//                        sent once the verdict lands at a tick boundary
//   CLOSE_SESSION  c->s: CloseSessionMsg; s->c echoes it as the ack
//   STATS          c->s: empty payload; s->c: WireStats
//   CYCLE_AUDIO    s->c only: CycleAudioHeader + f32 samples, one frame
//                  per session cycle, fanned out to subscribers
//   ERROR          either direction: WireError (code + text). From the
//                  server it precedes a deliberate disconnect.
//
// Every decode helper bounds-checks and returns nullopt on malformed
// input — the codec layer turns that into a protocol error, never a
// crash or an over-read.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace djstar::net {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 8;
/// Hard cap on a frame payload; anything larger is a malformed or
/// hostile stream and kills the connection.
inline constexpr std::size_t kMaxPayload = 1u << 20;
/// Cap on the session-name field of OPEN_SESSION.
inline constexpr std::size_t kMaxNameLen = 256;
/// Caps on the audio payload shape (2ch * 8192 frames is far above the
/// engine's fixed 128-frame blocks; the cap only bounds hostile input).
inline constexpr std::uint32_t kMaxAudioChannels = 8;
inline constexpr std::uint32_t kMaxAudioFrames = 8192;

enum class FrameType : std::uint8_t {
  kOpenSession = 1,
  kCloseSession = 2,
  kStats = 3,
  kCycleAudio = 4,
  kError = 5,
};

bool valid_frame_type(std::uint8_t t) noexcept;
const char* to_string(FrameType t) noexcept;

/// One decoded frame: type + raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// Protocol error codes carried by ERROR frames.
enum class ErrorCode : std::uint16_t {
  kBadVersion = 1,   ///< version byte mismatch
  kBadFrame = 2,     ///< malformed header or payload
  kUnknownSession = 3,
  kBackpressure = 4,  ///< realtime subscriber could not keep up
  kRejected = 5,      ///< open refused (validation or admission)
  kServerFull = 6,    ///< connection limit reached
};

// ---- payloads --------------------------------------------------------------

/// OPEN_SESSION request: a serve::SyntheticSpec plus serve-level fields,
/// flattened for the wire. `subscribe` asks the server to fan this
/// session's cycle audio back over this connection.
struct OpenSessionRequest {
  std::uint8_t qos = 1;        ///< serve::rank(QoS)
  bool subscribe = true;
  bool deterministic = false;  ///< fixed-iteration node work (replayable audio)
  double deadline_us = 0;      ///< 0 = server default
  std::uint32_t width = 4;
  std::uint32_t depth = 3;
  double node_cost_us = 15.0;
  double jitter = 0.25;
  double sheddable_fraction = 0.4;
  double cost_estimate_us = 0;  ///< 0 = derive from node costs
  std::uint64_t seed = 1;
  std::string name = "wire";
};

/// OPEN_SESSION reply. `state` is the serve::SessionState after the
/// admission verdict (kActive / kQueued / kRejected as a u8).
struct OpenSessionReply {
  std::uint64_t id = 0;
  std::uint8_t state = 0;
};

struct CloseSessionMsg {
  std::uint64_t id = 0;
};

/// STATS reply: the fleet counters a remote dashboard needs, frozen by
/// the engine thread every few ticks (serve::FleetStats stays a
/// data-plane-only structure).
struct WireStats {
  std::uint64_t ticks = 0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t closed = 0;
  std::uint64_t cycles = 0;
  std::uint64_t misses = 0;
  std::uint64_t active = 0;
  std::uint64_t queued = 0;
};

/// CYCLE_AUDIO header; `channels * frames` f32 samples follow,
/// channel-major (the AudioBuffer layout).
struct CycleAudioHeader {
  std::uint64_t session = 0;
  std::uint64_t tick = 0;  ///< fleet tick the cycle completed on
  std::uint32_t channels = 0;
  std::uint32_t frames = 0;
};

struct WireError {
  std::uint16_t code = 0;
  std::string message;
};

// ---- encode / decode -------------------------------------------------------
// Encoders append payload bytes; decoders bounds-check a payload span
// and return nullopt on any structural problem (short, oversized,
// out-of-cap fields). Exact-length matches are required — trailing
// bytes are an error, not slack.

void encode(const OpenSessionRequest& v, std::vector<std::uint8_t>& out);
void encode(const OpenSessionReply& v, std::vector<std::uint8_t>& out);
void encode(const CloseSessionMsg& v, std::vector<std::uint8_t>& out);
void encode(const WireStats& v, std::vector<std::uint8_t>& out);
void encode(const WireError& v, std::vector<std::uint8_t>& out);
/// Audio: header + `samples` (size must equal channels * frames).
void encode(const CycleAudioHeader& h, std::span<const float> samples,
            std::vector<std::uint8_t>& out);

std::optional<OpenSessionRequest> decode_open_request(
    std::span<const std::uint8_t> p);
std::optional<OpenSessionReply> decode_open_reply(
    std::span<const std::uint8_t> p);
std::optional<CloseSessionMsg> decode_close(std::span<const std::uint8_t> p);
std::optional<WireStats> decode_stats(std::span<const std::uint8_t> p);
std::optional<WireError> decode_error(std::span<const std::uint8_t> p);
/// Decodes the header and fills `samples` with the payload's f32 data.
std::optional<CycleAudioHeader> decode_audio(std::span<const std::uint8_t> p,
                                             std::vector<float>& samples);

/// Convenience: build a whole Frame for a payload struct.
Frame make_frame(const OpenSessionRequest& v);
Frame make_frame(const OpenSessionReply& v);
Frame make_frame(FrameType type, const CloseSessionMsg& v);
Frame make_frame(const WireStats& v);
Frame make_frame(const WireError& v);
Frame make_stats_request();

}  // namespace djstar::net
