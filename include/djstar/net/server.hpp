// djstar/net/server.hpp
// The network front-end: bridges TCP connections to serve::EngineHost
// (DESIGN.md §13).
//
// Two threads, one rule:
//
//   reactor thread   accept/read/write sockets, decode frames, handle
//                    control ops (OPEN_SESSION / CLOSE_SESSION / STATS
//                    map onto the host's thread-safe control plane),
//                    serve GET /metrics (minimal HTTP/1.0) from the
//                    host's metrics registry.
//   engine thread    the host's data plane: run_fleet_cycle() in a
//                    loop. After each tick it publishes admission
//                    verdicts (OPEN_SESSION replies), fans each
//                    session's cycle audio out to subscribers through
//                    per-connection bounded send rings, and refreshes
//                    the WireStats cache.
//
// The rule: the engine thread NEVER touches a socket. It pushes encoded
// frames into a connection's bounded ring (mutex-guarded, O(1), no
// syscalls beyond an eventfd kick) and the reactor drains rings to the
// sockets. A slow consumer therefore costs the engine nothing:
//
//   - besteffort/standard audio overflowing the ring is shed
//     drop-oldest (the subscriber loses stale packets, the stream
//     stays live);
//   - a realtime subscriber whose ring overflows is beyond salvage —
//     stale realtime audio is worthless — so the connection is doomed:
//     pending audio is cleared, ERROR(kBackpressure) is queued, and
//     the reactor disconnects it after the flush. Co-hosted realtime
//     sessions never notice (PR 3's shed-don't-block doctrine).
//
// Telemetry: djstar_net_* counters/gauges land in the host's registry
// (so one /metrics scrape covers fleet + edge), and connection
// lifecycle / shedding decisions go to the host's journal.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "djstar/net/codec.hpp"
#include "djstar/net/config.hpp"
#include "djstar/net/frame.hpp"
#include "djstar/net/reactor.hpp"
#include "djstar/serve/host.hpp"
#include "djstar/serve/synthetic.hpp"

namespace djstar::net {

struct ServerConfig {
  /// Wire knobs; DJSTAR_NET=<port>[,max_conns[,send_ring_kb]]
  /// overrides this when set (applied in the constructor).
  NetConfig net{};
  serve::HostConfig host{};
  /// Refresh the cached WireStats every this many ticks.
  unsigned stats_refresh_ticks = 16;
  /// Stop the engine thread after this many *served* ticks (ticks with
  /// at least one active session; idle ticks before the first client
  /// arrives don't count). 0 = run until stop(). Benches and the
  /// loopback tests use this for a bounded, comparable run.
  std::uint64_t max_ticks = 0;
};

class Server {
 public:
  /// Binds and listens (throws std::runtime_error on socket failure,
  /// std::invalid_argument on a malformed DJSTAR_NET). No threads run
  /// until start().
  explicit Server(ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start the reactor and engine threads. Idempotent.
  void start();
  /// Disconnect everything and join both threads. Idempotent.
  void stop();

  /// The actual bound port (differs from cfg.net.port when that was 0).
  std::uint16_t port() const noexcept { return port_; }

  /// The hosted engine. Control-plane calls are safe while running;
  /// data-plane introspection only after stop().
  serve::EngineHost& host() noexcept { return host_; }

  /// Thread-safe snapshot of the cached fleet counters (refreshed by
  /// the engine thread every stats_refresh_ticks).
  WireStats wire_stats() const;

  /// Served ticks so far (see ServerConfig::max_ticks).
  std::uint64_t served_ticks() const noexcept {
    return served_ticks_.load(std::memory_order_relaxed);
  }
  /// Block until the engine thread finished its max_ticks budget (or
  /// was stopped). Returns the wall time the served ticks took, in us.
  double wait_engine_done();

 private:
  struct SendItem {
    std::vector<std::uint8_t> bytes;
    bool droppable = false;  ///< audio frames may be shed drop-oldest
    serve::QoS qos = serve::QoS::kBestEffort;
    /// Enqueue time, closing the latency decomposition's last stage
    /// (djstar_stage_net_flush_us_*: ring enqueue to final socket
    /// write). Default (unstamped) items — HTTP responses — are not
    /// recorded; only session traffic has a QoS to attribute to.
    support::Clock::time_point enqueued{};
  };

  /// One client connection. The mutex guards the ring (engine pushes,
  /// reactor pops); everything else is reactor-thread-only.
  struct Connection {
    int fd = -1;
    Decoder decoder;
    serve::QoS max_qos = serve::QoS::kBestEffort;  ///< strictest subscribed
    // Send ring (shared engine/reactor state, under `mutex`).
    std::mutex mutex;
    std::deque<SendItem> ring;
    std::size_t ring_bytes = 0;
    std::size_t front_off = 0;  ///< partial-write offset into ring.front()
    bool doomed = false;        ///< close once the ring drains
    // Reactor-thread-only.
    bool want_write = false;
    bool sniffed = false;
    bool http = false;
    std::vector<std::uint8_t> http_buf;
    std::vector<serve::SessionId> owned;
  };

  /// A session opened over the wire: everything the fan-out needs that
  /// the host doesn't expose across threads.
  struct WireSession {
    serve::SessionId id = serve::kInvalidSession;
    serve::QoS qos = serve::QoS::kStandard;
    bool subscribe = false;
    bool acked = false;
    std::uint64_t cycles_seen = 0;
    std::shared_ptr<void> arena;  ///< keeps `output` alive past close
    const audio::AudioBuffer* output = nullptr;
    std::weak_ptr<Connection> owner;
  };

  // Reactor-thread handlers.
  void on_accept(std::uint32_t events);
  void on_conn_event(const std::shared_ptr<Connection>& c,
                     std::uint32_t events);
  void read_conn(const std::shared_ptr<Connection>& c);
  void handle_frame(const std::shared_ptr<Connection>& c, Frame f);
  void handle_open(const std::shared_ptr<Connection>& c, const Frame& f);
  void handle_http(const std::shared_ptr<Connection>& c);
  void flush_conn(const std::shared_ptr<Connection>& c);
  void flush_pending();
  void close_conn(const std::shared_ptr<Connection>& c, bool server_initiated);

  // Either thread (ring-level; takes c.mutex).
  void push_item(Connection& c, std::vector<std::uint8_t> bytes,
                 bool droppable, serve::QoS qos);
  void doom_locked(Connection& c, ErrorCode code, const char* message);

  // Engine thread.
  void engine_loop();
  void after_tick();
  void publish_admission_verdicts();
  void fan_out_audio();
  void refresh_wire_stats();

  ServerConfig cfg_;
  std::size_t ring_cap_bytes_ = 0;
  serve::EngineHost host_;
  Reactor reactor_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  // Connection table: reactor mutates, engine iterates for fan-out.
  mutable std::mutex conns_mutex_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  // Wire-session table: reactor mutates on open/close, engine reads and
  // updates fan-out bookkeeping.
  mutable std::mutex sessions_mutex_;
  std::vector<WireSession> sessions_;
  std::size_t admission_seen_ = 0;  ///< engine thread only

  std::thread engine_;
  std::atomic<bool> engine_stop_{false};
  std::atomic<std::uint64_t> served_ticks_{0};
  std::atomic<bool> started_{false};
  /// host_.ticks() mirror for journal stamps from the reactor thread
  /// (ticks() itself is data-plane-only).
  std::atomic<std::uint64_t> last_tick_{0};
  /// Coalesces the engine's per-tick flush kicks: set when a kick has
  /// been posted and not yet run, so a fast engine costs the reactor
  /// one wakeup per drain, not one per tick.
  std::atomic<bool> flush_kick_pending_{false};
  std::vector<float> fan_buf_;  ///< engine thread: audio staging

  mutable std::mutex stats_mutex_;
  WireStats wire_stats_{};

  mutable std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool engine_done_ = false;
  double served_elapsed_us_ = 0;  ///< wall time over the served ticks

  // djstar_net_* instrumentation (registered on the host's registry).
  support::Counter m_connections_;
  support::Counter m_disconnects_;
  support::Counter m_frames_rx_;
  support::Counter m_frames_tx_;
  support::Counter m_bytes_rx_;
  support::Counter m_bytes_tx_;
  support::Counter m_audio_frames_;
  support::Counter m_audio_drops_;
  support::Counter m_backpressure_trips_;
  support::Counter m_protocol_errors_;
  support::Counter m_http_requests_;
  support::Counter m_debug_requests_;
  support::Gauge g_connections_;
  /// Net-flush stage of the latency decomposition (DESIGN.md §14), per
  /// QoS class: ring enqueue to the write() completing the frame.
  std::array<support::HistogramMetric, serve::kQoSCount> h_net_flush_;
};

}  // namespace djstar::net
