// djstar/net/reactor.hpp
// A non-blocking epoll reactor on its own thread (DESIGN.md §13).
//
// Level-triggered on purpose: the handlers drain until EAGAIN anyway,
// and level-triggering means a handler that stops early (e.g. the send
// ring emptied mid-write) is simply re-notified — no lost-edge bugs.
// epoll_wait is EINTR-safe, and an eventfd wakes the loop so other
// threads can hand it work:
//
//   - post(fn): run `fn` on the loop thread (the engine thread uses
//     this to kick pending send rings — it NEVER touches a socket
//     itself);
//   - wake(): bare wakeup, e.g. for stop().
//
// Discipline: add()/modify()/remove() are loop-thread-only once the
// reactor is running (call them from inside a handler or a posted fn);
// before start() they may be called from the owning thread. post() and
// wake() are thread-safe. The reactor never closes fds it was handed —
// ownership stays with the registrant.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace djstar::net {

class Reactor {
 public:
  /// Called with the ready epoll event mask (EPOLLIN/EPOLLOUT/...).
  using Callback = std::function<void(std::uint32_t events)>;

  /// Throws std::runtime_error when epoll/eventfd creation fails.
  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawn the loop thread. Idempotent.
  void start();
  /// Signal the loop, join the thread. Idempotent; called by ~Reactor.
  void stop();
  bool running() const noexcept { return running_.load(); }

  /// Register `fd` with an interest mask. Loop-thread-only once
  /// running (or before start()).
  void add(int fd, std::uint32_t events, Callback cb);
  /// Change the interest mask of a registered fd.
  void modify(int fd, std::uint32_t events);
  /// Deregister; pending events for the fd are dropped. Does NOT close.
  void remove(int fd);

  /// Run `fn` on the loop thread as soon as it wakes. Thread-safe.
  void post(std::function<void()> fn);
  /// Bare wakeup. Thread-safe.
  void wake() noexcept;

  bool on_loop_thread() const noexcept {
    return std::this_thread::get_id() ==
           loop_tid_.load(std::memory_order_acquire);
  }

 private:
  void loop();
  void drain_posted();

  int epfd_ = -1;
  int wakefd_ = -1;
  std::unordered_map<int, std::shared_ptr<Callback>> handlers_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::thread::id> loop_tid_{};

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace djstar::net
