// djstar/net/io.hpp
// EINTR-safe POSIX I/O wrappers for the network front-end (DESIGN.md
// §13).
//
// Every socket syscall the reactor issues goes through here, for three
// reasons:
//   - EINTR is retried in exactly one place instead of at every call
//     site (a signal mid-read must never look like a protocol error);
//   - writes use send(MSG_NOSIGNAL) so a peer that hung up produces a
//     clean EPIPE return instead of killing the process with SIGPIPE;
//   - the syscalls are routed through an injectable hook table, so the
//     unit tests can fake an interrupted syscall (EINTR storms, short
//     reads, EPIPE) without any signal gymnastics.
//
// Return convention for the *_some wrappers (non-blocking fds):
//   > 0          bytes transferred
//   0            end of stream (read only)
//   kWouldBlock  EAGAIN/EWOULDBLOCK — retry when the reactor says so
//   kIoError     a real error; errno holds the cause
#pragma once

#include <cstddef>
#include <sys/types.h>

namespace djstar::net {

inline constexpr ssize_t kWouldBlock = -1;
inline constexpr ssize_t kIoError = -2;

/// Syscall hook table. Null entries mean "the real syscall". Tests
/// install fakes to exercise the EINTR-retry and short-transfer paths;
/// production code never touches this.
struct IoHooks {
  ssize_t (*read)(int fd, void* buf, std::size_t n) = nullptr;
  ssize_t (*write)(int fd, const void* buf, std::size_t n) = nullptr;
  int (*accept)(int listen_fd) = nullptr;
};

/// Install a hook table, returning the previous one (restore it in the
/// test's teardown). Not thread-safe — single-threaded test setup only.
IoHooks set_io_hooks(IoHooks hooks) noexcept;

/// Process-wide SIGPIPE ignore (idempotent). The reactor calls this on
/// construction; MSG_NOSIGNAL covers send(), this covers everything
/// else (e.g. writev on a raced-closed fd).
void ignore_sigpipe() noexcept;

/// O_NONBLOCK on. Returns false on fcntl failure.
bool set_nonblocking(int fd) noexcept;

/// TCP_NODELAY on (frames are latency-sensitive and self-contained;
/// Nagle only adds a stall). Returns false on failure — harmless for
/// non-TCP fds, so callers may ignore it.
bool set_nodelay(int fd) noexcept;

/// Read up to `cap` bytes. EINTR retried; see the return convention.
ssize_t read_some(int fd, void* buf, std::size_t cap) noexcept;

/// Write up to `n` bytes via send(MSG_NOSIGNAL) (falling back to
/// write() for non-sockets, e.g. the test pipes). EINTR retried.
ssize_t write_some(int fd, const void* buf, std::size_t n) noexcept;

/// Accept one connection. EINTR and ECONNABORTED retried (an aborted
/// handshake is the peer's problem, not ours). Returns the new fd,
/// kWouldBlock, or kIoError.
int accept_conn(int listen_fd) noexcept;

/// Blocking-fd helpers for clients and tests: loop until all `n` bytes
/// moved (EINTR retried). Return false on EOF or error.
bool read_full(int fd, void* buf, std::size_t n) noexcept;
bool write_full(int fd, const void* buf, std::size_t n) noexcept;

}  // namespace djstar::net
