// djstar/net/client.hpp
// A small blocking client for the djstar wire protocol (DESIGN.md §13).
//
// Deliberately synchronous: tests, benches, and examples talk to a
// net::Server from an ordinary thread, one call at a time. The socket
// carries a receive timeout so a wedged server turns into a clean
// nullopt instead of a hang. CYCLE_AUDIO frames that arrive while a
// control reply is awaited are queued and surfaced later through
// read_audio() — the server interleaves pushed audio with replies on
// one connection, so a client must tolerate either order.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "djstar/net/codec.hpp"
#include "djstar/net/frame.hpp"

namespace djstar::net {

/// One decoded CYCLE_AUDIO frame: shape + channel-major f32 samples.
struct CycleAudio {
  CycleAudioHeader header;
  std::vector<float> samples;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to 127.0.0.1:port (blocking socket, SO_RCVTIMEO =
  /// timeout_ms). Returns false on failure.
  bool connect(std::uint16_t port, int timeout_ms = 5000);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Send OPEN_SESSION and wait for the reply (the verdict lands at the
  /// server's next tick boundary). nullopt on timeout, disconnect, or a
  /// server ERROR (see last_error()).
  std::optional<OpenSessionReply> open_session(const OpenSessionRequest& req);

  /// Send CLOSE_SESSION and wait for the echo ack.
  bool close_session(std::uint64_t id);

  /// Request and await the server's cached fleet counters.
  std::optional<WireStats> stats();

  /// Next frame of any type — queued audio first, then the wire.
  /// nullopt on timeout, EOF, or protocol error.
  std::optional<Frame> read_frame();

  /// Next CYCLE_AUDIO, skipping unrelated frames. An ERROR frame or a
  /// disconnect ends the stream (nullopt; see last_error()).
  std::optional<CycleAudio> read_audio();

  /// The most recent ERROR frame payload, if any.
  const std::optional<WireError>& last_error() const noexcept {
    return last_error_;
  }

 private:
  std::optional<Frame> wait_for(FrameType want);
  std::optional<Frame> read_wire();
  bool send_frame(const Frame& f);

  int fd_ = -1;
  Decoder decoder_;
  std::deque<Frame> pending_;  ///< audio queued while awaiting a reply
  std::optional<WireError> last_error_;
};

/// Minimal HTTP/1.0 GET against 127.0.0.1:port. Returns the raw
/// response (status line + headers + body), or nullopt on failure.
std::optional<std::string> http_get(std::uint16_t port,
                                    const std::string& path,
                                    int timeout_ms = 5000);

}  // namespace djstar::net
