// djstar/net/codec.hpp
// Incremental frame encoder/decoder over a byte stream (DESIGN.md §13).
//
// The decoder is a push parser: feed() whatever the socket produced,
// then pull complete frames with next(). It never over-reads (a frame
// is only surfaced once header + payload are fully buffered), never
// allocates beyond the declared payload length, and latches into a
// failed state on the first structural violation — bad version byte,
// unknown frame type, nonzero reserved bits, or a payload length above
// the cap. A failed decoder stays failed: the only safe response to a
// corrupt framing layer is to drop the connection, since byte
// boundaries can no longer be trusted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "djstar/net/frame.hpp"

namespace djstar::net {

/// Serialize one frame (header + payload) onto `out`.
void encode_frame(const Frame& f, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> encode_frame(const Frame& f);

class Decoder {
 public:
  /// `max_payload` tightens the global kMaxPayload cap (it is clamped
  /// to it); a control-only endpoint can refuse big frames outright.
  explicit Decoder(std::size_t max_payload = kMaxPayload);

  /// Append raw bytes from the wire. No-op once failed.
  void feed(const std::uint8_t* data, std::size_t n);

  /// Extract the next complete frame, or nullopt when more bytes are
  /// needed (or the decoder has failed — check failed()).
  std::optional<Frame> next();

  bool failed() const noexcept { return failed_; }
  const std::string& error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  void fail(const std::string& why);

  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace djstar::net
