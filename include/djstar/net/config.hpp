// djstar/net/config.hpp
// Hardened DJSTAR_NET configuration, in the DJSTAR_THREADS /
// DJSTAR_HEAL / DJSTAR_BREAKER style: an explicitly-set but malformed
// value throws std::invalid_argument naming the offending text — never
// a silent default.
//
//   DJSTAR_NET=<port>[,max_conns[,send_ring_kb]]
//
//   port          0..65535 (0 = bind an ephemeral port)
//   max_conns     1..kMaxConns — concurrent client connections; beyond
//                 the limit new sockets get ERROR(kServerFull) + close
//   send_ring_kb  kMinSendRingKb..kMaxSendRingKb — per-connection send
//                 ring budget; the backpressure watermark (DESIGN.md
//                 §13: drop-oldest for besteffort audio, disconnect for
//                 a stalled realtime subscriber)
//
// Empty values, garbage, negative numbers, trailing text, and
// out-of-range fields all throw.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace djstar::net {

inline constexpr unsigned kMaxConns = 4096;
inline constexpr unsigned kMinSendRingKb = 16;
inline constexpr unsigned kMaxSendRingKb = 1u << 20;  // 1 GiB ring is a bug

struct NetConfig {
  std::uint16_t port = 0;      ///< 0 = ephemeral
  unsigned max_conns = 64;
  unsigned send_ring_kb = 256;

  /// Parse "<port>[,max_conns[,send_ring_kb]]". Throws
  /// std::invalid_argument (message quotes the input) on any malformed
  /// or out-of-range field.
  static NetConfig parse(std::string_view text);

  /// DJSTAR_NET override: unset returns nullopt, set goes through
  /// parse() (so an empty or bad value throws instead of being
  /// ignored).
  static std::optional<NetConfig> from_env(const char* var = "DJSTAR_NET");
};

}  // namespace djstar::net
