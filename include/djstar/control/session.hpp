// djstar/control/session.hpp
// Scene presets and session automation on top of the event middleware.
//
//  * A Preset is a named set of control events — a mixer scene (EQ, fader
//    and FX settings) that can be recalled in one shot and persisted as
//    plain text (controllers call this "scene recall").
//  * A SessionScript is a timeline of events keyed by cycle index — the
//    reproducible "DJ hand" used by examples, tests, and benches.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "djstar/control/event_bus.hpp"
#include "djstar/engine/engine.hpp"
#include "djstar/engine/recorder.hpp"

namespace djstar::control {

/// A named, recallable set of control events.
struct Preset {
  std::string name;
  std::vector<Event> events;

  /// Post every event of the preset to `bus`.
  void apply(EventBus& bus) const {
    for (const Event& e : events) bus.post(e);
  }
};

/// Serialize a preset as line-oriented text:
///   preset <name-with-underscores>
///   event <type> <deck> <index> <value>
std::string to_text(const Preset& preset);

/// Parse the text format. Returns nullopt on malformed input.
std::optional<Preset> preset_from_text(const std::string& text);

/// Save/load helpers. Return false on I/O or parse failure.
bool save_preset(const Preset& preset, const std::string& path);
std::optional<Preset> load_preset(const std::string& path);

/// A cycle-indexed automation timeline.
class SessionScript {
 public:
  /// Schedule an event at an absolute cycle index. Order of insertion is
  /// preserved for events at the same cycle.
  void at(std::size_t cycle, const Event& e);

  /// Schedule a whole preset at a cycle.
  void at(std::size_t cycle, const Preset& preset);

  /// Post every event due at exactly `cycle`. Returns how many fired.
  std::size_t step(std::size_t cycle, EventBus& bus) const;

  /// Last cycle with a scheduled event (0 when empty).
  std::size_t length() const noexcept;

  std::size_t event_count() const noexcept { return steps_.size(); }
  void clear() noexcept { steps_.clear(); }

 private:
  struct Step {
    std::size_t cycle;
    Event event;
  };
  std::vector<Step> steps_;
};

/// Drive a full automated session: for each cycle, fire due script
/// events, drain the bus into the engine (caller must have an
/// EngineBinding subscribed), run one APC, and optionally capture the
/// record bus. Returns the number of script events fired.
std::size_t run_session(engine::AudioEngine& engine, EventBus& bus,
                        const SessionScript& script, std::size_t cycles,
                        engine::Recorder* recorder = nullptr);

}  // namespace djstar::control
