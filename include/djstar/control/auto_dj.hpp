// djstar/control/auto_dj.hpp
// Automatic mixing: pick the next track by tempo/key/loudness
// compatibility (the library analysis put to work) and plan the
// transition as a SessionScript — bass-swap EQ, crossfader sweep,
// incoming-deck pitch match. Everything a "sync + auto-mix" button does.
#pragma once

#include <cstddef>
#include <optional>

#include "djstar/control/session.hpp"
#include "djstar/engine/library.hpp"

namespace djstar::control {

/// Weights of the next-track score (higher score = better candidate).
struct AutoDjConfig {
  double tempo_weight = 1.0;     ///< penalty per % of tempo distance
  double key_bonus = 20.0;       ///< bonus for harmonic compatibility
  double loudness_weight = 0.5;  ///< penalty per dB of loudness mismatch
  double max_tempo_stretch = 0.08;  ///< hard limit: +/-8% pitch fader
};

/// One planned transition.
struct TransitionPlan {
  std::uint32_t from_id = 0;
  std::uint32_t to_id = 0;
  double pitch_ratio = 1.0;  ///< applied to the incoming deck
  SessionScript script;
  std::size_t start_cycle = 0;
  std::size_t duration_cycles = 0;
};

/// Auto-mix planner over a Library.
class AutoDj {
 public:
  explicit AutoDj(const engine::Library& library, AutoDjConfig cfg = {})
      : library_(library), cfg_(cfg) {}

  /// Score a candidate as the follow-up to `current`. Higher is better;
  /// -infinity (large negative) when the tempo gap exceeds the pitch
  /// fader range.
  double score(const engine::LibraryEntry& current,
               const engine::LibraryEntry& candidate) const;

  /// Best next track (excluding `current_id`). nullptr when the library
  /// has no other playable entry.
  const engine::LibraryEntry* pick_next(std::uint32_t current_id) const;

  /// Plan a transition: outgoing deck `from_deck` into `to_deck`,
  /// starting at `start_cycle`, crossfading over `duration_cycles`.
  /// The script assumes the incoming track is already loaded on
  /// `to_deck`.
  std::optional<TransitionPlan> plan_transition(
      std::uint32_t current_id, unsigned from_deck, unsigned to_deck,
      std::size_t start_cycle, std::size_t duration_cycles) const;

 private:
  const engine::Library& library_;
  AutoDjConfig cfg_;
};

}  // namespace djstar::control
