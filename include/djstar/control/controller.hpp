// djstar/control/controller.hpp
// Hardware-access substitutes (paper Fig. 2, "Devices" / "Hardware
// Access"): a MIDI-style control-surface message format, a mapping layer
// from surface controls to engine events, and the bridge that applies
// queued events to a live AudioEngine between cycles.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "djstar/control/event_bus.hpp"
#include "djstar/engine/engine.hpp"

namespace djstar::control {

/// A raw control-surface message (MIDI CC-shaped: 7-bit value).
struct ControlMessage {
  std::uint8_t channel = 0;  ///< surface channel (deck strip)
  std::uint8_t control = 0;  ///< knob/fader/button id
  std::uint8_t value = 0;    ///< 0..127
};

/// Standard control ids of the reference surface layout (one strip per
/// deck plus a master strip, like the mixer in paper Fig. 1).
namespace cc {
inline constexpr std::uint8_t kFader = 7;
inline constexpr std::uint8_t kFilter = 74;
inline constexpr std::uint8_t kEqLow = 16;
inline constexpr std::uint8_t kEqMid = 17;
inline constexpr std::uint8_t kEqHigh = 18;
inline constexpr std::uint8_t kPitch = 20;
inline constexpr std::uint8_t kCrossfader = 8;   // master strip only
inline constexpr std::uint8_t kCue = 30;
inline constexpr std::uint8_t kFxBase = 40;      // kFxBase + slot = toggle
inline constexpr std::uint8_t kFxAmountBase = 50;
inline constexpr std::uint8_t kSampler = 60;
}  // namespace cc

/// Translates raw surface messages into engine events on a bus.
/// (In DJ Star this is the USB-device handler in the Hardware Access
/// layer; here devices are emulated by tests and examples.)
class SurfaceMapper {
 public:
  explicit SurfaceMapper(EventBus& bus) : bus_(bus) {}

  /// Translate and post one message. Unknown controls are ignored and
  /// counted (real surfaces send plenty of unmapped traffic).
  void handle(const ControlMessage& msg);

  std::size_t unmapped_count() const noexcept { return unmapped_; }

 private:
  EventBus& bus_;
  std::size_t unmapped_ = 0;
};

/// Applies engine-bound events to a live AudioEngine. Subscribe once,
/// then pump bus.dispatch() between audio cycles.
class EngineBinding {
 public:
  EngineBinding(EventBus& bus, engine::AudioEngine& engine);
  ~EngineBinding();

  EngineBinding(const EngineBinding&) = delete;
  EngineBinding& operator=(const EngineBinding&) = delete;

  /// Number of events this binding has applied.
  std::size_t applied() const noexcept { return applied_; }

 private:
  void apply(const Event& e);

  EventBus& bus_;
  engine::AudioEngine& engine_;
  std::vector<std::size_t> subscriptions_;
  std::size_t applied_ = 0;
  /// Last-known EQ bands per deck (the node setter takes all three).
  std::array<std::array<float, 3>, 4> eq_cache_{};
};

/// Publishes engine status (meters, tempo, deadline misses) back to the
/// bus — what the GUI layer would render. Call publish() once per cycle
/// or at UI rate.
class StatusPublisher {
 public:
  StatusPublisher(EventBus& bus, engine::AudioEngine& engine)
      : bus_(bus), engine_(engine) {}

  void publish();

 private:
  EventBus& bus_;
  engine::AudioEngine& engine_;
  std::size_t last_misses_ = 0;
};

}  // namespace djstar::control
