// djstar/control/event_bus.hpp
// The Event Middleware layer of DJ Star's 4-layer architecture (paper
// Fig. 2): the GUI and device handlers never call into the Core
// directly — they post events; the Core drains them at a safe point
// (between audio cycles), and posts status events back.
//
// Design: a mutex-protected queue is fine here because events flow at
// control rate (knob turns, button presses), never on the audio path.
// dispatch() runs on the owning thread only; post() is safe from any
// thread (CP.22: subscriber callbacks run WITHOUT the queue lock held).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace djstar::control {

/// What happened. Kept closed + flat (no heap payloads) so events are
/// cheap to copy and queue.
enum class EventType : std::uint8_t {
  // UI / device -> core
  kCrossfader,     ///< value = position 0..1
  kChannelFader,   ///< deck, value = level 0..1
  kFilterMorph,    ///< deck, value = morph -1..1
  kEqLow,          ///< deck, value = dB
  kEqMid,
  kEqHigh,
  kFxEnable,       ///< deck, index = fx slot, value != 0 -> on
  kFxAmount,       ///< deck, index = fx slot, value = amount 0..1
  kDeckPitch,      ///< deck, value = pitch ratio
  kCueToggle,      ///< deck, value != 0 -> cue on
  kSamplerTrigger,
  // core -> UI
  kMeterUpdate,    ///< deck (4 = master), value = peak
  kTempoUpdate,    ///< value = master BPM
  kDeadlineMiss,   ///< value = APC time in us
};

/// One control event.
struct Event {
  EventType type{};
  std::uint8_t deck = 0;   ///< 0..3, or 4 for master where applicable
  std::uint8_t index = 0;  ///< fx slot etc.
  float value = 0.0f;
};

/// Thread-safe post / single-threaded dispatch event queue with typed
/// subscriptions.
class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;

  /// Register a handler for one event type. Returns a subscription id.
  /// Not thread-safe against dispatch(); subscribe during setup.
  std::size_t subscribe(EventType type, Handler handler);

  /// Remove a subscription by id. No-op for unknown ids.
  void unsubscribe(std::size_t id);

  /// Queue an event. Safe from any thread. Never blocks for long (the
  /// lock only guards a deque push).
  void post(const Event& e);

  /// Deliver all queued events to their subscribers, in post order, on
  /// the calling thread. Returns the number of events delivered.
  /// Handlers may post() new events; those are delivered on the *next*
  /// dispatch (no re-entrancy surprises).
  std::size_t dispatch();

  /// Events currently queued (approximate if producers are active).
  std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::deque<Event> queue_;

  struct Subscription {
    std::size_t id;
    EventType type;
    Handler handler;
  };
  std::vector<Subscription> subs_;
  std::size_t next_id_ = 1;
};

}  // namespace djstar::control
