// djstar/serve/qos.hpp
// Shared vocabulary of the serving layer: QoS classes, session ids, and
// session lifecycle states.
//
// The serving shape mirrors an inference stack: latency-SLO'd DAG jobs
// (audio sessions, one packet per deadline) multiplexed over a fixed
// worker pool. QoS decides two things and two things only:
//   - dispatch tie-breaks: on equal deadlines, realtime runs first;
//   - shed order under overload: besteffort is degraded and shed first,
//     standard second, realtime never (it only walks its own
//     degradation ladder).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace djstar::serve {

/// Service classes, strictest first.
enum class QoS : std::uint8_t {
  kRealtime = 0,  ///< hard 99.9% deadline SLO; never shed
  kStandard,      ///< best-effort SLO; shed only after all besteffort
  kBestEffort,    ///< first to degrade and shed under overload
};
inline constexpr unsigned kQoSCount = 3;

const char* to_string(QoS q) noexcept;
std::optional<QoS> parse_qos(std::string_view name) noexcept;

/// Dispatch priority: lower rank runs first on equal deadlines; shedding
/// walks ranks from the highest down.
constexpr unsigned rank(QoS q) noexcept { return static_cast<unsigned>(q); }

/// Host-unique session handle. Ids start at 1; 0 is never issued.
using SessionId = std::uint64_t;
inline constexpr SessionId kInvalidSession = 0;

/// Session lifecycle. Transitions:
///   submit -> kQueued -> (admission) kActive | kQueued | kRejected
///   kActive -> kShed (overload) | kClosed (caller) | kTripped (breaker)
///   kQueued -> kActive (capacity freed) | kClosed (caller)
///   kTripped -> kActive (half-open probe admitted) | kClosed (caller)
enum class SessionState : std::uint8_t {
  kQueued = 0,  ///< submitted, waiting for the admission test
  kActive,      ///< admitted; dispatched every tick it is due
  kShed,        ///< evicted by the overload handler
  kClosed,      ///< torn down by the caller
  kRejected,    ///< admission refused (queueing disabled or queue full)
  kTripped,     ///< circuit breaker opened; parked until a probe succeeds
};

const char* to_string(SessionState s) noexcept;

}  // namespace djstar::serve
