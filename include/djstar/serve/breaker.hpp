// djstar/serve/breaker.hpp
// Per-session circuit breaker (DESIGN.md §12): isolate a structurally
// failing session instead of letting it burn pool time every tick.
//
// State machine:
//   kClosed    normal service; K consecutive failed cycles (deadline
//              miss, faulted/cancelled cycle, or NaN output) trip it.
//   kOpen      session torn down (lightweight snapshot retained by the
//              host); a retry is due after an exponential backoff with
//              deterministic jitter.
//   kHalfOpen  probe: the session is rebuilt from its snapshot and must
//              complete `half_open_probes` consecutive clean cycles to
//              close; one more failure re-opens with escalated backoff.
//
// Determinism: the breaker sees only the fleet's virtual clock (never
// wall time) and its jitter comes from SplitMix64 over (seed, session
// id, trip count), so a replayed submission sequence trips, probes, and
// closes on exactly the same ticks.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "djstar/serve/qos.hpp"

namespace djstar::serve {

/// Breaker policy. Default-disabled: trip_failures == 0 turns the whole
/// feature off (sessions fail forever in place, pre-breaker behaviour).
struct BreakerConfig {
  /// Consecutive failed cycles before tripping; 0 disables the breaker.
  unsigned trip_failures = 0;
  /// Base open-state backoff before the first probe (virtual time).
  double backoff_ms = 50.0;
  /// Backoff multiplier per successive trip of the same session.
  double backoff_factor = 2.0;
  /// Backoff ceiling.
  double max_backoff_ms = 5000.0;
  /// Jitter amplitude as a fraction of the backoff (+/-), decorrelating
  /// probe storms when many sessions trip on the same incident.
  double jitter_frac = 0.2;
  /// Consecutive clean half-open cycles required to close again.
  unsigned half_open_probes = 32;

  bool enabled() const noexcept { return trip_failures > 0; }

  /// Parse "K,backoff_ms" (e.g. "4,50"). Hardened like
  /// core/thread_count: whitespace is trimmed, anything else —
  /// empty string, missing comma, garbage numbers, negative backoff —
  /// throws std::invalid_argument. K == 0 is valid (explicitly off).
  static BreakerConfig parse(std::string_view text);

  /// DJSTAR_BREAKER override: unset returns nullopt, set goes through
  /// parse() (set-but-garbage throws; it must not be silently ignored).
  static std::optional<BreakerConfig> from_env(
      const char* var = "DJSTAR_BREAKER");
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };
const char* to_string(BreakerState s) noexcept;

/// What a cycle report did to the breaker.
enum class BreakerEvent : std::uint8_t {
  kNone = 0,
  kTripped,  ///< closed/half-open -> open: tear the session down
  kClosed,   ///< half-open -> closed: probe succeeded, backoff reset
};

class CircuitBreaker {
 public:
  CircuitBreaker(const BreakerConfig& cfg, std::uint64_t seed,
                 SessionId id) noexcept;

  BreakerState state() const noexcept { return state_; }
  std::uint64_t trips() const noexcept { return trips_; }
  unsigned failure_streak() const noexcept { return fail_streak_; }
  /// Virtual time at which the next probe is due (kOpen only).
  double retry_at_us() const noexcept { return retry_at_us_; }
  /// Backoff that scheduled the pending probe, for journaling.
  double last_backoff_us() const noexcept { return last_backoff_us_; }

  /// Report a finished cycle. `failed` per the host's failure predicate,
  /// `now_us` the fleet's virtual clock. Never called while kOpen (the
  /// session does not exist then).
  BreakerEvent on_cycle(bool failed, double now_us) noexcept;

  /// kOpen and the backoff has elapsed: the host may rebuild the session
  /// and begin_probe().
  bool probe_due(double now_us) const noexcept {
    return state_ == BreakerState::kOpen && now_us >= retry_at_us_;
  }
  /// kOpen -> kHalfOpen; the restored session's cycles now count as
  /// probes.
  void begin_probe() noexcept;

 private:
  void open(double now_us) noexcept;
  double jittered_backoff_us() noexcept;

  BreakerConfig cfg_;
  std::uint64_t seed_;
  SessionId id_;
  BreakerState state_ = BreakerState::kClosed;
  unsigned fail_streak_ = 0;
  unsigned probe_streak_ = 0;
  std::uint64_t trips_ = 0;       // cumulative, never resets (stats/jitter)
  std::uint64_t escalation_ = 0;  // backoff exponent; reset on true close
  double retry_at_us_ = 0;
  double last_backoff_us_ = 0;
};

}  // namespace djstar::serve
