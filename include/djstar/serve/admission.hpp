// djstar/serve/admission.hpp
// Deadline-aware admission control for the multi-session host.
//
// Model: the fleet runs non-preemptive EDF over sessions on one shared
// worker pool (Kermia, arXiv:1301.4800, motivates testing admission
// up front: with non-preemptive dispatch an over-admitted set cannot be
// saved by the scheduler). Each session i contributes density
// C_i / D_i, where C_i is its estimated per-cycle cost on the pool and
// D_i its per-buffer deadline. A new session is admitted only while
//
//     sum_i C_i / D_i  +  C_new / D_new  <=  utilization_bound
//
// (the pool serves sessions serially, so the bound is against ONE unit
// of serial capacity, discounted for dispatch overhead and estimate
// error; it is deliberately conservative, cf. non-preemptive blocking).
//
// Cost estimates: a session declares per-node costs, and its C is the
// DAG worst-case response-time bound of He et al. (arXiv:2307.13401),
// len(G) + (vol(G) - len(G)) / m — critical path plus the remaining
// volume spread over m workers. Measured DeadlineMonitor p99s can
// replace the estimate later via EngineHost::recalibrate(); the default
// keeps admission a pure function of declared inputs, so decisions are
// deterministic and replayable (core/fault philosophy).
#pragma once

#include <cstdint>
#include <span>

#include "djstar/core/compiled_graph.hpp"
#include "djstar/serve/qos.hpp"

namespace djstar::serve {

/// Admission policy knobs.
struct AdmissionConfig {
  /// Ceiling on total density sum(C_i / D_i). Below 1.0 by the serial-
  /// dispatch argument; the default leaves ~1/3 slack for dispatch
  /// overhead, estimate error, and the non-preemptive blocking term.
  double utilization_bound = 0.65;
  /// Hard cap on concurrently active sessions.
  std::size_t max_active = 256;
  /// Park over-bound submissions in a FIFO queue instead of rejecting.
  bool queue_when_full = true;
  /// Cap on the parked queue; beyond it submissions are rejected.
  std::size_t max_queued = 256;
};

/// Outcome of one admission test.
enum class AdmissionVerdict : std::uint8_t { kAdmitted, kQueued, kRejected };

const char* to_string(AdmissionVerdict v) noexcept;

/// One decision, recorded for replayability checks and post-mortems.
struct AdmissionRecord {
  SessionId id = kInvalidSession;
  AdmissionVerdict verdict = AdmissionVerdict::kRejected;
  double projected_density = 0;  ///< density sum if this session joined
  double bound = 0;              ///< the bound it was tested against
  std::uint64_t tick = 0;        ///< fleet tick of the decision
};

/// He et al. DAG response-time bound: len(G) + (vol(G) - len(G)) / m,
/// with vol = sum of node costs and len = the critical path under
/// `node_cost_us` (indexed by NodeId; nodes beyond its size cost 0).
double estimate_graph_cost_us(const core::CompiledGraph& g,
                              std::span<const double> node_cost_us,
                              unsigned workers);

/// The admission test itself: a pure function of its inputs, so a
/// replay with the same submission sequence reproduces every verdict.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg = {}) : cfg_(cfg) {}

  const AdmissionConfig& config() const noexcept { return cfg_; }

  /// Decide for a session of density `density = C/D` against the
  /// currently admitted `active_density` over `active_count` sessions
  /// and `queued_count` parked sessions. Does not mutate anything; the
  /// host applies the verdict.
  AdmissionVerdict decide(double density, double active_density,
                          std::size_t active_count,
                          std::size_t queued_count) const noexcept;

 private:
  AdmissionConfig cfg_;
};

}  // namespace djstar::serve
