// djstar/serve/host.hpp
// The multi-session engine host: one shared worker pool, a two-level
// scheduler, deadline-aware admission control, and load shedding.
//
// Level 1 (cycle-level, this class): a session dispatcher. Each fleet
// tick covers one minimum-deadline window; sessions whose next packet
// deadline falls inside the window are dispatched in EDF order (absolute
// deadline, then QoS rank, then id — fully deterministic). Dispatch is
// non-preemptive: a running graph is never interrupted, which is exactly
// why admission is tested up front (Kermia, arXiv:1301.4800).
//
// Level 2 (node-level): each dispatched session runs its DAG on the
// host's shared core::Team through a hosted WorkStealingExecutor
// (external submission — see core/team.hpp). One graph runs at a time
// across the full pool; per-session arenas mean sessions never share
// mutable state.
//
// Admission: serve/admission.hpp — density test sum(C/D) against a
// utilization bound, C from the He-et-al. DAG response-time bound or,
// after recalibrate(), from measured DeadlineMonitor p99s. Decisions are
// a pure function of the submission sequence, so replays reproduce the
// admission log verdict-for-verdict.
//
// Overload: when `trip_ticks` consecutive ticks overrun their budget,
// the handler walks the per-session degradation ladders and sheds —
// besteffort first (degrade all one rung; once all are at the floor,
// evict the youngest), then standard, never realtime. After a shed,
// admissions from the parked queue hold off for a few ticks so the
// fleet cannot thrash (shed/admit/shed).
//
// Threading: submit()/close()/session_state() are thread-safe (control
// plane); run_fleet_cycle() and the introspection calls below it belong
// to one data-plane thread. Control commands take effect at the next
// tick boundary, in arrival order.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "djstar/core/health.hpp"
#include "djstar/core/team.hpp"
#include "djstar/core/work_stealing.hpp"
#include "djstar/engine/profiler.hpp"
#include "djstar/engine/supervisor.hpp"
#include "djstar/serve/admission.hpp"
#include "djstar/serve/breaker.hpp"
#include "djstar/serve/qos.hpp"
#include "djstar/serve/session.hpp"
#include "djstar/serve/stats.hpp"
#include "djstar/support/journal.hpp"
#include "djstar/support/metrics.hpp"
#include "djstar/support/slo.hpp"
#include "djstar/support/trace.hpp"
#include "djstar/support/tsdb.hpp"

namespace djstar::serve {

/// Overload-handling policy.
struct OverloadConfig {
  /// Consecutive over-budget ticks before the shed handler fires.
  unsigned trip_ticks = 3;
  /// A tick is overloaded when elapsed > factor * budget.
  double overload_factor = 1.0;
  /// Allow shedding standard sessions once no besteffort remain.
  bool shed_standard = true;
  /// Ticks to pause queued admissions after an overload shed.
  unsigned admit_holdoff_ticks = 16;
};

/// Host construction parameters.
struct HostConfig {
  /// Worker-pool width; 0 = auto (DJSTAR_THREADS / hardware concurrency,
  /// hardened via core::resolve_thread_count).
  unsigned threads = 0;
  core::StartMode start_mode = core::StartMode::kCondvar;
  core::SpinPolicy spin{};
  core::WorkStealingOptions ws{};
  /// Tick length when no session is active (otherwise the minimum
  /// active deadline defines the tick).
  double default_tick_us = audio::kDeadlineUs;
  AdmissionConfig admission{};
  OverloadConfig overload{};
  /// Per-session supervision template (deadline overwritten per
  /// session; the watchdog is forced off — one thread per session does
  /// not scale).
  engine::SupervisorConfig supervisor{};
  /// Recorded for replay bookkeeping; the host itself is deterministic
  /// given the submission sequence, the seed tags the run (it also seeds
  /// the breakers' probe jitter).
  std::uint64_t seed = 1;
  /// Per-session circuit breaker (serve/breaker.hpp, DESIGN.md §12);
  /// disabled by default. Overridden by DJSTAR_BREAKER=<K>,<backoff_ms>
  /// when set.
  BreakerConfig breaker{};
  /// Worker self-healing for the shared pool (core/health.hpp);
  /// DJSTAR_HEAL=off|quarantine|respawn overrides the mode.
  core::TeamHealConfig heal{};
  /// Per-session attribution profiler template (engine/profiler.hpp,
  /// DESIGN.md §14); mode overridden by DJSTAR_PROF=off|attrib|attrib+hw
  /// when set. mode != kOff gives every session a CycleProfiler sharing
  /// the host registry/journal, and (attrib+hw) arms one host-level
  /// HwSampler over the shared pool, sampled once per tick.
  engine::ProfilerConfig profiler{};
  /// SLO engine (support/slo + support/tsdb, DESIGN.md §15): one
  /// time-series store on the fleet's virtual clock, with burn-rate
  /// trackers per session, per QoS class, and fleet-wide. enabled/spec
  /// overridden by DJSTAR_SLO=off|on[,<miss_ratio>[,<p99_us>]] when set.
  support::SloConfig slo{};
};

/// Report of one fleet tick.
struct FleetTick {
  std::uint64_t index = 0;
  double budget_us = 0;    ///< window length (min active deadline)
  double elapsed_us = 0;   ///< wall time spent running due sessions
  unsigned sessions_run = 0;
  unsigned misses = 0;     ///< sessions completing past their deadline
  unsigned shed = 0;       ///< sessions evicted by the overload handler
  unsigned degraded = 0;   ///< force_degrade() rungs walked this tick
  bool overloaded = false;
};

class EngineHost {
 public:
  explicit EngineHost(HostConfig cfg = {});
  ~EngineHost();

  EngineHost(const EngineHost&) = delete;
  EngineHost& operator=(const EngineHost&) = delete;

  // ---- control plane (thread-safe) ----

  /// Submit a session for admission. Returns its id immediately; the
  /// verdict lands at the next tick boundary (state kQueued until then).
  SessionId submit(SessionSpec spec);

  /// Tear down a session (active or queued). Takes effect at the next
  /// tick boundary; unknown ids are ignored.
  void close(SessionId id);

  /// Lifecycle state of any session ever submitted.
  SessionState session_state(SessionId id) const;

  // ---- data plane (one thread) ----

  /// Run one fleet tick: drain control commands, admit, dispatch due
  /// sessions in EDF order, account deadlines, handle overload.
  FleetTick run_fleet_cycle();
  void run_fleet_cycles(std::size_t n);

  /// Observer invoked on the data-plane thread at the end of every
  /// run_fleet_cycle(), after all accounting for the tick has landed.
  /// Embedders (e.g. the net::Server fan-out) use it to read per-tick
  /// state — session outputs, the admission log — without wrapping the
  /// dispatch loop. Data-plane introspection calls are safe inside it;
  /// it must never block on external I/O (the overload detector would
  /// charge the stall to the next tick). Set before the data-plane loop
  /// starts, or from the data-plane thread itself.
  using TickObserver = std::function<void(const FleetTick&)>;
  void set_tick_observer(TickObserver fn) { tick_observer_ = std::move(fn); }

  unsigned threads() const noexcept { return threads_; }
  std::size_t active_sessions() const noexcept { return active_.size(); }
  std::size_t queued_sessions() const noexcept { return queued_.size(); }
  /// Sessions currently parked by their circuit breaker.
  std::size_t tripped_sessions() const noexcept { return tripped_.size(); }
  /// The shared worker pool (self-healing tests poke its health board).
  core::Team& team() noexcept { return team_; }
  double active_density() const noexcept { return active_density_; }
  std::uint64_t ticks() const noexcept { return tick_; }

  /// The admission log, in decision order (replayable).
  const std::vector<AdmissionRecord>& admission_log() const noexcept {
    return admission_log_;
  }

  /// Fleet-wide aggregation (live + departed sessions).
  FleetStats stats() const;

  /// Pointer to a live session (nullptr when not active). Borrowed;
  /// valid until the next run_fleet_cycle().
  const Session* session(SessionId id) const noexcept;
  /// Mutable variant, data-plane only (fault-injection tests flip a
  /// live session's fault plan between ticks).
  Session* session(SessionId id) noexcept;

  /// Replace every active session's cost estimate with its measured
  /// compute p99 (DeadlineMonitor) and re-derive the density sum. Makes
  /// later admissions measurement-driven — and no longer replayable
  /// against a cold start; call it deliberately.
  void recalibrate();

  // ---- telemetry ----

  /// Fleet metrics registry. Counters are incremented at the exact same
  /// sites as the ServeStats accounting, so a scrape and stats() agree
  /// on every lifecycle/service count. Snapshots are thread-safe.
  support::MetricsRegistry& metrics() noexcept { return registry_; }
  const support::MetricsRegistry& metrics() const noexcept {
    return registry_;
  }

  /// Structured event journal: admission verdicts, parks, sheds,
  /// overload trips, session closes, per-session deadline misses. The
  /// data plane produces; drain from any one consumer thread.
  support::EventJournal& journal() noexcept { return journal_; }

  /// Write the Prometheus text exposition of the fleet metrics to
  /// `path`. Thread-safe. Returns false on I/O failure.
  bool write_metrics(const std::string& path) const;

  /// Enable the always-on flight recorder, shared by all sessions: one
  /// lane per pool worker (the team runs one graph at a time, so lanes
  /// stay single-writer). Sessions submitted after this call record
  /// into it; the cycle tag advances once per fleet tick.
  void enable_flight(std::size_t spans_per_thread = 2048);
  support::FlightRecorder& flight() noexcept { return flight_; }
  const support::FlightRecorder& flight() const noexcept { return flight_; }

  /// Start a background exporter rewriting `path` every `period_ms`
  /// (the constructor starts one automatically when DJSTAR_METRICS=
  /// <path> is set). Restarts replace the previous exporter.
  void start_metrics_exporter(const std::string& path,
                              double period_ms = 1000.0);
  void stop_metrics_exporter();

  /// Arm schedule tracing on all current and future sessions.
  void arm_tracing(std::size_t capacity_per_worker = 4096);

  // ---- attribution / profiling (DESIGN.md §14) ----

  /// True when cfg.profiler (or DJSTAR_PROF) enabled attribution.
  bool profiler_enabled() const noexcept {
    return cfg_.profiler.mode != engine::ProfMode::kOff;
  }

  /// Cached JSON for the net layer's GET /debug/attribution: per active
  /// session, the latest realized-critical-path decomposition and (after
  /// a miss) the ranked blame report. Refreshed at the end of every tick
  /// on the data plane; reading is thread-safe (mutex-guarded copy) so
  /// the reactor thread can serve it without touching host state.
  std::string debug_attribution_json() const;
  /// Cached JSON for GET /debug/profile: profiler mode, hw-counter
  /// availability and per-worker totals, per-session cycle counts, cp
  /// EWMAs, and a windowed (since previous tick refresh) latency view
  /// computed via Histogram::delta_since.
  std::string debug_profile_json() const;

  /// Export the fleet schedule as Chrome trace_event JSON: one pid per
  /// session, one tid per worker. Returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  // ---- SLO engine (DESIGN.md §15) ----

  /// True when cfg.slo (or DJSTAR_SLO) enabled the SLO engine.
  bool slo_enabled() const noexcept { return tsdb_ != nullptr; }
  /// The fleet's time-series store (nullptr when disabled). Driven by
  /// the virtual fleet clock, so SLO state is deterministic per tick.
  support::TimeSeriesStore* slo_store() noexcept { return tsdb_.get(); }
  /// Trackers (nullptr when disabled / unknown id). Data-plane only.
  const support::SloTracker* slo_fleet() const noexcept {
    return slo_fleet_.get();
  }
  const support::SloTracker* slo_session(SessionId id) const;
  /// Page-level incidents that requested a flight dump (each dumped at
  /// most one trace; cooldown-free because pages are hysteresis-gated).
  std::uint64_t slo_incident_dumps() const noexcept {
    return slo_incident_dumps_;
  }

  /// Cached JSON for GET /debug/slo: per-scope alert state, error
  /// budget, and burn rates (fleet, per QoS class, per session).
  /// Refreshed at the end of every tick on the data plane; reading is
  /// thread-safe (mutex-guarded copy).
  std::string debug_slo_json() const;
  /// Reader-side render for GET /debug/timeseries: the named series'
  /// newest `window` sealed windows (0 = all retained). Thread-safe —
  /// the store snapshots under its own mutex; the engine thread never
  /// renders JSON for a socket.
  std::string debug_timeseries_json(std::string_view series,
                                    std::size_t window) const;

 private:
  struct Command {
    enum class Kind : std::uint8_t { kSubmit, kClose } kind;
    SessionId id = kInvalidSession;
    SessionSpec spec;  // kSubmit only
    /// Wall-clock submit() time (kSubmit only): the start of the
    /// admission-wait stage in the latency decomposition.
    support::Clock::time_point submitted_at{};
  };

  /// Spec + control snapshot of a session parked by its breaker; the
  /// DSP state survives in SessionSpec::arena.
  struct TrippedEntry {
    SessionId id = kInvalidSession;
    SessionSpec spec;
    SessionSnapshot snap;
  };

  void drain_commands();
  void refresh_debug_json();
  void refresh_slo_json();
  void attach_slo(SessionId id);
  void detach_slo(SessionId id);
  void evaluate_slo();
  void on_slo_transition(support::SloTracker& tr, std::int64_t scope,
                         support::SloAlertState prev, Session* session);
  std::unique_ptr<Session> build_session(SessionId id, SessionSpec spec);
  void decide_admission(std::unique_ptr<Session> s);
  void activate(std::unique_ptr<Session> s);
  void try_admit_queued();
  void remove_session(SessionId id, SessionState final_state);
  void handle_overload(FleetTick& t);
  void trip_session(SessionId id);
  void probe_tripped();
  void set_state(SessionId id, SessionState s);

  HostConfig cfg_;
  unsigned threads_;
  core::Team team_;  // shared pool, external-submission mode
  AdmissionController admission_;

  // Control plane.
  mutable std::mutex cmd_mutex_;
  std::vector<Command> commands_;
  SessionId next_id_ = 1;
  mutable std::mutex state_mutex_;
  std::unordered_map<SessionId, SessionState> states_;

  // Data plane.
  std::vector<std::unique_ptr<Session>> active_;
  std::deque<std::unique_ptr<Session>> queued_;
  double active_density_ = 0;
  double fleet_now_us_ = 0;
  std::uint64_t tick_ = 0;
  unsigned overload_streak_ = 0;
  unsigned admit_holdoff_ = 0;
  ServeStats stats_;
  std::vector<AdmissionRecord> admission_log_;
  TickObserver tick_observer_;

  // Circuit breakers (cfg_.breaker.enabled() only). A session's breaker
  // survives trip -> restore so the backoff keeps escalating across
  // repeated trips; it is erased only when the owner truly closes the
  // session.
  std::unordered_map<SessionId, CircuitBreaker> breakers_;
  std::vector<TrippedEntry> tripped_;

  // Telemetry. Counter handles mirror the ServeStats counters one-to-one
  // (incremented at the same call sites); gauges refresh per tick.
  support::MetricsRegistry registry_;
  support::EventJournal journal_{4096};
  support::FlightRecorder flight_;
  support::Counter m_ticks_;
  support::Counter m_submitted_;
  support::Counter m_admitted_;
  support::Counter m_queued_;
  support::Counter m_rejected_;
  support::Counter m_shed_;
  support::Counter m_closed_;
  support::Counter m_overloads_;
  support::Counter m_cycles_;
  support::Counter m_misses_;
  support::Counter m_degrade_steps_;
  support::Counter m_tripped_;
  support::Counter m_restored_;
  support::Gauge g_active_sessions_;
  support::Gauge g_queued_sessions_;
  support::Gauge g_active_density_;

  // Stage latency decomposition (DESIGN.md §14): always-on, per QoS
  // class (the registry has no label support, so the class is a name
  // suffix). admission-wait = submit() to activation (wall), edf-queue =
  // dispatch delay inside the tick, execute = compute after dispatch.
  // The net layer adds djstar_stage_net_flush_us_<qos> on top.
  std::array<support::HistogramMetric, kQoSCount> h_stage_admission_;
  std::array<support::HistogramMetric, kQoSCount> h_stage_queue_;
  std::array<support::HistogramMetric, kQoSCount> h_stage_execute_;

  // Attribution (cfg_.profiler.mode != kOff). The hw sampler belongs to
  // the host — sessions share the pool, so per-session hw attribution
  // would double-count; it is sampled once per tick instead.
  engine::HwSampler hw_sampler_;
  bool hw_armed_ = false;
  std::vector<engine::HwCounters> hw_tick_;  // last tick's deltas
  // Debug JSON cache: written by the data plane at the end of each tick,
  // read by the net reactor. Strings are swapped under the mutex.
  mutable std::mutex debug_mutex_;
  std::string debug_attrib_json_;
  std::string debug_profile_json_;
  std::string debug_scratch_;
  // Previous-tick latency snapshots for Histogram::delta_since windows.
  std::unordered_map<SessionId, support::Histogram> prev_latency_;

  // SLO engine (cfg_.slo.enabled only, DESIGN.md §15). The store runs on
  // the virtual fleet clock (fleet_now_us_); trackers own series inside
  // it, so they are declared after it (destroyed first). Per-session
  // trackers come and go with activation/removal; per-QoS and fleet
  // trackers live as long as the host.
  std::unique_ptr<support::TimeSeriesStore> tsdb_;
  std::unique_ptr<support::SloTracker> slo_fleet_;
  std::array<std::unique_ptr<support::SloTracker>, kQoSCount> slo_qos_;
  std::unordered_map<SessionId, std::unique_ptr<support::SloTracker>>
      slo_sessions_;
  support::TimeSeriesStore::SeriesRef ts_tick_elapsed_;
  support::Counter m_slo_alerts_;
  support::Counter m_slo_recovers_;
  support::Gauge g_slo_budget_;
  support::Gauge g_slo_state_;
  std::array<support::Gauge, kQoSCount> g_slo_qos_budget_;
  std::array<support::Gauge, kQoSCount> g_slo_qos_state_;
  support::Gauge g_uptime_;
  std::uint64_t slo_incident_dumps_ = 0;
  /// Tick of the last page-triggered dump: several scopes paging at the
  /// same seal (session + its class + the fleet) are one incident.
  std::uint64_t slo_dump_tick_ = ~std::uint64_t{0};
  std::string debug_slo_json_;

  // Metrics exporter thread (snapshot + file write only; never touches
  // host state).
  std::thread exporter_;
  std::mutex exporter_mutex_;
  std::condition_variable exporter_cv_;
  bool exporter_stop_ = false;
  bool tracing_armed_ = false;
  std::size_t trace_capacity_ = 0;
  /// Spans of departed sessions, kept so a fleet trace still shows
  /// sessions that closed or were shed mid-run.
  std::vector<support::TraceProcess> retired_traces_;
};

}  // namespace djstar::serve
