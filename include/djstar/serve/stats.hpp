// djstar/serve/stats.hpp
// Fleet-wide observability for the multi-session host.
//
// Each session keeps its own DeadlineMonitor and latency Histogram; the
// ServeStats registry folds them into fleet aggregates — p50/p99 service
// latency, deadline-miss counters, per-QoS breakdowns — via
// support::Histogram::merge(). Departed sessions (closed or shed) are
// folded into a retained aggregate at teardown so fleet totals never
// lose history when a session object goes away.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "djstar/audio/buffer.hpp"
#include "djstar/engine/supervisor.hpp"
#include "djstar/serve/qos.hpp"
#include "djstar/serve/session.hpp"
#include "djstar/support/histogram.hpp"

namespace djstar::serve {

/// One session's row in a fleet snapshot.
struct SessionStatsView {
  SessionId id = kInvalidSession;
  std::string name;
  QoS qos = QoS::kStandard;
  std::uint64_t cycles = 0;
  std::uint64_t misses = 0;
  double miss_rate = 0;
  double p50_latency_us = 0;
  double p99_latency_us = 0;
  engine::DegradationLevel level = engine::DegradationLevel::kFull;
  double cost_estimate_us = 0;
  double deadline_us = 0;
};

/// Aggregate over one QoS class (live + departed sessions).
struct QoSAggregate {
  std::uint64_t sessions = 0;  ///< ever admitted
  std::uint64_t shed = 0;
  std::uint64_t cycles = 0;
  std::uint64_t misses = 0;
  double miss_rate = 0;
  double p50_latency_us = 0;
  double p99_latency_us = 0;
};

/// Whole-fleet snapshot.
struct FleetStats {
  // Lifecycle counters.
  std::uint64_t ticks = 0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t queued_peak = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t closed = 0;
  std::uint64_t overload_events = 0;
  // Service counters (live + departed).
  std::uint64_t cycles = 0;
  std::uint64_t misses = 0;
  double miss_rate = 0;
  double p50_latency_us = 0;
  double p99_latency_us = 0;
  std::array<QoSAggregate, kQoSCount> by_qos{};
  std::vector<SessionStatsView> sessions;  ///< live sessions only
};

/// The registry. Owned by EngineHost; all methods run on the host's
/// data-plane thread.
class ServeStats {
 public:
  ServeStats();

  // Lifecycle accounting (called by the host as events happen).
  void note_submitted() noexcept { ++submitted_; }
  void note_admitted(QoS q) noexcept;
  void note_rejected() noexcept { ++rejected_; }
  void note_queued_depth(std::size_t depth) noexcept;
  void note_tick() noexcept { ++ticks_; }
  void note_overload() noexcept { ++overload_events_; }

  /// Fold a departing session (closed or shed) into the retained
  /// aggregate; its histogram merges into the per-QoS retained one.
  void retire(const Session& s, bool was_shed);

  /// Build the full snapshot over the currently live sessions plus the
  /// retained aggregate of departed ones.
  FleetStats aggregate(std::span<const Session* const> live) const;

 private:
  struct Retained {
    std::uint64_t cycles = 0;
    std::uint64_t misses = 0;
    support::Histogram latency{0.0, 4.0 * audio::kDeadlineUs, kLatencyBins};
  };

  std::uint64_t ticks_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t queued_peak_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t overload_events_ = 0;
  std::array<std::uint64_t, kQoSCount> admitted_by_qos_{};
  std::array<std::uint64_t, kQoSCount> shed_by_qos_{};
  std::array<Retained, kQoSCount> retained_{};
};

}  // namespace djstar::serve
