// djstar/serve/session.hpp
// One hosted session: an independent task graph with its own compiled
// form, supervisor, deadline monitor, and latency histogram, executed on
// the host's shared worker pool.
//
// Isolation: everything a session's nodes touch lives in the session —
// the TaskGraph's captured buffers (kept alive via SessionSpec::arena),
// the CompiledGraph's cycle state, the hosted executor's deques. The
// only shared object is the core::Team, which runs one session's graph
// at a time; the team's generation release/acquire publishes each
// session's cycle state to the workers, so sessions never share mutable
// state concurrently.
//
// Degradation: the engine's CycleSupervisor ladder is reused per
// session. The serve actuation is simpler than AudioEngine's —
//   kFull                everything runs
//   kBypassFx/kNoStretch spec.sheddable nodes are masked (one shed tier;
//                        generic graphs have no stretch to disable)
//   kSequentialFallback  graph runs on the session's sequential executor
//   kSafeMode            graph skipped; supervisor emits faded repeats
// The ladder steps down on its own when a session's service latency
// (dispatch wait + compute) blows its deadline, and the host can force
// it down when the *fleet* is behind (overload shedding).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "djstar/audio/buffer.hpp"
#include "djstar/core/compiled_graph.hpp"
#include "djstar/core/graph.hpp"
#include "djstar/core/sequential.hpp"
#include "djstar/core/team.hpp"
#include "djstar/core/work_stealing.hpp"
#include "djstar/engine/deadline.hpp"
#include "djstar/engine/profiler.hpp"
#include "djstar/engine/supervisor.hpp"
#include "djstar/serve/qos.hpp"
#include "djstar/support/histogram.hpp"
#include "djstar/support/time.hpp"
#include "djstar/support/trace.hpp"

namespace djstar::serve {

/// Everything a client supplies to open a session.
struct SessionSpec {
  std::string name = "session";
  QoS qos = QoS::kStandard;
  /// Per-buffer deadline. Sessions may run at different rates; a
  /// session with 2x the fleet tick runs every other tick.
  double deadline_us = audio::kDeadlineUs;
  /// The session's task graph (moved into the session).
  core::TaskGraph graph;
  /// Nodes maskable under degradation (bypass forms may be registered
  /// on the compiled graph by the workload builder via node order).
  std::vector<core::NodeId> sheddable;
  /// Declared per-node costs (indexed by NodeId) for the admission
  /// estimate; may be empty when cost_estimate_us is set directly.
  std::vector<double> node_cost_us;
  /// Per-cycle cost estimate; 0 = derive from node_cost_us via the
  /// He-et-al. DAG bound at admission time.
  double cost_estimate_us = 0;
  /// Output packet to validate (NaN scan + fallback splicing). May be
  /// null for graphs without an audio sink; a silent buffer is used.
  const audio::AudioBuffer* output = nullptr;
  /// Opaque owner of whatever the WorkFns capture (buffers, DSP state).
  std::shared_ptr<void> arena;
  /// Node fault injection armed on the session's compiled graph at
  /// construction when any rate is non-zero (chaos tests: forced stalls
  /// must surface in the attribution blame reports). Survives breaker
  /// trips like the rest of the spec.
  core::chaos::FaultPlan faults{};
};

/// Per-session serve-level counters (service latency = wait + compute,
/// measured against the session's own deadline).
struct SessionCounters {
  std::uint64_t cycles = 0;
  std::uint64_t misses = 0;       ///< completion offset > allowed time
  std::uint64_t degraded_cycles = 0;  ///< ran below kFull
};

/// Lightweight state carried across a breaker trip: everything needed to
/// resume a rebuilt session where the old one left off that is NOT
/// already owned by SessionSpec::arena (the DSP state itself survives in
/// the arena; this is the serve-level control state).
struct SessionSnapshot {
  engine::DegradationLevel level = engine::DegradationLevel::kFull;
  double cost_estimate_us = 0;
};

/// A hosted session. Constructed by EngineHost; all methods are called
/// from the host's data-plane thread only.
class Session {
 public:
  Session(SessionId id, SessionSpec spec, core::Team& team,
          const core::ExecOptions& exec, const core::WorkStealingOptions& ws,
          engine::SupervisorConfig scfg);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  SessionId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return spec_.name; }
  QoS qos() const noexcept { return spec_.qos; }
  double deadline_us() const noexcept { return spec_.deadline_us; }

  /// Admission density C/D with the current cost estimate.
  double density() const noexcept {
    return cost_estimate_us_ / spec_.deadline_us;
  }
  double cost_estimate_us() const noexcept { return cost_estimate_us_; }
  void set_cost_estimate_us(double c) noexcept { cost_estimate_us_ = c; }

  /// Absolute virtual-time deadline of the next due packet (managed by
  /// the host's EDF dispatcher).
  double next_due_us() const noexcept { return next_due_us_; }
  void set_next_due_us(double t) noexcept { next_due_us_ = t; }

  /// Wall-clock submission time (host-stamped at drain), the start of
  /// the admission-wait stage; default-constructed when never stamped.
  support::Clock::time_point submitted_at() const noexcept {
    return submitted_at_;
  }
  void set_submitted_at(support::Clock::time_point t) noexcept {
    submitted_at_ = t;
  }

  /// Run one cycle on the shared pool. `wait_us` is the dispatch delay
  /// already spent in this tick (EDF queueing; it counts against the
  /// deadline), `allowed_us` the budget from tick start to this
  /// session's absolute deadline. Returns the completion offset
  /// (wait + compute) in microseconds.
  double run_cycle(double wait_us, double allowed_us);

  const engine::DeadlineMonitor& monitor() const noexcept { return monitor_; }
  engine::CycleSupervisor& supervisor() noexcept { return supervisor_; }
  const engine::CycleSupervisor& supervisor() const noexcept {
    return supervisor_;
  }
  const SessionCounters& counters() const noexcept { return counters_; }
  const support::Histogram& latency_histogram() const noexcept {
    return latency_;
  }
  const core::Executor& hosted_executor() const noexcept { return *hosted_; }
  std::size_t node_count() const noexcept { return compiled_->node_count(); }

  /// p99 of measured per-cycle compute cost (graph phase only), for
  /// EngineHost::recalibrate(). Falls back to the estimate while fewer
  /// than 32 cycles have run.
  double observed_cost_p99_us() const;

  /// Schedule tracing (host-driven): spans land in recorder() with one
  /// lane per worker; the host exports one pid per session.
  void arm_tracing(std::size_t capacity_per_worker);
  const support::TraceRecorder& recorder() const noexcept { return trace_; }

  // ---- cycle attribution (engine/profiler.hpp, DESIGN.md §14) ----

  /// Attach a per-session attribution profiler. The session's trace
  /// recorder doubles as the per-cycle span buffer (armed here when the
  /// host has not armed it; cleared between cycles), so with profiling
  /// on, a fleet Chrome-trace export covers only each session's most
  /// recent cycle. `registry`/`journal` are the host's (shared metric
  /// series via register-or-fetch; may be null).
  void enable_profiler(const engine::ProfilerConfig& pcfg,
                       support::MetricsRegistry* registry,
                       support::EventJournal* journal);
  bool profiler_enabled() const noexcept { return profiler_ != nullptr; }
  engine::CycleProfiler& profiler() noexcept { return *profiler_; }
  const engine::CycleProfiler& profiler() const noexcept { return *profiler_; }

  /// Arm/disarm node fault injection on the session's compiled graph
  /// (chaos testing of hosted sessions, mirroring AudioEngine).
  void arm_faults(const core::chaos::FaultPlan& plan);
  void disarm_faults() noexcept;

  // ---- circuit-breaker support (serve/breaker.hpp, DESIGN.md §12) ----

  /// Outcome of the last run_cycle() (kClean before any cycle ran);
  /// the host's breaker failure predicate reads this.
  engine::CycleOutcome last_outcome() const noexcept { return last_outcome_; }

  /// Capture the control state a breaker trip must preserve.
  SessionSnapshot snapshot() const noexcept {
    return {supervisor_.level(), cost_estimate_us_};
  }
  /// Re-apply a snapshot to a freshly rebuilt session: walk the ladder
  /// down to the saved level and restore the admission cost estimate.
  void restore(const SessionSnapshot& snap);

  /// Surrender the spec for a rebuild (arena shared_ptr and graph move
  /// out intact). The session MUST be destroyed without running further
  /// cycles afterwards — compiled_ references the moved-from graph.
  SessionSpec take_spec() noexcept { return std::move(spec_); }

 private:
  void apply_level(engine::DegradationLevel level);

  SessionId id_;
  SessionSpec spec_;
  double cost_estimate_us_ = 0;
  double next_due_us_ = 0;
  support::Clock::time_point submitted_at_{};

  std::unique_ptr<core::CompiledGraph> compiled_;
  std::unique_ptr<core::WorkStealingExecutor> hosted_;
  std::unique_ptr<core::SequentialExecutor> fallback_;
  engine::DeadlineMonitor monitor_;
  engine::CycleSupervisor supervisor_;
  engine::DegradationLevel applied_level_ = engine::DegradationLevel::kFull;
  engine::CycleOutcome last_outcome_ = engine::CycleOutcome::kClean;
  support::Histogram latency_;
  SessionCounters counters_;
  support::TraceRecorder trace_;
  std::unique_ptr<engine::CycleProfiler> profiler_;
  std::vector<support::TraceSpan> prof_spans_;  // per-cycle scratch
  audio::AudioBuffer silent_{2, audio::kBlockSize};
};

/// Bins for per-session / fleet latency histograms: [0, 4x deadline).
inline constexpr std::size_t kLatencyBins = 128;

}  // namespace djstar::serve
