// djstar/serve/synthetic.hpp
// Synthetic session workloads for serve tests, the capacity benchmark,
// and the broadcast example.
//
// Shape: a layered DAG — one source, `width` parallel chains of `depth`
// nodes each, one sink mixing the chains into the session's output
// buffer. Every interior node runs a calibrated spin for ~node_cost_us
// (deterministically jittered per node from `seed`), so the graph's cost
// is known by construction and the He-et-al. admission estimate can be
// checked against reality. The trailing `sheddable_fraction` of each
// chain is marked sheddable, giving the degradation ladder something
// real to cut.
#pragma once

#include <cstdint>

#include "djstar/serve/session.hpp"

namespace djstar::serve {

/// Parameters of one synthetic session.
struct SyntheticSpec {
  std::string name = "synthetic";
  QoS qos = QoS::kStandard;
  double deadline_us = audio::kDeadlineUs;
  unsigned width = 4;          ///< parallel chains between source and sink
  unsigned depth = 3;          ///< nodes per chain
  double node_cost_us = 15.0;  ///< mean spin per interior node
  double jitter = 0.25;        ///< per-node cost spread, +/- fraction
  double sheddable_fraction = 0.4;  ///< tail of each chain marked sheddable
  std::uint64_t seed = 1;      ///< drives the per-node jitter only
  /// Replace the wall-clock-calibrated node spins with a fixed
  /// iteration count derived from node_cost_us, and advance the source
  /// phase once per cycle. The k-th cycle's output audio becomes a pure
  /// function of (spec, k) — the property the net-layer loopback test
  /// uses to check bit-identical audio over TCP vs in-process. Declared
  /// costs still drive admission; only the work loop changes.
  bool deterministic = false;
};

/// Build a ready-to-submit SessionSpec: graph, per-node declared costs,
/// sheddable set, output buffer, and the arena owning all of it.
SessionSpec make_synthetic_session(const SyntheticSpec& spec);

}  // namespace djstar::serve
