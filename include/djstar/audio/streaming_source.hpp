// djstar/audio/streaming_source.hpp
// Background track streaming — the Hardware Access layer's job in the
// paper's Fig. 2 ("connects directly to the hard disk for efficiently
// loading music files"). A loader thread reads track audio into a
// lock-free SPSC ring; the audio thread pulls blocks wait-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "djstar/audio/buffer.hpp"
#include "djstar/audio/ring_buffer.hpp"
#include "djstar/audio/track.hpp"

namespace djstar::audio {

/// Streams a Track from a producer thread into the consumer (audio)
/// thread through an SPSC ring of interleaved stereo frames.
///
/// Thread roles: the constructor spawns the loader; read_block() must be
/// called from exactly one consumer thread. Underruns (ring empty, e.g.
/// simulated disk stalls) produce silence and are counted, never blocked
/// on — exactly what a real engine does when the disk falls behind.
class StreamingTrackSource {
 public:
  /// `buffer_frames` of look-ahead (default ~0.37 s at 44.1 kHz).
  explicit StreamingTrackSource(Track track,
                                std::size_t buffer_frames = 16384);
  ~StreamingTrackSource();

  StreamingTrackSource(const StreamingTrackSource&) = delete;
  StreamingTrackSource& operator=(const StreamingTrackSource&) = delete;

  /// Consumer: fill a stereo block from the ring. Allocation-free.
  /// Returns the number of frames actually delivered (the rest, on
  /// underrun, are zeroed).
  std::size_t read_block(AudioBuffer& out) noexcept;

  /// Frames buffered and ready.
  std::size_t buffered_frames() const noexcept {
    return ring_.size() / 2;
  }

  std::uint64_t underrun_frames() const noexcept {
    return underruns_.load(std::memory_order_relaxed);
  }

  /// Inject an artificial loader stall of `blocks` producer iterations
  /// (failure injection for tests — a disk hiccup).
  void inject_stall(unsigned blocks) noexcept {
    stall_blocks_.store(blocks, std::memory_order_release);
  }

 private:
  void loader_main();

  Track track_;
  SpscRing<float> ring_;  // interleaved L,R
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> underruns_{0};
  std::atomic<unsigned> stall_blocks_{0};
  std::thread loader_;
};

}  // namespace djstar::audio
