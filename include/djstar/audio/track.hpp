// djstar/audio/track.hpp
// Synthetic track generator — the substitute for the music files the
// paper's evaluation plays on its four decks (DESIGN.md §2).
//
// A Track is a fully rendered stereo program: a four-on-the-floor kick,
// hi-hat noise bursts, a stepped bass line, and a chord pad, all derived
// deterministically from a seed. The sample data is music-like enough to
// give level-dependent DSP (compressors, gates, clippers) realistic,
// data-dependent branch behaviour — the source of the paper's two-peak
// runtime distributions.
#pragma once

#include <cstdint>
#include <cstddef>

#include "djstar/audio/buffer.hpp"

namespace djstar::audio {

/// Parameters of the synthetic program material.
struct TrackSpec {
  double sample_rate = kSampleRate;
  double seconds = 8.0;
  double bpm = 126.0;
  /// Root MIDI note of the bass line.
  int root_note = 45;  // A2
  /// 0..1 mix levels of each stem.
  float kick_level = 0.9f;
  float hat_level = 0.35f;
  float bass_level = 0.55f;
  float pad_level = 0.4f;
  std::uint64_t seed = 1;
};

/// An in-memory stereo track plus a read cursor, looping at the end —
/// this is what a Deck's sample players pull from.
class Track {
 public:
  Track() = default;

  /// Render a track from `spec`. Deterministic in the seed.
  static Track generate(const TrackSpec& spec);

  /// Wrap existing audio as a track (e.g. loaded from a WAV file).
  /// Mono input is duplicated to stereo. `bpm` may be 0 (unknown).
  static Track from_buffer(const AudioBuffer& audio, double sample_rate,
                           double bpm = 0.0);

  const AudioBuffer& audio() const noexcept { return audio_; }
  double sample_rate() const noexcept { return sample_rate_; }
  std::size_t length_frames() const noexcept { return audio_.frames(); }
  double bpm() const noexcept { return bpm_; }

  /// Current playback position in frames.
  std::size_t position() const noexcept { return pos_; }
  void seek(std::size_t frame) noexcept {
    pos_ = length_frames() ? frame % length_frames() : 0;
  }

  /// Pull `out.frames()` frames into `out` (stereo), advancing and looping.
  /// Allocation-free.
  void read_looped(AudioBuffer& out) noexcept;

  /// Pull frames at a playback rate with linear interpolation — the raw
  /// material the time-stretcher then refines. Negative rates play
  /// backwards (scratching, reverse); rate 0 outputs silence without
  /// advancing. Allocation-free.
  void read_varispeed(AudioBuffer& out, double rate) noexcept;

 private:
  AudioBuffer audio_;
  double sample_rate_ = kSampleRate;
  double bpm_ = 0;
  std::size_t pos_ = 0;
  double frac_ = 0;  // fractional read position for varispeed
};

}  // namespace djstar::audio
