// djstar/audio/ring_buffer.hpp
// Single-producer single-consumer lock-free ring buffer.
//
// DJ Star streams decoded audio from a disk/decoder thread into the
// real-time engine; this is the queue between them. One writer thread,
// one reader thread, wait-free on both sides.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

namespace djstar::audio {

/// SPSC ring buffer of trivially-copyable elements. Capacity is rounded up
/// to a power of two; one slot is sacrificed to distinguish full from empty.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  /// Usable capacity (elements).
  std::size_t capacity() const noexcept { return buf_.size() - 1; }

  /// Elements currently readable. Exact when called from the consumer,
  /// a lower bound when called from the producer.
  std::size_t size() const noexcept {
    const auto w = write_.load(std::memory_order_acquire);
    const auto r = read_.load(std::memory_order_acquire);
    return (w - r) & mask_;
  }

  std::size_t free_space() const noexcept { return capacity() - size(); }
  bool empty() const noexcept { return size() == 0; }

  /// Producer: push up to items.size() elements; returns how many fit.
  std::size_t push(std::span<const T> items) noexcept {
    const auto w = write_.load(std::memory_order_relaxed);
    const auto r = read_.load(std::memory_order_acquire);
    const std::size_t space = capacity() - ((w - r) & mask_);
    const std::size_t n = items.size() < space ? items.size() : space;
    for (std::size_t i = 0; i < n; ++i) buf_[(w + i) & mask_] = items[i];
    write_.store(w + n, std::memory_order_release);
    return n;
  }

  /// Producer: push one element; returns false when full.
  bool push_one(const T& item) noexcept { return push({&item, 1}) == 1; }

  /// Consumer: pop up to out.size() elements; returns how many were read.
  std::size_t pop(std::span<T> out) noexcept {
    const auto r = read_.load(std::memory_order_relaxed);
    const auto w = write_.load(std::memory_order_acquire);
    const std::size_t avail = (w - r) & mask_;
    const std::size_t n = out.size() < avail ? out.size() : avail;
    for (std::size_t i = 0; i < n; ++i) out[i] = buf_[(r + i) & mask_];
    read_.store(r + n, std::memory_order_release);
    return n;
  }

  /// Consumer: pop one element; returns false when empty.
  bool pop_one(T& out) noexcept { return pop({&out, 1}) == 1; }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> write_{0};
  alignas(64) std::atomic<std::size_t> read_{0};
};

}  // namespace djstar::audio
