// djstar/audio/wav.hpp
// Minimal RIFF/WAVE reader and writer (PCM16 and IEEE float32).
// Used by the examples to bounce rendered mixes to disk.
#pragma once

#include <cstdint>
#include <string>

#include "djstar/audio/buffer.hpp"

namespace djstar::audio {

/// Encoding used when writing a WAV file.
enum class WavFormat : std::uint16_t {
  kPcm16 = 1,
  kFloat32 = 3,
};

/// Write `buf` as a WAV file at `sample_rate`. Returns false on I/O error.
bool write_wav(const std::string& path, const AudioBuffer& buf,
               double sample_rate = kSampleRate,
               WavFormat format = WavFormat::kPcm16);

/// Result of reading a WAV file.
struct WavData {
  AudioBuffer buffer;
  double sample_rate = 0;
};

/// Read a PCM16 or float32 WAV file. Returns false on parse/I/O error.
bool read_wav(const std::string& path, WavData& out);

}  // namespace djstar::audio
