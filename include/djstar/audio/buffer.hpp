// djstar/audio/buffer.hpp
// Planar float audio buffers. All DSP in djstar operates on these.
//
// Real-time rule: AudioBuffer allocates only in its constructor/resize();
// every accessor used on the audio path is allocation-free and noexcept.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "djstar/support/assert.hpp"

namespace djstar::audio {

/// Sample rate used throughout the DJ Star reproduction (paper §III-A).
inline constexpr double kSampleRate = 44100.0;
/// Standard buffer size (paper: BS = 128 samples).
inline constexpr std::size_t kBlockSize = 128;
/// The resulting audio-packet deadline: BS / SR = 2.9 ms (paper §III-A).
inline constexpr double kDeadlineUs = 1e6 * static_cast<double>(kBlockSize) / kSampleRate;

/// Planar multi-channel float buffer: channel 0 samples are contiguous,
/// then channel 1, ... Planar layout keeps per-channel DSP vectorizable.
class AudioBuffer {
 public:
  AudioBuffer() = default;

  AudioBuffer(std::size_t channels, std::size_t frames)
      : channels_(channels), frames_(frames), data_(channels * frames, 0.0f) {}

  /// Reallocate to a new shape; contents are zeroed. Not real-time safe.
  void resize(std::size_t channels, std::size_t frames) {
    channels_ = channels;
    frames_ = frames;
    data_.assign(channels * frames, 0.0f);
  }

  std::size_t channels() const noexcept { return channels_; }
  std::size_t frames() const noexcept { return frames_; }
  bool empty() const noexcept { return data_.empty(); }

  /// Mutable view of one channel.
  std::span<float> channel(std::size_t c) noexcept {
    DJSTAR_ASSERT(c < channels_);
    return {data_.data() + c * frames_, frames_};
  }
  /// Read-only view of one channel.
  std::span<const float> channel(std::size_t c) const noexcept {
    DJSTAR_ASSERT(c < channels_);
    return {data_.data() + c * frames_, frames_};
  }

  float& at(std::size_t c, std::size_t i) noexcept {
    DJSTAR_ASSERT(c < channels_ && i < frames_);
    return data_[c * frames_ + i];
  }
  float at(std::size_t c, std::size_t i) const noexcept {
    DJSTAR_ASSERT(c < channels_ && i < frames_);
    return data_[c * frames_ + i];
  }

  /// Zero all samples. Allocation-free.
  void clear() noexcept {
    for (auto& s : data_) s = 0.0f;
  }

  /// Copy sample data from `src` (shapes must match). Allocation-free.
  void copy_from(const AudioBuffer& src) noexcept {
    DJSTAR_ASSERT(src.channels_ == channels_ && src.frames_ == frames_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = src.data_[i];
  }

  /// Mix (add) `src` scaled by `gain` into this buffer. Allocation-free.
  void mix_from(const AudioBuffer& src, float gain = 1.0f) noexcept {
    DJSTAR_ASSERT(src.channels_ == channels_ && src.frames_ == frames_);
    for (std::size_t i = 0; i < data_.size(); ++i)
      data_[i] += gain * src.data_[i];
  }

  /// Multiply every sample by `gain`. Allocation-free.
  void apply_gain(float gain) noexcept {
    for (auto& s : data_) s *= gain;
  }

  /// Peak absolute sample value across all channels.
  float peak() const noexcept {
    float p = 0.0f;
    for (float s : data_) {
      const float a = s < 0 ? -s : s;
      if (a > p) p = a;
    }
    return p;
  }

  /// RMS over all channels/frames.
  float rms() const noexcept;

  /// Raw interleaved-by-plane storage (testing/serialization).
  std::span<const float> raw() const noexcept { return data_; }
  std::span<float> raw() noexcept { return data_; }

 private:
  std::size_t channels_ = 0;
  std::size_t frames_ = 0;
  std::vector<float> data_;
};

/// Convert decibels to linear gain.
float db_to_gain(float db) noexcept;
/// Convert linear gain to decibels (floored at -120 dB for gain <= 0).
float gain_to_db(float gain) noexcept;

}  // namespace djstar::audio
