// djstar/support/flight.hpp
// Always-on flight recorder (DESIGN.md §10).
//
// TraceRecorder must be armed per run and drops spans once a lane fills —
// fine for capturing one Fig.-11 schedule, useless for post-mortems. The
// flight recorder is the black box: every worker continuously writes
// spans into its own fixed-size overwriting ring (newest span evicts the
// oldest; it never fills up and never allocates after configure()), and
// when something goes wrong — deadline miss, degradation step, watchdog
// fire — the owner dumps the last N cycles as a Chrome/Perfetto trace
// showing exactly what every thread was doing leading into the incident.
//
// Thread safety: record() is called by the owning worker only (one lane
// per worker, same contract as TraceRecorder). configure() and the
// collect/dump calls run between cycles, when workers are quiescent at
// the executor's cycle barrier; begin_cycle() is called by the cycle
// driver and read by workers through that same barrier.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "djstar/support/trace.hpp"

namespace djstar::support {

/// One recorded span tagged with the cycle it belongs to (span times are
/// relative to that cycle's start, as everywhere else).
struct FlightSpan {
  TraceSpan span;
  std::uint64_t cycle = 0;
};

class FlightRecorder {
 public:
  FlightRecorder() = default;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Allocate `threads` lanes of `spans_per_thread` slots (rounded up to
  /// a power of two). Not real-time safe; call at setup or executor
  /// rebuild, never mid-cycle. Previously recorded spans are discarded.
  void configure(std::uint32_t threads, std::size_t spans_per_thread = 2048);

  /// Drop all lanes; record() becomes a no-op.
  void disable() noexcept;

  bool enabled() const noexcept { return !lanes_.empty(); }
  std::uint32_t thread_count() const noexcept {
    return static_cast<std::uint32_t>(lanes_.size());
  }

  /// Advance the cycle tag for subsequently recorded spans. Called by
  /// the cycle driver between cycles; the executor's cycle-start
  /// synchronization publishes it to the workers.
  void begin_cycle() noexcept {
    cycle_.store(cycle_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  }
  std::uint64_t cycle() const noexcept {
    return cycle_.load(std::memory_order_relaxed);
  }

  /// Record a span into lane `thread`, overwriting the lane's oldest
  /// entry when the ring is full. Wait-free, allocation-free; must only
  /// be called from the owning thread.
  void record(std::uint32_t thread, const TraceSpan& span) noexcept {
    if (thread >= lanes_.size()) return;
    Lane& lane = lanes_[thread];
    FlightSpan& slot = lane.ring[lane.next & lane.mask];
    slot.span = span;
    slot.cycle = cycle_.load(std::memory_order_relaxed);
    ++lane.next;
  }

  /// Spans recorded since configure() (monotonic; exceeds ring capacity
  /// once overwriting has begun).
  std::uint64_t recorded(std::uint32_t thread) const noexcept;
  std::uint64_t total_recorded() const noexcept;

  /// Merge every lane's retained spans from the last `cycles` cycles,
  /// stitched onto one timeline: ts = (cycle - window_start) * period_us
  /// + span.begin_us, sorted by (thread, ts). Call between cycles.
  std::vector<TraceSpan> collect_last(std::uint64_t cycles,
                                      double period_us) const;

  /// Append the retained spans of exactly cycle `cycle` (times left
  /// relative to that cycle's start) to `out`, sorted by (thread, begin).
  /// `out` is cleared first but keeps its capacity, so the per-cycle
  /// attribution path reuses one scratch vector and stops allocating
  /// once it has seen the largest cycle. Call between cycles.
  void collect_cycle(std::uint64_t cycle, std::vector<TraceSpan>& out) const;

  /// Dump the last `cycles` cycles as Chrome trace_event JSON (one
  /// process, tid = worker). Returns false on I/O failure.
  bool dump_chrome_trace(const std::string& path, std::uint64_t cycles,
                         double period_us,
                         std::string_view process_name = "djstar-flight",
                         std::uint32_t pid = 0) const;

 private:
  struct Lane {
    std::vector<FlightSpan> ring;  // size() == capacity (power of two)
    std::uint64_t next = 0;        // monotonic write cursor
    std::uint64_t mask = 0;
  };
  std::vector<Lane> lanes_;
  std::atomic<std::uint64_t> cycle_{0};
};

}  // namespace djstar::support
