// djstar/support/time.hpp
// Monotonic clock helpers. All engine/executor timing uses microseconds
// as double, matching the paper's reporting units.
#pragma once

#include <chrono>
#include <cstdint>

namespace djstar::support {

using Clock = std::chrono::steady_clock;

/// Monotonic timestamp.
inline Clock::time_point now() noexcept { return Clock::now(); }

/// Elapsed microseconds between two timestamps.
inline double elapsed_us(Clock::time_point t0, Clock::time_point t1) noexcept {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// Microseconds since `t0`.
inline double since_us(Clock::time_point t0) noexcept {
  return elapsed_us(t0, now());
}

/// RAII stopwatch accumulating into a double (microseconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink_us) noexcept
      : sink_(sink_us), t0_(now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_ += since_us(t0_); }

 private:
  double& sink_;
  Clock::time_point t0_;
};

/// Spin for approximately `us` microseconds of wall time. Used by tests
/// and by the synthetic-load node to emulate compute of a known size.
void spin_for_us(double us) noexcept;

}  // namespace djstar::support
