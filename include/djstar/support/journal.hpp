// djstar/support/journal.hpp
// Structured event journal (DESIGN.md §10).
//
// The degradation ladder, the watchdog, fault injection, and the serve
// host all make discrete decisions that used to vanish once their local
// log vector was discarded. The journal gives them one bounded, typed,
// timestamped stream: producers push fixed-size Event records through a
// lock-free bounded MPSC ring (Vyukov-style sequence slots — no locks,
// no allocation, drops counted when full), and a single consumer drains
// between cycles or post-mortem, exporting JSONL.
//
// Real-time safety: push() is O(1), allocation-free, and never blocks —
// under pathological contention a producer retries its CAS, and a full
// ring drops (counted) rather than stalling the audio path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "djstar/support/time.hpp"

namespace djstar::support {

/// The event taxonomy. One enum across layers so a merged fleet journal
/// stays sortable and greppable.
enum class EventKind : std::uint8_t {
  kDeadlineMiss = 0,  ///< APC total exceeded the deadline (a=level, value=total_us)
  kDegrade,           ///< ladder stepped down (a=from, b=to)
  kRecover,           ///< ladder stepped up (a=from, b=to)
  kWatchdogCancel,    ///< watchdog cancelled a stuck cycle
  kFaultInjected,     ///< chaos fault fired (a=node, b=FaultKind)
  kAdmit,             ///< session admitted (a=session id)
  kQueuePark,         ///< session parked in the admission queue (a=id)
  kReject,            ///< session rejected (a=id)
  kShed,              ///< session evicted by the overload handler (a=id)
  kOverload,          ///< overload handler tripped (value=elapsed_us)
  kSessionClosed,     ///< session closed by its owner (a=id)
  kFlightDump,        ///< flight recorder dumped (a=trigger EventKind)
  kWorkerQuarantine,  ///< medic quarantined a worker (a=total quarantines)
  kWorkerRespawn,     ///< replacement worker rejoined (a=total respawns)
  kBreakerTrip,       ///< session circuit breaker opened (a=id, b=failures)
  kBreakerProbe,      ///< half-open probe launched (a=id, value=backoff_us)
  kBreakerClose,      ///< breaker closed after clean probes (a=id)
  kSessionRestored,   ///< tripped session rebuilt from snapshot (a=id)
  kNetConnect,        ///< net front-end accepted a connection (a=fd)
  kNetDisconnect,     ///< connection closed (a=fd, b=1 when server-initiated)
  kNetProtocolError,  ///< malformed frame stream (a=fd)
  kNetBackpressure,   ///< realtime subscriber stalled; disconnecting (a=fd)
  kNetAudioDrop,      ///< drop-oldest shed audio frames (a=fd, b=frames)
  kBlameReport,       ///< miss attribution header (a=top node, b=top worker,
                      ///< value=cp wait us); ranked entries follow as kBlame
  kBlame,             ///< one ranked blame entry (a=node, b=worker,
                      ///< value=delta vs EWMA baseline, us)
  kCpDrift,           ///< realized critical path drifted off the static
                      ///< plan's baseline; plan invalidated (value=ratio)
  kSloAlert,          ///< SLO escalated (a=scope: session id, 0=fleet/engine,
                      ///< -1-q=QoS class q; b=new state 1=warn 2=page,
                      ///< value=budget remaining)
  kSloRecover,        ///< SLO de-escalated (a=scope, b=new state,
                      ///< value=budget remaining)
};

const char* to_string(EventKind k) noexcept;

/// One journal record. Fixed-size POD: producers fill the payload
/// fields, the journal stamps seq and the monotonic timestamp.
struct Event {
  std::uint64_t seq = 0;    ///< publish order (gap-free absent drops)
  double t_us = 0;          ///< monotonic us since journal construction
  EventKind kind = EventKind::kDeadlineMiss;
  std::uint64_t cycle = 0;  ///< producer's cycle / fleet tick index
  std::int64_t a = 0;       ///< payload (see EventKind comments)
  std::int64_t b = 0;
  double value = 0;
};

/// Bounded multi-producer single-consumer event log.
class EventJournal {
 public:
  /// `capacity` is rounded up to a power of two; all slots are
  /// preallocated here, never on push.
  explicit EventJournal(std::size_t capacity = 4096);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Publish an event. Lock-free and allocation-free; callable from any
  /// thread (workers, the watchdog, control planes). Returns false when
  /// the ring is full (the drop is counted).
  bool push(EventKind kind, std::uint64_t cycle, std::int64_t a = 0,
            std::int64_t b = 0, double value = 0) noexcept;

  /// Pop every published event, in publish order, into `out` (appended).
  /// Single consumer only. Returns the number drained.
  std::size_t drain(std::vector<Event>& out);

  /// Convenience: drain into a fresh vector.
  std::vector<Event> drain_all();

  std::size_t capacity() const noexcept { return buf_size_; }
  /// Events rejected because the ring was full.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Events successfully published since construction.
  std::uint64_t published() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }

  /// Monotonic microseconds since this journal was constructed (the
  /// timebase of Event::t_us).
  double now_us() const noexcept { return since_us(t0_); }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};
    Event ev;
  };

  std::size_t buf_size_ = 0;  // power of two
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> enqueue_{0};
  alignas(64) std::uint64_t dequeue_ = 0;  // single consumer
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> published_{0};
  Clock::time_point t0_ = now();
};

/// Render events as JSONL: one {"seq":..,"t_us":..,"kind":"..",...}
/// object per line.
std::string to_jsonl(std::span<const Event> events);

/// Write events as JSONL to `path`. Returns false on I/O failure.
bool write_jsonl(const std::string& path, std::span<const Event> events);

}  // namespace djstar::support
