// djstar/support/build_info.hpp
// Binary identity + uptime on the shared registry (DESIGN.md §15).
//
// A scrape should answer "what is running and for how long" without
// shelling into the box: djstar_build_info is the Prometheus-idiomatic
// constant-1 gauge whose labels carry the version, the git sha the
// binary was configured from, and the sanitizer flavor (a TSan build's
// latencies are not comparable to a release build's — the label keeps
// dashboards honest); djstar_uptime_seconds is wall uptime since static
// initialization, refreshed by whoever owns the registry's tick.
#pragma once

#include "djstar/support/metrics.hpp"

namespace djstar::support {

struct BuildInfoFields {
  const char* version;
  const char* git_sha;
  const char* sanitizer;
};

/// The values baked in at configure time (CMake compile definitions;
/// "unknown"/"none" fallbacks when built outside the tree).
const BuildInfoFields& build_info() noexcept;

/// Wall seconds since this module's static initialization (≈ process
/// start for any binary linking djstar_support).
double process_uptime_seconds() noexcept;

/// Register djstar_build_info (constant 1, labeled) and
/// djstar_uptime_seconds on `reg`; both are set immediately and the
/// uptime gauge is returned so the owner can refresh it per tick.
/// Idempotent per registry (register-or-fetch semantics).
Gauge register_build_info(MetricsRegistry& reg);

}  // namespace djstar::support
