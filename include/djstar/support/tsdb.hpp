// djstar/support/tsdb.hpp
// In-process time-series store (DESIGN.md §15).
//
// The metrics registry answers "what is the value now"; SLO evaluation
// needs "what happened over the last N seconds". This store keeps a
// fixed-memory ring of sealed aggregation windows per series:
//
//   - record() is the hot path: writer-thread-only, wait-free,
//     allocation-free — it folds the sample into the series' open-window
//     accumulator (count/sum/min/max), nothing else.
//   - advance(now_us) is called once per engine tick with the caller's
//     clock (the serve host passes its *virtual* fleet clock, the engine
//     passes cycles × deadline — both deterministic, which is what makes
//     SLO tests reproducible). When `now_us` crosses a window boundary
//     the open accumulators are sealed into the ring under a mutex;
//     idle gaps seal as empty windows so window indices always map to
//     wall (virtual) time.
//   - Histogram-backed series snapshot an existing live Histogram at each
//     seal and store the windowed delta's percentiles via
//     Histogram::delta_since — the same rollover-safe windowing the
//     attribution cache uses.
//   - Readers (debug HTTP, SLO evaluation) take the seal mutex and copy;
//     render_json() builds the /debug/timeseries payload reader-side, so
//     the engine thread never renders JSON for a socket.
//
// Memory is bounded at registration time: retention × sizeof(Window) per
// series, plus one Histogram copy for histogram-backed series. Nothing
// on the record() path allocates or locks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "djstar/support/histogram.hpp"

namespace djstar::support {

struct TsdbConfig {
  double window_us = 1'000'000.0;  ///< aggregation window (default 1 s)
  std::size_t retention = 600;     ///< sealed windows kept per series
};

/// One sealed aggregation window. p50/p99 are populated only for
/// histogram-backed series (from the window's Histogram delta).
struct TsWindow {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p99 = 0;
};

namespace detail {
struct TsSeries;
}  // namespace detail

class TimeSeriesStore {
 public:
  /// Opaque series handle. Trivially copyable; a default-constructed
  /// handle is an inert no-op (mirrors the metrics handles). Invalidated
  /// by remove_series() of its series — the owner drops it.
  class SeriesRef {
   public:
    SeriesRef() = default;
    explicit operator bool() const noexcept { return s_ != nullptr; }

   private:
    friend class TimeSeriesStore;
    explicit SeriesRef(detail::TsSeries* s) noexcept : s_(s) {}
    detail::TsSeries* s_ = nullptr;
  };

  /// Reader-side copy of a series' sealed windows (oldest first).
  struct SeriesSnapshot {
    std::string name;
    double window_us = 0;
    bool histogram = false;
    std::uint64_t first_index = 0;  ///< global index of windows.front()
    std::vector<TsWindow> windows;
  };

  explicit TimeSeriesStore(TsdbConfig cfg = {});
  ~TimeSeriesStore();
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Register a counter/sample series. Allocates (ring storage) — call at
  /// setup or from the control plane, never mid-cycle. Throws
  /// std::invalid_argument on an empty or duplicate name.
  SeriesRef add_series(std::string_view name);

  /// Register a series backed by a live Histogram owned by the caller
  /// (which must outlive the series). Each seal stores the delta since
  /// the previous seal: count plus p50/p99 of the windowed distribution.
  SeriesRef add_histogram_series(std::string_view name,
                                 const Histogram* live);

  /// Drop a series (sessions come and go). Outstanding SeriesRef handles
  /// to it become dangling — the owner discards them with the series.
  void remove_series(std::string_view name);

  /// Hot path: fold `v` into the open window. Writer thread only;
  /// wait-free, allocation-free, lock-free.
  void record(SeriesRef s, double v) noexcept;

  /// Advance the store clock (writer thread). Seals one window per full
  /// `window_us` crossed — including empty gap windows — and returns how
  /// many were sealed. `now_us` must be monotonic non-decreasing.
  std::size_t advance(double now_us);

  double window_us() const noexcept { return cfg_.window_us; }
  std::size_t retention() const noexcept { return cfg_.retention; }
  double now_us() const noexcept { return now_us_; }
  /// Total windows sealed since construction (monotonic; SLO evaluation
  /// uses it to run once per seal instead of once per cycle).
  std::uint64_t sealed_windows() const noexcept { return sealed_; }
  std::size_t series_count() const;

  /// Writer-thread aggregate of the newest `n` sealed windows (fewer if
  /// fewer exist; n == 0 means all retained). min/max skip empty windows;
  /// p50/p99 are the max across windows (conservative for alerting).
  TsWindow aggregate(SeriesRef s, std::size_t n) const;

  /// Reader-side copy (any thread). Returns false when `name` is not
  /// registered. `max_windows == 0` means all retained windows.
  bool snapshot(std::string_view name, std::size_t max_windows,
                SeriesSnapshot& out) const;

  std::vector<std::string> series_names() const;

  /// Reader-side JSON for GET /debug/timeseries: the series' newest
  /// `max_windows` sealed windows, or {"error":...,"series":[...]} with
  /// the series index when `name` is unknown.
  std::string render_json(std::string_view name,
                          std::size_t max_windows) const;

  /// Reader-side JSON index: {"window_us":..,"retention":..,"series":[..]}.
  std::string index_json() const;

 private:
  void seal_one_window_locked();

  TsdbConfig cfg_;
  double now_us_ = 0;
  double window_start_us_ = 0;
  std::uint64_t sealed_ = 0;
  mutable std::mutex mutex_;  ///< guards ring storage + series list
  std::vector<std::unique_ptr<detail::TsSeries>> series_;
};

}  // namespace djstar::support
