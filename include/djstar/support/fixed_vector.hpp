// djstar/support/fixed_vector.hpp
// Fixed-capacity inline vector: no heap, no exceptions, O(1) push/pop —
// the container for bounded collections on the real-time path.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "djstar/support/assert.hpp"

namespace djstar::support {

/// A vector with inline storage for up to N elements. push_back beyond
/// capacity asserts (real-time code sizes its buffers up front; silently
/// dropping would hide bugs).
template <typename T, std::size_t N>
class FixedVector {
 public:
  FixedVector() = default;

  FixedVector(std::initializer_list<T> init) {
    DJSTAR_ASSERT(init.size() <= N);
    for (const T& v : init) push_back(v);
  }

  FixedVector(const FixedVector& o) {
    for (const T& v : o) push_back(v);
  }
  FixedVector& operator=(const FixedVector& o) {
    if (this != &o) {
      clear();
      for (const T& v : o) push_back(v);
    }
    return *this;
  }
  FixedVector(FixedVector&& o) noexcept {
    for (T& v : o) push_back(std::move(v));
    o.clear();
  }
  FixedVector& operator=(FixedVector&& o) noexcept {
    if (this != &o) {
      clear();
      for (T& v : o) push_back(std::move(v));
      o.clear();
    }
    return *this;
  }
  ~FixedVector() { clear(); }

  static constexpr std::size_t capacity() noexcept { return N; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == N; }

  void push_back(const T& v) {
    DJSTAR_ASSERT_MSG(size_ < N, "FixedVector overflow");
    new (slot(size_)) T(v);
    ++size_;
  }
  void push_back(T&& v) {
    DJSTAR_ASSERT_MSG(size_ < N, "FixedVector overflow");
    new (slot(size_)) T(std::move(v));
    ++size_;
  }
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    DJSTAR_ASSERT_MSG(size_ < N, "FixedVector overflow");
    T* p = new (slot(size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void pop_back() {
    DJSTAR_ASSERT(size_ > 0);
    --size_;
    std::launder(slot(size_))->~T();
  }

  void clear() noexcept {
    while (size_ > 0) pop_back();
  }

  T& operator[](std::size_t i) noexcept {
    DJSTAR_ASSERT(i < size_);
    return *std::launder(slot(i));
  }
  const T& operator[](std::size_t i) const noexcept {
    DJSTAR_ASSERT(i < size_);
    return *std::launder(slot(i));
  }
  T& back() noexcept { return (*this)[size_ - 1]; }
  const T& back() const noexcept { return (*this)[size_ - 1]; }
  T& front() noexcept { return (*this)[0]; }
  const T& front() const noexcept { return (*this)[0]; }

  T* begin() noexcept { return std::launder(slot(0)); }
  T* end() noexcept { return std::launder(slot(0)) + size_; }
  const T* begin() const noexcept { return std::launder(slot(0)); }
  const T* end() const noexcept { return std::launder(slot(0)) + size_; }

 private:
  T* slot(std::size_t i) noexcept {
    return reinterpret_cast<T*>(storage_) + i;
  }
  const T* slot(std::size_t i) const noexcept {
    return reinterpret_cast<const T*>(storage_) + i;
  }
  alignas(T) unsigned char storage_[sizeof(T) * N];
  std::size_t size_ = 0;
};

}  // namespace djstar::support
