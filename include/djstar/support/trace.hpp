// djstar/support/trace.hpp
// Per-thread span recording for schedule visualization (paper Fig. 11).
//
// Executors record one TraceSpan per node execution (plus optional wait
// spans). The recorder preallocates; record() after arming never allocates,
// so tracing can stay enabled during timed runs with bounded overhead.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace djstar::support {

/// What a worker thread was doing during a span of time.
enum class SpanKind : std::uint8_t {
  kRun,       ///< executing a graph node
  kBusyWait,  ///< spinning on an unmet dependency (paper: gray boxes)
  kSleep,     ///< parked on a condition variable (paper: white areas)
  kSteal,     ///< probing other threads' deques
  kOverhead,  ///< queue management / dependency checking
  kFused,     ///< envelope around a multi-node fused unit (graph_opt);
              ///< the member kRun spans nest inside it
};

const char* to_string(SpanKind k) noexcept;

/// One contiguous activity interval on one worker thread.
/// Times are in microseconds relative to the start of the traced cycle.
struct TraceSpan {
  double begin_us = 0;
  double end_us = 0;
  std::uint32_t thread = 0;
  std::int32_t node = -1;  ///< node id for kRun/kBusyWait, -1 otherwise
  SpanKind kind = SpanKind::kRun;
  /// Victim worker the unit was stolen from, -1 when the unit ran on the
  /// worker that published it. Lets attribution follow cross-worker
  /// dependency chains unambiguously (a stolen kRun's predecessor lane is
  /// the victim's, not the runner's).
  std::int32_t steal_from = -1;

  double duration_us() const noexcept { return end_us - begin_us; }
};

/// Fixed-capacity span sink shared by all workers of one executor run.
/// Thread safety: each worker writes only to its own lane; lanes are
/// merged on collect().
class TraceRecorder {
 public:
  TraceRecorder() = default;

  /// Prepare `threads` lanes with `capacity_per_thread` preallocated spans
  /// each, and mark the recorder armed. Not real-time safe.
  void arm(std::uint32_t threads, std::size_t capacity_per_thread = 4096);

  /// Disarm and drop all recorded spans.
  void disarm() noexcept;

  bool armed() const noexcept { return armed_; }

  /// Append a span to lane `thread`. No-op when disarmed; when the lane
  /// is full the span is dropped and counted (see dropped()).
  /// Allocation-free. Must only be called from the owning thread.
  void record(std::uint32_t thread, const TraceSpan& span) noexcept;

  /// Drop recorded spans (and drop counters) but keep the lanes armed at
  /// their existing capacity. Allocation-free, so per-cycle profiling can
  /// reuse one recorder as a cycle-scoped span buffer. Must not run
  /// concurrently with record() (call between cycles).
  void clear_spans() noexcept;

  /// Merge all lanes, sorted by (thread, begin). Clears nothing. When
  /// truncated() is true the result is missing total_dropped() spans
  /// (the tails of the full lanes); Chrome-trace output carries the same
  /// information as a "dropped spans" instant event.
  std::vector<TraceSpan> collect() const;

  /// collect() into a caller-owned vector (cleared, capacity kept), so a
  /// per-cycle profiling loop stays allocation-free after warm-up.
  void collect_into(std::vector<TraceSpan>& out) const;

  /// Spans dropped from lane `thread` because it was full.
  std::uint64_t dropped(std::uint32_t thread) const noexcept;
  /// Spans dropped across all lanes since arm().
  std::uint64_t total_dropped() const noexcept;
  /// True when any lane has dropped spans (collect() is incomplete).
  bool truncated() const noexcept { return total_dropped() != 0; }

  std::uint32_t thread_count() const noexcept {
    return static_cast<std::uint32_t>(lanes_.size());
  }

  /// Write this recorder's spans as Chrome trace_event JSON, loadable in
  /// chrome://tracing and Perfetto: one complete ("X") event per span
  /// under process `pid` (tid = worker). Returns false on I/O failure.
  bool write_chrome_trace(const std::string& path, std::uint32_t pid = 0,
                          std::string_view process_name = "djstar") const;

 private:
  struct Lane {
    std::vector<TraceSpan> spans;  // size() == used entries
    std::size_t capacity = 0;
    std::uint64_t dropped = 0;  // record() calls refused because full
  };
  std::vector<Lane> lanes_;
  bool armed_ = false;
};

/// One process (pid) worth of spans for a combined multi-session trace.
/// The serve layer emits one TraceProcess per hosted session so a fleet
/// schedule renders as parallel process tracks in Perfetto.
struct TraceProcess {
  std::string name;             ///< process_name metadata shown in the UI
  std::uint32_t pid = 0;        ///< must be unique within one trace file
  std::vector<TraceSpan> spans; ///< e.g. TraceRecorder::collect()
  /// Spans lost before export (e.g. TraceRecorder::total_dropped()).
  /// Non-zero counts render as a "dropped spans" instant event so a
  /// truncated trace is visibly truncated in the viewer.
  std::uint64_t dropped_spans = 0;
};

/// Write Chrome trace_event JSON ({"traceEvents": [...]}) covering all
/// `processes`: per process a process_name metadata record plus one
/// complete ("X") event per span, with tid = the span's worker thread
/// and ts/dur in microseconds. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        std::span<const TraceProcess> processes);

}  // namespace djstar::support
