// djstar/support/slo.hpp
// Declarative SLOs with multi-window multi-burn-rate alerting
// (DESIGN.md §15).
//
// The paper's objective — ≤5 missed deadlines in 10k APCs — is a ratio
// over time, not an instantaneous counter. An SloTracker watches one
// scope (the engine, the fleet, one QoS class, or one session) against a
// declarative SloSpec of three objectives:
//
//   - deadline-miss ratio (miss predicate byte-identical to
//     DeadlineMonitor's: total_us > deadline_us),
//   - p99 cycle latency (fraction of cycles slower than a target),
//   - availability (fraction of cycles that completed cleanly —
//     faults, cancellations, NaN flushes, and safe-mode fallbacks are
//     "down").
//
// Each objective burns an error budget. Following the Google SRE
// workbook, an objective *pages* when a fast window pair (5 m and 1 h at
// the default 1 s tsdb window) both burn faster than `fast_burn`×
// budget, and *warns* when a slow pair (30 m / 6 h) both exceed
// `slow_burn`× — the short window makes alerts recover quickly, the
// long window filters blips. Window lengths are expressed in tsdb
// windows and scale with the store's (virtual) clock, which is what
// makes the whole state machine deterministic under test.
//
// Escalation is stepwise with hysteresis: ok → warn → page one level per
// sealed-window evaluation, and one level back down only after
// `recover_evals` consecutive clean evaluations. A page is therefore
// always preceded by a warn — the CycleSupervisor hook gets its
// early-degradation signal before the pager fires.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "djstar/support/tsdb.hpp"

namespace djstar::support {

enum class SloAlertState : std::uint8_t { kOk = 0, kWarn = 1, kPage = 2 };

const char* to_string(SloAlertState s) noexcept;

/// Declarative objectives for one scope. Ratios are error *budgets*
/// (allowed bad fraction); a zero p99_us disables the latency objective.
struct SloSpec {
  double miss_ratio = 0.005;   ///< allowed deadline-miss fraction (paper:
                               ///< 5 in 10k ⇒ 5e-4; serving default 5e-3)
  double p99_us = 0;           ///< latency threshold; 0 = objective off
  double p99_budget = 0.01;    ///< allowed fraction slower than p99_us
  double availability = 0.999; ///< good-cycle target (budget = 1 - this)
};

/// Burn-rate window geometry, in tsdb windows (so tests can shrink the
/// clock). Zero-initialized counts mean "derive sre_defaults at enable".
struct SloWindows {
  std::size_t fast_short = 0;  ///< page pair: 5 m at 1 s windows
  std::size_t fast_long = 0;   ///< 1 h
  std::size_t slow_short = 0;  ///< warn pair: 30 m
  std::size_t slow_long = 0;   ///< 6 h
  double fast_burn = 14.4;     ///< page threshold (2% budget in 1 h)
  double slow_burn = 6.0;      ///< warn threshold (5% budget in 6 h)
  unsigned recover_evals = 2;  ///< clean evaluations per de-escalation

  /// The SRE-workbook 5m/1h/30m/6h pairs scaled to `window_us`, each
  /// clamped to at least one window.
  static SloWindows sre_defaults(double window_us) noexcept;

  bool valid() const noexcept {
    return fast_short > 0 && fast_long >= fast_short && slow_short > 0 &&
           slow_long >= slow_short && fast_burn > 0 && slow_burn > 0 &&
           recover_evals > 0;
  }
};

/// Full SLO engine configuration (engine and serve layers embed one).
struct SloConfig {
  bool enabled = false;
  SloSpec spec{};
  TsdbConfig tsdb{};
  SloWindows windows{};  ///< zeroed counts ⇒ sre_defaults(tsdb.window_us)
  /// Chrome-trace path a page-level alert dumps the flight recorder to
  /// ("" = count the incident, skip the file).
  std::string incident_dump_path;

  /// Parse DJSTAR_SLO=off|on[,<miss_ratio>[,<p99_us>]]. Unset returns
  /// nullopt; set-but-empty, unknown modes, malformed or out-of-range
  /// numbers, and trailing fields all throw std::invalid_argument (the
  /// DJSTAR_PROF/DJSTAR_NET contract: a typo'd production env must fail
  /// loudly, not silently run unobserved).
  static std::optional<SloConfig> from_env();
};

/// One objective's burn rates at the last evaluation.
struct SloBurnRates {
  double fast_short = 0;
  double fast_long = 0;
  double slow_short = 0;
  double slow_long = 0;
  bool page_firing = false;
  bool warn_firing = false;
};

struct SloStatus {
  SloAlertState state = SloAlertState::kOk;
  /// Error budget left over the slow_long window, worst objective,
  /// clamped to [0, 1] (0 = exhausted).
  double budget_remaining = 1.0;
  SloBurnRates miss;
  SloBurnRates latency;
  SloBurnRates avail;
  std::uint64_t evals = 0;
};

/// One scope's SLO: fed per cycle on the writer thread, evaluated once
/// per sealed tsdb window. Owns its four series in `store` (removed on
/// destruction, so session trackers can come and go with their sessions).
class SloTracker {
 public:
  /// Registers `<prefix>_cycles/_misses/_slow/_bad` in `store`, which
  /// must outlive the tracker. `windows` must be valid().
  SloTracker(TimeSeriesStore& store, std::string prefix, SloSpec spec,
             SloWindows windows);
  ~SloTracker();
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Hot path (writer thread): account one cycle. `missed` must come
  /// from the caller's DeadlineMonitor-identical predicate; `good` is
  /// the availability bit (clean or merely-late cycles are up, faulted /
  /// cancelled / NaN / safe-mode cycles are down).
  void record_cycle(double latency_us, bool missed, bool good) noexcept;

  /// Writer thread: re-evaluate if the store sealed new windows since
  /// the last call (no-op otherwise — callers may invoke every tick).
  /// Returns true when the alert state changed.
  bool evaluate();

  const SloStatus& status() const noexcept { return status_; }
  const SloSpec& spec() const noexcept { return spec_; }
  const SloWindows& windows() const noexcept { return win_; }
  const std::string& prefix() const noexcept { return prefix_; }

  /// Append this scope's status as a JSON object (writer thread; used to
  /// build the per-tick /debug/slo cache).
  void append_json(std::string& out) const;

 private:
  double burn_rate(std::size_t over_windows,
                   TimeSeriesStore::SeriesRef bad, double budget) const;
  SloBurnRates rates_for(TimeSeriesStore::SeriesRef bad,
                         double budget) const;

  TimeSeriesStore& store_;
  std::string prefix_;
  SloSpec spec_;
  SloWindows win_;
  TimeSeriesStore::SeriesRef s_cycles_;
  TimeSeriesStore::SeriesRef s_misses_;
  TimeSeriesStore::SeriesRef s_slow_;
  TimeSeriesStore::SeriesRef s_bad_;
  SloStatus status_;
  std::uint64_t last_eval_seal_ = 0;
  unsigned clean_evals_ = 0;
};

}  // namespace djstar::support
