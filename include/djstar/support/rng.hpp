// djstar/support/rng.hpp
// Deterministic, allocation-free pseudo-random number generators.
//
// The audio path and the scheduling simulator both need fast, reproducible
// randomness (synthetic program material, per-iteration node durations,
// steal-victim selection).  std::mt19937 is reproducible but heavy; these
// are the standard splitmix64 / xoshiro256** generators.
#pragma once

#include <cstdint>
#include <limits>

namespace djstar::support {

/// SplitMix64: tiny 64-bit generator; also used to seed Xoshiro256.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast general-purpose 64-bit generator (Blackman/Vigna).
/// Satisfies UniformRandomBitGenerator so it works with <random>
/// distributions, but the helpers below avoid <random> entirely.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform float in [-1, 1); handy for dither / noise sources.
  constexpr float bipolar() noexcept {
    return static_cast<float>(uniform() * 2.0 - 1.0);
  }

  /// Uniform integer in [0, n). n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Plain modulo: bias is negligible for the small n used here
    // (victim selection, pattern steps), and it avoids __int128.
    return next() % n;
  }

  /// Standard normal via Box-Muller (polar discards are acceptable:
  /// this is never on the real-time path).
  double normal() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace djstar::support
