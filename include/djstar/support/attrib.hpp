// djstar/support/attrib.hpp
// Deadline-miss attribution: realized-critical-path reconstruction and
// blame ranking over one cycle's span timeline (DESIGN.md §14).
//
// TraceRecorder/FlightRecorder answer "what was every thread doing";
// this layer answers "why did the cycle take this long". Following He et
// al. ("Longer Is Shorter"), a DAG cycle's response time is governed by
// its realized critical path: the chain of kRun spans in which each step
// could not have started earlier because it was bound either by a graph
// dependency or by its worker's previous span. Walking that chain back
// from the last-finishing node partitions the makespan exactly into run
// time and classified wait gaps (steal-idle / barrier / supervisor
// overhead), so the reported path always reconciles with the measured
// cycle time — by construction, not by luck.
//
// The analyzer is layer-clean: it sees only spans plus a generic
// predecessor adjacency (node id -> predecessor node ids), so it knows
// nothing about core::CompiledGraph; engine/profiler adapts a graph into
// that shape once at setup. analyze() reuses internal scratch buffers
// and is allocation-free at steady state, making per-cycle always-on use
// affordable (bench/obs_overhead gates it below 2% of APC time).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "djstar/support/trace.hpp"

namespace djstar::support::attrib {

/// Why a critical-path step (or a slice of a worker's cycle) was not
/// making forward progress.
enum class GapKind : std::uint8_t {
  kNone,       ///< no gap (step started the instant its constraint cleared)
  kStealIdle,  ///< covered by kSteal/kSleep/kBusyWait spans: the worker
               ///< was looking for work that had not been published yet
  kBarrier,    ///< leading wait at the cycle-start barrier before the
               ///< worker's first activity
  kOverhead,   ///< uncovered gap: queue management / supervisor overhead
};

const char* to_string(GapKind k) noexcept;

/// One step of the realized critical path, in source -> sink order.
struct PathStep {
  std::int32_t node = -1;
  std::uint32_t worker = 0;
  std::int32_t steal_from = -1;  ///< victim worker when the unit was stolen
  double run_begin_us = 0;
  double run_end_us = 0;
  double wait_us = 0;        ///< gap between the binding constraint
                             ///< clearing and run_begin_us
  GapKind wait_kind = GapKind::kNone;
  /// True when the binding constraint was a graph dependency (the
  /// predecessor node below); false when it was the worker's own
  /// previous span (pipeline constraint).
  bool dep_bound = false;
  std::int32_t pred_node = -1;  ///< binding predecessor when dep_bound

  double run_us() const noexcept { return run_end_us - run_begin_us; }
};

/// Where one worker's share of the makespan went.
struct WorkerBucket {
  double run_us = 0;         ///< executing nodes
  double steal_idle_us = 0;  ///< kSteal + kSleep + kBusyWait
  double barrier_us = 0;     ///< after its last span, waiting for stragglers
  double overhead_us = 0;    ///< residual: queue management / supervisor
  std::uint32_t runs = 0;    ///< kRun spans executed
  std::uint32_t steals = 0;  ///< kRun spans that were stolen (steal_from >= 0)
};

/// The full attribution of one cycle. cp_run_us + cp_wait_us equals
/// makespan_us exactly (the path partitions the timeline).
struct CycleAttribution {
  std::uint64_t cycle = 0;
  double makespan_us = 0;  ///< end of the last-finishing kRun span
  double cp_run_us = 0;    ///< time the critical path spent executing
  double cp_wait_us = 0;   ///< time the critical path spent waiting
  double cp_steal_idle_us = 0;  ///< cp_wait_us classified kStealIdle
  double cp_barrier_us = 0;     ///< cp_wait_us classified kBarrier
  double cp_overhead_us = 0;    ///< cp_wait_us classified kOverhead
  std::vector<PathStep> path;   ///< source -> sink
  std::vector<WorkerBucket> workers;

  double total_run_us() const noexcept;
  bool empty() const noexcept { return path.empty(); }
};

/// Reconstructs the realized critical path of one cycle from its kRun
/// spans. Reusable: analyze() keeps all scratch storage between calls.
class CriticalPathAnalyzer {
 public:
  /// `preds[n]` lists the graph predecessors of node n. Nodes outside
  /// [0, preds.size()) never bind a dependency constraint.
  explicit CriticalPathAnalyzer(std::vector<std::vector<std::int32_t>> preds);

  /// Analyze one cycle's spans (times relative to the cycle start,
  /// sorted by (thread, begin) as collect()/collect_cycle() produce).
  /// Non-kRun spans only inform gap classification. Allocation-free
  /// once scratch buffers have grown to the workload's size.
  const CycleAttribution& analyze(std::span<const TraceSpan> spans,
                                  std::uint64_t cycle = 0);

  const CycleAttribution& result() const noexcept { return result_; }
  std::size_t node_count() const noexcept { return preds_.size(); }

 private:
  std::vector<std::vector<std::int32_t>> preds_;
  CycleAttribution result_;
  // Scratch (sized on first analyze, reused after):
  std::vector<std::int32_t> node_span_;    // node -> index into spans, -1
  std::vector<std::int32_t> prev_on_lane_; // span index -> previous kRun
                                           // span index on same worker
  std::vector<std::uint32_t> lane_begin_;  // worker -> first span index
  std::vector<std::uint32_t> lane_end_;    // worker -> one-past-last index
  std::vector<std::int32_t> last_run_;     // worker -> latest kRun span seen
};

/// One ranked blame entry: how far a node ran over its EWMA baseline.
struct BlameEntry {
  std::int32_t node = -1;
  std::int32_t worker = -1;
  double actual_us = 0;
  double baseline_us = 0;  ///< EWMA of healthy (non-missed) cycles
  double delta_us = 0;     ///< actual - baseline, the ranking key
  bool on_path = false;    ///< node sat on the realized critical path
};

/// One ranked worker entry: non-run (wait + overhead) time vs baseline.
struct WorkerBlame {
  std::uint32_t worker = 0;
  double nonrun_us = 0;
  double baseline_us = 0;
  double delta_us = 0;
};

/// Ranked blame for one missed cycle.
struct BlameReport {
  bool valid = false;
  std::uint64_t cycle = 0;
  double makespan_us = 0;
  double deadline_us = 0;
  double cp_run_us = 0;
  double cp_wait_us = 0;
  std::vector<BlameEntry> nodes;     ///< top-k, descending delta
  std::vector<WorkerBlame> workers;  ///< top-k, descending delta
};

/// Maintains per-node and per-worker EWMA baselines across cycles and
/// produces a ranked BlameReport on every missed cycle. Baselines fold
/// in healthy cycles only, so a repeating stall cannot normalize itself
/// into its own baseline; a node never seen healthy has baseline 0 and
/// is blamed for its full actual cost. Single-threaded (the cycle
/// driver's between-cycles context).
class BlameTracker {
 public:
  explicit BlameTracker(std::size_t top_k = 5, double alpha = 0.1);

  /// Fold one analyzed cycle in (`spans` = the same spans `at` was
  /// computed from, for per-node actual costs). When `missed`, last()
  /// is rebuilt and reports() increments; otherwise baselines absorb
  /// the cycle. Missed cycles never update baselines, by design.
  const BlameReport& on_cycle(const CycleAttribution& at,
                              std::span<const TraceSpan> spans, bool missed,
                              double deadline_us);

  const BlameReport& last() const noexcept { return last_; }
  std::uint64_t reports() const noexcept { return reports_; }
  /// Current EWMA baseline for `node` (0 when never seen healthy).
  double node_baseline_us(std::int32_t node) const noexcept;
  std::size_t top_k() const noexcept { return top_k_; }

 private:
  std::size_t top_k_;
  double alpha_;
  std::vector<double> node_ewma_;
  std::vector<bool> node_seen_;
  std::vector<double> worker_ewma_;
  std::vector<bool> worker_seen_;
  BlameReport last_;
  std::uint64_t reports_ = 0;
  // Scratch for ranking:
  std::vector<BlameEntry> cand_;
  std::vector<WorkerBlame> wcand_;
  std::vector<double> actual_;          // node -> this cycle's run us
  std::vector<std::int32_t> actual_worker_;
  std::vector<std::int32_t> touched_;   // nodes with actual_ set
};

/// Render an attribution as a JSON object (critical path, per-worker
/// buckets, totals). Appends to `out`.
void append_json(std::string& out, const CycleAttribution& at);

/// Render a blame report as a JSON object. Appends to `out`.
void append_json(std::string& out, const BlameReport& r);

}  // namespace djstar::support::attrib
