// djstar/support/stats.hpp
// Streaming and batch summary statistics used by the benchmark harnesses
// and the engine's cycle monitor.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace djstar::support {

/// Welford-style online accumulator: mean/variance/min/max in O(1) space.
/// add() is allocation-free and safe on the real-time path.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = (n_ == 1) ? x : std::min(min_, x);
    max_ = (n_ == 1) ? x : std::max(max_, x);
  }

  void reset() noexcept { *this = OnlineStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merge another accumulator (Chan et al. parallel variance).
  void merge(const OnlineStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double delta = o.mean_ - mean_;
    const auto na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    const double nt = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    mean_ += delta * nb / nt;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample set (linear interpolation, copies + sorts).
/// q in [0,1]. Returns 0 for an empty span.
double quantile(std::span<const double> xs, double q);

/// Batch summary of a sample vector; computed once, cheap to pass around.
struct Summary {
  std::size_t count = 0;
  double mean = 0, stddev = 0, min = 0, max = 0;
  double p50 = 0, p90 = 0, p99 = 0, p999 = 0;

  static Summary of(std::span<const double> xs);
};

}  // namespace djstar::support
