// djstar/support/metrics.hpp
// Real-time-safe metrics registry (DESIGN.md §10).
//
// The paper's argument rests on measurement, and a serving fleet needs it
// continuously — not per armed cycle. This registry is built so the hot
// path never pays for observability:
//
//   - Registration happens once at setup (mutex-protected, allocates).
//   - Recording is wait-free and allocation-free: counters and histogram
//     bins are sharded across cache-line-padded atomic cells, and each
//     thread hashes to a stable shard, so concurrent writers never
//     contend on one line and a single relaxed fetch_add is the whole
//     cost.
//   - Reading (snapshot / export) happens off-thread: it sums the shards
//     with relaxed loads, so a snapshot taken mid-cycle is merely
//     slightly stale, never torn per-cell.
//
// Exposition: snapshot() freezes every metric into plain values;
// to_prometheus() renders the text exposition format (HELP/TYPE lines,
// cumulative le-buckets), to_json() a machine-readable mirror. Handles
// (Counter/Gauge/HistogramMetric) are trivially copyable pointers into
// registry-owned storage and stay valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace djstar::support {

/// Shards per metric. Eight padded cells cover the worker counts this
/// engine runs (the paper fixes 4 threads) without blowing up snapshot
/// cost; collisions only cost a shared fetch_add, never a lock.
inline constexpr unsigned kMetricShards = 8;

/// Stable per-thread shard index (round-robin assigned on first use).
unsigned metric_shard_index() noexcept;

namespace detail {

struct alignas(64) MetricCell {
  std::atomic<std::uint64_t> v{0};
};

/// One registered metric's storage. Lives in a unique_ptr inside the
/// registry, so handle pointers survive further registrations.
struct MetricEntry {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;

  /// Optional constant label set rendered as `name{labels} value`
  /// (e.g. `version="1.0.0",git_sha="abc1234"`). Fixed at registration —
  /// the exposition stays a single sample per family.
  std::string labels;

  // Counter: one cell per shard.
  std::unique_ptr<MetricCell[]> cells;

  // Gauge: a single atomic double (set/load are wait-free stores).
  std::atomic<double> gauge{0.0};

  // Histogram: per shard, `bounds.size() + 1` bucket cells followed by
  // one count cell and one fixed-point (2^-10 us) sum cell.
  std::vector<double> bounds;  ///< strictly increasing upper bounds
  std::unique_ptr<MetricCell[]> hist;  ///< [shard][bucket.. count sum]
  std::size_t hist_stride = 0;
};

}  // namespace detail

/// Monotonic counter handle. Default-constructed handles are inert
/// no-ops, so instrumentation sites never need a null check of their own.
class Counter {
 public:
  Counter() = default;

  /// Wait-free, allocation-free; callable from any thread.
  void inc(std::uint64_t n = 1) noexcept {
    if (e_ != nullptr) {
      e_->cells[metric_shard_index()].v.fetch_add(n,
                                                  std::memory_order_relaxed);
    }
  }

  /// Sum over all shards (relaxed; exact once writers are quiescent).
  std::uint64_t value() const noexcept;

  explicit operator bool() const noexcept { return e_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::MetricEntry* e) noexcept : e_(e) {}
  detail::MetricEntry* e_ = nullptr;
};

/// Point-in-time gauge handle (single atomic double; set() is a wait-free
/// store, so one writer at a time is the intended discipline).
class Gauge {
 public:
  Gauge() = default;

  void set(double v) noexcept {
    if (e_ != nullptr) e_->gauge.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return e_ != nullptr ? e_->gauge.load(std::memory_order_relaxed) : 0.0;
  }

  explicit operator bool() const noexcept { return e_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::MetricEntry* e) noexcept : e_(e) {}
  detail::MetricEntry* e_ = nullptr;
};

/// Fixed-bucket histogram handle. record() classifies against the
/// registered upper bounds (linear scan — bucket lists are short) and
/// bumps the shard's bucket, count, and fixed-point sum cells.
class HistogramMetric {
 public:
  HistogramMetric() = default;

  void record(double v) noexcept;

  /// Total samples over all shards.
  std::uint64_t count() const noexcept;

  explicit operator bool() const noexcept { return e_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit HistogramMetric(detail::MetricEntry* e) noexcept : e_(e) {}
  detail::MetricEntry* e_ = nullptr;
};

/// One metric's frozen value in a snapshot.
struct MetricValue {
  std::string name;
  std::string help;
  detail::MetricEntry::Kind kind = detail::MetricEntry::Kind::kCounter;
  std::string labels;  ///< constant label set ("" for most metrics)
  double value = 0;  ///< counter (exact integral) or gauge reading
  // Histogram only:
  std::vector<double> bounds;                ///< upper bounds (no +Inf)
  std::vector<std::uint64_t> bucket_counts;  ///< per-bucket, +Inf last
  std::uint64_t count = 0;
  double sum = 0;
};

struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  ///< registration order
};

/// Render the Prometheus text exposition format (HELP/TYPE per family,
/// cumulative `le` buckets, `_sum`/`_count` for histograms).
std::string to_prometheus(const MetricsSnapshot& snap);

/// Render a JSON object {"metrics": [...]} mirroring the snapshot.
std::string to_json(const MetricsSnapshot& snap);

/// The registry. register-once / record-anywhere / snapshot-off-thread.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or fetch, when `name` is already registered with the same
  /// kind) a metric. Throws std::invalid_argument on an invalid metric
  /// name or on a kind mismatch with an existing registration. Not
  /// real-time safe — call at setup.
  Counter counter(std::string_view name, std::string_view help);
  Gauge gauge(std::string_view name, std::string_view help);
  /// Gauge with a constant label set (`key="value",...`, rendered inside
  /// `{}`): build-info-style metrics. Labels are fixed on first
  /// registration; a later fetch with different labels keeps the first.
  Gauge gauge(std::string_view name, std::string_view help,
              std::string_view labels);
  /// `bounds` must be non-empty and strictly increasing; a final +Inf
  /// bucket is implicit.
  HistogramMetric histogram(std::string_view name, std::string_view help,
                            std::span<const double> bounds);

  std::size_t size() const;

  /// Freeze all metrics (relaxed shard sums). Safe concurrently with
  /// recording; take it between cycles for exact values.
  MetricsSnapshot snapshot() const;

  /// Convenience: snapshot + render.
  std::string prometheus() const { return to_prometheus(snapshot()); }
  std::string json() const { return to_json(snapshot()); }

  /// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*.
  static bool valid_name(std::string_view name) noexcept;

 private:
  detail::MetricEntry* find_or_create(std::string_view name,
                                      std::string_view help,
                                      detail::MetricEntry::Kind kind);

  mutable std::mutex mutex_;  ///< guards registration and iteration
  std::vector<std::unique_ptr<detail::MetricEntry>> entries_;
};

}  // namespace djstar::support
