// djstar/support/csv.hpp
// Minimal CSV/TSV writer for benchmark result export. Values are written
// unquoted unless they contain the separator, a quote, or a newline.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace djstar::support {

/// Streams rows into an in-memory buffer; save() writes the whole file at
/// once so a crashed run never leaves a half-written CSV behind.
class CsvWriter {
 public:
  explicit CsvWriter(char sep = ',') : sep_(sep) {}

  /// Append one row of cells.
  CsvWriter& row(const std::vector<std::string>& cells);

  /// Fluent variadic row: csv.cells("a", 1, 2.5);
  template <typename... Ts>
  CsvWriter& cells(Ts&&... vs) {
    std::vector<std::string> r;
    r.reserve(sizeof...(vs));
    (r.push_back(to_cell(std::forward<Ts>(vs))), ...);
    return row(r);
  }

  /// The accumulated file contents.
  std::string str() const { return out_.str(); }

  /// Write to `path`. Returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  template <typename T>
  static std::string to_cell(T&& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(v));
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }
  std::string escape(std::string_view cell) const;

  char sep_;
  std::ostringstream out_;
};

}  // namespace djstar::support
