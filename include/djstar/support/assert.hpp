// djstar/support/assert.hpp
// Lightweight assertion macros used across the library.
//
// DJSTAR_ASSERT is active in all build types: the invariants it guards
// (graph well-formedness, executor protocol state) are cheap to check and
// a violation means undefined behaviour on the audio path, so we prefer a
// loud abort over silent corruption even in Release.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace djstar::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "djstar assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace djstar::support

#define DJSTAR_ASSERT(expr)                                               \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::djstar::support::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                     \
  } while (false)

#define DJSTAR_ASSERT_MSG(expr, msg)                                   \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::djstar::support::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                                  \
  } while (false)
