// djstar/support/ascii_chart.hpp
// Console renderings of the paper's figures: histograms (Fig. 9),
// cumulative histograms (Fig. 10), Gantt charts (Figs. 4/11/12), and
// simple labelled bar charts (Fig. 8).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "djstar/support/histogram.hpp"
#include "djstar/support/trace.hpp"

namespace djstar::support {

/// Render a histogram as rows of '#', one row per bin, with bin edges and
/// counts. width = maximum bar width in characters.
std::string render_histogram(const Histogram& h, std::size_t width = 60,
                             const std::string& title = {});

/// Render the cumulative version of a histogram (running total per bin).
std::string render_cumulative(const Histogram& h, std::size_t width = 60,
                              const std::string& title = {});

/// One labelled value in a bar chart.
struct Bar {
  std::string label;
  double value = 0;
};

/// Render labelled horizontal bars scaled to the maximum value.
std::string render_bars(std::span<const Bar> bars, std::size_t width = 50,
                        const std::string& title = {},
                        const std::string& unit = {});

/// Render per-thread Gantt lanes from trace spans. Each lane is a row of
/// characters; node runs show the node id (or '#'), busy-wait shows '.',
/// sleep shows ' ', steal probes show '~', overhead shows ':'.
/// `total_us` <= 0 auto-scales to the last span end.
std::string render_gantt(std::span<const TraceSpan> spans,
                         std::size_t width = 100, double total_us = 0,
                         const std::string& title = {});

/// Render a concurrency profile (active processors over time), the shape
/// shown in paper Fig. 4: time buckets on the x axis, active count as bars.
std::string render_profile(std::span<const double> times_us,
                           std::span<const int> active,
                           std::size_t width = 80,
                           const std::string& title = {});

}  // namespace djstar::support
