// djstar/support/cost_table.hpp
// The single calibrated per-operation cost table (microseconds).
//
// Calibrated from bench/micro_primitives on commodity x86 (see
// EXPERIMENTS.md). Before this table existed the constants were
// duplicated: sim::OverheadModel carried inline defaults and the benches
// restated them in comments. Now every consumer — the strategy
// simulator's OverheadModel defaults, the graph-optimizer's fusion
// threshold (core/graph_opt), and bench/node_profile's report — reads
// the same constants, and bench/node_profile exports them as
// results/cost_table.csv so the calibration ships with the repo.
#pragma once

#include <span>
#include <string>

namespace djstar::support::costs {

/// Picking the next node from the queue + checking its dependencies
/// ("the small space between node executions", paper Fig. 11).
inline constexpr double kDepCheckUs = 0.75;
/// Busy-wait re-check granularity: a spinning thread notices dependency
/// resolution within this quantum.
inline constexpr double kSpinQuantumUs = 0.10;
/// Latency from notify to the sleeping thread running again
/// (futex wake + scheduler dispatch).
inline constexpr double kWakeLatencyUs = 12.0;
/// Cost paid by the signalling thread per wakeup it sends.
inline constexpr double kSignalCostUs = 1.0;
/// Cost of registering as waiter + parking on the condition variable.
inline constexpr double kSleepEntryUs = 2.5;
/// One steal probe of a victim deque.
inline constexpr double kStealProbeUs = 1.0;
/// One owner push or pop on the local deque.
inline constexpr double kDequeOpUs = 0.45;
/// Master's per-source-node seeding cost at cycle start (WS only).
inline constexpr double kSeedCostUs = 0.45;
/// Cache-coherence contention factor per extra thread (the measured
/// BUSY-vs-RESCON gap of the paper, §VI).
inline constexpr double kContentionPerThread = 2.2;
/// Per-cycle team dispatch cost each worker pays before its first node.
inline constexpr double kDispatchUs = 14.0;

/// Scheduling overhead attributed to dispatching ONE node through a
/// dynamic executor: a dependency check plus one ready-queue operation.
/// This is the per-node saving the fusion pass compares node costs
/// against — a node cheaper than (threshold x this) is dispatch-bound.
inline constexpr double kPerNodeDispatchUs = kDepCheckUs + kDequeOpUs;

/// One row of the exported table.
struct CostRow {
  const char* op;      ///< stable identifier (CSV `op` column)
  double us;           ///< calibrated cost in microseconds
  const char* source;  ///< which micro benchmark calibrates it
};

/// All rows, in a stable order (for printing and CSV export).
std::span<const CostRow> rows() noexcept;

/// Write the table as CSV (`op,us,source`). Returns false on I/O error.
bool write_cost_table_csv(const std::string& path);

}  // namespace djstar::support::costs
