// djstar/support/histogram.hpp
// Fixed-bin histogram for execution-time distributions (paper Figs. 9/10).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace djstar::support {

/// Uniform-bin histogram over [lo, hi). Values outside the range are
/// counted in underflow/overflow. add() is allocation-free.
class Histogram {
 public:
  /// Creates `bins` uniform bins covering [lo, hi). Requires hi > lo,
  /// bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;
  void reset() noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double bin_width() const noexcept { return width_; }

  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const noexcept;
  /// Exclusive upper edge of bin i.
  double bin_hi(std::size_t i) const noexcept;
  std::size_t count(std::size_t i) const noexcept { return counts_[i]; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }
  std::size_t max_count() const noexcept;

  /// Cumulative count of all bins up to and including i (plus underflow),
  /// i.e. the data behind a cumulative histogram (paper Fig. 10).
  std::size_t cumulative(std::size_t i) const noexcept;

  /// Fraction of all added samples (including under/overflow) that are < x.
  double cdf(double x) const noexcept;

  /// Merge `other` into this histogram (fleet-wide aggregation in
  /// serve::ServeStats). When the bin layouts match exactly (same lo,
  /// hi, and bin count) counts merge bin-for-bin losslessly. Otherwise
  /// each of `other`'s occupied bins is re-added at its midpoint and
  /// classified against *this* range — a documented lossy re-binning
  /// whose error is bounded by half of `other`'s bin width. Under- and
  /// overflow counts always carry over as under-/overflow.
  void merge(const Histogram& other) noexcept;

  /// Smallest x with cdf(x) >= q (q clamped to [0, 1]), linearly
  /// interpolated inside the containing bin. Returns lo() when the
  /// quantile falls in the underflow mass, hi() when it falls in the
  /// overflow mass, and lo() on an empty histogram.
  double quantile(double q) const noexcept;

  /// Windowed view: the samples added to *this* since `prev` was
  /// snapshotted from it (`current.delta_since(earlier_copy)`), computed
  /// as a bin-wise subtraction. Neither histogram is modified, so a
  /// scraper reading *this* concurrently with windowed attribution never
  /// races a reset. Requires matching bin layouts; on a layout mismatch
  /// or a rollover window (any of `prev`'s counts exceeding ours — i.e.
  /// *this* was reset after `prev` was taken) the full current contents
  /// are returned, the freshest answer that is still a valid histogram.
  Histogram delta_since(const Histogram& prev) const;

  std::span<const std::size_t> counts() const noexcept { return counts_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace djstar::support
