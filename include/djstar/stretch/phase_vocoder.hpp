// djstar/stretch/phase_vocoder.hpp
// STFT phase-vocoder time stretching — the spectral alternative to WSOLA
// (DJ software typically offers both: WSOLA for percussive material,
// phase vocoder for tonal material). Classic formulation: analysis hops
// at rate*synthesis_hop, per-bin phase propagation by the estimated
// instantaneous frequency, overlap-add resynthesis.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "djstar/fft/fft.hpp"

namespace djstar::stretch {

/// Phase-vocoder configuration.
struct PhaseVocoderConfig {
  std::size_t fft_size = 1024;     ///< power of two
  std::size_t synthesis_hop = 256; ///< output hop (fft_size/4 -> 75% overlap)
};

/// Offline mono phase-vocoder stretcher. rate > 1 plays faster.
class PhaseVocoder {
 public:
  explicit PhaseVocoder(const PhaseVocoderConfig& cfg = {});

  /// Stretch a whole signal by `rate`. Output length ~= input/rate.
  std::vector<float> stretch(std::span<const float> in, double rate);

 private:
  PhaseVocoderConfig cfg_;
  fft::RealFft fft_;
  std::vector<float> window_;
};

}  // namespace djstar::stretch
