// djstar/stretch/resampler.hpp
// Sample-rate conversion: linear, Catmull-Rom cubic, and windowed-sinc.
// The deck preprocessing stage resamples track audio to the engine rate
// and applies pitch (varispeed) before time-stretching.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace djstar::stretch {

/// Interpolation quality of a Resampler.
enum class ResampleQuality {
  kLinear,   ///< 2-point linear
  kCubic,    ///< 4-point Catmull-Rom
  kSinc8,    ///< 8-tap Hann-windowed sinc
};

/// Streaming mono resampler. Feed input blocks, pull output at a rate
/// ratio (output_rate = input_rate / ratio; ratio > 1 = speed up).
class Resampler {
 public:
  explicit Resampler(ResampleQuality q = ResampleQuality::kCubic);

  void set_quality(ResampleQuality q) noexcept { quality_ = q; }
  ResampleQuality quality() const noexcept { return quality_; }

  void reset() noexcept;

  /// One-shot: resample `in` by `ratio` (input samples consumed per output
  /// sample) and append to `out`. Keeps history across calls for streaming.
  void process(std::span<const float> in, double ratio,
               std::vector<float>& out);

  /// Stateless one-shot conversion of a whole signal.
  static std::vector<float> convert(std::span<const float> in, double ratio,
                                    ResampleQuality q = ResampleQuality::kCubic);

 private:
  float interpolate(double idx) const noexcept;

  ResampleQuality quality_;
  std::vector<float> history_;  // past context + current block
  double pos_ = 0.0;            // fractional read position into history_
};

}  // namespace djstar::stretch
