// djstar/stretch/wsola.hpp
// WSOLA time-stretching (Waveform Similarity Overlap-Add).
//
// DJ Star's "Time Stretching" preprocessing (paper Fig. 2) changes tempo
// without changing pitch so tracks can be beat-matched. WSOLA slides
// analysis frames at the stretch rate and searches a small tolerance
// window for the best cross-correlation before overlap-adding — this is
// the dominant cost of the GP phase (33 % of APC runtime in §III-B).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "djstar/audio/buffer.hpp"

namespace djstar::stretch {

/// WSOLA parameters.
struct WsolaConfig {
  std::size_t frame_size = 512;   ///< overlap-add frame
  std::size_t overlap = 256;      ///< overlap region (= hop at rate 1)
  std::size_t tolerance = 160;    ///< +/- search range for best match
};

/// Streaming mono WSOLA stretcher. push() input, pull() stretched output.
/// rate > 1 plays faster (shorter output), rate < 1 slower.
class Wsola {
 public:
  explicit Wsola(const WsolaConfig& cfg = {});

  void set_rate(double rate) noexcept;
  double rate() const noexcept { return rate_; }

  void reset() noexcept;

  /// Append raw input samples.
  void push(std::span<const float> in);

  /// Pull up to out.size() stretched samples; returns the count produced.
  std::size_t pull(std::span<float> out);

  /// Number of stretched samples currently available.
  std::size_t available() const noexcept;

  /// One-shot helper: stretch a whole signal by `rate`.
  static std::vector<float> stretch(std::span<const float> in, double rate,
                                    const WsolaConfig& cfg = {});

 private:
  void produce_frames();
  std::size_t best_offset(std::size_t ideal) const noexcept;

  WsolaConfig cfg_;
  double rate_ = 1.0;
  std::vector<float> window_;
  std::vector<float> input_;        // accumulated input
  std::vector<float> output_;       // produced output FIFO
  std::size_t out_read_ = 0;
  double in_pos_ = 0.0;             // analysis position in input_
  std::vector<float> prev_tail_;    // previous frame's overlap region
  bool primed_ = false;
};

/// Phase alignment helper: estimate the lag (in samples, within
/// +/- max_lag) that best aligns `b` to `a` by cross-correlation.
/// Positive result means b should be delayed by that many samples.
int estimate_alignment(std::span<const float> a, std::span<const float> b,
                       int max_lag) noexcept;

}  // namespace djstar::stretch
