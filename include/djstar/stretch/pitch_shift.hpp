// djstar/stretch/pitch_shift.hpp
// Pitch shifting without tempo change: WSOLA time-stretch by 1/ratio
// followed by resampling by ratio — the classic OLA+resample pitch
// shifter (the dual of the deck's keylock, which stretches tempo while
// keeping pitch). Used by DJ key-matching features.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "djstar/stretch/resampler.hpp"
#include "djstar/stretch/wsola.hpp"

namespace djstar::stretch {

/// Streaming mono pitch shifter.
class PitchShifter {
 public:
  explicit PitchShifter(const WsolaConfig& cfg = {});

  /// Pitch ratio: 2.0 = up one octave, 0.5 = down one octave.
  void set_ratio(double ratio) noexcept;
  double ratio() const noexcept { return ratio_; }

  /// Semitone convenience (+12 = up one octave).
  void set_semitones(double semitones) noexcept;

  void reset() noexcept;

  /// Feed input samples.
  void push(std::span<const float> in);

  /// Pull shifted samples (same time base as the input; ~1:1 rate).
  std::size_t pull(std::span<float> out);
  std::size_t available() const noexcept { return out_.size() - read_; }

  /// One-shot helper.
  static std::vector<float> shift(std::span<const float> in, double ratio,
                                  const WsolaConfig& cfg = {});

 private:
  void produce();

  Wsola wsola_;
  Resampler resampler_;
  double ratio_ = 1.0;
  std::vector<float> stretch_buf_;
  std::vector<float> out_;
  std::size_t read_ = 0;
};

}  // namespace djstar::stretch
