// djstar/analysis/beat.hpp
// Beat analysis: onset detection and tempo (BPM) estimation.
//
// DJ Star's library preprocessing computes a beatgrid per track so decks
// can be beat-matched ("Track Preprocessing" in paper Fig. 2). This is
// the standard energy-flux pipeline:
//   1. slice the signal into hop-sized frames and take per-band energy,
//   2. onset strength = half-wave-rectified energy increase (flux),
//   3. tempo = the autocorrelation peak of the onset envelope within the
//      plausible BPM range,
//   4. beat phase = the offset that best aligns a beat comb with the
//      envelope.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "djstar/audio/buffer.hpp"

namespace djstar::analysis {

/// Analyzer configuration.
struct BeatConfig {
  std::size_t frame = 1024;      ///< analysis frame (samples)
  std::size_t hop = 512;         ///< hop between frames
  double min_bpm = 80.0;
  double max_bpm = 180.0;
  double sample_rate = audio::kSampleRate;
};

/// Result of analyzing a track.
struct BeatgridResult {
  double bpm = 0.0;             ///< estimated tempo
  double confidence = 0.0;      ///< autocorrelation peak vs mean (>1 good)
  double first_beat_seconds = 0.0;  ///< phase offset of the grid
  std::vector<double> beat_times_seconds;  ///< grid over the analyzed span
};

/// Compute the onset-strength envelope (one value per hop).
/// Exposed separately for tests and visualization.
std::vector<float> onset_envelope(std::span<const float> mono,
                                  const BeatConfig& cfg = {});

/// Estimate tempo from an onset envelope.
/// Returns {bpm, confidence}; bpm 0 when the envelope is degenerate.
struct TempoEstimate {
  double bpm = 0.0;
  double confidence = 0.0;
};
TempoEstimate estimate_tempo(std::span<const float> envelope,
                             const BeatConfig& cfg = {});

/// Full pipeline on a mono signal.
BeatgridResult analyze_beats(std::span<const float> mono,
                             const BeatConfig& cfg = {});

/// Convenience: analyze a stereo buffer (mono fold-down).
BeatgridResult analyze_beats(const audio::AudioBuffer& stereo,
                             const BeatConfig& cfg = {});

}  // namespace djstar::analysis
