// djstar/analysis/key.hpp
// Musical key estimation for key-matched mixing (harmonic mixing is a
// DJ-software staple; DJ Star's track preprocessing computes it once per
// track). Pipeline: FFT magnitude spectra -> octave-folded chromagram ->
// correlation against Krumhansl-Schmuckler major/minor key profiles.
#pragma once

#include <array>
#include <span>
#include <string>

#include "djstar/audio/buffer.hpp"

namespace djstar::analysis {

/// A pitch-class energy vector (C, C#, ..., B).
using Chromagram = std::array<double, 12>;

/// Estimated key.
struct KeyEstimate {
  int tonic = 0;          ///< 0 = C, 1 = C#, ... 11 = B
  bool minor = false;
  double confidence = 0;  ///< best correlation minus runner-up
  std::string name() const;  ///< e.g. "A minor"
};

/// Compute an octave-folded chromagram of a mono signal.
Chromagram compute_chromagram(std::span<const float> mono,
                              double sample_rate = audio::kSampleRate);

/// Match a chromagram against the 24 Krumhansl key profiles.
KeyEstimate estimate_key(const Chromagram& chroma);

/// Full pipeline on a mono signal.
KeyEstimate estimate_key(std::span<const float> mono,
                         double sample_rate = audio::kSampleRate);

/// Camelot-wheel code for harmonic mixing (e.g. "8A" for A minor).
std::string camelot_code(const KeyEstimate& key);

}  // namespace djstar::analysis
