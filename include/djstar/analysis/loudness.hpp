// djstar/analysis/loudness.hpp
// Track loudness / auto-gain estimation so decks play at matched levels
// (the "gain" knob a DJ would otherwise ride). ReplayGain-flavoured:
// short-block RMS, silence gating, high percentile as the program
// loudness, gain suggestion toward a target level.
#pragma once

#include <span>

#include "djstar/audio/buffer.hpp"

namespace djstar::analysis {

/// Result of a loudness scan.
struct LoudnessResult {
  double loudness_db = -120.0;   ///< gated program loudness (dBFS, RMS)
  double peak_db = -120.0;       ///< true sample peak (dBFS)
  double suggested_gain_db = 0;  ///< gain to reach the target loudness
  std::size_t gated_blocks = 0;  ///< blocks counted (non-silent)
};

/// Analysis parameters.
struct LoudnessConfig {
  double block_seconds = 0.05;   ///< RMS block size
  double gate_db = -45.0;        ///< blocks quieter than this are ignored
  double target_db = -14.0;      ///< reference program loudness
  double percentile = 0.95;      ///< which RMS percentile is "the level"
  double sample_rate = audio::kSampleRate;
};

/// Scan a mono signal.
LoudnessResult measure_loudness(std::span<const float> mono,
                                const LoudnessConfig& cfg = {});

/// Scan a stereo buffer (per-block RMS over both channels).
LoudnessResult measure_loudness(const audio::AudioBuffer& stereo,
                                const LoudnessConfig& cfg = {});

}  // namespace djstar::analysis
