// djstar/analysis/waveform.hpp
// Waveform overview tiles — the data behind the GUI's scrolling waveform
// (paper Fig. 2, "Waveform" in the User Interface layer). Multi-
// resolution min/max/RMS tiles plus a coarse low/high band split so the
// display can color kicks vs hats, as DJ software does.
#pragma once

#include <cstddef>
#include <vector>

#include "djstar/audio/buffer.hpp"

namespace djstar::analysis {

/// One display tile summarizing `samples_per_tile` input samples.
struct WaveformTile {
  float min = 0.0f;
  float max = 0.0f;
  float rms = 0.0f;
  float low_energy = 0.0f;   ///< kick-ish band
  float high_energy = 0.0f;  ///< hat-ish band
};

/// A complete overview at one zoom level.
struct WaveformOverview {
  std::size_t samples_per_tile = 0;
  std::vector<WaveformTile> tiles;
};

/// Build an overview of a mono signal with the given tile size.
WaveformOverview build_overview(std::span<const float> mono,
                                std::size_t samples_per_tile = 1024);

/// Build an overview of a stereo buffer (mono fold-down).
WaveformOverview build_overview(const audio::AudioBuffer& stereo,
                                std::size_t samples_per_tile = 1024);

/// Downsample an overview by an integer factor (zooming out); tiles are
/// merged so min/max stay exact and energies accumulate.
WaveformOverview zoom_out(const WaveformOverview& src, std::size_t factor);

}  // namespace djstar::analysis
