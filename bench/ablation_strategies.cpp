// bench/ablation_strategies.cpp
// Extension experiment: the paper's three strategies against the
// shared-ready-queue variant it sketches in §V-B ("available nodes ...
// executed by one thread that has just finished its work ... raises the
// queue management overhead"). SharedQueueExecutor implements that idea
// with a mutex-protected central queue; this bench quantifies the
// trade-off the paper predicted.
#include "bench_common.hpp"

int main() {
  using namespace djstar;
  bench::banner("ablation — shared ready queue vs the paper's strategies",
                "§V-B predicts: earliest possible node start times, but more "
                "queue management overhead");

  const std::size_t miters = bench::measure_iters();
  std::printf("measured on this host, 67-node graph, %zu cycles each:\n\n",
              miters);
  std::printf("  %-8s %10s %10s %12s %12s\n", "strategy", "threads",
              "mean (us)", "p99-ish (us)", "worst (us)");

  for (unsigned threads : {2u, 4u}) {
    for (core::Strategy s :
         {core::Strategy::kBusyWait, core::Strategy::kSleep,
          core::Strategy::kWorkStealing, core::Strategy::kSharedQueue}) {
      const auto series = bench::measure_series(s, threads, miters);
      const auto sum = support::Summary::of(series);
      std::printf("  %-8s %10u %10.1f %12.1f %12.1f\n",
                  std::string(core::to_string(s)).c_str(), threads, sum.mean,
                  sum.p99, sum.max);
    }
    std::printf("\n");
  }

  // Virtual-time view: the shared queue is a greedy list scheduler whose
  // per-node cost is one lock round trip; model it as list scheduling
  // with a lock surcharge and compare against the strategy simulators.
  bench::ReferenceSetup ref;
  const double lock_cost_us = 0.25;  // uncontended lock/unlock pair
  sim::SimGraph g = ref.sim;
  for (auto& d : g.duration_us) d += 2.0 * lock_cost_us;  // pop + publish
  const auto shared4 = sim::list_schedule(g, 4);
  const auto busy4 = sim::simulate_busy(ref.sim, 4);
  const auto sleep4 = sim::simulate_sleep(ref.sim, 4);
  const auto ws4 = sim::simulate_work_stealing(ref.sim, 4);
  std::printf("simulated makespans at 4 virtual cores (mean durations):\n");
  std::printf("  BUSY %.1f us | SLEEP %.1f us | WS %.1f us | SHARED (greedy "
              "list + lock) %.1f us\n",
              busy4.makespan_us, sleep4.makespan_us, ws4.makespan_us,
              shared4.makespan_us);
  std::printf("\nreading: the greedy schedule itself is excellent (it IS list\n"
              "scheduling), confirming §V-B's 'earliest start times' claim;\n"
              "whether it wins in practice depends on lock contention, which\n"
              "grows with thread count — see the measured table above.\n");
  return 0;
}
