// bench/fig10_cumulative.cpp
// Reproduces paper Figure 10: cumulative histograms of the same data as
// Figure 9.
//
// Paper shape claims: BUSY shows the strongest early start; SLEEP starts
// very late but finishes 80% of iterations under 0.5 ms; WS averages the
// start times but has late finishers.
#include "bench_common.hpp"

int main() {
  using namespace djstar;
  bench::banner(
      "Figure 10 — cumulative execution time histograms (4 threads)",
      "BUSY earliest starts; SLEEP 80% < 0.5 ms despite late start; WS has stragglers");

  const std::size_t iters = bench::sim_iters();
  bench::ReferenceSetup ref;
  support::CsvWriter csv;
  csv.cells("strategy", "le_ms", "cumulative", "fraction");

  for (core::Strategy s : core::kParallelStrategies) {
    const auto series =
        bench::simulate_series(ref, bench::to_sim(s), 4, iters);
    support::Histogram hist(0.2, 0.8, 24);
    for (double us : series) hist.add(us / 1000.0);
    std::printf("%s\n",
                support::render_cumulative(
                    hist, 60,
                    std::string(bench::strategy_label(s)) +
                        " — cumulative (ms)")
                    .c_str());
    for (std::size_t b = 0; b < hist.bin_count(); ++b) {
      const auto c = hist.cumulative(b);
      csv.cells(core::to_string(s), hist.bin_hi(b), c,
                static_cast<double>(c) / static_cast<double>(hist.total()));
    }
    std::printf("  fraction finished < 0.5 ms: %.1f%%\n\n",
                100.0 * hist.cdf(0.5));
  }

  const auto path = bench::out_path("fig10_cumulative.csv");
  if (csv.save(path)) std::printf("wrote %s\n", path.c_str());
  return 0;
}
