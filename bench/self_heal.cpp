// bench/self_heal.cpp
// Cost of arming the self-healing machinery (DESIGN.md §12) when
// nothing is actually wrong: per-worker heartbeat stores on the hot
// path plus the medic's periodic scan must stay under 2% mean APC-time
// overhead versus a heal-disabled engine. Healing that taxes every
// healthy cycle would be a bad trade for a 2.9 ms deadline.
//
// Usage: self_heal [--smoke]
//   --smoke  short run on one parallel strategy; exits nonzero when the
//            overhead gate fails (retried to ride out CI noise).
#include <cstring>
#include <filesystem>
#include <thread>

#include "bench_common.hpp"

namespace {

struct Overhead {
  double off_mean_us = 0;
  double armed_mean_us = 0;
  double off_p99_us = 0;
  double armed_p99_us = 0;
  std::uint64_t quarantines = 0;  // must be 0: nothing is faulted
  double pct() const {
    return 100.0 * (armed_mean_us - off_mean_us) / off_mean_us;
  }
};

Overhead measure(djstar::core::Strategy s, unsigned threads,
                 std::size_t iters) {
  using namespace djstar;
  engine::EngineConfig base;
  base.strategy = s;
  base.threads = threads;

  engine::EngineConfig healed = base;
  healed.heal.mode = core::HealMode::kRespawn;
  // A budget far past any clean cycle time: the medic scans but never
  // fires, so the measurement is pure instrumentation cost, not
  // quarantine churn. The 500 us scan cadence still detects a stuck
  // worker several times per 2.9 ms deadline; the tests' 100 us default
  // is for provoking races, not production — and on an undersized
  // runner each medic wake preempts a worker, so cadence is the cost.
  healed.heal.heartbeat_budget_us = 50'000.0;
  healed.heal.check_interval_us = 500.0;

  engine::AudioEngine off(base);
  engine::AudioEngine armed(healed);

  // Interleave the two engines in short batches so OS noise and
  // frequency drift hit both measurements equally (same discipline as
  // obs_overhead.cpp and degradation.cpp).
  const std::size_t kBatch = 50;
  off.run_cycles(kBatch);
  armed.run_cycles(kBatch);
  off.monitor().reset();
  armed.monitor().reset();
  for (std::size_t done = 0; done < iters; done += kBatch) {
    const std::size_t n = std::min(kBatch, iters - done);
    off.run_cycles(n);
    armed.run_cycles(n);
  }
  Overhead o;
  o.off_mean_us = off.monitor().total().mean();
  o.armed_mean_us = armed.monitor().total().mean();
  o.off_p99_us = off.monitor().p99();
  o.armed_p99_us = armed.monitor().p99();
  if (const core::Team* team = armed.executor().team()) {
    o.quarantines = team->heal_stats().quarantines;
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace djstar;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("self_heal — healing-armed overhead on healthy cycles",
                "heartbeats + medic scan add < 2% to the mean APC time");

  constexpr double kGatePct = 2.0;
  support::CsvWriter csv;
  csv.cells("strategy", "threads", "off_mean_us", "armed_mean_us",
            "overhead_pct", "off_p99_us", "armed_p99_us", "quarantines");

  bool pass = true;
  std::printf("  %-6s %8s %12s %12s %10s\n", "", "threads", "off us",
              "armed us", "overhead");

  if (smoke) {
    // CI gate: one parallel strategy with a small team — healing is a
    // no-op on the sequential path, so that would measure nothing.
    // Retry and keep the best attempt to ride out scheduler noise on
    // shared runners; one clean attempt proves the hot path is cheap.
    const std::size_t iters = 400;
    constexpr int kAttempts = 3;
    double best = 1e9;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      const Overhead o = measure(core::Strategy::kWorkStealing, 2, iters);
      best = std::min(best, o.pct());
      std::printf("  %-6s %8u %12.1f %12.1f %9.2f%%%s\n", "WS", 2u,
                  o.off_mean_us, o.armed_mean_us, o.pct(),
                  o.pct() < kGatePct ? "" : "  (retrying)");
      csv.cells("work_stealing", 2, o.off_mean_us, o.armed_mean_us, o.pct(),
                o.off_p99_us, o.armed_p99_us, o.quarantines);
      if (o.quarantines != 0) {
        std::printf("  spurious quarantine during a clean run\n");
        best = 1e9;  // poisoned measurement: never passes the gate
        continue;
      }
      if (o.pct() < kGatePct) break;
    }
    pass = best < kGatePct;
  } else {
    const std::size_t iters = bench::measure_iters();
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned threads = hw >= 5 ? 4 : 2;
    // Workers plus the medic each want a core; below that the numbers
    // measure scheduler quanta, not the healing machinery. Record them
    // anyway (they are what this box can produce) but only enforce the
    // gate when the hardware can actually host the team.
    const bool oversub = hw < threads + 1;
    for (core::Strategy s : core::kParallelStrategies) {
      if (s == core::Strategy::kBusyWait && oversub) {
        // Busy-wait's own precondition — a dedicated core per spinning
        // worker — is violated; even the heal-off baseline is garbage.
        std::printf("  %-6s %8s  skipped: %u hw cores cannot host "
                    "spinning workers\n",
                    bench::strategy_label(s), "-", hw);
        continue;
      }
      const Overhead o = measure(s, threads, iters);
      std::printf("  %-6s %8u %12.1f %12.1f %9.2f%%\n",
                  bench::strategy_label(s), threads, o.off_mean_us,
                  o.armed_mean_us, o.pct());
      csv.cells(core::to_string(s), threads, o.off_mean_us, o.armed_mean_us,
                o.pct(), o.off_p99_us, o.armed_p99_us, o.quarantines);
      if (o.quarantines != 0) pass = false;
      if (!oversub && o.pct() >= kGatePct) pass = false;
    }
    if (oversub) {
      std::printf("  note: %u hw cores < %u needed — overhead gate "
                  "waived for this sweep (smoke gate still applies)\n",
                  hw, threads + 1);
    }
  }

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const auto path = std::getenv("DJSTAR_BENCH_OUT")
                        ? bench::out_path("self_heal.csv")
                        : std::string("results/self_heal.csv");
  if (csv.save(path)) std::printf("\nwrote %s\n", path.c_str());

  std::printf("%s: %s (gate: mean overhead < %.0f%%)\n",
              smoke ? "smoke" : "full", pass ? "PASS" : "FAIL", kGatePct);
  return pass ? 0 : 1;
}
