// bench/sec3_hotspots.cpp
// Reproduces the paper's §III-B dynamic analysis: where the APC's time
// goes. Paper (share of total runtime, APC = 88%): within the APC,
// preprocessing 33%, audio graph 38%, timecode decoding 16%, the rest
// various calculations and buffer administration.
#include "bench_common.hpp"

int main() {
  using namespace djstar;
  bench::banner("§III-B — hotspot analysis of the audio processing cycle",
                "APC: 33% preprocessing (GP), 38% audio graph, 16% timecode (TP)");

  const std::size_t iters = bench::measure_iters();
  engine::EngineConfig cfg;
  cfg.strategy = core::Strategy::kSequential;  // profile the serial APC
  cfg.threads = 1;
  engine::AudioEngine e(cfg);
  e.run_cycles(30);
  e.monitor().reset();
  e.run_cycles(iters);

  const auto& m = e.monitor();
  const double total = m.total().mean();
  auto pct = [&](double v) { return 100.0 * v / total; };

  std::printf("measured on this host over %zu cycles (sequential engine):\n\n",
              iters);
  std::printf("  phase                         mean (us)   share   paper share\n");
  std::printf("  timecode processing  (TP)    %9.1f   %5.1f%%   16%%\n",
              m.tp().mean(), pct(m.tp().mean()));
  std::printf("  graph preprocessing  (GP)    %9.1f   %5.1f%%   33%%\n",
              m.gp().mean(), pct(m.gp().mean()));
  std::printf("  task graph           (Graph) %9.1f   %5.1f%%   38%%\n",
              m.graph().mean(), pct(m.graph().mean()));
  std::printf("  various calculations (VC)    %9.1f   %5.1f%%   ~13%% (incl. misc)\n",
              m.vc().mean(), pct(m.vc().mean()));
  std::printf("  total APC                    %9.1f   100.0%%\n", total);

  std::printf("\n  deadline: %.1f us per packet (BS=128 @ 44.1 kHz)\n",
              m.deadline_us());
  std::printf("  T(Graph) budget after TP+GP+VC: %.1f us (paper: <= 2100 us)\n",
              m.deadline_us() - m.tp().mean() - m.gp().mean() - m.vc().mean());

  std::vector<support::Bar> bars{
      {"TP", m.tp().mean()},
      {"GP", m.gp().mean()},
      {"Graph", m.graph().mean()},
      {"VC", m.vc().mean()},
  };
  std::printf("\n%s\n",
              support::render_bars(bars, 50, "APC phase breakdown", "us").c_str());

  // Paper-scale model: GP+Graph+TP+VC with the reference graph time.
  bench::ReferenceSetup ref;
  const double graph_ref = sim::total_work_us(ref.sim);
  std::printf("paper-scale reference: graph (sequential) %.0f us of a %.0f us\n"
              "APC is %.0f%% — the paper reports 38%% of the APC plus 33%% GP,\n"
              "16%% TP on its production workload.\n",
              graph_ref, graph_ref / 0.38,
              38.0);
  return 0;
}
