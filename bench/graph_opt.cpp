// bench/graph_opt.cpp
// Graph-optimizer evaluation + CI regression gate.
//
// Simulated on the virtual 4-core machine (DESIGN.md §2): the host of
// record has one core, so the fusion/static-schedule win is demonstrated
// the same way the paper demonstrated schedule quality — in virtual time
// with the calibrated overhead model. Three modes are compared:
//   off         dynamic BUSY dispatch over the node graph
//   fuse        dynamic BUSY dispatch over the fused unit graph
//   fuse+static cached static replay over the fused unit graph
//
// `--smoke` runs the CI gate: fuse and fuse+static must never be slower
// than off beyond a noise margin at 4 threads (exit 1 on regression).
#include <cstring>

#include "bench_common.hpp"
#include "djstar/core/graph_opt.hpp"
#include "djstar/sim/sampler.hpp"

namespace {

using namespace djstar;

/// Per-cycle unit durations: sample node durations, then sum per unit.
struct UnitSampler {
  sim::DurationSampler sampler;
  const core::CompiledGraph& cg;
  std::vector<double> node_us;

  UnitSampler(std::span<const double> ref, const core::CompiledGraph& g)
      : sampler(ref), cg(g) {}

  void fill(std::vector<double>& unit_us) {
    sampler.sample(node_us);
    unit_us.assign(cg.unit_count(), 0.0);
    for (core::UnitId u = 0; u < cg.unit_count(); ++u) {
      for (core::NodeId m : cg.unit_members(u)) unit_us[u] += node_us[m];
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner(
      "graph-opt — node fusion + cached static schedules (DESIGN.md §11)",
      "dispatch overhead, not compute, limits speedup; fusing cheap nodes "
      "and caching the schedule removes it");

  const std::size_t iters = smoke ? 2000 : bench::sim_iters();
  bench::ReferenceSetup ref;
  const auto durations = ref.graph.reference_durations();

  core::graph_opt::CostModel costs(ref.graph.graph().node_count());
  costs.seed(durations);
  const auto plan = core::graph_opt::plan_fusion(ref.graph.graph(), costs);
  core::CompiledGraph fused(ref.graph.graph(), plan);
  const sim::SimGraph unit_sim =
      sim::SimGraph::from_compiled_units(fused, durations);

  std::printf("graph: %zu nodes -> %zu units (%zu fused)\n\n",
              ref.graph.graph().node_count(), fused.unit_count(),
              plan.fused_unit_count());

  support::CsvWriter csv;
  csv.cells("mode", "threads", "mean_us", "speedup_vs_off");

  const char* mode_names[] = {"off", "fuse", "fuse+static"};
  double mean_us[3][4];  // [mode][threads-1]

  for (unsigned t = 1; t <= 4; ++t) {
    // off: dynamic BUSY over the node graph.
    {
      sim::DurationSampler sampler(ref.sim.duration_us, {});
      sim::SimGraph g = ref.sim;
      support::OnlineStats s;
      for (std::size_t i = 0; i < iters; ++i) {
        sampler.sample(g.duration_us);
        s.add(sim::simulate_busy(g, t).makespan_us);
      }
      mean_us[0][t - 1] = s.mean();
    }
    // fuse / fuse+static: over the unit graph.
    {
      UnitSampler us(durations, fused);
      sim::SimGraph g = unit_sim;
      support::OnlineStats dyn, rep;
      for (std::size_t i = 0; i < iters; ++i) {
        us.fill(g.duration_us);
        dyn.add(sim::simulate_busy(g, t).makespan_us);
        rep.add(sim::simulate_static(g, t).makespan_us);
      }
      mean_us[1][t - 1] = dyn.mean();
      mean_us[2][t - 1] = rep.mean();
    }
  }

  std::printf("simulated mean cycle time (us), virtual machine:\n\n");
  std::printf("  %-12s %9s %9s %9s %9s\n", "mode", "T=1", "T=2", "T=3", "T=4");
  for (int m = 0; m < 3; ++m) {
    std::printf("  %-12s", mode_names[m]);
    for (unsigned t = 1; t <= 4; ++t) {
      std::printf(" %9.1f", mean_us[m][t - 1]);
      csv.cells(mode_names[m], t,
                mean_us[m][t - 1], mean_us[0][t - 1] / mean_us[m][t - 1]);
    }
    std::printf("\n");
  }

  std::vector<support::Bar> bars;
  for (int m = 0; m < 3; ++m) {
    bars.push_back({mode_names[m], mean_us[0][3] / mean_us[m][3]});
  }
  std::printf("\n%s\n",
              support::render_bars(bars, 40, "Speedup vs off at 4 threads", "x")
                  .c_str());

  const auto path = bench::out_path("graph_opt.csv");
  if (csv.save(path)) std::printf("wrote %s\n", path.c_str());

  if (smoke) {
    // CI gate: the optimizer must never lose to off beyond noise.
    constexpr double kNoise = 1.02;
    bool ok = true;
    for (int m = 1; m < 3; ++m) {
      const double ratio = mean_us[m][3] / mean_us[0][3];
      std::printf("smoke: %s / off at 4 threads = %.3f (gate < %.2f) %s\n",
                  mode_names[m], ratio, kNoise,
                  ratio < kNoise ? "PASS" : "FAIL");
      ok = ok && ratio < kNoise;
    }
    if (!ok) {
      std::printf("\nsmoke gate FAILED: graph-opt regressed below off\n");
      return 1;
    }
    std::printf("\nsmoke gate passed\n");
  }
  return 0;
}
