// bench/ablation_queue_order.cpp
// Ablation of the node-queue ordering (paper §IV): DJ Star inserts nodes
// "according to their depth in the dependency graph ... column by
// column". The round-robin strategies inherit their load balance from
// this order. Compared against a plain Kahn topological order, which is
// also dependency-safe but interleaves depths.
#include "bench_common.hpp"
#include "djstar/core/busy_wait.hpp"

namespace {

djstar::sim::SimGraph sim_with_order(const djstar::bench::ReferenceSetup& ref,
                                     djstar::core::QueueOrder order) {
  djstar::core::CompiledGraph cg(ref.graph.graph(), order);
  return djstar::sim::SimGraph::from_compiled(
      cg, ref.graph.reference_durations());
}

}  // namespace

int main() {
  using namespace djstar;
  bench::banner("ablation — levelized vs topological node queue",
                "paper §IV: the queue is sorted by dependency depth so nodes "
                "in the same column never block each other");

  const std::size_t iters = bench::sim_iters();
  bench::ReferenceSetup ref;

  for (auto [label, order] :
       {std::pair{"levelized (paper)", core::QueueOrder::kLevelized},
        std::pair{"topological", core::QueueOrder::kTopological}}) {
    const auto g = sim_with_order(ref, order);
    sim::SamplerConfig scfg;
    scfg.seed = 11;
    sim::DurationSampler sampler(g.duration_us, scfg);
    sim::SimGraph work = g;

    support::OnlineStats busy, sleep;
    for (std::size_t i = 0; i < iters; ++i) {
      sampler.sample(work.duration_us);
      busy.add(sim::simulate_busy(work, 4).makespan_us);
      sleep.add(sim::simulate_sleep(work, 4).makespan_us);
    }
    std::printf("  %-20s BUSY %8.1f us   SLEEP %8.1f us\n", label,
                busy.mean(), sleep.mean());
  }

  // Live run with both orderings (the executors accept any compiled
  // order; the engine always uses the paper's levelized queue).
  const std::size_t miters = bench::measure_iters();
  std::printf("\nmeasured BUSY on this host (%zu cycles, 4 threads, no-op DSP "
              "replaced by calibrated spin loads):\n",
              miters);
  for (auto [label, order] :
       {std::pair{"levelized (paper)", core::QueueOrder::kLevelized},
        std::pair{"topological", core::QueueOrder::kTopological}}) {
    // Build a synthetic-load graph so both runs do identical work.
    engine::DjStarGraph gn;
    const auto durations = gn.reference_durations();
    core::TaskGraph load;
    for (core::NodeId n = 0; n < gn.graph().node_count(); ++n) {
      const double us = durations[n] / 20.0;  // scaled to keep the run fast
      load.add_node(std::string(gn.graph().name(n)),
                    [us] { support::spin_for_us(us); },
                    std::string(gn.graph().section(n)));
    }
    for (core::NodeId n = 0; n < gn.graph().node_count(); ++n) {
      for (core::NodeId s : gn.graph().successors(n)) load.add_edge(n, s);
    }
    core::CompiledGraph cg(load, order);
    core::ExecOptions opts;
    opts.threads = 4;
    core::BusyWaitExecutor exec(cg, opts);
    support::OnlineStats stats;
    for (std::size_t i = 0; i < miters; ++i) {
      const auto t0 = support::now();
      exec.run_cycle();
      stats.add(support::since_us(t0));
    }
    std::printf("  %-20s mean %8.1f us   worst %8.1f us\n", label,
                stats.mean(), stats.max());
  }
  return 0;
}
