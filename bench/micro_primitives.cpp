// bench/micro_primitives.cpp
// google-benchmark micro suite behind the OverheadModel calibration
// (DESIGN.md §5): the per-operation costs that separate the three
// strategies — dependency checks, spin quanta, sleep/wake round trips,
// deque operations and steals — plus the DSP kernels that set the node
// runtimes.
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "djstar/audio/buffer.hpp"
#include "djstar/core/chase_lev_deque.hpp"
#include "djstar/core/compiled_graph.hpp"
#include "djstar/core/factory.hpp"
#include "djstar/core/team.hpp"
#include "djstar/dsp/filters.hpp"
#include "djstar/engine/djstar_graph.hpp"
#include "djstar/fft/fft.hpp"
#include "djstar/timecode/timecode.hpp"

namespace {

using namespace djstar;

// ---- scheduling primitives ----

void BM_AtomicDependencyCheck(benchmark::State& state) {
  std::atomic<std::int32_t> pending{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pending.load(std::memory_order_acquire));
  }
}
BENCHMARK(BM_AtomicDependencyCheck);

void BM_AtomicDependencyResolve(benchmark::State& state) {
  std::atomic<std::int32_t> pending{1 << 30};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pending.fetch_sub(1, std::memory_order_acq_rel));
  }
}
BENCHMARK(BM_AtomicDependencyResolve);

void BM_SpinQuantum(benchmark::State& state) {
  for (auto _ : state) {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }
}
BENCHMARK(BM_SpinQuantum);

void BM_DequePushPop(benchmark::State& state) {
  core::ChaseLevDeque d(128);
  for (auto _ : state) {
    d.push(1);
    benchmark::DoNotOptimize(d.pop());
  }
}
BENCHMARK(BM_DequePushPop);

void BM_DequeStealUncontended(benchmark::State& state) {
  core::ChaseLevDeque d(128);
  for (auto _ : state) {
    d.push(1);
    benchmark::DoNotOptimize(d.steal());
  }
}
BENCHMARK(BM_DequeStealUncontended);

void BM_CondvarWakeRoundTrip(benchmark::State& state) {
  // Full sleep/wake round trip: the cost SLEEP pays per dependency stall.
  std::mutex m;
  std::condition_variable cv;
  bool go = false, done = false, stop = false;
  std::thread sleeper([&] {
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
      cv.wait(lk, [&] { return go || stop; });
      if (stop) return;
      go = false;
      done = true;
      cv.notify_all();
    }
  });
  for (auto _ : state) {
    {
      std::unique_lock<std::mutex> lk(m);
      go = true;
      cv.notify_all();
      cv.wait(lk, [&] { return done; });
      done = false;
    }
  }
  {
    const std::lock_guard<std::mutex> lk(m);
    stop = true;
  }
  cv.notify_all();
  sleeper.join();
}
BENCHMARK(BM_CondvarWakeRoundTrip)->UseRealTime();

void BM_TeamCycleOverhead(benchmark::State& state) {
  // Fixed cost of dispatching one (empty) cycle across the team.
  const auto threads = static_cast<unsigned>(state.range(0));
  core::Team team(threads, core::StartMode::kSpin, {}, [](unsigned) {});
  for (auto _ : state) {
    team.run_cycle();
  }
}
BENCHMARK(BM_TeamCycleOverhead)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_GraphCycle67Nodes(benchmark::State& state) {
  // One full APC graph execution with no-op deck inputs, per strategy.
  engine::DjStarGraph gn;
  core::CompiledGraph cg(gn.graph());
  core::ExecOptions opts;
  opts.threads = static_cast<unsigned>(state.range(1));
  const auto strategy = static_cast<core::Strategy>(state.range(0));
  auto exec = core::make_executor(strategy, cg, opts);
  for (auto _ : state) {
    exec->run_cycle();
  }
}
BENCHMARK(BM_GraphCycle67Nodes)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 4}})
    ->ArgNames({"strategy", "threads"})
    ->UseRealTime();

// ---- DSP kernels (the node-cost side of the calibration) ----

void BM_BiquadBlock128(benchmark::State& state) {
  dsp::Biquad f;
  f.set(dsp::BiquadType::kLowpass, 1000.0, 0.707, 0.0);
  std::vector<float> buf(128, 0.5f);
  for (auto _ : state) {
    f.process(buf);
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_BiquadBlock128);

void BM_Fft256(benchmark::State& state) {
  fft::Fft fft(256);
  std::vector<std::complex<float>> data(256, {0.5f, 0.0f});
  for (auto _ : state) {
    fft.forward(data);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft256);

void BM_TimecodeDecodeBlock(benchmark::State& state) {
  timecode::TimecodeGenerator gen;
  timecode::TimecodeDecoder dec;
  audio::AudioBuffer buf(2, audio::kBlockSize);
  for (auto _ : state) {
    gen.render(buf);
    dec.process(buf);
  }
}
BENCHMARK(BM_TimecodeDecodeBlock);

void BM_EqBlock128(benchmark::State& state) {
  dsp::ThreeBandEq eq;
  audio::AudioBuffer buf(2, 128);
  for (std::size_t i = 0; i < 128; ++i) buf.at(0, i) = 0.3f;
  for (auto _ : state) {
    eq.process(buf);
    benchmark::DoNotOptimize(buf.raw().data());
  }
}
BENCHMARK(BM_EqBlock128);

}  // namespace

BENCHMARK_MAIN();
