// bench/net_throughput.cpp
// Loopback overhead of the net front-end (DESIGN.md §13 acceptance
// gate): the same deterministic session fleet is driven twice —
//
// Phase A — in-process: sessions submitted straight into an EngineHost,
// a timed run of fleet ticks. This is the serving cost floor.
//
// Phase B — loopback: a net::Server hosts an identical fleet opened
// over TCP by a subscribing client; a drainer thread consumes every
// CYCLE_AUDIO frame while the engine runs the same number of served
// ticks. wait_engine_done() reports the wall time the engine spent, so
// the comparison isolates what the edge costs the engine — fan-out
// encodes, ring pushes, reactor kicks — not client-side decode time.
//
// The gate: per-tick engine time over loopback must stay within 5% of
// in-process. Each phase takes the best of a few repetitions so a CI
// scheduler hiccup in one run does not fail the gate.
//
// Usage: net_throughput [--smoke]
//   --smoke  fewer ticks/reps; exit nonzero when the gate fails (CI).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "djstar/audio/buffer.hpp"
#include "djstar/net/client.hpp"
#include "djstar/net/server.hpp"
#include "djstar/serve/host.hpp"
#include "djstar/serve/synthetic.hpp"
#include "djstar/support/csv.hpp"
#include "djstar/support/time.hpp"

namespace dn = djstar::net;
namespace ds = djstar::serve;

namespace {

constexpr unsigned kSessions = 3;
// Sized so a session cycle carries realistic work (several hundred us
// of compute). At toy node costs a cycle finishes in a handful of us
// and the fixed per-cycle edge cost — one encode+ring push per session,
// one coalesced reactor kick — dominates the ratio, gating on an
// overhead no deployed fleet ever sees. The deadline is stretched to
// match so the fleet's density sum stays inside the admission bound
// (heavy offline-render sessions, not tighter realtime ones).
constexpr double kNodeCostUs = 400.0;
constexpr double kDeadlineUs = 8.0 * djstar::audio::kDeadlineUs;

ds::HostConfig host_config() {
  ds::HostConfig cfg;
  cfg.threads = 2;
  return cfg;
}

ds::SyntheticSpec session_spec(unsigned i) {
  ds::SyntheticSpec s;
  s.name = "net-bench-" + std::to_string(i);
  s.qos = ds::QoS::kStandard;  // drop-oldest under pressure, never doomed
  s.deadline_us = kDeadlineUs;
  s.width = 4;
  s.depth = 3;
  s.node_cost_us = kNodeCostUs;
  s.jitter = 0.2;
  s.sheddable_fraction = 0.0;
  s.seed = 100 + i;
  s.deterministic = true;  // fixed-iteration work: both phases run the
                           // exact same instruction stream per cycle
  return s;
}

dn::OpenSessionRequest wire_spec(unsigned i) {
  const ds::SyntheticSpec s = session_spec(i);
  dn::OpenSessionRequest r;
  r.qos = static_cast<std::uint8_t>(s.qos);
  r.subscribe = true;
  r.deterministic = s.deterministic;
  r.deadline_us = s.deadline_us;
  r.width = s.width;
  r.depth = s.depth;
  r.node_cost_us = s.node_cost_us;
  r.jitter = s.jitter;
  r.sheddable_fraction = s.sheddable_fraction;
  r.seed = s.seed;
  r.name = s.name;
  return r;
}

/// Phase A: ticks of an in-process fleet, wall us per tick.
double run_in_process(std::uint64_t ticks) {
  ds::EngineHost host(host_config());
  for (unsigned i = 0; i < kSessions; ++i) {
    host.submit(ds::make_synthetic_session(session_spec(i)));
  }
  // Settle admission + first-touch before the timed window.
  for (int i = 0; i < 50; ++i) host.run_fleet_cycle();
  const auto t0 = djstar::support::now();
  for (std::uint64_t i = 0; i < ticks; ++i) host.run_fleet_cycle();
  return djstar::support::since_us(t0) / static_cast<double>(ticks);
}

struct LoopbackRun {
  double us_per_tick = 0;
  std::uint64_t audio_frames = 0;
  bool ok = false;
};

/// Phase B: the same fleet over TCP, engine wall us per served tick.
LoopbackRun run_loopback(std::uint64_t ticks) {
  LoopbackRun out;
  dn::ServerConfig cfg;
  cfg.host = host_config();
  cfg.max_ticks = ticks;
  dn::Server server(cfg);
  server.start();

  dn::Client client;
  if (!client.connect(server.port())) {
    std::fprintf(stderr, "loopback connect failed\n");
    return out;
  }
  for (unsigned i = 0; i < kSessions; ++i) {
    const auto reply = client.open_session(wire_spec(i));
    if (!reply.has_value() ||
        reply->state != static_cast<std::uint8_t>(ds::SessionState::kActive)) {
      std::fprintf(stderr, "session %u not admitted over loopback\n", i);
      return out;
    }
  }
  std::uint64_t frames = 0;
  std::thread drainer([&] {
    while (client.read_audio().has_value()) ++frames;
  });
  const double elapsed_us = server.wait_engine_done();
  server.stop();  // closes the connection; the drainer sees EOF
  drainer.join();

  const std::uint64_t served = server.served_ticks();
  out.us_per_tick = served ? elapsed_us / static_cast<double>(served) : 0;
  out.audio_frames = frames;
  out.ok = served >= ticks && frames > 0;
  if (!out.ok) {
    std::fprintf(stderr, "loopback run incomplete: served=%llu frames=%llu\n",
                 static_cast<unsigned long long>(served),
                 static_cast<unsigned long long>(frames));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::uint64_t ticks = smoke ? 1500 : 8000;
  const int reps = smoke ? 3 : 5;

  std::printf("net_throughput: %u sessions, %llu ticks, best of %d reps\n",
              kSessions, static_cast<unsigned long long>(ticks), reps);

  double best_a = 0;
  double best_b = 0;
  std::uint64_t frames = 0;
  bool ok = true;
  for (int r = 0; r < reps; ++r) {
    const double a = run_in_process(ticks);
    if (best_a == 0 || a < best_a) best_a = a;
    const LoopbackRun b = run_loopback(ticks);
    ok = ok && b.ok;
    if (b.ok && (best_b == 0 || b.us_per_tick < best_b)) {
      best_b = b.us_per_tick;
      frames = b.audio_frames;
    }
    std::printf("  rep %d: in-process %.2f us/tick, loopback %.2f us/tick\n",
                r, a, b.us_per_tick);
  }

  const double overhead =
      best_a > 0 ? (best_b - best_a) / best_a * 100.0 : 100.0;
  std::printf("best: in-process %.2f us/tick, loopback %.2f us/tick, "
              "overhead %+.2f%% (gate < 5%%), %llu audio frames\n",
              best_a, best_b, overhead,
              static_cast<unsigned long long>(frames));

  djstar::support::CsvWriter csv;
  csv.cells("phase", "sessions", "ticks", "us_per_tick", "overhead_pct",
            "audio_frames");
  csv.cells("in_process", kSessions, ticks, best_a, 0.0, 0);
  csv.cells("loopback", kSessions, ticks, best_b, overhead, frames);
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string path = "results/net_throughput.csv";
  if (csv.save(path)) std::printf("wrote %s\n", path.c_str());

  if (overhead >= 5.0) {
    std::printf("GATE FAIL: loopback overhead above 5%%\n");
    ok = false;
  }
  if (smoke) {
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return ok ? 0 : 1;
}
