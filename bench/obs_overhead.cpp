// bench/obs_overhead.cpp
// Cost of the observability layers (DESIGN.md §10/§14/§15): the
// fully-enabled telemetry stack — metrics registry, event journal, and
// the always-on flight recorder capturing every worker span — the
// always-on attribution profiler (per-cycle critical-path
// reconstruction + blame tracking), and the SLO engine (per-cycle
// time-series record + burn-rate evaluation on sealed windows) must
// each stay under 2% mean APC-time overhead versus a bare engine. The
// paper's measurements are only trustworthy if measuring them is
// ~free, and the attribution/SLO columns are what license shipping
// DJSTAR_PROF=attrib and DJSTAR_SLO=on always-on.
//
// Usage: obs_overhead [--smoke]
//   --smoke  short run on the sequential strategy; exits nonzero when
//            any overhead gate fails (retried to ride out CI noise).
#include <cstring>
#include <filesystem>

#include "bench_common.hpp"

namespace {

struct Overhead {
  double raw_mean_us = 0;
  double tel_mean_us = 0;
  double att_mean_us = 0;
  double slo_mean_us = 0;
  double raw_p99_us = 0;
  double tel_p99_us = 0;
  double att_p99_us = 0;
  double slo_p99_us = 0;
  double tel_pct() const {
    return 100.0 * (tel_mean_us - raw_mean_us) / raw_mean_us;
  }
  double att_pct() const {
    return 100.0 * (att_mean_us - raw_mean_us) / raw_mean_us;
  }
  double slo_pct() const {
    return 100.0 * (slo_mean_us - raw_mean_us) / raw_mean_us;
  }
};

Overhead measure(djstar::core::Strategy s, unsigned threads,
                 std::size_t iters) {
  using namespace djstar;
  engine::EngineConfig cfg;
  cfg.strategy = s;
  cfg.threads = threads;

  engine::AudioEngine raw(cfg);
  engine::AudioEngine tel(cfg);
  tel.enable_telemetry();  // metrics + journal + flight rings, no dumps

  engine::EngineConfig acfg = cfg;
  acfg.profiler.mode = engine::ProfMode::kAttrib;
  engine::AudioEngine att(acfg);  // telemetry + critical-path attribution

  engine::EngineConfig scfg = cfg;
  scfg.slo.enabled = true;  // telemetry + tsdb record + burn-rate evals
  engine::AudioEngine slo(scfg);

  // Interleave the four engines in short batches so OS noise and
  // frequency drift hit all measurements equally (degradation.cpp
  // uses the same discipline).
  const std::size_t kBatch = 50;
  raw.run_cycles(kBatch);
  tel.run_cycles(kBatch);
  att.run_cycles(kBatch);
  slo.run_cycles(kBatch);
  raw.monitor().reset();
  tel.monitor().reset();
  att.monitor().reset();
  slo.monitor().reset();
  for (std::size_t done = 0; done < iters; done += kBatch) {
    const std::size_t n = std::min(kBatch, iters - done);
    raw.run_cycles(n);
    tel.run_cycles(n);
    att.run_cycles(n);
    slo.run_cycles(n);
  }
  Overhead o;
  o.raw_mean_us = raw.monitor().total().mean();
  o.tel_mean_us = tel.monitor().total().mean();
  o.att_mean_us = att.monitor().total().mean();
  o.slo_mean_us = slo.monitor().total().mean();
  o.raw_p99_us = raw.monitor().p99();
  o.tel_p99_us = tel.monitor().p99();
  o.att_p99_us = att.monitor().p99();
  o.slo_p99_us = slo.monitor().p99();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace djstar;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("obs_overhead — observability cost",
                "telemetry, always-on attribution, and the SLO engine each "
                "add < 2% to the mean APC time");

  constexpr double kGatePct = 2.0;
  support::CsvWriter csv;
  csv.cells("strategy", "threads", "raw_mean_us", "telemetry_mean_us",
            "overhead_pct", "attrib_mean_us", "attrib_overhead_pct",
            "slo_mean_us", "slo_overhead_pct", "raw_p99_us",
            "telemetry_p99_us", "attrib_p99_us", "slo_p99_us");

  bool pass = true;
  std::printf("  %-6s %8s %12s %12s %10s %12s %10s %12s %10s\n", "", "threads",
              "raw us", "telemetry us", "overhead", "attrib us", "overhead",
              "slo us", "overhead");
  const auto print_row = [](const char* label, unsigned threads,
                            const Overhead& o, const char* suffix) {
    std::printf(
        "  %-6s %8u %12.1f %12.1f %9.2f%% %12.1f %9.2f%% %12.1f %9.2f%%%s\n",
        label, threads, o.raw_mean_us, o.tel_mean_us, o.tel_pct(),
        o.att_mean_us, o.att_pct(), o.slo_mean_us, o.slo_pct(), suffix);
  };
  const auto csv_row = [&](const char* strategy, unsigned threads,
                           const Overhead& o) {
    csv.cells(strategy, threads, o.raw_mean_us, o.tel_mean_us, o.tel_pct(),
              o.att_mean_us, o.att_pct(), o.slo_mean_us, o.slo_pct(),
              o.raw_p99_us, o.tel_p99_us, o.att_p99_us, o.slo_p99_us);
  };

  if (smoke) {
    // CI gate: sequential only (the container is single-core, so a
    // parallel strategy measures the scheduler's oversubscription, not
    // the observability). Retry to ride out scheduling noise on shared
    // runners; one clean attempt proves the hot paths are cheap. All
    // three columns must come up calm in the same attempt.
    const std::size_t iters = 400;
    constexpr int kAttempts = 4;
    double best = 1e9;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      const Overhead o = measure(core::Strategy::kSequential, 1, iters);
      const double worst =
          std::max({o.tel_pct(), o.att_pct(), o.slo_pct()});
      best = std::min(best, worst);
      print_row("SEQ", 1u, o, worst < kGatePct ? "" : "  (retrying)");
      csv_row("sequential", 1, o);
      if (worst < kGatePct) break;
    }
    pass = best < kGatePct;
  } else {
    const std::size_t iters = bench::measure_iters();
    const auto run = [&](core::Strategy s, unsigned threads,
                         const char* label) {
      const Overhead o = measure(s, threads, iters);
      print_row(label, threads, o, "");
      csv_row(core::to_string(s).data(), threads, o);
      if (o.tel_pct() >= kGatePct || o.att_pct() >= kGatePct ||
          o.slo_pct() >= kGatePct) {
        pass = false;
      }
    };
    run(core::Strategy::kSequential, 1, "SEQ");
    for (core::Strategy s : core::kParallelStrategies) {
      run(s, 4, bench::strategy_label(s));
    }
  }

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const auto path = std::getenv("DJSTAR_BENCH_OUT")
                        ? bench::out_path("obs_overhead.csv")
                        : std::string("results/obs_overhead.csv");
  if (csv.save(path)) std::printf("\nwrote %s\n", path.c_str());

  std::printf("%s: %s (gate: mean overhead < %.0f%%, telemetry, "
              "attribution, and slo columns)\n",
              smoke ? "smoke" : "full", pass ? "PASS" : "FAIL", kGatePct);
  return pass ? 0 : 1;
}
