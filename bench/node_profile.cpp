// bench/node_profile.cpp
// The paper's §IV methodology, end to end, on this host: "we measured
// the average vertex computation time using 10k APC executions" and fed
// them to the scheduling simulator. Here: measure per-node means of the
// real DSP graph, print them against the paper-scale reference
// durations, and run the earliest-start / 4-core schedule analyses on
// the measured profile.
#include "bench_common.hpp"
#include "djstar/support/cost_table.hpp"

int main() {
  using namespace djstar;
  bench::banner("§IV methodology — per-node profile of the live graph",
                "measure average vertex times over many APCs, then simulate");

  const std::size_t iters = bench::measure_iters();
  engine::EngineConfig cfg;
  cfg.strategy = core::Strategy::kSequential;
  cfg.threads = 1;
  engine::AudioEngine e(cfg);
  e.run_cycles(20);

  const auto measured = e.measure_node_durations(iters);
  const auto reference = e.graph_nodes().reference_durations();
  const auto& cg = e.compiled();

  double measured_sum = 0, reference_sum = 0;
  std::printf("per-node mean execution time over %zu APCs:\n\n", iters);
  std::printf("  %-14s %12s %14s\n", "node", "host (us)", "paper-scale (us)");
  for (core::NodeId n = 0; n < cg.node_count(); ++n) {
    measured_sum += measured[n];
    reference_sum += reference[n];
    // Print the interesting rows; utility nodes are all alike.
    if (measured[n] > 1.0 || n < 4) {
      std::printf("  %-14s %12.2f %14.1f\n", cg.name(n).c_str(), measured[n],
                  reference[n]);
    }
  }
  std::printf("  %-14s %12.2f %14.1f\n", "TOTAL", measured_sum, reference_sum);

  support::CsvWriter csv;
  csv.cells("node", "name", "host_us", "reference_us");
  for (core::NodeId n = 0; n < cg.node_count(); ++n) {
    csv.cells(n, cg.name(n), measured[n], reference[n]);
  }
  const auto path = bench::out_path("node_profile.csv");
  if (csv.save(path)) std::printf("\nwrote %s\n", path.c_str());

  // Ship the calibrated overhead constants alongside the profile — the
  // same table the simulator defaults and the fusion threshold read.
  const auto cost_path = bench::out_path("cost_table.csv");
  if (support::costs::write_cost_table_csv(cost_path)) {
    std::printf("wrote %s (%zu calibrated constants)\n", cost_path.c_str(),
                support::costs::rows().size());
  }

  // Feed the measured profile to the schedulers, as the paper did.
  const auto sim = sim::SimGraph::from_compiled(cg, measured);
  const auto inf = sim::earliest_start_schedule(sim);
  const auto four = sim::list_schedule(sim, 4);
  std::printf("\nschedule analysis of the MEASURED profile (this host):\n");
  std::printf("  sequential (total work)   %8.1f us\n",
              sim::total_work_us(sim));
  std::printf("  critical path             %8.1f us\n",
              sim::critical_path_us(sim));
  std::printf("  earliest start, inf procs %8.1f us (peak concurrency %d)\n",
              inf.makespan_us, inf.peak_concurrency());
  std::printf("  4-core list schedule      %8.1f us (max speedup %.2fx)\n",
              four.makespan_us, sim::total_work_us(sim) / four.makespan_us);
  std::printf("\n(the paper's corresponding numbers on its graph: 1078.5 us\n"
              "sequential, 295 us critical path, 33 peak, 324 us on 4 cores)\n");
  return 0;
}
