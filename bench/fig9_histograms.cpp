// bench/fig9_histograms.cpp
// Reproduces paper Figure 9: distribution of task-graph execution times
// over 10k iterations, per strategy, 4 threads.
//
// Paper shape claims: every strategy is bimodal (two peaks, mirroring
// the input-dependent node runtimes); SLEEP has no executions below
// 0.4 ms (thread wake-up cost); WS is spread more evenly with unwanted
// stragglers near 0.8 ms.
#include "bench_common.hpp"

int main() {
  using namespace djstar;
  bench::banner(
      "Figure 9 — execution time distributions (4 threads, 10k APCs)",
      "two peaks per strategy; SLEEP floor ~0.4 ms; WS tail toward 0.8 ms");

  const std::size_t iters = bench::sim_iters();
  bench::ReferenceSetup ref;
  support::CsvWriter csv;
  csv.cells("strategy", "bin_lo_ms", "bin_hi_ms", "count");

  for (core::Strategy s : core::kParallelStrategies) {
    const auto series =
        bench::simulate_series(ref, bench::to_sim(s), 4, iters);
    support::Histogram hist(0.2, 0.8, 24);  // the paper's 0.2..0.8 ms axis
    for (double us : series) hist.add(us / 1000.0);
    std::printf("%s\n",
                support::render_histogram(
                    hist, 60,
                    std::string(bench::strategy_label(s)) +
                        " — graph execution response time (ms)")
                    .c_str());
    const auto summary = support::Summary::of(series);
    std::printf("  mean %.3f ms  p50 %.3f  p90 %.3f  p99 %.3f  max %.3f\n\n",
                summary.mean / 1000, summary.p50 / 1000, summary.p90 / 1000,
                summary.p99 / 1000, summary.max / 1000);
    for (std::size_t b = 0; b < hist.bin_count(); ++b) {
      csv.cells(core::to_string(s), hist.bin_lo(b), hist.bin_hi(b),
                hist.count(b));
    }

    if (s == core::Strategy::kSleep) {
      std::printf("  SLEEP executions below 0.4 ms: %.2f%% (paper: none)\n\n",
                  100.0 * hist.cdf(0.4));
    }
  }

  const auto path = bench::out_path("fig9_histograms.csv");
  if (csv.save(path)) std::printf("wrote %s\n", path.c_str());
  return 0;
}
