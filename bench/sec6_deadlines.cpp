// bench/sec6_deadlines.cpp
// Reproduces paper §VI's deadline-miss analysis: "about five out of 10k
// APC executions exceed the deadline of 2.9 ms, although the average
// task graph execution time of ~0.45 ms on four cores is far below the
// threshold"; BUSY produced the fewest timeouts, WS more than BUSY.
//
// An APC misses when TP+GP+VC (~0.8 ms average, modelled with the same
// two-regime + heavy-tail sampler) plus the task-graph time exceeds
// 2.9 ms. Misses come from the rare spike events (OS preemption, page
// faults) in the tail of the node-duration model.
#include "bench_common.hpp"
#include "djstar/engine/headroom.hpp"

int main() {
  using namespace djstar;
  bench::banner("§VI — missed deadlines per 10k APCs",
                "~5 / 10000 misses (BUSY fewest; WS more than BUSY)");

  const std::size_t iters = bench::sim_iters();
  bench::ReferenceSetup ref;

  // TP+GP+VC model: mean 0.8 ms with the same regime/jitter behaviour
  // and a rare heavy tail.
  sim::SamplerConfig overhead_cfg;
  overhead_cfg.seed = 77;
  overhead_cfg.heavy_probability = 0.35;
  overhead_cfg.heavy_factor = 1.25;
  overhead_cfg.jitter_sigma = 0.08;
  overhead_cfg.spike_probability = 2e-4;
  overhead_cfg.spike_factor = 3.0;
  const std::vector<double> overhead_mean{741.0};  // -> ~0.8 ms with regimes
  sim::DurationSampler overhead(overhead_mean, overhead_cfg);

  std::printf("simulated %zu APCs per strategy (deadline %.1f us):\n\n", iters,
              audio::kDeadlineUs);
  std::printf("  %-6s %12s %12s %14s\n", "", "misses", "per 10k",
              "worst APC (ms)");

  support::CsvWriter csv;
  csv.cells("strategy", "misses", "iters", "worst_ms");

  for (core::Strategy s : core::kParallelStrategies) {
    const auto graph_series =
        bench::simulate_series(ref, bench::to_sim(s), 4, iters);
    std::vector<double> ov;
    std::size_t misses = 0;
    double worst = 0;
    for (double g_us : graph_series) {
      overhead.sample(ov);
      const double apc = ov[0] + g_us;
      worst = std::max(worst, apc);
      if (apc > audio::kDeadlineUs) ++misses;
    }
    const double per10k =
        10000.0 * static_cast<double>(misses) / static_cast<double>(iters);
    std::printf("  %-6s %12zu %12.1f %14.3f\n", bench::strategy_label(s),
                misses, per10k, worst / 1000.0);
    csv.cells(core::to_string(s), misses, iters, worst / 1000.0);
  }
  std::printf("\n  paper: 5 / 10k for BUSY; WS produced more timeouts than "
              "BUSY; SLEEP the most.\n");

  // Live measurement on this host (absolute miss counts depend entirely
  // on the host; reported for completeness).
  const std::size_t miters = bench::measure_iters();
  std::printf("\nmeasured on this host (%zu APCs each):\n\n", miters);
  std::printf("  %-6s %10s %12s %14s\n", "", "misses", "mean APC ms",
              "worst APC ms");
  for (core::Strategy s : core::kParallelStrategies) {
    engine::EngineConfig cfg;
    cfg.strategy = s;
    cfg.threads = 4;
    engine::AudioEngine e(cfg);
    e.run_cycles(30);
    e.monitor().reset();
    e.run_cycles(miters);
    const auto& m = e.monitor();
    std::printf("  %-6s %10zu %12.3f %14.3f\n", bench::strategy_label(s),
                m.misses(), m.total().mean() / 1000.0, m.total().max() / 1000.0);
  }

  // Latency advisor (paper §III-A: "low latency is a key factor"): what
  // buffer size would this host support at the paper's ~5/10k miss rate?
  {
    engine::EngineConfig cfg;
    cfg.strategy = core::Strategy::kBusyWait;
    cfg.threads = 4;
    engine::AudioEngine e(cfg);
    e.run_cycles(30);
    e.monitor().reset();
    e.run_cycles(miters);
    const auto report = engine::advise_headroom(e.monitor());
    std::printf("\nlatency advisor (BUSY, 4 threads, this host):\n");
    std::printf("  %8s %12s %12s %14s\n", "frames", "latency ms",
                "miss rate", "headroom us");
    for (const auto& entry : report.entries) {
      std::printf("  %8zu %12.2f %12.5f %14.1f\n", entry.buffer_frames,
                  entry.latency_ms, entry.predicted_miss_rate,
                  entry.headroom_us);
    }
    if (report.recommended_frames > 0) {
      std::printf("  recommended: %zu frames (%.2f ms)\n",
                  report.recommended_frames,
                  1000.0 * static_cast<double>(report.recommended_frames) /
                      audio::kSampleRate);
    }
  }

  const auto path = bench::out_path("sec6_deadlines.csv");
  if (csv.save(path)) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
