// bench/degradation.cpp
// Cost of the fault-tolerance layer (DESIGN.md §8): the supervised APC
// path — watchdog arm/disarm, output validation, ladder bookkeeping —
// must stay under 2% overhead versus the raw run_cycle() when no fault
// fires. Also demonstrates the ladder under a seeded fault plan and
// records how cycles distribute across degradation levels.
#include <cmath>
#include <filesystem>

#include "bench_common.hpp"
#include "djstar/core/fault.hpp"
#include "djstar/engine/supervisor.hpp"

int main() {
  using namespace djstar;
  bench::banner("degradation — supervised APC overhead & ladder",
                "fault-free supervision costs < 2% of the raw APC");

  const std::size_t iters = bench::measure_iters();
  support::CsvWriter csv;
  csv.cells("strategy", "raw_mean_us", "supervised_mean_us", "overhead_pct",
            "raw_p99_us", "supervised_p99_us");

  std::printf("fault-free overhead (%zu APCs per run, 4 threads):\n\n", iters);
  std::printf("  %-6s %12s %12s %10s %12s\n", "", "raw us", "superv us",
              "overhead", "superv p99");

  for (core::Strategy s : core::kParallelStrategies) {
    engine::EngineConfig cfg;
    cfg.strategy = s;
    cfg.threads = 4;

    engine::AudioEngine raw(cfg);
    engine::AudioEngine sup(cfg);
    sup.enable_supervision();  // watchdog on, defaults — the shipping setup

    // Interleave the two engines in short batches so OS noise and
    // frequency drift hit both measurements equally.
    const std::size_t kBatch = 50;
    raw.run_cycles(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) sup.run_cycle_supervised();
    raw.monitor().reset();
    sup.monitor().reset();
    for (std::size_t done = 0; done < iters; done += kBatch) {
      const std::size_t n = std::min(kBatch, iters - done);
      raw.run_cycles(n);
      for (std::size_t i = 0; i < n; ++i) sup.run_cycle_supervised();
    }
    const double raw_mean = raw.monitor().total().mean();
    const double raw_p99 = raw.monitor().p99();
    const double sup_mean = sup.monitor().total().mean();
    const double sup_p99 = sup.monitor().p99();

    const double overhead_pct = 100.0 * (sup_mean - raw_mean) / raw_mean;
    std::printf("  %-6s %12.1f %12.1f %9.2f%% %12.1f\n",
                bench::strategy_label(s), raw_mean, sup_mean, overhead_pct,
                sup_p99);
    csv.cells(core::to_string(s), raw_mean, sup_mean, overhead_pct, raw_p99,
              sup_p99);
  }

  // Ladder demonstration: a seeded fault mix on the BUSY engine; every
  // transition and the per-level cycle split come out of the monitor.
  {
    engine::EngineConfig cfg;
    cfg.strategy = core::Strategy::kBusyWait;
    cfg.threads = 4;
    engine::AudioEngine e(cfg);

    engine::SupervisorConfig sc;
    sc.fault_trip = 1;
    sc.recover_cycles = 64;
    e.enable_supervision(sc);

    core::chaos::FaultPlan plan;
    plan.seed = 42;
    plan.throw_permille = 2;
    plan.latency_permille = 10;
    plan.stall_permille = 1;
    e.arm_faults(plan);

    for (std::size_t i = 0; i < iters; ++i) e.run_cycle_supervised();

    const auto& st = e.supervisor().stats();
    std::printf("\nladder under faults (BUSY, seed %llu, %zu APCs):\n",
                static_cast<unsigned long long>(plan.seed), iters);
    std::printf("  faults %llu  cancels %llu  overruns %llu  recoveries %llu  "
                "fallback packets %llu\n",
                static_cast<unsigned long long>(st.faults),
                static_cast<unsigned long long>(st.cancels),
                static_cast<unsigned long long>(st.overruns),
                static_cast<unsigned long long>(st.recoveries),
                static_cast<unsigned long long>(st.fallback_emissions));
    std::printf("  %-22s %10s %12s\n", "level", "cycles", "mean us");
    for (unsigned l = 0; l < engine::kDegradationLevelCount; ++l) {
      const auto cycles = e.monitor().level_cycles(l);
      if (cycles == 0) continue;
      std::printf("  %-22s %10zu %12.1f\n",
                  engine::to_string(static_cast<engine::DegradationLevel>(l)),
                  cycles, e.monitor().level_total(l).mean());
    }
    std::printf("  transitions logged: %zu\n",
                e.supervisor().transitions().size());
  }

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const auto path = std::getenv("DJSTAR_BENCH_OUT")
                        ? bench::out_path("degradation.csv")
                        : std::string("results/degradation.csv");
  if (csv.save(path)) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
