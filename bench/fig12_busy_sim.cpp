// bench/fig12_busy_sim.cpp
// Reproduces paper Figure 12 / §VI: the BUSY strategy replayed inside
// the scheduling simulator.
//
// Paper: measured BUSY averages 452 us on hardware, but replaying the
// same strategy in RESCON (which cannot model thread management,
// node assignment and dependency checking) yields 327 us — within 8% of
// the optimal 4-core schedule (324 us). Conclusion: the busy-waiting
// heuristic's *schedule* is near-optimal; the gap is pure overhead.
#include "bench_common.hpp"

int main() {
  using namespace djstar;
  bench::banner("Figure 12 — simulation of the BUSY schedule",
                "BUSY replayed in the simulator: 327 us, within 8% of the "
                "optimal 4-core schedule (324 us); hardware measured 452 us");

  bench::ReferenceSetup ref;

  const auto optimal = sim::list_schedule(ref.sim, 4);

  // RESCON-style replay: no thread-management overheads at all.
  sim::OverheadModel pure{};
  pure.dep_check_us = 0.0;
  pure.spin_quantum_us = 0.0;
  const auto busy_pure = sim::simulate_busy(ref.sim, 4, pure);

  // Replay with the calibrated overhead model (what the real executor
  // pays per node).
  const auto busy_overhead = sim::simulate_busy(ref.sim, 4);

  std::printf("optimal 4-core list schedule : %7.1f us  (paper: 324 us)\n",
              optimal.makespan_us);
  std::printf("BUSY replay, zero overheads  : %7.1f us  (paper: 327 us)\n",
              busy_pure.makespan_us);
  std::printf("  vs optimal                 : %+6.1f %%   (paper: within 8 %%)\n",
              100.0 * (busy_pure.makespan_us / optimal.makespan_us - 1.0));
  std::printf("BUSY replay, calibrated ovh  : %7.1f us  (paper measured: 452 us)\n",
              busy_overhead.makespan_us);

  std::printf("\n%s\n",
              support::render_gantt(busy_pure.to_spans(), 100,
                                    busy_pure.makespan_us,
                                    "Simulation of the BUSY schedule (Fig. 12)")
                  .c_str());

  // Efficiency figure quoted in the abstract: 99% vs optimal schedule.
  std::printf("schedule efficiency of BUSY vs optimal: %.1f %%  (paper: 99 %%)\n",
              100.0 * optimal.makespan_us / busy_pure.makespan_us);
  return 0;
}
