// bench/ablation_priority_rule.cpp
// Ablation of the list-scheduler priority rule. The paper derives its
// "optimal schedule" baseline from RESCON with the dependency-sorted
// queue as priority; critical-path (highest-level-first) priority is the
// textbook improvement. How much was left on the table?
#include "bench_common.hpp"

int main() {
  using namespace djstar;
  bench::banner("ablation — list-scheduler priority rule",
                "queue-order priority (paper) vs critical-path priority");

  bench::ReferenceSetup ref;
  const double cp = sim::critical_path_us(ref.sim);
  std::printf("critical path (absolute lower bound): %.1f us\n\n", cp);

  std::printf("  procs   queue-order (us)   critical-path (us)   delta\n");
  for (std::uint32_t p = 1; p <= 8; ++p) {
    const auto qo = sim::list_schedule(ref.sim, p, sim::PriorityRule::kQueueOrder);
    const auto hlf =
        sim::list_schedule(ref.sim, p, sim::PriorityRule::kCriticalPath);
    std::printf("  %5u   %16.1f   %18.1f   %+5.1f %%\n", p, qo.makespan_us,
                hlf.makespan_us,
                100.0 * (hlf.makespan_us / qo.makespan_us - 1.0));
  }

  // With sampled (noisy) durations, averaged over many draws.
  const std::size_t iters = bench::sim_iters() / 10 + 1;
  sim::SamplerConfig cfg;
  cfg.seed = 5;
  sim::DurationSampler sampler(ref.sim.duration_us, cfg);
  sim::SimGraph g = ref.sim;
  support::OnlineStats qo_stats, hlf_stats;
  for (std::size_t i = 0; i < iters; ++i) {
    sampler.sample(g.duration_us);
    qo_stats.add(
        sim::list_schedule(g, 4, sim::PriorityRule::kQueueOrder).makespan_us);
    hlf_stats.add(
        sim::list_schedule(g, 4, sim::PriorityRule::kCriticalPath).makespan_us);
  }
  std::printf("\nwith per-cycle sampled durations (4 procs, %zu draws):\n",
              iters);
  std::printf("  queue-order   mean %8.1f us\n", qo_stats.mean());
  std::printf("  critical-path mean %8.1f us (%+.1f %%)\n", hlf_stats.mean(),
              100.0 * (hlf_stats.mean() / qo_stats.mean() - 1.0));
  std::printf("\nreading: at 4 cores, critical-path priority reaches the\n"
              "critical-path bound itself — about 10%% better than the\n"
              "paper's depth-sorted queue, which starts the heavy deck-A\n"
              "chain behind a column of short sources. A practical upgrade\n"
              "the paper leaves on the table (its queue is inherited from\n"
              "the sequential implementation).\n");
  return 0;
}
