// bench/serve_capacity.cpp
// Serving-capacity harness for the multi-session EngineHost (DESIGN.md
// §9): how many concurrent sessions one shared worker pool sustains at
// a 99.9% deadline SLO, and what happens past the admission bound.
//
// Phase A — capacity sweep: offer 1..N mixed-QoS sessions with honest
// declared costs, run a fixed number of fleet ticks per point, and
// record admitted count, hit rates, and latency quantiles. Throughput
// scales with the offered load until the density bound caps the active
// set; past that point extra sessions queue instead of dragging the
// admitted set below its SLO.
//
// Phase B — 2x overload: seeded Poisson arrivals/departures of sessions
// whose besteffort members understate their cost 4x, so the true load
// reaches ~2x the admission budget. The overload handler must walk the
// besteffort ladders and shed, keeping the realtime miss rate at or
// under the 0.1% SLO.
//
// Both phases end with an admission-replay check: a second host fed the
// identical submission sequence must reproduce the admission log
// verdict-for-verdict (determinism acceptance criterion).
//
// Usage: serve_capacity [--smoke]
//   --smoke  small sweep, few ticks; exit nonzero on replay mismatch or
//            a blown overload SLO (CI gate).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "djstar/serve/host.hpp"
#include "djstar/serve/synthetic.hpp"
#include "djstar/support/csv.hpp"

namespace ds = djstar::serve;

namespace {

// One synthetic workload family: width-4/depth-3 layered DAG, ~usable
// fraction of the 2.9 ms packet deadline per session.
ds::SyntheticSpec family_spec(ds::QoS qos, std::uint64_t seed,
                              double node_cost_us,
                              double deadline_us = djstar::audio::kDeadlineUs) {
  ds::SyntheticSpec s;
  s.name = std::string(ds::to_string(qos)) + "-" + std::to_string(seed);
  s.qos = qos;
  s.deadline_us = deadline_us;
  s.width = 4;
  s.depth = 3;
  s.node_cost_us = node_cost_us;
  s.jitter = 0.2;
  s.seed = seed;
  return s;
}

// Steady-state miss accounting: counters are monotonic, so diffing two
// FleetStats snapshots isolates the window after warmup/settling from
// cold-start noise (first-touch faults, lazy allocation, ladder
// transients).
struct SteadyRates {
  double hit = 1.0;
  double rt_hit = 1.0;
  double std_hit = 1.0;
  double be_hit = 1.0;
  std::uint64_t rt_cycles = 0;
};

SteadyRates steady_rates(const ds::FleetStats& before,
                         const ds::FleetStats& after) {
  const auto hit = [](std::uint64_t c0, std::uint64_t m0, std::uint64_t c1,
                      std::uint64_t m1) {
    const std::uint64_t c = c1 - c0;
    return c ? 1.0 - static_cast<double>(m1 - m0) / static_cast<double>(c)
             : 1.0;
  };
  SteadyRates r;
  r.hit = hit(before.cycles, before.misses, after.cycles, after.misses);
  const auto q = [&](ds::QoS qos) {
    const auto& a = before.by_qos[ds::rank(qos)];
    const auto& b = after.by_qos[ds::rank(qos)];
    return hit(a.cycles, a.misses, b.cycles, b.misses);
  };
  r.rt_hit = q(ds::QoS::kRealtime);
  r.std_hit = q(ds::QoS::kStandard);
  r.be_hit = q(ds::QoS::kBestEffort);
  r.rt_cycles = after.by_qos[ds::rank(ds::QoS::kRealtime)].cycles -
                before.by_qos[ds::rank(ds::QoS::kRealtime)].cycles;
  return r;
}

ds::QoS mix_qos(std::uint64_t i) {
  // 1:1:2 realtime:standard:besteffort mix.
  switch (i % 4) {
    case 0: return ds::QoS::kRealtime;
    case 1: return ds::QoS::kStandard;
    default: return ds::QoS::kBestEffort;
  }
}

struct PhaseRow {
  std::string phase;
  unsigned offered = 0;
  ds::FleetStats fleet;
  SteadyRates steady;
  double density = 0;
  unsigned threads = 1;
};

void append_row(djstar::support::CsvWriter& csv, const PhaseRow& r) {
  const auto& f = r.fleet;
  const auto& rt = f.by_qos[ds::rank(ds::QoS::kRealtime)];
  const auto& st = f.by_qos[ds::rank(ds::QoS::kStandard)];
  const auto& be = f.by_qos[ds::rank(ds::QoS::kBestEffort)];
  csv.cells(r.phase, r.offered, f.admitted, f.queued_peak, f.rejected,
            r.density, r.threads, f.ticks, f.cycles, r.steady.hit,
            f.p50_latency_us, f.p99_latency_us, r.steady.rt_hit,
            rt.p99_latency_us, r.steady.std_hit, r.steady.be_hit, st.shed,
            be.shed, f.overload_events);
}

// Replay acceptance: feed an identical submission sequence to a fresh
// host and compare admission logs record-for-record.
bool replay_matches(const ds::HostConfig& cfg,
                    const std::vector<ds::SyntheticSpec>& sequence,
                    const std::vector<ds::AdmissionRecord>& expected) {
  ds::EngineHost replay(cfg);
  for (const auto& s : sequence) {
    replay.submit(ds::make_synthetic_session(s));
  }
  replay.run_fleet_cycle();
  const auto& log = replay.admission_log();
  if (log.size() != expected.size()) return false;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].id != expected[i].id ||
        log[i].verdict != expected[i].verdict ||
        log[i].projected_density != expected[i].projected_density) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  const unsigned max_offered = smoke ? 4 : 16;
  const std::size_t warmup_ticks = smoke ? 20 : 100;
  const std::size_t ticks_per_point = smoke ? 60 : 400;
  const std::size_t overload_ticks = smoke ? 200 : 3000;
  const std::size_t overload_settle = smoke ? 60 : 600;
  constexpr double kNodeCostUs = 40.0;

  djstar::support::CsvWriter csv;
  csv.cells("phase", "offered", "admitted", "queued_peak", "rejected",
            "density", "threads", "ticks", "cycles", "hit_rate", "p50_us",
            "p99_us", "rt_hit_rate", "rt_p99_us", "std_hit_rate",
            "be_hit_rate", "shed_std", "shed_be", "overload_events");

  ds::HostConfig base;
  base.threads = 0;  // DJSTAR_THREADS / hardware concurrency
  bool ok = true;

  // ---- Phase A: capacity sweep -----------------------------------------
  std::printf("phase A: capacity sweep (1..%u offered sessions, %zu ticks"
              " each)\n", max_offered, ticks_per_point);
  std::printf("  %-8s %-9s %-8s %-10s %-10s %-10s\n", "offered", "admitted",
              "density", "hit", "rt_hit", "p99_us");

  unsigned threads = 1;
  unsigned slo_sessions = 0;  // most admitted sessions with rt hit >= 99.9%
  for (unsigned offered = 1; offered <= max_offered; ++offered) {
    ds::EngineHost host(base);
    threads = host.threads();
    std::vector<ds::SyntheticSpec> sequence;
    for (unsigned i = 0; i < offered; ++i) {
      sequence.push_back(family_spec(mix_qos(i), 100 + i, kNodeCostUs));
    }
    for (const auto& s : sequence) {
      host.submit(ds::make_synthetic_session(s));
    }
    host.run_fleet_cycles(warmup_ticks);
    const ds::FleetStats baseline = host.stats();
    host.run_fleet_cycles(ticks_per_point);

    PhaseRow row{"capacity", offered, host.stats(),
                 steady_rates(baseline, host.stats()),
                 host.active_density(), threads};
    append_row(csv, row);
    // The SLO class is realtime — capacity is judged on its hit rate.
    if (row.steady.rt_hit >= 0.999) {
      slo_sessions = std::max(
          slo_sessions, static_cast<unsigned>(row.fleet.admitted));
    }
    std::printf("  %-8u %-9llu %-8.3f %-10.5f %-10.5f %-10.1f\n", offered,
                static_cast<unsigned long long>(row.fleet.admitted),
                row.density, row.steady.hit, row.steady.rt_hit,
                row.fleet.p99_latency_us);

    if (offered == max_offered) {
      ds::EngineHost probe(base);
      for (const auto& s : sequence) {
        probe.submit(ds::make_synthetic_session(s));
      }
      probe.run_fleet_cycle();
      if (!replay_matches(base, sequence, probe.admission_log())) {
        std::printf("  REPLAY MISMATCH: admission log not deterministic\n");
        ok = false;
      } else {
        std::printf("  admission replay: deterministic (%zu decisions)\n",
                    probe.admission_log().size());
      }
    }
  }
  std::printf("  sessions sustained at 99.9%% SLO: %u (%.2f per core on %u"
              " cores)\n", slo_sessions,
              static_cast<double>(slo_sessions) / threads, threads);

  // ---- Phase B: 2x overload with Poisson churn -------------------------
  // Besteffort sessions understate their cost 4x, so the admitted set's
  // true load reaches ~2x the admission budget; the overload handler
  // must degrade/shed besteffort while realtime stays on SLO.
  std::printf("\nphase B: 2x overload, seeded Poisson churn (%zu ticks)\n",
              overload_ticks);
  ds::HostConfig over = base;
  over.overload.trip_ticks = 3;
  // The fleet tick must match the session deadline: with a tick window
  // half the deadline, sessions are due only every other tick and the
  // overload streak resets on each light tick, so trip_ticks is never
  // reached and shedding never engages.
  over.default_tick_us = 2.0 * djstar::audio::kDeadlineUs;
  ds::EngineHost host(over);
  std::mt19937_64 rng(42);
  std::exponential_distribution<double> arrival_gap(1.0 / 40.0);  // ticks
  std::vector<ds::SessionId> live;
  std::uint64_t next_arrival = 1, spawned = 0;
  // SLO judgment starts after the settling window: the first arrivals hit
  // cold allocators and the shed/degrade machinery needs a few trips to
  // push the lying besteffort sessions down their ladders.
  ds::FleetStats settled;
  for (std::uint64_t tick = 0; tick < overload_ticks; ++tick) {
    if (tick == overload_settle) settled = host.stats();
    while (tick >= next_arrival) {
      const ds::QoS qos = mix_qos(spawned);
      // 2x packet deadline: serving sessions buffer one extra packet, so
      // a single OS preemption of the spin loops does not register as an
      // SLO miss the way it would at a raw single-packet deadline.
      ds::SyntheticSpec spec = family_spec(qos, 500 + spawned, kNodeCostUs,
                                           2.0 * djstar::audio::kDeadlineUs);
      ds::SessionSpec s = ds::make_synthetic_session(spec);
      if (qos == ds::QoS::kBestEffort) {
        // The lie that creates the overload: declared density is a
        // quarter of the true cost.
        s.cost_estimate_us = 0;
        for (std::size_t n = 0; n < s.node_cost_us.size(); ++n) {
          s.node_cost_us[n] *= 0.25;
        }
      }
      live.push_back(host.submit(std::move(s)));
      ++spawned;
      next_arrival += 1 + static_cast<std::uint64_t>(arrival_gap(rng));
      // Departures keep the fleet churning at roughly steady state.
      if (live.size() > 12) {
        const std::size_t k = rng() % live.size();
        host.close(live[k]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      }
    }
    host.run_fleet_cycle();
  }

  const ds::FleetStats f = host.stats();
  const SteadyRates steady = steady_rates(settled, f);
  PhaseRow row{"overload_2x", static_cast<unsigned>(spawned), f, steady,
               host.active_density(), host.threads()};
  append_row(csv, row);
  const auto& be = f.by_qos[ds::rank(ds::QoS::kBestEffort)];
  const double rt_miss = steady.rt_cycles ? 1.0 - steady.rt_hit : 0.0;
  std::printf("  spawned %llu sessions, admitted %llu, shed %llu"
              " (be %llu), overload events %llu\n",
              static_cast<unsigned long long>(spawned),
              static_cast<unsigned long long>(f.admitted),
              static_cast<unsigned long long>(f.shed),
              static_cast<unsigned long long>(be.shed),
              static_cast<unsigned long long>(f.overload_events));
  std::printf("  realtime miss rate: %.5f%% over %llu steady cycles"
              " (SLO <= 0.1%%)\n", 100.0 * rt_miss,
              static_cast<unsigned long long>(steady.rt_cycles));
  std::printf("  besteffort hit rate: %.5f, degraded+shed as designed\n",
              steady.be_hit);
  if (rt_miss > 0.001) {
    std::printf("  OVERLOAD SLO MISS: realtime miss rate above 0.1%%\n");
    ok = false;
  }

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string path = "results/serve_capacity.csv";
  if (csv.save(path)) std::printf("\nwrote %s\n", path.c_str());

  if (smoke) {
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}
