// bench/table1_response_times.cpp
// Reproduces paper Table I: average task-graph response times (ms) for
// BUSY / SLEEP / WS over 1..4 threads, 10k APCs each.
//
// Two reproductions are reported:
//  * simulated — virtual-time models on a modelled 4-core machine with
//    calibrated overheads (the shape-faithful reproduction; this host
//    has one core);
//  * measured — the real executors running the real DSP graph on this
//    host (absolute values are host-dependent).
#include "bench_common.hpp"

namespace {

// Paper Table I (milliseconds).
constexpr double kPaper[3][4] = {
    {1.0785, 0.6371, 0.5683, 0.4516},  // BUSY
    {1.1130, 0.6447, 0.6444, 0.4657},  // SLEEP
    {1.1111, 0.6394, 0.5844, 0.4690},  // WS
};

}  // namespace

int main() {
  using namespace djstar;
  bench::banner("Table I — task graph average response times (ms)",
                "BUSY 1.0785/0.6371/0.5683/0.4516 | SLEEP 1.1130/0.6447/0.6444/0.4657 | WS 1.1111/0.6394/0.5844/0.4690");

  const std::size_t iters = bench::sim_iters();
  bench::ReferenceSetup ref;

  std::printf("simulated (virtual 4-core machine, %zu iterations/cell):\n\n", iters);
  std::printf("  %-6s %10s %10s %10s %10s\n", "", "1", "2", "3", "4");
  support::CsvWriter csv;
  csv.cells("mode", "strategy", "threads", "mean_ms", "paper_ms");

  double sim_table[3][4];
  int row = 0;
  for (core::Strategy s : core::kParallelStrategies) {
    std::printf("  %-6s", bench::strategy_label(s));
    for (unsigned t = 1; t <= 4; ++t) {
      const auto series =
          bench::simulate_series(ref, bench::to_sim(s), t, iters);
      const double ms = bench::mean_of(series) / 1000.0;
      sim_table[row][t - 1] = ms;
      std::printf(" %10.4f", ms);
      csv.cells("sim", core::to_string(s), t, ms, kPaper[row][t - 1]);
    }
    std::printf("\n");
    ++row;
  }

  std::printf("\npaper (8-core AMD FX-8120, 10k iterations/cell):\n\n");
  std::printf("  %-6s %10s %10s %10s %10s\n", "", "1", "2", "3", "4");
  const char* names[3] = {"BUSY", "SLEEP", "WS"};
  for (int r = 0; r < 3; ++r) {
    std::printf("  %-6s", names[r]);
    for (int t = 0; t < 4; ++t) std::printf(" %10.4f", kPaper[r][t]);
    std::printf("\n");
  }

  std::printf("\nshape checks (simulated vs paper):\n");
  auto ratio = [&](int r, int c) { return sim_table[r][c] / sim_table[r][0]; };
  std::printf("  BUSY 4-thread speedup   %.2fx (paper %.2fx)\n",
              1.0 / ratio(0, 3), kPaper[0][0] / kPaper[0][3]);
  std::printf("  BUSY <= SLEEP at 4 thr  %s (paper: yes)\n",
              sim_table[0][3] <= sim_table[1][3] ? "yes" : "NO");
  std::printf("  BUSY <= WS at 4 thr     %s (paper: yes)\n",
              sim_table[0][3] <= sim_table[2][3] ? "yes" : "NO");

  const std::size_t miters = bench::measure_iters();
  std::printf("\nmeasured on this host (%zu iterations/cell; host cores are NOT\n"
              "the paper's testbed — see EXPERIMENTS.md):\n\n",
              miters);
  std::printf("  %-6s %10s %10s %10s %10s\n", "", "1", "2", "3", "4");
  for (core::Strategy s : core::kParallelStrategies) {
    std::printf("  %-6s", bench::strategy_label(s));
    for (unsigned t = 1; t <= 4; ++t) {
      const auto series = bench::measure_series(s, t, miters);
      const double ms = bench::mean_of(series) / 1000.0;
      std::printf(" %10.4f", ms);
      csv.cells("measured", core::to_string(s), t, ms, kPaper[0][0]);
    }
    std::printf("\n");
  }
  {
    const auto series =
        bench::measure_series(core::Strategy::kSequential, 1, miters);
    std::printf("  %-6s %10.4f\n", "SEQ", bench::mean_of(series) / 1000.0);
  }

  const auto path = bench::out_path("table1.csv");
  if (csv.save(path)) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
