// bench/fig11_schedules.cpp
// Reproduces paper Figure 11: typical schedule realizations for the
// three strategies with four threads — which thread ran which node when,
// busy-wait boxes (gray in the paper, '.' here) and sleeping gaps.
//
// Two renderings: (a) virtual-time simulation at paper scale, picking
// the realization whose makespan is closest to the strategy's average
// (the paper does the same: "typical realizations ... with execution
// times close to their respective average"); (b) a live trace of the
// real executor on this host.
//
// Pass --seed=roundrobin to ablate the work-stealing section-affinity
// seeding (DESIGN.md §5).
#include <cstring>

#include "bench_common.hpp"
#include "djstar/support/trace.hpp"

namespace {

djstar::sim::ScheduleResult typical_realization(
    const djstar::bench::ReferenceSetup& ref, djstar::sim::SimStrategy s,
    std::size_t draws) {
  using namespace djstar;
  sim::SamplerConfig cfg;
  cfg.seed = 2024;
  sim::DurationSampler sampler(ref.sim.duration_us, cfg);
  sim::SimGraph g = ref.sim;

  // First pass: average makespan.
  std::vector<std::vector<double>> all(draws);
  double mean = 0;
  std::vector<double> spans(draws);
  for (std::size_t i = 0; i < draws; ++i) {
    sampler.sample(g.duration_us);
    all[i] = g.duration_us;
    spans[i] = sim::simulate_strategy(g, s, 4).makespan_us;
    mean += spans[i];
  }
  mean /= static_cast<double>(draws);
  // Pick the draw closest to the mean and re-simulate it.
  std::size_t best = 0;
  for (std::size_t i = 1; i < draws; ++i) {
    if (std::abs(spans[i] - mean) < std::abs(spans[best] - mean)) best = i;
  }
  g.duration_us = all[best];
  return sim::simulate_strategy(g, s, 4);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace djstar;
  bool ablate_seed = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed=roundrobin") == 0) ablate_seed = true;
  }

  bench::banner("Figure 11 — typical schedule realizations (4 threads)",
                "BUSY: many active-waiting boxes; SLEEP: similar but sleeping; "
                "WS: small nodes early, sleeps only at the end");

  bench::ReferenceSetup ref;

  for (core::Strategy s : core::kParallelStrategies) {
    const auto r = typical_realization(ref, bench::to_sim(s), 200);
    std::printf("%s\n",
                support::render_gantt(
                    r.to_spans(), 100, r.makespan_us,
                    std::string("simulated ") + bench::strategy_label(s) +
                        "  (makespan " + std::to_string(static_cast<int>(r.makespan_us)) +
                        " us)")
                    .c_str());
  }

  std::printf("\nlive traces on this host (real executors, real DSP):\n\n");
  for (core::Strategy s : core::kParallelStrategies) {
    engine::EngineConfig cfg;
    cfg.strategy = s;
    cfg.threads = 4;
    if (ablate_seed && s == core::Strategy::kWorkStealing) {
      cfg.ws.seed = core::SeedMode::kRoundRobin;
    }
    engine::AudioEngine e(cfg);
    e.run_cycles(50);  // warm up

    // Trace a handful of cycles; keep the one nearest the running mean.
    support::TraceRecorder trace;
    double mean = e.monitor().graph().mean();
    std::vector<support::TraceSpan> best_spans;
    double best_delta = 1e18;
    for (int i = 0; i < 20; ++i) {
      trace.arm(4);
      // Rebind the recorder for this cycle.
      e.set_strategy(s, 4);  // note: re-creates executor without trace
      // Executor options cannot carry the recorder through set_strategy;
      // use a dedicated executor instead:
      core::ExecOptions opts;
      opts.threads = 4;
      opts.trace = &trace;
      auto exec = core::make_executor(s, e.compiled(), opts,
                                      ablate_seed
                                          ? core::WorkStealingOptions{core::SeedMode::kRoundRobin}
                                          : core::WorkStealingOptions{});
      const auto t0 = support::now();
      exec->run_cycle();
      const double us = support::since_us(t0);
      if (std::abs(us - mean) < best_delta) {
        best_delta = std::abs(us - mean);
        best_spans = trace.collect();
      }
      trace.disarm();
    }
    std::printf("%s\n",
                support::render_gantt(best_spans, 100, 0,
                                      std::string("measured ") +
                                          bench::strategy_label(s) +
                                          (ablate_seed && s == core::Strategy::kWorkStealing
                                               ? " (round-robin seed ablation)"
                                               : ""))
                    .c_str());
  }
  return 0;
}
