// bench/ablation_ws_seed.cpp
// Ablation of the work-stealing seed heuristic (paper §V-C): "We
// categorize the source nodes as Deck A/B/C/D or Master in order to be
// able to assign nodes from the same section to the same thread. This
// supports data locality as nodes from the same section work on the same
// audio data." Here: section-affine seeding vs blind round-robin.
#include "bench_common.hpp"

int main() {
  using namespace djstar;
  bench::banner("ablation — work-stealing seed heuristic",
                "paper §V-C: seed source nodes by section (deck) for data "
                "locality");

  const std::size_t iters = bench::sim_iters();
  bench::ReferenceSetup ref;

  // Simulated: round-robin seeding is modelled by giving every source
  // its own section index (sections are distributed modulo threads).
  sim::SimGraph rr = ref.sim;
  {
    std::uint32_t i = 0;
    for (sim::NodeId v : rr.order) {
      if (!rr.predecessors[v].empty()) break;
      rr.section[v] = i++;
    }
  }

  auto run_sim = [&](const sim::SimGraph& g) {
    sim::SamplerConfig cfg;
    cfg.seed = 7;
    sim::DurationSampler sampler(g.duration_us, cfg);
    sim::SimGraph work = g;
    support::OnlineStats s;
    for (std::size_t i = 0; i < iters; ++i) {
      sampler.sample(work.duration_us);
      s.add(sim::simulate_work_stealing(work, 4).makespan_us);
    }
    return s;
  };

  const auto by_section = run_sim(ref.sim);
  const auto round_robin = run_sim(rr);
  std::printf("simulated WS mean makespan, 4 virtual cores, %zu iters:\n",
              iters);
  std::printf("  seed by section : %8.1f us\n", by_section.mean());
  std::printf("  seed round-robin: %8.1f us (%+.1f %%)\n", round_robin.mean(),
              100.0 * (round_robin.mean() / by_section.mean() - 1.0));

  // Measured: the real executor exposes the same switch. (Virtual-time
  // simulation cannot model the cache-warmth part of the claim; the
  // live run can, on a multicore host.)
  const std::size_t miters = bench::measure_iters();
  std::printf("\nmeasured on this host (%zu cycles each):\n", miters);
  for (auto seed : {core::SeedMode::kBySection, core::SeedMode::kRoundRobin}) {
    engine::EngineConfig cfg;
    cfg.strategy = core::Strategy::kWorkStealing;
    cfg.threads = 4;
    cfg.ws.seed = seed;
    engine::AudioEngine e(cfg);
    e.run_cycles(30);
    e.monitor().reset();
    e.run_cycles(miters);
    std::printf("  %-16s mean %8.1f us  worst %8.1f us  steals %llu\n",
                seed == core::SeedMode::kBySection ? "by-section"
                                                   : "round-robin",
                e.monitor().graph().mean(), e.monitor().graph().max(),
                static_cast<unsigned long long>(
                    e.executor().stats().steals.load()));
  }
  return 0;
}
