// bench/bench_common.hpp
// Shared plumbing for the per-table/per-figure reproduction harnesses.
//
// Every harness prints (a) the paper's reported numbers, (b) the
// simulated reproduction on a virtual 4-core machine (the paper itself
// used RESCON simulation for its schedule analyses), and, where it makes
// sense, (c) numbers measured live on this host. The host of record for
// this repository has a single CPU core, so measured parallel speedups
// are not expected to reproduce — see DESIGN.md §2 and EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "djstar/core/compiled_graph.hpp"
#include "djstar/core/factory.hpp"
#include "djstar/engine/djstar_graph.hpp"
#include "djstar/engine/engine.hpp"
#include "djstar/sim/sampler.hpp"
#include "djstar/sim/schedulers.hpp"
#include "djstar/sim/strategy_sim.hpp"
#include "djstar/support/ascii_chart.hpp"
#include "djstar/support/csv.hpp"
#include "djstar/support/stats.hpp"

namespace djstar::bench {

/// Iteration count for simulated sweeps; the paper uses 10k APCs.
inline std::size_t sim_iters() {
  if (const char* env = std::getenv("DJSTAR_SIM_ITERS")) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 10000;
}

/// Iteration count for live measured sweeps (kept smaller by default so
/// the full bench suite stays fast; export DJSTAR_MEASURE_ITERS=10000
/// for a paper-scale run).
inline std::size_t measure_iters() {
  if (const char* env = std::getenv("DJSTAR_MEASURE_ITERS")) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 1500;
}

/// The canonical graph + reference durations + compiled form, bundled.
struct ReferenceSetup {
  engine::DjStarGraph graph;
  std::unique_ptr<core::CompiledGraph> compiled;
  sim::SimGraph sim;

  ReferenceSetup()
      : graph() {
    compiled = std::make_unique<core::CompiledGraph>(graph.graph());
    sim = sim::SimGraph::from_compiled(*compiled,
                                       graph.reference_durations());
  }
};

/// Simulate `iters` cycles of `strategy` on `threads` virtual cores with
/// per-cycle sampled durations; returns makespans in microseconds.
inline std::vector<double> simulate_series(const ReferenceSetup& ref,
                                           sim::SimStrategy strategy,
                                           std::uint32_t threads,
                                           std::size_t iters,
                                           std::uint64_t seed = 42,
                                           const sim::OverheadModel& ov = {}) {
  sim::SamplerConfig cfg;
  cfg.seed = seed;
  sim::DurationSampler sampler(ref.sim.duration_us, cfg);
  sim::SimGraph g = ref.sim;
  std::vector<double> out;
  out.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    sampler.sample(g.duration_us);
    out.push_back(sim::simulate_strategy(g, strategy, threads, ov).makespan_us);
  }
  return out;
}

/// Simulated *sequential* series: makespan = total work each cycle.
inline std::vector<double> simulate_sequential_series(
    const ReferenceSetup& ref, std::size_t iters, std::uint64_t seed = 42) {
  sim::SamplerConfig cfg;
  cfg.seed = seed;
  sim::DurationSampler sampler(ref.sim.duration_us, cfg);
  std::vector<double> durations;
  std::vector<double> out;
  out.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    sampler.sample(durations);
    double sum = 0;
    for (double d : durations) sum += d;
    out.push_back(sum);
  }
  return out;
}

/// Measure the live engine's task-graph times on this host.
inline std::vector<double> measure_series(core::Strategy strategy,
                                          unsigned threads,
                                          std::size_t iters) {
  engine::EngineConfig cfg;
  cfg.strategy = strategy;
  cfg.threads = threads;
  engine::AudioEngine e(cfg);
  e.run_cycles(20);  // warm up caches / decoder lock
  e.monitor().reset();
  e.run_cycles(iters);
  return e.monitor().graph_samples();
}

inline double mean_of(const std::vector<double>& xs) {
  support::OnlineStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

inline sim::SimStrategy to_sim(core::Strategy s) {
  switch (s) {
    case core::Strategy::kBusyWait: return sim::SimStrategy::kBusy;
    case core::Strategy::kSleep: return sim::SimStrategy::kSleep;
    default: return sim::SimStrategy::kWorkStealing;
  }
}

inline const char* strategy_label(core::Strategy s) {
  switch (s) {
    case core::Strategy::kSequential: return "SEQ";
    case core::Strategy::kBusyWait: return "BUSY";
    case core::Strategy::kSleep: return "SLEEP";
    case core::Strategy::kWorkStealing: return "WS";
  }
  return "?";
}

/// Banner every harness prints.
inline void banner(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("djstar reproduction — %s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n\n");
}

/// Resolve the output directory for CSV artifacts (default: cwd).
inline std::string out_path(const std::string& file) {
  if (const char* env = std::getenv("DJSTAR_BENCH_OUT")) {
    return std::string(env) + "/" + file;
  }
  return file;
}

}  // namespace djstar::bench
