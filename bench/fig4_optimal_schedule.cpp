// bench/fig4_optimal_schedule.cpp
// Reproduces paper §IV / Figure 4: RESCON earliest-start scheduling of
// the 67-node audio graph.
//
// Paper numbers: optimal (infinite processors) 295 us needing 33
// processors; concurrency drops to 4 after ~25 us; resource-constrained
// 4-core schedule 324 us (+8%).
#include <fstream>

#include "bench_common.hpp"
#include "djstar/core/graphviz.hpp"

int main() {
  using namespace djstar;
  bench::banner("Figure 4 / §IV — optimal schedule simulation",
                "earliest start: 295 us, 33 procs; 4-core optimal: 324 us (+8%)");

  bench::ReferenceSetup ref;

  const double work = sim::total_work_us(ref.sim);
  const double cp = sim::critical_path_us(ref.sim);
  std::printf("graph: %zu nodes, %zu sources, total work %.1f us (paper seq: 1078.5 us)\n",
              ref.sim.node_count(), ref.compiled->sources().size(), work);

  const auto inf = sim::earliest_start_schedule(ref.sim);
  std::printf("\nearliest-start (unlimited processors):\n");
  std::printf("  makespan          %8.1f us   (paper: 295 us)\n", inf.makespan_us);
  std::printf("  critical path     %8.1f us\n", cp);
  std::printf("  peak concurrency  %8d      (paper: 33)\n", inf.peak_concurrency());

  // Concurrency profile — the shape of Fig. 4's infinite-processor run.
  std::printf("\n%s\n",
              support::render_profile(inf.profile_times_us, inf.profile_active,
                                      70, "Concurrency profile (active processors over time)")
                  .c_str());

  const auto four = sim::list_schedule(ref.sim, 4);
  std::printf("4-core list schedule (priority = dependency-sorted queue):\n");
  std::printf("  makespan          %8.1f us   (paper: 324 us)\n", four.makespan_us);
  std::printf("  vs unlimited      %+7.1f %%    (paper: +8 %%)\n",
              100.0 * (four.makespan_us / inf.makespan_us - 1.0));

  const auto spans = four.to_spans();
  std::printf("\n%s\n",
              support::render_gantt(spans, 100, four.makespan_us,
                                    "Simulated optimal scheduling on four cores (Fig. 4)")
                  .c_str());

  // CSV artifact: per-node schedule.
  support::CsvWriter csv;
  csv.cells("node", "name", "proc", "start_us", "finish_us");
  for (const auto& e : four.entries) {
    csv.cells(e.node, ref.compiled->name(e.node), e.proc, e.start_us,
              e.finish_us);
  }
  const auto path = bench::out_path("fig4_schedule.csv");
  if (csv.save(path)) std::printf("wrote %s\n", path.c_str());

  // Fig.-3-style topology as Graphviz (render: dot -Tsvg -O ...).
  const auto dot_path = bench::out_path("djstar_graph.dot");
  std::ofstream dot(dot_path);
  if (dot) {
    dot << core::to_dot(ref.graph.graph());
    std::printf("wrote %s\n", dot_path.c_str());
  }
  return 0;
}
