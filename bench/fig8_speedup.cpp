// bench/fig8_speedup.cpp
// Reproduces paper Figure 8: speedup of the three strategies vs the
// sequential execution, 1..4 threads. Paper: speedup rises to ~2.40 on
// four cores (linear speedup impossible due to the dependency structure).
#include "bench_common.hpp"

int main() {
  using namespace djstar;
  bench::banner("Figure 8 — speedup comparison of the scheduling strategies",
                "speedup reaches ~2.40 at 4 threads; BUSY >= WS >= SLEEP");

  const std::size_t iters = bench::sim_iters();
  bench::ReferenceSetup ref;

  const double seq_ms =
      bench::mean_of(bench::simulate_sequential_series(ref, iters)) / 1000.0;
  std::printf("simulated sequential baseline: %.4f ms\n\n", seq_ms);

  support::CsvWriter csv;
  csv.cells("strategy", "threads", "speedup");
  std::printf("simulated speedup (virtual 4-core machine):\n\n");
  std::printf("  %-6s %8s %8s %8s %8s\n", "", "1", "2", "3", "4");

  double at4[3];
  int row = 0;
  std::vector<support::Bar> bars;
  for (core::Strategy s : core::kParallelStrategies) {
    std::printf("  %-6s", bench::strategy_label(s));
    for (unsigned t = 1; t <= 4; ++t) {
      const double ms =
          bench::mean_of(bench::simulate_series(ref, bench::to_sim(s), t, iters)) /
          1000.0;
      const double speedup = seq_ms / ms;
      std::printf(" %8.2f", speedup);
      csv.cells(core::to_string(s), t, speedup);
      if (t == 4) {
        at4[row] = speedup;
        bars.push_back({std::string(bench::strategy_label(s)) + " @4", speedup});
      }
    }
    std::printf("\n");
    ++row;
  }

  std::printf("\n%s\n",
              support::render_bars(bars, 40, "Speedup at 4 threads", "x").c_str());
  std::printf("paper at 4 threads: BUSY 2.39x, SLEEP 2.39x, WS 2.37x (avg ~2.4)\n");
  std::printf("simulated:          BUSY %.2fx, SLEEP %.2fx, WS %.2fx\n",
              at4[0], at4[1], at4[2]);

  const auto path = bench::out_path("fig8_speedup.csv");
  if (csv.save(path)) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
