// bench/fig8_speedup.cpp
// Reproduces paper Figure 8: speedup of the three strategies vs the
// sequential execution, 1..4 threads. Paper: speedup rises to ~2.40 on
// four cores (linear speedup impossible due to the dependency structure).
#include "bench_common.hpp"
#include "djstar/core/graph_opt.hpp"

int main() {
  using namespace djstar;
  bench::banner("Figure 8 — speedup comparison of the scheduling strategies",
                "speedup reaches ~2.40 at 4 threads; BUSY >= WS >= SLEEP");

  const std::size_t iters = bench::sim_iters();
  bench::ReferenceSetup ref;

  const double seq_ms =
      bench::mean_of(bench::simulate_sequential_series(ref, iters)) / 1000.0;
  std::printf("simulated sequential baseline: %.4f ms\n\n", seq_ms);

  support::CsvWriter csv;
  csv.cells("strategy", "threads", "speedup");
  std::printf("simulated speedup (virtual 4-core machine):\n\n");
  std::printf("  %-6s %8s %8s %8s %8s\n", "", "1", "2", "3", "4");

  double at4[3];
  int row = 0;
  std::vector<support::Bar> bars;
  for (core::Strategy s : core::kParallelStrategies) {
    std::printf("  %-6s", bench::strategy_label(s));
    for (unsigned t = 1; t <= 4; ++t) {
      const double ms =
          bench::mean_of(bench::simulate_series(ref, bench::to_sim(s), t, iters)) /
          1000.0;
      const double speedup = seq_ms / ms;
      std::printf(" %8.2f", speedup);
      csv.cells(core::to_string(s), t, speedup);
      if (t == 4) {
        at4[row] = speedup;
        bars.push_back({std::string(bench::strategy_label(s)) + " @4", speedup});
      }
    }
    std::printf("\n");
    ++row;
  }

  // Beyond-paper column: the graph-opt pipeline (fuse + cached static
  // schedule, DESIGN.md §11) replayed over the fused unit graph.
  {
    core::graph_opt::CostModel costs(ref.graph.graph().node_count());
    costs.seed(ref.graph.reference_durations());
    const auto plan = core::graph_opt::plan_fusion(ref.graph.graph(), costs);
    core::CompiledGraph fused(ref.graph.graph(), plan);
    const sim::SimGraph unit_ref =
        sim::SimGraph::from_compiled_units(fused, ref.graph.reference_durations());
    sim::DurationSampler sampler(ref.sim.duration_us);
    std::vector<double> node_us;
    std::printf("  %-6s", "OPT");
    for (unsigned t = 1; t <= 4; ++t) {
      sim::SimGraph g = unit_ref;
      support::OnlineStats s;
      for (std::size_t i = 0; i < iters; ++i) {
        sampler.sample(node_us);
        g.duration_us.assign(g.node_count(), 0.0);
        for (core::UnitId u = 0; u < fused.unit_count(); ++u) {
          for (core::NodeId m : fused.unit_members(u)) {
            g.duration_us[u] += node_us[m];
          }
        }
        s.add(sim::simulate_static(g, t).makespan_us);
      }
      const double speedup = seq_ms / (s.mean() / 1000.0);
      std::printf(" %8.2f", speedup);
      csv.cells("graph-opt", t, speedup);
      if (t == 4) bars.push_back({"OPT @4", speedup});
    }
    std::printf("\n");
  }

  std::printf("\n%s\n",
              support::render_bars(bars, 40, "Speedup at 4 threads", "x").c_str());
  std::printf("paper at 4 threads: BUSY 2.39x, SLEEP 2.39x, WS 2.37x (avg ~2.4)\n");
  std::printf("simulated:          BUSY %.2fx, SLEEP %.2fx, WS %.2fx\n",
              at4[0], at4[1], at4[2]);

  const auto path = bench::out_path("fig8_speedup.csv");
  if (csv.save(path)) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
