// examples/track_analysis.cpp
// The track-preprocessing pipeline (paper Fig. 2, "Track Preprocessing"):
// build a small library of synthetic tracks, analyze beatgrid / key /
// loudness / waveform, and answer the two questions a DJ asks the
// library: "what mixes tempo-wise?" and "what mixes harmonically?"
#include <cstdio>

#include "djstar/engine/library.hpp"
#include "djstar/support/ascii_chart.hpp"

int main() {
  using namespace djstar;

  engine::Library lib;
  struct Seed {
    const char* title;
    double bpm;
    int root;
    std::uint64_t seed;
  };
  const Seed seeds[] = {
      {"Midnight Drive", 124.0, 45, 11},  // A
      {"Neon Skyline", 126.0, 48, 22},    // C
      {"Rust & Chrome", 128.0, 52, 33},   // E
      {"Glass Citadel", 140.0, 47, 44},   // B
      {"Slow Burner", 100.0, 45, 55},     // A
  };
  for (const auto& s : seeds) {
    audio::TrackSpec spec;
    spec.seconds = 10.0;
    spec.bpm = s.bpm;
    spec.root_note = s.root;
    spec.seed = s.seed;
    lib.add_generated(s.title, spec);
  }

  std::printf("library (%zu tracks):\n\n", lib.size());
  std::printf("  %-16s %8s %6s %-9s %-8s %10s\n", "title", "bpm", "conf",
              "key", "camelot", "loud dBFS");
  for (const auto& e : lib.entries()) {
    std::printf("  %-16s %8.1f %6.2f %-9s %-8s %10.1f\n", e.title.c_str(),
                e.analysis.beatgrid.bpm, e.analysis.beatgrid.confidence,
                e.analysis.key.name().c_str(),
                analysis::camelot_code(e.analysis.key).c_str(),
                e.analysis.loudness.loudness_db);
  }

  const auto* current = lib.find(1);
  std::printf("\nnow playing: %s (%.1f bpm, %s)\n", current->title.c_str(),
              current->analysis.beatgrid.bpm,
              current->analysis.key.name().c_str());

  std::printf("\ntempo matches (nearest first):\n");
  for (const auto* e : lib.by_tempo(current->analysis.beatgrid.bpm)) {
    std::printf("  %-16s %8.1f bpm\n", e->title.c_str(),
                e->analysis.beatgrid.bpm);
  }

  std::printf("\nharmonic matches for %s (%s):\n",
              current->analysis.key.name().c_str(),
              analysis::camelot_code(current->analysis.key).c_str());
  for (const auto* e : lib.harmonic_matches(current->analysis.key)) {
    std::printf("  %-16s %s\n", e->title.c_str(),
                analysis::camelot_code(e->analysis.key).c_str());
  }

  // Waveform overview of the current track, rendered as bars.
  const auto coarse = analysis::zoom_out(current->analysis.overview, 16);
  std::vector<support::Bar> bars;
  for (std::size_t i = 0; i < coarse.tiles.size() && i < 24; ++i) {
    bars.push_back({std::to_string(i), coarse.tiles[i].rms});
  }
  std::printf("\n%s\n",
              support::render_bars(bars, 50, "waveform overview (rms tiles)")
                  .c_str());
  return 0;
}
