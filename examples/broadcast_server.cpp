// examples/broadcast_server.cpp
// A broadcast-style serving host: many independent audio channels
// multiplexed onto one shared worker pool (DESIGN.md §9).
//
//   1. open an EngineHost sized to the machine,
//   2. submit a mixed-QoS channel lineup (on-air realtime feeds, studio
//      standard monitors, besteffort preview streams),
//   3. churn channels mid-run — previews come and go while the on-air
//      feeds keep running,
//   4. print the fleet stats table (per-QoS hit rates, latency
//      quantiles, shed counts) and the admission log,
//   5. export the fleet schedule as Chrome trace JSON (one pid per
//      channel, one tid per worker — load chrome://tracing).
#include <cstdio>
#include <string>
#include <vector>

#include "djstar/serve/host.hpp"
#include "djstar/serve/synthetic.hpp"

namespace ds = djstar::serve;

namespace {

ds::SessionSpec make_channel(const char* kind, unsigned n, ds::QoS qos,
                             double node_cost_us) {
  ds::SyntheticSpec s;
  s.name = std::string(kind) + "-" + std::to_string(n);
  s.qos = qos;
  s.width = 4;
  s.depth = 3;
  s.node_cost_us = node_cost_us;
  s.seed = 7 * n + 1;
  return ds::make_synthetic_session(s);
}

}  // namespace

int main() {
  ds::HostConfig cfg;
  cfg.threads = 0;  // DJSTAR_THREADS or hardware concurrency
  ds::EngineHost host(cfg);
  host.arm_tracing();
  std::printf("broadcast host: %u workers, admission bound %.2f\n\n",
              host.threads(), cfg.admission.utilization_bound);

  // ---- 2. The opening lineup: two on-air feeds, one studio monitor,
  // and a pile of preview streams that the admission test parks or
  // rejects once the density budget is spent. ----
  std::vector<ds::SessionId> on_air, previews;
  for (unsigned n = 0; n < 2; ++n) {
    on_air.push_back(
        host.submit(make_channel("on-air", n, ds::QoS::kRealtime, 30.0)));
  }
  host.submit(make_channel("monitor", 0, ds::QoS::kStandard, 25.0));
  for (unsigned n = 0; n < 6; ++n) {
    previews.push_back(
        host.submit(make_channel("preview", n, ds::QoS::kBestEffort, 20.0)));
  }
  host.run_fleet_cycles(100);

  // ---- 3. Mid-run churn: previews hang up, new ones dial in. The
  // on-air feeds never stop. ----
  for (unsigned round = 0; round < 4; ++round) {
    if (!previews.empty()) {
      host.close(previews.front());
      previews.erase(previews.begin());
    }
    previews.push_back(host.submit(
        make_channel("preview", 100 + round, ds::QoS::kBestEffort, 20.0)));
    host.run_fleet_cycles(50);
  }

  // ---- 4. The fleet stats table. ----
  const ds::FleetStats f = host.stats();
  std::printf("after %llu ticks: submitted %llu, admitted %llu, "
              "queued peak %llu, rejected %llu, shed %llu\n",
              static_cast<unsigned long long>(f.ticks),
              static_cast<unsigned long long>(f.submitted),
              static_cast<unsigned long long>(f.admitted),
              static_cast<unsigned long long>(f.queued_peak),
              static_cast<unsigned long long>(f.rejected),
              static_cast<unsigned long long>(f.shed));
  std::printf("active %zu (density %.3f), parked %zu\n\n",
              host.active_sessions(), host.active_density(),
              host.queued_sessions());

  std::printf("  %-10s %-9s %-8s %-9s %-9s %-6s\n", "class", "cycles",
              "hit", "p50_us", "p99_us", "shed");
  for (ds::QoS q : {ds::QoS::kRealtime, ds::QoS::kStandard,
                    ds::QoS::kBestEffort}) {
    const ds::QoSAggregate& a = f.by_qos[ds::rank(q)];
    std::printf("  %-10s %-9llu %-8.4f %-9.1f %-9.1f %-6llu\n",
                std::string(ds::to_string(q)).c_str(),
                static_cast<unsigned long long>(a.cycles),
                a.cycles ? 1.0 - a.miss_rate : 1.0, a.p50_latency_us,
                a.p99_latency_us, static_cast<unsigned long long>(a.shed));
  }

  std::printf("\n  %-10s %-12s %-8s %-9s %-9s\n", "channel", "state",
              "cycles", "p99_us", "level");
  for (const ds::SessionStatsView& s : f.sessions) {
    std::printf("  %-10s %-12s %-8llu %-9.1f %d\n", s.name.c_str(), "active",
                static_cast<unsigned long long>(s.cycles), s.p99_latency_us,
                static_cast<int>(s.level));
  }

  std::printf("\nadmission log (%zu decisions):\n",
              host.admission_log().size());
  for (const ds::AdmissionRecord& r : host.admission_log()) {
    std::printf("  tick %-5llu session %-3llu -> %-8s (projected density"
                " %.3f / bound %.2f)\n",
                static_cast<unsigned long long>(r.tick),
                static_cast<unsigned long long>(r.id),
                std::string(ds::to_string(r.verdict)).c_str(),
                r.projected_density, r.bound);
  }

  // The on-air feeds must have run every tick and never been shed.
  for (ds::SessionId id : on_air) {
    if (host.session_state(id) != ds::SessionState::kActive) {
      std::fprintf(stderr, "FAILED: on-air channel %llu not active\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
  }

  // ---- 5. Chrome trace export. ----
  const char* trace = "broadcast_schedule.json";
  if (host.write_chrome_trace(trace)) {
    std::printf("\nwrote %s (open in chrome://tracing)\n", trace);
  }
  return 0;
}
