// examples/dj_session.cpp
// A full DJ Star-style session: four decks with synthetic tracks, the
// 67-node effect graph under the busy-waiting scheduler, a scripted
// "performance" (crossfades, filter sweeps, EQ kills, effect punches),
// bounced to a WAV file with real-time statistics.
//
// Usage: dj_session [seconds] [strategy] [threads] [out.wav]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "djstar/audio/wav.hpp"
#include "djstar/engine/engine.hpp"

int main(int argc, char** argv) {
  using namespace djstar;

  const double seconds = argc > 1 ? std::atof(argv[1]) : 8.0;
  const auto strategy =
      core::parse_strategy(argc > 2 ? argv[2] : "busy")
          .value_or(core::Strategy::kBusyWait);
  const unsigned threads = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;
  const std::string out_path = argc > 4 ? argv[4] : "dj_session.wav";

  engine::EngineConfig cfg;
  cfg.strategy = strategy;
  cfg.threads = threads;
  engine::AudioEngine e(cfg);

  const auto cycles =
      static_cast<std::size_t>(seconds * audio::kSampleRate /
                               static_cast<double>(audio::kBlockSize));
  std::printf("dj_session: %.1f s (%zu cycles), strategy=%s, threads=%u\n",
              seconds, cycles, std::string(core::to_string(strategy)).c_str(),
              threads);

  audio::AudioBuffer bounce(2, cycles * audio::kBlockSize);
  auto& gn = e.graph_nodes();

  // Nudge decks to beat-match: all toward ~125 BPM.
  e.deck(0).set_pitch(125.0 / 120.0);
  e.deck(1).set_pitch(125.0 / 124.0);
  e.deck(2).set_pitch(125.0 / 128.0);
  e.deck(3).set_pitch(125.0 / 132.0);

  for (std::size_t c = 0; c < cycles; ++c) {
    const double t = static_cast<double>(c) / static_cast<double>(cycles);

    // Scripted performance: slow A->B crossfade, a filter sweep on deck
    // A, a bass kill on deck B in the middle, FX punches on deck C.
    gn.mixer().set_crossfader(static_cast<float>(t));
    gn.channel(0).set_filter_morph(static_cast<float>(-0.8 * t));
    gn.channel(1).set_eq(t > 0.4 && t < 0.6 ? -90.0f : 0.0f, 0.0f, 0.0f);
    gn.effect(2, 0).set_enabled(t > 0.25 && t < 0.75);
    gn.effect(0, 1).set_amount(static_cast<float>(t));

    e.run_cycle();

    const auto& out = e.output();
    for (std::size_t ch = 0; ch < 2; ++ch) {
      auto src = out.channel(ch);
      auto dst = bounce.channel(ch);
      for (std::size_t i = 0; i < audio::kBlockSize; ++i) {
        dst[c * audio::kBlockSize + i] = src[i];
      }
    }
  }

  const auto& m = e.monitor();
  std::printf("\nreal-time report:\n");
  std::printf("  APC   mean %7.1f us, worst %7.1f us (deadline %.0f us)\n",
              m.total().mean(), m.total().max(), m.deadline_us());
  std::printf("  Graph mean %7.1f us, worst %7.1f us\n", m.graph().mean(),
              m.graph().max());
  std::printf("  missed deadlines: %zu / %zu (%.2f per 10k)\n", m.misses(),
              m.cycles(), 10000.0 * m.miss_rate());
  std::printf("  output peak %.3f, rms %.3f\n", bounce.peak(), bounce.rms());
  std::printf("  decks locked: %d%d%d%d, master tempo %.1f bpm\n",
              e.deck(0).transport().locked, e.deck(1).transport().locked,
              e.deck(2).transport().locked, e.deck(3).transport().locked,
              e.master_tempo_bpm());

  if (audio::write_wav(out_path, bounce)) {
    std::printf("  wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
