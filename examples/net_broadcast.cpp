// examples/net_broadcast.cpp
// The network serving edge end-to-end (DESIGN.md §13): start a
// net::Server on an ephemeral port, connect a loopback client, open a
// mixed-QoS fleet over the wire, stream a few hundred cycle-audio
// frames back, poll fleet stats, and scrape GET /metrics — everything a
// remote front-end would do, in one process.
//
// Usage: net_broadcast [frames_per_session]
// Set DJSTAR_NET=<port>[,max_conns[,send_ring_kb]] to pin the port.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "djstar/net/client.hpp"
#include "djstar/net/server.hpp"
#include "djstar/serve/host.hpp"

namespace dn = djstar::net;
namespace ds = djstar::serve;

int main(int argc, char** argv) {
  const std::uint64_t want = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 200;

  // Engine host behind a TCP front: two worker threads, default
  // admission policy, ephemeral port (unless DJSTAR_NET overrides).
  dn::ServerConfig cfg;
  cfg.host.threads = 2;
  dn::Server server(cfg);
  server.start();
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  dn::Client client;
  if (!client.connect(server.port())) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }

  // Open one session per QoS class, all subscribed to their audio.
  const struct {
    ds::QoS qos;
    const char* name;
  } fleet[] = {
      {ds::QoS::kRealtime, "live-deck"},
      {ds::QoS::kStandard, "preview"},
      {ds::QoS::kBestEffort, "archive-render"},
  };
  std::map<std::uint64_t, std::string> names;
  for (const auto& f : fleet) {
    dn::OpenSessionRequest req;
    req.qos = static_cast<std::uint8_t>(f.qos);
    req.name = f.name;
    req.subscribe = true;
    req.width = 3;
    req.depth = 2;
    req.node_cost_us = 10.0;
    const auto reply = client.open_session(req);
    if (!reply.has_value()) {
      std::fprintf(stderr, "open %s failed\n", f.name);
      return 1;
    }
    std::printf("opened %-14s -> session %llu (%s)\n", f.name,
                static_cast<unsigned long long>(reply->id),
                ds::to_string(static_cast<ds::SessionState>(reply->state)));
    names[reply->id] = f.name;
  }

  // Stream until every session delivered `want` frames.
  std::map<std::uint64_t, std::uint64_t> frames;
  std::uint64_t total = 0;
  while (true) {
    bool done = !names.empty();
    for (const auto& [id, name] : names) {
      if (frames[id] < want) done = false;
    }
    if (done) break;
    const auto audio = client.read_audio();
    if (!audio.has_value()) {
      std::fprintf(stderr, "stream ended early\n");
      return 1;
    }
    ++frames[audio->header.session];
    ++total;
  }
  std::printf("streamed %llu cycle-audio frames (%llu per session)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(want));

  // Fleet counters over the wire.
  if (const auto s = client.stats()) {
    std::printf("fleet: ticks=%llu active=%llu cycles=%llu misses=%llu\n",
                static_cast<unsigned long long>(s->ticks),
                static_cast<unsigned long long>(s->active),
                static_cast<unsigned long long>(s->cycles),
                static_cast<unsigned long long>(s->misses));
  }

  // And the scrape any Prometheus agent would run.
  if (const auto metrics = dn::http_get(server.port(), "/metrics")) {
    const std::size_t body = metrics->find("\r\n\r\n");
    std::printf("GET /metrics -> %zu bytes of exposition\n",
                body == std::string::npos ? metrics->size()
                                          : metrics->size() - body - 4);
  }

  client.close();
  server.stop();
  std::printf("done\n");
  return 0;
}
