// examples/console_dj.cpp
// The paper's 4-layer architecture (Fig. 2) end to end, headless:
//   Hardware Access  — a scripted control surface emits MIDI-style CCs,
//   Event Middleware — the bus queues them,
//   Core             — the binding applies them between audio cycles and
//                      the engine renders under the busy-wait scheduler,
//   User Interface   — a console "GUI" consumes status events and draws
//                      deck meters each beat.
#include <cstdio>
#include <string>

#include "djstar/control/controller.hpp"
#include "djstar/engine/engine.hpp"

namespace {

/// A scripted "DJ hand" on the control surface.
struct ScriptStep {
  std::size_t cycle;
  djstar::control::ControlMessage msg;
};

void draw_meter(const char* label, float peak) {
  const int width = static_cast<int>(peak * 40.0f);
  std::printf("  %-7s |", label);
  for (int i = 0; i < 40; ++i) std::putchar(i < width ? '=' : ' ');
  std::printf("| %.2f\n", peak);
}

}  // namespace

int main() {
  using namespace djstar;
  namespace cc = control::cc;

  engine::EngineConfig cfg;
  cfg.strategy = core::Strategy::kBusyWait;
  cfg.threads = 4;
  engine::AudioEngine engine(cfg);

  control::EventBus bus;
  control::SurfaceMapper surface(bus);
  control::EngineBinding binding(bus, engine);
  control::StatusPublisher status(bus, engine);

  // Console "GUI": subscribe to status events.
  float meters[5] = {};
  bus.subscribe(control::EventType::kMeterUpdate,
                [&](const control::Event& e) { meters[e.deck % 5] = e.value; });
  double tempo = 0;
  bus.subscribe(control::EventType::kTempoUpdate,
                [&](const control::Event& e) { tempo = e.value; });

  // The performance script: fade from deck A to deck B with a filter
  // sweep and an echo punch-in, all through the hardware layer.
  const ScriptStep script[] = {
      {10, {0, cc::kFader, 127}},   {10, {1, cc::kFader, 0}},
      {10, {4, cc::kCrossfader, 0}},
      {60, {1, cc::kFader, 100}},   {80, {4, cc::kCrossfader, 40}},
      {100, {0, cc::kFilter, 30}},  {120, {4, cc::kCrossfader, 80}},
      {140, {1, static_cast<std::uint8_t>(cc::kFxBase + 0), 127}},
      {170, {4, cc::kCrossfader, 127}},
      {190, {0, cc::kFader, 0}},
      {200, {1, static_cast<std::uint8_t>(cc::kFxBase + 0), 0}},
  };

  const std::size_t total_cycles = 240;
  std::size_t script_pos = 0;
  for (std::size_t c = 0; c < total_cycles; ++c) {
    // Hardware layer fires its queued gestures.
    while (script_pos < std::size(script) && script[script_pos].cycle == c) {
      surface.handle(script[script_pos].msg);
      ++script_pos;
    }
    // Middleware drains into the core between cycles.
    bus.dispatch();
    engine.run_cycle();
    status.publish();
    bus.dispatch();  // deliver status to the "GUI"

    if (c % 40 == 20) {
      std::printf("\ncycle %3zu  master tempo %.1f bpm\n", c, tempo);
      draw_meter("deck A", meters[0]);
      draw_meter("deck B", meters[1]);
      draw_meter("master", meters[4]);
    }
  }

  const auto& m = engine.monitor();
  std::printf("\nsession: %zu cycles, APC mean %.0f us, worst %.0f us, "
              "missed %zu, events applied %zu\n",
              m.cycles(), m.total().mean(), m.total().max(), m.misses(),
              binding.applied());
  return 0;
}
