// examples/schedule_explorer.cpp
// Interactive-ish tour of the scheduling simulator (the RESCON
// substitute): build the canonical graph, print its structure, run the
// earliest-start analysis, sweep processor counts, and replay all three
// strategies in virtual time.
//
// Usage: schedule_explorer [threads]
#include <cstdio>
#include <cstdlib>

#include "djstar/core/compiled_graph.hpp"
#include "djstar/engine/djstar_graph.hpp"
#include "djstar/sim/schedulers.hpp"
#include "djstar/sim/strategy_sim.hpp"
#include "djstar/support/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace djstar;
  const auto threads =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;

  auto ref = engine::make_reference_graph();
  core::CompiledGraph cg(ref.graph.graph());
  const auto sim = sim::SimGraph::from_compiled(cg, ref.durations_us);

  std::printf("canonical DJ Star graph: %zu nodes, %zu edges, depth %u\n",
              cg.node_count(), ref.graph.graph().edge_count(),
              cg.max_depth() + 1);
  std::printf("sections:");
  for (const auto& s : cg.section_labels()) std::printf(" %s", s.c_str());
  std::printf("\n\n");

  std::printf("dependency-sorted queue (the paper's FIFO):\n ");
  for (core::NodeId n : cg.order()) std::printf(" %s", cg.name(n).c_str());
  std::printf("\n\n");

  std::printf("total work    %8.1f us\n", sim::total_work_us(sim));
  std::printf("critical path %8.1f us\n\n", sim::critical_path_us(sim));

  const auto inf = sim::earliest_start_schedule(sim);
  std::printf("earliest start needs %u processors, makespan %.1f us\n\n",
              inf.processors_used, inf.makespan_us);

  std::printf("processor sweep (list scheduling):\n");
  std::printf("  procs  makespan(us)  speedup  efficiency\n");
  const double seq = sim::total_work_us(sim);
  for (std::uint32_t p = 1; p <= 8; ++p) {
    const auto r = sim::list_schedule(sim, p);
    std::printf("  %5u  %12.1f  %7.2f  %9.1f%%\n", p, r.makespan_us,
                seq / r.makespan_us, 100.0 * seq / (r.makespan_us * p));
  }

  std::printf("\nstrategy replays on %u virtual cores:\n", threads);
  for (auto s : {sim::SimStrategy::kBusy, sim::SimStrategy::kSleep,
                 sim::SimStrategy::kWorkStealing}) {
    const char* name = s == sim::SimStrategy::kBusy ? "BUSY"
                       : s == sim::SimStrategy::kSleep ? "SLEEP"
                                                       : "WS";
    const auto r = sim::simulate_strategy(sim, s, threads);
    std::printf("\n%s\n",
                support::render_gantt(r.to_spans(), 100, r.makespan_us,
                                      std::string(name) + " makespan " +
                                          std::to_string(static_cast<int>(
                                              r.makespan_us)) + " us")
                    .c_str());
  }
  return 0;
}
