// examples/auto_mix.cpp
// Fully automatic DJ set: analyze a library, let the AutoDJ pick the
// next track and plan a beat-matched, bass-swapped transition, execute
// it through the event middleware on the live engine, and bounce the
// result.
//
// Usage: auto_mix [transitions] [out.wav]
#include <cstdio>
#include <cstdlib>

#include "djstar/audio/wav.hpp"
#include "djstar/control/auto_dj.hpp"
#include "djstar/control/controller.hpp"

int main(int argc, char** argv) {
  using namespace djstar;
  const int transitions = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::string out_path = argc > 2 ? argv[2] : "auto_mix.wav";

  // Build and analyze the crate.
  engine::Library lib;
  const struct {
    const char* title;
    double bpm;
    int root;
    std::uint64_t seed;
  } crate[] = {
      {"Opening Theme", 124.0, 45, 101}, {"Second Wind", 125.5, 45, 102},
      {"Basement Heat", 127.0, 48, 103}, {"Glass Elevator", 123.0, 52, 104},
      {"Last Train", 126.0, 45, 105},
  };
  for (const auto& t : crate) {
    audio::TrackSpec spec;
    spec.seconds = 8.0;
    spec.bpm = t.bpm;
    spec.root_note = t.root;
    spec.seed = t.seed;
    lib.add_generated(t.title, spec);
  }
  std::printf("crate analyzed: %zu tracks\n", lib.size());

  engine::EngineConfig cfg;
  cfg.strategy = core::Strategy::kBusyWait;
  cfg.threads = 4;
  engine::AudioEngine engine(cfg);
  control::EventBus bus;
  control::EngineBinding binding(bus, engine);
  control::AutoDj dj(lib);
  engine::Recorder recorder(60.0);
  recorder.start();

  std::uint32_t current = 1;
  unsigned deck = 0;
  const std::size_t kPlay = 300;   // cycles of straight playback
  const std::size_t kBlend = 200;  // cycles of transition

  for (int t = 0; t < transitions; ++t) {
    const auto plan = dj.plan_transition(current, deck, (deck + 1) % 2,
                                         kPlay, kBlend);
    if (!plan.has_value()) {
      std::printf("no playable follow-up for track %u\n", current);
      break;
    }
    const auto* next = lib.find(plan->to_id);
    std::printf("transition %d: %s -> %s (pitch %.3f, %zu events)\n", t + 1,
                lib.find(current)->title.c_str(), next->title.c_str(),
                plan->pitch_ratio, plan->script.event_count());
    control::run_session(engine, bus, plan->script, kPlay + kBlend + 50,
                         &recorder);
    current = plan->to_id;
    deck = (deck + 1) % 2;
  }

  const auto& m = engine.monitor();
  std::printf("\nset finished: %zu cycles (%.1f s of audio), APC mean %.0f us, "
              "missed %zu\n",
              m.cycles(), recorder.seconds(), m.total().mean(), m.misses());
  if (recorder.save_wav(out_path)) {
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
