// examples/quickstart.cpp
// Minimal tour of the djstar public API:
//   1. build a small task graph by hand,
//   2. run it under all four scheduling strategies,
//   3. check they all produce the same result,
//   4. run the full 67-node DJ Star engine for a few cycles.
#include <cstdio>

#include "djstar/core/compiled_graph.hpp"
#include "djstar/core/factory.hpp"
#include "djstar/engine/engine.hpp"

int main() {
  using namespace djstar;

  // ---- 1. A hand-built diamond graph: two sources feed a mix node. ----
  double a = 0, b = 0, mixed = 0, post = 0;
  core::TaskGraph g;
  const auto na = g.add_node("srcA", [&] { a = 2.0; }, "left");
  const auto nb = g.add_node("srcB", [&] { b = 3.0; }, "right");
  const auto nm = g.add_node("mix", [&] { mixed = a + b; }, "master");
  const auto np = g.add_node("post", [&] { post = mixed * 10.0; }, "master");
  g.add_edge(na, nm);
  g.add_edge(nb, nm);
  g.add_edge(nm, np);

  core::CompiledGraph compiled(g);

  // ---- 2 & 3. Every strategy computes the same value. ----
  for (core::Strategy s : core::kAllStrategies) {
    a = b = mixed = post = 0;
    core::ExecOptions opts;
    opts.threads = 2;
    auto exec = core::make_executor(s, compiled, opts);
    exec->run_cycle();
    std::printf("%-10s -> post = %.1f (expected 50.0)\n",
                std::string(core::to_string(s)).c_str(), post);
    if (post != 50.0) {
      std::fprintf(stderr, "FAILED: wrong result under %s\n",
                   std::string(core::to_string(s)).c_str());
      return 1;
    }
  }

  // ---- 4. The real thing: DJ Star's 67-node graph, busy-waiting. ----
  engine::EngineConfig cfg;
  cfg.strategy = core::Strategy::kBusyWait;
  cfg.threads = 4;
  engine::AudioEngine engine(cfg);
  engine.run_cycles(50);

  const auto& mon = engine.monitor();
  std::printf("\nDJ Star engine, 50 cycles, strategy=busy, threads=4\n");
  std::printf("  TP    mean %7.1f us\n", mon.tp().mean());
  std::printf("  GP    mean %7.1f us\n", mon.gp().mean());
  std::printf("  Graph mean %7.1f us\n", mon.graph().mean());
  std::printf("  VC    mean %7.1f us\n", mon.vc().mean());
  std::printf("  APC   mean %7.1f us (deadline %.1f us, missed %zu)\n",
              mon.total().mean(), mon.deadline_us(), mon.misses());
  std::printf("  output peak %.3f\n", engine.output().peak());
  return 0;
}
