// examples/live_remix.cpp
// Stress the real-time property the paper cares about: a DJ hammering
// controls mid-stream (worst case for dependency stalls) while the
// engine races the 2.9 ms deadline. Runs the same scripted chaos under
// all three parallel strategies and prints a deadline scorecard.
//
// Usage: live_remix [cycles_per_strategy]
#include <cstdio>
#include <cstdlib>

#include "djstar/engine/engine.hpp"
#include "djstar/support/rng.hpp"

namespace {

/// One knob-twiddling step: every parameter a DJ can reach, randomized.
void twiddle(djstar::engine::AudioEngine& e,
             djstar::support::Xoshiro256& rng) {
  auto& gn = e.graph_nodes();
  switch (rng.below(8)) {
    case 0:
      gn.mixer().set_crossfader(static_cast<float>(rng.uniform()));
      break;
    case 1:
      gn.channel(rng.below(4)).set_filter_morph(rng.bipolar());
      break;
    case 2:
      gn.channel(rng.below(4))
          .set_eq(rng.uniform() < 0.3 ? -90.0f : static_cast<float>(rng.uniform(-12, 6)),
                  static_cast<float>(rng.uniform(-12, 6)),
                  static_cast<float>(rng.uniform(-12, 6)));
      break;
    case 3: {
      auto& fx = gn.effect(rng.below(4), rng.below(4));
      fx.set_enabled(rng.uniform() < 0.7);
      break;
    }
    case 4:
      gn.effect(rng.below(4), rng.below(4))
          .set_amount(static_cast<float>(rng.uniform()));
      break;
    case 5:
      e.deck(rng.below(4)).set_pitch(rng.uniform(0.85, 1.15));
      break;
    case 6:
      gn.channel(rng.below(4)).set_fader(static_cast<float>(rng.uniform()));
      break;
    case 7:
      gn.sampler().trigger();
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace djstar;
  const std::size_t cycles =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2000;

  std::printf("live_remix: %zu cycles per strategy, 4 threads, random\n"
              "parameter changes every cycle (worst-case latency demand)\n\n",
              cycles);
  std::printf("  %-6s %12s %12s %12s %10s\n", "", "mean (us)", "p99-ish (us)",
              "worst (us)", "misses");

  for (core::Strategy s : core::kParallelStrategies) {
    engine::EngineConfig cfg;
    cfg.strategy = s;
    cfg.threads = 4;
    engine::AudioEngine e(cfg);
    support::Xoshiro256 rng(99);
    e.run_cycles(50);
    e.monitor().reset();
    for (std::size_t c = 0; c < cycles; ++c) {
      twiddle(e, rng);
      e.run_cycle();
    }
    const auto& m = e.monitor();
    const auto summary = support::Summary::of(m.total_samples());
    std::printf("  %-6s %12.1f %12.1f %12.1f %7zu/%zu\n",
                std::string(core::to_string(s)).c_str(), m.total().mean(),
                summary.p99, m.total().max(), m.misses(), m.cycles());
  }

  std::printf("\n(the paper's conclusion: busy-waiting gives the most early\n"
              "finishes and the fewest deadline misses; see bench/ for the\n"
              "full Table I / Fig. 9-10 reproductions)\n");
  return 0;
}
