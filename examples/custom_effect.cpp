// examples/custom_effect.cpp
// Extending the library: write your own effect processor, wire it into a
// custom task graph, and run it with any scheduling strategy. Shows the
// rules a node must follow to keep every schedule correct:
//   1. own your output buffer,
//   2. read only from buffers of declared predecessors,
//   3. allocate nothing inside process().
#include <cmath>
#include <cstdio>

#include "djstar/audio/buffer.hpp"
#include "djstar/audio/wav.hpp"
#include "djstar/core/compiled_graph.hpp"
#include "djstar/core/factory.hpp"
#include "djstar/dsp/osc.hpp"

namespace {

using djstar::audio::AudioBuffer;

/// A user-defined effect: ring modulator with a slewed carrier.
class RingModulator {
 public:
  RingModulator(const AudioBuffer* input, double carrier_hz)
      : input_(input) {
    osc_.set(djstar::dsp::OscShape::kSine, carrier_hz);
  }

  void process() noexcept {
    for (std::size_t i = 0; i < out_.frames(); ++i) {
      const float carrier = osc_.next();
      out_.at(0, i) = input_->at(0, i) * carrier;
      out_.at(1, i) = input_->at(1, i) * carrier;
    }
  }

  const AudioBuffer& output() const noexcept { return out_; }

 private:
  const AudioBuffer* input_;
  djstar::dsp::Oscillator osc_;
  AudioBuffer out_{2, djstar::audio::kBlockSize};
};

/// A source node: renders a dual-oscillator pad.
class PadSource {
 public:
  PadSource(double hz_a, double hz_b) {
    a_.set(djstar::dsp::OscShape::kSaw, hz_a);
    b_.set(djstar::dsp::OscShape::kSaw, hz_b * 1.003);
  }
  void process() noexcept {
    for (std::size_t i = 0; i < out_.frames(); ++i) {
      const float s = 0.25f * (a_.next() + b_.next());
      out_.at(0, i) = s;
      out_.at(1, i) = s;
    }
  }
  const AudioBuffer& output() const noexcept { return out_; }

 private:
  djstar::dsp::Oscillator a_, b_;
  AudioBuffer out_{2, djstar::audio::kBlockSize};
};

}  // namespace

int main() {
  using namespace djstar;

  // Two pads -> two ring modulators -> a mix bus. Branches run in
  // parallel under every multi-threaded strategy.
  PadSource pad1(110.0, 110.0), pad2(164.8, 164.8);
  RingModulator ring1(&pad1.output(), 30.0);
  RingModulator ring2(&pad2.output(), 4.0);
  AudioBuffer mix(2, audio::kBlockSize);

  core::TaskGraph g;
  const auto n_pad1 = g.add_node("pad1", [&] { pad1.process(); }, "left");
  const auto n_pad2 = g.add_node("pad2", [&] { pad2.process(); }, "right");
  const auto n_ring1 = g.add_node("ring1", [&] { ring1.process(); }, "left");
  const auto n_ring2 = g.add_node("ring2", [&] { ring2.process(); }, "right");
  const auto n_mix = g.add_node(
      "mix",
      [&] {
        mix.copy_from(ring1.output());
        mix.mix_from(ring2.output(), 1.0f);
      },
      "master");
  g.add_edge(n_pad1, n_ring1);
  g.add_edge(n_pad2, n_ring2);
  g.add_edge(n_ring1, n_mix);
  g.add_edge(n_ring2, n_mix);

  core::CompiledGraph compiled(g);
  core::ExecOptions opts;
  opts.threads = 2;
  auto exec = core::make_executor(core::Strategy::kWorkStealing, compiled, opts);

  const std::size_t cycles = 200;
  AudioBuffer bounce(2, cycles * audio::kBlockSize);
  for (std::size_t c = 0; c < cycles; ++c) {
    exec->run_cycle();
    for (std::size_t ch = 0; ch < 2; ++ch) {
      for (std::size_t i = 0; i < audio::kBlockSize; ++i) {
        bounce.at(ch, c * audio::kBlockSize + i) = mix.at(ch, i);
      }
    }
  }

  std::printf("custom_effect: rendered %zu cycles with %s, peak %.3f\n",
              cycles, std::string(exec->name()).c_str(), bounce.peak());
  std::printf("executor stats: %llu nodes, %llu steals\n",
              static_cast<unsigned long long>(
                  exec->stats().nodes_executed.load()),
              static_cast<unsigned long long>(exec->stats().steals.load()));
  if (audio::write_wav("custom_effect.wav", bounce)) {
    std::printf("wrote custom_effect.wav\n");
  }
  return 0;
}
