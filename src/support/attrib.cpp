#include "djstar/support/attrib.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace djstar::support::attrib {
namespace {

constexpr double kEps = 1e-9;

bool is_wait(SpanKind k) noexcept {
  return k == SpanKind::kSteal || k == SpanKind::kSleep ||
         k == SpanKind::kBusyWait;
}

double overlap(const TraceSpan& s, double lo, double hi) noexcept {
  const double a = std::max(s.begin_us, lo);
  const double b = std::min(s.end_us, hi);
  return b > a ? b - a : 0.0;
}

void append_f(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.3f", key, v);
  out += buf;
}

void append_i(std::string& out, const char* key, long long v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%lld", key, v);
  out += buf;
}

}  // namespace

const char* to_string(GapKind k) noexcept {
  switch (k) {
    case GapKind::kNone: return "none";
    case GapKind::kStealIdle: return "steal-idle";
    case GapKind::kBarrier: return "barrier";
    case GapKind::kOverhead: return "overhead";
  }
  return "?";
}

double CycleAttribution::total_run_us() const noexcept {
  double sum = 0;
  for (const WorkerBucket& w : workers) sum += w.run_us;
  return sum;
}

CriticalPathAnalyzer::CriticalPathAnalyzer(
    std::vector<std::vector<std::int32_t>> preds)
    : preds_(std::move(preds)) {}

const CycleAttribution& CriticalPathAnalyzer::analyze(
    std::span<const TraceSpan> spans, std::uint64_t cycle) {
  CycleAttribution& r = result_;
  r.cycle = cycle;
  r.makespan_us = r.cp_run_us = r.cp_wait_us = 0;
  r.cp_steal_idle_us = r.cp_barrier_us = r.cp_overhead_us = 0;
  r.path.clear();
  r.workers.clear();
  if (spans.empty()) return r;

  std::uint32_t workers = 0;
  for (const TraceSpan& s : spans) workers = std::max(workers, s.thread + 1);
  r.workers.assign(workers, WorkerBucket{});

  // One pass: lane ranges, per-node span index (last occurrence wins, so
  // a healed re-run shadows the victim's abandoned attempt), same-worker
  // previous-run links, and the last-finishing run (the chain sink).
  const auto n_spans = static_cast<std::uint32_t>(spans.size());
  lane_begin_.assign(workers, n_spans);
  lane_end_.assign(workers, 0);
  last_run_.assign(workers, -1);
  node_span_.assign(preds_.size(), -1);
  prev_on_lane_.assign(spans.size(), -1);
  std::int32_t sink = -1;
  double sink_end = 0;
  for (std::uint32_t i = 0; i < n_spans; ++i) {
    const TraceSpan& s = spans[i];
    lane_begin_[s.thread] = std::min(lane_begin_[s.thread], i);
    lane_end_[s.thread] = i + 1;
    if (s.kind != SpanKind::kRun) continue;
    prev_on_lane_[i] = last_run_[s.thread];
    last_run_[s.thread] = static_cast<std::int32_t>(i);
    if (s.node >= 0 && static_cast<std::size_t>(s.node) < preds_.size()) {
      node_span_[static_cast<std::size_t>(s.node)] =
          static_cast<std::int32_t>(i);
    }
    if (sink < 0 || s.end_us > sink_end) {
      sink = static_cast<std::int32_t>(i);
      sink_end = s.end_us;
    }
  }
  if (sink < 0) return r;  // no run spans this cycle (e.g. safe mode)
  r.makespan_us = sink_end;

  // Classify the gap (lo, hi) on `worker`: mostly covered by wait spans
  // means the worker was probing for unpublished work; an uncovered gap
  // is scheduler/supervisor overhead (or the cycle-start barrier when it
  // leads the worker's first activity).
  const auto classify = [&](std::uint32_t worker, double lo, double hi,
                            bool leading) -> GapKind {
    if (hi - lo <= kEps) return GapKind::kNone;
    double covered = 0;
    for (std::uint32_t i = lane_begin_[worker]; i < lane_end_[worker]; ++i) {
      if (is_wait(spans[i].kind)) covered += overlap(spans[i], lo, hi);
    }
    if (covered >= 0.5 * (hi - lo)) return GapKind::kStealIdle;
    return leading ? GapKind::kBarrier : GapKind::kOverhead;
  };

  // Back-walk: each step's start was bound by the later of (a) its
  // slowest graph predecessor finishing and (b) its worker's previous
  // run finishing. Following the binding constraint partitions
  // [0, makespan] into the chain's runs and gaps exactly.
  std::int32_t cur = sink;
  for (std::size_t guard = spans.size() + 1; guard > 0; --guard) {
    const TraceSpan& s = spans[static_cast<std::uint32_t>(cur)];
    PathStep st;
    st.node = s.node;
    st.worker = s.thread;
    st.steal_from = s.steal_from;
    st.run_begin_us = s.begin_us;
    st.run_end_us = s.end_us;

    std::int32_t dep = -1;
    double dep_end = 0;
    if (s.node >= 0 && static_cast<std::size_t>(s.node) < preds_.size()) {
      for (std::int32_t p : preds_[static_cast<std::size_t>(s.node)]) {
        if (p < 0 || static_cast<std::size_t>(p) >= node_span_.size()) continue;
        const std::int32_t pi = node_span_[static_cast<std::size_t>(p)];
        if (pi < 0 || pi == cur) continue;
        const double e = spans[static_cast<std::uint32_t>(pi)].end_us;
        if (dep < 0 || e > dep_end) {
          dep = pi;
          dep_end = e;
        }
      }
    }
    const std::int32_t prev = prev_on_lane_[static_cast<std::uint32_t>(cur)];
    const double prev_end =
        prev >= 0 ? spans[static_cast<std::uint32_t>(prev)].end_us : 0;

    if (dep < 0 && prev < 0) {
      // Chain source: the leading gap runs from the cycle start.
      st.wait_us = std::max(0.0, s.begin_us);
      st.wait_kind = classify(s.thread, 0.0, s.begin_us, /*leading=*/true);
      r.path.push_back(st);
      break;
    }
    std::int32_t next;
    if (prev < 0 || (dep >= 0 && dep_end >= prev_end)) {
      next = dep;
      st.dep_bound = true;
      st.pred_node = spans[static_cast<std::uint32_t>(dep)].node;
    } else {
      next = prev;
    }
    const double bound_end = spans[static_cast<std::uint32_t>(next)].end_us;
    st.wait_us = std::max(0.0, s.begin_us - bound_end);
    st.wait_kind = st.wait_us <= kEps
                       ? GapKind::kNone
                       : classify(s.thread, bound_end, s.begin_us, false);
    r.path.push_back(st);
    cur = next;
  }
  std::reverse(r.path.begin(), r.path.end());

  for (const PathStep& st : r.path) {
    r.cp_run_us += st.run_us();
    r.cp_wait_us += st.wait_us;
    switch (st.wait_kind) {
      case GapKind::kStealIdle: r.cp_steal_idle_us += st.wait_us; break;
      case GapKind::kBarrier: r.cp_barrier_us += st.wait_us; break;
      case GapKind::kOverhead: r.cp_overhead_us += st.wait_us; break;
      case GapKind::kNone: break;
    }
  }

  // Per-worker buckets partition each worker's share of the makespan.
  for (std::uint32_t w = 0; w < workers; ++w) {
    WorkerBucket& b = r.workers[w];
    double span_overhead = 0;
    double last_end = 0;
    for (std::uint32_t i = lane_begin_[w]; i < lane_end_[w]; ++i) {
      const TraceSpan& s = spans[i];
      if (s.kind == SpanKind::kFused) continue;  // envelope of member runs
      const double lo = std::clamp(s.begin_us, 0.0, r.makespan_us);
      const double hi = std::clamp(s.end_us, 0.0, r.makespan_us);
      const double d = hi - lo;
      if (s.kind == SpanKind::kRun) {
        b.run_us += d;
        ++b.runs;
        if (s.steal_from >= 0) ++b.steals;
      } else if (is_wait(s.kind)) {
        b.steal_idle_us += d;
      } else {
        span_overhead += d;
      }
      last_end = std::max(last_end, hi);
    }
    b.barrier_us = r.makespan_us - last_end;  // lane empty: all barrier
    const double residual = r.makespan_us - b.run_us - b.steal_idle_us -
                            b.barrier_us - span_overhead;
    b.overhead_us = span_overhead + std::max(0.0, residual);
  }
  return r;
}

BlameTracker::BlameTracker(std::size_t top_k, double alpha)
    : top_k_(top_k == 0 ? 1 : top_k), alpha_(alpha) {}

double BlameTracker::node_baseline_us(std::int32_t node) const noexcept {
  if (node < 0 || static_cast<std::size_t>(node) >= node_ewma_.size() ||
      !node_seen_[static_cast<std::size_t>(node)]) {
    return 0;
  }
  return node_ewma_[static_cast<std::size_t>(node)];
}

const BlameReport& BlameTracker::on_cycle(const CycleAttribution& at,
                                          std::span<const TraceSpan> spans,
                                          bool missed, double deadline_us) {
  // Per-node actual cost this cycle (a node can run as several spans
  // inside a fused unit re-run; sum them).
  touched_.clear();
  for (const TraceSpan& s : spans) {
    if (s.kind != SpanKind::kRun || s.node < 0) continue;
    const auto n = static_cast<std::size_t>(s.node);
    if (n >= actual_.size()) {
      actual_.resize(n + 1, 0.0);
      actual_worker_.resize(n + 1, -1);
    }
    if (actual_[n] == 0.0) touched_.push_back(s.node);
    actual_[n] += s.duration_us();
    actual_worker_[n] = static_cast<std::int32_t>(s.thread);
  }
  if (node_ewma_.size() < actual_.size()) {
    node_ewma_.resize(actual_.size(), 0.0);
    node_seen_.resize(actual_.size(), false);
  }
  if (worker_ewma_.size() < at.workers.size()) {
    worker_ewma_.resize(at.workers.size(), 0.0);
    worker_seen_.resize(at.workers.size(), false);
  }

  if (!missed) {
    // Healthy cycle: absorb into baselines. Missed cycles are excluded
    // so a repeating stall cannot become its own baseline.
    for (std::int32_t node : touched_) {
      const auto n = static_cast<std::size_t>(node);
      node_ewma_[n] = node_seen_[n]
                          ? (1.0 - alpha_) * node_ewma_[n] + alpha_ * actual_[n]
                          : actual_[n];
      node_seen_[n] = true;
    }
    for (std::size_t w = 0; w < at.workers.size(); ++w) {
      const WorkerBucket& b = at.workers[w];
      const double nonrun = b.steal_idle_us + b.barrier_us + b.overhead_us;
      worker_ewma_[w] = worker_seen_[w]
                            ? (1.0 - alpha_) * worker_ewma_[w] + alpha_ * nonrun
                            : nonrun;
      worker_seen_[w] = true;
    }
  } else {
    cand_.clear();
    for (std::int32_t node : touched_) {
      const auto n = static_cast<std::size_t>(node);
      BlameEntry e;
      e.node = node;
      e.worker = actual_worker_[n];
      e.actual_us = actual_[n];
      e.baseline_us = node_seen_[n] ? node_ewma_[n] : 0.0;
      e.delta_us = e.actual_us - e.baseline_us;
      cand_.push_back(e);
    }
    std::sort(cand_.begin(), cand_.end(),
              [](const BlameEntry& a, const BlameEntry& b) {
                return a.delta_us > b.delta_us;
              });
    if (cand_.size() > top_k_) cand_.resize(top_k_);
    for (BlameEntry& e : cand_) {
      for (const PathStep& st : at.path) {
        if (st.node == e.node) {
          e.on_path = true;
          break;
        }
      }
    }

    wcand_.clear();
    for (std::size_t w = 0; w < at.workers.size(); ++w) {
      const WorkerBucket& b = at.workers[w];
      WorkerBlame wb;
      wb.worker = static_cast<std::uint32_t>(w);
      wb.nonrun_us = b.steal_idle_us + b.barrier_us + b.overhead_us;
      wb.baseline_us = worker_seen_[w] ? worker_ewma_[w] : 0.0;
      wb.delta_us = wb.nonrun_us - wb.baseline_us;
      wcand_.push_back(wb);
    }
    std::sort(wcand_.begin(), wcand_.end(),
              [](const WorkerBlame& a, const WorkerBlame& b) {
                return a.delta_us > b.delta_us;
              });
    if (wcand_.size() > top_k_) wcand_.resize(top_k_);

    last_.valid = true;
    last_.cycle = at.cycle;
    last_.makespan_us = at.makespan_us;
    last_.deadline_us = deadline_us;
    last_.cp_run_us = at.cp_run_us;
    last_.cp_wait_us = at.cp_wait_us;
    last_.nodes = cand_;
    last_.workers = wcand_;
    ++reports_;
  }

  // Reset per-cycle scratch (touched entries only; stays O(nodes run)).
  for (std::int32_t node : touched_) {
    actual_[static_cast<std::size_t>(node)] = 0.0;
  }
  return last_;
}

void append_json(std::string& out, const CycleAttribution& at) {
  out += '{';
  append_i(out, "cycle", static_cast<long long>(at.cycle));
  out += ',';
  append_f(out, "makespan_us", at.makespan_us);
  out += ',';
  append_f(out, "cp_run_us", at.cp_run_us);
  out += ',';
  append_f(out, "cp_wait_us", at.cp_wait_us);
  out += ',';
  append_f(out, "cp_steal_idle_us", at.cp_steal_idle_us);
  out += ',';
  append_f(out, "cp_barrier_us", at.cp_barrier_us);
  out += ',';
  append_f(out, "cp_overhead_us", at.cp_overhead_us);
  out += ",\"path\":[";
  for (std::size_t i = 0; i < at.path.size(); ++i) {
    const PathStep& st = at.path[i];
    if (i) out += ',';
    out += '{';
    append_i(out, "node", st.node);
    out += ',';
    append_i(out, "worker", st.worker);
    out += ',';
    append_i(out, "steal_from", st.steal_from);
    out += ',';
    append_f(out, "run_us", st.run_us());
    out += ',';
    append_f(out, "wait_us", st.wait_us);
    out += ",\"wait_kind\":\"";
    out += to_string(st.wait_kind);
    out += "\",\"dep_bound\":";
    out += st.dep_bound ? "true" : "false";
    out += ',';
    append_i(out, "pred", st.pred_node);
    out += '}';
  }
  out += "],\"workers\":[";
  for (std::size_t w = 0; w < at.workers.size(); ++w) {
    const WorkerBucket& b = at.workers[w];
    if (w) out += ',';
    out += '{';
    append_f(out, "run_us", b.run_us);
    out += ',';
    append_f(out, "steal_idle_us", b.steal_idle_us);
    out += ',';
    append_f(out, "barrier_us", b.barrier_us);
    out += ',';
    append_f(out, "overhead_us", b.overhead_us);
    out += ',';
    append_i(out, "runs", b.runs);
    out += ',';
    append_i(out, "steals", b.steals);
    out += '}';
  }
  out += "]}";
}

void append_json(std::string& out, const BlameReport& r) {
  out += "{\"valid\":";
  out += r.valid ? "true" : "false";
  out += ',';
  append_i(out, "cycle", static_cast<long long>(r.cycle));
  out += ',';
  append_f(out, "makespan_us", r.makespan_us);
  out += ',';
  append_f(out, "deadline_us", r.deadline_us);
  out += ',';
  append_f(out, "cp_run_us", r.cp_run_us);
  out += ',';
  append_f(out, "cp_wait_us", r.cp_wait_us);
  out += ",\"nodes\":[";
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    const BlameEntry& e = r.nodes[i];
    if (i) out += ',';
    out += '{';
    append_i(out, "node", e.node);
    out += ',';
    append_i(out, "worker", e.worker);
    out += ',';
    append_f(out, "actual_us", e.actual_us);
    out += ',';
    append_f(out, "baseline_us", e.baseline_us);
    out += ',';
    append_f(out, "delta_us", e.delta_us);
    out += ",\"on_path\":";
    out += e.on_path ? "true" : "false";
    out += '}';
  }
  out += "],\"workers\":[";
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    const WorkerBlame& w = r.workers[i];
    if (i) out += ',';
    out += '{';
    append_i(out, "worker", w.worker);
    out += ',';
    append_f(out, "nonrun_us", w.nonrun_us);
    out += ',';
    append_f(out, "baseline_us", w.baseline_us);
    out += ',';
    append_f(out, "delta_us", w.delta_us);
    out += '}';
  }
  out += "]}";
}

}  // namespace djstar::support::attrib
