#include "djstar/support/cost_table.hpp"

#include "djstar/support/csv.hpp"

namespace djstar::support::costs {

namespace {
constexpr CostRow kRows[] = {
    {"dep_check_us", kDepCheckUs, "BM_AtomicDependencyCheck"},
    {"spin_quantum_us", kSpinQuantumUs, "BM_SpinQuantum"},
    {"wake_latency_us", kWakeLatencyUs, "BM_SleepWakeRoundTrip"},
    {"signal_cost_us", kSignalCostUs, "BM_CondvarNotify"},
    {"sleep_entry_us", kSleepEntryUs, "BM_SleepWakeRoundTrip"},
    {"steal_probe_us", kStealProbeUs, "BM_DequeSteal"},
    {"deque_op_us", kDequeOpUs, "BM_DequePushPop"},
    {"seed_cost_us", kSeedCostUs, "BM_DequePushPop"},
    {"contention_per_thread", kContentionPerThread,
     "paper §VI BUSY-vs-RESCON gap"},
    {"dispatch_us", kDispatchUs, "BM_TeamDispatch"},
    {"per_node_dispatch_us", kPerNodeDispatchUs, "dep_check + deque_op"},
};
}  // namespace

std::span<const CostRow> rows() noexcept { return kRows; }

bool write_cost_table_csv(const std::string& path) {
  CsvWriter csv;
  csv.cells("op", "us", "source");
  for (const auto& r : rows()) csv.cells(r.op, r.us, r.source);
  return csv.save(path);
}

}  // namespace djstar::support::costs
