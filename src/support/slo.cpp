#include "djstar/support/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace djstar::support {

namespace {

std::string_view trim(std::string_view s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Strict positive-double parse: the whole field must be consumed and
/// the value must land in (0, `max`]. Throws otherwise.
double parse_positive(std::string_view field, const char* what,
                      double max_value) {
  const std::string tmp(field);  // strtod needs NUL termination
  char* end = nullptr;
  const double v = std::strtod(tmp.c_str(), &end);
  if (end == tmp.c_str() || *end != '\0') {
    throw std::invalid_argument(std::string("DJSTAR_SLO: malformed ") +
                                what + " '" + tmp + "'");
  }
  if (!(v > 0) || v > max_value) {
    throw std::invalid_argument(std::string("DJSTAR_SLO: ") + what +
                                " out of range (0, " +
                                std::to_string(max_value) + "]: '" + tmp +
                                "'");
  }
  return v;
}

std::size_t windows_for(double seconds, double window_us) noexcept {
  const double w = seconds * 1e6 / window_us;
  return w < 1.0 ? 1 : static_cast<std::size_t>(w);
}

void append_rates_json(std::string& out, const char* key,
                       const SloBurnRates& r, double budget,
                       bool enabled) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "\"%s\":{\"enabled\":%s,\"budget\":%.6f,\"fast_short\":%.3f,"
      "\"fast_long\":%.3f,\"slow_short\":%.3f,\"slow_long\":%.3f,"
      "\"page_firing\":%s,\"warn_firing\":%s}",
      key, enabled ? "true" : "false", budget, r.fast_short, r.fast_long,
      r.slow_short, r.slow_long, r.page_firing ? "true" : "false",
      r.warn_firing ? "true" : "false");
  out += buf;
}

}  // namespace

const char* to_string(SloAlertState s) noexcept {
  switch (s) {
    case SloAlertState::kOk:
      return "ok";
    case SloAlertState::kWarn:
      return "warn";
    case SloAlertState::kPage:
      return "page";
  }
  return "?";
}

SloWindows SloWindows::sre_defaults(double window_us) noexcept {
  SloWindows w;
  w.fast_short = windows_for(5.0 * 60, window_us);        // 5 m
  w.fast_long = windows_for(60.0 * 60, window_us);        // 1 h
  w.slow_short = windows_for(30.0 * 60, window_us);       // 30 m
  w.slow_long = windows_for(6.0 * 60 * 60, window_us);    // 6 h
  return w;
}

std::optional<SloConfig> SloConfig::from_env() {
  const char* raw = std::getenv("DJSTAR_SLO");
  if (raw == nullptr) return std::nullopt;
  const std::string_view value = trim(raw);
  if (value.empty()) {
    throw std::invalid_argument(
        "DJSTAR_SLO: empty value (expected off or "
        "on[,<miss_ratio>[,<p99_us>]])");
  }

  // Split on ',' into at most 3 trimmed fields; empty fields throw.
  std::string_view fields[3];
  std::size_t nfields = 0;
  std::string_view rest = value;
  while (true) {
    const auto comma = rest.find(',');
    const std::string_view field = trim(rest.substr(0, comma));
    if (nfields == 3) {
      throw std::invalid_argument(
          "DJSTAR_SLO: too many fields (expected "
          "off or on[,<miss_ratio>[,<p99_us>]])");
    }
    if (field.empty()) {
      throw std::invalid_argument("DJSTAR_SLO: empty field in '" +
                                  std::string(value) + "'");
    }
    fields[nfields++] = field;
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }

  SloConfig cfg;
  if (fields[0] == "off") {
    if (nfields > 1) {
      throw std::invalid_argument(
          "DJSTAR_SLO: 'off' takes no further fields");
    }
    cfg.enabled = false;
    return cfg;
  }
  if (fields[0] != "on") {
    throw std::invalid_argument("DJSTAR_SLO: unknown mode '" +
                                std::string(fields[0]) +
                                "' (expected off or on)");
  }
  cfg.enabled = true;
  if (nfields >= 2) {
    // A miss budget of 1.0 would never alert; require a real ratio.
    const double r = parse_positive(fields[1], "miss_ratio", 1.0);
    if (r >= 1.0) {
      throw std::invalid_argument(
          "DJSTAR_SLO: miss_ratio must be in (0, 1): '" +
          std::string(fields[1]) + "'");
    }
    cfg.spec.miss_ratio = r;
  }
  if (nfields >= 3) {
    cfg.spec.p99_us = parse_positive(fields[2], "p99_us", 1e9);
  }
  return cfg;
}

SloTracker::SloTracker(TimeSeriesStore& store, std::string prefix,
                       SloSpec spec, SloWindows windows)
    : store_(store),
      prefix_(std::move(prefix)),
      spec_(spec),
      win_(windows) {
  if (!win_.valid()) {
    throw std::invalid_argument("slo: invalid window geometry for '" +
                                prefix_ + "'");
  }
  s_cycles_ = store_.add_series(prefix_ + "_cycles");
  s_misses_ = store_.add_series(prefix_ + "_misses");
  s_slow_ = store_.add_series(prefix_ + "_slow");
  s_bad_ = store_.add_series(prefix_ + "_bad");
}

SloTracker::~SloTracker() {
  store_.remove_series(prefix_ + "_cycles");
  store_.remove_series(prefix_ + "_misses");
  store_.remove_series(prefix_ + "_slow");
  store_.remove_series(prefix_ + "_bad");
}

void SloTracker::record_cycle(double latency_us, bool missed,
                              bool good) noexcept {
  store_.record(s_cycles_, latency_us);
  if (missed) store_.record(s_misses_, latency_us);
  if (spec_.p99_us > 0 && latency_us > spec_.p99_us) {
    store_.record(s_slow_, latency_us);
  }
  if (!good) store_.record(s_bad_, 1.0);
}

double SloTracker::burn_rate(std::size_t over_windows,
                             TimeSeriesStore::SeriesRef bad,
                             double budget) const {
  const TsWindow total = store_.aggregate(s_cycles_, over_windows);
  if (total.count == 0) return 0;
  const TsWindow errs = store_.aggregate(bad, over_windows);
  const double ratio = static_cast<double>(errs.count) /
                       static_cast<double>(total.count);
  return budget > 0 ? ratio / budget : 0;
}

SloBurnRates SloTracker::rates_for(TimeSeriesStore::SeriesRef bad,
                                   double budget) const {
  SloBurnRates r;
  r.fast_short = burn_rate(win_.fast_short, bad, budget);
  r.fast_long = burn_rate(win_.fast_long, bad, budget);
  r.slow_short = burn_rate(win_.slow_short, bad, budget);
  r.slow_long = burn_rate(win_.slow_long, bad, budget);
  r.page_firing =
      r.fast_short >= win_.fast_burn && r.fast_long >= win_.fast_burn;
  r.warn_firing =
      r.page_firing ||
      (r.slow_short >= win_.slow_burn && r.slow_long >= win_.slow_burn);
  return r;
}

bool SloTracker::evaluate() {
  const std::uint64_t sealed = store_.sealed_windows();
  if (sealed == last_eval_seal_) return false;
  last_eval_seal_ = sealed;

  status_.miss = rates_for(s_misses_, spec_.miss_ratio);
  status_.latency = spec_.p99_us > 0 ? rates_for(s_slow_, spec_.p99_budget)
                                     : SloBurnRates{};
  status_.avail = rates_for(s_bad_, 1.0 - spec_.availability);

  const bool page = status_.miss.page_firing ||
                    status_.latency.page_firing ||
                    status_.avail.page_firing;
  const bool warn = page || status_.miss.warn_firing ||
                    status_.latency.warn_firing ||
                    status_.avail.warn_firing;

  double remaining = 1.0 - status_.miss.slow_long;
  if (spec_.p99_us > 0) {
    remaining = std::min(remaining, 1.0 - status_.latency.slow_long);
  }
  remaining = std::min(remaining, 1.0 - status_.avail.slow_long);
  status_.budget_remaining = std::clamp(remaining, 0.0, 1.0);

  // Stepwise escalation with hysteresis: one level up per firing
  // evaluation (ok → warn → page, so a page is always preceded by a
  // warn), one level down per `recover_evals` consecutive clean ones.
  SloAlertState next = status_.state;
  if (warn) {
    clean_evals_ = 0;
    if (page && status_.state == SloAlertState::kWarn) {
      next = SloAlertState::kPage;
    } else if (status_.state == SloAlertState::kOk) {
      next = SloAlertState::kWarn;
    }
  } else if (status_.state != SloAlertState::kOk) {
    if (++clean_evals_ >= win_.recover_evals) {
      clean_evals_ = 0;
      next = status_.state == SloAlertState::kPage ? SloAlertState::kWarn
                                                   : SloAlertState::kOk;
    }
  } else {
    clean_evals_ = 0;
  }
  ++status_.evals;
  const bool changed = next != status_.state;
  status_.state = next;
  return changed;
}

void SloTracker::append_json(std::string& out) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"state\":\"%s\",\"budget_remaining\":%.4f,\"evals\":%llu,"
                "\"objectives\":{",
                to_string(status_.state), status_.budget_remaining,
                static_cast<unsigned long long>(status_.evals));
  out += buf;
  append_rates_json(out, "miss", status_.miss, spec_.miss_ratio, true);
  out += ',';
  append_rates_json(out, "latency", status_.latency, spec_.p99_budget,
                    spec_.p99_us > 0);
  out += ',';
  append_rates_json(out, "availability", status_.avail,
                    1.0 - spec_.availability, true);
  out += "}}";
}

}  // namespace djstar::support
