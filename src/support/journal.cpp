#include "djstar/support/journal.hpp"

#include <cstdio>
#include <fstream>

namespace djstar::support {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kDeadlineMiss: return "deadline-miss";
    case EventKind::kDegrade: return "degrade";
    case EventKind::kRecover: return "recover";
    case EventKind::kWatchdogCancel: return "watchdog-cancel";
    case EventKind::kFaultInjected: return "fault-injected";
    case EventKind::kAdmit: return "admit";
    case EventKind::kQueuePark: return "queue-park";
    case EventKind::kReject: return "reject";
    case EventKind::kShed: return "shed";
    case EventKind::kOverload: return "overload";
    case EventKind::kSessionClosed: return "session-closed";
    case EventKind::kFlightDump: return "flight-dump";
    case EventKind::kWorkerQuarantine: return "worker-quarantine";
    case EventKind::kWorkerRespawn: return "worker-respawn";
    case EventKind::kBreakerTrip: return "breaker-trip";
    case EventKind::kBreakerProbe: return "breaker-probe";
    case EventKind::kBreakerClose: return "breaker-close";
    case EventKind::kSessionRestored: return "session-restored";
    case EventKind::kNetConnect: return "net-connect";
    case EventKind::kNetDisconnect: return "net-disconnect";
    case EventKind::kNetProtocolError: return "net-protocol-error";
    case EventKind::kNetBackpressure: return "net-backpressure";
    case EventKind::kNetAudioDrop: return "net-audio-drop";
    case EventKind::kBlameReport: return "blame-report";
    case EventKind::kBlame: return "blame";
    case EventKind::kCpDrift: return "cp-drift";
    case EventKind::kSloAlert: return "slo-alert";
    case EventKind::kSloRecover: return "slo-recover";
  }
  return "?";
}

EventJournal::EventJournal(std::size_t capacity)
    : buf_size_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(buf_size_ - 1),
      slots_(std::make_unique<Slot[]>(buf_size_)) {
  // Vyukov sequence discipline: slot i is writable when seq == ticket,
  // readable when seq == ticket + 1.
  for (std::size_t i = 0; i < buf_size_; ++i) {
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool EventJournal::push(EventKind kind, std::uint64_t cycle, std::int64_t a,
                        std::int64_t b, double value) noexcept {
  std::uint64_t ticket = enqueue_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[ticket & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const auto diff =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(ticket);
    if (diff == 0) {
      if (enqueue_.compare_exchange_weak(ticket, ticket + 1,
                                         std::memory_order_relaxed)) {
        slot.ev.seq = ticket;
        slot.ev.t_us = now_us();
        slot.ev.kind = kind;
        slot.ev.cycle = cycle;
        slot.ev.a = a;
        slot.ev.b = b;
        slot.ev.value = value;
        slot.seq.store(ticket + 1, std::memory_order_release);
        published_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS failed: `ticket` was reloaded, retry with the new value.
    } else if (diff < 0) {
      // The slot one lap ahead is still unread: the ring is full.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      // Another producer claimed this ticket; chase the cursor.
      ticket = enqueue_.load(std::memory_order_relaxed);
    }
  }
}

std::size_t EventJournal::drain(std::vector<Event>& out) {
  std::size_t n = 0;
  for (;;) {
    Slot& slot = slots_[dequeue_ & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != dequeue_ + 1) break;  // next slot not yet published
    out.push_back(slot.ev);
    // Free the slot for the producer one lap ahead.
    slot.seq.store(dequeue_ + buf_size_, std::memory_order_release);
    ++dequeue_;
    ++n;
  }
  return n;
}

std::vector<Event> EventJournal::drain_all() {
  std::vector<Event> out;
  drain(out);
  return out;
}

std::string to_jsonl(std::span<const Event> events) {
  std::string out;
  out.reserve(events.size() * 120);
  char buf[256];
  for (const Event& e : events) {
    std::snprintf(buf, sizeof buf,
                  "{\"seq\":%llu,\"t_us\":%.3f,\"kind\":\"%s\","
                  "\"cycle\":%llu,\"a\":%lld,\"b\":%lld,\"value\":%.3f}\n",
                  static_cast<unsigned long long>(e.seq), e.t_us,
                  to_string(e.kind), static_cast<unsigned long long>(e.cycle),
                  static_cast<long long>(e.a), static_cast<long long>(e.b),
                  e.value);
    out += buf;
  }
  return out;
}

bool write_jsonl(const std::string& path, std::span<const Event> events) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << to_jsonl(events);
  return static_cast<bool>(f);
}

}  // namespace djstar::support
