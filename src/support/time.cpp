#include "djstar/support/time.hpp"

namespace djstar::support {

void spin_for_us(double us) noexcept {
  if (us <= 0) return;
  const auto t0 = now();
  // Re-reading the clock each iteration bounds the overshoot to one clock
  // read (~20ns); good enough for emulating node compute in tests/benches.
  while (since_us(t0) < us) {
#if defined(__x86_64__) || defined(_M_X64)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace djstar::support
