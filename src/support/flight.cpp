#include "djstar/support/flight.hpp"

#include <algorithm>

namespace djstar::support {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void FlightRecorder::configure(std::uint32_t threads,
                               std::size_t spans_per_thread) {
  const std::size_t cap = round_up_pow2(spans_per_thread < 2 ? 2
                                                             : spans_per_thread);
  lanes_.assign(threads, Lane{});
  for (Lane& lane : lanes_) {
    lane.ring.assign(cap, FlightSpan{});
    lane.next = 0;
    lane.mask = cap - 1;
  }
}

void FlightRecorder::disable() noexcept { lanes_.clear(); }

std::uint64_t FlightRecorder::recorded(std::uint32_t thread) const noexcept {
  return thread < lanes_.size() ? lanes_[thread].next : 0;
}

std::uint64_t FlightRecorder::total_recorded() const noexcept {
  std::uint64_t sum = 0;
  for (const Lane& lane : lanes_) sum += lane.next;
  return sum;
}

std::vector<TraceSpan> FlightRecorder::collect_last(std::uint64_t cycles,
                                                    double period_us) const {
  const std::uint64_t current = cycle_.load(std::memory_order_relaxed);
  const std::uint64_t window_start =
      current > cycles ? current - cycles + 1 : 0;
  std::vector<TraceSpan> out;
  for (std::uint32_t t = 0; t < lanes_.size(); ++t) {
    const Lane& lane = lanes_[t];
    const std::uint64_t cap = lane.mask + 1;
    const std::uint64_t held = std::min<std::uint64_t>(lane.next, cap);
    for (std::uint64_t i = lane.next - held; i < lane.next; ++i) {
      const FlightSpan& fs = lane.ring[i & lane.mask];
      if (fs.cycle < window_start) continue;
      TraceSpan s = fs.span;
      const double base =
          static_cast<double>(fs.cycle - window_start) * period_us;
      s.begin_us += base;
      s.end_us += base;
      out.push_back(s);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceSpan& a, const TraceSpan& b) {
    if (a.thread != b.thread) return a.thread < b.thread;
    return a.begin_us < b.begin_us;
  });
  return out;
}

void FlightRecorder::collect_cycle(std::uint64_t cycle,
                                   std::vector<TraceSpan>& out) const {
  out.clear();
  for (std::uint32_t t = 0; t < lanes_.size(); ++t) {
    const Lane& lane = lanes_[t];
    const std::uint64_t cap = lane.mask + 1;
    const std::uint64_t held = std::min<std::uint64_t>(lane.next, cap);
    // Cycle tags are nondecreasing in write order, so the target cycle's
    // spans sit at the ring's tail when collecting the cycle that just
    // finished: scan backward and stop at the first older entry, making
    // the per-cycle attribution cost O(spans in cycle), not O(capacity).
    for (std::uint64_t i = lane.next; i > lane.next - held; --i) {
      const FlightSpan& fs = lane.ring[(i - 1) & lane.mask];
      if (fs.cycle > cycle) continue;
      if (fs.cycle < cycle) break;
      out.push_back(fs.span);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceSpan& a, const TraceSpan& b) {
    if (a.thread != b.thread) return a.thread < b.thread;
    return a.begin_us < b.begin_us;
  });
}

bool FlightRecorder::dump_chrome_trace(const std::string& path,
                                       std::uint64_t cycles, double period_us,
                                       std::string_view process_name,
                                       std::uint32_t pid) const {
  TraceProcess p;
  p.name = std::string(process_name);
  p.pid = pid;
  p.spans = collect_last(cycles, period_us);
  const TraceProcess procs[] = {std::move(p)};
  return write_chrome_trace(path, procs);
}

}  // namespace djstar::support
