#include "djstar/support/tsdb.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace djstar::support {

namespace detail {

/// Per-series storage. The open accumulator is touched only by the
/// writer thread (record / seal), so it needs no synchronization; the
/// sealed ring is written under the store mutex and read under it.
struct TsSeries {
  std::string name;

  // Open-window accumulator (writer thread only, no lock).
  std::uint64_t open_count = 0;
  double open_sum = 0;
  double open_min = std::numeric_limits<double>::infinity();
  double open_max = -std::numeric_limits<double>::infinity();

  // Histogram-backed series: `live` is owned by the caller; `prev` is
  // the copy taken at the last seal (delta_since windowing).
  const Histogram* live = nullptr;
  std::unique_ptr<Histogram> prev;

  // Sealed ring, oldest at (head) when full. `total` is the global
  // window index of the next seal.
  std::vector<TsWindow> ring;
  std::size_t head = 0;  ///< slot the next seal writes
  std::size_t used = 0;  ///< sealed windows currently retained
  std::uint64_t total = 0;

  explicit TsSeries(std::string n, std::size_t retention)
      : name(std::move(n)), ring(retention) {}

  void seal() {
    TsWindow w;
    if (live != nullptr) {
      const Histogram delta = live->delta_since(*prev);
      *prev = *live;  // same layout: no allocation beyond vector reuse
      w.count = static_cast<std::uint64_t>(delta.total());
      if (w.count > 0) {
        w.p50 = delta.quantile(0.50);
        w.p99 = delta.quantile(0.99);
        // Midpoint-approximate sum/min/max so mean-style dashboards work
        // on histogram series too (error bounded by half a bin width).
        double sum = 0;
        double mn = std::numeric_limits<double>::infinity();
        double mx = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < delta.bin_count(); ++i) {
          const std::size_t c = delta.count(i);
          if (c == 0) continue;
          const double mid = 0.5 * (delta.bin_lo(i) + delta.bin_hi(i));
          sum += mid * static_cast<double>(c);
          mn = std::min(mn, delta.bin_lo(i));
          mx = std::max(mx, delta.bin_hi(i));
        }
        sum += delta.lo() * static_cast<double>(delta.underflow());
        sum += delta.hi() * static_cast<double>(delta.overflow());
        if (delta.underflow() > 0) mn = std::min(mn, delta.lo());
        if (delta.overflow() > 0) mx = std::max(mx, delta.hi());
        w.sum = sum;
        w.min = mn;
        w.max = mx;
      }
    } else {
      w.count = open_count;
      w.sum = open_sum;
      w.min = open_count > 0 ? open_min : 0;
      w.max = open_count > 0 ? open_max : 0;
    }
    ring[head] = w;
    head = (head + 1) % ring.size();
    used = std::min(used + 1, ring.size());
    ++total;
    open_count = 0;
    open_sum = 0;
    open_min = std::numeric_limits<double>::infinity();
    open_max = -std::numeric_limits<double>::infinity();
  }

  /// Sealed window i windows back from the newest (0 = newest).
  const TsWindow& back(std::size_t i) const {
    const std::size_t newest = (head + ring.size() - 1) % ring.size();
    return ring[(newest + ring.size() - i) % ring.size()];
  }
};

}  // namespace detail

namespace {

void append_window_json(std::string& out, std::uint64_t index,
                        const TsWindow& w, bool histogram) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"i\":%llu,\"count\":%llu,\"sum\":%.3f,\"min\":%.3f,"
                "\"max\":%.3f",
                static_cast<unsigned long long>(index),
                static_cast<unsigned long long>(w.count), w.sum, w.min,
                w.max);
  out += buf;
  if (histogram) {
    std::snprintf(buf, sizeof(buf), ",\"p50\":%.3f,\"p99\":%.3f", w.p50,
                  w.p99);
    out += buf;
  }
  out += '}';
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(TsdbConfig cfg) : cfg_(cfg) {
  if (!(cfg_.window_us > 0)) {
    throw std::invalid_argument("tsdb: window_us must be > 0");
  }
  if (cfg_.retention == 0) {
    throw std::invalid_argument("tsdb: retention must be >= 1");
  }
}

TimeSeriesStore::~TimeSeriesStore() = default;

TimeSeriesStore::SeriesRef TimeSeriesStore::add_series(
    std::string_view name) {
  if (name.empty()) throw std::invalid_argument("tsdb: empty series name");
  std::lock_guard<std::mutex> lk(mutex_);
  for (const auto& s : series_) {
    if (s->name == name) {
      throw std::invalid_argument("tsdb: duplicate series '" +
                                  std::string(name) + "'");
    }
  }
  series_.push_back(
      std::make_unique<detail::TsSeries>(std::string(name), cfg_.retention));
  // Backfill: a series registered mid-run starts empty at the current
  // global window index, so aggregate()/burn rates see no phantom past.
  series_.back()->total = sealed_;
  return SeriesRef(series_.back().get());
}

TimeSeriesStore::SeriesRef TimeSeriesStore::add_histogram_series(
    std::string_view name, const Histogram* live) {
  if (live == nullptr) {
    throw std::invalid_argument("tsdb: histogram series needs a live source");
  }
  SeriesRef ref = add_series(name);
  std::lock_guard<std::mutex> lk(mutex_);
  ref.s_->live = live;
  ref.s_->prev = std::make_unique<Histogram>(*live);
  return ref;
}

void TimeSeriesStore::remove_series(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto it = series_.begin(); it != series_.end(); ++it) {
    if ((*it)->name == name) {
      series_.erase(it);
      return;
    }
  }
}

void TimeSeriesStore::record(SeriesRef s, double v) noexcept {
  detail::TsSeries* ts = s.s_;
  if (ts == nullptr) return;
  ++ts->open_count;
  ts->open_sum += v;
  ts->open_min = std::min(ts->open_min, v);
  ts->open_max = std::max(ts->open_max, v);
}

std::size_t TimeSeriesStore::advance(double now_us) {
  if (now_us > now_us_) now_us_ = now_us;
  if (now_us_ - window_start_us_ < cfg_.window_us) return 0;
  const auto pending = static_cast<std::uint64_t>(
      (now_us_ - window_start_us_) / cfg_.window_us);
  window_start_us_ += static_cast<double>(pending) * cfg_.window_us;
  // Seal every window crossed, but cap the catch-up loop at one full
  // retention sweep: past that every retained window is the same empty
  // gap, so the remainder is skipped by bumping the indices instead
  // (global and per-series counts stay time-aligned).
  const std::uint64_t to_seal =
      std::min<std::uint64_t>(pending, cfg_.retention);
  const std::uint64_t skipped = pending - to_seal;
  std::lock_guard<std::mutex> lk(mutex_);
  if (skipped > 0) {
    // The open accumulator belongs to the oldest pending window, which a
    // skip evicts — drop it rather than fold it into a newer window.
    for (auto& s : series_) {
      s->total += skipped;
      s->open_count = 0;
      s->open_sum = 0;
      s->open_min = std::numeric_limits<double>::infinity();
      s->open_max = -std::numeric_limits<double>::infinity();
      if (s->live != nullptr) *s->prev = *s->live;
    }
    sealed_ += skipped;
  }
  for (std::uint64_t i = 0; i < to_seal; ++i) seal_one_window_locked();
  return static_cast<std::size_t>(pending);
}

void TimeSeriesStore::seal_one_window_locked() {
  for (auto& s : series_) s->seal();
  ++sealed_;
}

std::size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return series_.size();
}

TsWindow TimeSeriesStore::aggregate(SeriesRef s, std::size_t n) const {
  TsWindow out;
  const detail::TsSeries* ts = s.s_;
  if (ts == nullptr) return out;
  std::lock_guard<std::mutex> lk(mutex_);
  const std::size_t avail = ts->used;
  const std::size_t take = n == 0 ? avail : std::min(n, avail);
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < take; ++i) {
    const TsWindow& w = ts->back(i);
    out.count += w.count;
    out.sum += w.sum;
    if (w.count > 0) {
      mn = std::min(mn, w.min);
      mx = std::max(mx, w.max);
      out.p50 = std::max(out.p50, w.p50);
      out.p99 = std::max(out.p99, w.p99);
    }
  }
  if (out.count > 0) {
    out.min = mn;
    out.max = mx;
  }
  return out;
}

bool TimeSeriesStore::snapshot(std::string_view name,
                               std::size_t max_windows,
                               SeriesSnapshot& out) const {
  std::lock_guard<std::mutex> lk(mutex_);
  for (const auto& s : series_) {
    if (s->name != name) continue;
    out.name = s->name;
    out.window_us = cfg_.window_us;
    out.histogram = s->live != nullptr;
    const std::size_t take =
        max_windows == 0 ? s->used : std::min(max_windows, s->used);
    out.windows.clear();
    out.windows.reserve(take);
    for (std::size_t i = take; i-- > 0;) {
      out.windows.push_back(s->back(i));
    }
    out.first_index = s->total - take;
    return true;
  }
  return false;
}

std::vector<std::string> TimeSeriesStore::series_names() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& s : series_) names.push_back(s->name);
  return names;
}

std::string TimeSeriesStore::render_json(std::string_view name,
                                         std::size_t max_windows) const {
  SeriesSnapshot snap;
  if (!snapshot(name, max_windows, snap)) {
    std::string out = "{\"error\":\"unknown series\",\"series\":[";
    bool first = true;
    for (const std::string& n : series_names()) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += n;
      out += '"';
    }
    out += "]}";
    return out;
  }
  std::string out = "{\"series\":\"";
  out += snap.name;
  out += '"';
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                ",\"window_us\":%.1f,\"first_index\":%llu,\"windows\":[",
                snap.window_us,
                static_cast<unsigned long long>(snap.first_index));
  out += buf;
  for (std::size_t i = 0; i < snap.windows.size(); ++i) {
    if (i > 0) out += ',';
    append_window_json(out, snap.first_index + i, snap.windows[i],
                       snap.histogram);
  }
  out += "]}";
  return out;
}

std::string TimeSeriesStore::index_json() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"window_us\":%.1f,\"retention\":%zu,\"series\":[",
                cfg_.window_us, cfg_.retention);
  std::string out = buf;
  bool first = true;
  for (const std::string& n : series_names()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += n;
    out += '"';
  }
  out += "]}";
  return out;
}

}  // namespace djstar::support
