#include "djstar/support/histogram.hpp"

#include <algorithm>

#include "djstar/support/assert.hpp"

namespace djstar::support {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  DJSTAR_ASSERT_MSG(hi > lo, "histogram range must be non-empty");
  DJSTAR_ASSERT_MSG(bins >= 1, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge at hi_
  ++counts_[i];
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), std::size_t{0});
  underflow_ = overflow_ = total_ = 0;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i + 1) * width_;
}

std::size_t Histogram::max_count() const noexcept {
  std::size_t m = 0;
  for (auto c : counts_) m = std::max(m, c);
  return m;
}

std::size_t Histogram::cumulative(std::size_t i) const noexcept {
  std::size_t sum = underflow_;
  for (std::size_t k = 0; k <= i && k < counts_.size(); ++k) sum += counts_[k];
  return sum;
}

void Histogram::merge(const Histogram& other) noexcept {
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  if (other.lo_ == lo_ && other.hi_ == hi_ &&
      other.counts_.size() == counts_.size()) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    return;
  }
  // Mismatched layout: re-bin by midpoint. total_ was already added, so
  // classify without going through add().
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    const std::size_t c = other.counts_[i];
    if (c == 0) continue;
    const double mid = 0.5 * (other.bin_lo(i) + other.bin_hi(i));
    if (mid < lo_) {
      underflow_ += c;
    } else if (mid >= hi_) {
      overflow_ += c;
    } else {
      auto k = static_cast<std::size_t>((mid - lo_) / width_);
      if (k >= counts_.size()) k = counts_.size() - 1;
      counts_[k] += c;
    }
  }
}

Histogram Histogram::delta_since(const Histogram& prev) const {
  Histogram out = *this;
  const bool same_layout = prev.lo_ == lo_ && prev.hi_ == hi_ &&
                           prev.counts_.size() == counts_.size();
  // A rollover window (this reset after `prev` was snapshotted) would
  // produce negative bins; detect it on the monotonic totals and fall
  // back to the full current contents.
  if (!same_layout || prev.total_ > total_ || prev.underflow_ > underflow_ ||
      prev.overflow_ > overflow_) {
    return out;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (prev.counts_[i] > counts_[i]) return *this;  // rollover within a bin
    out.counts_[i] = counts_[i] - prev.counts_[i];
  }
  out.underflow_ = underflow_ - prev.underflow_;
  out.overflow_ = overflow_ - prev.overflow_;
  out.total_ = total_ - prev.total_;
  return out;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0) {
      const double frac = (target - cum) / c;
      return bin_lo(i) + frac * width_;
    }
    cum += c;
  }
  return hi_;
}

double Histogram::cdf(double x) const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t below = 0;
  if (x >= lo_) below += underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_hi(i) <= x) below += counts_[i];
  }
  if (x >= hi_) below += overflow_;
  return static_cast<double>(below) / static_cast<double>(total_);
}

}  // namespace djstar::support
