#include "djstar/support/rng.hpp"

#include <cmath>

namespace djstar::support {

double Xoshiro256::normal() noexcept {
  // Marsaglia polar method; loop terminates with probability 1.
  for (;;) {
    const double u = uniform() * 2.0 - 1.0;
    const double v = uniform() * 2.0 - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace djstar::support
