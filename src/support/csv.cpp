#include "djstar/support/csv.hpp"

namespace djstar::support {

CsvWriter& CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << sep_;
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  return *this;
}

std::string CsvWriter::escape(std::string_view cell) const {
  const bool needs_quotes =
      cell.find(sep_) != std::string_view::npos ||
      cell.find('"') != std::string_view::npos ||
      cell.find('\n') != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string data = out_.str();
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(f);
}

}  // namespace djstar::support
