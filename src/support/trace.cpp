#include "djstar/support/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace djstar::support {
namespace {

// trace_event names: "run n12" for node spans, the bare kind otherwise.
void append_span_name(std::string& out, const TraceSpan& s) {
  out += to_string(s.kind);
  if (s.node >= 0) {
    char buf[16];
    std::snprintf(buf, sizeof buf, " n%d", s.node);
    out += buf;
  }
}

// JSON string escaping for names that may come from user-supplied
// session labels: quotes, backslashes, and control characters are
// escaped (not stripped), so the trace stays loadable and the name stays
// recognizable.
void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_event(std::string& out, const TraceSpan& s, std::uint32_t pid,
                  bool& first) {
  if (!first) out += ",\n";
  first = false;
  char buf[224];
  std::string name;
  append_span_name(name, s);
  // Zero-length spans still render in Perfetto with a small epsilon.
  const double dur = std::max(s.duration_us(), 0.001);
  // steal_from renders as an optional args entry so traces written before
  // the field existed (and spans that were not stolen) are byte-identical
  // to the old format.
  char steal[48] = "";
  if (s.steal_from >= 0) {
    std::snprintf(steal, sizeof steal, ",\"args\":{\"steal_from\":%" PRId32 "}",
                  s.steal_from);
  }
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                "\"dur\":%.3f,\"pid\":%" PRIu32 ",\"tid\":%" PRIu32 "%s}",
                name.c_str(), to_string(s.kind), s.begin_us, dur, pid,
                s.thread, steal);
  out += buf;
}

void append_process_meta(std::string& out, const TraceProcess& p,
                         bool& first) {
  if (!first) out += ",\n";
  first = false;
  std::string safe;
  append_json_escaped(safe, p.name);
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                ",\"args\":{\"name\":\"%s\"}}",
                p.pid, safe.c_str());
  out += buf;
}

// Truncation marker: an instant event at ts 0 naming the loss, so a
// Perfetto view of a truncated trace says so instead of silently showing
// fewer spans.
void append_dropped_note(std::string& out, const TraceProcess& p,
                         bool& first) {
  if (!first) out += ",\n";
  first = false;
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"dropped %llu spans (lane full)\",\"ph\":\"i\","
                "\"ts\":0,\"pid\":%" PRIu32 ",\"tid\":0,\"s\":\"p\"}",
                static_cast<unsigned long long>(p.dropped_spans), p.pid);
  out += buf;
}

}  // namespace

const char* to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kRun: return "run";
    case SpanKind::kBusyWait: return "busy-wait";
    case SpanKind::kSleep: return "sleep";
    case SpanKind::kSteal: return "steal";
    case SpanKind::kOverhead: return "overhead";
    case SpanKind::kFused: return "fused";
  }
  return "?";
}

void TraceRecorder::arm(std::uint32_t threads, std::size_t capacity) {
  lanes_.assign(threads, Lane{});
  for (auto& lane : lanes_) {
    lane.capacity = capacity;
    lane.spans.clear();
    lane.spans.reserve(capacity);
  }
  armed_ = true;
}

void TraceRecorder::disarm() noexcept {
  armed_ = false;
  lanes_.clear();
}

void TraceRecorder::record(std::uint32_t thread,
                           const TraceSpan& span) noexcept {
  if (!armed_ || thread >= lanes_.size()) return;
  Lane& lane = lanes_[thread];
  if (lane.spans.size() >= lane.capacity) {
    ++lane.dropped;  // full: drop, but never silently
    return;
  }
  lane.spans.push_back(span);
}

void TraceRecorder::clear_spans() noexcept {
  for (auto& lane : lanes_) {
    lane.spans.clear();  // capacity() is retained; record() stays in budget
    lane.dropped = 0;
  }
}

std::uint64_t TraceRecorder::dropped(std::uint32_t thread) const noexcept {
  return thread < lanes_.size() ? lanes_[thread].dropped : 0;
}

std::uint64_t TraceRecorder::total_dropped() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& lane : lanes_) sum += lane.dropped;
  return sum;
}

std::vector<TraceSpan> TraceRecorder::collect() const {
  std::vector<TraceSpan> all;
  collect_into(all);
  return all;
}

void TraceRecorder::collect_into(std::vector<TraceSpan>& out) const {
  out.clear();
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane.spans.size();
  out.reserve(n);
  for (const auto& lane : lanes_) {
    out.insert(out.end(), lane.spans.begin(), lane.spans.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceSpan& a, const TraceSpan& b) {
    if (a.thread != b.thread) return a.thread < b.thread;
    return a.begin_us < b.begin_us;
  });
}

bool TraceRecorder::write_chrome_trace(const std::string& path,
                                       std::uint32_t pid,
                                       std::string_view process_name) const {
  TraceProcess p;
  p.name = std::string(process_name);
  p.pid = pid;
  p.spans = collect();
  p.dropped_spans = total_dropped();
  const TraceProcess procs[] = {std::move(p)};
  return djstar::support::write_chrome_trace(path, procs);
}

bool write_chrome_trace(const std::string& path,
                        std::span<const TraceProcess> processes) {
  std::string out;
  out.reserve(4096);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceProcess& p : processes) {
    append_process_meta(out, p, first);
    if (p.dropped_spans > 0) append_dropped_note(out, p, first);
  }
  for (const TraceProcess& p : processes) {
    for (const TraceSpan& s : p.spans) {
      append_event(out, s, p.pid, first);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << out;
  return static_cast<bool>(f);
}

}  // namespace djstar::support
