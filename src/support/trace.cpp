#include "djstar/support/trace.hpp"

#include <algorithm>

namespace djstar::support {

const char* to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kRun: return "run";
    case SpanKind::kBusyWait: return "busy-wait";
    case SpanKind::kSleep: return "sleep";
    case SpanKind::kSteal: return "steal";
    case SpanKind::kOverhead: return "overhead";
  }
  return "?";
}

void TraceRecorder::arm(std::uint32_t threads, std::size_t capacity) {
  lanes_.assign(threads, Lane{});
  for (auto& lane : lanes_) {
    lane.capacity = capacity;
    lane.spans.clear();
    lane.spans.reserve(capacity);
  }
  armed_ = true;
}

void TraceRecorder::disarm() noexcept {
  armed_ = false;
  lanes_.clear();
}

void TraceRecorder::record(std::uint32_t thread,
                           const TraceSpan& span) noexcept {
  if (!armed_ || thread >= lanes_.size()) return;
  Lane& lane = lanes_[thread];
  if (lane.spans.size() >= lane.capacity) return;  // full: drop silently
  lane.spans.push_back(span);
}

std::vector<TraceSpan> TraceRecorder::collect() const {
  std::vector<TraceSpan> all;
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane.spans.size();
  all.reserve(n);
  for (const auto& lane : lanes_) {
    all.insert(all.end(), lane.spans.begin(), lane.spans.end());
  }
  std::sort(all.begin(), all.end(), [](const TraceSpan& a, const TraceSpan& b) {
    if (a.thread != b.thread) return a.thread < b.thread;
    return a.begin_us < b.begin_us;
  });
  return all;
}

}  // namespace djstar::support
