#include "djstar/support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace djstar::support {
namespace {

using detail::MetricCell;
using detail::MetricEntry;

/// Fixed-point scale for histogram sums: 2^-10 us resolution keeps the
/// accumulation an integer fetch_add (wait-free) while staying far below
/// timing noise.
constexpr double kSumScale = 1024.0;

const char* kind_name(MetricEntry::Kind k) noexcept {
  switch (k) {
    case MetricEntry::Kind::kCounter: return "counter";
    case MetricEntry::Kind::kGauge: return "gauge";
    case MetricEntry::Kind::kHistogram: return "histogram";
  }
  return "?";
}

void append_double(std::string& out, double v) {
  char buf[48];
  // %.17g round-trips; trim the common integral case for readability.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

unsigned metric_shard_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

std::uint64_t Counter::value() const noexcept {
  if (e_ == nullptr) return 0;
  std::uint64_t sum = 0;
  for (unsigned s = 0; s < kMetricShards; ++s) {
    sum += e_->cells[s].v.load(std::memory_order_relaxed);
  }
  return sum;
}

void HistogramMetric::record(double v) noexcept {
  if (e_ == nullptr) return;
  const auto& bounds = e_->bounds;
  std::size_t bucket = bounds.size();  // +Inf
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (v <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  MetricCell* shard =
      e_->hist.get() + metric_shard_index() * e_->hist_stride;
  shard[bucket].v.fetch_add(1, std::memory_order_relaxed);
  shard[bounds.size() + 1].v.fetch_add(1, std::memory_order_relaxed);  // count
  const auto q = static_cast<std::uint64_t>(
      std::max(0.0, v) * kSumScale + 0.5);
  shard[bounds.size() + 2].v.fetch_add(q, std::memory_order_relaxed);  // sum
}

std::uint64_t HistogramMetric::count() const noexcept {
  if (e_ == nullptr) return 0;
  std::uint64_t sum = 0;
  for (unsigned s = 0; s < kMetricShards; ++s) {
    sum += e_->hist[s * e_->hist_stride + e_->bounds.size() + 1].v.load(
        std::memory_order_relaxed);
  }
  return sum;
}

bool MetricsRegistry::valid_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

detail::MetricEntry* MetricsRegistry::find_or_create(
    std::string_view name, std::string_view help, MetricEntry::Kind kind) {
  if (!valid_name(name)) {
    throw std::invalid_argument("invalid metric name '" + std::string(name) +
                                "'");
  }
  const std::lock_guard<std::mutex> lk(mutex_);
  for (const auto& e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw std::invalid_argument(
            "metric '" + std::string(name) + "' already registered as " +
            kind_name(e->kind) + ", requested " + kind_name(kind));
      }
      return e.get();
    }
  }
  auto e = std::make_unique<MetricEntry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->kind = kind;
  entries_.push_back(std::move(e));
  return entries_.back().get();
}

Counter MetricsRegistry::counter(std::string_view name,
                                 std::string_view help) {
  MetricEntry* e = find_or_create(name, help, MetricEntry::Kind::kCounter);
  if (!e->cells) e->cells = std::make_unique<MetricCell[]>(kMetricShards);
  return Counter(e);
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  return Gauge(find_or_create(name, help, MetricEntry::Kind::kGauge));
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view help,
                             std::string_view labels) {
  MetricEntry* e = find_or_create(name, help, MetricEntry::Kind::kGauge);
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    if (e->labels.empty()) e->labels = std::string(labels);
  }
  return Gauge(e);
}

HistogramMetric MetricsRegistry::histogram(std::string_view name,
                                           std::string_view help,
                                           std::span<const double> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("histogram '" + std::string(name) +
                                "' needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i] > bounds[i - 1])) {
      throw std::invalid_argument("histogram '" + std::string(name) +
                                  "' bounds must be strictly increasing");
    }
  }
  MetricEntry* e = find_or_create(name, help, MetricEntry::Kind::kHistogram);
  if (!e->hist) {
    e->bounds.assign(bounds.begin(), bounds.end());
    e->hist_stride = bounds.size() + 3;  // buckets + Inf + count + sum
    e->hist =
        std::make_unique<MetricCell[]>(kMetricShards * e->hist_stride);
  } else if (e->bounds.size() != bounds.size() ||
             !std::equal(bounds.begin(), bounds.end(), e->bounds.begin())) {
    throw std::invalid_argument("histogram '" + std::string(name) +
                                "' re-registered with different bounds");
  }
  return HistogramMetric(e);
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  MetricsSnapshot snap;
  snap.metrics.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricValue v;
    v.name = e->name;
    v.help = e->help;
    v.kind = e->kind;
    v.labels = e->labels;
    switch (e->kind) {
      case MetricEntry::Kind::kCounter: {
        std::uint64_t sum = 0;
        for (unsigned s = 0; s < kMetricShards; ++s) {
          sum += e->cells[s].v.load(std::memory_order_relaxed);
        }
        v.value = static_cast<double>(sum);
        v.count = sum;
        break;
      }
      case MetricEntry::Kind::kGauge:
        v.value = e->gauge.load(std::memory_order_relaxed);
        break;
      case MetricEntry::Kind::kHistogram: {
        const std::size_t buckets = e->bounds.size() + 1;
        v.bounds = e->bounds;
        v.bucket_counts.assign(buckets, 0);
        std::uint64_t sum_q = 0;
        for (unsigned s = 0; s < kMetricShards; ++s) {
          const MetricCell* shard = e->hist.get() + s * e->hist_stride;
          for (std::size_t b = 0; b < buckets; ++b) {
            v.bucket_counts[b] += shard[b].v.load(std::memory_order_relaxed);
          }
          v.count += shard[buckets].v.load(std::memory_order_relaxed);
          sum_q += shard[buckets + 1].v.load(std::memory_order_relaxed);
        }
        v.sum = static_cast<double>(sum_q) / kSumScale;
        break;
      }
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(256 * snap.metrics.size() + 64);
  for (const MetricValue& m : snap.metrics) {
    out += "# HELP " + m.name + " " + m.help + "\n";
    out += "# TYPE " + m.name + " ";
    out += kind_name(m.kind);
    out += "\n";
    if (m.kind != MetricEntry::Kind::kHistogram) {
      out += m.name;
      if (!m.labels.empty()) out += "{" + m.labels + "}";
      out += " ";
      append_double(out, m.value);
      out += "\n";
      continue;
    }
    // Cumulative le-buckets; the +Inf bucket equals _count by
    // construction (both derive from the same shard cells).
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < m.bucket_counts.size(); ++b) {
      cum += m.bucket_counts[b];
      out += m.name + "_bucket{le=\"";
      if (b < m.bounds.size()) {
        append_double(out, m.bounds[b]);
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      append_double(out, static_cast<double>(cum));
      out += "\n";
    }
    out += m.name + "_sum ";
    append_double(out, m.sum);
    out += "\n";
    out += m.name + "_count ";
    append_double(out, static_cast<double>(m.count));
    out += "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snap) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : snap.metrics) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    append_json_string(out, m.name);
    out += ",\"help\":";
    append_json_string(out, m.help);
    out += ",\"type\":\"";
    out += kind_name(m.kind);
    out += "\"";
    if (!m.labels.empty()) {
      out += ",\"labels\":";
      append_json_string(out, m.labels);
    }
    if (m.kind != MetricEntry::Kind::kHistogram) {
      out += ",\"value\":";
      append_double(out, m.value);
    } else {
      out += ",\"bounds\":[";
      for (std::size_t i = 0; i < m.bounds.size(); ++i) {
        if (i) out += ",";
        append_double(out, m.bounds[i]);
      }
      out += "],\"buckets\":[";
      for (std::size_t i = 0; i < m.bucket_counts.size(); ++i) {
        if (i) out += ",";
        append_double(out, static_cast<double>(m.bucket_counts[i]));
      }
      out += "],\"count\":";
      append_double(out, static_cast<double>(m.count));
      out += ",\"sum\":";
      append_double(out, m.sum);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace djstar::support
