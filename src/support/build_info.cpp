#include "djstar/support/build_info.hpp"

#include <string>

#include "djstar/support/time.hpp"

#ifndef DJSTAR_BUILD_VERSION
#define DJSTAR_BUILD_VERSION "unknown"
#endif
#ifndef DJSTAR_BUILD_GIT_SHA
#define DJSTAR_BUILD_GIT_SHA "unknown"
#endif
#ifndef DJSTAR_BUILD_SANITIZER
#define DJSTAR_BUILD_SANITIZER "none"
#endif

namespace djstar::support {
namespace {

// Static-init timestamp: close enough to process start for an uptime
// gauge, and free of any reliance on main() cooperating.
const Clock::time_point g_process_t0 = now();

}  // namespace

const BuildInfoFields& build_info() noexcept {
  static const BuildInfoFields fields{DJSTAR_BUILD_VERSION,
                                      DJSTAR_BUILD_GIT_SHA,
                                      DJSTAR_BUILD_SANITIZER};
  return fields;
}

double process_uptime_seconds() noexcept {
  return since_us(g_process_t0) * 1e-6;
}

Gauge register_build_info(MetricsRegistry& reg) {
  const BuildInfoFields& f = build_info();
  const std::string labels = std::string("version=\"") + f.version +
                             "\",git_sha=\"" + f.git_sha +
                             "\",sanitizer=\"" + f.sanitizer + "\"";
  Gauge info = reg.gauge("djstar_build_info",
                         "Constant 1; labels identify the running binary",
                         labels);
  info.set(1.0);
  Gauge uptime = reg.gauge("djstar_uptime_seconds",
                           "Wall seconds since process start");
  uptime.set(process_uptime_seconds());
  return uptime;
}

}  // namespace djstar::support
