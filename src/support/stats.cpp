#include "djstar/support/stats.hpp"

#include <algorithm>
#include <vector>

namespace djstar::support {

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= v.size()) return v.back();
  return v[i] + frac * (v[i + 1] - v[i]);
}

Summary Summary::of(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  OnlineStats acc;
  for (double x : v) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = v.front();
  s.max = v.back();
  auto interp = [&](double q) {
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    if (i + 1 >= v.size()) return v.back();
    return v[i] + frac * (v[i + 1] - v[i]);
  };
  s.p50 = interp(0.50);
  s.p90 = interp(0.90);
  s.p99 = interp(0.99);
  s.p999 = interp(0.999);
  return s;
}

}  // namespace djstar::support
