#include "djstar/support/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace djstar::support {
namespace {

std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

void append_title(std::ostringstream& os, const std::string& title) {
  if (!title.empty()) {
    os << title << '\n';
    os << std::string(title.size(), '-') << '\n';
  }
}

}  // namespace

std::string render_histogram(const Histogram& h, std::size_t width,
                             const std::string& title) {
  std::ostringstream os;
  append_title(os, title);
  const std::size_t peak = std::max<std::size_t>(h.max_count(), 1);
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    const std::size_t c = h.count(i);
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(c) * static_cast<double>(width) /
                                              static_cast<double>(peak)));
    char edge[48];
    std::snprintf(edge, sizeof edge, "[%8.3f,%8.3f) ", h.bin_lo(i), h.bin_hi(i));
    os << edge << std::string(bar, '#') << ' ' << c << '\n';
  }
  if (h.underflow()) os << "underflow: " << h.underflow() << '\n';
  if (h.overflow()) os << "overflow:  " << h.overflow() << '\n';
  os << "total: " << h.total() << '\n';
  return os.str();
}

std::string render_cumulative(const Histogram& h, std::size_t width,
                              const std::string& title) {
  std::ostringstream os;
  append_title(os, title);
  const std::size_t total = std::max<std::size_t>(h.total(), 1);
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    const std::size_t c = h.cumulative(i);
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(c) * static_cast<double>(width) /
                                              static_cast<double>(total)));
    char edge[48];
    std::snprintf(edge, sizeof edge, "<=%8.3f ", h.bin_hi(i));
    const double pct = 100.0 * static_cast<double>(c) / static_cast<double>(total);
    os << edge << std::string(bar, '#') << ' ' << c << " (" << fmt(pct, 1)
       << "%)\n";
  }
  os << "total: " << h.total() << '\n';
  return os.str();
}

std::string render_bars(std::span<const Bar> bars, std::size_t width,
                        const std::string& title, const std::string& unit) {
  std::ostringstream os;
  append_title(os, title);
  double peak = 0;
  std::size_t label_w = 0;
  for (const auto& b : bars) {
    peak = std::max(peak, b.value);
    label_w = std::max(label_w, b.label.size());
  }
  if (peak <= 0) peak = 1;
  for (const auto& b : bars) {
    const auto w = static_cast<std::size_t>(
        std::llround(b.value * static_cast<double>(width) / peak));
    os << b.label << std::string(label_w - b.label.size() + 1, ' ') << '|'
       << std::string(w, '#') << ' ' << fmt(b.value) << ' ' << unit << '\n';
  }
  return os.str();
}

std::string render_gantt(std::span<const TraceSpan> spans, std::size_t width,
                         double total_us, const std::string& title) {
  std::ostringstream os;
  append_title(os, title);
  if (spans.empty()) return os.str() + "(no spans)\n";

  std::uint32_t threads = 0;
  double end = total_us;
  for (const auto& s : spans) {
    threads = std::max(threads, s.thread + 1);
    end = std::max(end, s.end_us);
  }
  if (end <= 0) end = 1;
  const double us_per_col = end / static_cast<double>(width);

  for (std::uint32_t t = 0; t < threads; ++t) {
    std::string row(width, ' ');
    for (const auto& s : spans) {
      if (s.thread != t) continue;
      auto c0 = static_cast<std::size_t>(s.begin_us / us_per_col);
      auto c1 = static_cast<std::size_t>(s.end_us / us_per_col);
      c0 = std::min(c0, width - 1);
      c1 = std::min(std::max(c1, c0 + 1), width);
      char fill = '?';
      switch (s.kind) {
        case SpanKind::kRun: fill = '#'; break;
        case SpanKind::kBusyWait: fill = '.'; break;
        case SpanKind::kSleep: fill = ' '; break;
        case SpanKind::kSteal: fill = '~'; break;
        case SpanKind::kOverhead: fill = ':'; break;
        case SpanKind::kFused:
          // Envelope around member kRun spans — drawing it would paint
          // over the members it contains.
          continue;
      }
      for (std::size_t c = c0; c < c1; ++c) row[c] = fill;
      // Stamp the node id at the start of a run span when it fits.
      if (s.kind == SpanKind::kRun && s.node >= 0) {
        const std::string id = std::to_string(s.node);
        if (c0 + id.size() <= c1) {
          for (std::size_t k = 0; k < id.size(); ++k) row[c0 + k] = id[k];
        }
      }
    }
    os << 'T' << t << " |" << row << "|\n";
  }
  os << "    0" << std::string(width > 10 ? width - 8 : 0, ' ')
     << fmt(end, 1) << " us\n";
  os << "    legend: digits/# = run, . = busy-wait, ~ = steal probe, "
        ": = overhead, blank = sleeping\n";
  return os.str();
}

std::string render_profile(std::span<const double> times_us,
                           std::span<const int> active, std::size_t width,
                           const std::string& title) {
  std::ostringstream os;
  append_title(os, title);
  const std::size_t n = std::min(times_us.size(), active.size());
  if (n == 0) return os.str() + "(empty profile)\n";
  int peak = 1;
  for (std::size_t i = 0; i < n; ++i) peak = std::max(peak, active[i]);
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<std::size_t>(std::llround(
        static_cast<double>(active[i]) * static_cast<double>(width) / peak));
    char lbl[40];
    std::snprintf(lbl, sizeof lbl, "%8.1f us ", times_us[i]);
    os << lbl << std::string(w, '#') << ' ' << active[i] << '\n';
  }
  return os.str();
}

}  // namespace djstar::support
