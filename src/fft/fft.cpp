#include "djstar/fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "djstar/support/assert.hpp"

namespace djstar::fft {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

bool is_pow2(std::size_t n) { return n >= 2 && (n & (n - 1)) == 0; }
}  // namespace

Fft::Fft(std::size_t size) : n_(size) {
  DJSTAR_ASSERT_MSG(is_pow2(size), "FFT size must be a power of two >= 2");
  rev_.resize(n_);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n_) ++bits;
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      r = (r << 1) | ((i >> b) & 1);
    }
    rev_[i] = r;
  }
  twiddle_.resize(n_ / 2);
  twiddle_inv_.resize(n_ / 2);
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double a = -kTwoPi * static_cast<double>(k) / static_cast<double>(n_);
    twiddle_[k] = {static_cast<float>(std::cos(a)),
                   static_cast<float>(std::sin(a))};
    twiddle_inv_[k] = std::conj(twiddle_[k]);
  }
}

void Fft::transform(std::span<std::complex<float>> data,
                    bool inverse) const noexcept {
  DJSTAR_ASSERT(data.size() == n_);
  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = rev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  const auto& tw = inverse ? twiddle_inv_ : twiddle_;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n_ / len;
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::complex<float> w = tw[k * step];
        const std::complex<float> u = data[i + k];
        const std::complex<float> v = data[i + k + half] * w;
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
  }
}

void Fft::forward(std::span<std::complex<float>> data) const noexcept {
  transform(data, false);
}

void Fft::inverse(std::span<std::complex<float>> data) const noexcept {
  transform(data, true);
  const float norm = 1.0f / static_cast<float>(n_);
  for (auto& x : data) x *= norm;
}

RealFft::RealFft(std::size_t size) : fft_(size), work_(size) {}

void RealFft::forward(std::span<const float> input,
                      std::span<std::complex<float>> spectrum) noexcept {
  DJSTAR_ASSERT(input.size() == size() && spectrum.size() >= bins());
  for (std::size_t i = 0; i < size(); ++i) work_[i] = {input[i], 0.0f};
  fft_.forward(work_);
  for (std::size_t k = 0; k < bins(); ++k) spectrum[k] = work_[k];
}

void RealFft::inverse(std::span<const std::complex<float>> spectrum,
                      std::span<float> output) noexcept {
  DJSTAR_ASSERT(spectrum.size() >= bins() && output.size() == size());
  const std::size_t n = size();
  work_[0] = spectrum[0];
  for (std::size_t k = 1; k < bins(); ++k) {
    work_[k] = spectrum[k];
    if (k != n - k) work_[n - k] = std::conj(spectrum[k]);
  }
  fft_.inverse(work_);
  for (std::size_t i = 0; i < n; ++i) output[i] = work_[i].real();
}

void make_window(WindowType type, std::span<float> out) noexcept {
  const auto n = static_cast<double>(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double x = static_cast<double>(i) / n;  // periodic window
    double w = 1.0;
    switch (type) {
      case WindowType::kRect: w = 1.0; break;
      case WindowType::kHann: w = 0.5 - 0.5 * std::cos(kTwoPi * x); break;
      case WindowType::kHamming:
        w = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowType::kBlackman:
        w = 0.42 - 0.5 * std::cos(kTwoPi * x) + 0.08 * std::cos(2 * kTwoPi * x);
        break;
    }
    out[i] = static_cast<float>(w);
  }
}

SpectralFilter::SpectralFilter(std::size_t fft_size)
    : fft_(fft_size), hop_(fft_size / 2), window_(fft_size),
      in_fifo_(fft_size, 0.0f), out_fifo_(fft_size + fft_size, 0.0f),
      spectrum_(fft_size / 2 + 1), frame_(fft_size) {
  make_window(WindowType::kHann, window_);
  hi_bin_ = fft_.bins() - 1;
}

void SpectralFilter::set_band(double lo_hz, double hi_hz,
                              double sample_rate) noexcept {
  const double bin_hz = sample_rate / static_cast<double>(fft_.size());
  lo_bin_ = static_cast<std::size_t>(std::max(0.0, lo_hz / bin_hz));
  hi_bin_ = static_cast<std::size_t>(
      std::min(static_cast<double>(fft_.bins() - 1), hi_hz / bin_hz));
}

void SpectralFilter::reset() noexcept {
  std::fill(in_fifo_.begin(), in_fifo_.end(), 0.0f);
  std::fill(out_fifo_.begin(), out_fifo_.end(), 0.0f);
  fifo_fill_ = 0;
}

void SpectralFilter::process_frame() noexcept {
  const std::size_t n = fft_.size();
  // Analysis: window the last `n` input samples.
  for (std::size_t i = 0; i < n; ++i) frame_[i] = in_fifo_[i] * window_[i];
  fft_.forward(frame_, spectrum_);
  for (std::size_t k = 0; k < fft_.bins(); ++k) {
    if (k < lo_bin_ || k > hi_bin_) spectrum_[k] = {0.0f, 0.0f};
  }
  fft_.inverse(spectrum_, frame_);
  // Overlap-add into the output FIFO (second window for COLA smoothness
  // is skipped: 50% Hann alone satisfies COLA).
  for (std::size_t i = 0; i < n; ++i) out_fifo_[i] += frame_[i];
}

void SpectralFilter::process(std::span<float> io) noexcept {
  const std::size_t n = fft_.size();
  for (auto& s : io) {
    in_fifo_[n - hop_ + fifo_fill_] = s;
    s = out_fifo_[fifo_fill_];
    ++fifo_fill_;
    if (fifo_fill_ == hop_) {
      fifo_fill_ = 0;
      process_frame();
      // Slide FIFOs by one hop.
      for (std::size_t i = 0; i < n - hop_; ++i) {
        in_fifo_[i] = in_fifo_[i + hop_];
      }
      for (std::size_t i = 0; i + hop_ < out_fifo_.size(); ++i) {
        out_fifo_[i] = out_fifo_[i + hop_];
      }
      std::fill(out_fifo_.end() - static_cast<std::ptrdiff_t>(hop_),
                out_fifo_.end(), 0.0f);
    }
  }
}

}  // namespace djstar::fft
