#include "djstar/net/frame.hpp"

#include <bit>
#include <cstring>

namespace djstar::net {
namespace {

// ---- little-endian primitives ---------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

/// Bounds-checked sequential reader. Any overrun latches `ok = false`
/// and every later read returns zero, so decoders can parse the whole
/// layout and do a single validity check at the end.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> d) noexcept : d_(d) {}

  std::uint8_t u8() noexcept {
    if (!take(1)) return 0;
    return d_[pos_ - 1];
  }
  std::uint16_t u16() noexcept {
    if (!take(2)) return 0;
    return static_cast<std::uint16_t>(d_[pos_ - 2] |
                                      (std::uint16_t(d_[pos_ - 1]) << 8));
  }
  std::uint32_t u32() noexcept {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(d_[pos_ - 4 + i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() noexcept {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(d_[pos_ - 8 + i]) << (8 * i);
    return v;
  }
  double f64() noexcept { return std::bit_cast<double>(u64()); }
  float f32() noexcept { return std::bit_cast<float>(u32()); }

  std::span<const std::uint8_t> bytes(std::size_t n) noexcept {
    if (!take(n)) return {};
    return d_.subspan(pos_ - n, n);
  }

  bool ok() const noexcept { return ok_; }
  /// True when parsing succeeded AND consumed the payload exactly.
  bool done() const noexcept { return ok_ && pos_ == d_.size(); }
  std::size_t remaining() const noexcept { return d_.size() - pos_; }

 private:
  bool take(std::size_t n) noexcept {
    if (!ok_ || d_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> d_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

Frame wrap(FrameType type, std::vector<std::uint8_t> payload) {
  Frame f;
  f.type = type;
  f.payload = std::move(payload);
  return f;
}

}  // namespace

bool valid_frame_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(FrameType::kOpenSession) &&
         t <= static_cast<std::uint8_t>(FrameType::kError);
}

const char* to_string(FrameType t) noexcept {
  switch (t) {
    case FrameType::kOpenSession: return "OPEN_SESSION";
    case FrameType::kCloseSession: return "CLOSE_SESSION";
    case FrameType::kStats: return "STATS";
    case FrameType::kCycleAudio: return "CYCLE_AUDIO";
    case FrameType::kError: return "ERROR";
  }
  return "?";
}

// ---- OpenSessionRequest ----------------------------------------------------

void encode(const OpenSessionRequest& v, std::vector<std::uint8_t>& out) {
  put_u8(out, v.qos);
  put_u8(out, v.subscribe ? 1 : 0);
  put_u8(out, v.deterministic ? 1 : 0);
  put_u8(out, 0);  // pad
  put_f64(out, v.deadline_us);
  put_u32(out, v.width);
  put_u32(out, v.depth);
  put_f64(out, v.node_cost_us);
  put_f64(out, v.jitter);
  put_f64(out, v.sheddable_fraction);
  put_f64(out, v.cost_estimate_us);
  put_u64(out, v.seed);
  put_u16(out, static_cast<std::uint16_t>(v.name.size()));
  out.insert(out.end(), v.name.begin(), v.name.end());
}

std::optional<OpenSessionRequest> decode_open_request(
    std::span<const std::uint8_t> p) {
  Reader r(p);
  OpenSessionRequest v;
  v.qos = r.u8();
  const std::uint8_t subscribe = r.u8();
  const std::uint8_t deterministic = r.u8();
  const std::uint8_t pad = r.u8();
  v.deadline_us = r.f64();
  v.width = r.u32();
  v.depth = r.u32();
  v.node_cost_us = r.f64();
  v.jitter = r.f64();
  v.sheddable_fraction = r.f64();
  v.cost_estimate_us = r.f64();
  v.seed = r.u64();
  const std::uint16_t name_len = r.u16();
  if (!r.ok() || name_len > kMaxNameLen || r.remaining() != name_len) {
    return std::nullopt;
  }
  const auto name = r.bytes(name_len);
  if (!r.done() || subscribe > 1 || deterministic > 1 || pad != 0) {
    return std::nullopt;
  }
  v.subscribe = subscribe != 0;
  v.deterministic = deterministic != 0;
  v.name.assign(name.begin(), name.end());
  return v;
}

// ---- OpenSessionReply ------------------------------------------------------

void encode(const OpenSessionReply& v, std::vector<std::uint8_t>& out) {
  put_u64(out, v.id);
  put_u8(out, v.state);
}

std::optional<OpenSessionReply> decode_open_reply(
    std::span<const std::uint8_t> p) {
  Reader r(p);
  OpenSessionReply v;
  v.id = r.u64();
  v.state = r.u8();
  if (!r.done()) return std::nullopt;
  return v;
}

// ---- CloseSessionMsg -------------------------------------------------------

void encode(const CloseSessionMsg& v, std::vector<std::uint8_t>& out) {
  put_u64(out, v.id);
}

std::optional<CloseSessionMsg> decode_close(std::span<const std::uint8_t> p) {
  Reader r(p);
  CloseSessionMsg v;
  v.id = r.u64();
  if (!r.done()) return std::nullopt;
  return v;
}

// ---- WireStats -------------------------------------------------------------

void encode(const WireStats& v, std::vector<std::uint8_t>& out) {
  put_u64(out, v.ticks);
  put_u64(out, v.submitted);
  put_u64(out, v.admitted);
  put_u64(out, v.rejected);
  put_u64(out, v.shed);
  put_u64(out, v.closed);
  put_u64(out, v.cycles);
  put_u64(out, v.misses);
  put_u64(out, v.active);
  put_u64(out, v.queued);
}

std::optional<WireStats> decode_stats(std::span<const std::uint8_t> p) {
  Reader r(p);
  WireStats v;
  v.ticks = r.u64();
  v.submitted = r.u64();
  v.admitted = r.u64();
  v.rejected = r.u64();
  v.shed = r.u64();
  v.closed = r.u64();
  v.cycles = r.u64();
  v.misses = r.u64();
  v.active = r.u64();
  v.queued = r.u64();
  if (!r.done()) return std::nullopt;
  return v;
}

// ---- WireError -------------------------------------------------------------

void encode(const WireError& v, std::vector<std::uint8_t>& out) {
  put_u16(out, v.code);
  put_u16(out, static_cast<std::uint16_t>(v.message.size()));
  out.insert(out.end(), v.message.begin(), v.message.end());
}

std::optional<WireError> decode_error(std::span<const std::uint8_t> p) {
  Reader r(p);
  WireError v;
  v.code = r.u16();
  const std::uint16_t len = r.u16();
  if (!r.ok() || r.remaining() != len) return std::nullopt;
  const auto msg = r.bytes(len);
  if (!r.done()) return std::nullopt;
  v.message.assign(msg.begin(), msg.end());
  return v;
}

// ---- CycleAudio ------------------------------------------------------------

void encode(const CycleAudioHeader& h, std::span<const float> samples,
            std::vector<std::uint8_t>& out) {
  put_u64(out, h.session);
  put_u64(out, h.tick);
  put_u32(out, h.channels);
  put_u32(out, h.frames);
  out.reserve(out.size() + samples.size() * 4);
  for (float s : samples) put_f32(out, s);
}

std::optional<CycleAudioHeader> decode_audio(std::span<const std::uint8_t> p,
                                             std::vector<float>& samples) {
  Reader r(p);
  CycleAudioHeader h;
  h.session = r.u64();
  h.tick = r.u64();
  h.channels = r.u32();
  h.frames = r.u32();
  if (!r.ok() || h.channels == 0 || h.channels > kMaxAudioChannels ||
      h.frames == 0 || h.frames > kMaxAudioFrames) {
    return std::nullopt;
  }
  const std::size_t n =
      static_cast<std::size_t>(h.channels) * static_cast<std::size_t>(h.frames);
  if (r.remaining() != n * 4) return std::nullopt;
  samples.resize(n);
  for (std::size_t i = 0; i < n; ++i) samples[i] = r.f32();
  if (!r.done()) return std::nullopt;
  return h;
}

// ---- frame builders --------------------------------------------------------

Frame make_frame(const OpenSessionRequest& v) {
  std::vector<std::uint8_t> p;
  encode(v, p);
  return wrap(FrameType::kOpenSession, std::move(p));
}

Frame make_frame(const OpenSessionReply& v) {
  std::vector<std::uint8_t> p;
  encode(v, p);
  return wrap(FrameType::kOpenSession, std::move(p));
}

Frame make_frame(FrameType type, const CloseSessionMsg& v) {
  std::vector<std::uint8_t> p;
  encode(v, p);
  return wrap(type, std::move(p));
}

Frame make_frame(const WireStats& v) {
  std::vector<std::uint8_t> p;
  encode(v, p);
  return wrap(FrameType::kStats, std::move(p));
}

Frame make_frame(const WireError& v) {
  std::vector<std::uint8_t> p;
  encode(v, p);
  return wrap(FrameType::kError, std::move(p));
}

Frame make_stats_request() { return wrap(FrameType::kStats, {}); }

}  // namespace djstar::net
