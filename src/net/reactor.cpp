#include "djstar/net/reactor.hpp"

#include <cerrno>
#include <stdexcept>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "djstar/net/io.hpp"
#include "djstar/support/assert.hpp"

namespace djstar::net {

Reactor::Reactor() {
  ignore_sigpipe();
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw std::runtime_error("epoll_create1 failed");
  wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakefd_ < 0) {
    ::close(epfd_);
    throw std::runtime_error("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakefd_;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) != 0) {
    ::close(wakefd_);
    ::close(epfd_);
    throw std::runtime_error("epoll_ctl(wakefd) failed");
  }
}

Reactor::~Reactor() {
  stop();
  ::close(wakefd_);
  ::close(epfd_);
}

void Reactor::start() {
  if (running_.exchange(true)) return;
  stop_.store(false);
  thread_ = std::thread([this] { loop(); });
}

void Reactor::stop() {
  if (!running_.load()) return;
  stop_.store(true);
  wake();
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void Reactor::add(int fd, std::uint32_t events, Callback cb) {
  DJSTAR_ASSERT(!running_.load() || on_loop_thread());
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error("epoll_ctl(ADD) failed");
  }
  handlers_[fd] = std::make_shared<Callback>(std::move(cb));
}

void Reactor::modify(int fd, std::uint32_t events) {
  DJSTAR_ASSERT(!running_.load() || on_loop_thread());
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw std::runtime_error("epoll_ctl(MOD) failed");
  }
}

void Reactor::remove(int fd) {
  DJSTAR_ASSERT(!running_.load() || on_loop_thread());
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);  // may already be gone
  handlers_.erase(fd);
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void Reactor::wake() noexcept {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the return value only
  // matters for diagnostics.
  [[maybe_unused]] const ssize_t r =
      ::write(wakefd_, &one, sizeof(one));
}

void Reactor::drain_posted() {
  std::vector<std::function<void()>> fns;
  {
    std::lock_guard<std::mutex> lk(post_mutex_);
    fns.swap(posted_);
  }
  for (auto& fn : fns) fn();
}

void Reactor::loop() {
  loop_tid_.store(std::this_thread::get_id(), std::memory_order_release);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epfd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself broke; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      if (stop_.load(std::memory_order_relaxed)) return;
      const int fd = events[i].data.fd;
      if (fd == wakefd_) {
        std::uint64_t drained = 0;
        while (::read(wakefd_, &drained, sizeof(drained)) > 0) {
        }
        drain_posted();
        continue;
      }
      // Look up at dispatch time: an earlier handler in this batch may
      // have removed the fd. The shared_ptr copy keeps the callback
      // alive even if the handler removes itself.
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      const std::shared_ptr<Callback> cb = it->second;
      (*cb)(events[i].events);
    }
  }
}

}  // namespace djstar::net
