#include "djstar/net/codec.hpp"

#include <algorithm>
#include <cstring>

namespace djstar::net {

void encode_frame(const Frame& f, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + kHeaderSize + f.payload.size());
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(f.type));
  out.push_back(0);  // reserved
  out.push_back(0);
  const auto len = static_cast<std::uint32_t>(f.payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.insert(out.end(), f.payload.begin(), f.payload.end());
}

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> out;
  encode_frame(f, out);
  return out;
}

Decoder::Decoder(std::size_t max_payload)
    : max_payload_(std::min(max_payload, kMaxPayload)) {}

void Decoder::fail(const std::string& why) {
  failed_ = true;
  error_ = why;
  buf_.clear();
  pos_ = 0;
}

void Decoder::feed(const std::uint8_t* data, std::size_t n) {
  if (failed_ || n == 0) return;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection doesn't grow its buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> Decoder::next() {
  if (failed_) return std::nullopt;
  if (buf_.size() - pos_ < kHeaderSize) return std::nullopt;

  const std::uint8_t* h = buf_.data() + pos_;
  if (h[0] != kProtocolVersion) {
    fail("bad protocol version byte " + std::to_string(int(h[0])));
    return std::nullopt;
  }
  if (!valid_frame_type(h[1])) {
    fail("unknown frame type " + std::to_string(int(h[1])));
    return std::nullopt;
  }
  if (h[2] != 0 || h[3] != 0) {
    fail("nonzero reserved header bytes");
    return std::nullopt;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t(h[4 + i]) << (8 * i);
  if (len > max_payload_) {
    fail("payload length " + std::to_string(len) + " exceeds cap " +
         std::to_string(max_payload_));
    return std::nullopt;
  }
  if (buf_.size() - pos_ < kHeaderSize + len) return std::nullopt;  // partial

  Frame f;
  f.type = static_cast<FrameType>(h[1]);
  f.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kHeaderSize),
                   buf_.begin() +
                       static_cast<std::ptrdiff_t>(pos_ + kHeaderSize + len));
  pos_ += kHeaderSize + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return f;
}

}  // namespace djstar::net
