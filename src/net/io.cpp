#include "djstar/net/io.hpp"

#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace djstar::net {
namespace {

IoHooks g_hooks{};

ssize_t raw_read(int fd, void* buf, std::size_t n) noexcept {
  if (g_hooks.read != nullptr) return g_hooks.read(fd, buf, n);
  return ::read(fd, buf, n);
}

ssize_t raw_write(int fd, const void* buf, std::size_t n) noexcept {
  if (g_hooks.write != nullptr) return g_hooks.write(fd, buf, n);
  const ssize_t r = ::send(fd, buf, n, MSG_NOSIGNAL);
  if (r >= 0 || errno != ENOTSOCK) return r;
  return ::write(fd, buf, n);  // pipes and files in tests
}

int raw_accept(int listen_fd) noexcept {
  if (g_hooks.accept != nullptr) return g_hooks.accept(listen_fd);
  return ::accept(listen_fd, nullptr, nullptr);
}

}  // namespace

IoHooks set_io_hooks(IoHooks hooks) noexcept {
  const IoHooks prev = g_hooks;
  g_hooks = hooks;
  return prev;
}

void ignore_sigpipe() noexcept { ::signal(SIGPIPE, SIG_IGN); }

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_nodelay(int fd) noexcept {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

ssize_t read_some(int fd, void* buf, std::size_t cap) noexcept {
  for (;;) {
    const ssize_t r = raw_read(fd, buf, cap);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return kIoError;
  }
}

ssize_t write_some(int fd, const void* buf, std::size_t n) noexcept {
  for (;;) {
    const ssize_t r = raw_write(fd, buf, n);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return kIoError;
  }
}

int accept_conn(int listen_fd) noexcept {
  for (;;) {
    const int fd = raw_accept(listen_fd);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return static_cast<int>(kWouldBlock);
    }
    return static_cast<int>(kIoError);
  }
}

bool read_full(int fd, void* buf, std::size_t n) noexcept {
  auto* p = static_cast<unsigned char*>(buf);
  while (n > 0) {
    const ssize_t r = read_some(fd, p, n);
    if (r <= 0) return false;  // EOF, would-block (misuse), or error
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(buf);
  while (n > 0) {
    const ssize_t r = write_some(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace djstar::net
