#include "djstar/net/client.hpp"

#include <arpa/inet.h>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "djstar/net/io.hpp"

namespace djstar::net {
namespace {

constexpr std::size_t kMaxPending = 1024;

int connect_loopback(std::uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

Client::~Client() { close(); }

bool Client::connect(std::uint16_t port, int timeout_ms) {
  close();
  ignore_sigpipe();
  fd_ = connect_loopback(port, timeout_ms);
  return fd_ >= 0;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = Decoder();
  pending_.clear();
}

bool Client::send_frame(const Frame& f) {
  if (fd_ < 0) return false;
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  return write_full(fd_, bytes.data(), bytes.size());
}

std::optional<Frame> Client::read_wire() {
  if (fd_ < 0) return std::nullopt;
  std::uint8_t buf[4096];
  for (;;) {
    if (auto f = decoder_.next()) return f;
    if (decoder_.failed()) return std::nullopt;
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r <= 0) return std::nullopt;  // EOF, timeout, or error
    decoder_.feed(buf, static_cast<std::size_t>(r));
  }
}

std::optional<Frame> Client::read_frame() {
  if (!pending_.empty()) {
    Frame f = std::move(pending_.front());
    pending_.pop_front();
    return f;
  }
  return read_wire();
}

std::optional<Frame> Client::wait_for(FrameType want) {
  for (;;) {
    auto f = read_wire();
    if (!f) return std::nullopt;
    if (f->type == want) return f;
    if (f->type == FrameType::kError) {
      last_error_ = decode_error(f->payload);
      return std::nullopt;
    }
    // Pushed audio racing a control reply: keep it for read_audio().
    if (pending_.size() >= kMaxPending) pending_.pop_front();
    pending_.push_back(std::move(*f));
  }
}

std::optional<OpenSessionReply> Client::open_session(
    const OpenSessionRequest& req) {
  if (!send_frame(make_frame(req))) return std::nullopt;
  const auto f = wait_for(FrameType::kOpenSession);
  if (!f) return std::nullopt;
  return decode_open_reply(f->payload);
}

bool Client::close_session(std::uint64_t id) {
  CloseSessionMsg msg;
  msg.id = id;
  if (!send_frame(make_frame(FrameType::kCloseSession, msg))) return false;
  const auto f = wait_for(FrameType::kCloseSession);
  if (!f) return false;
  const auto echo = decode_close(f->payload);
  return echo && echo->id == id;
}

std::optional<WireStats> Client::stats() {
  if (!send_frame(make_stats_request())) return std::nullopt;
  const auto f = wait_for(FrameType::kStats);
  if (!f) return std::nullopt;
  return decode_stats(f->payload);
}

std::optional<CycleAudio> Client::read_audio() {
  for (;;) {
    auto f = read_frame();
    if (!f) return std::nullopt;
    if (f->type == FrameType::kError) {
      last_error_ = decode_error(f->payload);
      return std::nullopt;
    }
    if (f->type != FrameType::kCycleAudio) continue;
    CycleAudio out;
    const auto h = decode_audio(f->payload, out.samples);
    if (!h) return std::nullopt;
    out.header = *h;
    return out;
  }
}

std::optional<std::string> http_get(std::uint16_t port,
                                    const std::string& path,
                                    int timeout_ms) {
  const int fd = connect_loopback(port, timeout_ms);
  if (fd < 0) return std::nullopt;
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!write_full(fd, req.data(), req.size())) {
    ::close(fd);
    return std::nullopt;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) break;
    response.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  if (response.empty()) return std::nullopt;
  return response;
}

}  // namespace djstar::net
