#include "djstar/net/server.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <netinet/in.h>
#include <stdexcept>
#include <string>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "djstar/net/io.hpp"
#include "djstar/support/time.hpp"

namespace djstar::net {
namespace {

constexpr std::size_t kReadChunk = 4096;
constexpr std::size_t kMaxHttpRequest = 4096;

bool http_request_complete(const std::vector<std::uint8_t>& buf) {
  const std::string_view v(reinterpret_cast<const char*>(buf.data()),
                           buf.size());
  return v.find("\r\n\r\n") != std::string_view::npos ||
         v.find("\n\n") != std::string_view::npos;
}

// Extract a query parameter's value from an HTTP request line
// ("GET /path?a=1&b=2 HTTP/1.0"). Empty view when absent. No
// percent-decoding — series names are metric-style identifiers.
std::string_view query_param(std::string_view line, std::string_view key) {
  const std::size_t q = line.find('?');
  if (q == std::string_view::npos) return {};
  std::size_t end = line.find(' ', q);
  if (end == std::string_view::npos) end = line.size();
  std::string_view query = line.substr(q + 1, end - q - 1);
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return {};
}

// GET /debug index: a static route table so the debug surface is
// discoverable without reading the source.
constexpr const char* kDebugIndexJson =
    "{\"endpoints\":["
    "{\"path\":\"/metrics\",\"description\":"
    "\"Prometheus text exposition of the fleet metrics\"},"
    "{\"path\":\"/debug\",\"description\":\"this endpoint index\"},"
    "{\"path\":\"/debug/attribution\",\"description\":"
    "\"per-session critical-path decomposition and blame report\"},"
    "{\"path\":\"/debug/profile\",\"description\":"
    "\"profiler mode, hw counters, per-session windowed latency\"},"
    "{\"path\":\"/debug/slo\",\"description\":"
    "\"per-scope SLO alert state, error budget, and burn rates\"},"
    "{\"path\":\"/debug/timeseries?series=<name>&window=<n>\","
    "\"description\":"
    "\"sealed tsdb windows for one series (no params: series index)\"}"
    "]}";

}  // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)), host_(cfg_.host) {
  if (const auto env = NetConfig::from_env()) cfg_.net = *env;
  ring_cap_bytes_ = static_cast<std::size_t>(cfg_.net.send_ring_kb) * 1024;

  // djstar_net_* families live in the host's registry so one /metrics
  // scrape covers the fleet and its network edge.
  support::MetricsRegistry& reg = host_.metrics();
  m_connections_ = reg.counter("djstar_net_connections_total",
                               "TCP connections accepted");
  m_disconnects_ = reg.counter("djstar_net_disconnects_total",
                               "Connections closed (either side)");
  m_frames_rx_ =
      reg.counter("djstar_net_frames_rx_total", "Protocol frames received");
  m_frames_tx_ =
      reg.counter("djstar_net_frames_tx_total", "Protocol frames sent");
  m_bytes_rx_ = reg.counter("djstar_net_bytes_rx_total",
                            "Bytes received from clients");
  m_bytes_tx_ = reg.counter("djstar_net_bytes_tx_total",
                            "Bytes written to clients");
  m_audio_frames_ =
      reg.counter("djstar_net_audio_frames_total",
                  "Cycle-audio frames fanned out to subscribers");
  m_audio_drops_ =
      reg.counter("djstar_net_audio_drops_total",
                  "Audio frames shed drop-oldest from slow-consumer rings");
  m_backpressure_trips_ = reg.counter(
      "djstar_net_backpressure_trips_total",
      "Realtime subscribers disconnected for falling behind");
  m_protocol_errors_ = reg.counter("djstar_net_protocol_errors_total",
                                   "Connections dropped on malformed frames");
  m_http_requests_ =
      reg.counter("djstar_net_http_requests_total", "HTTP /metrics scrapes");
  m_debug_requests_ = reg.counter("djstar_net_debug_requests_total",
                                  "HTTP /debug endpoint requests");
  g_connections_ =
      reg.gauge("djstar_net_connections", "Open client connections");
  static constexpr double kFlushBounds[] = {10,   25,   50,   100,  250,
                                            500,  1000, 2500, 5000, 25000};
  for (unsigned q = 0; q < serve::kQoSCount; ++q) {
    h_net_flush_[q] = reg.histogram(
        std::string("djstar_stage_net_flush_us_") +
            to_string(static_cast<serve::QoS>(q)),
        "Ring enqueue to final socket write (us)", kFlushBounds);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(cfg_.net.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("bind(port " + std::to_string(cfg_.net.port) +
                             ") failed: " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  reactor_.add(listen_fd_, EPOLLIN, [this](std::uint32_t ev) { on_accept(ev); });
}

Server::~Server() {
  stop();
  ::close(listen_fd_);
}

void Server::start() {
  if (started_.exchange(true)) return;
  engine_stop_.store(false);
  {
    std::lock_guard<std::mutex> lk(done_mutex_);
    engine_done_ = false;
  }
  reactor_.start();
  engine_ = std::thread([this] { engine_loop(); });
}

void Server::stop() {
  if (!started_.load()) return;
  engine_stop_.store(true);
  if (engine_.joinable()) engine_.join();
  // Disconnect every client ON the reactor thread (socket ownership
  // rule), and only then stop the loop.
  std::promise<void> drained;
  auto drained_f = drained.get_future();
  reactor_.post([this, &drained] {
    std::vector<std::shared_ptr<Connection>> all;
    {
      std::lock_guard<std::mutex> lk(conns_mutex_);
      all.reserve(conns_.size());
      for (auto& [fd, c] : conns_) all.push_back(c);
    }
    for (auto& c : all) close_conn(c, true);
    drained.set_value();
  });
  drained_f.wait();
  reactor_.stop();
  started_.store(false);
}

WireStats Server::wire_stats() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return wire_stats_;
}

double Server::wait_engine_done() {
  std::unique_lock<std::mutex> lk(done_mutex_);
  done_cv_.wait(lk, [this] { return engine_done_; });
  return served_elapsed_us_;
}

// ---- engine thread ---------------------------------------------------------

void Server::engine_loop() {
  using namespace std::chrono_literals;
  auto t0 = support::now();
  bool counting = false;
  while (!engine_stop_.load(std::memory_order_relaxed)) {
    host_.run_fleet_cycle();
    after_tick();
    if (host_.active_sessions() > 0) {
      if (!counting) {
        counting = true;
        t0 = support::now();
      }
      const std::uint64_t served =
          served_ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (cfg_.max_ticks != 0 && served >= cfg_.max_ticks) break;
    } else {
      // Idle host: nothing active, so don't spin a core on empty ticks.
      std::this_thread::sleep_for(200us);
    }
  }
  if (counting) served_elapsed_us_ = support::since_us(t0);
  refresh_wire_stats();
  {
    std::lock_guard<std::mutex> lk(done_mutex_);
    engine_done_ = true;
  }
  done_cv_.notify_all();
}

void Server::after_tick() {
  last_tick_.store(host_.ticks(), std::memory_order_relaxed);
  publish_admission_verdicts();
  fan_out_audio();
  if (cfg_.stats_refresh_ticks != 0 &&
      host_.ticks() % cfg_.stats_refresh_ticks == 0) {
    refresh_wire_stats();
  }
  // Kick the reactor to drain whatever the two steps above enqueued.
  // Cheap check first: no connections, no kick.
  bool any = false;
  {
    std::lock_guard<std::mutex> lk(conns_mutex_);
    for (auto& [fd, c] : conns_) {
      std::lock_guard<std::mutex> cl(c->mutex);
      if (!c->ring.empty() || c->doomed) {
        any = true;
        break;
      }
    }
  }
  if (any && !flush_kick_pending_.exchange(true, std::memory_order_acq_rel)) {
    // Coalesced: while one kick is in flight further ticks just pile
    // frames into the rings; the reactor drains everything in one pass.
    reactor_.post([this] {
      flush_kick_pending_.store(false, std::memory_order_release);
      flush_pending();
    });
  }
}

void Server::publish_admission_verdicts() {
  const std::vector<serve::AdmissionRecord>& log = host_.admission_log();
  for (; admission_seen_ < log.size(); ++admission_seen_) {
    const serve::AdmissionRecord& r = log[admission_seen_];
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    for (WireSession& ws : sessions_) {
      if (ws.id != r.id || ws.acked) continue;
      // First verdict only: a parked session that is admitted later
      // announces itself implicitly when its audio starts flowing.
      ws.acked = true;
      OpenSessionReply reply;
      reply.id = ws.id;
      reply.state = static_cast<std::uint8_t>(host_.session_state(ws.id));
      if (const auto c = ws.owner.lock()) {
        push_item(*c, encode_frame(make_frame(reply)), false, ws.qos);
      }
      break;
    }
  }
}

void Server::fan_out_audio() {
  std::lock_guard<std::mutex> lk(sessions_mutex_);
  for (WireSession& ws : sessions_) {
    if (!ws.subscribe || ws.output == nullptr) continue;
    const serve::Session* s = host_.session(ws.id);
    if (s == nullptr) continue;  // queued, parked, shed, or closing
    const std::uint64_t cycles = s->counters().cycles;
    if (cycles == ws.cycles_seen) continue;  // not due this tick
    ws.cycles_seen = cycles;
    const auto c = ws.owner.lock();
    if (c == nullptr) continue;

    const audio::AudioBuffer& out = *ws.output;
    fan_buf_.clear();
    for (std::size_t ch = 0; ch < out.channels(); ++ch) {
      const auto span = out.channel(ch);
      fan_buf_.insert(fan_buf_.end(), span.begin(), span.end());
    }
    CycleAudioHeader h;
    h.session = ws.id;
    h.tick = host_.ticks() - 1;  // the tick that just completed
    h.channels = static_cast<std::uint32_t>(out.channels());
    h.frames = static_cast<std::uint32_t>(out.frames());
    Frame f;
    f.type = FrameType::kCycleAudio;
    encode(h, fan_buf_, f.payload);
    m_audio_frames_.inc();
    push_item(*c, encode_frame(f), true, ws.qos);
  }
}

void Server::refresh_wire_stats() {
  const serve::FleetStats fs = host_.stats();
  WireStats w;
  w.ticks = fs.ticks;
  w.submitted = fs.submitted;
  w.admitted = fs.admitted;
  w.rejected = fs.rejected;
  w.shed = fs.shed;
  w.closed = fs.closed;
  w.cycles = fs.cycles;
  w.misses = fs.misses;
  w.active = host_.active_sessions();
  w.queued = host_.queued_sessions();
  std::lock_guard<std::mutex> lk(stats_mutex_);
  wire_stats_ = w;
}

// ---- ring (either thread) --------------------------------------------------

void Server::doom_locked(Connection& c, ErrorCode code, const char* message) {
  if (c.doomed) return;
  // Clear sheddable audio so the ERROR fits and goes out first; never
  // touch the front item mid-write.
  for (auto it = c.ring.begin(); it != c.ring.end();) {
    const bool front_mid_write = it == c.ring.begin() && c.front_off > 0;
    if (it->droppable && !front_mid_write) {
      c.ring_bytes -= it->bytes.size();
      it = c.ring.erase(it);
    } else {
      ++it;
    }
  }
  WireError e;
  e.code = static_cast<std::uint16_t>(code);
  e.message = message;
  std::vector<std::uint8_t> bytes = encode_frame(make_frame(e));
  c.ring_bytes += bytes.size();
  c.ring.push_back({std::move(bytes), false});
  c.doomed = true;
}

void Server::push_item(Connection& c, std::vector<std::uint8_t> bytes,
                       bool droppable, serve::QoS qos) {
  std::lock_guard<std::mutex> lk(c.mutex);
  if (c.doomed) return;
  const std::size_t need = bytes.size();
  if (c.ring_bytes + need > ring_cap_bytes_) {
    if (droppable && qos == serve::QoS::kRealtime) {
      // A realtime subscriber that cannot keep up gets no stale audio:
      // disconnect it with an explicit reason instead.
      m_backpressure_trips_.inc();
      host_.journal().push(support::EventKind::kNetBackpressure,
                           last_tick_.load(std::memory_order_relaxed), c.fd);
      doom_locked(c, ErrorCode::kBackpressure,
                  "realtime subscriber fell behind; disconnecting");
      return;
    }
    // Drop-oldest: shed stale audio until the new frame fits.
    std::size_t dropped = 0;
    for (auto it = c.ring.begin();
         it != c.ring.end() && c.ring_bytes + need > ring_cap_bytes_;) {
      const bool front_mid_write = it == c.ring.begin() && c.front_off > 0;
      if (it->droppable && !front_mid_write) {
        c.ring_bytes -= it->bytes.size();
        it = c.ring.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    if (dropped > 0) {
      m_audio_drops_.inc(dropped);
      host_.journal().push(support::EventKind::kNetAudioDrop,
                           last_tick_.load(std::memory_order_relaxed), c.fd,
                           static_cast<std::int64_t>(dropped));
    }
    if (c.ring_bytes + need > ring_cap_bytes_) {
      if (droppable) {
        // Even fully shed there is no room: the newest frame loses too.
        m_audio_drops_.inc();
        return;
      }
      // A control frame that cannot fit means the connection is wedged.
      doom_locked(c, ErrorCode::kBackpressure, "send ring overflow");
      return;
    }
  }
  c.ring_bytes += need;
  c.ring.push_back({std::move(bytes), droppable, qos, support::now()});
}

// ---- reactor thread --------------------------------------------------------

void Server::on_accept(std::uint32_t) {
  for (;;) {
    const int fd = accept_conn(listen_fd_);
    if (fd < 0) break;  // kWouldBlock drained, or transient error
    set_nonblocking(fd);
    set_nodelay(fd);
    // Cap the kernel send buffer at the ring budget. Left to autotune
    // it grows to megabytes on loopback, silently buffering minutes of
    // audio for a stalled subscriber underneath the ring — the
    // watermark doctrine only means something if the ring is the
    // deepest buffer on the path. (The kernel clamps to wmem_max.)
    const int sndbuf = static_cast<int>(
        std::min<std::size_t>(ring_cap_bytes_, 1u << 20));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));

    std::size_t count;
    {
      std::lock_guard<std::mutex> lk(conns_mutex_);
      count = conns_.size();
    }
    if (count >= cfg_.net.max_conns) {
      // Best-effort refusal; the socket buffer of a fresh connection
      // always has room for one small frame.
      WireError e;
      e.code = static_cast<std::uint16_t>(ErrorCode::kServerFull);
      e.message = "connection limit reached";
      const std::vector<std::uint8_t> bytes = encode_frame(make_frame(e));
      (void)write_some(fd, bytes.data(), bytes.size());
      ::close(fd);
      continue;
    }

    auto c = std::make_shared<Connection>();
    c->fd = fd;
    {
      std::lock_guard<std::mutex> lk(conns_mutex_);
      conns_[fd] = c;
    }
    m_connections_.inc();
    g_connections_.set(static_cast<double>(count + 1));
    host_.journal().push(support::EventKind::kNetConnect,
                         last_tick_.load(std::memory_order_relaxed), fd);
    reactor_.add(fd, EPOLLIN,
                 [this, c](std::uint32_t ev) { on_conn_event(c, ev); });
  }
}

void Server::on_conn_event(const std::shared_ptr<Connection>& c,
                           std::uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_conn(c, false);
    return;
  }
  if ((events & EPOLLIN) != 0) {
    read_conn(c);
    // read_conn may have closed the connection.
    std::lock_guard<std::mutex> lk(conns_mutex_);
    const auto it = conns_.find(c->fd);
    if (it == conns_.end() || it->second != c) return;
  }
  if ((events & EPOLLOUT) != 0) flush_conn(c);
}

void Server::read_conn(const std::shared_ptr<Connection>& c) {
  std::uint8_t buf[kReadChunk];
  for (;;) {
    const ssize_t r = read_some(c->fd, buf, sizeof(buf));
    if (r == kWouldBlock) return;
    if (r <= 0) {  // EOF or error
      close_conn(c, false);
      return;
    }
    m_bytes_rx_.inc(static_cast<std::uint64_t>(r));
    if (!c->sniffed) {
      // The binary protocol starts with the version byte (0x01); an
      // HTTP request line starts with 'G'. One byte settles it.
      c->sniffed = true;
      c->http = buf[0] == 'G';
    }
    if (c->http) {
      c->http_buf.insert(c->http_buf.end(), buf, buf + r);
      if (c->http_buf.size() > kMaxHttpRequest) {
        close_conn(c, true);
        return;
      }
      if (http_request_complete(c->http_buf)) {
        handle_http(c);
        return;
      }
      continue;
    }
    c->decoder.feed(buf, static_cast<std::size_t>(r));
    while (auto f = c->decoder.next()) {
      m_frames_rx_.inc();
      handle_frame(c, std::move(*f));
    }
    if (c->decoder.failed()) {
      m_protocol_errors_.inc();
      host_.journal().push(support::EventKind::kNetProtocolError,
                           last_tick_.load(std::memory_order_relaxed), c->fd);
      {
        std::lock_guard<std::mutex> lk(c->mutex);
        doom_locked(*c, ErrorCode::kBadFrame, c->decoder.error().c_str());
      }
      flush_conn(c);
      return;
    }
  }
}

void Server::handle_frame(const std::shared_ptr<Connection>& c, Frame f) {
  {
    std::lock_guard<std::mutex> lk(c->mutex);
    if (c->doomed) return;
  }
  switch (f.type) {
    case FrameType::kOpenSession:
      handle_open(c, f);
      break;

    case FrameType::kCloseSession: {
      const auto msg = decode_close(f.payload);
      if (!msg) break;
      const auto owned = std::find(c->owned.begin(), c->owned.end(), msg->id);
      if (owned == c->owned.end()) {
        WireError e;
        e.code = static_cast<std::uint16_t>(ErrorCode::kUnknownSession);
        e.message = "close for a session this connection does not own";
        push_item(*c, encode_frame(make_frame(e)), false,
                  serve::QoS::kStandard);
        break;
      }
      host_.close(msg->id);
      c->owned.erase(owned);
      {
        std::lock_guard<std::mutex> lk(sessions_mutex_);
        std::erase_if(sessions_,
                      [&](const WireSession& ws) { return ws.id == msg->id; });
      }
      push_item(*c, encode_frame(make_frame(FrameType::kCloseSession, *msg)),
                false, serve::QoS::kStandard);
      break;
    }

    case FrameType::kStats:
      push_item(*c, encode_frame(make_frame(wire_stats())), false,
                serve::QoS::kStandard);
      break;

    case FrameType::kCycleAudio: {
      // Server-to-client only; a client sending audio is broken.
      m_protocol_errors_.inc();
      std::lock_guard<std::mutex> lk(c->mutex);
      doom_locked(*c, ErrorCode::kBadFrame,
                  "CYCLE_AUDIO is server-to-client only");
      break;
    }

    case FrameType::kError:
      break;  // informational from the client; nothing to do
  }
  flush_conn(c);
}

void Server::handle_open(const std::shared_ptr<Connection>& c,
                         const Frame& f) {
  const auto reject = [&](const char* why) {
    WireError e;
    e.code = static_cast<std::uint16_t>(ErrorCode::kRejected);
    e.message = why;
    push_item(*c, encode_frame(make_frame(e)), false, serve::QoS::kStandard);
  };

  const auto req = decode_open_request(f.payload);
  if (!req) {
    reject("malformed OPEN_SESSION payload");
    return;
  }
  if (req->qos >= serve::kQoSCount) return reject("invalid qos");
  if (req->width == 0 || req->width > 64) return reject("width out of range");
  if (req->depth == 0 || req->depth > 64) return reject("depth out of range");
  const double deadline =
      req->deadline_us == 0 ? audio::kDeadlineUs : req->deadline_us;
  if (!(deadline >= 50.0 && deadline <= 1e7)) {
    return reject("deadline_us out of range");
  }
  if (!(req->node_cost_us >= 0.0 && req->node_cost_us <= 1e6)) {
    return reject("node_cost_us out of range");
  }
  if (!(req->jitter >= 0.0 && req->jitter <= 1.0)) {
    return reject("jitter out of range");
  }
  if (!(req->sheddable_fraction >= 0.0 && req->sheddable_fraction <= 1.0)) {
    return reject("sheddable_fraction out of range");
  }
  if (!(req->cost_estimate_us >= 0.0 && req->cost_estimate_us <= 1e9)) {
    return reject("cost_estimate_us out of range");
  }

  serve::SyntheticSpec sspec;
  sspec.name = req->name.empty() ? "wire" : req->name;
  sspec.qos = static_cast<serve::QoS>(req->qos);
  sspec.deadline_us = deadline;
  sspec.width = req->width;
  sspec.depth = req->depth;
  sspec.node_cost_us = req->node_cost_us;
  sspec.jitter = req->jitter;
  sspec.sheddable_fraction = req->sheddable_fraction;
  sspec.seed = req->seed;
  sspec.deterministic = req->deterministic;

  serve::SessionSpec spec = serve::make_synthetic_session(sspec);
  if (req->cost_estimate_us > 0) spec.cost_estimate_us = req->cost_estimate_us;

  WireSession ws;
  ws.qos = sspec.qos;
  ws.subscribe = req->subscribe;
  ws.arena = spec.arena;  // keeps the output buffer alive for fan-out
  ws.output = spec.output;
  ws.owner = c;
  {
    // submit() and the sessions_ insert must be one atomic step from the
    // engine's point of view: the admission verdict is scanned against
    // sessions_ exactly once (publish_admission_verdicts), and the
    // free-running engine can log it the instant the command lands.
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    ws.id = host_.submit(std::move(spec));
    c->owned.push_back(ws.id);
    sessions_.push_back(std::move(ws));
  }
  // The OPEN_SESSION reply follows once the admission verdict lands at
  // the next tick boundary (publish_admission_verdicts).
}

void Server::handle_http(const std::shared_ptr<Connection>& c) {
  const std::string_view req(reinterpret_cast<const char*>(c->http_buf.data()),
                             c->http_buf.size());
  const std::size_t eol = req.find_first_of("\r\n");
  const std::string_view line = req.substr(0, eol);
  std::string response;
  const auto json_response = [&](const std::string& body) {
    return "HTTP/1.0 200 OK\r\n"
           "Content-Type: application/json; charset=utf-8\r\n"
           "Content-Length: " + std::to_string(body.size()) + "\r\n"
           "Connection: close\r\n\r\n" + body;
  };
  if (line.rfind("GET /metrics", 0) == 0) {
    m_http_requests_.inc();
    const std::string body = host_.metrics().prometheus();
    response = "HTTP/1.0 200 OK\r\n"
               "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
               "Content-Length: " + std::to_string(body.size()) + "\r\n"
               "Connection: close\r\n\r\n" + body;
  } else if (line.rfind("GET /debug/attribution", 0) == 0) {
    // Both /debug bodies are per-tick caches the data plane refreshes;
    // the reactor copies them under the host's debug mutex and never
    // touches fleet state (the engine thread never touches sockets, the
    // reactor never touches the engine — both rules hold).
    m_debug_requests_.inc();
    response = json_response(host_.debug_attribution_json());
  } else if (line.rfind("GET /debug/profile", 0) == 0) {
    m_debug_requests_.inc();
    response = json_response(host_.debug_profile_json());
  } else if (line.rfind("GET /debug/slo", 0) == 0) {
    m_debug_requests_.inc();
    response = json_response(host_.debug_slo_json());
  } else if (line.rfind("GET /debug/timeseries", 0) == 0) {
    // The only reader-side render: the tsdb snapshots under its own
    // mutex, so this never blocks the data plane either.
    m_debug_requests_.inc();
    const std::string_view series = query_param(line, "series");
    const std::string_view win = query_param(line, "window");
    std::size_t windows = 0;
    if (!win.empty()) {
      windows = static_cast<std::size_t>(
          std::strtoul(std::string(win).c_str(), nullptr, 10));
    }
    response = json_response(host_.debug_timeseries_json(series, windows));
  } else if (line.rfind("GET /debug", 0) == 0 &&
             (line.size() == 10 || line[10] == ' ' || line[10] == '?' ||
              (line[10] == '/' &&
               (line.size() == 11 || line[11] == ' ')))) {
    // Bare /debug (or /debug/): the endpoint index. The boundary check
    // keeps unknown /debug/<x> paths falling through to 404.
    m_debug_requests_.inc();
    response = json_response(kDebugIndexJson);
  } else {
    const std::string body = "not found\n";
    response = "HTTP/1.0 404 Not Found\r\n"
               "Content-Type: text/plain; charset=utf-8\r\n"
               "Content-Length: " + std::to_string(body.size()) + "\r\n"
               "Connection: close\r\n\r\n" + body;
  }
  {
    std::lock_guard<std::mutex> lk(c->mutex);
    if (!c->doomed) {
      std::vector<std::uint8_t> bytes(response.begin(), response.end());
      c->ring_bytes += bytes.size();
      c->ring.push_back({std::move(bytes), false});
      c->doomed = true;  // HTTP/1.0: one response, then close
    }
  }
  flush_conn(c);
}

void Server::flush_pending() {
  std::vector<std::shared_ptr<Connection>> snapshot;
  {
    std::lock_guard<std::mutex> lk(conns_mutex_);
    snapshot.reserve(conns_.size());
    for (auto& [fd, c] : conns_) snapshot.push_back(c);
  }
  for (auto& c : snapshot) {
    bool pending;
    {
      std::lock_guard<std::mutex> lk(c->mutex);
      pending = !c->ring.empty() || c->doomed;
    }
    if (pending) flush_conn(c);
  }
}

void Server::flush_conn(const std::shared_ptr<Connection>& c) {
  {
    // Drain the ring to the socket. The lock is held across the
    // non-blocking send()s — each is a bounded copy into the kernel
    // buffer (or an immediate EAGAIN), so the engine thread's push can
    // wait at most one syscall, never a stalled peer.
    std::unique_lock<std::mutex> lk(c->mutex);
    while (!c->ring.empty()) {
      SendItem& item = c->ring.front();
      const std::size_t left = item.bytes.size() - c->front_off;
      const ssize_t r =
          write_some(c->fd, item.bytes.data() + c->front_off, left);
      if (r == kWouldBlock) break;
      if (r <= 0) {
        lk.unlock();
        close_conn(c, false);
        return;
      }
      m_bytes_tx_.inc(static_cast<std::uint64_t>(r));
      c->front_off += static_cast<std::size_t>(r);
      if (c->front_off == item.bytes.size()) {
        m_frames_tx_.inc();
        if (item.enqueued != support::Clock::time_point{}) {
          h_net_flush_[serve::rank(item.qos)].record(
              support::since_us(item.enqueued));
        }
        c->ring_bytes -= item.bytes.size();
        c->ring.pop_front();
        c->front_off = 0;
      }
    }
    const bool empty = c->ring.empty();
    const bool doomed = c->doomed;
    lk.unlock();
    if (empty && doomed) {
      close_conn(c, true);
      return;
    }
    if (!empty && !c->want_write) {
      reactor_.modify(c->fd, EPOLLIN | EPOLLOUT);
      c->want_write = true;
    } else if (empty && c->want_write) {
      reactor_.modify(c->fd, EPOLLIN);
      c->want_write = false;
    }
  }
}

void Server::close_conn(const std::shared_ptr<Connection>& c,
                        bool server_initiated) {
  {
    std::lock_guard<std::mutex> lk(conns_mutex_);
    if (conns_.erase(c->fd) == 0) return;  // already closed
    g_connections_.set(static_cast<double>(conns_.size()));
  }
  reactor_.remove(c->fd);
  ::close(c->fd);
  m_disconnects_.inc();
  host_.journal().push(support::EventKind::kNetDisconnect,
                       last_tick_.load(std::memory_order_relaxed), c->fd,
                       server_initiated ? 1 : 0);
  // A hung-up client's sessions go with it.
  for (const serve::SessionId id : c->owned) host_.close(id);
  if (!c->owned.empty()) {
    std::lock_guard<std::mutex> lk(sessions_mutex_);
    std::erase_if(sessions_, [&](const WireSession& ws) {
      return std::find(c->owned.begin(), c->owned.end(), ws.id) !=
             c->owned.end();
    });
  }
  c->owned.clear();
}

}  // namespace djstar::net
