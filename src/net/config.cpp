#include "djstar/net/config.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace djstar::net {
namespace {

[[noreturn]] void bad_value(std::string_view text, const char* why) {
  throw std::invalid_argument(
      "invalid DJSTAR_NET value '" + std::string(text) + "': " + why +
      " (expected <port>[,max_conns[,send_ring_kb]] — e.g. \"7000,64,256\")");
}

std::string_view trim(std::string_view t) {
  std::size_t b = 0, e = t.size();
  while (b < e && std::isspace(static_cast<unsigned char>(t[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(t[e - 1]))) --e;
  return t.substr(b, e - b);
}

unsigned long long parse_uint(std::string_view full, std::string_view t,
                              const char* field) {
  if (t.empty()) bad_value(full, field);
  if (t[0] == '-') bad_value(full, "negative");
  if (t[0] == '+') bad_value(full, "sign prefix not accepted");
  unsigned long long v = 0;
  for (char c : t) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      bad_value(full, "not a number");
    }
    v = v * 10 + static_cast<unsigned long long>(c - '0');
    if (v > 10'000'000ULL) bad_value(full, "out of range");
  }
  return v;
}

}  // namespace

NetConfig NetConfig::parse(std::string_view text) {
  const std::string_view t = trim(text);
  if (t.empty()) bad_value(text, "empty");

  // Split on commas; 1 to 3 fields.
  std::string_view fields[3];
  std::size_t n_fields = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= t.size(); ++i) {
    if (i == t.size() || t[i] == ',') {
      if (n_fields == 3) bad_value(text, "too many fields");
      fields[n_fields++] = trim(t.substr(start, i - start));
      start = i + 1;
    }
  }

  NetConfig cfg;
  const unsigned long long port = parse_uint(text, fields[0], "empty port");
  if (port > 65535) bad_value(text, "port out of range (0..65535)");
  cfg.port = static_cast<std::uint16_t>(port);

  if (n_fields >= 2) {
    const unsigned long long mc =
        parse_uint(text, fields[1], "empty max_conns");
    if (mc == 0 || mc > kMaxConns) {
      bad_value(text, "max_conns out of range (1..4096)");
    }
    cfg.max_conns = static_cast<unsigned>(mc);
  }
  if (n_fields == 3) {
    const unsigned long long kb =
        parse_uint(text, fields[2], "empty send_ring_kb");
    if (kb < kMinSendRingKb || kb > kMaxSendRingKb) {
      bad_value(text, "send_ring_kb out of range (16..1048576)");
    }
    cfg.send_ring_kb = static_cast<unsigned>(kb);
  }
  return cfg;
}

std::optional<NetConfig> NetConfig::from_env(const char* var) {
  const char* env = std::getenv(var);
  if (env == nullptr) return std::nullopt;
  // Empty is an explicit-but-meaningless request: throw, like
  // DJSTAR_THREADS= does, instead of silently picking a default.
  return parse(env);
}

}  // namespace djstar::net
