#include "djstar/timecode/timecode.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace djstar::timecode {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

std::uint32_t position_checksum(std::uint32_t position) noexcept {
  // Fold the 20 position bits into 5 nibbles and XOR them.
  std::uint32_t x = position & ((1u << kPositionBits) - 1);
  std::uint32_t c = 0;
  for (unsigned i = 0; i < kPositionBits; i += 4) {
    c ^= (x >> i) & 0xF;
  }
  return c;
}

TimecodeGenerator::TimecodeGenerator(double sample_rate) noexcept
    : sr_(sample_rate) {}

void TimecodeGenerator::seek(std::uint32_t frame) noexcept {
  frame_counter_ = frame & ((1u << kPositionBits) - 1);
  bit_index_ = 0;
}

std::uint64_t TimecodeGenerator::current_frame_word() const noexcept {
  const std::uint32_t pos = frame_counter_ & ((1u << kPositionBits) - 1);
  return (static_cast<std::uint64_t>(kSyncPattern)
          << (kPositionBits + kChecksumBits)) |
         (static_cast<std::uint64_t>(pos) << kChecksumBits) |
         position_checksum(pos);
}

void TimecodeGenerator::render(audio::AudioBuffer& out) noexcept {
  if (out.channels() < 2) return;
  auto l = out.channel(0);
  auto r = out.channel(1);
  const double inc = kCarrierHz * pitch_ / sr_;
  for (std::size_t i = 0; i < out.frames(); ++i) {
    const std::uint64_t word = current_frame_word();
    // Transmit MSB first: bit_index_ 0 is the top bit of the frame.
    const unsigned shift = kFrameBits - 1 - bit_index_;
    const bool bit = ((word >> shift) & 1) != 0;
    const float amp = bit ? 1.0f : kZeroAmp;

    l[i] = amp * static_cast<float>(std::sin(kTwoPi * phase_));
    r[i] = amp * static_cast<float>(std::cos(kTwoPi * phase_));

    phase_ += inc;
    bool wrapped = false;
    while (phase_ >= 1.0) {
      phase_ -= 1.0;
      wrapped = true;
    }
    while (phase_ < 0.0) {
      phase_ += 1.0;
      wrapped = true;
    }
    if (wrapped) {
      if (++bit_index_ >= kFrameBits) {
        bit_index_ = 0;
        frame_counter_ = (frame_counter_ + 1) & ((1u << kPositionBits) - 1);
      }
    }
  }
}

TimecodeDecoder::TimecodeDecoder(double sample_rate) noexcept
    : sr_(sample_rate) {}

void TimecodeDecoder::reset() noexcept {
  state_ = {};
  prev_l_ = 0.0f;
  samples_since_crossing_ = 0.0;
  cycle_peak_ = 0.0f;
  pitch_smooth_ = 0.0;
  prev_theta_ = 0.0;
  have_theta_ = false;
  bit_shift_ = 0;
  bits_seen_ = 0;
  synced_ = false;
  have_candidate_ = false;
  candidate_position_ = 0;
  bits_since_candidate_ = 0;
  boundary_countdown_ = 0;
}

void TimecodeDecoder::push_bit(bool bit) noexcept {
  bit_shift_ = (bit_shift_ << 1) | (bit ? 1u : 0u);
  if (bits_seen_ < 64) ++bits_seen_;
  if (bits_seen_ < kFrameBits) return;

  const std::uint64_t word = bit_shift_ & ((1ull << kFrameBits) - 1);
  const auto sync = static_cast<std::uint32_t>(
      word >> (kPositionBits + kChecksumBits));
  const auto pos = static_cast<std::uint32_t>(
      (word >> kChecksumBits) & ((1u << kPositionBits) - 1));
  const auto csum =
      static_cast<std::uint32_t>(word & ((1u << kChecksumBits) - 1));
  const bool valid = sync == kSyncPattern && csum == position_checksum(pos);

  if (synced_) {
    if (--boundary_countdown_ > 0) return;  // between frame boundaries
    const std::uint32_t expected =
        (state_.position + 1) & ((1u << kPositionBits) - 1);
    if (valid && pos == expected) {
      state_.position = pos;
      ++state_.frames_decoded;
      boundary_countdown_ = kFrameBits;
    } else {
      // A boundary that fails to validate is a real decode error.
      ++state_.checksum_errors;
      synced_ = false;
      have_candidate_ = false;
    }
    return;
  }

  // Scanning: look for two valid frames exactly one frame apart.
  if (have_candidate_) ++bits_since_candidate_;
  if (!valid) return;
  if (have_candidate_ && bits_since_candidate_ == kFrameBits &&
      pos == ((candidate_position_ + 1) & ((1u << kPositionBits) - 1))) {
    synced_ = true;
    state_.locked = true;
    state_.position = pos;
    state_.frames_decoded += 2;  // the candidate and this frame
    boundary_countdown_ = kFrameBits;
    have_candidate_ = false;
  } else {
    have_candidate_ = true;
    candidate_position_ = pos;
    bits_since_candidate_ = 0;
  }
}

void TimecodeDecoder::on_cycle_complete(double period_samples, float peak_amp,
                                        bool /*forward*/) noexcept {
  if (period_samples <= 0.0) return;
  // Amplitude slicer midway between the '0' and '1' levels.
  constexpr float kThreshold = (1.0f + kZeroAmp) * 0.5f;
  push_bit(peak_amp > kThreshold);
}

void TimecodeDecoder::process(const audio::AudioBuffer& in) noexcept {
  if (in.channels() < 2) return;
  auto l = in.channel(0);
  auto r = in.channel(1);
  constexpr double kTheta2Pitch = 1.0 / kTwoPi;
  for (std::size_t i = 0; i < in.frames(); ++i) {
    const float s = l[i];

    // Quadrature demodulation: the generator emits L = A sin(theta),
    // R = A cos(theta), so atan2(L, R) recovers theta directly and the
    // wrapped per-sample increment is the instantaneous carrier
    // frequency — signed, so reverse platter motion shows as a negative
    // pitch without any separate direction detector.
    const double amp2 = static_cast<double>(s) * s +
                        static_cast<double>(r[i]) * r[i];
    if (amp2 > 1e-6) {
      const double theta = std::atan2(static_cast<double>(s),
                                      static_cast<double>(r[i]));
      if (have_theta_) {
        double dtheta = theta - prev_theta_;
        if (dtheta > std::numbers::pi) dtheta -= kTwoPi;
        if (dtheta < -std::numbers::pi) dtheta += kTwoPi;
        const double inst_freq = dtheta * kTheta2Pitch * sr_;
        const double pitch = inst_freq / kCarrierHz;
        // Heavier smoothing than the per-cycle variant: one pole over
        // ~3 carrier cycles keeps the estimate rock steady while still
        // tracking scratch gestures.
        pitch_smooth_ += 0.015 * (pitch - pitch_smooth_);
        state_.pitch = pitch_smooth_;
      }
      prev_theta_ = theta;
      have_theta_ = true;
    } else {
      have_theta_ = false;  // silence: no phase information
    }

    cycle_peak_ = std::max(cycle_peak_, std::fabs(s));
    samples_since_crossing_ += 1.0;
    // Positive-going zero crossing of the left carrier clocks one bit.
    if (prev_l_ <= 0.0f && s > 0.0f) {
      // Reject spurious crossings from noise (shorter than 1/8 nominal
      // period at 8x speed).
      const double min_period = sr_ / (kCarrierHz * 8.0);
      if (samples_since_crossing_ >= min_period) {
        on_cycle_complete(samples_since_crossing_, cycle_peak_,
                          state_.pitch >= 0.0);
        samples_since_crossing_ = 0.0;
        cycle_peak_ = 0.0f;
      }
    }
    prev_l_ = s;
  }
}

}  // namespace djstar::timecode
