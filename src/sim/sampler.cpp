#include "djstar/sim/sampler.hpp"

#include <cmath>

namespace djstar::sim {

DurationSampler::DurationSampler(std::span<const double> mean_us,
                                 SamplerConfig cfg)
    : mean_us_(mean_us.begin(), mean_us.end()), cfg_(cfg), rng_(cfg.seed) {}

void DurationSampler::sample(std::vector<double>& out) {
  out.resize(mean_us_.size());
  last_heavy_ = rng_.uniform() < cfg_.heavy_probability;
  // With preserve_mean: light*(1-p) + heavy*p == 1 where heavy/light is
  // the configured ratio, so E[duration] == mean (ignoring rare spikes).
  const double light =
      cfg_.preserve_mean
          ? 1.0 / (1.0 + cfg_.heavy_probability * (cfg_.heavy_factor - 1.0))
          : 1.0;
  const double regime = last_heavy_ ? cfg_.heavy_factor * light : light;
  const double jitter_bias =
      -0.5 * cfg_.jitter_sigma * cfg_.jitter_sigma;  // lognormal mean = 1
  for (std::size_t i = 0; i < mean_us_.size(); ++i) {
    double d = mean_us_[i] * regime;
    if (cfg_.jitter_sigma > 0) {
      d *= std::exp(cfg_.jitter_sigma * rng_.normal() + jitter_bias);
    }
    if (rng_.uniform() < cfg_.spike_probability) {
      d *= cfg_.spike_factor;
    }
    out[i] = d;
  }
}

}  // namespace djstar::sim
