#include "djstar/sim/strategy_sim.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "djstar/support/assert.hpp"

namespace djstar::sim {
namespace {

/// Shared result assembly.
void finalize(ScheduleResult& r) {
  for (const auto& e : r.entries) {
    r.makespan_us = std::max(r.makespan_us, e.finish_us);
  }
  // Profile via the same event-delta logic as the schedulers.
  std::vector<std::pair<double, int>> deltas;
  deltas.reserve(r.entries.size() * 2);
  for (const auto& e : r.entries) {
    deltas.emplace_back(e.start_us, 1);
    deltas.emplace_back(e.finish_us, -1);
  }
  std::sort(deltas.begin(), deltas.end());
  int active = 0;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    active += deltas[i].second;
    if (i + 1 < deltas.size() && deltas[i + 1].first == deltas[i].first) {
      continue;  // merge simultaneous events
    }
    r.profile_times_us.push_back(deltas[i].first);
    r.profile_active.push_back(active);
  }
}

/// Round-robin strategies (BUSY and SLEEP share the queue layout).
ScheduleResult simulate_round_robin(const SimGraph& g, bool sleeping,
                                    std::uint32_t T,
                                    const OverheadModel& ov) {
  ScheduleResult r;
  r.processors_used = T;
  const std::size_t n = g.node_count();
  std::vector<double> finish(n, 0);
  std::vector<std::uint32_t> owner(n, 0);  // thread that ran each node
  std::vector<double> t(T, 0.0);

  const double check = ov.scaled_check(T);
  if (T > 1) {
    for (auto& tw : t) tw = ov.dispatch_us;
  }
  if (sleeping) {
    // Workers are parked between cycles; the cycle-start notify_all costs
    // the master one signal and each worker a wake latency.
    for (std::uint32_t w = 1; w < T; ++w) t[w] += ov.wake_latency_us;
    t[0] += ov.signal_cost_us;
  }

  // Nodes are processed in queue order; every predecessor of order[k]
  // appears before position k, so its finish time is already known.
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t w = static_cast<std::uint32_t>(k % T);
    const NodeId v = g.order[k];

    double ready = 0;
    NodeId last_pred = core::kInvalidNode;
    for (NodeId p : g.predecessors[v]) {
      if (finish[p] >= ready) {
        ready = finish[p];
        last_pred = p;
      }
    }

    const double avail = t[w] + check;
    double start;
    if (ready <= avail) {
      start = avail;
    } else if (!sleeping) {
      // Busy wait: the spinning thread notices within one quantum.
      start = ready + ov.spin_quantum_us;
      r.waits.push_back({w, avail, start, false});
    } else {
      // Sleep: park (entry cost), then the resolving predecessor's
      // thread signals us; we resume one wake latency later.
      const double park_done = avail + ov.sleep_entry_us;
      double signal_time = ready;
      if (last_pred != core::kInvalidNode) {
        // The signalling thread pays for the notify; this delays its own
        // next node.
        t[owner[last_pred]] += ov.signal_cost_us;
        signal_time = ready + ov.signal_cost_us;
      }
      start = std::max(park_done, signal_time + ov.wake_latency_us);
      r.waits.push_back({w, avail, start, true});
    }

    finish[v] = start + g.duration_us[v];
    owner[v] = w;
    t[w] = finish[v];
    r.entries.push_back({v, w, start, finish[v]});
  }
  finalize(r);
  return r;
}

/// Event-driven work-stealing simulation.
ScheduleResult simulate_ws(const SimGraph& g, std::uint32_t T,
                           const OverheadModel& ov) {
  constexpr double kParked = std::numeric_limits<double>::infinity();
  ScheduleResult r;
  r.processors_used = T;
  const std::size_t n = g.node_count();

  std::vector<std::size_t> pending(n);
  for (NodeId v = 0; v < n; ++v) pending[v] = g.predecessors[v].size();
  // Earliest virtual time a node may start (its releasing predecessor's
  // finish + push cost). A thief whose clock lags the pusher must still
  // wait for this.
  std::vector<double> ready_at(n, 0.0);

  // Per-thread deque: back = bottom (owner LIFO), front = top (steal).
  std::vector<std::deque<NodeId>> dq(T);
  std::vector<double> t(T, 0.0);
  std::vector<std::uint32_t> failed_rounds(T, 0);
  std::vector<double> park_begin(T, 0.0);

  const double contention =
      1.0 + ov.contention_per_thread * static_cast<double>(T - 1);

  // Master seeds source queues by section (paper Fig. 7a).
  std::size_t sources = 0;
  for (NodeId v : g.order) {
    if (!g.predecessors[v].empty()) break;
    dq[g.section[v] % T].push_back(v);
    ++sources;
  }
  const double seed_done = static_cast<double>(sources) * ov.seed_cost_us +
                           (T > 1 ? ov.dispatch_us : 0.0);
  for (auto& tw : t) tw = seed_done;

  std::size_t executed = 0;

  auto unpark_one = [&](double when) {
    for (std::uint32_t w = 0; w < T; ++w) {
      if (t[w] == kParked) {
        t[w] = when + ov.wake_latency_us;
        failed_rounds[w] = 0;
        r.waits.push_back({w, park_begin[w], t[w], true});
        return;
      }
    }
  };

  while (executed < n) {
    // Advance the earliest-available thread.
    std::uint32_t w = 0;
    double tmin = kParked;
    for (std::uint32_t i = 0; i < T; ++i) {
      if (t[i] < tmin) {
        tmin = t[i];
        w = i;
      }
    }
    DJSTAR_ASSERT_MSG(tmin != kParked, "all threads parked with work left");

    NodeId v = core::kInvalidNode;
    if (!dq[w].empty()) {
      v = dq[w].back();
      dq[w].pop_back();
      t[w] += ov.deque_op_us * contention;
    } else {
      // Steal round.
      bool got = false;
      for (std::uint32_t d = 1; d < T && !got; ++d) {
        const std::uint32_t victim = (w + d) % T;
        t[w] += ov.steal_probe_us * contention;
        if (!dq[victim].empty()) {
          v = dq[victim].front();  // oldest item
          dq[victim].pop_front();
          got = true;
        }
      }
      if (!got) {
        if (++failed_rounds[w] >= 4) {
          park_begin[w] = t[w];
          t[w] = kParked;  // park until a push unparks us
        } else {
          r.waits.push_back({w, t[w], t[w] + ov.spin_quantum_us, false});
          t[w] += ov.spin_quantum_us;  // yield and retry
        }
        continue;
      }
      failed_rounds[w] = 0;
    }

    const double start = std::max(t[w], ready_at[v]);
    const double fin = start + g.duration_us[v];
    r.entries.push_back({v, w, start, fin});
    t[w] = fin;
    ++executed;

    for (NodeId s : g.successors[v]) {
      if (--pending[s] == 0) {
        t[w] += ov.deque_op_us * contention;
        ready_at[s] = t[w];
        dq[w].push_back(s);
        unpark_one(t[w]);
      }
    }
  }
  finalize(r);
  return r;
}

}  // namespace

ScheduleResult simulate_static(const SimGraph& g, std::uint32_t T,
                               const OverheadModel& ov) {
  DJSTAR_ASSERT(T >= 1);
  ScheduleResult r;
  r.processors_used = T;
  const std::size_t n = g.node_count();

  // Phase 1 — the plan: critical-path-first list schedule on ideal
  // durations, highest upward rank first onto the earliest-free worker
  // (the same rule as core::graph_opt::build_static_plan).
  const std::vector<double> rank = upward_rank(g);
  std::vector<std::size_t> pending(n);
  for (NodeId v = 0; v < n; ++v) pending[v] = g.predecessors[v].size();
  const auto lower_rank = [&](NodeId a, NodeId b) {
    return rank[a] != rank[b] ? rank[a] < rank[b] : a > b;
  };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(lower_rank)>
      ready(lower_rank);
  for (NodeId v = 0; v < n; ++v) {
    if (pending[v] == 0) ready.push(v);
  }
  std::vector<double> ideal_finish(n, 0.0), ideal_avail(n, 0.0);
  std::vector<double> free_at(T, 0.0);
  std::vector<std::uint32_t> assigned(n, 0);
  std::vector<NodeId> global_order;
  global_order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    std::uint32_t w = 0;
    for (std::uint32_t i = 1; i < T; ++i) {
      if (free_at[i] < free_at[w]) w = i;
    }
    const double start = std::max(free_at[w], ideal_avail[v]);
    ideal_finish[v] = start + g.duration_us[v];
    free_at[w] = ideal_finish[v];
    assigned[v] = w;
    global_order.push_back(v);
    for (NodeId s : g.successors[v]) {
      ideal_avail[s] = std::max(ideal_avail[s], ideal_finish[v]);
      if (--pending[s] == 0) ready.push(s);
    }
  }
  DJSTAR_ASSERT_MSG(global_order.size() == n, "static plan missed nodes");

  // Phase 2 — the replay, with overheads: one (contended) dependency
  // check per unit, a spin quantum when the counter is still non-zero.
  // No deque/queue operations — that is the point of the cached plan.
  const double check = ov.scaled_check(T);
  std::vector<double> finish(n, 0.0);
  std::vector<double> t(T, T > 1 ? ov.dispatch_us : 0.0);
  for (const NodeId v : global_order) {
    const std::uint32_t w = assigned[v];
    double dep_ready = 0.0;
    for (NodeId p : g.predecessors[v]) {
      dep_ready = std::max(dep_ready, finish[p]);
    }
    const double avail = t[w] + check;
    double start;
    if (dep_ready <= avail) {
      start = avail;
    } else {
      start = dep_ready + ov.spin_quantum_us;
      r.waits.push_back({w, avail, start, false});
    }
    finish[v] = start + g.duration_us[v];
    t[w] = finish[v];
    r.entries.push_back({v, w, start, finish[v]});
  }
  finalize(r);
  return r;
}

ScheduleResult simulate_strategy(const SimGraph& g, SimStrategy strategy,
                                 std::uint32_t threads,
                                 const OverheadModel& ov) {
  DJSTAR_ASSERT(threads >= 1);
  switch (strategy) {
    case SimStrategy::kBusy:
      return simulate_round_robin(g, /*sleeping=*/false, threads, ov);
    case SimStrategy::kSleep:
      return simulate_round_robin(g, /*sleeping=*/true, threads, ov);
    case SimStrategy::kWorkStealing:
      return simulate_ws(g, threads, ov);
  }
  return {};
}

ScheduleResult simulate_busy(const SimGraph& g, std::uint32_t threads,
                             const OverheadModel& ov) {
  return simulate_strategy(g, SimStrategy::kBusy, threads, ov);
}

ScheduleResult simulate_sleep(const SimGraph& g, std::uint32_t threads,
                              const OverheadModel& ov) {
  return simulate_strategy(g, SimStrategy::kSleep, threads, ov);
}

ScheduleResult simulate_work_stealing(const SimGraph& g,
                                      std::uint32_t threads,
                                      const OverheadModel& ov) {
  return simulate_strategy(g, SimStrategy::kWorkStealing, threads, ov);
}

}  // namespace djstar::sim
