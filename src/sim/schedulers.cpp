#include "djstar/sim/schedulers.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "djstar/support/assert.hpp"

namespace djstar::sim {
namespace {

/// Build the concurrency profile from schedule entries.
void fill_profile(ScheduleResult& r) {
  // Delta encoding at every start (+1) and finish (-1).
  std::map<double, int> delta;
  for (const auto& e : r.entries) {
    delta[e.start_us] += 1;
    delta[e.finish_us] -= 1;
  }
  int active = 0;
  r.profile_times_us.clear();
  r.profile_active.clear();
  for (const auto& [t, d] : delta) {
    active += d;
    r.profile_times_us.push_back(t);
    r.profile_active.push_back(active);
  }
}

}  // namespace

int ScheduleResult::peak_concurrency() const noexcept {
  int peak = 0;
  for (int a : profile_active) peak = std::max(peak, a);
  return peak;
}

std::vector<support::TraceSpan> ScheduleResult::to_spans() const {
  std::vector<support::TraceSpan> spans;
  spans.reserve(entries.size() + waits.size());
  for (const auto& w : waits) {
    spans.push_back({w.begin_us, w.end_us, w.proc, -1,
                     w.sleeping ? support::SpanKind::kSleep
                                : support::SpanKind::kBusyWait});
  }
  for (const auto& e : entries) {
    spans.push_back({e.start_us, e.finish_us, e.proc,
                     static_cast<std::int32_t>(e.node),
                     support::SpanKind::kRun});
  }
  return spans;
}

ScheduleResult earliest_start_schedule(const SimGraph& g) {
  ScheduleResult r;
  const std::size_t n = g.node_count();
  std::vector<double> finish(n, 0);
  r.entries.reserve(n);

  // Assign processors greedily: reuse the first processor free at the
  // node's start time (keeps the Gantt compact and counts processors).
  std::vector<double> proc_free;  // time each proc becomes free

  for (NodeId v : g.order) {
    double start = 0;
    for (NodeId p : g.predecessors[v]) start = std::max(start, finish[p]);
    finish[v] = start + g.duration_us[v];
    r.makespan_us = std::max(r.makespan_us, finish[v]);

    std::uint32_t proc = static_cast<std::uint32_t>(proc_free.size());
    for (std::uint32_t i = 0; i < proc_free.size(); ++i) {
      if (proc_free[i] <= start) {
        proc = i;
        break;
      }
    }
    if (proc == proc_free.size()) proc_free.push_back(0);
    proc_free[proc] = finish[v];
    r.entries.push_back({v, proc, start, finish[v]});
  }
  r.processors_used = static_cast<std::uint32_t>(proc_free.size());
  fill_profile(r);
  return r;
}

std::vector<double> upward_rank(const SimGraph& g) {
  std::vector<double> rank(g.node_count(), 0.0);
  // Reverse topological order: rank(v) = dur(v) + max rank(successors).
  for (auto it = g.order.rbegin(); it != g.order.rend(); ++it) {
    const NodeId v = *it;
    double best = 0;
    for (NodeId s : g.successors[v]) best = std::max(best, rank[s]);
    rank[v] = g.duration_us[v] + best;
  }
  return rank;
}

ScheduleResult list_schedule(const SimGraph& g, std::uint32_t processors,
                             PriorityRule rule) {
  DJSTAR_ASSERT(processors >= 1);
  ScheduleResult r;
  const std::size_t n = g.node_count();

  // Lower prio value = scheduled first.
  std::vector<double> prio(n);
  if (rule == PriorityRule::kQueueOrder) {
    for (std::size_t i = 0; i < n; ++i) {
      prio[g.order[i]] = static_cast<double>(i);
    }
  } else {
    const auto rank = upward_rank(g);
    for (std::size_t i = 0; i < n; ++i) prio[i] = -rank[i];
  }

  std::vector<std::size_t> pending(n);
  for (NodeId v = 0; v < n; ++v) pending[v] = g.predecessors[v].size();

  auto cmp = [&](NodeId a, NodeId b) { return prio[a] > prio[b]; };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(cmp)> ready(cmp);
  for (NodeId v = 0; v < n; ++v) {
    if (pending[v] == 0) ready.push(v);
  }

  // Event loop: (finish_time, proc, node) of running nodes.
  struct Running {
    double finish;
    std::uint32_t proc;
    NodeId node;
    bool operator>(const Running& o) const { return finish > o.finish; }
  };
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  std::vector<std::uint32_t> free_procs;
  for (std::uint32_t p = 0; p < processors; ++p) free_procs.push_back(p);

  std::vector<double> finish(n, 0);
  double now = 0;
  std::size_t scheduled = 0;
  r.entries.reserve(n);

  while (scheduled < n || !running.empty()) {
    // Dispatch ready nodes onto free processors at the current time.
    while (!free_procs.empty() && !ready.empty()) {
      const NodeId v = ready.top();
      ready.pop();
      const std::uint32_t p = free_procs.back();
      free_procs.pop_back();
      const double f = now + g.duration_us[v];
      finish[v] = f;
      running.push({f, p, v});
      r.entries.push_back({v, p, now, f});
      ++scheduled;
    }
    if (running.empty()) break;  // defensive; cannot happen on a DAG

    // Advance to the next completion.
    const Running done = running.top();
    running.pop();
    now = done.finish;
    free_procs.push_back(done.proc);
    for (NodeId s : g.successors[done.node]) {
      if (--pending[s] == 0) ready.push(s);
    }
    // Collect all completions at the same instant before dispatching.
    while (!running.empty() && running.top().finish == now) {
      const Running d2 = running.top();
      running.pop();
      free_procs.push_back(d2.proc);
      for (NodeId s : g.successors[d2.node]) {
        if (--pending[s] == 0) ready.push(s);
      }
    }
  }

  DJSTAR_ASSERT_MSG(scheduled == n, "list schedule failed to place all nodes");
  for (const auto& e : r.entries) {
    r.makespan_us = std::max(r.makespan_us, e.finish_us);
  }
  r.processors_used = processors;
  fill_profile(r);
  return r;
}

}  // namespace djstar::sim
