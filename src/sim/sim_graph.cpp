#include "djstar/sim/sim_graph.hpp"

#include <algorithm>

#include "djstar/support/assert.hpp"

namespace djstar::sim {

SimGraph SimGraph::from_compiled(const core::CompiledGraph& g,
                                 std::span<const double> durations) {
  DJSTAR_ASSERT_MSG(durations.size() == g.node_count(),
                    "need one duration per node");
  SimGraph s;
  const std::size_t n = g.node_count();
  s.successors.resize(n);
  s.predecessors.resize(n);
  s.duration_us.assign(durations.begin(), durations.end());
  s.section.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    s.section[i] = g.section_index(i);
    for (NodeId succ : g.successors(i)) {
      s.successors[i].push_back(succ);
      s.predecessors[succ].push_back(i);
    }
  }
  s.order.assign(g.order().begin(), g.order().end());
  return s;
}

SimGraph SimGraph::from_compiled_units(const core::CompiledGraph& g,
                                       std::span<const double> durations) {
  DJSTAR_ASSERT_MSG(durations.size() == g.node_count(),
                    "need one duration per node");
  SimGraph s;
  const std::size_t nu = g.unit_count();
  s.successors.resize(nu);
  s.predecessors.resize(nu);
  s.duration_us.assign(nu, 0.0);
  s.section.resize(nu);
  for (core::UnitId u = 0; u < nu; ++u) {
    for (NodeId m : g.unit_members(u)) s.duration_us[u] += durations[m];
    s.section[u] = g.unit_section_index(u);
    for (core::UnitId succ : g.unit_successors(u)) {
      s.successors[u].push_back(succ);
      s.predecessors[succ].push_back(u);
    }
  }
  s.order.assign(g.unit_order().begin(), g.unit_order().end());
  return s;
}

void SimGraph::validate() const {
  const std::size_t n = node_count();
  DJSTAR_ASSERT(successors.size() == n && predecessors.size() == n);
  DJSTAR_ASSERT(order.size() == n);
  for (double d : duration_us) DJSTAR_ASSERT_MSG(d >= 0, "negative duration");
  // order must schedule every predecessor before its successor.
  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[order[i]] = i;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId p : predecessors[v]) {
      DJSTAR_ASSERT_MSG(pos[p] < pos[v], "order violates a dependency");
    }
  }
}

double critical_path_us(const SimGraph& g) {
  double best = 0;
  std::vector<double> finish(g.node_count(), 0);
  for (NodeId v : g.order) {
    double start = 0;
    for (NodeId p : g.predecessors[v]) start = std::max(start, finish[p]);
    finish[v] = start + g.duration_us[v];
    best = std::max(best, finish[v]);
  }
  return best;
}

double total_work_us(const SimGraph& g) {
  double sum = 0;
  for (double d : g.duration_us) sum += d;
  return sum;
}

}  // namespace djstar::sim
