#include "djstar/core/busy_wait.hpp"

#include <thread>

#include "djstar/core/chaos.hpp"
#include "djstar/core/detail/heal_run.hpp"
#include "djstar/core/detail/spin.hpp"
#include "djstar/core/detail/unit_run.hpp"

namespace djstar::core {

BusyWaitExecutor::BusyWaitExecutor(CompiledGraph& graph, ExecOptions opts)
    : graph_(graph), opts_(opts) {
  team_ = std::make_unique<Team>(
      opts_.threads, StartMode::kSpin, opts_.spin,
      [this](unsigned w) { worker_body(w); }, opts_.heal);
  // No rescue hook: the busy-waiting heal body polls the health board on
  // every wait burst, so survivors discover quarantined lanes without a
  // kick from the medic.
}

void BusyWaitExecutor::run_cycle() {
  graph_.begin_cycle();
  use_plan_ = detail::plan_active(opts_);
  cycle_start_ = support::now();
  team_->run_cycle();
}

void BusyWaitExecutor::worker_body(unsigned w) {
  const auto order = graph_.unit_order();
  const unsigned T = opts_.threads;
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const bool tracing = trace != nullptr || flight != nullptr;
  const auto emit = [&](const support::TraceSpan& s) {
    if (trace) trace->record(w, s);
    if (flight) flight->record(w, s);
  };

  if (use_plan_) {
    detail::replay_static(graph_, *opts_.static_plan, w, stats_, opts_.spin,
                          tracing, cycle_start_, emit,
                          support::SpanKind::kBusyWait);
    return;
  }

  if (team_->healing()) {
    heal_body(w);
    return;
  }

  for (std::size_t k = w; k < order.size(); k += T) {
    const UnitId u = order[k];
    auto& pending = graph_.unit_pending(u);

    double wait_begin = 0.0;
    if (tracing) wait_begin = support::elapsed_us(cycle_start_, support::now());

    // Dependency check + busy wait (the gray boxes in paper Fig. 11).
    chaos::maybe_perturb(chaos::Site::kDependencyCheck);
    if (pending.load(std::memory_order_acquire) != 0) {
      detail::SpinWaiter waiter(opts_.spin);
      while (pending.load(std::memory_order_acquire) != 0) {
        waiter.step();
      }
      stats_.busy_wait_spins.fetch_add(waiter.spins(),
                                       std::memory_order_relaxed);
    }

    if (tracing) {
      const double run_begin =
          support::elapsed_us(cycle_start_, support::now());
      if (run_begin - wait_begin > 0.5) {
        emit({wait_begin, run_begin, w,
              static_cast<std::int32_t>(graph_.unit_members(u).front()),
              support::SpanKind::kBusyWait});
      }
    }

    detail::run_unit(graph_, u, w, stats_, tracing, cycle_start_, emit);

    for (UnitId s : graph_.unit_successors(u)) {
      graph_.unit_pending(s).fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

// Heal-armed variant of the round-robin body: claim-gated runs, bounded
// spin bursts (so the adopt scan interleaves with dependency waits), and
// a help phase that keeps every survivor working until the whole graph
// is done (DESIGN.md §12).
void BusyWaitExecutor::heal_body(unsigned w) {
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const bool tracing = trace != nullptr || flight != nullptr;
  const auto emit = [&](const support::TraceSpan& s) {
    if (trace) trace->record(w, s);
    if (flight) flight->record(w, s);
  };
  HealthBoard& hb = team_->health();

  const auto wait_ready = [&](UnitId u) {
    auto& pending = graph_.unit_pending(u);
    std::uint32_t spins = 0;
    while (spins < 256 &&
           pending.load(std::memory_order_acquire) != 0) {
      detail::cpu_pause();
      ++spins;
    }
    stats_.busy_wait_spins.fetch_add(spins, std::memory_order_relaxed);
    hb.beat(w);
    return true;
  };
  const auto resolve = [&](UnitId u) {
    for (UnitId s : graph_.unit_successors(u)) {
      graph_.unit_pending(s).fetch_sub(1, std::memory_order_acq_rel);
    }
  };
  const auto help_pause = [] { std::this_thread::yield(); };

  detail::heal_round_robin_body(graph_, hb, w, opts_.threads, stats_, tracing,
                                cycle_start_, emit, wait_ready, resolve,
                                help_pause);
}

}  // namespace djstar::core
