#include "djstar/core/graph_opt.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <queue>
#include <stdexcept>
#include <string>

#include "djstar/core/compiled_graph.hpp"
#include "djstar/support/assert.hpp"

namespace djstar::core::graph_opt {

std::string_view to_string(Mode m) noexcept {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kFuse: return "fuse";
    case Mode::kFuseStatic: return "fuse+static";
  }
  return "?";
}

std::optional<Mode> parse_mode(std::string_view name) noexcept {
  if (name == "off") return Mode::kOff;
  if (name == "fuse") return Mode::kFuse;
  if (name == "fuse+static" || name == "fuse-static") return Mode::kFuseStatic;
  return std::nullopt;
}

std::optional<Mode> mode_from_env() {
  const char* raw = std::getenv("DJSTAR_GRAPH_OPT");
  if (raw == nullptr) return std::nullopt;
  std::string s(raw);
  const auto b = s.find_first_not_of(" \t");
  const auto e = s.find_last_not_of(" \t");
  if (b == std::string::npos) {
    throw std::invalid_argument("DJSTAR_GRAPH_OPT: empty value");
  }
  const auto mode = parse_mode(std::string_view(s).substr(b, e - b + 1));
  if (!mode) {
    throw std::invalid_argument(
        "DJSTAR_GRAPH_OPT: expected off, fuse, or fuse+static, got '" + s +
        "'");
  }
  return mode;
}

// ---- CostModel --------------------------------------------------------------

CostModel::CostModel(std::size_t n, double default_cost_us)
    : cost_(n, default_cost_us), dev_(n, 0.0) {}

void CostModel::seed(std::span<const double> costs) {
  DJSTAR_ASSERT_MSG(costs.size() == cost_.size(),
                    "cost seed must cover every node");
  std::copy(costs.begin(), costs.end(), cost_.begin());
  std::fill(dev_.begin(), dev_.end(), 0.0);
}

void CostModel::observe(NodeId n, double us) noexcept {
  if (n >= cost_.size() || us < 0.0) return;
  const double err = us - cost_[n];
  cost_[n] += alpha_ * err;
  dev_[n] += alpha_ * (std::abs(err) - dev_[n]);
  ++observations_;
}

void CostModel::observe_cycle(double graph_us) noexcept {
  if (graph_us < 0.0) return;
  cycle_ewma_us_ = cycle_ewma_us_ == 0.0
                       ? graph_us
                       : cycle_ewma_us_ + alpha_ * (graph_us - cycle_ewma_us_);
}

double CostModel::max_cv() const noexcept {
  // Nodes cheaper than this floor contribute noise, not signal: a 0.2 us
  // node jittering by 0.1 us is irrelevant to plan quality.
  constexpr double kFloorUs = 0.5;
  double cv = 0.0;
  for (std::size_t i = 0; i < cost_.size(); ++i) {
    if (cost_[i] < kFloorUs) continue;
    cv = std::max(cv, dev_[i] / cost_[i]);
  }
  return cv;
}

double CostModel::drift_ratio(double baseline_us) const noexcept {
  if (baseline_us <= 0.0 || cycle_ewma_us_ <= 0.0) return 1.0;
  return cycle_ewma_us_ / baseline_us;
}

// ---- Plan -------------------------------------------------------------------

std::size_t Plan::fused_unit_count() const noexcept {
  std::size_t k = 0;
  for (const auto& u : units) {
    if (u.size() > 1) ++k;
  }
  return k;
}

Plan Plan::identity(std::size_t n) {
  Plan p;
  p.units.resize(n);
  p.unit_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.units[i] = {static_cast<NodeId>(i)};
    p.unit_of[i] = static_cast<std::uint32_t>(i);
  }
  return p;
}

bool Plan::validate(const TaskGraph& g) const {
  const std::size_t n = g.node_count();
  if (unit_of.size() != n) return false;

  // Exact partition: every node in exactly one unit, maps consistent.
  std::vector<std::uint8_t> seen(n, 0);
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (units[u].empty()) return false;
    for (NodeId m : units[u]) {
      if (m >= n || seen[m] || unit_of[m] != u) return false;
      seen[m] = 1;
    }
  }
  for (std::uint8_t s : seen) {
    if (!s) return false;
  }

  // Intra-unit edges must respect the member order.
  std::vector<std::uint32_t> rank(n, 0);
  for (const auto& members : units) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      rank[members[i]] = static_cast<std::uint32_t>(i);
    }
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b : g.successors(a)) {
      if (unit_of[a] == unit_of[b] && rank[a] >= rank[b]) return false;
    }
  }

  // Convexity: the contracted unit graph must stay acyclic (Kahn).
  const std::size_t nu = units.size();
  std::vector<std::vector<std::uint32_t>> usucc(nu);
  std::vector<std::uint32_t> indeg(nu, 0);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b : g.successors(a)) {
      if (unit_of[a] != unit_of[b]) usucc[unit_of[a]].push_back(unit_of[b]);
    }
  }
  for (std::size_t u = 0; u < nu; ++u) {
    auto& s = usucc[u];
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    for (std::uint32_t t : s) ++indeg[t];
  }
  std::queue<std::uint32_t> ready;
  for (std::size_t u = 0; u < nu; ++u) {
    if (indeg[u] == 0) ready.push(static_cast<std::uint32_t>(u));
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::uint32_t u = ready.front();
    ready.pop();
    ++processed;
    for (std::uint32_t t : usucc[u]) {
      if (--indeg[t] == 0) ready.push(t);
    }
  }
  return processed == nu;
}

// ---- fusion pass ------------------------------------------------------------

Plan plan_fusion(const TaskGraph& g, const CostModel& costs,
                 const FusionOptions& opt) {
  const std::size_t n = g.node_count();
  DJSTAR_ASSERT_MSG(costs.node_count() == n,
                    "cost model must cover every node");
  const auto topo = g.topological_order();
  DJSTAR_ASSERT_MSG(topo.size() == n, "fusion input must be acyclic");

  const double cheap_cutoff = opt.fuse_threshold * opt.dispatch_overhead_us;
  const auto cheap = [&](NodeId v) { return costs.cost(v) < cheap_cutoff; };
  const auto same_section = [&](NodeId a, NodeId b) {
    return opt.fuse_across_sections || g.section(a) == g.section(b);
  };

  std::vector<std::uint32_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[topo[i]] = static_cast<std::uint32_t>(i);

  constexpr std::uint32_t kUnassigned = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> unit_of(n, kUnassigned);
  std::vector<std::vector<NodeId>> clusters;

  const auto open_cluster = [&](std::vector<NodeId> members) {
    const auto id = static_cast<std::uint32_t>(clusters.size());
    for (NodeId m : members) unit_of[m] = id;
    clusters.push_back(std::move(members));
  };

  // Pass 1 — fan-in clusters: a cheap join node absorbs the cheap
  // predecessors whose only successor it is. Convex: every absorbed
  // predecessor has no edge leaving the cluster except into the join,
  // so a re-entering path would be a cycle in the original DAG.
  for (NodeId j : topo) {
    if (unit_of[j] != kUnassigned || !cheap(j)) continue;
    std::vector<NodeId> members;
    double total = costs.cost(j);
    for (NodeId p : g.predecessors(j)) {
      if (unit_of[p] != kUnassigned || g.out_degree(p) != 1) continue;
      if (!cheap(p) || !same_section(p, j)) continue;
      if (members.size() + 2 > opt.max_unit_size) break;
      if (total + costs.cost(p) > opt.max_unit_cost_us) break;
      total += costs.cost(p);
      members.push_back(p);
    }
    // A single absorbable predecessor is the chain pass's job (and the
    // chain pass can keep extending it); only true fan-ins fuse here.
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end(),
              [&](NodeId a, NodeId b) { return pos[a] < pos[b]; });
    members.push_back(j);
    open_cluster(std::move(members));
  }

  // Pass 2 — linear chains: fuse a -> b while a's only successor is b
  // and b's only predecessor is a. Always convex: an alternative path
  // a ~> b would give b a second predecessor.
  for (NodeId head : topo) {
    if (unit_of[head] != kUnassigned || !cheap(head)) continue;
    std::vector<NodeId> members{head};
    double total = costs.cost(head);
    NodeId tail = head;
    while (members.size() < opt.max_unit_size) {
      if (g.out_degree(tail) != 1) break;
      const NodeId next = g.successors(tail)[0];
      if (unit_of[next] != kUnassigned || g.in_degree(next) != 1) break;
      if (!cheap(next) || !same_section(tail, next)) break;
      if (total + costs.cost(next) > opt.max_unit_cost_us) break;
      total += costs.cost(next);
      members.push_back(next);
      tail = next;
    }
    if (members.size() < 2) continue;
    open_cluster(std::move(members));
  }

  // Pass 3 — sink batches: independent cheap sinks (out-degree zero)
  // with identical predecessor sets share one dispatch. This is the DJ
  // graph's dominant cheap shape — per-deck control utilities (no edges
  // at all: the empty predecessor set) and the mixer-fed accounting
  // leaves. Trivially convex: members have no outgoing edges, so no
  // path leaves the unit, and identical predecessor sets mean no member
  // precedes another.
  {
    std::map<std::pair<std::string_view, std::vector<NodeId>>,
             std::vector<NodeId>>
        groups;
    for (NodeId v : topo) {
      if (unit_of[v] != kUnassigned || !cheap(v)) continue;
      if (g.out_degree(v) != 0) continue;
      std::vector<NodeId> preds(g.predecessors(v).begin(),
                                g.predecessors(v).end());
      std::sort(preds.begin(), preds.end());
      const std::string_view sec =
          opt.fuse_across_sections ? std::string_view{} : g.section(v);
      groups[{sec, std::move(preds)}].push_back(v);
    }
    for (auto& [key, members] : groups) {
      if (members.size() < 2) continue;
      std::vector<NodeId> batch;
      double total = 0.0;
      const auto flush = [&] {
        if (batch.size() >= 2) open_cluster(std::move(batch));
        batch = {};
        total = 0.0;
      };
      for (NodeId v : members) {  // topo order by construction
        if (batch.size() + 1 > opt.max_unit_size ||
            total + costs.cost(v) > opt.max_unit_cost_us) {
          flush();
        }
        total += costs.cost(v);
        batch.push_back(v);
      }
      flush();
    }
  }

  // Remaining nodes become singleton units.
  for (NodeId v : topo) {
    if (unit_of[v] == kUnassigned) open_cluster({v});
  }

  // Renumber units by the topological position of their first member so
  // unit ids are deterministic and roughly dependency-ordered.
  std::vector<std::uint32_t> by_pos(clusters.size());
  for (std::size_t u = 0; u < clusters.size(); ++u) {
    by_pos[u] = static_cast<std::uint32_t>(u);
  }
  std::sort(by_pos.begin(), by_pos.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return pos[clusters[a].front()] < pos[clusters[b].front()];
            });

  Plan plan;
  plan.units.reserve(clusters.size());
  plan.unit_of.resize(n);
  for (std::uint32_t old : by_pos) {
    const auto id = static_cast<std::uint32_t>(plan.units.size());
    for (NodeId m : clusters[old]) plan.unit_of[m] = id;
    plan.units.push_back(std::move(clusters[old]));
  }
  DJSTAR_ASSERT_MSG(plan.validate(g), "fusion produced an illegal plan");
  return plan;
}

// ---- static schedule --------------------------------------------------------

StaticPlan build_static_plan(const CompiledGraph& cg, const CostModel& costs,
                             unsigned threads) {
  DJSTAR_ASSERT(threads >= 1);
  const std::size_t nu = cg.unit_count();
  DJSTAR_ASSERT_MSG(costs.node_count() == cg.node_count(),
                    "cost model must cover every node");

  std::vector<double> unit_cost(nu, 0.0);
  for (std::size_t u = 0; u < nu; ++u) {
    for (NodeId m : cg.unit_members(static_cast<std::uint32_t>(u))) {
      unit_cost[u] += costs.cost(m);
    }
  }

  // Upward rank (longest duration-weighted path to any exit, including
  // the unit itself) over the unit graph — the HLF priority.
  std::vector<double> rank(nu, 0.0);
  const auto order = cg.unit_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::uint32_t u = *it;
    double best = 0.0;
    for (std::uint32_t s : cg.unit_successors(u)) {
      best = std::max(best, rank[s]);
    }
    rank[u] = unit_cost[u] + best;
  }

  // Critical-path-first list scheduling: always start the ready unit
  // with the highest rank on the earliest-free worker.
  std::vector<std::uint32_t> pending(nu);
  std::vector<double> avail(nu, 0.0);  // max finish over predecessors
  for (std::size_t u = 0; u < nu; ++u) {
    pending[u] = cg.unit_in_degree(static_cast<std::uint32_t>(u));
  }
  const auto higher_rank = [&](std::uint32_t a, std::uint32_t b) {
    return rank[a] != rank[b] ? rank[a] < rank[b] : a > b;  // max-heap
  };
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      decltype(higher_rank)>
      ready(higher_rank);
  for (std::uint32_t u : cg.unit_sources()) ready.push(u);

  std::vector<std::vector<std::uint32_t>> assignment(threads);
  std::vector<double> free_at(threads, 0.0);
  double makespan = 0.0;
  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const std::uint32_t u = ready.top();
    ready.pop();
    unsigned w = 0;
    for (unsigned i = 1; i < threads; ++i) {
      if (free_at[i] < free_at[w]) w = i;
    }
    const double start = std::max(free_at[w], avail[u]);
    const double finish = start + unit_cost[u];
    free_at[w] = finish;
    makespan = std::max(makespan, finish);
    assignment[w].push_back(u);
    ++scheduled;
    for (std::uint32_t s : cg.unit_successors(u)) {
      avail[s] = std::max(avail[s], finish);
      if (--pending[s] == 0) ready.push(s);
    }
  }
  DJSTAR_ASSERT_MSG(scheduled == nu, "static plan missed units");
  return StaticPlan(threads, std::move(assignment), makespan);
}

}  // namespace djstar::core::graph_opt
