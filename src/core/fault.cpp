#include "djstar/core/fault.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "djstar/support/rng.hpp"

namespace djstar::core::chaos {
namespace {

// Independent mixing constants so (cycle, node) pairs decorrelate.
constexpr std::uint64_t kCycleMix = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kNodeMix = 0xbf58476d1ce4e5b9ULL;

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const auto* end = s.data() + s.size();
  const auto r = std::from_chars(s.data(), end, out);
  return r.ec == std::errc{} && r.ptr == end;
}

bool parse_double(std::string_view s, double& out) {
  // from_chars<double> is still patchy across libstdc++ versions in the
  // field; strtod on a bounded copy is portable and just as strict here.
  char buf[64];
  if (s.empty() || s.size() >= sizeof(buf)) return false;
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end == buf + s.size();
}

bool parse_rate(std::string_view s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v)) return false;
  out = static_cast<std::uint32_t>(v > 1000 ? 1000 : v);
  return true;
}

}  // namespace

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kLatencySpike: return "latency-spike";
    case FaultKind::kThrow: return "throw";
    case FaultKind::kNanOutput: return "nan-output";
    case FaultKind::kStall: return "stall";
    case FaultKind::kStallForever: return "stall-forever";
    case FaultKind::kWorkerAbort: return "worker-abort";
  }
  return "?";
}

std::optional<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  while (!spec.empty()) {
    const auto comma = spec.find(',');
    std::string_view item = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (item.empty()) continue;

    const auto eq = item.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);

    if (key == "seed") {
      if (!parse_u64(val, plan.seed)) return std::nullopt;
    } else if (key == "latency") {
      if (!parse_rate(val, plan.latency_permille)) return std::nullopt;
    } else if (key == "throw") {
      if (!parse_rate(val, plan.throw_permille)) return std::nullopt;
    } else if (key == "nan") {
      if (!parse_rate(val, plan.nan_permille)) return std::nullopt;
    } else if (key == "stall") {
      if (!parse_rate(val, plan.stall_permille)) return std::nullopt;
    } else if (key == "stall_forever") {
      if (!parse_rate(val, plan.stall_forever_permille)) return std::nullopt;
    } else if (key == "abort") {
      if (!parse_rate(val, plan.abort_permille)) return std::nullopt;
    } else if (key == "latency_us") {
      const auto dots = val.find("..");
      if (dots == std::string_view::npos) {
        double v = 0;
        if (!parse_double(val, v) || v < 0) return std::nullopt;
        plan.latency_min_us = plan.latency_max_us = v;
      } else {
        double lo = 0, hi = 0;
        if (!parse_double(val.substr(0, dots), lo) ||
            !parse_double(val.substr(dots + 2), hi) || lo < 0 || hi < lo) {
          return std::nullopt;
        }
        plan.latency_min_us = lo;
        plan.latency_max_us = hi;
      }
    } else if (key == "stall_us") {
      double v = 0;
      if (!parse_double(val, v) || v < 0) return std::nullopt;
      plan.stall_us = v;
    } else {
      return std::nullopt;
    }
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::from_env(const char* var) {
  const char* raw = std::getenv(var);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  auto plan = parse(raw);
  if (!plan) {
    std::fprintf(stderr, "djstar: ignoring malformed %s=\"%s\"\n", var, raw);
  }
  return plan;
}

FaultAction decide(const FaultPlan& plan, std::uint64_t cycle,
                   NodeId node) noexcept {
  support::SplitMix64 rng(plan.seed ^ (cycle * kCycleMix) ^
                          (std::uint64_t{node} * kNodeMix));
  const std::uint64_t draw = rng.next();
  const std::uint32_t r = static_cast<std::uint32_t>(draw % 1000);

  // Cascade the rates so one uniform draw covers all kinds; order puts
  // the rarest/most-disruptive kinds first so rounding never hides them.
  std::uint32_t edge = plan.throw_permille;
  if (r < edge) return {FaultKind::kThrow, 0.0};
  edge += plan.stall_permille;
  if (r < edge) return {FaultKind::kStall, plan.stall_us};
  edge += plan.latency_permille;
  if (r < edge) {
    const double frac =
        static_cast<double>((draw >> 32) & 0xffffff) / 16777215.0;
    return {FaultKind::kLatencySpike,
            plan.latency_min_us +
                frac * (plan.latency_max_us - plan.latency_min_us)};
  }
  edge += plan.nan_permille;
  if (r < edge) return {FaultKind::kNanOutput, 0.0};
  // Worker faults last: appending after the original kinds keeps every
  // decision of a pre-existing plan (their rates are zero) bit-identical.
  edge += plan.stall_forever_permille;
  if (r < edge) return {FaultKind::kStallForever, plan.stall_us};
  edge += plan.abort_permille;
  if (r < edge) return {FaultKind::kWorkerAbort, 0.0};
  return {};
}

}  // namespace djstar::core::chaos
