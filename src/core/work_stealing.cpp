#include "djstar/core/work_stealing.hpp"

#include <chrono>

#include "djstar/core/chaos.hpp"
#include "djstar/core/detail/heal_run.hpp"
#include "djstar/core/detail/spin.hpp"
#include "djstar/core/detail/unit_run.hpp"
#include "djstar/support/assert.hpp"

namespace djstar::core {

WorkStealingExecutor::WorkStealingExecutor(CompiledGraph& graph,
                                           ExecOptions opts,
                                           WorkStealingOptions ws)
    : graph_(graph), opts_(opts), ws_(ws), per_worker_(opts.threads) {
  for (auto& pw : per_worker_) {
    pw.deque = std::make_unique<ChaseLevDeque>(graph.node_count() + 1);
    pw.inbox.reserve(graph.node_count());
  }
  orphan_.reserve(graph.node_count());
  team_ = std::make_unique<Team>(
      opts_.threads, StartMode::kCondvar, opts_.spin,
      [this](unsigned w) { worker_body(w); }, opts_.heal);
  if (team_->healing()) {
    team_->set_rescue([this](unsigned victim) { heal_rescue(victim); });
  }
}

WorkStealingExecutor::WorkStealingExecutor(CompiledGraph& graph,
                                           Team& shared_team, ExecOptions opts,
                                           WorkStealingOptions ws)
    : graph_(graph), opts_(opts), ws_(ws), per_worker_(opts.threads),
      shared_(&shared_team), body_([this](unsigned w) { worker_body(w); }),
      rescue_fn_([this](unsigned victim) { heal_rescue(victim); }) {
  DJSTAR_ASSERT_MSG(opts_.threads == shared_team.threads(),
                    "hosted executor must match the shared team's width");
  for (auto& pw : per_worker_) {
    pw.deque = std::make_unique<ChaseLevDeque>(graph.node_count() + 1);
    pw.inbox.reserve(graph.node_count());
  }
  orphan_.reserve(graph.node_count());
}

void WorkStealingExecutor::seed_inboxes() {
  // Paper §V-C: "the main thread fills up the processing queues of all
  // executor threads. It distributes all nodes without dependencies
  // (source nodes) to the threads", grouped by section for data locality.
  // Fusion preserves this: units inherit their first member's section.
  const unsigned T = opts_.threads;
  const Team* tm = shared_ != nullptr ? shared_ : team_.get();
  unsigned rr = 0;
  for (UnitId u : graph_.unit_sources()) {
    unsigned target;
    if (ws_.seed == SeedMode::kBySection) {
      target = graph_.unit_section_index(u) % T;
    } else {
      target = rr++ % T;
    }
    // A quarantined worker never drains its inbox (kQuarantine mode runs
    // degraded on the survivors), so donate its seeds to worker 0 — the
    // caller thread, which is always alive.
    if (heal_armed_ && target != 0 &&
        tm->health().state(target) == WorkerState::kQuarantined) {
      target = 0;
    }
    per_worker_[target].inbox.push_back(u);
  }
}

void WorkStealingExecutor::run_cycle() {
  graph_.begin_cycle();
  use_plan_ = detail::plan_active(opts_);
  Team* const tm = shared_ != nullptr ? shared_ : team_.get();
  heal_armed_ = !use_plan_ && tm->healing();
  executed_.store(0, std::memory_order_relaxed);
  for (auto& pw : per_worker_) pw.inbox.clear();
  if (heal_armed_) {
    // Healing can leave stale duplicates behind (a republished unit whose
    // claim winner came from elsewhere); never let them leak into the
    // next cycle's UnitIds.
    for (auto& pw : per_worker_) pw.deque->clear();
    orphan_.clear();
  }
  if (!use_plan_) seed_inboxes();
  cycle_start_ = support::now();
  // Team::run_cycle()'s generation bump publishes the inboxes
  // (release store observed by the workers' acquire load).
  if (shared_ != nullptr) {
    if (heal_armed_) {
      shared_->run_cycle(body_, rescue_fn_);
    } else {
      shared_->run_cycle(body_);
    }
  } else {
    team_->run_cycle();
  }
}

void WorkStealingExecutor::on_unit_ready(unsigned w, UnitId u) {
  per_worker_[w].deque->push(static_cast<ChaseLevDeque::Item>(u));
  // Wake a parked worker, if any (lost-wake safe: idlers re-check with a
  // timeout and an epoch counter).
  chaos::maybe_perturb(chaos::Site::kNodeReady);
  if (idlers_.load(std::memory_order_acquire) > 0) {
    idle_epoch_.fetch_add(1, std::memory_order_release);
    idle_cv_.notify_one();
  }
}

bool WorkStealingExecutor::try_get_unit(unsigned w, UnitId& out,
                                        std::int32_t& stolen_from) {
  stolen_from = -1;
  // 1) Own deque, bottom (LIFO).
  const auto own = per_worker_[w].deque->pop();
  if (own >= 0) {
    out = static_cast<UnitId>(own);
    return true;
  }
  // 1b) Healing only: adopt a quarantined worker's republished unit.
  // dead() is the cheap gate — it only rises mid-cycle, and the orphan
  // buffer is populated strictly after it does (Team::quarantine()).
  if (heal_armed_ && team()->health().dead() > 0) {
    const std::lock_guard<std::mutex> lk(orphan_mutex_);
    if (!orphan_.empty()) {
      out = orphan_.back();
      orphan_.pop_back();
      return true;
    }
  }
  // 2) Steal round: probe every other worker's top (FIFO).
  const unsigned T = opts_.threads;
  for (unsigned d = 1; d < T; ++d) {
    const unsigned victim = (w + d) % T;
    const auto got = per_worker_[victim].deque->steal();
    if (got >= 0) {
      out = static_cast<UnitId>(got);
      stolen_from = static_cast<std::int32_t>(victim);
      stats_.steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    stats_.steal_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void WorkStealingExecutor::worker_body(unsigned w) {
  const std::size_t total = graph_.unit_count();
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const bool tracing = trace != nullptr || flight != nullptr;
  // Steal-origin stamping: the victim of the steal that delivered the
  // unit currently running; kRun/kFused spans emitted for it carry the
  // id so the attribution layer can tell migrated work from local work.
  std::int32_t steal_origin = -1;
  const auto emit = [&](const support::TraceSpan& s) {
    support::TraceSpan e = s;
    if (steal_origin >= 0 && (e.kind == support::SpanKind::kRun ||
                              e.kind == support::SpanKind::kFused)) {
      e.steal_from = steal_origin;
    }
    if (trace) trace->record(w, e);
    if (flight) flight->record(w, e);
  };

  if (use_plan_) {
    detail::replay_static(graph_, *opts_.static_plan, w, stats_, opts_.spin,
                          tracing, cycle_start_, emit,
                          support::SpanKind::kSteal);
    return;
  }

  // Drain the inbox the main thread seeded for us.
  for (UnitId u : per_worker_[w].inbox) {
    per_worker_[w].deque->push(static_cast<ChaseLevDeque::Item>(u));
  }

  HealthBoard* const hb =
      heal_armed_ ? &(shared_ != nullptr ? *shared_ : *team_).health()
                  : nullptr;

  std::uint32_t failed_rounds = 0;
  while (executed_.load(std::memory_order_acquire) < total) {
    if (hb != nullptr) hb->beat(w);
    UnitId u;
    double probe_begin = 0.0;
    if (tracing) probe_begin = support::elapsed_us(cycle_start_, support::now());

    if (!try_get_unit(w, u, steal_origin)) {
      ++failed_rounds;
      if (failed_rounds < ws_.steal_rounds_before_park) {
        detail::cpu_pause();
        std::this_thread::yield();
      } else {
        // Park until new work is pushed (paper: sleeping happens only
        // when solely blocked nodes remain). The timeout is a safety
        // net against the push-vs-park race.
        const auto epoch = idle_epoch_.load(std::memory_order_acquire);
        chaos::maybe_perturb(chaos::Site::kBeforeWait);
        stats_.sleeps.fetch_add(1, std::memory_order_relaxed);
        idlers_.fetch_add(1, std::memory_order_acq_rel);
        {
          std::unique_lock<std::mutex> lk(idle_mutex_);
          idle_cv_.wait_for(lk, std::chrono::microseconds(100), [&] {
            return idle_epoch_.load(std::memory_order_acquire) != epoch ||
                   executed_.load(std::memory_order_acquire) >= total;
          });
        }
        idlers_.fetch_sub(1, std::memory_order_acq_rel);
        if (tracing) {
          emit({probe_begin,
                support::elapsed_us(cycle_start_, support::now()), w, -1,
                support::SpanKind::kSteal});
        }
      }
      continue;
    }
    failed_rounds = 0;

    if (tracing) {
      const double run_begin =
          support::elapsed_us(cycle_start_, support::now());
      if (run_begin - probe_begin > 0.5) {
        emit({probe_begin, run_begin, w, -1, support::SpanKind::kSteal});
      }
    }

    if (hb != nullptr) {
      // Claim gate (DESIGN.md §12): a republished duplicate or an entry a
      // false-positive quarantine left behind loses the CAS and is simply
      // discarded; only the winner resolves successors and counts toward
      // the exit condition, so executed_ still converges on unit_count().
      if (!detail::heal_claim_run(graph_, *hb, w, u, stats_, tracing,
                                  cycle_start_, emit)) {
        if (HealthBoard::abandoned()) return;  // wedged or aborted
        continue;
      }
    } else {
      detail::run_unit(graph_, u, w, stats_, tracing, cycle_start_, emit);
    }

    // Release successor units whose last dependency this unit resolved;
    // they join *our* deque (LIFO) for cache locality (paper §V-C).
    for (UnitId s : graph_.unit_successors(u)) {
      if (graph_.unit_pending(s).fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        on_unit_ready(w, s);
      }
    }

    const std::size_t done = executed_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == total) {
      // Everyone still parked must observe completion promptly.
      idle_epoch_.fetch_add(1, std::memory_order_release);
      idle_cv_.notify_all();
    }
  }
}

// Medic-side rescue (DESIGN.md §12): runs on the medic thread right after
// `victim`'s quarantine transition and before the medic credits its slot
// at the barrier. Drains the victim's deque from the thief side (legal
// concurrently with a still-live false positive) and republishes any
// ready, unclaimed unit only the victim knew about — e.g. the one it
// popped and was about to run when it wedged.
void WorkStealingExecutor::heal_rescue(unsigned victim) {
  if (!heal_armed_) return;
  std::size_t rescued = 0;
  {
    const std::lock_guard<std::mutex> lk(orphan_mutex_);
    const auto in_orphan = [&](UnitId u) {
      for (UnitId o : orphan_) {
        if (o == u) return true;
      }
      return false;
    };
    for (;;) {
      const auto got = per_worker_[victim].deque->steal();
      if (got == ChaseLevDeque::kAbort) continue;
      if (got < 0) break;
      const auto u = static_cast<UnitId>(got);
      if (!in_orphan(u)) {
        orphan_.push_back(u);
        ++rescued;
      }
    }
    rescued += detail::heal_republish_scan(graph_, [&](UnitId u) {
      if (!in_orphan(u)) orphan_.push_back(u);
    });
  }
  Team* const tm = shared_ != nullptr ? shared_ : team_.get();
  tm->health().note_rescued(rescued);
  // Kick every parked survivor: the work they were waiting on may now
  // live in the orphan buffer.
  idle_epoch_.fetch_add(1, std::memory_order_release);
  idle_cv_.notify_all();
}

}  // namespace djstar::core
