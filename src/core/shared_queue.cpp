#include "djstar/core/shared_queue.hpp"

#include "djstar/core/chaos.hpp"

namespace djstar::core {

SharedQueueExecutor::SharedQueueExecutor(CompiledGraph& graph,
                                         ExecOptions opts)
    : graph_(graph), opts_(opts), ring_(graph.node_count() + 1) {
  team_ = std::make_unique<Team>(
      opts_.threads, StartMode::kCondvar, opts_.spin,
      [this](unsigned w) { worker_body(w); });
}

void SharedQueueExecutor::run_cycle() {
  graph_.begin_cycle();
  {
    // Seed the ready queue with all source nodes.
    const std::lock_guard<std::mutex> lk(mutex_);
    head_ = tail_ = 0;
    executed_ = 0;
    for (NodeId n : graph_.sources()) {
      ring_[tail_] = n;
      tail_ = (tail_ + 1) % ring_.size();
    }
  }
  cycle_start_ = support::now();
  team_->run_cycle();
}

void SharedQueueExecutor::worker_body(unsigned w) {
  const std::size_t total = graph_.node_count();
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const bool tracing = trace != nullptr || flight != nullptr;
  const auto emit = [&](const support::TraceSpan& s) {
    if (trace) trace->record(w, s);
    if (flight) flight->record(w, s);
  };

  for (;;) {
    NodeId n = kInvalidNode;
    double wait_begin = 0.0;
    if (tracing) wait_begin = support::elapsed_us(cycle_start_, support::now());
    chaos::maybe_perturb(chaos::Site::kBeforeWait);
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [&] { return head_ != tail_ || executed_ == total; });
      if (executed_ == total) return;
      n = ring_[head_];
      head_ = (head_ + 1) % ring_.size();
      if (tracing) {
        stats_.sleeps.fetch_add(0, std::memory_order_relaxed);
      }
    }

    double run_begin = 0.0;
    if (tracing) {
      run_begin = support::elapsed_us(cycle_start_, support::now());
      if (run_begin - wait_begin > 0.5) {
        emit({wait_begin, run_begin, w, -1, support::SpanKind::kSleep});
      }
    }

    graph_.execute(n);
    stats_.nodes_executed.fetch_add(1, std::memory_order_relaxed);

    if (tracing) {
      emit({run_begin, support::elapsed_us(cycle_start_, support::now()), w,
            static_cast<std::int32_t>(n), support::SpanKind::kRun});
    }

    // Release successors and publish completion.
    std::size_t newly_ready = 0;
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      for (NodeId s : graph_.successors(n)) {
        if (graph_.pending(s).fetch_sub(1, std::memory_order_acq_rel) == 1) {
          ring_[tail_] = s;
          tail_ = (tail_ + 1) % ring_.size();
          ++newly_ready;
        }
      }
      ++executed_;
      if (executed_ == total) {
        cv_.notify_all();  // everyone can exit
        return;
      }
    }
    if (newly_ready >= 1) {
      chaos::maybe_perturb(chaos::Site::kBeforeNotify);
      if (newly_ready == 1) {
        cv_.notify_one();
      } else {
        cv_.notify_all();
      }
    }
  }
}

}  // namespace djstar::core
