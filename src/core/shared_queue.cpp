#include "djstar/core/shared_queue.hpp"

#include <chrono>

#include "djstar/core/chaos.hpp"
#include "djstar/core/detail/heal_run.hpp"
#include "djstar/core/detail/unit_run.hpp"

namespace djstar::core {

SharedQueueExecutor::SharedQueueExecutor(CompiledGraph& graph,
                                         ExecOptions opts)
    : graph_(graph), opts_(opts), ring_(graph.node_count() + 1) {
  team_ = std::make_unique<Team>(
      opts_.threads, StartMode::kCondvar, opts_.spin,
      [this](unsigned w) { worker_body(w); }, opts_.heal);
  if (team_->healing()) {
    team_->set_rescue([this](unsigned) { heal_rescue(); });
  }
}

void SharedQueueExecutor::run_cycle() {
  graph_.begin_cycle();
  use_plan_ = detail::plan_active(opts_);
  heal_armed_ = !use_plan_ && team_->healing();
  {
    // Seed the ready queue with all source units.
    const std::lock_guard<std::mutex> lk(mutex_);
    head_ = tail_ = 0;
    executed_ = 0;
    if (!use_plan_) {
      for (UnitId u : graph_.unit_sources()) {
        ring_[tail_] = u;
        tail_ = (tail_ + 1) % ring_.size();
      }
    }
  }
  cycle_start_ = support::now();
  team_->run_cycle();
}

void SharedQueueExecutor::worker_body(unsigned w) {
  const std::size_t total = graph_.unit_count();
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const bool tracing = trace != nullptr || flight != nullptr;
  const auto emit = [&](const support::TraceSpan& s) {
    if (trace) trace->record(w, s);
    if (flight) flight->record(w, s);
  };

  if (use_plan_) {
    detail::replay_static(graph_, *opts_.static_plan, w, stats_, opts_.spin,
                          tracing, cycle_start_, emit,
                          support::SpanKind::kSleep);
    return;
  }

  if (heal_armed_) {
    heal_body(w);
    return;
  }

  for (;;) {
    UnitId u = kInvalidNode;
    double wait_begin = 0.0;
    if (tracing) wait_begin = support::elapsed_us(cycle_start_, support::now());
    chaos::maybe_perturb(chaos::Site::kBeforeWait);
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [&] { return head_ != tail_ || executed_ == total; });
      if (executed_ == total) return;
      u = ring_[head_];
      head_ = (head_ + 1) % ring_.size();
    }

    if (tracing) {
      const double run_begin =
          support::elapsed_us(cycle_start_, support::now());
      if (run_begin - wait_begin > 0.5) {
        emit({wait_begin, run_begin, w, -1, support::SpanKind::kSleep});
      }
    }

    detail::run_unit(graph_, u, w, stats_, tracing, cycle_start_, emit);

    // Release successor units and publish completion.
    std::size_t newly_ready = 0;
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      for (UnitId s : graph_.unit_successors(u)) {
        if (graph_.unit_pending(s).fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          ring_[tail_] = s;
          tail_ = (tail_ + 1) % ring_.size();
          ++newly_ready;
        }
      }
      ++executed_;
      if (executed_ == total) {
        cv_.notify_all();  // everyone can exit
        return;
      }
    }
    if (newly_ready >= 1) {
      chaos::maybe_perturb(chaos::Site::kBeforeNotify);
      if (newly_ready == 1) {
        cv_.notify_one();
      } else {
        cv_.notify_all();
      }
    }
  }
}

// Heal-armed body (DESIGN.md §12): same centralized queue, but pops wait
// with a bounded timeout (a dead worker may have been the only one slated
// to push the next ready unit — its republished entry arrives via
// heal_rescue(), and the timeout covers the window), every run goes
// through the claim gate, and only claim winners resolve successors and
// advance executed_, so the exit condition still converges on
// unit_count() despite republished duplicates.
void SharedQueueExecutor::heal_body(unsigned w) {
  const std::size_t total = graph_.unit_count();
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const bool tracing = trace != nullptr || flight != nullptr;
  const auto emit = [&](const support::TraceSpan& s) {
    if (trace) trace->record(w, s);
    if (flight) flight->record(w, s);
  };
  HealthBoard& hb = team_->health();

  for (;;) {
    hb.beat(w);
    UnitId u = kInvalidNode;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      while (!cv_.wait_for(lk, std::chrono::microseconds(200), [&] {
        return head_ != tail_ || executed_ == total;
      })) {
        hb.beat(w);
      }
      if (executed_ == total) return;
      u = ring_[head_];
      head_ = (head_ + 1) % ring_.size();
    }

    if (!detail::heal_claim_run(graph_, hb, w, u, stats_, tracing,
                                cycle_start_, emit)) {
      if (HealthBoard::abandoned()) return;  // wedged or aborted
      continue;  // lost the claim to an adopter; duplicate discarded
    }

    std::size_t newly_ready = 0;
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      for (UnitId s : graph_.unit_successors(u)) {
        if (graph_.unit_pending(s).fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          ring_[tail_] = s;
          tail_ = (tail_ + 1) % ring_.size();
          ++newly_ready;
        }
      }
      ++executed_;
      if (executed_ == total) {
        cv_.notify_all();
        return;
      }
    }
    if (newly_ready >= 1) {
      if (newly_ready == 1) {
        cv_.notify_one();
      } else {
        cv_.notify_all();
      }
    }
  }
}

// Medic-side rescue: republish everything ready, unclaimed, and not
// already enqueued. The in-ring dedupe keeps the occupancy invariant (at
// most one copy of a unit in flight) that sizes the ring.
void SharedQueueExecutor::heal_rescue() {
  if (!heal_armed_) return;
  std::size_t rescued = 0;
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    const auto in_ring = [&](UnitId u) {
      for (std::size_t i = head_; i != tail_; i = (i + 1) % ring_.size()) {
        if (ring_[i] == u) return true;
      }
      return false;
    };
    rescued = detail::heal_republish_scan(graph_, [&](UnitId u) {
      if (in_ring(u)) return;
      ring_[tail_] = u;
      tail_ = (tail_ + 1) % ring_.size();
    });
  }
  team_->health().note_rescued(rescued);
  cv_.notify_all();
}

}  // namespace djstar::core
