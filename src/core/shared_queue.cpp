#include "djstar/core/shared_queue.hpp"

#include "djstar/core/chaos.hpp"
#include "djstar/core/detail/unit_run.hpp"

namespace djstar::core {

SharedQueueExecutor::SharedQueueExecutor(CompiledGraph& graph,
                                         ExecOptions opts)
    : graph_(graph), opts_(opts), ring_(graph.node_count() + 1) {
  team_ = std::make_unique<Team>(
      opts_.threads, StartMode::kCondvar, opts_.spin,
      [this](unsigned w) { worker_body(w); });
}

void SharedQueueExecutor::run_cycle() {
  graph_.begin_cycle();
  use_plan_ = detail::plan_active(opts_);
  {
    // Seed the ready queue with all source units.
    const std::lock_guard<std::mutex> lk(mutex_);
    head_ = tail_ = 0;
    executed_ = 0;
    if (!use_plan_) {
      for (UnitId u : graph_.unit_sources()) {
        ring_[tail_] = u;
        tail_ = (tail_ + 1) % ring_.size();
      }
    }
  }
  cycle_start_ = support::now();
  team_->run_cycle();
}

void SharedQueueExecutor::worker_body(unsigned w) {
  const std::size_t total = graph_.unit_count();
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const bool tracing = trace != nullptr || flight != nullptr;
  const auto emit = [&](const support::TraceSpan& s) {
    if (trace) trace->record(w, s);
    if (flight) flight->record(w, s);
  };

  if (use_plan_) {
    detail::replay_static(graph_, *opts_.static_plan, w, stats_, opts_.spin,
                          tracing, cycle_start_, emit,
                          support::SpanKind::kSleep);
    return;
  }

  for (;;) {
    UnitId u = kInvalidNode;
    double wait_begin = 0.0;
    if (tracing) wait_begin = support::elapsed_us(cycle_start_, support::now());
    chaos::maybe_perturb(chaos::Site::kBeforeWait);
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [&] { return head_ != tail_ || executed_ == total; });
      if (executed_ == total) return;
      u = ring_[head_];
      head_ = (head_ + 1) % ring_.size();
    }

    if (tracing) {
      const double run_begin =
          support::elapsed_us(cycle_start_, support::now());
      if (run_begin - wait_begin > 0.5) {
        emit({wait_begin, run_begin, w, -1, support::SpanKind::kSleep});
      }
    }

    detail::run_unit(graph_, u, w, stats_, tracing, cycle_start_, emit);

    // Release successor units and publish completion.
    std::size_t newly_ready = 0;
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      for (UnitId s : graph_.unit_successors(u)) {
        if (graph_.unit_pending(s).fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          ring_[tail_] = s;
          tail_ = (tail_ + 1) % ring_.size();
          ++newly_ready;
        }
      }
      ++executed_;
      if (executed_ == total) {
        cv_.notify_all();  // everyone can exit
        return;
      }
    }
    if (newly_ready >= 1) {
      chaos::maybe_perturb(chaos::Site::kBeforeNotify);
      if (newly_ready == 1) {
        cv_.notify_one();
      } else {
        cv_.notify_all();
      }
    }
  }
}

}  // namespace djstar::core
