#include "djstar/core/sleep.hpp"

#include <chrono>
#include <thread>

#include "djstar/core/chaos.hpp"
#include "djstar/core/detail/heal_run.hpp"
#include "djstar/core/detail/unit_run.hpp"

namespace djstar::core {

SleepExecutor::SleepExecutor(CompiledGraph& graph, ExecOptions opts)
    : graph_(graph), opts_(opts) {
  slots_.reserve(opts_.threads);
  for (unsigned i = 0; i < opts_.threads; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  team_ = std::make_unique<Team>(
      opts_.threads, StartMode::kCondvar, opts_.spin,
      [this](unsigned w) { worker_body(w); }, opts_.heal);
  if (team_->healing()) {
    // A quarantined worker may have been the one slated to wake a
    // sleeper (its unfinished unit resolves the sleeper's dependency).
    // The heal body's parks are bounded, so sleepers re-check on their
    // own; the rescue kick just shortens the detection latency.
    team_->set_rescue([this](unsigned) {
      for (auto& slot : slots_) {
        const std::lock_guard<std::mutex> lk(slot->m);
        slot->cv.notify_all();
      }
    });
  }
}

void SleepExecutor::run_cycle() {
  graph_.begin_cycle();
  use_plan_ = detail::plan_active(opts_);
  cycle_start_ = support::now();
  team_->run_cycle();
}

void SleepExecutor::worker_body(unsigned w) {
  const auto order = graph_.unit_order();
  const unsigned T = opts_.threads;
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const bool tracing = trace != nullptr || flight != nullptr;
  const auto emit = [&](const support::TraceSpan& s) {
    if (trace) trace->record(w, s);
    if (flight) flight->record(w, s);
  };
  const auto wid = static_cast<std::int32_t>(w);

  if (use_plan_) {
    detail::replay_static(graph_, *opts_.static_plan, w, stats_, opts_.spin,
                          tracing, cycle_start_, emit,
                          support::SpanKind::kSleep);
    return;
  }

  if (team_->healing()) {
    heal_body(w);
    return;
  }

  for (std::size_t k = w; k < order.size(); k += T) {
    const UnitId u = order[k];
    auto& pending = graph_.unit_pending(u);

    double wait_begin = 0.0;
    if (tracing) wait_begin = support::elapsed_us(cycle_start_, support::now());

    chaos::maybe_perturb(chaos::Site::kDependencyCheck);
    if (pending.load(std::memory_order_acquire) != 0) {
      // Register as this unit's executor (paper Fig. 6a), then re-check:
      // either we observe pending==0 here (the resolving predecessor ran
      // between our first check and the registration), or the
      // predecessor observes our registration and wakes us. seq_cst on
      // both sides makes the flag/counter protocol race-free.
      graph_.unit_waiter(u).store(wid, std::memory_order_seq_cst);
      chaos::maybe_perturb(chaos::Site::kBeforeWait);
      if (pending.load(std::memory_order_seq_cst) != 0) {
        stats_.sleeps.fetch_add(1, std::memory_order_relaxed);
        Slot& slot = *slots_[w];
        std::unique_lock<std::mutex> lk(slot.m);
        slot.cv.wait(lk, [&] {
          return pending.load(std::memory_order_acquire) == 0;
        });
      }
    }

    if (tracing) {
      const double run_begin =
          support::elapsed_us(cycle_start_, support::now());
      if (run_begin - wait_begin > 0.5) {
        emit({wait_begin, run_begin, w,
              static_cast<std::int32_t>(graph_.unit_members(u).front()),
              support::SpanKind::kSleep});
      }
    }

    detail::run_unit(graph_, u, w, stats_, tracing, cycle_start_, emit);

    // Signal successors (paper Fig. 6b): the predecessor that resolves
    // the last dependency wakes the registered executor, if any.
    for (UnitId s : graph_.unit_successors(u)) {
      if (graph_.unit_pending(s).fetch_sub(1, std::memory_order_seq_cst) ==
          1) {
        chaos::maybe_perturb(chaos::Site::kBeforeNotify);
        const std::int32_t sleeper =
            graph_.unit_waiter(s).exchange(-1, std::memory_order_seq_cst);
        if (sleeper >= 0) {
          Slot& slot = *slots_[static_cast<unsigned>(sleeper)];
          // Taking the slot mutex orders this notify after the sleeper's
          // predicate check, so the wakeup cannot be lost (CP.42).
          const std::lock_guard<std::mutex> lk(slot.m);
          slot.cv.notify_one();
          stats_.wakeups.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
}

// Heal-armed body: same waiter-registration protocol, but every park is
// bounded — a sleeper whose waker was quarantined must wake on its own
// to run the adopt scan — and every run goes through the claim gate
// (DESIGN.md §12). The rescue hook's notify_all shortens the bounded
// park when a quarantine happens mid-wait.
void SleepExecutor::heal_body(unsigned w) {
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const bool tracing = trace != nullptr || flight != nullptr;
  const auto emit = [&](const support::TraceSpan& s) {
    if (trace) trace->record(w, s);
    if (flight) flight->record(w, s);
  };
  HealthBoard& hb = team_->health();
  const auto wid = static_cast<std::int32_t>(w);

  const auto wait_ready = [&](UnitId u) {
    auto& pending = graph_.unit_pending(u);
    // Register as the unit's executor so a live resolver still wakes us
    // promptly; the timeout covers a dead resolver. Leaving the
    // registration in place across loop iterations is harmless — a
    // notify to an awake worker is a no-op.
    graph_.unit_waiter(u).store(wid, std::memory_order_seq_cst);
    if (pending.load(std::memory_order_seq_cst) != 0) {
      stats_.sleeps.fetch_add(1, std::memory_order_relaxed);
      Slot& slot = *slots_[w];
      std::unique_lock<std::mutex> lk(slot.m);
      slot.cv.wait_for(lk, std::chrono::microseconds(200), [&] {
        return pending.load(std::memory_order_acquire) == 0;
      });
    }
    hb.beat(w);
    return true;
  };
  const auto resolve = [&](UnitId u) {
    for (UnitId s : graph_.unit_successors(u)) {
      if (graph_.unit_pending(s).fetch_sub(1, std::memory_order_seq_cst) ==
          1) {
        const std::int32_t sleeper =
            graph_.unit_waiter(s).exchange(-1, std::memory_order_seq_cst);
        if (sleeper >= 0) {
          Slot& slot = *slots_[static_cast<unsigned>(sleeper)];
          const std::lock_guard<std::mutex> lk(slot.m);
          slot.cv.notify_one();
          stats_.wakeups.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };
  // Help phase: nobody is registered to wake us, so poll politely.
  const auto help_pause = [] { std::this_thread::yield(); };

  detail::heal_round_robin_body(graph_, hb, w, opts_.threads, stats_, tracing,
                                cycle_start_, emit, wait_ready, resolve,
                                help_pause);
}

}  // namespace djstar::core
