#include "djstar/core/sequential.hpp"

namespace djstar::core {

SequentialExecutor::SequentialExecutor(CompiledGraph& graph, ExecOptions opts)
    : graph_(graph), opts_(opts) {}

void SequentialExecutor::run_cycle() {
  // The walk itself needs no dependency counters, but begin_cycle()
  // also advances the fault-injection cycle index and clears the
  // previous cycle's fault/cancel state — required for the sequential
  // fallback to recover after a faulted cycle.
  graph_.begin_cycle();
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const auto t0 = support::now();
  for (NodeId n : graph_.order()) {
    if (trace != nullptr || flight != nullptr) {
      const double b = support::since_us(t0);
      graph_.execute(n);
      const support::TraceSpan s{b, support::since_us(t0), 0,
                                 static_cast<std::int32_t>(n),
                                 support::SpanKind::kRun};
      if (trace) trace->record(0, s);
      if (flight) flight->record(0, s);
    } else {
      graph_.execute(n);
    }
    stats_.nodes_executed.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace djstar::core
