#include "djstar/core/sequential.hpp"

#include "djstar/core/detail/unit_run.hpp"

namespace djstar::core {

SequentialExecutor::SequentialExecutor(CompiledGraph& graph, ExecOptions opts)
    : graph_(graph), opts_(opts) {}

void SequentialExecutor::run_cycle() {
  // The walk itself needs no dependency counters, but begin_cycle()
  // also advances the fault-injection cycle index and clears the
  // previous cycle's fault/cancel state — required for the sequential
  // fallback to recover after a faulted cycle.
  graph_.begin_cycle();
  support::TraceRecorder* const trace =
      opts_.trace != nullptr && opts_.trace->armed() ? opts_.trace : nullptr;
  support::FlightRecorder* const flight =
      opts_.flight != nullptr && opts_.flight->enabled() ? opts_.flight
                                                         : nullptr;
  const bool tracing = trace != nullptr || flight != nullptr;
  const auto emit = [&](const support::TraceSpan& s) {
    if (trace) trace->record(0, s);
    if (flight) flight->record(0, s);
  };
  const auto t0 = support::now();
  for (UnitId u : graph_.unit_order()) {
    detail::run_unit(graph_, u, 0, stats_, tracing, t0, emit);
  }
}

}  // namespace djstar::core
