#include "djstar/core/sequential.hpp"

namespace djstar::core {

SequentialExecutor::SequentialExecutor(CompiledGraph& graph, ExecOptions opts)
    : graph_(graph), opts_(opts) {}

void SequentialExecutor::run_cycle() {
  // The walk itself needs no dependency counters, but begin_cycle()
  // also advances the fault-injection cycle index and clears the
  // previous cycle's fault/cancel state — required for the sequential
  // fallback to recover after a faulted cycle.
  graph_.begin_cycle();
  const bool tracing = opts_.trace != nullptr && opts_.trace->armed();
  const auto t0 = support::now();
  for (NodeId n : graph_.order()) {
    if (tracing) {
      const double b = support::since_us(t0);
      graph_.execute(n);
      opts_.trace->record(0, {b, support::since_us(t0), 0,
                              static_cast<std::int32_t>(n),
                              support::SpanKind::kRun});
    } else {
      graph_.execute(n);
    }
    stats_.nodes_executed.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace djstar::core
