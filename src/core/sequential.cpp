#include "djstar/core/sequential.hpp"

namespace djstar::core {

SequentialExecutor::SequentialExecutor(CompiledGraph& graph, ExecOptions opts)
    : graph_(graph), opts_(opts) {}

void SequentialExecutor::run_cycle() {
  const bool tracing = opts_.trace != nullptr && opts_.trace->armed();
  const auto t0 = support::now();
  for (NodeId n : graph_.order()) {
    if (tracing) {
      const double b = support::since_us(t0);
      graph_.work(n)();
      opts_.trace->record(0, {b, support::since_us(t0), 0,
                              static_cast<std::int32_t>(n),
                              support::SpanKind::kRun});
    } else {
      graph_.work(n)();
    }
    stats_.nodes_executed.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace djstar::core
