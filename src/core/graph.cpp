#include "djstar/core/graph.hpp"

#include <algorithm>
#include <deque>

#include "djstar/support/assert.hpp"

namespace djstar::core {

NodeId TaskGraph::add_node(std::string name, WorkFn work,
                           std::string section) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), std::move(section), std::move(work),
                        {}, {}});
  return id;
}

void TaskGraph::add_edge(NodeId from, NodeId to) {
  DJSTAR_ASSERT_MSG(from < nodes_.size() && to < nodes_.size(),
                    "add_edge: node id out of range");
  DJSTAR_ASSERT_MSG(from != to, "add_edge: self edges are not allowed");
  auto& succ = nodes_[from].successors;
  if (std::find(succ.begin(), succ.end(), to) != succ.end()) return;
  succ.push_back(to);
  nodes_[to].predecessors.push_back(from);
  ++edge_count_;
}

std::vector<NodeId> TaskGraph::topological_order() const {
  std::vector<std::size_t> indeg(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    indeg[i] = nodes_[i].predecessors.size();
  }
  std::deque<NodeId> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<NodeId>(i));
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (NodeId s : nodes_[n].successors) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() != nodes_.size()) return {};  // cyclic
  return order;
}

bool TaskGraph::is_acyclic() const {
  return nodes_.empty() || !topological_order().empty();
}

std::vector<std::uint32_t> TaskGraph::depths() const {
  const auto order = topological_order();
  DJSTAR_ASSERT_MSG(order.size() == nodes_.size(),
                    "depths() requires an acyclic graph");
  std::vector<std::uint32_t> d(nodes_.size(), 0);
  for (NodeId n : order) {
    for (NodeId p : nodes_[n].predecessors) {
      d[n] = std::max(d[n], d[p] + 1);
    }
  }
  return d;
}

std::vector<NodeId> TaskGraph::levelized_order() const {
  const auto d = depths();
  std::vector<NodeId> order(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    order[i] = static_cast<NodeId>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](NodeId a, NodeId b) { return d[a] < d[b]; });
  return order;
}

std::vector<NodeId> TaskGraph::source_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].predecessors.empty()) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

}  // namespace djstar::core
