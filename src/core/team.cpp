#include "djstar/core/team.hpp"

#include "djstar/core/chaos.hpp"
#include "djstar/core/detail/spin.hpp"
#include "djstar/support/assert.hpp"

namespace djstar::core {

Team::Team(unsigned threads, StartMode mode, SpinPolicy spin, WorkerFn fn)
    : threads_(threads), mode_(mode), spin_(spin), fn_(std::move(fn)) {
  DJSTAR_ASSERT_MSG(threads >= 1, "team needs at least one thread");
  DJSTAR_ASSERT_MSG(static_cast<bool>(fn_), "team needs a worker body");
  active_ = &fn_;
  workers_.reserve(threads - 1);
  for (unsigned id = 1; id < threads; ++id) {
    workers_.emplace_back([this, id] { thread_main(id); });
  }
}

Team::Team(unsigned threads, StartMode mode, SpinPolicy spin)
    : threads_(threads), mode_(mode), spin_(spin) {
  DJSTAR_ASSERT_MSG(threads >= 1, "team needs at least one thread");
  workers_.reserve(threads - 1);
  for (unsigned id = 1; id < threads; ++id) {
    workers_.emplace_back([this, id] { thread_main(id); });
  }
}

Team::~Team() {
  stop_.store(true, std::memory_order_release);
  if (mode_ == StartMode::kCondvar) {
    const std::lock_guard<std::mutex> lk(start_mutex_);
    start_cv_.notify_all();
  } else {
    // Spin-mode workers poll stop_ while waiting; a generation bump is
    // not needed, they observe the flag directly.
  }
  for (auto& w : workers_) w.join();
}

void Team::wait_for_generation(std::uint64_t seen) {
  if (mode_ == StartMode::kSpin) {
    detail::SpinWaiter waiter(spin_);
    while (generation_.load(std::memory_order_acquire) == seen &&
           !stop_.load(std::memory_order_acquire)) {
      waiter.step();
    }
  } else {
    std::unique_lock<std::mutex> lk(start_mutex_);
    start_cv_.wait(lk, [&] {
      return generation_.load(std::memory_order_acquire) != seen ||
             stop_.load(std::memory_order_acquire);
    });
  }
}

void Team::run_body(unsigned id) noexcept {
  // Last-resort net: a worker body must not throw (node exceptions are
  // contained by CompiledGraph::execute), but if one ever does, counting
  // it beats std::terminate taking the whole process down.
  try {
    (*active_)(id);
  } catch (...) {
    body_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Team::thread_main(unsigned id) {
  std::uint64_t seen = 0;
  for (;;) {
    wait_for_generation(seen);
    if (stop_.load(std::memory_order_acquire)) return;
    seen = generation_.load(std::memory_order_acquire);
    chaos::maybe_perturb(chaos::Site::kCycleStart);
    run_body(id);
    const unsigned finished = done_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (finished == threads_ && mode_ == StartMode::kCondvar) {
      const std::lock_guard<std::mutex> lk(done_mutex_);
      done_cv_.notify_one();
    }
  }
}

void Team::run_cycle() {
  DJSTAR_ASSERT_MSG(static_cast<bool>(fn_),
                    "run_cycle() without a body: use run_cycle(fn)");
  active_ = &fn_;
  dispatch_cycle();
}

void Team::run_cycle(const WorkerFn& fn) {
  DJSTAR_ASSERT_MSG(static_cast<bool>(fn), "submitted body must be callable");
  active_ = &fn;
  dispatch_cycle();
  // Restore the owned body (if any) so a later run_cycle() still works
  // and the dangling submitted pointer can never be observed.
  active_ = fn_ ? &fn_ : nullptr;
}

void Team::dispatch_cycle() {
  done_.store(0, std::memory_order_relaxed);
  if (mode_ == StartMode::kCondvar) {
    {
      const std::lock_guard<std::mutex> lk(start_mutex_);
      generation_.fetch_add(1, std::memory_order_acq_rel);
    }
    start_cv_.notify_all();
  } else {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  // The caller is worker 0.
  chaos::maybe_perturb(chaos::Site::kCycleStart);
  run_body(0);
  const unsigned finished = done_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (finished == threads_) return;

  if (mode_ == StartMode::kSpin) {
    detail::SpinWaiter waiter(spin_);
    while (done_.load(std::memory_order_acquire) != threads_) {
      waiter.step();
    }
  } else {
    std::unique_lock<std::mutex> lk(done_mutex_);
    done_cv_.wait(lk, [&] {
      return done_.load(std::memory_order_acquire) == threads_;
    });
  }
}

}  // namespace djstar::core
