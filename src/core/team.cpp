#include "djstar/core/team.hpp"

#include <chrono>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "djstar/core/chaos.hpp"
#include "djstar/core/detail/spin.hpp"
#include "djstar/support/assert.hpp"

namespace djstar::core {
namespace {

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int32_t current_tid() noexcept {
#if defined(__linux__)
  return static_cast<std::int32_t>(::syscall(SYS_gettid));
#else
  return 0;
#endif
}

}  // namespace

Team::Team(unsigned threads, StartMode mode, SpinPolicy spin, WorkerFn fn,
           TeamHealConfig heal)
    : threads_(threads), mode_(mode), spin_(spin), fn_(std::move(fn)),
      heal_(heal) {
  DJSTAR_ASSERT_MSG(threads >= 1, "team needs at least one thread");
  DJSTAR_ASSERT_MSG(static_cast<bool>(fn_), "team needs a worker body");
  active_ = &fn_;
  spawn_workers();
}

Team::Team(unsigned threads, StartMode mode, SpinPolicy spin,
           TeamHealConfig heal)
    : threads_(threads), mode_(mode), spin_(spin), heal_(heal) {
  DJSTAR_ASSERT_MSG(threads >= 1, "team needs at least one thread");
  spawn_workers();
}

void Team::spawn_workers() {
  if (healing()) health_.configure(threads_);
  tids_ = std::make_unique<std::atomic<std::int32_t>[]>(threads_);
  for (unsigned id = 0; id < threads_; ++id) {
    tids_[id].store(0, std::memory_order_relaxed);
  }
  // Worker 0 is the caller of run_cycle(), conventionally the thread
  // constructing the team.
  tids_[0].store(current_tid(), std::memory_order_relaxed);
  workers_.reserve(threads_ - 1);
  for (unsigned id = 1; id < threads_; ++id) {
    workers_.emplace_back([this, id] { thread_main(id, 0); });
  }
  if (healing()) {
    medic_ = std::thread([this] { medic_main(); });
  }
}

Team::~Team() {
  // Stop the medic first: a quarantine racing the shutdown notify could
  // otherwise touch a worker slot while we are joining the thread.
  if (medic_.joinable()) {
    {
      const std::lock_guard<std::mutex> lk(medic_mutex_);
      medic_stop_ = true;
    }
    medic_cv_.notify_all();
    medic_.join();
  }
  stop_.store(true, std::memory_order_release);
  if (mode_ == StartMode::kCondvar) {
    const std::lock_guard<std::mutex> lk(start_mutex_);
    start_cv_.notify_all();
  } else {
    // Spin-mode workers poll stop_ while waiting; a generation bump is
    // not needed, they observe the flag directly.
  }
  // Retired workers were already joined by heal_maintenance(); a thread
  // wedged by kStallForever exits its wedge loop on stop_ and returns.
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void Team::set_rescue(RescueFn rescue) {
  rescue_owned_ = std::move(rescue);
  rescue_.store(rescue_owned_ ? &rescue_owned_ : nullptr,
                std::memory_order_release);
}

HealStats Team::heal_stats() const noexcept {
  HealStats s;
  s.quarantines = quarantines_.load(std::memory_order_relaxed);
  s.respawns = respawns_.load(std::memory_order_relaxed);
  s.rescues = health_.rescued_units();
  s.worker_faults = health_.worker_faults();
  s.live = live_threads();
  s.threads = threads_;
  return s;
}

void Team::wait_for_generation(std::uint64_t seen) {
  if (mode_ == StartMode::kSpin) {
    detail::SpinWaiter waiter(spin_);
    while (generation_.load(std::memory_order_acquire) == seen &&
           !stop_.load(std::memory_order_acquire)) {
      waiter.step();
    }
  } else {
    std::unique_lock<std::mutex> lk(start_mutex_);
    start_cv_.wait(lk, [&] {
      return generation_.load(std::memory_order_acquire) != seen ||
             stop_.load(std::memory_order_acquire);
    });
  }
}

void Team::run_body(unsigned id) noexcept {
  // Last-resort net: a worker body must not throw (node exceptions are
  // contained by CompiledGraph::execute), but if one ever does, counting
  // it beats std::terminate taking the whole process down.
  try {
    (*active_)(id);
  } catch (...) {
    body_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Team::credit_done() {
  const unsigned finished = done_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (finished == threads_ && mode_ == StartMode::kCondvar) {
    const std::lock_guard<std::mutex> lk(done_mutex_);
    done_cv_.notify_one();
  }
}

std::int32_t Team::worker_tid(unsigned w) const noexcept {
  return w < threads_ ? tids_[w].load(std::memory_order_relaxed) : 0;
}

void Team::thread_main(unsigned id, std::uint64_t seen) {
  tids_[id].store(current_tid(), std::memory_order_relaxed);
  const bool heal = healing();
  if (heal) HealthBoard::bind(&health_, id, &stop_);
  for (;;) {
    wait_for_generation(seen);
    if (stop_.load(std::memory_order_acquire)) return;
    seen = generation_.load(std::memory_order_acquire);
    chaos::maybe_perturb(chaos::Site::kCycleStart);
    if (heal) {
      HealthBoard::clear_abandoned();
      health_.beat(id);
    }
    run_body(id);
    if (heal) {
      // kActive -> kFinished arbitrates our done credit against the
      // medic's quarantine. Losing means the medic already credited the
      // slot (and rescued our remaining work): retire this thread; the
      // next heal_maintenance() joins it (and respawns a replacement in
      // kRespawn mode). A worker retired by a false-positive quarantine
      // is equally fine — the claim protocol made its extra work safe.
      if (!health_.try_transition(id, WorkerState::kActive,
                                  WorkerState::kFinished)) {
        health_.mark_exited(id);
        HealthBoard::unbind();
        return;
      }
    }
    credit_done();
  }
}

void Team::run_cycle() {
  DJSTAR_ASSERT_MSG(static_cast<bool>(fn_),
                    "run_cycle() without a body: use run_cycle(fn)");
  active_ = &fn_;
  dispatch_cycle();
}

void Team::run_cycle(const WorkerFn& fn) {
  DJSTAR_ASSERT_MSG(static_cast<bool>(fn), "submitted body must be callable");
  active_ = &fn;
  dispatch_cycle();
  // Restore the owned body (if any) so a later run_cycle() still works
  // and the dangling submitted pointer can never be observed.
  active_ = fn_ ? &fn_ : nullptr;
}

void Team::run_cycle(const WorkerFn& fn, const RescueFn& rescue) {
  // Publish the hosted rescue hook for the duration of this cycle. The
  // medic dereferences it only while in_cycle_, i.e. strictly inside
  // this call, so the reference outlives every use.
  rescue_.store(rescue ? &rescue : nullptr, std::memory_order_release);
  run_cycle(fn);
  rescue_.store(rescue_owned_ ? &rescue_owned_ : nullptr,
                std::memory_order_release);
}

void Team::dispatch_cycle() {
  unsigned pre_credited = 0;
  if (healing()) {
    heal_maintenance();
    // Quarantined slots (kQuarantine mode, or a respawn still pending)
    // take no part in this cycle; credit their barrier slots up front.
    pre_credited = health_.dead();
    HealthBoard::bind(&health_, 0, &stop_);
    HealthBoard::clear_abandoned();
    health_.beat(0);
    cycle_armed_ns_.store(steady_now_ns(), std::memory_order_relaxed);
    done_.store(pre_credited, std::memory_order_relaxed);
    in_cycle_.store(true, std::memory_order_release);
  } else {
    done_.store(0, std::memory_order_relaxed);
  }
  if (mode_ == StartMode::kCondvar) {
    {
      const std::lock_guard<std::mutex> lk(start_mutex_);
      generation_.fetch_add(1, std::memory_order_acq_rel);
    }
    start_cv_.notify_all();
  } else {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  // The caller is worker 0.
  chaos::maybe_perturb(chaos::Site::kCycleStart);
  run_body(0);
  if (healing()) {
    // Always succeeds: the medic never quarantines worker 0.
    health_.try_transition(0, WorkerState::kActive, WorkerState::kFinished);
  }
  const unsigned finished = done_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (finished != threads_) {
    if (mode_ == StartMode::kSpin) {
      detail::SpinWaiter waiter(spin_);
      while (done_.load(std::memory_order_acquire) != threads_) {
        waiter.step();
      }
    } else {
      std::unique_lock<std::mutex> lk(done_mutex_);
      done_cv_.wait(lk, [&] {
        return done_.load(std::memory_order_acquire) == threads_;
      });
    }
  }
  if (healing()) {
    in_cycle_.store(false, std::memory_order_release);
    await_retirements();
    HealthBoard::unbind();
  }
}

void Team::await_retirements() {
  // A slot the medic credited can still have a live thread inside this
  // cycle's body: a false-positive quarantine keeps working (the claim
  // protocol makes that safe), and a wedged worker needs a moment to
  // observe its state change. The caller is about to hand control back
  // to the executor, whose next run_cycle() resets per-cycle state
  // (executed counters, deques, the orphan buffer) — a straggler racing
  // that reset could resurrect into the new cycle mid-teardown and
  // corrupt it (e.g. an owner-side pop against Deque::clear()), losing a
  // unit and hanging the team. Hold the cycle boundary until every
  // quarantined slot's thread has actually left the body. Bounded: the
  // old cycle's exit condition (all units executed) still holds here, so
  // live stragglers unwind within one bounded-wait period, wedge loops
  // exit on the state change, and aborted workers are already returning.
  if (health_.dead() == 0) return;  // dead() > 0 iff a slot is quarantined
  for (unsigned id = 1; id < threads_; ++id) {
    if (health_.state(id) != WorkerState::kQuarantined) continue;
    while (!health_.exited(id)) {
      std::this_thread::sleep_for(std::chrono::microseconds(10));
    }
  }
}

// ---- medic -----------------------------------------------------------------

void Team::medic_main() {
  std::vector<std::uint64_t> last_beats(threads_, 0);
  std::vector<double> last_progress_us(threads_, 0.0);
  std::uint64_t seen_generation = 0;
  const auto interval = std::chrono::duration<double, std::micro>(
      heal_.check_interval_us);
  std::unique_lock<std::mutex> lk(medic_mutex_);
  for (;;) {
    medic_cv_.wait_for(lk, interval, [&] { return medic_stop_; });
    if (medic_stop_) return;
    lk.unlock();
    medic_scan(last_beats, last_progress_us, seen_generation);
    lk.lock();
  }
}

void Team::medic_scan(std::vector<std::uint64_t>& last_beats,
                      std::vector<double>& last_progress_us,
                      std::uint64_t& seen_generation) {
  if (!in_cycle_.load(std::memory_order_acquire)) return;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (gen != seen_generation) {
    // New cycle: re-baseline every worker's progress clock.
    seen_generation = gen;
    for (unsigned w = 1; w < threads_; ++w) {
      last_beats[w] = health_.beats(w);
      last_progress_us[w] = 0.0;
    }
  }
  const double cycle_age_us =
      static_cast<double>(steady_now_ns() -
                          cycle_armed_ns_.load(std::memory_order_relaxed)) /
      1000.0;

  for (unsigned w = 1; w < threads_; ++w) {
    const WorkerState st = health_.state(w);
    if (st == WorkerState::kAborted) {
      // Self-reported death (kWorkerAbort): no budget to wait out.
      quarantine(w);
      continue;
    }
    if (st != WorkerState::kActive) continue;
    const std::uint64_t b = health_.beats(w);
    if (b != last_beats[w]) {
      last_beats[w] = b;
      last_progress_us[w] = cycle_age_us;
      continue;
    }
    if (cycle_age_us - last_progress_us[w] > heal_.heartbeat_budget_us) {
      quarantine(w);
    }
  }
}

void Team::quarantine(unsigned w) {
  // Shrink the maintenance-vs-scan race window: only quarantine while a
  // cycle is genuinely in flight (a worker parked between cycles does
  // not beat, and must not be punished for it).
  if (!in_cycle_.load(std::memory_order_acquire)) return;
  const WorkerState st = health_.state(w);
  bool moved = false;
  if (st == WorkerState::kActive) {
    moved = health_.try_transition(w, WorkerState::kActive,
                                   WorkerState::kQuarantined);
  } else if (st == WorkerState::kAborted) {
    moved = health_.try_transition(w, WorkerState::kAborted,
                                   WorkerState::kQuarantined);
  }
  if (!moved) return;  // the worker finished in the race: nothing to heal

  health_.add_dead(1);
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  // Rescue before crediting: the victim's unfinished units must be
  // visible to the survivors before the team can consider the slot
  // settled. (Cycle completion itself is gated on units_done(), so this
  // ordering is about promptness, not correctness.)
  if (const RescueFn* r = rescue_.load(std::memory_order_acquire)) {
    if (*r) (*r)(w);
  }
  health_.bump_epoch();
  credit_done();
}

void Team::heal_maintenance() {
  for (unsigned id = 1; id < threads_; ++id) {
    switch (health_.state(id)) {
      case WorkerState::kFinished:
        health_.set_state(id, WorkerState::kActive);
        break;
      case WorkerState::kQuarantined: {
        // The worker retires at its next cycle boundary (its wedge loop
        // exits once the state leaves kActive); join only after it has
        // marked itself exited, never blocking the cycle on it.
        if (!health_.exited(id)) break;
        std::thread& th = workers_[id - 1];
        if (th.joinable()) th.join();
        if (heal_.mode == HealMode::kRespawn) {
          health_.clear_exited(id);
          health_.set_state(id, WorkerState::kActive);
          health_.add_dead(-1);
          // Seed with the current generation: the replacement joins at
          // the bump this dispatch is about to publish, never mid-cycle.
          const std::uint64_t seen =
              generation_.load(std::memory_order_relaxed);
          th = std::thread([this, id, seen] { thread_main(id, seen); });
          respawns_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case WorkerState::kActive:
      case WorkerState::kAborted:
        // kActive: a respawn from a previous maintenance that has not
        // run yet. kAborted is unreachable here: the barrier released,
        // so every non-finished slot was credited by the medic, which
        // quarantines before crediting.
        break;
    }
  }
}

}  // namespace djstar::core
