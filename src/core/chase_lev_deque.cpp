#include "djstar/core/chase_lev_deque.hpp"

#include "djstar/core/chaos.hpp"

// ThreadSanitizer does not model std::atomic_thread_fence, so the
// Lê et al. fence that publishes a pushed element is invisible to it
// and every steal of that element reports a false race on the payload.
// Under TSan the same happens-before edge is expressed as a release
// store on bottom_ (thieves acquire-load it); hardware builds keep the
// paper-faithful fence + relaxed store.
#if defined(__SANITIZE_THREAD__)
#define DJSTAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DJSTAR_TSAN 1
#endif
#endif
#ifndef DJSTAR_TSAN
#define DJSTAR_TSAN 0
#endif

namespace djstar::core {
namespace {

std::size_t round_pow2(std::size_t n) {
  std::size_t cap = 64;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

ChaseLevDeque::ChaseLevDeque(std::size_t capacity_hint)
    : array_(new Array(round_pow2(capacity_hint))) {}

ChaseLevDeque::~ChaseLevDeque() { delete array_.load(std::memory_order_relaxed); }

ChaseLevDeque::Array* ChaseLevDeque::grow(Array* a, std::int64_t bottom,
                                          std::int64_t top) {
  auto* bigger = new Array(a->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) bigger->put(i, a->get(i));
  graveyard_.emplace_back(a);  // keep old array alive for racing thieves
  array_.store(bigger, std::memory_order_release);
  return bigger;
}

void ChaseLevDeque::push(Item x) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Array* a = array_.load(std::memory_order_relaxed);
  if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
    a = grow(a, b, t);
  }
  chaos::maybe_perturb(chaos::Site::kDequePush);
  a->put(b, x);
#if DJSTAR_TSAN
  bottom_.store(b + 1, std::memory_order_release);
#else
  std::atomic_thread_fence(std::memory_order_release);
  bottom_.store(b + 1, std::memory_order_relaxed);
#endif
}

ChaseLevDeque::Item ChaseLevDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Array* a = array_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  chaos::maybe_perturb(chaos::Site::kDequePop);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);

  if (t > b) {
    // Deque was empty: restore.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return kEmpty;
  }

  Item x = a->get(b);
  if (t == b) {
    // Last element: race against thieves via CAS on top.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      x = kEmpty;  // a thief got it
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return x;
}

ChaseLevDeque::Item ChaseLevDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return kEmpty;

  Array* a = array_.load(std::memory_order_consume);
  const Item x = a->get(t);
  chaos::maybe_perturb(chaos::Site::kDequeSteal);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return kAbort;  // lost to the owner or another thief
  }
  return x;
}

std::size_t ChaseLevDeque::size_approx() const noexcept {
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  return b > t ? static_cast<std::size_t>(b - t) : 0;
}

void ChaseLevDeque::clear() noexcept {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  top_.store(b, std::memory_order_release);
}

}  // namespace djstar::core
