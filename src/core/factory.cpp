#include "djstar/core/factory.hpp"

#include "djstar/core/busy_wait.hpp"
#include "djstar/core/sequential.hpp"
#include "djstar/core/shared_queue.hpp"
#include "djstar/core/sleep.hpp"

namespace djstar::core {

std::string_view to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::kSequential: return "sequential";
    case Strategy::kBusyWait: return "busy";
    case Strategy::kSleep: return "sleep";
    case Strategy::kWorkStealing: return "ws";
    case Strategy::kSharedQueue: return "shared";
  }
  return "?";
}

std::optional<Strategy> parse_strategy(std::string_view name) noexcept {
  if (name == "sequential" || name == "seq") return Strategy::kSequential;
  if (name == "busy" || name == "busy-waiting") return Strategy::kBusyWait;
  if (name == "sleep" || name == "thread-sleeping") return Strategy::kSleep;
  if (name == "ws" || name == "work-stealing") return Strategy::kWorkStealing;
  if (name == "shared" || name == "shared-queue") return Strategy::kSharedQueue;
  return std::nullopt;
}

std::unique_ptr<Executor> make_executor(Strategy s, CompiledGraph& graph,
                                        ExecOptions opts,
                                        WorkStealingOptions ws) {
  switch (s) {
    case Strategy::kSequential:
      return std::make_unique<SequentialExecutor>(graph, opts);
    case Strategy::kBusyWait:
      return std::make_unique<BusyWaitExecutor>(graph, opts);
    case Strategy::kSleep:
      return std::make_unique<SleepExecutor>(graph, opts);
    case Strategy::kWorkStealing:
      return std::make_unique<WorkStealingExecutor>(graph, opts, ws);
    case Strategy::kSharedQueue:
      return std::make_unique<SharedQueueExecutor>(graph, opts);
  }
  return nullptr;
}

}  // namespace djstar::core
