#include "djstar/core/graphviz.hpp"

#include <map>
#include <sstream>
#include <vector>

namespace djstar::core {
namespace {

std::string escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const TaskGraph& g, const DotOptions& opts) {
  std::ostringstream os;
  os << "digraph " << opts.graph_name << " {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";

  if (opts.cluster_sections) {
    std::map<std::string, std::vector<NodeId>> sections;
    for (NodeId n = 0; n < g.node_count(); ++n) {
      sections[std::string(g.section(n))].push_back(n);
    }
    int idx = 0;
    for (const auto& [section, nodes] : sections) {
      os << "  subgraph cluster_" << idx++ << " {\n";
      os << "    label=\"" << escape(section) << "\";\n";
      for (NodeId n : nodes) {
        os << "    n" << n << " [label=\"" << escape(g.name(n)) << "\"];\n";
      }
      os << "  }\n";
    }
  } else {
    for (NodeId n = 0; n < g.node_count(); ++n) {
      os << "  n" << n << " [label=\"" << escape(g.name(n)) << "\"];\n";
    }
  }

  if (opts.rank_by_depth && g.is_acyclic() && g.node_count() > 0) {
    const auto depths = g.depths();
    std::map<std::uint32_t, std::vector<NodeId>> levels;
    for (NodeId n = 0; n < g.node_count(); ++n) levels[depths[n]].push_back(n);
    for (const auto& [depth, nodes] : levels) {
      os << "  { rank=same;";
      for (NodeId n : nodes) os << " n" << n << ";";
      os << " }\n";
    }
  }

  for (NodeId n = 0; n < g.node_count(); ++n) {
    for (NodeId s : g.successors(n)) {
      os << "  n" << n << " -> n" << s << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace djstar::core
