#include "djstar/core/health.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

namespace djstar::core {
namespace {

struct Binding {
  HealthBoard* board = nullptr;
  unsigned worker = 0;
  const std::atomic<bool>* stop = nullptr;
  bool abandoned = false;
};

thread_local Binding tl_binding;

}  // namespace

const char* to_string(HealMode m) noexcept {
  switch (m) {
    case HealMode::kOff: return "off";
    case HealMode::kQuarantine: return "quarantine";
    case HealMode::kRespawn: return "respawn";
  }
  return "?";
}

const char* to_string(WorkerState s) noexcept {
  switch (s) {
    case WorkerState::kActive: return "active";
    case WorkerState::kFinished: return "finished";
    case WorkerState::kAborted: return "aborted";
    case WorkerState::kQuarantined: return "quarantined";
  }
  return "?";
}

HealMode parse_heal_mode(std::string_view text) {
  if (text == "off") return HealMode::kOff;
  if (text == "quarantine") return HealMode::kQuarantine;
  if (text == "respawn") return HealMode::kRespawn;
  throw std::invalid_argument("invalid heal mode \"" + std::string(text) +
                              "\" (expected off|quarantine|respawn)");
}

HealMode heal_mode_from_env(HealMode fallback, const char* env_var) {
  const char* raw = std::getenv(env_var);
  if (raw == nullptr) return fallback;
  // Empty is an explicit-but-meaningless request: throw, like
  // DJSTAR_THREADS= does, instead of silently picking a default.
  return parse_heal_mode(raw);
}

void HealthBoard::configure(unsigned width) {
  slots_ = std::make_unique<Slot[]>(width);
  width_ = width;
  dead_.store(0, std::memory_order_relaxed);
}

void HealthBoard::bind(HealthBoard* board, unsigned w,
                       const std::atomic<bool>* stop) noexcept {
  tl_binding = Binding{board, w, stop, false};
}

void HealthBoard::unbind() noexcept { tl_binding = Binding{}; }

bool HealthBoard::abandoned() noexcept { return tl_binding.abandoned; }

void HealthBoard::clear_abandoned() noexcept { tl_binding.abandoned = false; }

void HealthBoard::on_worker_fault(chaos::FaultKind k) noexcept {
  Binding& b = tl_binding;
  if (b.board == nullptr || b.worker == 0) return;
  b.board->worker_faults_.fetch_add(1, std::memory_order_relaxed);

  if (k == chaos::FaultKind::kWorkerAbort) {
    // The thread "dies": flag the slot so the medic credits our barrier
    // slot, then unwind out of the strategy body via abandoned().
    b.board->try_transition(b.worker, WorkerState::kActive,
                            WorkerState::kAborted);
    b.abandoned = true;
    return;
  }

  if (k == chaos::FaultKind::kStallForever) {
    // Wedge: no heartbeats, no progress — the shape of a blocking
    // syscall or priority inversion. Sleeping (not spinning) keeps the
    // wedge cheap and, crucially, exits when the medic quarantines the
    // slot or the team shuts down, so the thread stays joinable.
    while (b.board->state(b.worker) == WorkerState::kActive &&
           !(b.stop != nullptr &&
             b.stop->load(std::memory_order_acquire))) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    b.abandoned = true;
  }
}

}  // namespace djstar::core
