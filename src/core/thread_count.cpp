#include "djstar/core/thread_count.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

namespace djstar::core {
namespace {

[[noreturn]] void bad_value(std::string_view text, const char* why) {
  throw std::invalid_argument("invalid thread count '" + std::string(text) +
                              "': " + why +
                              " (expected a non-negative integer; 0 = auto)");
}

}  // namespace

unsigned parse_thread_count(std::string_view text) {
  // Trim surrounding whitespace so "DJSTAR_THREADS= 4 " still works.
  std::size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  const std::string_view t = text.substr(b, e - b);

  if (t.empty()) bad_value(text, "empty");
  if (t[0] == '-') bad_value(text, "negative");
  if (t[0] == '+') bad_value(text, "sign prefix not accepted");

  unsigned long long v = 0;
  for (char c : t) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      bad_value(text, "not a number");
    }
    v = v * 10 + static_cast<unsigned long long>(c - '0');
    if (v > 10ULL * kMaxThreads) break;  // avoid overflow; clamps below
  }
  if (v > kMaxThreads) return kMaxThreads;
  return static_cast<unsigned>(v);
}

unsigned resolve_thread_count(unsigned requested, const char* env_var) {
  unsigned n = requested;
  if (env_var != nullptr) {
    if (const char* env = std::getenv(env_var)) {
      n = parse_thread_count(env);
    }
  }
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;  // the standard allows "unknown"
  }
  if (n > kMaxThreads) n = kMaxThreads;
  return n;
}

}  // namespace djstar::core
