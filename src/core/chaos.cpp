#include "djstar/core/chaos.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "djstar/core/detail/spin.hpp"
#include "djstar/support/rng.hpp"

namespace djstar::core::chaos {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_seed{0};
std::atomic<std::uint32_t> g_intensity{0};
// Bumped on every enable() so existing threads reseed their streams.
std::atomic<std::uint32_t> g_epoch{0};
std::atomic<std::uint64_t> g_perturbations{0};
std::atomic<std::uint64_t> g_site_hits[kSiteCount]{};

// Stable per-thread index: assigned once, on the thread's first visit.
std::atomic<std::uint32_t> g_next_thread_index{0};

std::uint32_t thread_index() noexcept {
  thread_local const std::uint32_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

struct ThreadStream {
  std::uint32_t epoch = ~0u;
  support::Xoshiro256 rng{0};
};

support::Xoshiro256& stream() noexcept {
  thread_local ThreadStream ts;
  const std::uint32_t epoch = g_epoch.load(std::memory_order_acquire);
  if (ts.epoch != epoch) {
    ts.epoch = epoch;
    // Distinct, reproducible stream per (seed, thread index).
    ts.rng = support::Xoshiro256(g_seed.load(std::memory_order_acquire) +
                                 0x9e3779b97f4a7c15ULL *
                                     (1 + std::uint64_t{thread_index()}));
  }
  return ts.rng;
}

}  // namespace

const char* to_string(Site s) noexcept {
  switch (s) {
    case Site::kDependencyCheck: return "dependency-check";
    case Site::kBeforeWait: return "before-wait";
    case Site::kBeforeNotify: return "before-notify";
    case Site::kDequePush: return "deque-push";
    case Site::kDequePop: return "deque-pop";
    case Site::kDequeSteal: return "deque-steal";
    case Site::kNodeReady: return "node-ready";
    case Site::kCycleStart: return "cycle-start";
  }
  return "?";
}

void enable(std::uint64_t seed, std::uint32_t intensity_permille) {
  g_seed.store(seed, std::memory_order_relaxed);
  g_intensity.store(intensity_permille > 1000 ? 1000 : intensity_permille,
                    std::memory_order_relaxed);
  reset_counters();
  g_epoch.fetch_add(1, std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
}

void disable() noexcept { g_enabled.store(false, std::memory_order_release); }

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

std::uint64_t perturbations() noexcept {
  return g_perturbations.load(std::memory_order_relaxed);
}

std::uint64_t site_hits(Site s) noexcept {
  return g_site_hits[static_cast<std::size_t>(s)].load(
      std::memory_order_relaxed);
}

void reset_counters() noexcept {
  g_perturbations.store(0, std::memory_order_relaxed);
  for (auto& h : g_site_hits) h.store(0, std::memory_order_relaxed);
}

void maybe_perturb(Site s) noexcept {
  if (!g_enabled.load(std::memory_order_relaxed)) return;

  g_site_hits[static_cast<std::size_t>(s)].fetch_add(
      1, std::memory_order_relaxed);

  const std::uint64_t draw = stream().next();
  if (draw % 1000 >= g_intensity.load(std::memory_order_relaxed)) return;
  g_perturbations.fetch_add(1, std::memory_order_relaxed);

  // Mix of delay magnitudes: most are sub-microsecond (pause bursts,
  // yields) to reorder instructions within a race window; a tail of
  // microsecond sleeps forces full OS-scheduler swaps, which is what
  // actually exposes lost wakeups on an oversubscribed machine.
  const std::uint64_t kind = (draw >> 32) & 7;
  if (kind < 3) {
    const std::uint32_t pauses = 1 + ((draw >> 40) & 63);
    for (std::uint32_t i = 0; i < pauses; ++i) detail::cpu_pause();
  } else if (kind < 6) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(
        std::chrono::microseconds(1 + ((draw >> 40) & 31)));
  }
}

}  // namespace djstar::core::chaos
