#include "djstar/core/compiled_graph.hpp"

#include <algorithm>

#include "djstar/support/assert.hpp"

namespace djstar::core {

CompiledGraph::CompiledGraph(const TaskGraph& g, QueueOrder order_mode) {
  const std::size_t n = g.node_count();
  DJSTAR_ASSERT_MSG(n > 0, "cannot compile an empty graph");
  DJSTAR_ASSERT_MSG(g.is_acyclic(), "task graph must be acyclic");

  names_.reserve(n);
  sections_.reserve(n);
  works_.reserve(n);
  indeg_.resize(n);
  section_idx_.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    DJSTAR_ASSERT_MSG(static_cast<bool>(g.work(i)),
                      "every node needs a work function");
    names_.emplace_back(g.name(i));
    sections_.emplace_back(g.section(i));
    works_.push_back(g.work(i));
    indeg_[i] = static_cast<std::uint32_t>(g.in_degree(i));

    const std::string sec(g.section(i));
    auto it = std::find(section_labels_.begin(), section_labels_.end(), sec);
    if (it == section_labels_.end()) {
      section_idx_[i] = static_cast<std::uint32_t>(section_labels_.size());
      section_labels_.push_back(sec);
    } else {
      section_idx_[i] =
          static_cast<std::uint32_t>(it - section_labels_.begin());
    }
  }

  // CSR successor lists.
  succ_off_.resize(n + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    succ_off_[i + 1] = succ_off_[i] + g.successors(i).size();
  }
  succ_list_.resize(succ_off_[n]);
  for (NodeId i = 0; i < n; ++i) {
    std::size_t off = succ_off_[i];
    for (NodeId s : g.successors(i)) succ_list_[off++] = s;
  }

  depth_ = g.depths();
  for (auto d : depth_) max_depth_ = std::max(max_depth_, d);
  order_ = order_mode == QueueOrder::kLevelized ? g.levelized_order()
                                                : g.topological_order();
  source_count_ = 0;
  while (source_count_ < order_.size() && depth_[order_[source_count_]] == 0) {
    ++source_count_;
  }

  cycle_ = std::make_unique<CycleState[]>(n);
  begin_cycle();
}

void CompiledGraph::begin_cycle() noexcept {
  const std::size_t n = node_count();
  for (std::size_t i = 0; i < n; ++i) {
    cycle_[i].pending.store(static_cast<std::int32_t>(indeg_[i]),
                            std::memory_order_relaxed);
    cycle_[i].waiter.store(-1, std::memory_order_relaxed);
  }
  // Publish the reset before any worker reads the counters.
  std::atomic_thread_fence(std::memory_order_release);
}

}  // namespace djstar::core
