#include "djstar/core/compiled_graph.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "djstar/support/assert.hpp"
#include "djstar/support/time.hpp"

namespace djstar::core {

CompiledGraph::CompiledGraph(const TaskGraph& g, QueueOrder order_mode) {
  const std::size_t n = g.node_count();
  DJSTAR_ASSERT_MSG(n > 0, "cannot compile an empty graph");
  DJSTAR_ASSERT_MSG(g.is_acyclic(), "task graph must be acyclic");

  names_.reserve(n);
  sections_.reserve(n);
  works_.reserve(n);
  indeg_.resize(n);
  section_idx_.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    DJSTAR_ASSERT_MSG(static_cast<bool>(g.work(i)),
                      "every node needs a work function");
    names_.emplace_back(g.name(i));
    sections_.emplace_back(g.section(i));
    works_.push_back(g.work(i));
    indeg_[i] = static_cast<std::uint32_t>(g.in_degree(i));

    const std::string sec(g.section(i));
    auto it = std::find(section_labels_.begin(), section_labels_.end(), sec);
    if (it == section_labels_.end()) {
      section_idx_[i] = static_cast<std::uint32_t>(section_labels_.size());
      section_labels_.push_back(sec);
    } else {
      section_idx_[i] =
          static_cast<std::uint32_t>(it - section_labels_.begin());
    }
  }

  // CSR successor lists.
  succ_off_.resize(n + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    succ_off_[i + 1] = succ_off_[i] + g.successors(i).size();
  }
  succ_list_.resize(succ_off_[n]);
  for (NodeId i = 0; i < n; ++i) {
    std::size_t off = succ_off_[i];
    for (NodeId s : g.successors(i)) succ_list_[off++] = s;
  }

  depth_ = g.depths();
  for (auto d : depth_) max_depth_ = std::max(max_depth_, d);
  order_ = order_mode == QueueOrder::kLevelized ? g.levelized_order()
                                                : g.topological_order();
  source_count_ = 0;
  while (source_count_ < order_.size() && depth_[order_[source_count_]] == 0) {
    ++source_count_;
  }

  cycle_ = std::make_unique<CycleState[]>(n);
  masked_.assign(n, 0);
  bypass_.resize(n);
  fault_eligible_.assign(n, 0);
  begin_cycle();
}

void CompiledGraph::begin_cycle() noexcept {
  const std::size_t n = node_count();
  for (std::size_t i = 0; i < n; ++i) {
    cycle_[i].pending.store(static_cast<std::int32_t>(indeg_[i]),
                            std::memory_order_relaxed);
    cycle_[i].waiter.store(-1, std::memory_order_relaxed);
  }
  ++cycle_index_;
  fault_node_.store(-1, std::memory_order_relaxed);
  skipped_.store(0, std::memory_order_relaxed);
  bypassed_.store(0, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  abort_cycle_.store(false, std::memory_order_relaxed);
  // Publish the reset before any worker reads the counters.
  std::atomic_thread_fence(std::memory_order_release);
}

void CompiledGraph::arm_faults(const chaos::FaultPlan& plan) {
  fault_plan_ = plan;
  if (plan.targets.empty()) {
    fault_eligible_.assign(node_count(), 1);
  } else {
    fault_eligible_.assign(node_count(), 0);
    for (NodeId t : plan.targets) {
      if (t < node_count()) fault_eligible_[t] = 1;
    }
  }
  faults_armed_ = plan.any();
}

void CompiledGraph::record_fault(NodeId n, const char* what) noexcept {
  std::int32_t expected = -1;
  if (fault_node_.compare_exchange_strong(expected, static_cast<std::int32_t>(n),
                                          std::memory_order_acq_rel)) {
    // Sole writer of the message this cycle; fixed buffer, no allocation.
    std::strncpy(fault_what_, what ? what : "", sizeof(fault_what_) - 1);
    fault_what_[sizeof(fault_what_) - 1] = '\0';
  }
  abort_cycle_.store(true, std::memory_order_release);
}

void CompiledGraph::execute(NodeId n) noexcept {
  if (abort_cycle_.load(std::memory_order_acquire)) {
    // Failed/cancelled cycle: drain. Dependencies still resolve in the
    // caller, so every executor's protocol completes without running
    // the remaining work.
    skipped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (masked_[n]) {
    skipped_.fetch_add(1, std::memory_order_relaxed);
    if (bypass_[n]) {
      bypassed_.fetch_add(1, std::memory_order_relaxed);
      try {
        bypass_[n]();
      } catch (const std::exception& e) {
        record_fault(n, e.what());
      } catch (...) {
        record_fault(n, "unknown exception (bypass)");
      }
    }
    return;
  }

  chaos::FaultAction act{};
  if (faults_armed_ && fault_eligible_[n]) {
    act = chaos::decide(fault_plan_, cycle_index_, n);
    if (act.kind != chaos::FaultKind::kNone) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      if (journal_ != nullptr) {
        journal_->push(support::EventKind::kFaultInjected, cycle_index_,
                       static_cast<std::int64_t>(n),
                       static_cast<std::int64_t>(act.kind), act.duration_us);
      }
    }
  }

  try {
    if (act.kind == chaos::FaultKind::kThrow) throw chaos::InjectedFault(n);
    works_[n]();
  } catch (const std::exception& e) {
    record_fault(n, e.what());
    return;
  } catch (...) {
    record_fault(n, "unknown exception");
    return;
  }

  switch (act.kind) {
    case chaos::FaultKind::kLatencySpike:
      support::spin_for_us(act.duration_us);
      break;
    case chaos::FaultKind::kStall:
      // A stuck worker blocks (page fault / priority inversion); unlike
      // the spike it yields the core, so thieves and siblings keep going.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(act.duration_us));
      break;
    case chaos::FaultKind::kNanOutput:
      if (poison_) poison_(n);
      break;
    default:
      break;
  }
}

}  // namespace djstar::core
