#include "djstar/core/compiled_graph.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <queue>
#include <thread>

#include "djstar/support/assert.hpp"
#include "djstar/support/time.hpp"

namespace djstar::core {

CompiledGraph::CompiledGraph(const TaskGraph& g, QueueOrder order_mode)
    : CompiledGraph(g, graph_opt::Plan::identity(g.node_count()), order_mode) {}

CompiledGraph::CompiledGraph(const TaskGraph& g, const graph_opt::Plan& plan,
                             QueueOrder order_mode) {
  const std::size_t n = g.node_count();
  DJSTAR_ASSERT_MSG(n > 0, "cannot compile an empty graph");
  DJSTAR_ASSERT_MSG(g.is_acyclic(), "task graph must be acyclic");

  names_.reserve(n);
  sections_.reserve(n);
  works_.reserve(n);
  indeg_.resize(n);
  section_idx_.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    DJSTAR_ASSERT_MSG(static_cast<bool>(g.work(i)),
                      "every node needs a work function");
    names_.emplace_back(g.name(i));
    sections_.emplace_back(g.section(i));
    works_.push_back(g.work(i));
    indeg_[i] = static_cast<std::uint32_t>(g.in_degree(i));

    const std::string sec(g.section(i));
    auto it = std::find(section_labels_.begin(), section_labels_.end(), sec);
    if (it == section_labels_.end()) {
      section_idx_[i] = static_cast<std::uint32_t>(section_labels_.size());
      section_labels_.push_back(sec);
    } else {
      section_idx_[i] =
          static_cast<std::uint32_t>(it - section_labels_.begin());
    }
  }

  // CSR successor lists.
  succ_off_.resize(n + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    succ_off_[i + 1] = succ_off_[i] + g.successors(i).size();
  }
  succ_list_.resize(succ_off_[n]);
  for (NodeId i = 0; i < n; ++i) {
    std::size_t off = succ_off_[i];
    for (NodeId s : g.successors(i)) succ_list_[off++] = s;
  }

  depth_ = g.depths();
  for (auto d : depth_) max_depth_ = std::max(max_depth_, d);
  order_ = order_mode == QueueOrder::kLevelized ? g.levelized_order()
                                                : g.topological_order();
  source_count_ = 0;
  while (source_count_ < order_.size() && depth_[order_[source_count_]] == 0) {
    ++source_count_;
  }

  cycle_ = std::make_unique<CycleState[]>(n);
  masked_.assign(n, 0);
  bypass_.resize(n);
  fault_eligible_.assign(n, 0);
  build_units(g, plan, order_mode);
  begin_cycle();
}

void CompiledGraph::build_units(const TaskGraph& g,
                                const graph_opt::Plan& plan,
                                QueueOrder order_mode) {
  DJSTAR_ASSERT_MSG(plan.validate(g), "fusion plan failed legality check");
  const std::size_t nu = plan.unit_count();
  unit_of_ = plan.unit_of;
  fused_ = plan.fused_unit_count() > 0;

  // Member CSR.
  unit_mem_off_.assign(nu + 1, 0);
  for (std::size_t u = 0; u < nu; ++u) {
    unit_mem_off_[u + 1] = unit_mem_off_[u] + plan.units[u].size();
  }
  unit_mem_list_.resize(unit_mem_off_[nu]);
  for (std::size_t u = 0; u < nu; ++u) {
    std::size_t off = unit_mem_off_[u];
    for (NodeId m : plan.units[u]) unit_mem_list_[off++] = m;
  }

  // Contracted inter-unit edges, deduplicated (two member edges between
  // the same unit pair must still resolve the counter exactly once).
  std::vector<std::vector<UnitId>> usucc(nu);
  for (NodeId a = 0; a < g.node_count(); ++a) {
    for (NodeId b : g.successors(a)) {
      if (unit_of_[a] != unit_of_[b]) usucc[unit_of_[a]].push_back(unit_of_[b]);
    }
  }
  unit_indeg_.assign(nu, 0);
  unit_succ_off_.assign(nu + 1, 0);
  for (std::size_t u = 0; u < nu; ++u) {
    auto& s = usucc[u];
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    unit_succ_off_[u + 1] = unit_succ_off_[u] + s.size();
    for (UnitId t : s) ++unit_indeg_[t];
  }
  unit_succ_list_.resize(unit_succ_off_[nu]);
  for (std::size_t u = 0; u < nu; ++u) {
    std::size_t off = unit_succ_off_[u];
    for (UnitId t : usucc[u]) unit_succ_list_[off++] = t;
  }

  // Unit depths (longest-path layering) via Kahn, and the unit queue in
  // the same discipline as the node queue: levelized (depth-sorted,
  // id tie-break) or plain Kahn topological with min-id selection. For
  // the identity plan both reduce to exactly order().
  unit_depth_.assign(nu, 0);
  std::vector<std::uint32_t> indeg(unit_indeg_);
  std::priority_queue<UnitId, std::vector<UnitId>, std::greater<>> ready;
  for (std::size_t u = 0; u < nu; ++u) {
    if (indeg[u] == 0) ready.push(static_cast<UnitId>(u));
  }
  std::vector<UnitId> topo;
  topo.reserve(nu);
  while (!ready.empty()) {
    const UnitId u = ready.top();
    ready.pop();
    topo.push_back(u);
    for (UnitId t : unit_successors(u)) {
      unit_depth_[t] = std::max(unit_depth_[t], unit_depth_[u] + 1);
      if (--indeg[t] == 0) ready.push(t);
    }
  }
  DJSTAR_ASSERT_MSG(topo.size() == nu, "unit graph must be acyclic");

  if (order_mode == QueueOrder::kLevelized) {
    unit_order_.resize(nu);
    for (std::size_t u = 0; u < nu; ++u) {
      unit_order_[u] = static_cast<UnitId>(u);
    }
    std::stable_sort(unit_order_.begin(), unit_order_.end(),
                     [&](UnitId a, UnitId b) {
                       return unit_depth_[a] < unit_depth_[b];
                     });
  } else {
    unit_order_ = std::move(topo);
  }
  unit_source_count_ = 0;
  while (unit_source_count_ < unit_order_.size() &&
         unit_depth_[unit_order_[unit_source_count_]] == 0) {
    ++unit_source_count_;
  }

  unit_cycle_ = std::make_unique<CycleState[]>(nu);
}

void CompiledGraph::begin_cycle() noexcept {
  const std::size_t n = node_count();
  for (std::size_t i = 0; i < n; ++i) {
    cycle_[i].pending.store(static_cast<std::int32_t>(indeg_[i]),
                            std::memory_order_relaxed);
    cycle_[i].waiter.store(-1, std::memory_order_relaxed);
    cycle_[i].wfault.store(0, std::memory_order_relaxed);
  }
  const std::size_t nu = unit_count();
  for (std::size_t u = 0; u < nu; ++u) {
    unit_cycle_[u].pending.store(static_cast<std::int32_t>(unit_indeg_[u]),
                                 std::memory_order_relaxed);
    unit_cycle_[u].waiter.store(-1, std::memory_order_relaxed);
    unit_cycle_[u].claim.store(0, std::memory_order_relaxed);
  }
  units_done_.store(0, std::memory_order_relaxed);
  ++cycle_index_;
  fault_node_.store(-1, std::memory_order_relaxed);
  skipped_.store(0, std::memory_order_relaxed);
  bypassed_.store(0, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  abort_cycle_.store(false, std::memory_order_relaxed);
  // Publish the reset before any worker reads the counters.
  std::atomic_thread_fence(std::memory_order_release);
}

void CompiledGraph::arm_faults(const chaos::FaultPlan& plan) {
  fault_plan_ = plan;
  if (plan.targets.empty()) {
    fault_eligible_.assign(node_count(), 1);
  } else {
    fault_eligible_.assign(node_count(), 0);
    for (NodeId t : plan.targets) {
      if (t < node_count()) fault_eligible_[t] = 1;
    }
  }
  faults_armed_ = plan.any();
  worker_faults_possible_ = plan.any_worker();
}

chaos::FaultKind CompiledGraph::take_worker_fault(UnitId u) noexcept {
  for (NodeId n : unit_members(u)) {
    if (!fault_eligible_[n]) continue;
    const chaos::FaultAction act = chaos::decide(fault_plan_, cycle_index_, n);
    if (act.kind != chaos::FaultKind::kStallForever &&
        act.kind != chaos::FaultKind::kWorkerAbort) {
      continue;
    }
    // One-shot per (cycle, node): the republished unit re-reaches this
    // check on a surviving worker, which must not wedge too.
    std::uint8_t expected = 0;
    if (!cycle_[n].wfault.compare_exchange_strong(expected, 1,
                                                  std::memory_order_acq_rel)) {
      continue;
    }
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    if (journal_ != nullptr) {
      journal_->push(support::EventKind::kFaultInjected, cycle_index_,
                     static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(act.kind), act.duration_us);
    }
    return act.kind;
  }
  return chaos::FaultKind::kNone;
}

void CompiledGraph::record_fault(NodeId n, const char* what) noexcept {
  std::int32_t expected = -1;
  if (fault_node_.compare_exchange_strong(expected, static_cast<std::int32_t>(n),
                                          std::memory_order_acq_rel)) {
    // Sole writer of the message this cycle; fixed buffer, no allocation.
    std::strncpy(fault_what_, what ? what : "", sizeof(fault_what_) - 1);
    fault_what_[sizeof(fault_what_) - 1] = '\0';
  }
  abort_cycle_.store(true, std::memory_order_release);
}

void CompiledGraph::execute(NodeId n) noexcept {
  if (abort_cycle_.load(std::memory_order_acquire)) {
    // Failed/cancelled cycle: drain. Dependencies still resolve in the
    // caller, so every executor's protocol completes without running
    // the remaining work.
    skipped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (masked_[n]) {
    skipped_.fetch_add(1, std::memory_order_relaxed);
    if (bypass_[n]) {
      bypassed_.fetch_add(1, std::memory_order_relaxed);
      try {
        bypass_[n]();
      } catch (const std::exception& e) {
        record_fault(n, e.what());
      } catch (...) {
        record_fault(n, "unknown exception (bypass)");
      }
    }
    return;
  }

  chaos::FaultAction act{};
  if (faults_armed_ && fault_eligible_[n]) {
    act = chaos::decide(fault_plan_, cycle_index_, n);
    if (act.kind == chaos::FaultKind::kStallForever ||
        act.kind == chaos::FaultKind::kWorkerAbort) {
      // Worker faults have one consumer per (cycle, node). The healing
      // executors consume at unit granule (take_worker_fault) before the
      // unit body reaches here; winning the one-shot CAS means no medic
      // is watching this thread, so the kinds degrade to thread-safe
      // stand-ins — a bounded stall / a no-op — and no configuration can
      // hang on a fault that needs a medic to resolve.
      std::uint8_t expected = 0;
      if (!cycle_[n].wfault.compare_exchange_strong(
              expected, 1, std::memory_order_acq_rel)) {
        act = {};
      }
    }
    if (act.kind != chaos::FaultKind::kNone) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      if (journal_ != nullptr) {
        journal_->push(support::EventKind::kFaultInjected, cycle_index_,
                       static_cast<std::int64_t>(n),
                       static_cast<std::int64_t>(act.kind), act.duration_us);
      }
    }
  }

  try {
    if (act.kind == chaos::FaultKind::kThrow) throw chaos::InjectedFault(n);
    works_[n]();
  } catch (const std::exception& e) {
    record_fault(n, e.what());
    return;
  } catch (...) {
    record_fault(n, "unknown exception");
    return;
  }

  switch (act.kind) {
    case chaos::FaultKind::kLatencySpike:
      support::spin_for_us(act.duration_us);
      break;
    case chaos::FaultKind::kStall:
    case chaos::FaultKind::kStallForever:  // unhealed: bounded stand-in
      // A stuck worker blocks (page fault / priority inversion); unlike
      // the spike it yields the core, so thieves and siblings keep going.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(act.duration_us));
      break;
    case chaos::FaultKind::kNanOutput:
      if (poison_) poison_(n);
      break;
    default:
      break;
  }
}

}  // namespace djstar::core
