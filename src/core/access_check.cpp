#include "djstar/core/access_check.hpp"

#include <algorithm>
#include <map>

#include "djstar/support/assert.hpp"

namespace djstar::core {

void AccessRegistry::declare(NodeId node, const AccessDecl& decl) {
  decls_.push_back({node, decl});
}

void AccessRegistry::declare_read(NodeId node, const void* region) {
  decls_.push_back({node, {{region}, {}}});
}

void AccessRegistry::declare_write(NodeId node, const void* region) {
  decls_.push_back({node, {{}, {region}}});
}

Reachability::Reachability(const TaskGraph& g)
    : n_(g.node_count()), words_((n_ + 63) / 64),
      closure_(n_ * words_, 0) {
  // Process in reverse topological order: closure(v) = bit(v) OR the
  // closure of every successor.
  const auto topo = g.topological_order();
  DJSTAR_ASSERT_MSG(topo.size() == n_, "reachability needs an acyclic graph");
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    auto* row = closure_.data() + static_cast<std::size_t>(v) * words_;
    row[v / 64] |= (std::uint64_t{1} << (v % 64));
    for (NodeId s : g.successors(v)) {
      const auto* srow = closure_.data() + static_cast<std::size_t>(s) * words_;
      for (std::size_t w = 0; w < words_; ++w) row[w] |= srow[w];
    }
  }
}

bool Reachability::can_reach(NodeId from, NodeId to) const noexcept {
  if (from >= n_ || to >= n_) return false;
  const auto* row = closure_.data() + static_cast<std::size_t>(from) * words_;
  return (row[to / 64] >> (to % 64)) & 1;
}

std::vector<Hazard> AccessRegistry::check(const TaskGraph& g) const {
  // Collect per-region reader/writer lists.
  struct RegionUse {
    std::vector<NodeId> readers;
    std::vector<NodeId> writers;
  };
  std::map<const void*, RegionUse> regions;
  for (const auto& d : decls_) {
    for (const void* r : d.decl.reads) regions[r].readers.push_back(d.node);
    for (const void* w : d.decl.writes) regions[w].writers.push_back(d.node);
  }

  const Reachability reach(g);
  std::vector<Hazard> hazards;
  auto report = [&](NodeId a, NodeId b, const void* region,
                    const char* kind) {
    if (a == b) return;
    if (reach.ordered(a, b)) return;
    hazards.push_back({std::min(a, b), std::max(a, b), region, kind});
  };

  for (const auto& [region, use] : regions) {
    // write-write conflicts
    for (std::size_t i = 0; i < use.writers.size(); ++i) {
      for (std::size_t j = i + 1; j < use.writers.size(); ++j) {
        report(use.writers[i], use.writers[j], region, "write-write");
      }
    }
    // read-write conflicts
    for (NodeId w : use.writers) {
      for (NodeId r : use.readers) {
        report(w, r, region, "read-write");
      }
    }
  }

  // Deduplicate (a node may declare a region twice).
  std::sort(hazards.begin(), hazards.end(), [](const Hazard& x, const Hazard& y) {
    return std::tie(x.a, x.b, x.region, x.kind) <
           std::tie(y.a, y.b, y.region, y.kind);
  });
  hazards.erase(std::unique(hazards.begin(), hazards.end(),
                            [](const Hazard& x, const Hazard& y) {
                              return x.a == y.a && x.b == y.b &&
                                     x.region == y.region && x.kind == y.kind;
                            }),
                hazards.end());
  return hazards;
}

}  // namespace djstar::core
