#include "djstar/dsp/reverb.hpp"

#include <algorithm>

namespace djstar::dsp {
namespace {
// Freeverb's classic comb/allpass tunings at 44.1 kHz; the right channel
// adds a 23-sample stereo spread.
constexpr std::size_t kCombTuning[8] = {1116, 1188, 1277, 1356,
                                        1422, 1491, 1557, 1617};
constexpr std::size_t kAllpassTuning[4] = {556, 441, 341, 225};
constexpr std::size_t kStereoSpread = 23;
}  // namespace

float Reverb::Comb::process(float x, float feedback, float damp) noexcept {
  const float out = buf[pos];
  filter_state = out * (1.0f - damp) + filter_state * damp;
  buf[pos] = x + filter_state * feedback;
  pos = pos + 1 == buf.size() ? 0 : pos + 1;
  return out;
}

float Reverb::Allpass::process(float x) noexcept {
  const float bufout = buf[pos];
  const float out = bufout - x;
  buf[pos] = x + bufout * 0.5f;
  pos = pos + 1 == buf.size() ? 0 : pos + 1;
  return out;
}

Reverb::Reverb() {
  for (std::size_t c = 0; c < 2; ++c) {
    const std::size_t spread = c * kStereoSpread;
    for (std::size_t i = 0; i < kCombs; ++i) {
      combs_[c][i].buf.assign(kCombTuning[i] + spread, 0.0f);
    }
    for (std::size_t i = 0; i < kAllpasses; ++i) {
      allpasses_[c][i].buf.assign(kAllpassTuning[i] + spread, 0.0f);
    }
  }
}

void Reverb::set(float room, float damp, float mix) noexcept {
  room_ = std::clamp(room, 0.0f, 1.0f);
  damp_ = std::clamp(damp, 0.0f, 1.0f);
  mix_ = std::clamp(mix, 0.0f, 1.0f);
}

void Reverb::reset() noexcept {
  for (auto& chan : combs_) {
    for (auto& c : chan) {
      std::fill(c.buf.begin(), c.buf.end(), 0.0f);
      c.pos = 0;
      c.filter_state = 0.0f;
    }
  }
  for (auto& chan : allpasses_) {
    for (auto& a : chan) {
      std::fill(a.buf.begin(), a.buf.end(), 0.0f);
      a.pos = 0;
    }
  }
}

void Reverb::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  const float feedback = 0.7f + 0.28f * room_;
  const float damp = 0.05f + 0.85f * damp_;
  for (std::size_t c = 0; c < nch; ++c) {
    auto io = buf.channel(c);
    for (auto& s : io) {
      const float input = s * 0.015f;  // Freeverb input gain
      float wet = 0.0f;
      for (auto& comb : combs_[c]) wet += comb.process(input, feedback, damp);
      for (auto& ap : allpasses_[c]) wet = ap.process(wet);
      s = (1.0f - mix_) * s + mix_ * wet;
    }
  }
}

}  // namespace djstar::dsp
