#include "djstar/dsp/basics.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace djstar::dsp {

SmoothedValue::SmoothedValue(float initial, float time_ms,
                             double sample_rate) noexcept
    : current_(initial), target_(initial) {
  const float samples =
      std::max(1.0f, time_ms * 0.001f * static_cast<float>(sample_rate));
  coef_ = 1.0f - std::exp(-1.0f / samples);
}

void Gain::set_gain_db(float db) noexcept {
  g_.set_target(std::pow(10.0f, db / 20.0f));
}

void Gain::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t n = buf.frames();
  const std::size_t nch = buf.channels();
  for (std::size_t i = 0; i < n; ++i) {
    const float g = g_.next();
    for (std::size_t c = 0; c < nch; ++c) buf.at(c, i) *= g;
  }
}

void Pan::process(audio::AudioBuffer& buf) noexcept {
  if (buf.channels() < 2) return;
  auto l = buf.channel(0);
  auto r = buf.channel(1);
  constexpr float kQuarterPi = static_cast<float>(std::numbers::pi / 4.0);
  for (std::size_t i = 0; i < buf.frames(); ++i) {
    const float p = std::clamp(pan_.next(), -1.0f, 1.0f);
    const float angle = (p + 1.0f) * kQuarterPi;  // 0..pi/2
    l[i] *= std::cos(angle) * std::numbers::sqrt2_v<float>;
    r[i] *= std::sin(angle) * std::numbers::sqrt2_v<float>;
  }
}

CrossfadeGains crossfader_law(float position) noexcept {
  const float p = std::clamp(position, 0.0f, 1.0f);
  constexpr float kHalfPi = static_cast<float>(std::numbers::pi / 2.0);
  return {std::cos(p * kHalfPi), std::sin(p * kHalfPi)};
}

void LevelMeter::process(const audio::AudioBuffer& buf) noexcept {
  peak_ = buf.peak();
  rms_ = buf.rms();
}

void EnvelopeFollower::set(float attack_ms, float release_ms,
                           double sample_rate) noexcept {
  auto coef = [&](float ms) {
    if (ms <= 0.0f) return 0.0f;
    return std::exp(-1.0f / (ms * 0.001f * static_cast<float>(sample_rate)));
  };
  attack_coef_ = coef(attack_ms);
  release_coef_ = coef(release_ms);
}

float EnvelopeFollower::process(const audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  for (std::size_t i = 0; i < buf.frames(); ++i) {
    float peak = 0.0f;
    for (std::size_t c = 0; c < nch; ++c) {
      peak = std::max(peak, std::fabs(buf.at(c, i)));
    }
    const float coef = peak > env_ ? attack_coef_ : release_coef_;
    env_ = coef * env_ + (1.0f - coef) * peak;
  }
  return env_;
}

void Bitcrusher::set(int bits, int downsample) noexcept {
  bits = std::clamp(bits, 1, 16);
  step_ = 1.0f / static_cast<float>(1 << (bits - 1));
  downsample_ = std::max(downsample, 1);
}

void Bitcrusher::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  for (std::size_t i = 0; i < buf.frames(); ++i) {
    if (count_ == 0) {
      for (std::size_t c = 0; c < nch; ++c) {
        const float q = std::round(buf.at(c, i) / step_) * step_;
        held_[c] = q;
      }
    }
    count_ = (count_ + 1) % downsample_;
    for (std::size_t c = 0; c < nch; ++c) buf.at(c, i) = held_[c];
  }
}

void Waveshaper::set(float a1, float a2, float a3, float mix) noexcept {
  a1_ = a1;
  a2_ = a2;
  a3_ = a3;
  mix_ = std::clamp(mix, 0.0f, 1.0f);
}

void Waveshaper::process(audio::AudioBuffer& buf) noexcept {
  for (auto& s : buf.raw()) {
    const float shaped = a1_ * s + a2_ * s * s + a3_ * s * s * s;
    s = (1.0f - mix_) * s + mix_ * shaped;
  }
}

}  // namespace djstar::dsp
