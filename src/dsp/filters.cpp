#include "djstar/dsp/filters.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

namespace djstar::dsp {
namespace {
constexpr double kPi = std::numbers::pi;
}

void Biquad::set(BiquadType type, double freq, double q, double gain_db,
                 double sample_rate) noexcept {
  freq = std::clamp(freq, 1.0, sample_rate * 0.49);
  q = std::max(q, 1e-3);
  const double w0 = 2.0 * kPi * freq / sample_rate;
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a = std::pow(10.0, gain_db / 40.0);  // sqrt of linear gain

  double b0 = 1, b1 = 0, b2 = 0, a0 = 1, a1 = 0, a2 = 0;
  switch (type) {
    case BiquadType::kLowpass:
      b0 = (1 - cw) / 2; b1 = 1 - cw; b2 = (1 - cw) / 2;
      a0 = 1 + alpha; a1 = -2 * cw; a2 = 1 - alpha;
      break;
    case BiquadType::kHighpass:
      b0 = (1 + cw) / 2; b1 = -(1 + cw); b2 = (1 + cw) / 2;
      a0 = 1 + alpha; a1 = -2 * cw; a2 = 1 - alpha;
      break;
    case BiquadType::kBandpass:  // constant 0 dB peak gain
      b0 = alpha; b1 = 0; b2 = -alpha;
      a0 = 1 + alpha; a1 = -2 * cw; a2 = 1 - alpha;
      break;
    case BiquadType::kNotch:
      b0 = 1; b1 = -2 * cw; b2 = 1;
      a0 = 1 + alpha; a1 = -2 * cw; a2 = 1 - alpha;
      break;
    case BiquadType::kPeak:
      b0 = 1 + alpha * a; b1 = -2 * cw; b2 = 1 - alpha * a;
      a0 = 1 + alpha / a; a1 = -2 * cw; a2 = 1 - alpha / a;
      break;
    case BiquadType::kLowShelf: {
      const double sq = 2 * std::sqrt(a) * alpha;
      b0 = a * ((a + 1) - (a - 1) * cw + sq);
      b1 = 2 * a * ((a - 1) - (a + 1) * cw);
      b2 = a * ((a + 1) - (a - 1) * cw - sq);
      a0 = (a + 1) + (a - 1) * cw + sq;
      a1 = -2 * ((a - 1) + (a + 1) * cw);
      a2 = (a + 1) + (a - 1) * cw - sq;
      break;
    }
    case BiquadType::kHighShelf: {
      const double sq = 2 * std::sqrt(a) * alpha;
      b0 = a * ((a + 1) + (a - 1) * cw + sq);
      b1 = -2 * a * ((a - 1) + (a + 1) * cw);
      b2 = a * ((a + 1) + (a - 1) * cw - sq);
      a0 = (a + 1) - (a - 1) * cw + sq;
      a1 = 2 * ((a - 1) - (a + 1) * cw);
      a2 = (a + 1) - (a - 1) * cw - sq;
      break;
    }
    case BiquadType::kAllpass:
      b0 = 1 - alpha; b1 = -2 * cw; b2 = 1 + alpha;
      a0 = 1 + alpha; a1 = -2 * cw; a2 = 1 - alpha;
      break;
  }
  set_coefficients(b0 / a0, b1 / a0, b2 / a0, a1 / a0, a2 / a0);
}

void Biquad::set_coefficients(double b0, double b1, double b2, double a1,
                              double a2) noexcept {
  b0_ = b0; b1_ = b1; b2_ = b2; a1_ = a1; a2_ = a2;
}

double Biquad::magnitude_at(double freq, double sample_rate) const noexcept {
  const double w = 2.0 * kPi * freq / sample_rate;
  const std::complex<double> z = std::polar(1.0, -w);
  const std::complex<double> z2 = z * z;
  const std::complex<double> num = b0_ + b1_ * z + b2_ * z2;
  const std::complex<double> den = 1.0 + a1_ * z + a2_ * z2;
  return std::abs(num / den);
}

void BiquadStereo::set(BiquadType type, double freq, double q, double gain_db,
                       double sample_rate) noexcept {
  l_.set(type, freq, q, gain_db, sample_rate);
  r_.set(type, freq, q, gain_db, sample_rate);
}

void BiquadStereo::reset() noexcept {
  l_.reset();
  r_.reset();
}

void BiquadStereo::process(audio::AudioBuffer& buf) noexcept {
  if (buf.channels() >= 1) l_.process(buf.channel(0));
  if (buf.channels() >= 2) r_.process(buf.channel(1));
}

void StateVariableFilter::set(double freq, double q,
                              double sample_rate) noexcept {
  freq = std::clamp(freq, 1.0, sample_rate * 0.49);
  const double g = std::tan(kPi * freq / sample_rate);
  k_ = 1.0 / std::clamp(q, 0.1, 20.0);
  a1_ = 1.0 / (1.0 + g * (g + k_));
  a2_ = g * a1_;
  a3_ = g * a2_;
}

StateVariableFilter::Outputs StateVariableFilter::process_sample(
    float x) noexcept {
  // Andy Simper's trapezoidal SVF; unconditionally stable.
  const double v0 = x;
  const double v3 = v0 - ic2_;
  const double v1 = a1_ * ic1_ + a2_ * v3;
  const double v2 = ic2_ + a2_ * ic1_ + a3_ * v3;
  ic1_ = 2.0 * v1 - ic1_;
  ic2_ = 2.0 * v2 - ic2_;
  const double low = v2;
  const double band = v1;
  const double high = v0 - k_ * v1 - v2;
  return {static_cast<float>(low), static_cast<float>(band),
          static_cast<float>(high)};
}

float StateVariableFilter::process_morph(float x, float morph) noexcept {
  const Outputs o = process_sample(x);
  if (morph < 0.0f) {
    // Blend dry -> lowpass as morph goes 0 -> -1.
    const float m = -morph;
    return (1.0f - m) * x + m * o.low;
  }
  const float m = morph;
  return (1.0f - m) * x + m * o.high;
}

void DjFilter::reset() noexcept {
  l_.reset();
  r_.reset();
  morph_ = target_morph_;
}

void DjFilter::process(audio::AudioBuffer& buf) noexcept {
  if (buf.channels() < 2 || buf.frames() == 0) return;
  // Map |morph| to a cutoff sweep: closed lowpass at 200 Hz, open at 18 kHz.
  auto lch = buf.channel(0);
  auto rch = buf.channel(1);
  const float step =
      (target_morph_ - morph_) / static_cast<float>(buf.frames());
  for (std::size_t i = 0; i < buf.frames(); ++i) {
    morph_ += step;
    const double a = std::abs(morph_);
    const double cutoff = morph_ <= 0.0f
                              ? 18000.0 * std::pow(0.012, a)   // LP sweep down
                              : 30.0 * std::pow(500.0, a);     // HP sweep up
    l_.set(cutoff, q_);
    r_.set(cutoff, q_);
    lch[i] = l_.process_morph(lch[i], morph_);
    rch[i] = r_.process_morph(rch[i], morph_);
  }
  morph_ = target_morph_;
}

ThreeBandEq::ThreeBandEq() noexcept { update(); }

void ThreeBandEq::set_gains(float low_db, float mid_db, float high_db) noexcept {
  auto to_gain = [](float db) {
    return db <= -60.0f ? 0.0f : std::pow(10.0f, db / 20.0f);
  };
  g_low_ = to_gain(low_db);
  g_mid_ = to_gain(mid_db);
  g_high_ = to_gain(high_db);
}

void ThreeBandEq::set_crossovers(double low_hz, double high_hz,
                                 double sample_rate) noexcept {
  low_hz_ = low_hz;
  high_hz_ = high_hz;
  sr_ = sample_rate;
  update();
}

void ThreeBandEq::update() noexcept {
  // Butterworth (Q = 0.707) squared = Linkwitz-Riley 4th order.
  constexpr double kButterworthQ = 0.70710678;
  for (auto& c : ch_) {
    c.lo_lp1.set(BiquadType::kLowpass, low_hz_, kButterworthQ, 0.0, sr_);
    c.lo_lp2 = c.lo_lp1;
    c.lo_hp1.set(BiquadType::kHighpass, low_hz_, kButterworthQ, 0.0, sr_);
    c.lo_hp2 = c.lo_hp1;
    c.hi_lp1.set(BiquadType::kLowpass, high_hz_, kButterworthQ, 0.0, sr_);
    c.hi_lp2 = c.hi_lp1;
    c.hi_hp1.set(BiquadType::kHighpass, high_hz_, kButterworthQ, 0.0, sr_);
    c.hi_hp2 = c.hi_hp1;
  }
}

void ThreeBandEq::reset() noexcept {
  for (auto& c : ch_) {
    c.lo_lp1.reset();
    c.lo_lp2.reset();
    c.lo_hp1.reset();
    c.lo_hp2.reset();
    c.hi_lp1.reset();
    c.hi_lp2.reset();
    c.hi_hp1.reset();
    c.hi_hp2.reset();
  }
}

void ThreeBandEq::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  for (std::size_t c = 0; c < nch; ++c) {
    auto io = buf.channel(c);
    auto& st = ch_[c];
    for (auto& s : io) {
      // First crossover: low band vs everything above.
      const float low = st.lo_lp2.process_sample(st.lo_lp1.process_sample(s));
      const float rest = st.lo_hp2.process_sample(st.lo_hp1.process_sample(s));
      // Second crossover splits the rest into mid and high.
      const float mid =
          st.hi_lp2.process_sample(st.hi_lp1.process_sample(rest));
      const float high =
          st.hi_hp2.process_sample(st.hi_hp1.process_sample(rest));
      s = g_low_ * low + g_mid_ * mid + g_high_ * high;
    }
  }
}

}  // namespace djstar::dsp
