#include "djstar/dsp/osc.hpp"

#include <cmath>
#include <numbers>

namespace djstar::dsp {

void Oscillator::set(OscShape shape, double freq_hz,
                     double sample_rate) noexcept {
  shape_ = shape;
  inc_ = freq_hz / sample_rate;
}

float Oscillator::poly_blep(double t) const noexcept {
  // Two-sample polynomial band-limited step around a discontinuity.
  if (t < inc_) {
    const double x = t / inc_;
    return static_cast<float>(x + x - x * x - 1.0);
  }
  if (t > 1.0 - inc_) {
    const double x = (t - 1.0) / inc_;
    return static_cast<float>(x * x + x + x + 1.0);
  }
  return 0.0f;
}

float Oscillator::next() noexcept {
  const double t = phase_;
  phase_ += inc_;
  if (phase_ >= 1.0) phase_ -= 1.0;

  switch (shape_) {
    case OscShape::kSine:
      return static_cast<float>(std::sin(2.0 * std::numbers::pi * t));
    case OscShape::kSaw: {
      float v = static_cast<float>(2.0 * t - 1.0);
      v -= poly_blep(t);
      return v;
    }
    case OscShape::kSquare: {
      float v = t < 0.5 ? 1.0f : -1.0f;
      v += poly_blep(t);
      v -= poly_blep(std::fmod(t + 0.5, 1.0));
      return v;
    }
    case OscShape::kTriangle: {
      // Integrate the band-limited square (leaky) for a triangle.
      float sq = t < 0.5 ? 1.0f : -1.0f;
      sq += poly_blep(t);
      sq -= poly_blep(std::fmod(t + 0.5, 1.0));
      tri_state_ = 0.999 * tri_state_ + 4.0 * inc_ * sq;
      return static_cast<float>(tri_state_);
    }
  }
  return 0.0f;
}

float PinkNoise::next() noexcept {
  // Paul Kellet's economy pink filter.
  const float w = white_.next();
  b0_ = 0.99765f * b0_ + w * 0.0990460f;
  b1_ = 0.96300f * b1_ + w * 0.2965164f;
  b2_ = 0.57000f * b2_ + w * 1.0526913f;
  return 0.25f * (b0_ + b1_ + b2_ + w * 0.1848f);
}

}  // namespace djstar::dsp
