#include "djstar/dsp/dynamics.hpp"

#include <algorithm>
#include <cmath>

namespace djstar::dsp {
namespace {

float ms_to_coef(float ms, double sample_rate) {
  if (ms <= 0.0f) return 0.0f;
  return std::exp(-1.0f / (ms * 0.001f * static_cast<float>(sample_rate)));
}

}  // namespace

void Compressor::set(float threshold_db, float ratio, float attack_ms,
                     float release_ms, float makeup_db,
                     double sample_rate) noexcept {
  threshold_ = std::pow(10.0f, threshold_db / 20.0f);
  ratio_inv_ = 1.0f / std::max(ratio, 1.0f);
  attack_coef_ = ms_to_coef(attack_ms, sample_rate);
  release_coef_ = ms_to_coef(release_ms, sample_rate);
  makeup_ = std::pow(10.0f, makeup_db / 20.0f);
}

void Compressor::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  const std::size_t n = buf.frames();
  if (nch == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    // Stereo-linked peak detector.
    float peak = 0.0f;
    for (std::size_t c = 0; c < nch; ++c) {
      const float a = std::fabs(buf.at(c, i));
      peak = std::max(peak, a);
    }
    const float coef = peak > env_ ? attack_coef_ : release_coef_;
    env_ = coef * env_ + (1.0f - coef) * peak;

    float target = 1.0f;
    if (env_ > threshold_) {
      // Gain computer only engages above threshold (data-dependent work).
      const float over_db = 20.0f * std::log10(env_ / threshold_);
      const float reduced_db = over_db * ratio_inv_ - over_db;
      target = std::pow(10.0f, reduced_db / 20.0f);
    }
    gain_ += 0.2f * (target - gain_);  // smooth gain motion
    const float g = gain_ * makeup_;
    for (std::size_t c = 0; c < nch; ++c) buf.at(c, i) *= g;
  }
}

void Limiter::set(float ceiling_db, float release_ms,
                  double sample_rate) noexcept {
  ceiling_ = std::pow(10.0f, ceiling_db / 20.0f);
  release_coef_ = ms_to_coef(release_ms, sample_rate);
}

void Limiter::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  const std::size_t n = buf.frames();
  if (nch == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    float peak = 0.0f;
    for (std::size_t c = 0; c < nch; ++c) {
      peak = std::max(peak, std::fabs(buf.at(c, i)));
    }
    const float projected = peak * gain_;
    if (projected > ceiling_ && peak > 0.0f) {
      gain_ = ceiling_ / peak;  // instant attack
    } else {
      gain_ = 1.0f - release_coef_ * (1.0f - gain_);  // exponential recovery
      gain_ = std::min(gain_, 1.0f);
    }
    for (std::size_t c = 0; c < nch; ++c) {
      float& s = buf.at(c, i);
      s = std::clamp(s * gain_, -ceiling_, ceiling_);
    }
  }
}

void Gate::set(float open_db, float close_db, float hold_ms, float release_ms,
               double sample_rate) noexcept {
  open_thresh_ = std::pow(10.0f, open_db / 20.0f);
  close_thresh_ = std::pow(10.0f, close_db / 20.0f);
  hold_samples_ = static_cast<std::size_t>(hold_ms * 0.001f *
                                           static_cast<float>(sample_rate));
  release_coef_ = ms_to_coef(release_ms, sample_rate);
}

void Gate::reset() noexcept {
  open_ = false;
  hold_count_ = 0;
  gain_ = 0.0f;
  env_ = 0.0f;
}

void Gate::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  const std::size_t n = buf.frames();
  if (nch == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    float peak = 0.0f;
    for (std::size_t c = 0; c < nch; ++c) {
      peak = std::max(peak, std::fabs(buf.at(c, i)));
    }
    env_ = 0.99f * env_ + 0.01f * peak;
    if (!open_ && env_ > open_thresh_) {
      open_ = true;
      hold_count_ = hold_samples_;
    } else if (open_) {
      if (env_ < close_thresh_) {
        if (hold_count_ > 0) {
          --hold_count_;
        } else {
          open_ = false;
        }
      } else {
        hold_count_ = hold_samples_;
      }
    }
    const float target = open_ ? 1.0f : 0.0f;
    gain_ = target + release_coef_ * (gain_ - target);
    for (std::size_t c = 0; c < nch; ++c) buf.at(c, i) *= gain_;
  }
}

void HardClip::process(audio::AudioBuffer& buf) noexcept {
  for (auto& s : buf.raw()) s = std::clamp(s, -ceiling_, ceiling_);
}

void SoftClip::set(float drive_db) noexcept {
  drive_ = std::pow(10.0f, drive_db / 20.0f);
}

void SoftClip::process(audio::AudioBuffer& buf) noexcept {
  const float norm = drive_ > 1.0f ? 1.0f / std::tanh(drive_) : 1.0f;
  for (auto& s : buf.raw()) s = std::tanh(s * drive_) * norm;
}

}  // namespace djstar::dsp
