#include "djstar/dsp/delay.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace djstar::dsp {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

void DelayLine::set_max_delay(std::size_t samples) {
  buf_.assign(samples + 1, 0.0f);
  w_ = 0;
}

void DelayLine::reset() noexcept {
  std::fill(buf_.begin(), buf_.end(), 0.0f);
  w_ = 0;
}

float DelayLine::read_frac(double delay) const noexcept {
  const auto d0 = static_cast<std::size_t>(delay);
  const auto frac = static_cast<float>(delay - static_cast<double>(d0));
  const float a = read(d0);
  const float b = read(d0 + 1);
  return a + frac * (b - a);
}

Echo::Echo() {
  for (auto& l : lines_) l.set_max_delay(static_cast<std::size_t>(audio::kSampleRate * 2));
}

void Echo::set(double delay_seconds, float feedback, float mix,
               double sample_rate) noexcept {
  delay_samples_ = std::clamp<std::size_t>(
      static_cast<std::size_t>(delay_seconds * sample_rate), 1,
      lines_[0].max_delay());
  feedback_ = std::clamp(feedback, 0.0f, 0.95f);
  mix_ = std::clamp(mix, 0.0f, 1.0f);
}

void Echo::reset() noexcept {
  for (auto& l : lines_) l.reset();
  damp_state_ = {};
}

void Echo::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  for (std::size_t c = 0; c < nch; ++c) {
    auto io = buf.channel(c);
    auto& line = lines_[c];
    float& damp = damp_state_[c];
    for (auto& s : io) {
      // Push first so the wet tap is exactly `delay_samples_` behind the
      // current input sample (x[i] echoes at i + delay).
      line.push(s + feedback_ * damp);
      const float wet = line.read(delay_samples_);
      // One-pole damping in the feedback path keeps repeats darker.
      damp += 0.35f * (wet - damp);
      s = (1.0f - mix_) * s + mix_ * wet;
    }
  }
}

Flanger::Flanger() {
  for (auto& l : lines_) l.set_max_delay(512);
}

void Flanger::set(double rate_hz, float depth, float feedback, float mix,
                  double sample_rate) noexcept {
  sr_ = sample_rate;
  phase_inc_ = rate_hz / sample_rate;
  depth_ = std::clamp(depth, 0.0f, 1.0f);
  feedback_ = std::clamp(feedback, -0.9f, 0.9f);
  mix_ = std::clamp(mix, 0.0f, 1.0f);
}

void Flanger::reset() noexcept {
  for (auto& l : lines_) l.reset();
  fb_state_ = {};
  phase_ = 0.0;
}

void Flanger::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  const std::size_t n = buf.frames();
  for (std::size_t i = 0; i < n; ++i) {
    // 0.5..~8 ms swept delay.
    const double lfo = 0.5 * (1.0 + std::sin(kTwoPi * phase_));
    const double delay =
        (0.0005 + 0.0075 * static_cast<double>(depth_) * lfo) * sr_;
    phase_ += phase_inc_;
    if (phase_ >= 1.0) phase_ -= 1.0;
    for (std::size_t c = 0; c < nch; ++c) {
      auto io = buf.channel(c);
      const float wet = lines_[c].read_frac(delay);
      lines_[c].push(io[i] + feedback_ * fb_state_[c]);
      fb_state_[c] = wet;
      io[i] = (1.0f - mix_) * io[i] + mix_ * wet;
    }
  }
}

Chorus::Chorus() {
  for (auto& l : lines_) l.set_max_delay(2048);
}

void Chorus::set(double rate_hz, float depth, float mix,
                 double sample_rate) noexcept {
  sr_ = sample_rate;
  phase_inc_ = rate_hz / sample_rate;
  depth_ = std::clamp(depth, 0.0f, 1.0f);
  mix_ = std::clamp(mix, 0.0f, 1.0f);
}

void Chorus::reset() noexcept {
  for (auto& l : lines_) l.reset();
  phases_ = {0.0, 0.33, 0.67};
}

void Chorus::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  const std::size_t n = buf.frames();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < nch; ++c) {
      auto io = buf.channel(c);
      lines_[c].push(io[i]);
      float wet = 0.0f;
      for (std::size_t t = 0; t < phases_.size(); ++t) {
        const double ph = phases_[t] + (c ? 0.25 : 0.0);
        const double lfo = 0.5 * (1.0 + std::sin(kTwoPi * ph));
        // 8..30 ms tap spread.
        const double delay =
            (0.008 + 0.022 * static_cast<double>(depth_) * lfo) * sr_;
        wet += lines_[c].read_frac(std::min(delay, static_cast<double>(lines_[c].max_delay() - 1)));
      }
      wet /= static_cast<float>(phases_.size());
      io[i] = (1.0f - mix_) * io[i] + mix_ * wet;
    }
    for (auto& ph : phases_) {
      ph += phase_inc_;
      if (ph >= 1.0) ph -= 1.0;
    }
  }
}

void Phaser::set(double rate_hz, float depth, float feedback, float mix,
                 double sample_rate) noexcept {
  sr_ = sample_rate;
  phase_inc_ = rate_hz / sample_rate;
  depth_ = std::clamp(depth, 0.0f, 1.0f);
  feedback_ = std::clamp(feedback, 0.0f, 0.9f);
  mix_ = std::clamp(mix, 0.0f, 1.0f);
}

void Phaser::reset() noexcept {
  ch_ = {};
  phase_ = 0.0;
}

void Phaser::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  const std::size_t n = buf.frames();
  for (std::size_t i = 0; i < n; ++i) {
    // Sweep allpass center 300 Hz .. 3 kHz.
    const double lfo = 0.5 * (1.0 + std::sin(kTwoPi * phase_));
    phase_ += phase_inc_;
    if (phase_ >= 1.0) phase_ -= 1.0;
    const double fc = 300.0 + 2700.0 * static_cast<double>(depth_) * lfo;
    const auto ap =
        static_cast<float>((std::tan(std::numbers::pi * fc / sr_) - 1.0) /
                           (std::tan(std::numbers::pi * fc / sr_) + 1.0));
    for (std::size_t c = 0; c < nch; ++c) {
      auto io = buf.channel(c);
      auto& st = ch_[c];
      float x = io[i] + feedback_ * st.fb;
      for (std::size_t k = 0; k < kStages; ++k) {
        const float y = ap * x + st.z[k];
        st.z[k] = x - ap * y;
        x = y;
      }
      st.fb = x;
      io[i] = (1.0f - mix_) * io[i] + mix_ * x;
    }
  }
}

}  // namespace djstar::dsp
