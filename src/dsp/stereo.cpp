#include "djstar/dsp/stereo.hpp"

#include <algorithm>
#include <cmath>

namespace djstar::dsp {

void StereoWidener::set_width(float width) noexcept {
  width_ = std::clamp(width, 0.0f, 2.0f);
}

void StereoWidener::process(audio::AudioBuffer& buf) noexcept {
  if (buf.channels() < 2) return;
  auto l = buf.channel(0);
  auto r = buf.channel(1);
  for (std::size_t i = 0; i < buf.frames(); ++i) {
    const float mid = 0.5f * (l[i] + r[i]);
    const float side = 0.5f * (l[i] - r[i]) * width_;
    l[i] = mid + side;
    r[i] = mid - side;
  }
}

DcBlocker::DcBlocker(double cutoff_hz, double sample_rate) noexcept {
  coef_ = static_cast<float>(
      1.0 - 2.0 * std::numbers::pi * cutoff_hz / sample_rate);
  coef_ = std::clamp(coef_, 0.9f, 0.99999f);
}

void DcBlocker::reset() noexcept {
  x1_[0] = x1_[1] = y1_[0] = y1_[1] = 0.0f;
}

void DcBlocker::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  for (std::size_t c = 0; c < nch; ++c) {
    auto io = buf.channel(c);
    for (auto& s : io) {
      const float y = s - x1_[c] + coef_ * y1_[c];
      x1_[c] = s;
      y1_[c] = y;
      s = y;
    }
  }
}

void TransientShaper::set(float attack, float sustain,
                          double sample_rate) noexcept {
  attack_gain_ = std::clamp(attack, -1.0f, 1.0f);
  sustain_gain_ = std::clamp(sustain, -1.0f, 1.0f);
  // Fast follower ~1 ms, slow follower ~20 ms.
  fast_coef_ = std::exp(-1.0f / (0.001f * static_cast<float>(sample_rate)));
  slow_coef_ = std::exp(-1.0f / (0.02f * static_cast<float>(sample_rate)));
}

void TransientShaper::reset() noexcept { fast_env_ = slow_env_ = 0.0f; }

void TransientShaper::process(audio::AudioBuffer& buf) noexcept {
  const std::size_t nch = std::min<std::size_t>(buf.channels(), 2);
  if (nch == 0) return;
  for (std::size_t i = 0; i < buf.frames(); ++i) {
    float peak = 0.0f;
    for (std::size_t c = 0; c < nch; ++c) {
      peak = std::max(peak, std::fabs(buf.at(c, i)));
    }
    // Fast follower: instant attack, ~1 ms release. Slow follower:
    // smoothed both ways, so at an onset fast >> slow = a transient.
    fast_env_ = std::max(peak, fast_coef_ * fast_env_);
    slow_env_ = slow_coef_ * slow_env_ + (1.0f - slow_coef_) * peak;
    const float transient = std::max(0.0f, fast_env_ - slow_env_);
    const float body = std::max(slow_env_, 0.05f);
    float gain = 1.0f + attack_gain_ * std::min(transient / body, 3.0f);
    if (slow_env_ > 1e-4f) gain += sustain_gain_ * 0.5f;
    gain = std::clamp(gain, 0.0f, 4.0f);
    for (std::size_t c = 0; c < nch; ++c) buf.at(c, i) *= gain;
  }
}

}  // namespace djstar::dsp
