#include "djstar/analysis/beat.hpp"

#include <algorithm>
#include <cmath>

namespace djstar::analysis {

std::vector<float> onset_envelope(std::span<const float> mono,
                                  const BeatConfig& cfg) {
  std::vector<float> env;
  if (mono.size() < cfg.frame) return env;
  const std::size_t frames = (mono.size() - cfg.frame) / cfg.hop + 1;
  env.reserve(frames);

  // Two coarse bands (low / high) via a one-pole split keep kick and
  // hat onsets distinct without a full FFT per frame.
  float prev_low = 0.0f, prev_high = 0.0f;
  for (std::size_t f = 0; f < frames; ++f) {
    const float* p = mono.data() + f * cfg.hop;
    float lp = 0.0f;
    double low_e = 0.0, high_e = 0.0;
    for (std::size_t i = 0; i < cfg.frame; ++i) {
      lp += 0.05f * (p[i] - lp);  // crude lowpass ~350 Hz at 44.1k
      const float high = p[i] - lp;
      low_e += static_cast<double>(lp) * lp;
      high_e += static_cast<double>(high) * high;
    }
    const auto low = static_cast<float>(
        std::sqrt(low_e / static_cast<double>(cfg.frame)));
    const auto high = static_cast<float>(
        std::sqrt(high_e / static_cast<double>(cfg.frame)));
    // Half-wave rectified flux, low band weighted up (kick drives the
    // beat in dance music).
    const float flux = 2.0f * std::max(0.0f, low - prev_low) +
                       std::max(0.0f, high - prev_high);
    env.push_back(flux);
    prev_low = low;
    prev_high = high;
  }
  return env;
}

TempoEstimate estimate_tempo(std::span<const float> envelope,
                             const BeatConfig& cfg) {
  TempoEstimate out;
  if (envelope.size() < 16) return out;

  // Remove the DC component so autocorrelation peaks mean periodicity.
  double mean = 0;
  for (float v : envelope) mean += v;
  mean /= static_cast<double>(envelope.size());
  std::vector<double> x(envelope.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = envelope[i] - mean;

  const double frames_per_second = cfg.sample_rate / static_cast<double>(cfg.hop);
  const auto min_lag = static_cast<std::size_t>(
      frames_per_second * 60.0 / cfg.max_bpm);
  const auto max_lag = std::min(
      x.size() / 2,
      static_cast<std::size_t>(frames_per_second * 60.0 / cfg.min_bpm));
  if (min_lag + 2 >= max_lag) return out;

  double best = 0.0, sum_corr = 0.0;
  std::size_t best_lag = 0, count = 0;
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    double corr = 0.0;
    for (std::size_t i = 0; i + lag < x.size(); ++i) corr += x[i] * x[i + lag];
    corr /= static_cast<double>(x.size() - lag);
    sum_corr += std::max(corr, 0.0);
    ++count;
    if (corr > best) {
      best = corr;
      best_lag = lag;
    }
  }
  if (best_lag == 0 || best <= 0.0) return out;

  // Parabolic refinement around the peak for sub-lag precision.
  double refined = static_cast<double>(best_lag);
  if (best_lag > min_lag && best_lag < max_lag) {
    auto corr_at = [&](std::size_t lag) {
      double c = 0.0;
      for (std::size_t i = 0; i + lag < x.size(); ++i) c += x[i] * x[i + lag];
      return c / static_cast<double>(x.size() - lag);
    };
    const double c0 = corr_at(best_lag - 1);
    const double c1 = best;
    const double c2 = corr_at(best_lag + 1);
    const double denom = c0 - 2 * c1 + c2;
    if (std::abs(denom) > 1e-12) {
      refined += 0.5 * (c0 - c2) / denom;
    }
  }

  out.bpm = 60.0 * frames_per_second / refined;
  const double avg = count ? sum_corr / static_cast<double>(count) : 0.0;
  out.confidence = avg > 0 ? best / avg : 0.0;
  return out;
}

BeatgridResult analyze_beats(std::span<const float> mono,
                             const BeatConfig& cfg) {
  BeatgridResult r;
  const auto env = onset_envelope(mono, cfg);
  const auto tempo = estimate_tempo(env, cfg);
  r.bpm = tempo.bpm;
  r.confidence = tempo.confidence;
  if (r.bpm <= 0.0) return r;

  const double frames_per_second =
      cfg.sample_rate / static_cast<double>(cfg.hop);
  const double period_frames = 60.0 * frames_per_second / r.bpm;

  // Beat phase: the comb offset with the highest envelope sum.
  double best_sum = -1.0;
  std::size_t best_phase = 0;
  const auto period = static_cast<std::size_t>(std::max(1.0, period_frames));
  for (std::size_t phase = 0; phase < period; ++phase) {
    double sum = 0.0;
    for (std::size_t i = phase; i < env.size();
         i += static_cast<std::size_t>(period_frames)) {
      sum += env[i];
    }
    if (sum > best_sum) {
      best_sum = sum;
      best_phase = phase;
    }
  }
  r.first_beat_seconds = static_cast<double>(best_phase) / frames_per_second;

  const double span_seconds =
      static_cast<double>(mono.size()) / cfg.sample_rate;
  const double beat_period = 60.0 / r.bpm;
  for (double t = r.first_beat_seconds; t < span_seconds; t += beat_period) {
    r.beat_times_seconds.push_back(t);
  }
  return r;
}

BeatgridResult analyze_beats(const audio::AudioBuffer& stereo,
                             const BeatConfig& cfg) {
  std::vector<float> mono(stereo.frames());
  if (stereo.channels() >= 2) {
    auto l = stereo.channel(0);
    auto r = stereo.channel(1);
    for (std::size_t i = 0; i < mono.size(); ++i) {
      mono[i] = 0.5f * (l[i] + r[i]);
    }
  } else if (stereo.channels() == 1) {
    auto l = stereo.channel(0);
    for (std::size_t i = 0; i < mono.size(); ++i) mono[i] = l[i];
  }
  return analyze_beats(mono, cfg);
}

}  // namespace djstar::analysis
