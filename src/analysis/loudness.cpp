#include "djstar/analysis/loudness.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace djstar::analysis {
namespace {

double to_db(double linear) {
  return linear > 1e-12 ? 20.0 * std::log10(linear) : -120.0;
}

LoudnessResult from_block_rms(std::vector<double>& rms, double peak,
                              const LoudnessConfig& cfg) {
  LoudnessResult out;
  out.peak_db = to_db(peak);
  const double gate_lin = std::pow(10.0, cfg.gate_db / 20.0);
  std::vector<double> gated;
  gated.reserve(rms.size());
  for (double r : rms) {
    if (r >= gate_lin) gated.push_back(r);
  }
  out.gated_blocks = gated.size();
  if (gated.empty()) return out;
  std::sort(gated.begin(), gated.end());
  const auto idx = static_cast<std::size_t>(
      cfg.percentile * static_cast<double>(gated.size() - 1));
  out.loudness_db = to_db(gated[idx]);
  out.suggested_gain_db = cfg.target_db - out.loudness_db;
  return out;
}

}  // namespace

LoudnessResult measure_loudness(std::span<const float> mono,
                                const LoudnessConfig& cfg) {
  const auto block =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cfg.block_seconds * cfg.sample_rate));
  std::vector<double> rms;
  double peak = 0;
  for (std::size_t pos = 0; pos + block <= mono.size(); pos += block) {
    double sum2 = 0;
    for (std::size_t i = 0; i < block; ++i) {
      const double s = mono[pos + i];
      sum2 += s * s;
      peak = std::max(peak, std::abs(s));
    }
    rms.push_back(std::sqrt(sum2 / static_cast<double>(block)));
  }
  return from_block_rms(rms, peak, cfg);
}

LoudnessResult measure_loudness(const audio::AudioBuffer& stereo,
                                const LoudnessConfig& cfg) {
  const auto block =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cfg.block_seconds * cfg.sample_rate));
  const std::size_t nch = stereo.channels();
  std::vector<double> rms;
  double peak = 0;
  for (std::size_t pos = 0; pos + block <= stereo.frames(); pos += block) {
    double sum2 = 0;
    for (std::size_t c = 0; c < nch; ++c) {
      auto ch = stereo.channel(c);
      for (std::size_t i = 0; i < block; ++i) {
        const double s = ch[pos + i];
        sum2 += s * s;
        peak = std::max(peak, std::abs(s));
      }
    }
    rms.push_back(std::sqrt(sum2 / static_cast<double>(block * nch)));
  }
  return from_block_rms(rms, peak, cfg);
}

}  // namespace djstar::analysis
