#include "djstar/analysis/key.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "djstar/fft/fft.hpp"

namespace djstar::analysis {
namespace {

// Krumhansl-Schmuckler tonal hierarchy profiles.
constexpr double kMajorProfile[12] = {6.35, 2.23, 3.48, 2.33, 4.38, 4.09,
                                      2.52, 5.19, 2.39, 3.66, 2.29, 2.88};
constexpr double kMinorProfile[12] = {6.33, 2.68, 3.52, 5.38, 2.60, 3.53,
                                      2.54, 4.75, 3.98, 2.69, 3.34, 3.17};

constexpr const char* kNoteNames[12] = {"C",  "C#", "D",  "D#", "E",  "F",
                                        "F#", "G",  "G#", "A",  "A#", "B"};

double correlate(const Chromagram& x, const double* profile, int rotation) {
  // Pearson correlation of x against the rotated profile.
  double mx = 0, mp = 0;
  for (int i = 0; i < 12; ++i) {
    mx += x[i];
    mp += profile[i];
  }
  mx /= 12.0;
  mp /= 12.0;
  double num = 0, dx = 0, dp = 0;
  for (int i = 0; i < 12; ++i) {
    const double a = x[(i + rotation) % 12] - mx;
    const double b = profile[i] - mp;
    num += a * b;
    dx += a * a;
    dp += b * b;
  }
  const double den = std::sqrt(dx * dp);
  return den > 1e-12 ? num / den : 0.0;
}

}  // namespace

std::string KeyEstimate::name() const {
  return std::string(kNoteNames[((tonic % 12) + 12) % 12]) +
         (minor ? " minor" : " major");
}

Chromagram compute_chromagram(std::span<const float> mono,
                              double sample_rate) {
  Chromagram chroma{};
  constexpr std::size_t kFftSize = 4096;
  if (mono.size() < kFftSize) return chroma;

  fft::RealFft rfft(kFftSize);
  std::vector<float> window(kFftSize);
  fft::make_window(fft::WindowType::kHann, window);
  std::vector<float> frame(kFftSize);
  std::vector<std::complex<float>> spectrum(rfft.bins());

  const std::size_t hop = kFftSize;  // non-overlapping frames suffice
  for (std::size_t pos = 0; pos + kFftSize <= mono.size(); pos += hop) {
    for (std::size_t i = 0; i < kFftSize; ++i) {
      frame[i] = mono[pos + i] * window[i];
    }
    rfft.forward(frame, spectrum);
    // Fold bins between ~55 Hz and ~2 kHz onto pitch classes.
    for (std::size_t k = 1; k < rfft.bins(); ++k) {
      const double freq =
          sample_rate * static_cast<double>(k) / static_cast<double>(kFftSize);
      if (freq < 55.0 || freq > 2000.0) continue;
      const double midi = 69.0 + 12.0 * std::log2(freq / 440.0);
      const int pc = ((static_cast<int>(std::lround(midi)) % 12) + 12) % 12;
      chroma[pc] += std::norm(spectrum[k]);
    }
  }

  // Normalize to unit sum so confidence values are comparable.
  double sum = 0;
  for (double v : chroma) sum += v;
  if (sum > 0) {
    for (double& v : chroma) v /= sum;
  }
  return chroma;
}

KeyEstimate estimate_key(const Chromagram& chroma) {
  KeyEstimate best{};
  double best_score = -2.0, second = -2.0;
  for (int tonic = 0; tonic < 12; ++tonic) {
    for (int minor = 0; minor < 2; ++minor) {
      const double score =
          correlate(chroma, minor ? kMinorProfile : kMajorProfile, tonic);
      if (score > best_score) {
        second = best_score;
        best_score = score;
        best.tonic = tonic;
        best.minor = minor != 0;
      } else if (score > second) {
        second = score;
      }
    }
  }
  best.confidence = best_score - second;
  return best;
}

KeyEstimate estimate_key(std::span<const float> mono, double sample_rate) {
  return estimate_key(compute_chromagram(mono, sample_rate));
}

std::string camelot_code(const KeyEstimate& key) {
  // Camelot wheel: minor keys are "A", major keys are "B".
  // 8A = A minor / 8B = C major; moving +7 semitones = +1 hour.
  static constexpr int kMinorHour[12] = {
      // tonic: C  C#  D  D#  E  F  F#  G  G#  A  A#  B
      5, 12, 7, 2, 9, 4, 11, 6, 1, 8, 3, 10};
  static constexpr int kMajorHour[12] = {
      8, 3, 10, 5, 12, 7, 2, 9, 4, 11, 6, 1};
  const int hour = key.minor ? kMinorHour[key.tonic] : kMajorHour[key.tonic];
  return std::to_string(hour) + (key.minor ? "A" : "B");
}

}  // namespace djstar::analysis
