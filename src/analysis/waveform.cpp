#include "djstar/analysis/waveform.hpp"

#include <algorithm>
#include <cmath>

namespace djstar::analysis {

WaveformOverview build_overview(std::span<const float> mono,
                                std::size_t samples_per_tile) {
  WaveformOverview ov;
  ov.samples_per_tile = std::max<std::size_t>(samples_per_tile, 1);
  if (mono.empty()) return ov;

  const std::size_t tiles =
      (mono.size() + ov.samples_per_tile - 1) / ov.samples_per_tile;
  ov.tiles.reserve(tiles);

  float lp = 0.0f;
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t begin = t * ov.samples_per_tile;
    const std::size_t end = std::min(begin + ov.samples_per_tile, mono.size());
    WaveformTile tile;
    tile.min = tile.max = mono[begin];
    double sum2 = 0, low2 = 0, high2 = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const float s = mono[i];
      tile.min = std::min(tile.min, s);
      tile.max = std::max(tile.max, s);
      sum2 += static_cast<double>(s) * s;
      lp += 0.05f * (s - lp);  // ~350 Hz one-pole split
      const float high = s - lp;
      low2 += static_cast<double>(lp) * lp;
      high2 += static_cast<double>(high) * high;
    }
    const auto n = static_cast<double>(end - begin);
    tile.rms = static_cast<float>(std::sqrt(sum2 / n));
    tile.low_energy = static_cast<float>(low2 / n);
    tile.high_energy = static_cast<float>(high2 / n);
    ov.tiles.push_back(tile);
  }
  return ov;
}

WaveformOverview build_overview(const audio::AudioBuffer& stereo,
                                std::size_t samples_per_tile) {
  std::vector<float> mono(stereo.frames(), 0.0f);
  if (stereo.channels() >= 2) {
    auto l = stereo.channel(0);
    auto r = stereo.channel(1);
    for (std::size_t i = 0; i < mono.size(); ++i) {
      mono[i] = 0.5f * (l[i] + r[i]);
    }
  } else if (stereo.channels() == 1) {
    auto l = stereo.channel(0);
    std::copy(l.begin(), l.end(), mono.begin());
  }
  return build_overview(mono, samples_per_tile);
}

WaveformOverview zoom_out(const WaveformOverview& src, std::size_t factor) {
  WaveformOverview out;
  factor = std::max<std::size_t>(factor, 1);
  out.samples_per_tile = src.samples_per_tile * factor;
  const std::size_t tiles = (src.tiles.size() + factor - 1) / factor;
  out.tiles.reserve(tiles);
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t begin = t * factor;
    const std::size_t end = std::min(begin + factor, src.tiles.size());
    WaveformTile merged = src.tiles[begin];
    double sum2 = static_cast<double>(merged.rms) * merged.rms;
    for (std::size_t i = begin + 1; i < end; ++i) {
      const auto& tile = src.tiles[i];
      merged.min = std::min(merged.min, tile.min);
      merged.max = std::max(merged.max, tile.max);
      sum2 += static_cast<double>(tile.rms) * tile.rms;
      merged.low_energy += tile.low_energy;
      merged.high_energy += tile.high_energy;
    }
    const auto n = static_cast<double>(end - begin);
    merged.rms = static_cast<float>(std::sqrt(sum2 / n));
    merged.low_energy /= static_cast<float>(n);
    merged.high_energy /= static_cast<float>(n);
    out.tiles.push_back(merged);
  }
  return out;
}

}  // namespace djstar::analysis
