#include "djstar/serve/admission.hpp"

#include <algorithm>
#include <vector>

namespace djstar::serve {

const char* to_string(AdmissionVerdict v) noexcept {
  switch (v) {
    case AdmissionVerdict::kAdmitted: return "admitted";
    case AdmissionVerdict::kQueued: return "queued";
    case AdmissionVerdict::kRejected: return "rejected";
  }
  return "?";
}

double estimate_graph_cost_us(const core::CompiledGraph& g,
                              std::span<const double> node_cost_us,
                              unsigned workers) {
  if (workers == 0) workers = 1;
  const std::size_t n = g.node_count();
  auto cost = [&](core::NodeId id) {
    return id < node_cost_us.size() ? node_cost_us[id] : 0.0;
  };
  double volume = 0;
  // Longest path ending at each node; order() is dependency-sorted, so
  // one forward sweep suffices.
  std::vector<double> finish(n, 0.0);
  double critical = 0;
  for (core::NodeId id : g.order()) {
    const double f = finish[id] + cost(id);
    volume += cost(id);
    critical = std::max(critical, f);
    for (core::NodeId s : g.successors(id)) {
      finish[s] = std::max(finish[s], f);
    }
  }
  return critical + (volume - critical) / static_cast<double>(workers);
}

AdmissionVerdict AdmissionController::decide(
    double density, double active_density, std::size_t active_count,
    std::size_t queued_count) const noexcept {
  const bool over_count = active_count >= cfg_.max_active;
  const bool over_bound =
      active_density + density > cfg_.utilization_bound;
  if (!over_count && !over_bound) return AdmissionVerdict::kAdmitted;
  if (cfg_.queue_when_full && queued_count < cfg_.max_queued) {
    return AdmissionVerdict::kQueued;
  }
  return AdmissionVerdict::kRejected;
}

}  // namespace djstar::serve
