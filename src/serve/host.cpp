#include "djstar/serve/host.hpp"

#include "djstar/core/thread_count.hpp"
#include "djstar/engine/telemetry.hpp"
#include "djstar/support/build_info.hpp"
#include "djstar/support/time.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <utility>

namespace djstar::serve {
namespace {

// DJSTAR_METRICS parsing, hardened like DJSTAR_THREADS: unset returns
// nullopt, set-but-empty after trimming throws.
std::optional<std::string> metrics_env_path() {
  const char* raw = std::getenv("DJSTAR_METRICS");
  if (raw == nullptr) return std::nullopt;
  std::string s(raw);
  const auto b = s.find_first_not_of(" \t");
  const auto e = s.find_last_not_of(" \t");
  if (b == std::string::npos) {
    throw std::invalid_argument("DJSTAR_METRICS: empty path");
  }
  return s.substr(b, e - b + 1);
}

// Environment overrides resolved before the member-init list runs so the
// shared team is constructed with the final heal config.
HostConfig apply_env_overrides(HostConfig cfg) {
  cfg.heal.mode = core::heal_mode_from_env(cfg.heal.mode);
  if (auto b = BreakerConfig::from_env()) cfg.breaker = *b;
  if (auto pmode = engine::prof_mode_from_env()) cfg.profiler.mode = *pmode;
  if (auto slo = support::SloConfig::from_env()) {
    // The env hook flips the engine and (optionally) the objectives; the
    // embedder's window geometry / tsdb sizing stays authoritative.
    cfg.slo.enabled = slo->enabled;
    cfg.slo.spec = slo->spec;
  }
  return cfg;
}

// Shared bounds for the djstar_stage_* histograms (us). Wide enough for
// admission waits spanning several parked ticks at the top end.
constexpr double kStageBounds[] = {10,   25,   50,    100,   250,  500,
                                   1000, 2500, 5000,  10000, 25000, 100000};

void append_json_escaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) >= 0x20) {
      out += ch;
    }
  }
}

}  // namespace

EngineHost::EngineHost(HostConfig cfg)
    : cfg_(apply_env_overrides(std::move(cfg))),
      threads_(core::resolve_thread_count(cfg_.threads)),
      team_(threads_, cfg_.start_mode, cfg_.spin, cfg_.heal),
      admission_(cfg_.admission),
      m_ticks_(registry_.counter("djstar_fleet_ticks_total",
                                 "Fleet ticks executed")),
      m_submitted_(registry_.counter("djstar_fleet_sessions_submitted_total",
                                     "Sessions submitted for admission")),
      m_admitted_(registry_.counter("djstar_fleet_sessions_admitted_total",
                                    "Sessions admitted (incl. from queue)")),
      m_queued_(registry_.counter("djstar_fleet_sessions_queued_total",
                                  "Admission verdicts parking a session")),
      m_rejected_(registry_.counter("djstar_fleet_sessions_rejected_total",
                                    "Sessions rejected at admission")),
      m_shed_(registry_.counter("djstar_fleet_sessions_shed_total",
                                "Sessions evicted by the overload handler")),
      m_closed_(registry_.counter("djstar_fleet_sessions_closed_total",
                                  "Active sessions closed by their owner")),
      m_overloads_(registry_.counter("djstar_fleet_overloads_total",
                                     "Overload-handler trips")),
      m_cycles_(registry_.counter("djstar_fleet_cycles_total",
                                  "Session cycles dispatched")),
      m_misses_(registry_.counter(
          "djstar_fleet_deadline_misses_total",
          "Session cycles completing past their deadline")),
      m_degrade_steps_(registry_.counter(
          "djstar_fleet_degrade_steps_total",
          "Ladder rungs force-walked by the overload handler")),
      m_tripped_(registry_.counter(
          "djstar_fleet_sessions_tripped_total",
          "Sessions torn down by their circuit breaker")),
      m_restored_(registry_.counter(
          "djstar_fleet_sessions_restored_total",
          "Tripped sessions restored after an admitted probe")),
      g_active_sessions_(registry_.gauge("djstar_fleet_active_sessions",
                                         "Currently active sessions")),
      g_queued_sessions_(registry_.gauge("djstar_fleet_queued_sessions",
                                         "Currently parked sessions")),
      g_active_density_(registry_.gauge(
          "djstar_fleet_active_density",
          "Sum of admitted C/D densities (utilization)")) {
  cfg_.threads = threads_;
  // Stage latency decomposition (always-on; per-QoS name suffix because
  // the registry has no label support).
  for (unsigned q = 0; q < kQoSCount; ++q) {
    const char* qn = to_string(static_cast<QoS>(q));
    const auto reg = [&](const char* stage, const char* help) {
      return registry_.histogram(
          std::string("djstar_stage_") + stage + "_us_" + qn, help,
          kStageBounds);
    };
    h_stage_admission_[q] =
        reg("admission_wait", "submit() to activation (wall us)");
    h_stage_queue_[q] =
        reg("edf_queue", "EDF dispatch delay inside the tick (us)");
    h_stage_execute_[q] =
        reg("execute", "Graph compute after dispatch (us)");
  }
  g_uptime_ = support::register_build_info(registry_);
  if (cfg_.slo.enabled) {
    tsdb_ = std::make_unique<support::TimeSeriesStore>(cfg_.slo.tsdb);
    if (!cfg_.slo.windows.valid()) {
      cfg_.slo.windows =
          support::SloWindows::sre_defaults(cfg_.slo.tsdb.window_us);
    }
    slo_fleet_ = std::make_unique<support::SloTracker>(
        *tsdb_, "fleet", cfg_.slo.spec, cfg_.slo.windows);
    for (unsigned q = 0; q < kQoSCount; ++q) {
      const char* qn = to_string(static_cast<QoS>(q));
      slo_qos_[q] = std::make_unique<support::SloTracker>(
          *tsdb_, std::string("qos_") + qn, cfg_.slo.spec, cfg_.slo.windows);
      g_slo_qos_budget_[q] = registry_.gauge(
          std::string("djstar_slo_budget_remaining_") + qn,
          "Worst-objective error budget remaining over the slow window");
      g_slo_qos_state_[q] =
          registry_.gauge(std::string("djstar_slo_alert_state_") + qn,
                          "Alert state (0 ok, 1 warn, 2 page)");
      g_slo_qos_budget_[q].set(1.0);
    }
    ts_tick_elapsed_ = tsdb_->add_series("fleet_tick_us");
    m_slo_alerts_ = registry_.counter("djstar_slo_alerts_total",
                                      "SLO alert escalations, any scope");
    m_slo_recovers_ = registry_.counter(
        "djstar_slo_recovers_total", "SLO alert de-escalations, any scope");
    g_slo_budget_ = registry_.gauge(
        "djstar_slo_budget_remaining",
        "Fleet worst-objective error budget remaining over the slow window");
    g_slo_state_ = registry_.gauge(
        "djstar_slo_alert_state", "Fleet alert state (0 ok, 1 warn, 2 page)");
    g_slo_budget_.set(1.0);
  }
  if (auto path = metrics_env_path()) {
    start_metrics_exporter(*path);
  }
}

EngineHost::~EngineHost() { stop_metrics_exporter(); }

// ---- control plane ------------------------------------------------------

SessionId EngineHost::submit(SessionSpec spec) {
  std::lock_guard lk(cmd_mutex_);
  const SessionId id = next_id_++;
  {
    std::lock_guard sl(state_mutex_);
    states_[id] = SessionState::kQueued;
  }
  Command c;
  c.kind = Command::Kind::kSubmit;
  c.id = id;
  c.spec = std::move(spec);
  c.submitted_at = support::now();
  commands_.push_back(std::move(c));
  return id;
}

void EngineHost::close(SessionId id) {
  std::lock_guard lk(cmd_mutex_);
  Command c;
  c.kind = Command::Kind::kClose;
  c.id = id;
  commands_.push_back(std::move(c));
}

SessionState EngineHost::session_state(SessionId id) const {
  std::lock_guard sl(state_mutex_);
  const auto it = states_.find(id);
  // Unknown ids (never submitted here) read as long gone.
  return it != states_.end() ? it->second : SessionState::kClosed;
}

void EngineHost::set_state(SessionId id, SessionState s) {
  std::lock_guard sl(state_mutex_);
  states_[id] = s;
}

// ---- admission ----------------------------------------------------------

void EngineHost::drain_commands() {
  std::vector<Command> cmds;
  {
    std::lock_guard lk(cmd_mutex_);
    cmds.swap(commands_);
  }
  for (Command& c : cmds) {
    if (c.kind == Command::Kind::kClose) {
      remove_session(c.id, SessionState::kClosed);
      continue;
    }
    stats_.note_submitted();
    m_submitted_.inc();
    std::unique_ptr<Session> s = build_session(c.id, std::move(c.spec));
    s->set_submitted_at(c.submitted_at);
    decide_admission(std::move(s));
  }
}

std::unique_ptr<Session> EngineHost::build_session(SessionId id,
                                                   SessionSpec spec) {
  core::ExecOptions exec;
  exec.spin = cfg_.spin;
  exec.heal = cfg_.heal;
  if (flight_.enabled()) exec.flight = &flight_;
  auto s = std::make_unique<Session>(id, std::move(spec), team_, exec,
                                     cfg_.ws, cfg_.supervisor);
  if (profiler_enabled()) {
    // Sessions share the host registry (register-or-fetch: one
    // djstar_attrib_* family fleet-wide) and journal. HW stays host-level.
    engine::ProfilerConfig pcfg = cfg_.profiler;
    pcfg.mode = engine::ProfMode::kAttrib;
    s->enable_profiler(pcfg, &registry_, &journal_);
  }
  return s;
}

void EngineHost::decide_admission(std::unique_ptr<Session> s) {
  const double density = s->density();
  const AdmissionVerdict v = admission_.decide(
      density, active_density_, active_.size(), queued_.size());
  admission_log_.push_back({s->id(), v, active_density_ + density,
                            admission_.config().utilization_bound, tick_});
  switch (v) {
    case AdmissionVerdict::kAdmitted:
      activate(std::move(s));
      break;
    case AdmissionVerdict::kQueued: {
      const SessionId id = s->id();
      queued_.push_back(std::move(s));
      stats_.note_queued_depth(queued_.size());
      m_queued_.inc();
      journal_.push(support::EventKind::kQueuePark, tick_,
                    static_cast<std::int64_t>(id));
      break;
    }
    case AdmissionVerdict::kRejected:
      set_state(s->id(), SessionState::kRejected);
      stats_.note_rejected();
      m_rejected_.inc();
      journal_.push(support::EventKind::kReject, tick_,
                    static_cast<std::int64_t>(s->id()));
      break;
  }
}

void EngineHost::activate(std::unique_ptr<Session> s) {
  // Admission-wait stage closes here — covering queued ticks too. Probe
  // restores skip it (never stamped): a breaker park is not admission.
  if (s->submitted_at() != support::Clock::time_point{}) {
    h_stage_admission_[rank(s->qos())].record(
        support::elapsed_us(s->submitted_at(), support::now()));
  }
  active_density_ += s->density();
  s->set_next_due_us(fleet_now_us_ + s->deadline_us());
  if (tracing_armed_) s->arm_tracing(trace_capacity_);
  if (cfg_.breaker.enabled()) {
    breakers_.try_emplace(s->id(), cfg_.breaker, cfg_.seed, s->id());
  }
  attach_slo(s->id());
  set_state(s->id(), SessionState::kActive);
  stats_.note_admitted(s->qos());
  m_admitted_.inc();
  journal_.push(support::EventKind::kAdmit, tick_,
                static_cast<std::int64_t>(s->id()),
                static_cast<std::int64_t>(rank(s->qos())), s->density());
  active_.push_back(std::move(s));
}

void EngineHost::try_admit_queued() {
  // FIFO: a blocked head blocks everything behind it — parked sessions
  // are admitted in submission order, never around each other.
  while (!queued_.empty()) {
    Session& head = *queued_.front();
    const AdmissionVerdict v = admission_.decide(
        head.density(), active_density_, active_.size(), queued_.size() - 1);
    if (v != AdmissionVerdict::kAdmitted) break;
    std::unique_ptr<Session> s = std::move(queued_.front());
    queued_.pop_front();
    admission_log_.push_back({s->id(), v, active_density_ + s->density(),
                              admission_.config().utilization_bound, tick_});
    activate(std::move(s));
  }
}

void EngineHost::remove_session(SessionId id, SessionState final_state) {
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if ((*it)->id() != id) continue;
    active_density_ = std::max(0.0, active_density_ - (*it)->density());
    stats_.retire(**it, final_state == SessionState::kShed);
    if (final_state == SessionState::kShed) {
      m_shed_.inc();
      journal_.push(support::EventKind::kShed, tick_,
                    static_cast<std::int64_t>(id));
    } else {
      m_closed_.inc();
      journal_.push(support::EventKind::kSessionClosed, tick_,
                    static_cast<std::int64_t>(id));
    }
    if (tracing_armed_ && (*it)->recorder().armed()) {
      retired_traces_.push_back({(*it)->name(),
                                 static_cast<std::uint32_t>((*it)->id()),
                                 (*it)->recorder().collect()});
    }
    set_state(id, final_state);
    breakers_.erase(id);
    prev_latency_.erase(id);
    detach_slo(id);
    active_.erase(it);
    return;
  }
  for (auto it = queued_.begin(); it != queued_.end(); ++it) {
    if ((*it)->id() != id) continue;
    // Take the session out of the FIFO *before* finalizing anything:
    // finalizing first left the dead entry in the queue while the
    // queued-depth stat was read, so a close landing between verdicts
    // skewed note_queued_depth and could double-count the head.
    std::unique_ptr<Session> s = std::move(*it);
    queued_.erase(it);
    stats_.note_queued_depth(queued_.size());
    set_state(id, final_state);
    journal_.push(support::EventKind::kSessionClosed, tick_,
                  static_cast<std::int64_t>(id));
    breakers_.erase(id);
    return;
  }
  for (auto it = tripped_.begin(); it != tripped_.end(); ++it) {
    if (it->id != id) continue;
    // Already retired from stats at trip time; the owner close just
    // releases the parked spec and the breaker.
    tripped_.erase(it);
    set_state(id, final_state);
    journal_.push(support::EventKind::kSessionClosed, tick_,
                  static_cast<std::int64_t>(id));
    breakers_.erase(id);
    return;
  }
  // Unknown or already departed: close() documents this as a no-op.
}

// ---- data plane ---------------------------------------------------------

void EngineHost::enable_flight(std::size_t spans_per_thread) {
  flight_.configure(threads_, spans_per_thread);
}

FleetTick EngineHost::run_fleet_cycle() {
  FleetTick t;
  t.index = tick_;
  if (flight_.enabled()) flight_.begin_cycle();

  drain_commands();
  if (admit_holdoff_ > 0) {
    --admit_holdoff_;
  } else {
    try_admit_queued();
    // Half-open probes obey the same holdoff: freed capacity after a
    // shed is not immediately refilled by a recovering session either.
    probe_tripped();
  }

  // The tick window is the tightest active deadline: every session's due
  // packet gets exactly one dispatch opportunity per window.
  double budget = cfg_.default_tick_us;
  for (const auto& s : active_) budget = std::min(budget, s->deadline_us());
  t.budget_us = budget;
  const double tick_end = fleet_now_us_ + budget;

  // Level-1 schedule: due sessions in EDF order. Ties break by QoS rank
  // (realtime first), then id — the order is fully deterministic.
  // Epsilon absorbs float drift between the fleet clock (accumulated in
  // steps of `budget`) and each session's next_due (steps of its own
  // deadline) — a packet due exactly at the window edge must not slip a
  // whole tick over a rounding ulp.
  constexpr double kDueEpsUs = 1e-6;
  std::vector<Session*> due;
  due.reserve(active_.size());
  for (const auto& s : active_) {
    if (s->next_due_us() <= tick_end + kDueEpsUs) due.push_back(s.get());
  }
  std::sort(due.begin(), due.end(), [](const Session* a, const Session* b) {
    if (a->next_due_us() != b->next_due_us()) {
      return a->next_due_us() < b->next_due_us();
    }
    if (rank(a->qos()) != rank(b->qos())) {
      return rank(a->qos()) < rank(b->qos());
    }
    return a->id() < b->id();
  });

  const auto t0 = support::now();
  std::vector<SessionId> to_trip;
  for (Session* s : due) {
    const double wait_us = support::since_us(t0);
    const double allowed_us = s->next_due_us() - fleet_now_us_;
    const double completion = s->run_cycle(wait_us, allowed_us);
    m_cycles_.inc();
    h_stage_queue_[rank(s->qos())].record(wait_us);
    h_stage_execute_[rank(s->qos())].record(completion - wait_us);
    const bool missed = completion > allowed_us;
    if (missed) {
      ++t.misses;
      // Same predicate as Session::run_cycle's counter, so the fleet
      // export equals the sum of session miss counts exactly.
      m_misses_.inc();
      journal_.push(support::EventKind::kDeadlineMiss, tick_,
                    static_cast<std::int64_t>(s->id()), 0, completion);
    }
    if (tsdb_ != nullptr) {
      // Availability bit: clean and merely-late cycles are up; faulted,
      // cancelled, NaN-flushed, and safe-mode cycles burn the budget.
      const engine::CycleOutcome oc = s->last_outcome();
      const bool good = oc == engine::CycleOutcome::kClean ||
                        oc == engine::CycleOutcome::kOverrun;
      slo_fleet_->record_cycle(completion, missed, good);
      slo_qos_[rank(s->qos())]->record_cycle(completion, missed, good);
      if (auto sit = slo_sessions_.find(s->id());
          sit != slo_sessions_.end()) {
        sit->second->record_cycle(completion, missed, good);
      }
    }
    if (auto bit = breakers_.find(s->id()); bit != breakers_.end()) {
      // Failure predicate: a missed deadline or a structurally broken
      // cycle (fault, cancellation, NaN output). Clean degraded cycles
      // are fine — the ladder is handling those.
      const engine::CycleOutcome oc = s->last_outcome();
      const bool failed = missed || oc == engine::CycleOutcome::kFault ||
                          oc == engine::CycleOutcome::kCancelled ||
                          oc == engine::CycleOutcome::kNanOutput;
      const BreakerEvent ev = bit->second.on_cycle(failed, fleet_now_us_);
      if (ev == BreakerEvent::kTripped) {
        to_trip.push_back(s->id());
      } else if (ev == BreakerEvent::kClosed) {
        journal_.push(support::EventKind::kBreakerClose, tick_,
                      static_cast<std::int64_t>(s->id()));
      }
    }
    // Advance to the next packet deadline. A session that lagged a whole
    // window behind drops the lost packets instead of carrying a stale
    // deadline — under EDF an ever-older deadline would sort ahead of
    // every on-time session (realtime included) for the rest of the run.
    double next = s->next_due_us() + s->deadline_us();
    if (next <= fleet_now_us_ + kDueEpsUs) {
      next = tick_end + s->deadline_us();
    }
    s->set_next_due_us(next);
    ++t.sessions_run;
  }
  t.elapsed_us = support::since_us(t0);

  // Trip after the dispatch loop: `due` holds raw pointers into active_,
  // so sessions must not be erased while it is still being walked.
  for (SessionId id : to_trip) trip_session(id);

  t.overloaded = !due.empty() &&
                 t.elapsed_us > cfg_.overload.overload_factor * budget;
  if (t.overloaded) {
    if (++overload_streak_ >= cfg_.overload.trip_ticks) {
      handle_overload(t);
      overload_streak_ = 0;
    }
  } else {
    overload_streak_ = 0;
  }

  fleet_now_us_ = tick_end;
  ++tick_;
  stats_.note_tick();
  m_ticks_.inc();
  g_active_sessions_.set(static_cast<double>(active_.size()));
  g_queued_sessions_.set(static_cast<double>(queued_.size()));
  g_active_density_.set(active_density_);
  g_uptime_.set(support::process_uptime_seconds());
  if (tsdb_ != nullptr) {
    tsdb_->record(ts_tick_elapsed_, t.elapsed_us);
    // The store runs on the virtual fleet clock: a tick advances it by
    // exactly the budget, so window seals — and therefore every alert
    // transition — are a deterministic function of the dispatch history.
    if (tsdb_->advance(fleet_now_us_) > 0) evaluate_slo();
    refresh_slo_json();
  }
  if (profiler_enabled()) refresh_debug_json();
  if (tick_observer_) tick_observer_(t);
  return t;
}

void EngineHost::refresh_debug_json() {
  // HW counters are host-level: sessions share the pool, so one sampler
  // over the team's tids, one delta per tick. Armed lazily once every
  // worker thread has published its tid (worker 0 = this thread).
  if (cfg_.profiler.mode == engine::ProfMode::kAttribHw && !hw_armed_) {
    std::vector<std::int32_t> tids(threads_, 0);
    tids[0] = engine::HwSampler::self_tid();
    bool all = tids[0] != 0;
    for (unsigned w = 1; w < threads_; ++w) {
      tids[w] = team_.worker_tid(w);
      all = all && tids[w] != 0;
    }
    if (all) {
      hw_sampler_.open(tids);
      hw_armed_ = true;
    }
  }
  if (hw_sampler_.available()) hw_sampler_.sample(hw_tick_);

  std::string& out = debug_scratch_;
  out.clear();
  // ---- /debug/attribution ----
  out += "{\"tick\":";
  out += std::to_string(tick_);
  out += ",\"mode\":\"";
  out += to_string(cfg_.profiler.mode);
  out += "\",\"sessions\":[";
  bool first = true;
  for (const auto& s : active_) {
    if (!s->profiler_enabled()) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    out += std::to_string(s->id());
    out += ",\"name\":\"";
    append_json_escaped(out, s->name());
    out += "\",\"qos\":\"";
    out += to_string(s->qos());
    out += "\",\"report\":";
    s->profiler().append_attribution_json(out);
    out += '}';
  }
  out += "]}";
  {
    std::lock_guard lk(debug_mutex_);
    debug_attrib_json_.swap(out);
  }

  // ---- /debug/profile ----
  out.clear();
  out += "{\"tick\":";
  out += std::to_string(tick_);
  out += ",\"mode\":\"";
  out += to_string(cfg_.profiler.mode);
  out += "\",\"hw_available\":";
  out += hw_sampler_.available() ? "true" : "false";
  out += ",\"hw_workers\":[";
  for (std::size_t w = 0; w < hw_tick_.size(); ++w) {
    if (w) out += ',';
    out += "{\"cycles\":";
    out += std::to_string(hw_tick_[w].cycles);
    out += ",\"instructions\":";
    out += std::to_string(hw_tick_[w].instructions);
    out += ",\"cache_misses\":";
    out += std::to_string(hw_tick_[w].cache_misses);
    out += ",\"context_switches\":";
    out += std::to_string(hw_tick_[w].context_switches);
    out += '}';
  }
  out += "],\"sessions\":[";
  first = true;
  for (const auto& s : active_) {
    if (!s->profiler_enabled()) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    out += std::to_string(s->id());
    out += ",\"name\":\"";
    append_json_escaped(out, s->name());
    out += "\",\"qos\":\"";
    out += to_string(s->qos());
    out += "\",";
    // Windowed latency since the previous refresh: delta_since never
    // mutates the live histogram, so a concurrent /metrics scrape of the
    // same session cannot observe a reset.
    const support::Histogram& live = s->latency_histogram();
    const auto prev = prev_latency_.find(s->id());
    const support::Histogram win =
        prev != prev_latency_.end() ? live.delta_since(prev->second) : live;
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "\"window\":{\"count\":%zu,\"p50_us\":%.1f,"
                  "\"p99_us\":%.1f},",
                  win.total(), win.quantile(0.5), win.quantile(0.99));
    out += buf;
    prev_latency_.insert_or_assign(s->id(), live);
    out += "\"profile\":";
    s->profiler().append_profile_json(out);
    out += '}';
  }
  out += "]}";
  {
    std::lock_guard lk(debug_mutex_);
    debug_profile_json_.swap(out);
  }
}

std::string EngineHost::debug_attribution_json() const {
  std::lock_guard lk(debug_mutex_);
  return debug_attrib_json_.empty() ? std::string("{\"sessions\":[]}")
                                    : debug_attrib_json_;
}

std::string EngineHost::debug_profile_json() const {
  std::lock_guard lk(debug_mutex_);
  return debug_profile_json_.empty() ? std::string("{\"sessions\":[]}")
                                     : debug_profile_json_;
}

// ---- SLO engine (DESIGN.md §15) ------------------------------------------

void EngineHost::attach_slo(SessionId id) {
  if (tsdb_ == nullptr) return;
  slo_sessions_[id] = std::make_unique<support::SloTracker>(
      *tsdb_, "session_" + std::to_string(id), cfg_.slo.spec,
      cfg_.slo.windows);
}

void EngineHost::detach_slo(SessionId id) {
  if (tsdb_ == nullptr) return;
  slo_sessions_.erase(id);
}

void EngineHost::evaluate_slo() {
  {
    const auto prev = slo_fleet_->status().state;
    if (slo_fleet_->evaluate()) {
      on_slo_transition(*slo_fleet_, 0, prev, nullptr);
    }
    g_slo_budget_.set(slo_fleet_->status().budget_remaining);
    g_slo_state_.set(static_cast<double>(slo_fleet_->status().state));
  }
  for (unsigned q = 0; q < kQoSCount; ++q) {
    const auto prev = slo_qos_[q]->status().state;
    if (slo_qos_[q]->evaluate()) {
      // Scope encoding (journal payload `a`): 0 = fleet, -1-q = QoS
      // class q, positive = session id.
      on_slo_transition(*slo_qos_[q], -1 - static_cast<std::int64_t>(q),
                        prev, nullptr);
    }
    g_slo_qos_budget_[q].set(slo_qos_[q]->status().budget_remaining);
    g_slo_qos_state_[q].set(static_cast<double>(slo_qos_[q]->status().state));
  }
  for (auto& [id, tr] : slo_sessions_) {
    const auto prev = tr->status().state;
    if (tr->evaluate()) {
      on_slo_transition(*tr, static_cast<std::int64_t>(id), prev,
                        session(id));
    }
  }
}

void EngineHost::on_slo_transition(support::SloTracker& tr,
                                   std::int64_t scope,
                                   support::SloAlertState prev,
                                   Session* session) {
  const support::SloStatus& st = tr.status();
  const bool escalated = st.state > prev;
  journal_.push(escalated ? support::EventKind::kSloAlert
                          : support::EventKind::kSloRecover,
                tick_, scope, static_cast<std::int64_t>(st.state),
                st.budget_remaining);
  if (escalated) {
    m_slo_alerts_.inc();
  } else {
    m_slo_recovers_.inc();
  }
  if (!escalated || st.state != support::SloAlertState::kPage) return;

  // A page is an incident, and scopes paging at the same seal (a
  // session, its QoS class, the fleet) describe the same incident: act
  // once per tick, or stacked per-scope responses walk a session's whole
  // ladder into safe mode — and safe-mode cycles are unavailable, which
  // would keep the availability budget burning and the page latched.
  if (slo_dump_tick_ == tick_) return;
  slo_dump_tick_ = tick_;

  // Buy headroom first: walk the paging session's ladder, or — for
  // fleet/class scopes — every besteffort ladder (the overload handler's
  // cheapest rung, without waiting for a tick to overrun).
  if (session != nullptr) {
    session->supervisor().force_degrade();
  } else {
    for (const auto& s : active_) {
      if (s->qos() == QoS::kBestEffort) s->supervisor().force_degrade();
    }
  }
  // Then capture evidence. The warn->page hysteresis already rate-limits
  // incidents, so no extra cooldown is needed.
  ++slo_incident_dumps_;
  if (flight_.enabled() && !cfg_.slo.incident_dump_path.empty() &&
      flight_.dump_chrome_trace(cfg_.slo.incident_dump_path, 32,
                                cfg_.default_tick_us)) {
    journal_.push(
        support::EventKind::kFlightDump, tick_,
        static_cast<std::int64_t>(engine::FlightDumpTrigger::kSloPage),
        scope);
  }
}

void EngineHost::refresh_slo_json() {
  std::string& out = debug_scratch_;
  out.clear();
  out += "{\"enabled\":true,\"tick\":";
  out += std::to_string(tick_);
  out += ",\"window_us\":";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", tsdb_->window_us());
  out += buf;
  out += ",\"sealed_windows\":";
  out += std::to_string(tsdb_->sealed_windows());
  out += ",\"fleet\":";
  slo_fleet_->append_json(out);
  out += ",\"qos\":[";
  for (unsigned q = 0; q < kQoSCount; ++q) {
    if (q) out += ',';
    out += "{\"class\":\"";
    out += to_string(static_cast<QoS>(q));
    out += "\",\"slo\":";
    slo_qos_[q]->append_json(out);
    out += '}';
  }
  out += "],\"sessions\":[";
  bool first = true;
  for (const auto& s : active_) {
    const auto it = slo_sessions_.find(s->id());
    if (it == slo_sessions_.end()) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    out += std::to_string(s->id());
    out += ",\"name\":\"";
    append_json_escaped(out, s->name());
    out += "\",\"qos\":\"";
    out += to_string(s->qos());
    out += "\",\"slo\":";
    it->second->append_json(out);
    out += '}';
  }
  out += "]}";
  {
    std::lock_guard lk(debug_mutex_);
    debug_slo_json_.swap(out);
  }
}

std::string EngineHost::debug_slo_json() const {
  std::lock_guard lk(debug_mutex_);
  return debug_slo_json_.empty() ? std::string("{\"enabled\":false}")
                                 : debug_slo_json_;
}

std::string EngineHost::debug_timeseries_json(std::string_view series,
                                              std::size_t window) const {
  if (tsdb_ == nullptr) {
    return "{\"error\":\"slo engine disabled\",\"series\":[]}";
  }
  // No series named: answer with the index so the endpoint is
  // discoverable without prior knowledge of the series names.
  if (series.empty()) return tsdb_->index_json();
  return tsdb_->render_json(series, window);
}

const support::SloTracker* EngineHost::slo_session(SessionId id) const {
  const auto it = slo_sessions_.find(id);
  return it != slo_sessions_.end() ? it->second.get() : nullptr;
}

void EngineHost::run_fleet_cycles(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) run_fleet_cycle();
}

void EngineHost::handle_overload(FleetTick& t) {
  stats_.note_overload();
  m_overloads_.inc();
  journal_.push(support::EventKind::kOverload, tick_, 0, 0, t.elapsed_us);
  // Shed order: walk the lowest class's degradation ladders first; only
  // once the whole class sits at the floor, evict its youngest session.
  // Standard follows besteffort; realtime is never shed — it only ever
  // walks its own ladder, driven by its own supervisor.
  const auto degrade_class = [&](QoS q) {
    bool any = false;
    for (const auto& s : active_) {
      if (s->qos() == q && s->supervisor().force_degrade()) {
        any = true;
        ++t.degraded;
        m_degrade_steps_.inc();
      }
    }
    return any;
  };
  const auto shed_youngest = [&](QoS q) {
    SessionId victim = kInvalidSession;
    for (const auto& s : active_) {
      if (s->qos() == q) victim = std::max(victim, s->id());
    }
    if (victim == kInvalidSession) return false;
    remove_session(victim, SessionState::kShed);
    ++t.shed;
    // Hold queued admissions back for a few ticks so freed capacity is
    // not immediately refilled (shed/admit/shed thrash).
    admit_holdoff_ = cfg_.overload.admit_holdoff_ticks;
    return true;
  };
  if (degrade_class(QoS::kBestEffort)) return;
  if (shed_youngest(QoS::kBestEffort)) return;
  if (!cfg_.overload.shed_standard) return;
  if (degrade_class(QoS::kStandard)) return;
  shed_youngest(QoS::kStandard);
}

// ---- circuit breaking ---------------------------------------------------

void EngineHost::trip_session(SessionId id) {
  const auto it =
      std::find_if(active_.begin(), active_.end(),
                   [id](const auto& s) { return s->id() == id; });
  if (it == active_.end()) return;
  Session& s = **it;
  const CircuitBreaker& br = breakers_.at(id);

  m_tripped_.inc();
  journal_.push(support::EventKind::kBreakerTrip, tick_,
                static_cast<std::int64_t>(id),
                static_cast<std::int64_t>(br.trips()), br.last_backoff_us());
  active_density_ = std::max(0.0, active_density_ - s.density());
  // Retired like a close (not a shed): the session's counters fold into
  // the fleet aggregate now; the restored session restarts from zero.
  stats_.retire(s, /*was_shed=*/false);
  if (tracing_armed_ && s.recorder().armed()) {
    retired_traces_.push_back({s.name(), static_cast<std::uint32_t>(s.id()),
                               s.recorder().collect()});
  }
  set_state(id, SessionState::kTripped);
  detach_slo(id);

  TrippedEntry e;
  e.id = id;
  e.snap = s.snapshot();   // before take_spec: snapshot reads live state
  e.spec = s.take_spec();  // arena shared_ptr moves out intact
  tripped_.push_back(std::move(e));
  active_.erase(it);  // destroys the session; no further cycles run
}

void EngineHost::probe_tripped() {
  for (auto it = tripped_.begin(); it != tripped_.end();) {
    const auto bit = breakers_.find(it->id);
    if (bit == breakers_.end()) {  // defensive: breaker lost => drop entry
      it = tripped_.erase(it);
      continue;
    }
    CircuitBreaker& br = bit->second;
    if (!br.probe_due(fleet_now_us_)) {
      ++it;
      continue;
    }
    // A probe must pass the same density test as a fresh admission so a
    // recovering session cannot push the fleet over its utilization
    // bound — but it is NOT appended to the admission log: the log is a
    // pure function of the submission sequence (replayable), and probe
    // timing depends on measured failures.
    const double density = it->snap.cost_estimate_us / it->spec.deadline_us;
    const AdmissionVerdict v = admission_.decide(
        density, active_density_, active_.size(), queued_.size());
    if (v != AdmissionVerdict::kAdmitted) {
      ++it;  // capacity is tight; retry next tick, backoff unchanged
      continue;
    }
    br.begin_probe();
    journal_.push(support::EventKind::kBreakerProbe, tick_,
                  static_cast<std::int64_t>(it->id), 0, br.last_backoff_us());

    std::unique_ptr<Session> s = build_session(it->id, std::move(it->spec));
    s->restore(it->snap);
    s->set_next_due_us(fleet_now_us_ + s->deadline_us());
    if (tracing_armed_) s->arm_tracing(trace_capacity_);
    // Fresh SLO tracker, like the stats: the restored session's burn
    // restarts from zero rather than re-paging off pre-trip history.
    attach_slo(it->id);
    set_state(it->id, SessionState::kActive);
    active_density_ += s->density();
    m_restored_.inc();
    journal_.push(support::EventKind::kSessionRestored, tick_,
                  static_cast<std::int64_t>(s->id()));
    active_.push_back(std::move(s));
    it = tripped_.erase(it);
  }
}

// ---- introspection ------------------------------------------------------

FleetStats EngineHost::stats() const {
  std::vector<const Session*> live;
  live.reserve(active_.size());
  for (const auto& s : active_) live.push_back(s.get());
  return stats_.aggregate(live);
}

const Session* EngineHost::session(SessionId id) const noexcept {
  for (const auto& s : active_) {
    if (s->id() == id) return s.get();
  }
  return nullptr;
}

Session* EngineHost::session(SessionId id) noexcept {
  return const_cast<Session*>(
      static_cast<const EngineHost*>(this)->session(id));
}

void EngineHost::recalibrate() {
  double density = 0;
  for (const auto& s : active_) {
    s->set_cost_estimate_us(s->observed_cost_p99_us());
    density += s->density();
  }
  active_density_ = density;
}

void EngineHost::arm_tracing(std::size_t capacity_per_worker) {
  tracing_armed_ = true;
  trace_capacity_ = capacity_per_worker;
  for (const auto& s : active_) s->arm_tracing(capacity_per_worker);
}

bool EngineHost::write_metrics(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << registry_.prometheus();
  return static_cast<bool>(f);
}

void EngineHost::start_metrics_exporter(const std::string& path,
                                        double period_ms) {
  stop_metrics_exporter();
  {
    std::lock_guard lk(exporter_mutex_);
    exporter_stop_ = false;
  }
  exporter_ = std::thread([this, path, period_ms] {
    const auto period = std::chrono::duration<double, std::milli>(
        period_ms > 0 ? period_ms : 1000.0);
    std::unique_lock lk(exporter_mutex_);
    for (;;) {
      // Write first so even a short-lived host leaves a scrape behind.
      lk.unlock();
      write_metrics(path);
      lk.lock();
      if (exporter_cv_.wait_for(lk, period, [&] { return exporter_stop_; })) {
        return;
      }
    }
  });
}

void EngineHost::stop_metrics_exporter() {
  {
    std::lock_guard lk(exporter_mutex_);
    exporter_stop_ = true;
  }
  exporter_cv_.notify_all();
  if (exporter_.joinable()) exporter_.join();
}

bool EngineHost::write_chrome_trace(const std::string& path) const {
  std::vector<support::TraceProcess> procs = retired_traces_;
  for (const auto& s : active_) {
    procs.push_back({s->name(), static_cast<std::uint32_t>(s->id()),
                     s->recorder().collect()});
  }
  return support::write_chrome_trace(path, procs);
}

}  // namespace djstar::serve
