#include "djstar/serve/breaker.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace djstar::serve {
namespace {

[[noreturn]] void bad_value(std::string_view text, const char* why) {
  throw std::invalid_argument(
      "invalid breaker config '" + std::string(text) + "': " + why +
      " (expected K,backoff_ms — e.g. \"4,50\"; K = 0 disables)");
}

std::string_view trim(std::string_view t) {
  std::size_t b = 0, e = t.size();
  while (b < e && std::isspace(static_cast<unsigned char>(t[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(t[e - 1]))) --e;
  return t.substr(b, e - b);
}

unsigned long long parse_uint(std::string_view full, std::string_view t,
                              const char* field) {
  if (t.empty()) bad_value(full, field);
  if (t[0] == '-') bad_value(full, "negative");
  if (t[0] == '+') bad_value(full, "sign prefix not accepted");
  unsigned long long v = 0;
  for (char c : t) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      bad_value(full, "not a number");
    }
    v = v * 10 + static_cast<unsigned long long>(c - '0');
    if (v > 1'000'000'000ULL) break;  // far past any sane value; clamps
  }
  return std::min(v, 1'000'000'000ULL);
}

// SplitMix64: tiny, stateless, and good enough to decorrelate probe
// times; seeded per (host seed, session id, trip count) so replays are
// bit-identical.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BreakerConfig BreakerConfig::parse(std::string_view text) {
  const std::string_view t = trim(text);
  if (t.empty()) bad_value(text, "empty");
  const std::size_t comma = t.find(',');
  if (comma == std::string_view::npos) bad_value(text, "missing comma");
  if (t.find(',', comma + 1) != std::string_view::npos) {
    bad_value(text, "too many fields");
  }
  BreakerConfig cfg;
  cfg.trip_failures = static_cast<unsigned>(
      parse_uint(text, trim(t.substr(0, comma)), "empty failure count"));
  const unsigned long long ms =
      parse_uint(text, trim(t.substr(comma + 1)), "empty backoff");
  if (cfg.trip_failures > 0 && ms == 0) bad_value(text, "zero backoff");
  cfg.backoff_ms = static_cast<double>(ms);
  cfg.max_backoff_ms = std::max(cfg.max_backoff_ms, cfg.backoff_ms);
  return cfg;
}

std::optional<BreakerConfig> BreakerConfig::from_env(const char* var) {
  const char* env = std::getenv(var);
  if (env == nullptr) return std::nullopt;
  return parse(env);
}

const char* to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& cfg, std::uint64_t seed,
                               SessionId id) noexcept
    : cfg_(cfg), seed_(seed), id_(id) {}

BreakerEvent CircuitBreaker::on_cycle(bool failed, double now_us) noexcept {
  switch (state_) {
    case BreakerState::kClosed:
      if (!failed) {
        fail_streak_ = 0;
        return BreakerEvent::kNone;
      }
      if (++fail_streak_ < cfg_.trip_failures) return BreakerEvent::kNone;
      open(now_us);
      return BreakerEvent::kTripped;

    case BreakerState::kHalfOpen:
      if (failed) {
        // One failure during the probe re-opens immediately with the
        // escalated backoff — no second K-streak grace.
        open(now_us);
        return BreakerEvent::kTripped;
      }
      if (++probe_streak_ < cfg_.half_open_probes) return BreakerEvent::kNone;
      state_ = BreakerState::kClosed;
      fail_streak_ = 0;
      probe_streak_ = 0;
      escalation_ = 0;  // a genuinely recovered session earns base backoff
      return BreakerEvent::kClosed;

    case BreakerState::kOpen:
      break;  // no session exists; the host never reports cycles here
  }
  return BreakerEvent::kNone;
}

void CircuitBreaker::begin_probe() noexcept {
  state_ = BreakerState::kHalfOpen;
  probe_streak_ = 0;
}

void CircuitBreaker::open(double now_us) noexcept {
  state_ = BreakerState::kOpen;
  fail_streak_ = 0;
  probe_streak_ = 0;
  ++trips_;
  ++escalation_;
  last_backoff_us_ = jittered_backoff_us();
  retry_at_us_ = now_us + last_backoff_us_;
}

double CircuitBreaker::jittered_backoff_us() noexcept {
  // Exponential escalation while open/half-open flapping continues,
  // capped; escalation_ has already been bumped so the first trip uses
  // the base backoff. A true close resets the exponent.
  double ms = cfg_.backoff_ms;
  for (std::uint64_t i = 1; i < escalation_ && ms < cfg_.max_backoff_ms;
       ++i) {
    ms *= cfg_.backoff_factor;
  }
  ms = std::min(ms, cfg_.max_backoff_ms);
  // Deterministic symmetric jitter in [-jitter_frac, +jitter_frac].
  const std::uint64_t r = splitmix64(seed_ ^ (id_ * 0x9e3779b9ULL) ^ trips_);
  const double frac =
      static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  ms *= 1.0 + cfg_.jitter_frac * (2.0 * frac - 1.0);
  return ms * 1000.0;
}

}  // namespace djstar::serve
