#include "djstar/serve/synthetic.hpp"

#include "djstar/support/time.hpp"

#include <cmath>
#include <memory>
#include <vector>

namespace djstar::serve {
namespace {

// splitmix64: cheap, seedable, and stable across platforms — the jitter
// pattern of a spec is reproducible from its seed alone.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) noexcept {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

// Calibrated node work: touch the lane, then spin out the remaining
// budget. Wall-clock based so the declared cost matches the admission
// estimate regardless of optimization level.
void lane_work(std::vector<float>& lane, float gain, double cost_us) {
  const auto t0 = support::now();
  do {
    for (float& x : lane) x = x * 0.999f + gain * 0.001f;
  } while (support::since_us(t0) < cost_us);
}

// Deterministic variant: a fixed number of lane sweeps instead of a
// wall-clock budget, so the result is a pure function of the inputs.
// The multiplier keeps the wall cost the same order of magnitude as the
// declared cost without tying correctness to the clock.
void lane_work_fixed(std::vector<float>& lane, float gain,
                     std::size_t sweeps) {
  for (std::size_t s = 0; s < sweeps; ++s) {
    for (float& x : lane) x = x * 0.999f + gain * 0.001f;
  }
}

/// Everything the WorkFns capture; owned by SessionSpec::arena.
struct SyntheticArena {
  std::vector<std::vector<float>> lanes;  // one per chain
  audio::AudioBuffer output{2, audio::kBlockSize};
  std::uint64_t cycle = 0;  // deterministic mode: source phase counter
};

}  // namespace

SessionSpec make_synthetic_session(const SyntheticSpec& spec) {
  const unsigned width = spec.width > 0 ? spec.width : 1;
  const unsigned depth = spec.depth > 0 ? spec.depth : 1;

  auto arena = std::make_shared<SyntheticArena>();
  arena->lanes.assign(width,
                      std::vector<float>(audio::kBlockSize, 0.25f));

  SessionSpec out;
  out.name = spec.name;
  out.qos = spec.qos;
  out.deadline_us = spec.deadline_us;
  out.output = &arena->output;

  std::uint64_t rng = spec.seed != 0 ? spec.seed : 1;
  core::TaskGraph& g = out.graph;
  std::vector<double>& costs = out.node_cost_us;

  SyntheticArena* a = arena.get();
  const bool deterministic = spec.deterministic;
  const core::NodeId source = g.add_node(
      "source",
      [a, deterministic] {
        // Deterministic mode varies the phase per cycle so consecutive
        // cycles produce distinct (but replayable) audio — a stream
        // comparison then checks ordering, not just one block.
        const float phase =
            deterministic ? 0.001f * static_cast<float>(a->cycle % 997) : 0.0f;
        for (auto& lane : a->lanes) {
          for (std::size_t i = 0; i < lane.size(); ++i) {
            lane[i] = 0.5f * std::sin(0.05f * static_cast<float>(i) + phase);
          }
        }
        ++a->cycle;
      },
      "Source");
  costs.push_back(1.0);

  // Nodes in the trailing sheddable_fraction of each chain may be masked
  // under degradation; the sink still reads the lane (upstream stages
  // keep it finite), so masking only cheapens the signal path.
  const unsigned shed_from = depth - std::min(
      depth, static_cast<unsigned>(
                 std::ceil(spec.sheddable_fraction * static_cast<double>(depth))));

  std::vector<core::NodeId> tails;
  tails.reserve(width);
  for (unsigned c = 0; c < width; ++c) {
    core::NodeId prev = source;
    for (unsigned d = 0; d < depth; ++d) {
      const double cost =
          spec.node_cost_us *
          (1.0 + spec.jitter * (2.0 * uniform01(rng) - 1.0));
      const float gain = 0.5f + 0.5f / static_cast<float>(d + 1);
      std::vector<float>* lane = &a->lanes[c];
      core::WorkFn work;
      if (deterministic) {
        const std::size_t sweeps = static_cast<std::size_t>(
            std::max(1.0, std::ceil(cost * 4.0)));
        work = [lane, gain, sweeps] { lane_work_fixed(*lane, gain, sweeps); };
      } else {
        work = [lane, gain, cost] { lane_work(*lane, gain, cost); };
      }
      const core::NodeId n = g.add_node(
          "chain" + std::to_string(c) + "_n" + std::to_string(d),
          std::move(work), "Chain" + std::to_string(c));
      costs.push_back(cost);
      g.add_edge(prev, n);
      if (d >= shed_from) out.sheddable.push_back(n);
      prev = n;
    }
    tails.push_back(prev);
  }

  const float mix = 1.0f / static_cast<float>(width);
  const core::NodeId sink = g.add_node(
      "sink",
      [a, mix] {
        for (std::size_t ch = 0; ch < a->output.channels(); ++ch) {
          auto dst = a->output.channel(ch);
          for (std::size_t i = 0; i < dst.size(); ++i) {
            float acc = 0.0f;
            for (const auto& lane : a->lanes) acc += lane[i];
            dst[i] = mix * acc;
          }
        }
      },
      "Master");
  costs.push_back(1.0);
  for (core::NodeId tail : tails) g.add_edge(tail, sink);

  out.arena = std::move(arena);
  return out;
}

}  // namespace djstar::serve
