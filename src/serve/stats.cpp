#include "djstar/serve/stats.hpp"

#include <algorithm>

namespace djstar::serve {

ServeStats::ServeStats() = default;

void ServeStats::note_admitted(QoS q) noexcept {
  ++admitted_;
  ++admitted_by_qos_[rank(q)];
}

void ServeStats::note_queued_depth(std::size_t depth) noexcept {
  queued_peak_ = std::max(queued_peak_, static_cast<std::uint64_t>(depth));
}

void ServeStats::retire(const Session& s, bool was_shed) {
  const unsigned q = rank(s.qos());
  if (was_shed) {
    ++shed_;
    ++shed_by_qos_[q];
  } else {
    ++closed_;
  }
  Retained& r = retained_[q];
  r.cycles += s.counters().cycles;
  r.misses += s.counters().misses;
  r.latency.merge(s.latency_histogram());
}

FleetStats ServeStats::aggregate(std::span<const Session* const> live) const {
  FleetStats f;
  f.ticks = ticks_;
  f.submitted = submitted_;
  f.admitted = admitted_;
  f.queued_peak = queued_peak_;
  f.rejected = rejected_;
  f.shed = shed_;
  f.closed = closed_;
  f.overload_events = overload_events_;

  // Per-QoS: retained departed sessions + live ones, merged into one
  // histogram per class, then one fleet-wide histogram.
  std::array<support::Histogram, kQoSCount> qos_hist{
      support::Histogram(0.0, 4.0 * audio::kDeadlineUs, kLatencyBins),
      support::Histogram(0.0, 4.0 * audio::kDeadlineUs, kLatencyBins),
      support::Histogram(0.0, 4.0 * audio::kDeadlineUs, kLatencyBins)};
  for (unsigned q = 0; q < kQoSCount; ++q) {
    const Retained& r = retained_[q];
    f.by_qos[q].sessions = admitted_by_qos_[q];
    f.by_qos[q].shed = shed_by_qos_[q];
    f.by_qos[q].cycles = r.cycles;
    f.by_qos[q].misses = r.misses;
    qos_hist[q].merge(r.latency);
  }
  for (const Session* s : live) {
    const unsigned q = rank(s->qos());
    f.by_qos[q].cycles += s->counters().cycles;
    f.by_qos[q].misses += s->counters().misses;
    qos_hist[q].merge(s->latency_histogram());

    SessionStatsView v;
    v.id = s->id();
    v.name = s->name();
    v.qos = s->qos();
    v.cycles = s->counters().cycles;
    v.misses = s->counters().misses;
    v.miss_rate = v.cycles ? static_cast<double>(v.misses) /
                                 static_cast<double>(v.cycles)
                           : 0.0;
    v.p50_latency_us = s->latency_histogram().quantile(0.50);
    v.p99_latency_us = s->latency_histogram().quantile(0.99);
    v.level = s->supervisor().level();
    v.cost_estimate_us = s->cost_estimate_us();
    v.deadline_us = s->deadline_us();
    f.sessions.push_back(std::move(v));
  }

  support::Histogram fleet(0.0, 4.0 * audio::kDeadlineUs, kLatencyBins);
  for (unsigned q = 0; q < kQoSCount; ++q) {
    QoSAggregate& a = f.by_qos[q];
    a.miss_rate = a.cycles ? static_cast<double>(a.misses) /
                                 static_cast<double>(a.cycles)
                           : 0.0;
    a.p50_latency_us = qos_hist[q].quantile(0.50);
    a.p99_latency_us = qos_hist[q].quantile(0.99);
    f.cycles += a.cycles;
    f.misses += a.misses;
    fleet.merge(qos_hist[q]);
  }
  f.miss_rate = f.cycles ? static_cast<double>(f.misses) /
                               static_cast<double>(f.cycles)
                         : 0.0;
  f.p50_latency_us = fleet.quantile(0.50);
  f.p99_latency_us = fleet.quantile(0.99);
  return f;
}

}  // namespace djstar::serve
