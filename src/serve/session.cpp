#include "djstar/serve/session.hpp"

#include "djstar/serve/admission.hpp"
#include "djstar/support/assert.hpp"
#include "djstar/support/time.hpp"

#include <algorithm>
#include <vector>

namespace djstar::serve {
namespace {

engine::SupervisorConfig session_supervisor_cfg(engine::SupervisorConfig scfg,
                                                double deadline_us) {
  scfg.deadline_us = deadline_us;
  // One watchdog thread per session does not scale to a fleet; a stuck
  // session is the host's problem (future host-level watchdog).
  scfg.use_watchdog = false;
  return scfg;
}

}  // namespace

Session::Session(SessionId id, SessionSpec spec, core::Team& team,
                 const core::ExecOptions& exec,
                 const core::WorkStealingOptions& ws,
                 engine::SupervisorConfig scfg)
    : id_(id),
      spec_(std::move(spec)),
      compiled_(std::make_unique<core::CompiledGraph>(spec_.graph)),
      monitor_(spec_.deadline_us, /*keep_samples=*/true, /*reserve=*/4096),
      supervisor_(*compiled_,
                  session_supervisor_cfg(scfg, spec_.deadline_us)),
      latency_(0.0, 4.0 * spec_.deadline_us, kLatencyBins) {
  core::ExecOptions opts = exec;
  opts.threads = team.threads();
  opts.trace = &trace_;
  hosted_ = std::make_unique<core::WorkStealingExecutor>(*compiled_, team,
                                                         opts, ws);
  core::ExecOptions seq_opts = exec;
  seq_opts.threads = 1;
  seq_opts.trace = nullptr;
  fallback_ = std::make_unique<core::SequentialExecutor>(*compiled_, seq_opts);

  cost_estimate_us_ =
      spec_.cost_estimate_us > 0
          ? spec_.cost_estimate_us
          : estimate_graph_cost_us(*compiled_, spec_.node_cost_us,
                                   team.threads());
  if (spec_.faults.any()) compiled_->arm_faults(spec_.faults);
  DJSTAR_ASSERT_MSG(spec_.deadline_us > 0, "session deadline must be > 0");
}

void Session::apply_level(engine::DegradationLevel level) {
  if (level == applied_level_) return;
  const bool shed = level >= engine::DegradationLevel::kBypassFx;
  for (core::NodeId n : spec_.sheddable) {
    compiled_->set_node_masked(n, shed);
  }
  applied_level_ = level;
}

double Session::run_cycle(double wait_us, double allowed_us) {
  using engine::DegradationLevel;
  // Actuate the ladder level decided at the end of the previous cycle —
  // between cycles, where the compiled graph permits mutation.
  const DegradationLevel level = supervisor_.level();
  apply_level(level);
  // Profiling reuses the trace recorder as a cycle-scoped span buffer:
  // drop the previous cycle's spans now, between cycles (allocation-free).
  if (profiler_ != nullptr && trace_.armed()) trace_.clear_spans();
  const auto level_idx = static_cast<unsigned>(level);

  engine::CycleBreakdown c;
  // EDF dispatch delay counts against the session's deadline: a packet
  // served late is late no matter how fast its graph ran. The TP slot
  // is reused for it (the serve layer has no timecode phase).
  c.tp_us = wait_us;

  if (level == DegradationLevel::kSafeMode) {
    supervisor_.supervise_safe_mode_cycle(c);
    last_outcome_ = engine::CycleOutcome::kSafeMode;
  } else {
    const auto t0 = support::now();
    core::Executor* exec = level >= DegradationLevel::kSequentialFallback
                               ? static_cast<core::Executor*>(fallback_.get())
                               : static_cast<core::Executor*>(hosted_.get());
    exec->run_cycle();
    c.graph_us = support::since_us(t0);
    last_outcome_ = supervisor_.supervise_cycle(
        c, spec_.output != nullptr ? *spec_.output : silent_);
  }
  monitor_.add(c, level_idx);

  const double completion = c.total_us();
  ++counters_.cycles;
  const bool missed = completion > allowed_us;
  if (missed) ++counters_.misses;
  if (level != DegradationLevel::kFull) ++counters_.degraded_cycles;
  latency_.add(completion);

  if (profiler_ != nullptr) {
    // Safe mode / sequential fallback record no spans into trace_; the
    // empty attribution still counts the cycle so exports stay exact.
    trace_.collect_into(prof_spans_);
    profiler_->on_cycle(prof_spans_, missed, counters_.cycles);
  }
  return completion;
}

void Session::enable_profiler(const engine::ProfilerConfig& pcfg,
                              support::MetricsRegistry* registry,
                              support::EventJournal* journal) {
  if (pcfg.mode == engine::ProfMode::kOff) {
    profiler_.reset();
    return;
  }
  if (!trace_.armed()) {
    // Cycle-scoped buffer: one slot per node is enough for run spans plus
    // a generous margin for wait spans.
    trace_.arm(hosted_->threads(), 2 * compiled_->node_count() + 64);
  }
  std::vector<std::vector<std::int32_t>> preds(compiled_->node_count());
  for (std::size_t n = 0; n < compiled_->node_count(); ++n) {
    for (core::NodeId s : spec_.graph.successors(static_cast<core::NodeId>(n))) {
      preds[static_cast<std::size_t>(s)].push_back(
          static_cast<std::int32_t>(n));
    }
  }
  profiler_ = std::make_unique<engine::CycleProfiler>(
      pcfg, std::move(preds), spec_.deadline_us, registry, journal);
}

void Session::arm_faults(const core::chaos::FaultPlan& plan) {
  compiled_->arm_faults(plan);
}

void Session::disarm_faults() noexcept { compiled_->disarm_faults(); }

double Session::observed_cost_p99_us() const {
  const auto& xs = monitor_.graph_samples();
  if (xs.size() < 32) return cost_estimate_us_;
  std::vector<double> sorted(xs);
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      0.99 * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void Session::arm_tracing(std::size_t capacity_per_worker) {
  trace_.arm(hosted_->threads(), capacity_per_worker);
}

void Session::restore(const SessionSnapshot& snap) {
  // Walk the fresh supervisor's ladder down to the saved level so a
  // session that tripped while degraded does not restart at full quality
  // only to fault again; the next clean window recovers it normally.
  while (supervisor_.level() < snap.level && supervisor_.force_degrade()) {
  }
  if (snap.cost_estimate_us > 0) cost_estimate_us_ = snap.cost_estimate_us;
}

}  // namespace djstar::serve
