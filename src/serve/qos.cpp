#include "djstar/serve/qos.hpp"

namespace djstar::serve {

const char* to_string(QoS q) noexcept {
  switch (q) {
    case QoS::kRealtime: return "realtime";
    case QoS::kStandard: return "standard";
    case QoS::kBestEffort: return "besteffort";
  }
  return "?";
}

std::optional<QoS> parse_qos(std::string_view name) noexcept {
  if (name == "realtime" || name == "rt") return QoS::kRealtime;
  if (name == "standard" || name == "std") return QoS::kStandard;
  if (name == "besteffort" || name == "be") return QoS::kBestEffort;
  return std::nullopt;
}

const char* to_string(SessionState s) noexcept {
  switch (s) {
    case SessionState::kQueued: return "queued";
    case SessionState::kActive: return "active";
    case SessionState::kShed: return "shed";
    case SessionState::kClosed: return "closed";
    case SessionState::kRejected: return "rejected";
    case SessionState::kTripped: return "tripped";
  }
  return "?";
}

}  // namespace djstar::serve
