#include "djstar/control/auto_dj.hpp"

#include <algorithm>
#include <cmath>

namespace djstar::control {
namespace {

bool camelot_compatible(const analysis::KeyEstimate& a,
                        const analysis::KeyEstimate& b) {
  const auto ca = analysis::camelot_code(a);
  const auto cb = analysis::camelot_code(b);
  const int ha = std::stoi(ca.substr(0, ca.size() - 1));
  const int hb = std::stoi(cb.substr(0, cb.size() - 1));
  if (ca.back() == cb.back()) {
    const int d = std::abs(ha - hb);
    return d == 0 || d == 1 || d == 11;
  }
  return ha == hb;
}

}  // namespace

double AutoDj::score(const engine::LibraryEntry& current,
                     const engine::LibraryEntry& candidate) const {
  const double bpm_a = current.analysis.beatgrid.bpm;
  const double bpm_b = candidate.analysis.beatgrid.bpm;
  if (bpm_a <= 0 || bpm_b <= 0) return -1e9;

  const double stretch = std::abs(bpm_a / bpm_b - 1.0);
  if (stretch > cfg_.max_tempo_stretch) return -1e9;

  double s = -cfg_.tempo_weight * stretch * 100.0;
  if (camelot_compatible(current.analysis.key, candidate.analysis.key)) {
    s += cfg_.key_bonus;
  }
  s -= cfg_.loudness_weight *
       std::abs(current.analysis.loudness.loudness_db -
                candidate.analysis.loudness.loudness_db);
  return s;
}

const engine::LibraryEntry* AutoDj::pick_next(
    std::uint32_t current_id) const {
  const auto* current = library_.find(current_id);
  if (current == nullptr) return nullptr;
  const engine::LibraryEntry* best = nullptr;
  double best_score = -1e8;  // below this = unplayable
  for (const auto& e : library_.entries()) {
    if (e.id == current_id) continue;
    const double s = score(*current, e);
    if (s > best_score) {
      best_score = s;
      best = &e;
    }
  }
  return best;
}

std::optional<TransitionPlan> AutoDj::plan_transition(
    std::uint32_t current_id, unsigned from_deck, unsigned to_deck,
    std::size_t start_cycle, std::size_t duration_cycles) const {
  const auto* current = library_.find(current_id);
  const auto* next = pick_next(current_id);
  if (current == nullptr || next == nullptr || duration_cycles == 0) {
    return std::nullopt;
  }

  TransitionPlan plan;
  plan.from_id = current_id;
  plan.to_id = next->id;
  plan.start_cycle = start_cycle;
  plan.duration_cycles = duration_cycles;
  plan.pitch_ratio =
      current->analysis.beatgrid.bpm / next->analysis.beatgrid.bpm;

  auto& s = plan.script;
  const auto fdeck = static_cast<std::uint8_t>(from_deck);
  const auto tdeck = static_cast<std::uint8_t>(to_deck);

  // Prepare the incoming deck: beat-matched pitch, fader up, bass cut
  // (two basslines at once is the classic trainwreck).
  s.at(start_cycle, {EventType::kDeckPitch, tdeck, 0,
                     static_cast<float>(plan.pitch_ratio)});
  s.at(start_cycle, {EventType::kChannelFader, tdeck, 0, 1.0f});
  s.at(start_cycle, {EventType::kEqLow, tdeck, 0, -90.0f});
  s.at(start_cycle, {EventType::kCueToggle, tdeck, 0, 1.0f});

  // Crossfader sweep in 8 steps across the duration. Deck pairing
  // follows the mixer law: decks A/C on side a, B/D on side b.
  const bool incoming_on_b = (to_deck % 2) == 1;
  for (int step = 0; step <= 8; ++step) {
    const float t = static_cast<float>(step) / 8.0f;
    const float pos = incoming_on_b ? t : 1.0f - t;
    s.at(start_cycle + step * duration_cycles / 8,
         {EventType::kCrossfader, 0, 0, pos});
  }

  // Bass swap at the halfway point.
  const std::size_t mid = start_cycle + duration_cycles / 2;
  s.at(mid, {EventType::kEqLow, fdeck, 0, -90.0f});
  s.at(mid, {EventType::kEqLow, tdeck, 0, 0.0f});

  // Outgoing deck out at the end.
  const std::size_t end = start_cycle + duration_cycles;
  s.at(end, {EventType::kChannelFader, fdeck, 0, 0.0f});
  s.at(end, {EventType::kCueToggle, fdeck, 0, 0.0f});
  s.at(end, {EventType::kEqLow, fdeck, 0, 0.0f});

  return plan;
}

}  // namespace djstar::control
