#include "djstar/control/controller.hpp"

namespace djstar::control {
namespace {

float unit(std::uint8_t v) { return static_cast<float>(v) / 127.0f; }
float bipolar(std::uint8_t v) { return unit(v) * 2.0f - 1.0f; }
/// Mixer EQ range: -inf (kill) at 0, 0 dB at center, +6 dB at full.
float eq_db(std::uint8_t v) {
  if (v == 0) return -90.0f;
  return (unit(v) - 0.5f) * 2.0f * 6.0f;
}

}  // namespace

void SurfaceMapper::handle(const ControlMessage& msg) {
  const std::uint8_t deck = msg.channel;
  Event e;
  e.deck = deck;
  switch (msg.control) {
    case cc::kFader:
      e.type = EventType::kChannelFader;
      e.value = unit(msg.value);
      break;
    case cc::kFilter:
      e.type = EventType::kFilterMorph;
      e.value = bipolar(msg.value);
      break;
    case cc::kEqLow:
      e.type = EventType::kEqLow;
      e.value = eq_db(msg.value);
      break;
    case cc::kEqMid:
      e.type = EventType::kEqMid;
      e.value = eq_db(msg.value);
      break;
    case cc::kEqHigh:
      e.type = EventType::kEqHigh;
      e.value = eq_db(msg.value);
      break;
    case cc::kPitch:
      e.type = EventType::kDeckPitch;
      // +/- 8% pitch fader, like a turntable.
      e.value = 1.0f + bipolar(msg.value) * 0.08f;
      break;
    case cc::kCrossfader:
      e.type = EventType::kCrossfader;
      e.value = unit(msg.value);
      break;
    case cc::kCue:
      e.type = EventType::kCueToggle;
      e.value = msg.value >= 64 ? 1.0f : 0.0f;
      break;
    case cc::kSampler:
      e.type = EventType::kSamplerTrigger;
      break;
    default:
      if (msg.control >= cc::kFxBase && msg.control < cc::kFxBase + 4) {
        e.type = EventType::kFxEnable;
        e.index = static_cast<std::uint8_t>(msg.control - cc::kFxBase);
        e.value = msg.value >= 64 ? 1.0f : 0.0f;
        break;
      }
      if (msg.control >= cc::kFxAmountBase &&
          msg.control < cc::kFxAmountBase + 4) {
        e.type = EventType::kFxAmount;
        e.index = static_cast<std::uint8_t>(msg.control - cc::kFxAmountBase);
        e.value = unit(msg.value);
        break;
      }
      ++unmapped_;
      return;
  }
  bus_.post(e);
}

EngineBinding::EngineBinding(EventBus& bus, engine::AudioEngine& engine)
    : bus_(bus), engine_(engine) {
  auto bind = [&](EventType t) {
    subscriptions_.push_back(
        bus_.subscribe(t, [this](const Event& e) { apply(e); }));
  };
  bind(EventType::kCrossfader);
  bind(EventType::kChannelFader);
  bind(EventType::kFilterMorph);
  bind(EventType::kEqLow);
  bind(EventType::kEqMid);
  bind(EventType::kEqHigh);
  bind(EventType::kFxEnable);
  bind(EventType::kFxAmount);
  bind(EventType::kDeckPitch);
  bind(EventType::kCueToggle);
  bind(EventType::kSamplerTrigger);
}

EngineBinding::~EngineBinding() {
  for (std::size_t id : subscriptions_) bus_.unsubscribe(id);
}

void EngineBinding::apply(const Event& e) {
  auto& gn = engine_.graph_nodes();
  const unsigned deck = e.deck < 4 ? e.deck : 0;
  switch (e.type) {
    case EventType::kCrossfader:
      gn.mixer().set_crossfader(e.value);
      break;
    case EventType::kChannelFader:
      gn.channel(deck).set_fader(e.value);
      break;
    case EventType::kFilterMorph:
      gn.channel(deck).set_filter_morph(e.value);
      break;
    case EventType::kEqLow:
    case EventType::kEqMid:
    case EventType::kEqHigh: {
      // The EQ setter takes all three bands; cache per deck.
      auto& bands = eq_cache_[deck];
      if (e.type == EventType::kEqLow) bands[0] = e.value;
      if (e.type == EventType::kEqMid) bands[1] = e.value;
      if (e.type == EventType::kEqHigh) bands[2] = e.value;
      gn.channel(deck).set_eq(bands[0], bands[1], bands[2]);
      break;
    }
    case EventType::kFxEnable:
      gn.effect(deck, e.index % 4).set_enabled(e.value != 0.0f);
      break;
    case EventType::kFxAmount:
      gn.effect(deck, e.index % 4).set_amount(e.value);
      break;
    case EventType::kDeckPitch:
      engine_.deck(deck).set_pitch(e.value);
      break;
    case EventType::kCueToggle:
      gn.cue_control().set_cue(deck, e.value != 0.0f);
      break;
    case EventType::kSamplerTrigger:
      gn.sampler().trigger();
      break;
    default:
      return;  // status events are not engine-bound
  }
  ++applied_;
}

void StatusPublisher::publish() {
  for (std::uint8_t d = 0; d < 4; ++d) {
    bus_.post({EventType::kMeterUpdate, d, 0,
               engine_.graph_nodes().deck_meter(d).peak()});
  }
  bus_.post({EventType::kMeterUpdate, 4, 0,
             engine_.graph_nodes().master_meter().peak()});
  bus_.post({EventType::kTempoUpdate, 0, 0,
             static_cast<float>(engine_.master_tempo_bpm())});
  const std::size_t misses = engine_.monitor().misses();
  if (misses > last_misses_) {
    bus_.post({EventType::kDeadlineMiss, 0, 0,
               static_cast<float>(engine_.monitor().total().max())});
    last_misses_ = misses;
  }
}

}  // namespace djstar::control
