#include "djstar/control/event_bus.hpp"

namespace djstar::control {

std::size_t EventBus::subscribe(EventType type, Handler handler) {
  const std::size_t id = next_id_++;
  subs_.push_back({id, type, std::move(handler)});
  return id;
}

void EventBus::unsubscribe(std::size_t id) {
  for (auto it = subs_.begin(); it != subs_.end(); ++it) {
    if (it->id == id) {
      subs_.erase(it);
      return;
    }
  }
}

void EventBus::post(const Event& e) {
  const std::lock_guard<std::mutex> lk(mutex_);
  queue_.push_back(e);
}

std::size_t EventBus::dispatch() {
  // Snapshot the queue so handlers that post() don't extend this round
  // (and so no handler ever runs under the lock — CP.22).
  std::deque<Event> batch;
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    batch.swap(queue_);
  }
  for (const Event& e : batch) {
    for (const auto& sub : subs_) {
      if (sub.type == e.type) sub.handler(e);
    }
  }
  return batch.size();
}

std::size_t EventBus::pending() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return queue_.size();
}

}  // namespace djstar::control
