#include "djstar/control/session.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace djstar::control {

std::string to_text(const Preset& preset) {
  std::ostringstream os;
  std::string name = preset.name.empty() ? "unnamed" : preset.name;
  std::replace(name.begin(), name.end(), ' ', '_');
  os << "preset " << name << '\n';
  for (const Event& e : preset.events) {
    os << "event " << static_cast<int>(e.type) << ' '
       << static_cast<int>(e.deck) << ' ' << static_cast<int>(e.index) << ' '
       << e.value << '\n';
  }
  return os.str();
}

std::optional<Preset> preset_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string keyword;
  Preset p;
  bool have_header = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    ls >> keyword;
    if (keyword == "preset") {
      if (!(ls >> p.name)) return std::nullopt;
      have_header = true;
    } else if (keyword == "event") {
      int type = 0, deck = 0, index = 0;
      float value = 0;
      if (!(ls >> type >> deck >> index >> value)) return std::nullopt;
      if (type < 0 || type > static_cast<int>(EventType::kDeadlineMiss)) {
        return std::nullopt;
      }
      p.events.push_back({static_cast<EventType>(type),
                          static_cast<std::uint8_t>(deck),
                          static_cast<std::uint8_t>(index), value});
    } else {
      return std::nullopt;
    }
  }
  if (!have_header) return std::nullopt;
  return p;
}

bool save_preset(const Preset& preset, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_text(preset);
  return static_cast<bool>(f);
}

std::optional<Preset> load_preset(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::stringstream ss;
  ss << f.rdbuf();
  return preset_from_text(ss.str());
}

void SessionScript::at(std::size_t cycle, const Event& e) {
  steps_.push_back({cycle, e});
}

void SessionScript::at(std::size_t cycle, const Preset& preset) {
  for (const Event& e : preset.events) steps_.push_back({cycle, e});
}

std::size_t SessionScript::step(std::size_t cycle, EventBus& bus) const {
  std::size_t fired = 0;
  for (const Step& s : steps_) {
    if (s.cycle == cycle) {
      bus.post(s.event);
      ++fired;
    }
  }
  return fired;
}

std::size_t SessionScript::length() const noexcept {
  std::size_t last = 0;
  for (const Step& s : steps_) last = std::max(last, s.cycle);
  return last;
}

std::size_t run_session(engine::AudioEngine& engine, EventBus& bus,
                        const SessionScript& script, std::size_t cycles,
                        engine::Recorder* recorder) {
  std::size_t fired = 0;
  for (std::size_t c = 0; c < cycles; ++c) {
    fired += script.step(c, bus);
    bus.dispatch();
    engine.run_cycle();
    if (recorder != nullptr) {
      recorder->capture(engine.graph_nodes().record().output());
    }
  }
  return fired;
}

}  // namespace djstar::control
