#include "djstar/stretch/resampler.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace djstar::stretch {
namespace {

// History samples kept before the read position so every interpolator has
// enough left context (sinc-8 needs 4).
constexpr std::size_t kLeftContext = 4;

float sinc(double x) {
  if (std::abs(x) < 1e-9) return 1.0f;
  const double px = std::numbers::pi * x;
  return static_cast<float>(std::sin(px) / px);
}

}  // namespace

Resampler::Resampler(ResampleQuality q) : quality_(q) { reset(); }

void Resampler::reset() noexcept {
  history_.assign(kLeftContext * 2, 0.0f);
  pos_ = kLeftContext;
}

float Resampler::interpolate(double idx) const noexcept {
  const auto i = static_cast<std::size_t>(idx);
  const auto f = static_cast<float>(idx - static_cast<double>(i));
  auto sample = [&](std::ptrdiff_t k) -> float {
    const auto j = static_cast<std::ptrdiff_t>(i) + k;
    if (j < 0 || j >= static_cast<std::ptrdiff_t>(history_.size())) return 0.0f;
    return history_[static_cast<std::size_t>(j)];
  };
  switch (quality_) {
    case ResampleQuality::kLinear: {
      return sample(0) + f * (sample(1) - sample(0));
    }
    case ResampleQuality::kCubic: {
      // Catmull-Rom.
      const float p0 = sample(-1), p1 = sample(0), p2 = sample(1),
                  p3 = sample(2);
      const float f2 = f * f, f3 = f2 * f;
      return 0.5f * ((2.0f * p1) + (-p0 + p2) * f +
                     (2.0f * p0 - 5.0f * p1 + 4.0f * p2 - p3) * f2 +
                     (-p0 + 3.0f * p1 - 3.0f * p2 + p3) * f3);
    }
    case ResampleQuality::kSinc8: {
      float acc = 0.0f, wsum = 0.0f;
      for (int k = -3; k <= 4; ++k) {
        const double x = static_cast<double>(k) - f;
        // Hann window over the 8-tap span.
        const double hann =
            0.5 + 0.5 * std::cos(std::numbers::pi * x / 4.0);
        const float w = sinc(x) * static_cast<float>(hann);
        acc += w * sample(k);
        wsum += w;
      }
      return wsum != 0.0f ? acc / wsum : 0.0f;
    }
  }
  return 0.0f;
}

void Resampler::process(std::span<const float> in, double ratio,
                        std::vector<float>& out) {
  if (ratio <= 0.0) return;
  history_.insert(history_.end(), in.begin(), in.end());
  // Produce while we have right context (4 samples for sinc/cubic).
  const double limit = static_cast<double>(history_.size()) - 5.0;
  while (pos_ <= limit) {
    out.push_back(interpolate(pos_));
    pos_ += ratio;
  }
  // Drop consumed history, keeping kLeftContext before pos_.
  const auto keep_from = static_cast<std::size_t>(
      std::max(0.0, pos_ - static_cast<double>(kLeftContext)));
  if (keep_from > 0) {
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<std::ptrdiff_t>(keep_from));
    pos_ -= static_cast<double>(keep_from);
  }
}

std::vector<float> Resampler::convert(std::span<const float> in, double ratio,
                                      ResampleQuality q) {
  Resampler r(q);
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(static_cast<double>(in.size()) / ratio) + 8);
  r.process(in, ratio, out);
  // Flush with silence so the tail is produced.
  const float zeros[8] = {};
  r.process(zeros, ratio, out);
  return out;
}

}  // namespace djstar::stretch
