#include "djstar/stretch/phase_vocoder.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "djstar/support/assert.hpp"

namespace djstar::stretch {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

double wrap_phase(double p) {
  // Principal value in (-pi, pi].
  p = std::fmod(p + std::numbers::pi, kTwoPi);
  if (p < 0) p += kTwoPi;
  return p - std::numbers::pi;
}
}  // namespace

PhaseVocoder::PhaseVocoder(const PhaseVocoderConfig& cfg)
    : cfg_(cfg), fft_(cfg.fft_size), window_(cfg.fft_size) {
  DJSTAR_ASSERT_MSG(cfg.synthesis_hop > 0 &&
                        cfg.synthesis_hop <= cfg.fft_size / 2,
                    "synthesis hop must be in (0, fft_size/2]");
  fft::make_window(fft::WindowType::kHann, window_);
}

std::vector<float> PhaseVocoder::stretch(std::span<const float> in,
                                         double rate) {
  rate = std::clamp(rate, 0.25, 4.0);
  const std::size_t n = cfg_.fft_size;
  const std::size_t bins = fft_.bins();
  const double analysis_hop = static_cast<double>(cfg_.synthesis_hop) * rate;

  if (in.size() < n + static_cast<std::size_t>(analysis_hop) + 1) return {};

  const auto frames = static_cast<std::size_t>(
      (static_cast<double>(in.size()) - n) / analysis_hop);
  std::vector<float> out(frames * cfg_.synthesis_hop + n, 0.0f);
  std::vector<float> norm(out.size(), 0.0f);

  std::vector<float> frame(n);
  std::vector<std::complex<float>> spectrum(bins);
  std::vector<double> prev_phase(bins, 0.0);
  std::vector<double> synth_phase(bins, 0.0);
  std::vector<double> magnitude(bins, 0.0);

  // Expected per-hop phase advance of each bin's center frequency.
  std::vector<double> expected(bins);
  for (std::size_t k = 0; k < bins; ++k) {
    expected[k] = kTwoPi * static_cast<double>(k) * analysis_hop /
                  static_cast<double>(n);
  }

  for (std::size_t f = 0; f < frames; ++f) {
    const auto pos = static_cast<std::size_t>(f * analysis_hop);
    for (std::size_t i = 0; i < n; ++i) {
      frame[i] = in[pos + i] * window_[i];
    }
    fft_.forward(frame, spectrum);

    for (std::size_t k = 0; k < bins; ++k) {
      const double mag = std::abs(spectrum[k]);
      const double phase = std::arg(spectrum[k]);
      // Instantaneous frequency: bin center + wrapped deviation.
      const double delta = wrap_phase(phase - prev_phase[k] - expected[k]);
      const double true_advance = expected[k] + delta;
      prev_phase[k] = phase;

      if (f == 0) {
        synth_phase[k] = phase;  // lock first frame to the analysis phase
      } else {
        // Advance the synthesis phase by the true frequency scaled to
        // the synthesis hop.
        synth_phase[k] = wrap_phase(
            synth_phase[k] + true_advance / rate *
                                 (static_cast<double>(cfg_.synthesis_hop) *
                                  rate / analysis_hop));
      }
      magnitude[k] = mag;
      spectrum[k] = std::polar(static_cast<float>(mag),
                               static_cast<float>(synth_phase[k]));
    }

    fft_.inverse(spectrum, frame);
    const std::size_t opos = f * cfg_.synthesis_hop;
    for (std::size_t i = 0; i < n; ++i) {
      out[opos + i] += frame[i] * window_[i];
      norm[opos + i] += window_[i] * window_[i];
    }
  }

  // Normalize the overlap-add by the accumulated window energy.
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (norm[i] > 1e-6f) out[i] /= norm[i];
  }
  // Trim the un-normalized tail region.
  out.resize(frames * cfg_.synthesis_hop);
  return out;
}

}  // namespace djstar::stretch
