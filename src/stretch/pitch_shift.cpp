#include "djstar/stretch/pitch_shift.hpp"

#include <algorithm>
#include <cmath>

namespace djstar::stretch {

PitchShifter::PitchShifter(const WsolaConfig& cfg) : wsola_(cfg) {
  set_ratio(1.0);
}

void PitchShifter::set_ratio(double ratio) noexcept {
  ratio_ = std::clamp(ratio, 0.5, 2.0);
  // Stretch time by 1/ratio (longer for upshift), then read faster by
  // ratio: net duration 1:1, pitch scaled by ratio.
  wsola_.set_rate(1.0 / ratio_);
}

void PitchShifter::set_semitones(double semitones) noexcept {
  set_ratio(std::pow(2.0, semitones / 12.0));
}

void PitchShifter::reset() noexcept {
  wsola_.reset();
  resampler_.reset();
  stretch_buf_.clear();
  out_.clear();
  read_ = 0;
}

void PitchShifter::push(std::span<const float> in) {
  wsola_.push(in);
  produce();
}

void PitchShifter::produce() {
  const std::size_t avail = wsola_.available();
  if (avail == 0) return;
  stretch_buf_.resize(avail);
  wsola_.pull(stretch_buf_);
  resampler_.process(stretch_buf_, ratio_, out_);
}

std::size_t PitchShifter::pull(std::span<float> out) {
  const std::size_t n = std::min(out.size(), available());
  for (std::size_t i = 0; i < n; ++i) out[i] = out_[read_ + i];
  read_ += n;
  if (read_ > (1u << 15)) {
    out_.erase(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(read_));
    read_ = 0;
  }
  return n;
}

std::vector<float> PitchShifter::shift(std::span<const float> in,
                                       double ratio, const WsolaConfig& cfg) {
  PitchShifter ps(cfg);
  ps.set_ratio(ratio);
  ps.push(in);
  std::vector<float> pad(cfg.frame_size + cfg.tolerance + 8, 0.0f);
  ps.push(pad);
  std::vector<float> out(ps.available());
  ps.pull(out);
  return out;
}

}  // namespace djstar::stretch
