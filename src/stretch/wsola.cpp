#include "djstar/stretch/wsola.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "djstar/support/assert.hpp"

namespace djstar::stretch {

Wsola::Wsola(const WsolaConfig& cfg) : cfg_(cfg) {
  DJSTAR_ASSERT_MSG(cfg_.overlap < cfg_.frame_size,
                    "overlap must be smaller than the frame");
  window_.resize(cfg_.overlap);
  for (std::size_t i = 0; i < cfg_.overlap; ++i) {
    // Raised-cosine crossfade over the overlap region.
    window_[i] = 0.5f - 0.5f * static_cast<float>(std::cos(
                                   std::numbers::pi * static_cast<double>(i) /
                                   static_cast<double>(cfg_.overlap)));
  }
  reset();
}

void Wsola::set_rate(double rate) noexcept {
  rate_ = std::clamp(rate, 0.25, 4.0);
}

void Wsola::reset() noexcept {
  input_.clear();
  output_.clear();
  out_read_ = 0;
  in_pos_ = 0.0;
  prev_tail_.assign(cfg_.overlap, 0.0f);
  primed_ = false;
}

void Wsola::push(std::span<const float> in) {
  input_.insert(input_.end(), in.begin(), in.end());
  produce_frames();
}

std::size_t Wsola::available() const noexcept {
  return output_.size() - out_read_;
}

std::size_t Wsola::pull(std::span<float> out) {
  const std::size_t n = std::min(out.size(), available());
  for (std::size_t i = 0; i < n; ++i) out[i] = output_[out_read_ + i];
  out_read_ += n;
  // Periodically compact the output FIFO.
  if (out_read_ > 1 << 15) {
    output_.erase(output_.begin(),
                  output_.begin() + static_cast<std::ptrdiff_t>(out_read_));
    out_read_ = 0;
  }
  return n;
}

std::size_t Wsola::best_offset(std::size_t ideal) const noexcept {
  // Search [ideal - tol, ideal + tol] for the start that maximizes
  // normalized cross-correlation between the previous tail and the
  // overlap region of the candidate frame.
  const std::size_t tol = cfg_.tolerance;
  const std::size_t lo = ideal > tol ? ideal - tol : 0;
  const std::size_t hi = ideal + tol;
  std::size_t best = ideal;
  double best_score = -1e30;
  for (std::size_t cand = lo; cand <= hi; ++cand) {
    if (cand + cfg_.frame_size > input_.size()) break;
    double corr = 0.0, energy = 1e-9;
    for (std::size_t i = 0; i < cfg_.overlap; ++i) {
      const double x = input_[cand + i];
      corr += static_cast<double>(prev_tail_[i]) * x;
      energy += x * x;
    }
    const double score = corr / std::sqrt(energy);
    if (score > best_score) {
      best_score = score;
      best = cand;
    }
  }
  return best;
}

void Wsola::produce_frames() {
  const std::size_t frame = cfg_.frame_size;
  const std::size_t overlap = cfg_.overlap;
  const std::size_t synth_hop = frame - overlap;

  for (;;) {
    const auto ideal = static_cast<std::size_t>(in_pos_);
    // Need the candidate window plus search tolerance ahead.
    if (ideal + frame + cfg_.tolerance > input_.size()) break;

    std::size_t start;
    if (!primed_) {
      start = ideal;
      primed_ = true;
      // First frame: emit it whole; its tail becomes the template.
      for (std::size_t i = 0; i < synth_hop; ++i) {
        output_.push_back(input_[start + i]);
      }
    } else {
      start = best_offset(ideal);
      // Crossfade prev_tail_ with the head of the chosen frame.
      for (std::size_t i = 0; i < overlap; ++i) {
        const float w = window_[i];
        output_.push_back((1.0f - w) * prev_tail_[i] +
                          w * input_[start + i]);
      }
      // Then the un-overlapped middle part.
      for (std::size_t i = overlap; i < synth_hop; ++i) {
        output_.push_back(input_[start + i]);
      }
    }
    // Stash the new tail.
    for (std::size_t i = 0; i < overlap; ++i) {
      prev_tail_[i] = input_[start + synth_hop + i];
    }
    in_pos_ += static_cast<double>(synth_hop) * rate_;
  }

  // Compact consumed input, keeping the search slack behind in_pos_.
  const std::size_t keep_behind = cfg_.tolerance + frame;
  const auto ipos = static_cast<std::size_t>(in_pos_);
  if (ipos > keep_behind + 4096) {
    const std::size_t drop = ipos - keep_behind;
    input_.erase(input_.begin(),
                 input_.begin() + static_cast<std::ptrdiff_t>(drop));
    in_pos_ -= static_cast<double>(drop);
  }
}

std::vector<float> Wsola::stretch(std::span<const float> in, double rate,
                                  const WsolaConfig& cfg) {
  Wsola w(cfg);
  w.set_rate(rate);
  w.push(in);
  // Flush: pad with silence so trailing frames are produced.
  std::vector<float> pad(cfg.frame_size + cfg.tolerance + 1, 0.0f);
  w.push(pad);
  std::vector<float> out(w.available());
  w.pull(out);
  return out;
}

int estimate_alignment(std::span<const float> a, std::span<const float> b,
                       int max_lag) noexcept {
  int best_lag = 0;
  double best = -1e30;
  const int n = static_cast<int>(std::min(a.size(), b.size()));
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    double corr = 0.0;
    for (int i = 0; i < n; ++i) {
      const int j = i - lag;
      if (j < 0 || j >= n) continue;
      corr += static_cast<double>(a[i]) * b[j];
    }
    if (corr > best) {
      best = corr;
      best_lag = lag;
    }
  }
  return best_lag;
}

}  // namespace djstar::stretch
