#include "djstar/engine/recorder.hpp"

#include "djstar/audio/wav.hpp"

namespace djstar::engine {

Recorder::Recorder(double expected_seconds, double sample_rate)
    : sample_rate_(sample_rate) {
  const auto cap = static_cast<std::size_t>(expected_seconds * sample_rate);
  left_.reserve(cap);
  right_.reserve(cap);
}

void Recorder::capture(const audio::AudioBuffer& block) {
  if (!recording_ || block.channels() < 2) return;
  auto l = block.channel(0);
  auto r = block.channel(1);
  left_.insert(left_.end(), l.begin(), l.end());
  right_.insert(right_.end(), r.begin(), r.end());
  frames_ += block.frames();
}

audio::AudioBuffer Recorder::to_buffer() const {
  audio::AudioBuffer out(2, frames_);
  auto l = out.channel(0);
  auto r = out.channel(1);
  for (std::size_t i = 0; i < frames_; ++i) {
    l[i] = left_[i];
    r[i] = right_[i];
  }
  return out;
}

bool Recorder::save_wav(const std::string& path) const {
  if (frames_ == 0) return false;
  return audio::write_wav(path, to_buffer(), sample_rate_);
}

void Recorder::clear() noexcept {
  left_.clear();
  right_.clear();
  frames_ = 0;
}

}  // namespace djstar::engine
