#include "djstar/engine/djstar_graph.hpp"

#include <algorithm>
#include <limits>

#include "djstar/support/assert.hpp"

namespace djstar::engine {

double reference_duration_us(NodeKind kind) noexcept {
  // Calibration (see DESIGN.md §2 and EXPERIMENTS.md):
  //   sum over all 67 nodes ~= 1082 us  (paper sequential: 1078.5 us)
  //   critical path SP+4*FX_A+CH+MIXER+MASTER+OUT ~= 285 us (paper: 295)
  switch (kind) {
    case NodeKind::kSamplePlayer: return 9.0;
    case NodeKind::kUtility: return 2.0;
    case NodeKind::kDeckEffectA: return 56.0;
    case NodeKind::kDeckEffect: return 45.3;
    case NodeKind::kChannel: return 12.0;
    case NodeKind::kDeckMeter: return 2.0;
    case NodeKind::kSampler: return 6.0;
    case NodeKind::kMixer: return 10.0;
    case NodeKind::kMasterBus: return 12.0;
    case NodeKind::kCue: return 8.0;
    case NodeKind::kMonitor: return 6.0;
    case NodeKind::kRecord: return 12.0;
    case NodeKind::kAudioOut: return 18.0;
    case NodeKind::kHeadphone: return 4.0;
    case NodeKind::kMasterMeter: return 2.0;
    case NodeKind::kAnalyzer: return 3.0;
    case NodeKind::kBeatgrid: return 2.0;
  }
  return 1.0;
}

namespace {

/// Effect chains per deck: deck A carries the heavier "active deck"
/// program (echo -> flanger -> spectral -> softclip).
constexpr EffectKind kChains[4][4] = {
    {EffectKind::kEcho, EffectKind::kFlanger, EffectKind::kSpectral,
     EffectKind::kSoftClip},
    {EffectKind::kPhaser, EffectKind::kBitcrusher, EffectKind::kEcho,
     EffectKind::kCompressor},
    {EffectKind::kChorus, EffectKind::kReverb, EffectKind::kWaveshaper,
     EffectKind::kGate},
    {EffectKind::kFlanger, EffectKind::kEcho, EffectKind::kPhaser,
     EffectKind::kSoftClip},
};

constexpr const char* kDeckNames[4] = {"A", "B", "C", "D"};

}  // namespace

DjStarGraph::DjStarGraph(
    std::array<const audio::AudioBuffer*, 4> deck_inputs) {
  using core::NodeId;

  for (unsigned d = 0; d < 4; ++d) {
    if (deck_inputs[d] == nullptr) {
      silent_[d] = std::make_unique<audio::AudioBuffer>(2, audio::kBlockSize);
      deck_inputs[d] = silent_[d].get();
    }
  }

  auto add = [&](const std::string& name, NodeKind kind,
                 const std::string& section, core::WorkFn fn) {
    const NodeId id = graph_.add_node(name, std::move(fn), section);
    kinds_.push_back(kind);
    return id;
  };

  std::array<NodeId, 4> ch_ids{};
  std::array<const audio::AudioBuffer*, 4> ch_bufs{};

  for (unsigned d = 0; d < 4; ++d) {
    const std::string deck = std::string("deck") + kDeckNames[d];

    // Sample players (sources).
    std::array<NodeId, 4> sp_ids{};
    std::array<const audio::AudioBuffer*, 4> sp_bufs{};
    for (unsigned s = 0; s < 4; ++s) {
      players_.push_back(
          std::make_unique<SamplePlayerNode>(deck_inputs[d], s));
      SamplePlayerNode* p = players_.back().get();
      sp_bufs[s] = &p->output();
      sp_ids[s] = add("SP_" + std::string(kDeckNames[d]) + std::to_string(s + 1),
                      NodeKind::kSamplePlayer, deck, [p] { p->process(); });
    }

    // Control utilities (sources, no audio).
    for (unsigned u = 0; u < 4; ++u) {
      utils_.push_back(std::make_unique<UtilityNode>(d * 4 + u));
      UtilityNode* un = utils_.back().get();
      add("UTIL_" + std::string(kDeckNames[d]) + std::to_string(u + 1),
          NodeKind::kUtility, deck, [un] { un->process(); });
    }

    // Effect chain FX1..FX4 (FX1 sums the sample players).
    const NodeKind fx_kind =
        d == 0 ? NodeKind::kDeckEffectA : NodeKind::kDeckEffect;
    NodeId prev = core::kInvalidNode;
    const audio::AudioBuffer* prev_buf = nullptr;
    for (unsigned f = 0; f < 4; ++f) {
      if (f == 0) {
        effects_.push_back(
            std::make_unique<EffectNode>(kChains[d][f], sp_bufs));
      } else {
        effects_.push_back(
            std::make_unique<EffectNode>(kChains[d][f], prev_buf));
      }
      EffectNode* e = effects_.back().get();
      const NodeId fx = add(
          "FX_" + std::string(kDeckNames[d]) + std::to_string(f + 1), fx_kind,
          deck, [e] { e->process(); });
      if (f == 0) {
        for (NodeId sp : sp_ids) graph_.add_edge(sp, fx);
      } else {
        graph_.add_edge(prev, fx);
      }
      prev = fx;
      prev_buf = &e->output();
    }

    // Channel strip.
    channels_[d] = std::make_unique<ChannelNode>(prev_buf);
    ChannelNode* ch = channels_[d].get();
    ch_ids[d] = add("CH_" + std::string(kDeckNames[d]), NodeKind::kChannel,
                    deck, [ch] { ch->process(); });
    graph_.add_edge(prev, ch_ids[d]);
    ch_bufs[d] = &ch->output();

    // Channel meter.
    deck_meters_[d] = std::make_unique<MeterNode>(ch_bufs[d]);
    MeterNode* m = deck_meters_[d].get();
    const NodeId meter = add("METER_" + std::string(kDeckNames[d]),
                             NodeKind::kDeckMeter, deck, [m] { m->process(); });
    graph_.add_edge(ch_ids[d], meter);
  }

  const std::string master_sec = "master";

  // Sampler (source).
  sampler_ = std::make_unique<SamplerNode>();
  SamplerNode* sam = sampler_.get();
  const core::NodeId sampler_id =
      add("SAMPLER", NodeKind::kSampler, master_sec, [sam] { sam->process(); });

  // Mixer.
  mixer_ = std::make_unique<MixerNode>(ch_bufs, &sampler_->output());
  MixerNode* mx = mixer_.get();
  const core::NodeId mixer_id =
      add("MIXER", NodeKind::kMixer, master_sec, [mx] { mx->process(); });
  for (auto c : ch_ids) graph_.add_edge(c, mixer_id);
  graph_.add_edge(sampler_id, mixer_id);

  // Master bus.
  master_ = std::make_unique<MasterBusNode>(&mixer_->output());
  MasterBusNode* mb = master_.get();
  const core::NodeId master_id =
      add("MASTER", NodeKind::kMasterBus, master_sec, [mb] { mb->process(); });
  graph_.add_edge(mixer_id, master_id);

  // Cue bus (pre-mixer).
  cue_ = std::make_unique<CueNode>(ch_bufs);
  CueNode* cu = cue_.get();
  const core::NodeId cue_id =
      add("CUE", NodeKind::kCue, master_sec, [cu] { cu->process(); });
  for (auto c : ch_ids) graph_.add_edge(c, cue_id);

  // Monitor.
  monitor_ = std::make_unique<MonitorNode>(&cue_->output());
  MonitorNode* mo = monitor_.get();
  const core::NodeId mon_id =
      add("MONITOR", NodeKind::kMonitor, master_sec, [mo] { mo->process(); });
  graph_.add_edge(cue_id, mon_id);

  // Record buffer.
  record_ = std::make_unique<RecordNode>(&master_->output());
  RecordNode* rec = record_.get();
  const core::NodeId rec_id =
      add("RECORD", NodeKind::kRecord, master_sec, [rec] { rec->process(); });
  graph_.add_edge(master_id, rec_id);

  // Audio out.
  audio_out_ = std::make_unique<AudioOutNode>(&master_->output());
  AudioOutNode* ao = audio_out_.get();
  audio_out_id_ =
      add("AUDIO_OUT", NodeKind::kAudioOut, master_sec, [ao] { ao->process(); });
  graph_.add_edge(master_id, audio_out_id_);

  // Headphone blend.
  headphone_ = std::make_unique<HeadphoneNode>(&cue_->output(),
                                               &master_->output());
  HeadphoneNode* hp = headphone_.get();
  const core::NodeId hp_id = add("HEADPHONE", NodeKind::kHeadphone, master_sec,
                                 [hp] { hp->process(); });
  graph_.add_edge(cue_id, hp_id);
  graph_.add_edge(master_id, hp_id);

  // Master meter.
  master_meter_ = std::make_unique<MeterNode>(&master_->output());
  MeterNode* mm = master_meter_.get();
  const core::NodeId mm_id = add("MASTER_METER", NodeKind::kMasterMeter,
                                 master_sec, [mm] { mm->process(); });
  graph_.add_edge(master_id, mm_id);

  // Analyzer.
  analyzer_ = std::make_unique<AnalyzerNode>(&mixer_->output());
  AnalyzerNode* an = analyzer_.get();
  const core::NodeId an_id =
      add("ANALYZER", NodeKind::kAnalyzer, master_sec, [an] { an->process(); });
  graph_.add_edge(mixer_id, an_id);

  // Beatgrid / master tempo accounting.
  beatgrid_ = std::make_unique<UtilityNode>(99);
  UtilityNode* bg = beatgrid_.get();
  const core::NodeId bg_id =
      add("BEATGRID", NodeKind::kBeatgrid, master_sec, [bg] { bg->process(); });
  graph_.add_edge(mixer_id, bg_id);

  DJSTAR_ASSERT_MSG(graph_.node_count() == 67,
                    "canonical DJ Star graph must have 67 nodes");
  DJSTAR_ASSERT_MSG(graph_.source_nodes().size() == 33,
                    "canonical DJ Star graph must have 33 source nodes");

  // Degradation tiers: deck effects can run in bypass (audio still
  // flows), GUI/accounting sinks can be skipped outright, everything on
  // the audible signal path is essential.
  tiers_.assign(kinds_.size(), DegradeTier::kEssential);
  node_effect_.assign(kinds_.size(), nullptr);
  std::size_t fx_i = 0;
  for (core::NodeId n = 0; n < graph_.node_count(); ++n) {
    switch (kinds_[n]) {
      case NodeKind::kDeckEffectA:
      case NodeKind::kDeckEffect:
        tiers_[n] = DegradeTier::kFxBypass;
        node_effect_[n] = effects_[fx_i++].get();
        break;
      case NodeKind::kDeckMeter:
      case NodeKind::kMasterMeter:
      case NodeKind::kAnalyzer:
      case NodeKind::kMonitor:
      case NodeKind::kRecord:
      case NodeKind::kBeatgrid:
        tiers_[n] = DegradeTier::kSinkSkip;
        break;
      default:
        break;
    }
  }

  declare_accesses(deck_inputs);
}

core::WorkFn DjStarGraph::bypass_work(core::NodeId n) const {
  EffectNode* e = node_effect_[n];
  if (e == nullptr) return {};
  return [e] { e->process_bypass(); };
}

void DjStarGraph::poison_output() noexcept {
  auto& out = audio_out_->output();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  auto raw = out.raw();
  // A burst is enough to trip any consumer; full-buffer scribble would
  // be unrealistic for a single corrupted node.
  const std::size_t burst = std::min<std::size_t>(32, raw.size());
  for (std::size_t i = 0; i < burst; ++i) raw[i] = nan;
}

void DjStarGraph::declare_accesses(
    const std::array<const audio::AudioBuffer*, 4>& deck_inputs) {
  // Walk the nodes in id (=creation) order and declare each one's buffer
  // reads/writes so AccessRegistry::check can prove the graph race-free.
  std::size_t sp_i = 0, fx_i = 0, ch_i = 0, meter_i = 0;
  for (core::NodeId n = 0; n < graph_.node_count(); ++n) {
    switch (kinds_[n]) {
      case NodeKind::kSamplePlayer: {
        registry_.declare(n, {{deck_inputs[sp_i / 4]},
                              {&players_[sp_i]->output()}});
        ++sp_i;
        break;
      }
      case NodeKind::kUtility:
      case NodeKind::kBeatgrid:
        break;  // control-only nodes touch no audio buffers
      case NodeKind::kDeckEffectA:
      case NodeKind::kDeckEffect: {
        const std::size_t deck = fx_i / 4;
        const std::size_t slot = fx_i % 4;
        core::AccessDecl d;
        if (slot == 0) {
          for (std::size_t k = 0; k < 4; ++k) {
            d.reads.push_back(&players_[deck * 4 + k]->output());
          }
        } else {
          d.reads.push_back(&effects_[fx_i - 1]->output());
        }
        d.writes.push_back(&effects_[fx_i]->output());
        registry_.declare(n, d);
        ++fx_i;
        break;
      }
      case NodeKind::kChannel: {
        registry_.declare(n, {{&effects_[ch_i * 4 + 3]->output()},
                              {&channels_[ch_i]->output()}});
        ++ch_i;
        break;
      }
      case NodeKind::kDeckMeter: {
        registry_.declare_read(n, &channels_[meter_i]->output());
        ++meter_i;
        break;
      }
      case NodeKind::kSampler:
        registry_.declare_write(n, &sampler_->output());
        break;
      case NodeKind::kMixer: {
        core::AccessDecl d;
        for (auto& ch : channels_) d.reads.push_back(&ch->output());
        d.reads.push_back(&sampler_->output());
        d.writes.push_back(&mixer_->output());
        registry_.declare(n, d);
        break;
      }
      case NodeKind::kMasterBus:
        registry_.declare(n, {{&mixer_->output()}, {&master_->output()}});
        break;
      case NodeKind::kCue: {
        core::AccessDecl d;
        for (auto& ch : channels_) d.reads.push_back(&ch->output());
        d.writes.push_back(&cue_->output());
        registry_.declare(n, d);
        break;
      }
      case NodeKind::kMonitor:
        registry_.declare(n, {{&cue_->output()}, {&monitor_->output()}});
        break;
      case NodeKind::kRecord:
        registry_.declare(n, {{&master_->output()}, {&record_->output()}});
        break;
      case NodeKind::kAudioOut:
        registry_.declare(n, {{&master_->output()}, {&audio_out_->output()}});
        break;
      case NodeKind::kHeadphone:
        registry_.declare(n, {{&cue_->output(), &master_->output()},
                              {&headphone_->output()}});
        break;
      case NodeKind::kMasterMeter:
        registry_.declare_read(n, &master_->output());
        break;
      case NodeKind::kAnalyzer:
        registry_.declare_read(n, &mixer_->output());
        break;
    }
  }
}

std::vector<double> DjStarGraph::reference_durations() const {
  std::vector<double> d;
  d.reserve(kinds_.size());
  for (NodeKind k : kinds_) d.push_back(reference_duration_us(k));
  return d;
}

ReferenceGraph make_reference_graph() {
  ReferenceGraph r{DjStarGraph{}, {}};
  r.durations_us = r.graph.reference_durations();
  return r;
}

}  // namespace djstar::engine
