#include "djstar/engine/telemetry.hpp"

#include <array>

#include "djstar/support/build_info.hpp"

namespace djstar::engine {
namespace {

// APC totals cluster around the 2.9 ms deadline; buckets bracket it with
// a decade of headroom either side.
constexpr std::array<double, 8> kApcBounds = {100,  200,  400,  800,
                                              1600, 2900, 5800, 11600};
// Graph phase is ~38% of the APC.
constexpr std::array<double, 7> kGraphBounds = {50,  100, 200, 400,
                                                800, 1600, 3200};

}  // namespace

EngineTelemetry::EngineTelemetry(const TelemetryConfig& cfg,
                                 double deadline_us, unsigned threads)
    : cfg_(cfg),
      deadline_us_(deadline_us),
      journal_(cfg.journal_capacity),
      cycles_(registry_.counter("djstar_cycles_total",
                                "Audio processing cycles executed")),
      misses_(registry_.counter("djstar_deadline_misses_total",
                                "Cycles whose APC total exceeded the "
                                "deadline")),
      faults_(registry_.counter("djstar_faults_injected_total",
                                "Chaos faults fired on graph nodes")),
      degrades_(registry_.counter("djstar_degrade_steps_total",
                                  "Degradation-ladder rungs stepped down")),
      recoveries_(registry_.counter("djstar_recover_steps_total",
                                    "Degradation-ladder rungs stepped up")),
      watchdog_cancels_(registry_.counter(
          "djstar_watchdog_cancels_total",
          "Cycles cancelled by the watchdog thread")),
      trace_dropped_(registry_.counter(
          "djstar_trace_dropped_spans_total",
          "Trace-recorder spans dropped because a lane was full")),
      journal_dropped_(registry_.counter(
          "djstar_journal_dropped_events_total",
          "Journal events dropped because the ring was full")),
      flight_dumps_total_(registry_.counter(
          "djstar_flight_dumps_total",
          "Automatic flight-recorder trace dumps written")),
      quarantines_(registry_.counter(
          "djstar_worker_quarantines_total",
          "Workers quarantined by the team medic")),
      respawns_(registry_.counter(
          "djstar_worker_respawns_total",
          "Replacement workers that rejoined the team")),
      rescued_units_(registry_.counter(
          "djstar_rescued_units_total",
          "Units republished from quarantined workers")),
      live_workers_(registry_.gauge(
          "djstar_live_workers",
          "Workers currently alive in the team (threads minus "
          "unhealed quarantines)")),
      level_gauge_(registry_.gauge("djstar_degradation_level",
                                   "Current degradation-ladder level "
                                   "(0 = full quality)")),
      apc_us_(registry_.histogram("djstar_apc_total_us",
                                  "APC total per cycle (us)", kApcBounds)),
      graph_us_(registry_.histogram("djstar_graph_us",
                                    "Task-graph phase per cycle (us)",
                                    kGraphBounds)) {
  uptime_ = support::register_build_info(registry_);
  flight_.configure(threads, cfg_.flight_spans_per_thread);
}

void EngineTelemetry::on_threads_changed(unsigned threads) {
  flight_.configure(threads, cfg_.flight_spans_per_thread);
}

void EngineTelemetry::on_cycle(const CycleBreakdown& c, unsigned level,
                               const SupervisorStats* sup,
                               std::uint64_t faults_injected,
                               const support::TraceRecorder* trace) {
  ++cycle_count_;
  cycles_.inc();
  uptime_.set(support::process_uptime_seconds());
  const double total = c.total_us();
  apc_us_.record(total);
  graph_us_.record(c.graph_us);
  level_gauge_.set(static_cast<double>(level));

  // Same predicate as DeadlineMonitor::add — the exports must agree with
  // monitor().misses() exactly.
  const bool missed = total > deadline_us_;
  if (missed) {
    misses_.inc();
    journal_.push(support::EventKind::kDeadlineMiss, cycle_count_,
                  static_cast<std::int64_t>(level), 0, total);
  }

  // Delta-sync the cumulative sources into monotone counters.
  if (faults_injected > seen_faults_) {
    faults_.inc(faults_injected - seen_faults_);
    seen_faults_ = faults_injected;
  }
  bool watchdog_fired = false;
  if (sup != nullptr) {
    if (sup->watchdog_cancels > seen_wd_cancels_) {
      watchdog_cancels_.inc(sup->watchdog_cancels - seen_wd_cancels_);
      seen_wd_cancels_ = sup->watchdog_cancels;
      watchdog_fired = true;
    }
    if (sup->recoveries > seen_recoveries_) {
      recoveries_.inc(sup->recoveries - seen_recoveries_);
      seen_recoveries_ = sup->recoveries;
    }
  }
  if (trace != nullptr) {
    const std::uint64_t dropped = trace->total_dropped();
    if (dropped > seen_trace_dropped_) {
      trace_dropped_.inc(dropped - seen_trace_dropped_);
      seen_trace_dropped_ = dropped;
    }
  }
  {
    const std::uint64_t jd = journal_.dropped();
    if (jd > seen_journal_dropped_) {
      journal_dropped_.inc(jd - seen_journal_dropped_);
      seen_journal_dropped_ = jd;
    }
  }

  // Ladder movement: level changes arrive with a one-cycle actuation lag
  // relative to the supervisor's transition log, which is fine — the
  // counters track applied levels, the journal (fed by the supervisor
  // directly) has the authoritative transition records.
  const bool level_changed = level != last_level_;
  if (level_changed) {
    if (level > last_level_) {
      degrades_.inc(level - last_level_);
    }
    last_level_ = level;
  }

  // Automatic incident dump, most specific trigger first.
  if (watchdog_fired) {
    maybe_dump_flight(FlightDumpTrigger::kWatchdogFire, cycle_count_);
  } else if (level_changed) {
    maybe_dump_flight(FlightDumpTrigger::kLevelChange, cycle_count_);
  } else if (missed) {
    maybe_dump_flight(FlightDumpTrigger::kDeadlineMiss, cycle_count_);
  }
}

void EngineTelemetry::on_heal(const core::HealStats& hs) {
  live_workers_.set(static_cast<double>(hs.live));
  bool quarantined = false;
  if (hs.quarantines > seen_quarantines_) {
    quarantines_.inc(hs.quarantines - seen_quarantines_);
    seen_quarantines_ = hs.quarantines;
    quarantined = true;
    journal_.push(support::EventKind::kWorkerQuarantine, cycle_count_,
                  static_cast<std::int64_t>(hs.quarantines),
                  static_cast<std::int64_t>(hs.live));
  }
  if (hs.respawns > seen_respawns_) {
    respawns_.inc(hs.respawns - seen_respawns_);
    seen_respawns_ = hs.respawns;
    journal_.push(support::EventKind::kWorkerRespawn, cycle_count_,
                  static_cast<std::int64_t>(hs.respawns),
                  static_cast<std::int64_t>(hs.live));
  }
  if (hs.rescues > seen_rescued_) {
    rescued_units_.inc(hs.rescues - seen_rescued_);
    seen_rescued_ = hs.rescues;
  }
  if (quarantined) {
    // Every quarantine is an incident: capture the cycle that lost a
    // worker while the flight ring still holds it.
    maybe_dump_flight(FlightDumpTrigger::kWorkerQuarantine, cycle_count_);
  }
}

void EngineTelemetry::maybe_dump_flight(FlightDumpTrigger trigger,
                                        std::uint64_t cycle, bool force) {
  if (cfg_.flight_dump_path.empty() || !flight_.enabled()) return;
  if (!force && dumped_once_ &&
      cycle - last_dump_cycle_ < cfg_.flight_dump_cooldown) {
    return;
  }
  if (!flight_.dump_chrome_trace(cfg_.flight_dump_path,
                                 cfg_.flight_dump_cycles, deadline_us_)) {
    return;
  }
  dumped_once_ = true;
  last_dump_cycle_ = cycle;
  ++flight_dump_count_;
  flight_dumps_total_.inc();
  journal_.push(support::EventKind::kFlightDump, cycle,
                static_cast<std::int64_t>(trigger));
}

}  // namespace djstar::engine
