#include "djstar/engine/library.hpp"

#include <algorithm>
#include <cmath>

#include "djstar/audio/wav.hpp"

namespace djstar::engine {

TrackAnalysis analyze_track(const audio::Track& track) {
  TrackAnalysis a;
  a.beatgrid = analysis::analyze_beats(track.audio());
  // Key and loudness work on the mono fold-down.
  std::vector<float> mono(track.length_frames());
  auto l = track.audio().channel(0);
  auto r = track.audio().channel(1);
  for (std::size_t i = 0; i < mono.size(); ++i) {
    mono[i] = 0.5f * (l[i] + r[i]);
  }
  a.key = analysis::estimate_key(mono, track.sample_rate());
  a.loudness = analysis::measure_loudness(track.audio());
  a.overview = analysis::build_overview(track.audio());
  return a;
}

std::uint32_t Library::insert(std::string title, const audio::TrackSpec& spec,
                              std::shared_ptr<audio::Track> track) {
  LibraryEntry e;
  e.id = next_id_++;
  e.title = std::move(title);
  e.spec = spec;
  e.analysis = analyze_track(*track);
  e.track = std::move(track);
  entries_.push_back(std::move(e));
  return entries_.back().id;
}

std::uint32_t Library::add_generated(std::string title,
                                     const audio::TrackSpec& spec) {
  auto track = std::make_shared<audio::Track>(audio::Track::generate(spec));
  return insert(std::move(title), spec, std::move(track));
}

std::optional<std::uint32_t> Library::add_from_wav(std::string title,
                                                   const std::string& path) {
  audio::WavData wav;
  if (!audio::read_wav(path, wav)) return std::nullopt;
  auto track = std::make_shared<audio::Track>(
      audio::Track::from_buffer(wav.buffer, wav.sample_rate));
  return insert(std::move(title), audio::TrackSpec{}, std::move(track));
}

const LibraryEntry* Library::find(std::uint32_t id) const noexcept {
  for (const auto& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::vector<const LibraryEntry*> Library::by_tempo(double target_bpm) const {
  std::vector<const LibraryEntry*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [target_bpm](const LibraryEntry* a, const LibraryEntry* b) {
              return std::abs(a->analysis.beatgrid.bpm - target_bpm) <
                     std::abs(b->analysis.beatgrid.bpm - target_bpm);
            });
  return out;
}

std::vector<const LibraryEntry*> Library::harmonic_matches(
    const analysis::KeyEstimate& key) const {
  const std::string target = analysis::camelot_code(key);
  const int hour = std::stoi(target.substr(0, target.size() - 1));
  const char letter = target.back();

  auto compatible = [&](const std::string& code) {
    const int h = std::stoi(code.substr(0, code.size() - 1));
    const char l = code.back();
    if (l == letter) {
      const int d = std::abs(h - hour);
      return d == 0 || d == 1 || d == 11;  // wheel wraps 12 -> 1
    }
    return h == hour;  // relative major/minor
  };

  std::vector<const LibraryEntry*> out;
  for (const auto& e : entries_) {
    if (compatible(analysis::camelot_code(e.analysis.key))) {
      out.push_back(&e);
    }
  }
  return out;
}

}  // namespace djstar::engine
