#include "djstar/engine/headroom.hpp"

#include <algorithm>

#include "djstar/support/stats.hpp"

namespace djstar::engine {
namespace {

// Shared body: `p99` is supplied by the caller so the monitor overload
// can reuse DeadlineMonitor's cached value instead of re-deriving the
// quantile from raw samples.
HeadroomReport advise_impl(std::span<const double> apc_times_us, double p99,
                           std::size_t measured_frames,
                           const HeadroomConfig& cfg) {
  HeadroomReport report;
  if (apc_times_us.empty() || measured_frames == 0) return report;

  for (std::size_t frames : cfg.candidates) {
    HeadroomEntry e;
    e.buffer_frames = frames;
    e.deadline_us =
        1e6 * static_cast<double>(frames) / cfg.sample_rate;
    e.latency_ms = e.deadline_us / 1000.0;

    // Affine cost model: the fixed per-cycle part stays, the per-frame
    // part scales with the buffer.
    const double frame_ratio = static_cast<double>(frames) /
                               static_cast<double>(measured_frames);
    const double scale =
        cfg.fixed_fraction + (1.0 - cfg.fixed_fraction) * frame_ratio;
    std::size_t misses = 0;
    for (double t : apc_times_us) {
      if (t * scale > e.deadline_us) ++misses;
    }
    e.predicted_miss_rate = static_cast<double>(misses) /
                            static_cast<double>(apc_times_us.size());
    e.headroom_us = e.deadline_us - p99 * scale;
    report.entries.push_back(e);
  }

  std::sort(report.entries.begin(), report.entries.end(),
            [](const HeadroomEntry& a, const HeadroomEntry& b) {
              return a.buffer_frames < b.buffer_frames;
            });
  for (const auto& e : report.entries) {
    if (e.predicted_miss_rate <= cfg.target_miss_rate) {
      report.recommended_frames = e.buffer_frames;
      break;
    }
  }
  return report;
}

}  // namespace

HeadroomReport advise_headroom(std::span<const double> apc_times_us,
                               std::size_t measured_frames,
                               const HeadroomConfig& cfg) {
  const double p99 = support::quantile(apc_times_us, 0.99);
  return advise_impl(apc_times_us, p99, measured_frames, cfg);
}

HeadroomReport advise_headroom(const DeadlineMonitor& monitor,
                               std::size_t measured_frames,
                               const HeadroomConfig& cfg) {
  return advise_impl(monitor.total_samples(), monitor.p99(), measured_frames,
                     cfg);
}

}  // namespace djstar::engine
