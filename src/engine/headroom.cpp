#include "djstar/engine/headroom.hpp"

#include <algorithm>
#include <cmath>

#include "djstar/support/stats.hpp"

namespace djstar::engine {

HeadroomReport advise_headroom(std::span<const double> apc_times_us,
                               std::size_t measured_frames,
                               const HeadroomConfig& cfg) {
  HeadroomReport report;
  if (apc_times_us.empty() || measured_frames == 0) return report;

  std::vector<double> sorted(apc_times_us.begin(), apc_times_us.end());
  std::sort(sorted.begin(), sorted.end());
  const double p99 = support::quantile(sorted, 0.99);

  for (std::size_t frames : cfg.candidates) {
    HeadroomEntry e;
    e.buffer_frames = frames;
    e.deadline_us =
        1e6 * static_cast<double>(frames) / cfg.sample_rate;
    e.latency_ms = e.deadline_us / 1000.0;

    // Affine cost model: the fixed per-cycle part stays, the per-frame
    // part scales with the buffer.
    const double frame_ratio = static_cast<double>(frames) /
                               static_cast<double>(measured_frames);
    const double scale =
        cfg.fixed_fraction + (1.0 - cfg.fixed_fraction) * frame_ratio;
    std::size_t misses = 0;
    for (double t : sorted) {
      if (t * scale > e.deadline_us) ++misses;
    }
    e.predicted_miss_rate =
        static_cast<double>(misses) / static_cast<double>(sorted.size());
    e.headroom_us = e.deadline_us - p99 * scale;
    report.entries.push_back(e);
  }

  std::sort(report.entries.begin(), report.entries.end(),
            [](const HeadroomEntry& a, const HeadroomEntry& b) {
              return a.buffer_frames < b.buffer_frames;
            });
  for (const auto& e : report.entries) {
    if (e.predicted_miss_rate <= cfg.target_miss_rate) {
      report.recommended_frames = e.buffer_frames;
      break;
    }
  }
  return report;
}

HeadroomReport advise_headroom(const DeadlineMonitor& monitor,
                               std::size_t measured_frames,
                               const HeadroomConfig& cfg) {
  return advise_headroom(monitor.total_samples(), measured_frames, cfg);
}

}  // namespace djstar::engine
